package serve

import (
	"rcpn/internal/bpred"
	"rcpn/internal/iss"
	"rcpn/internal/mem"
	"rcpn/internal/tpar"
)

// warm builds the leader warm-unit wiring for a parallel job: the spec's
// cache/predictor overrides where present, the simulator's defaults where
// not — the leader must warm units with the exact geometry the segment
// workers restore into. Functional simulators take cold (nil) warm state.
// The execution itself lives in runParallel (executor.go).
func (s *JobSpec) warm() (func(c *iss.CPU), error) {
	switch s.Simulator {
	case "func", "iss":
		return nil, nil
	}
	if s.Config.isZero() {
		return tpar.DefaultWarm(s.Simulator), nil
	}
	h, err := s.hierarchy()
	if err != nil {
		return nil, err
	}
	pred, err := s.predictor()
	if err != nil {
		return nil, err
	}
	def := mem.DefaultStrongARM()
	if s.Simulator == "xscale" {
		def = mem.DefaultXScale()
	}
	if h.I == nil {
		h.I = def.I
	}
	if h.D == nil {
		h.D = def.D
	}
	if pred == nil {
		if s.Simulator == "xscale" {
			pred = bpred.NewBimodal(128)
		} else {
			pred = bpred.NewNotTaken()
		}
	}
	return func(c *iss.CPU) { c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, pred }, nil
}
