package cpn

import (
	"fmt"
	"strings"
	"testing"

	"rcpn/internal/core"
)

// fig2 builds the paper's Figure 2 pipeline as an RCPN: places L1 and L2
// (capacity 1 each), two instruction classes — one flowing L1->U2->L2->U3->end
// and one taking the short path L1->U4->end — and a fetch source.
// produce limits how many tokens the source generates.
func fig2(produce int) *core.Net {
	n := core.NewNet(2)
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	end := n.EndPlace("end")
	n.AddTransition(&core.Transition{Name: "U2", Class: 0, From: l1, To: l2})
	n.AddTransition(&core.Transition{Name: "U3", Class: 0, From: l2, To: end})
	n.AddTransition(&core.Transition{Name: "U4", Class: 1, From: l1, To: end})
	made := 0
	n.AddSource(&core.Source{
		Name:  "U1",
		To:    l1,
		Guard: func() bool { return made < produce },
		Fire: func() *core.Token {
			made++
			return core.NewToken(core.ClassID(made%2), made)
		},
	})
	n.MustBuild()
	return n
}

func TestConvertStructure(t *testing.T) {
	rc := fig2(0)
	cn, m, err := Convert(rc)
	if err != nil {
		t.Fatal(err)
	}
	// Places: L1, L2, end + slot places for the two bounded stages.
	if len(cn.Places()) != 5 {
		t.Fatalf("converted places = %d, want 5", len(cn.Places()))
	}
	// The bounded stages' slot places are primed with capacity tokens.
	for _, p := range rc.Places() {
		if p.Stage.Unlimited() {
			continue
		}
		slots := m.SlotOf[p.Stage]
		if slots == nil || slots.Count(SlotColor) != p.Stage.Capacity {
			t.Fatalf("stage %s: missing or mis-primed slot place", p.Stage.Name)
		}
	}
	// U2 must have gained the back-edge arcs: consumes L2 slot, returns L1
	// slot — the circular structure of Figure 2(b).
	var u2 *Transition
	for _, tr := range cn.Transitions() {
		if tr.Name == "U2" {
			u2 = tr
		}
	}
	if u2 == nil || len(u2.In) != 2 || len(u2.Out) != 2 {
		t.Fatalf("U2 back-edges missing: %+v", u2)
	}
}

// TestConvertedNetCycleEquivalence runs the RCPN engine and the converted
// CPN under the generic engine in lockstep and requires the same per-cycle
// observable state: tokens per place (by class) and total retirements.
func TestConvertedNetCycleEquivalence(t *testing.T) {
	const produce = 7
	rc := fig2(produce)       // simulated by the RCPN engine
	rcForCPN := fig2(produce) // converted; its engine is never stepped
	cn, m, err := Convert(rcForCPN)
	if err != nil {
		t.Fatal(err)
	}
	endCPN := m.PlaceOf[rcForCPN.Places()[2]]
	if !rcForCPN.Places()[2].End {
		t.Fatal("place order assumption broken")
	}

	for cycle := 0; cycle < 20; cycle++ {
		rc.Step()
		cn.Step()
		// Compare instruction-token occupancy of L1 and L2.
		for i := 0; i < 2; i++ {
			cp := rc.Places()[i]
			want := len(cp.Tokens())
			got := 0
			for _, tok := range m.PlaceOf[rcForCPN.Places()[i]].Tokens() {
				if tok.Color < SlotColor {
					got++
				}
			}
			if got != want {
				t.Fatalf("cycle %d: place %s: CPN holds %d instruction tokens, RCPN %d",
					cycle, cp.Name, got, want)
			}
		}
		if got, want := len(endCPN.Tokens()), int(rc.RetiredCount); got != want {
			t.Fatalf("cycle %d: CPN retired %d, RCPN %d", cycle, got, want)
		}
	}
	if rc.RetiredCount != produce {
		t.Fatalf("RCPN retired %d of %d", rc.RetiredCount, produce)
	}
}

func TestConvertedReservationTokens(t *testing.T) {
	// Branch-style stall: D leaves a reservation token in L1 which blocks
	// the source; B consumes it. The converted net must reproduce the stall.
	build := func() *core.Net {
		n := core.NewNet(1)
		l1 := n.Place("L1", n.Stage("L1", 1))
		l2 := n.Place("L2", n.Stage("L2", 1))
		end := n.EndPlace("end")
		n.AddTransition(&core.Transition{Name: "D", Class: 0, From: l1, To: l2, ResOut: []*core.Place{l1}})
		n.AddTransition(&core.Transition{Name: "B", Class: 0, From: l2, To: end, ResIn: []*core.Place{l1}})
		made := 0
		n.AddSource(&core.Source{
			Name: "F", To: l1,
			Guard: func() bool { return made < 3 },
			Fire:  func() *core.Token { made++; return core.NewToken(0, made) },
		})
		n.MustBuild()
		return n
	}
	rc := build()
	cn, m, err := Convert(build())
	if err != nil {
		t.Fatal(err)
	}
	l1 := m.PlaceOf[rc.Places()[0]] // names align; index 0 is L1
	_ = l1
	for cycle := 0; cycle < 16; cycle++ {
		rc.Step()
		cn.Step()
	}
	if rc.RetiredCount != 3 {
		t.Fatalf("RCPN retired %d", rc.RetiredCount)
	}
	var endP *Place
	for _, p := range cn.Places() {
		if p.Name == "end" {
			endP = p
		}
	}
	if got := len(endP.Tokens()); got != 3 {
		t.Fatalf("CPN retired %d, want 3", got)
	}
}

func TestNaiveEngineSearchOverhead(t *testing.T) {
	rc := fig2(5)
	cn, _, err := Convert(fig2(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		rc.Step()
		cn.Step()
	}
	// The generic engine must have scanned transitions many times more than
	// tokens actually moved — the overhead Fig. 6's table removes.
	var fired uint64
	for _, tr := range cn.Transitions() {
		fired += tr.Fires
	}
	if cn.Searches < fired*3 {
		t.Errorf("searches=%d fires=%d: expected substantial scan overhead", cn.Searches, fired)
	}
}

func TestExploreBoundedness(t *testing.T) {
	cn, _, err := Convert(fig2(2))
	if err != nil {
		t.Fatal(err)
	}
	res := cn.Explore(4096)
	if res.Truncated {
		t.Fatal("tiny net should explore fully")
	}
	if res.States < 3 {
		t.Fatalf("suspiciously small state space: %d", res.States)
	}
	// No place in the converted Fig. 2 net can exceed its stage capacity +
	// slot priming: L1/L2 hold at most 1 instruction token.
	for _, name := range []string{"L1", "L2"} {
		if res.BoundPerPlace[name] > 1 {
			t.Errorf("place %s reached occupancy %d, capacity 1", name, res.BoundPerPlace[name])
		}
	}
}

func TestExploreFindsDeadlock(t *testing.T) {
	// A wedged net: two tokens each waiting for the slot the other holds.
	n := New()
	a := n.Place("A")
	b := n.Place("B")
	slotA := n.Place("A.slots")
	slotB := n.Place("B.slots")
	a.Add(Token{Color: 0})
	b.Add(Token{Color: 0})
	// Move A->B needs a B slot; move B->A needs an A slot; none exist.
	n.AddTransition(&Transition{Name: "AB",
		In:  []Arc{{Place: a}, {Place: slotB, Filter: func(t Token) bool { return t.Color == SlotColor }}},
		Out: []Arc{{Place: b}}})
	n.AddTransition(&Transition{Name: "BA",
		In:  []Arc{{Place: b}, {Place: slotA, Filter: func(t Token) bool { return t.Color == SlotColor }}},
		Out: []Arc{{Place: a}}})
	res := n.Explore(100)
	if len(res.Deadlocks) == 0 {
		t.Fatal("deadlock not detected")
	}
}

func TestConservationChecker(t *testing.T) {
	// Positive case: a closed ring where a resource token circulates —
	// strictly conserved.
	n := New()
	a := n.Place("A")
	b := n.Place("B")
	a.Add(Token{Color: 0})
	n.AddTransition(&Transition{Name: "ab", In: []Arc{{Place: a}}, Out: []Arc{{Place: b}}})
	n.AddTransition(&Transition{Name: "ba", In: []Arc{{Place: b}}, Out: []Arc{{Place: a}}})
	got, err := n.CheckConservation(0, 1024)
	if err != nil || got != 1 {
		t.Fatalf("ring conservation: got %d, err %v", got, err)
	}

	// Negative case: the checker must detect non-conserved colors. In a
	// converted pipeline the bare slot count is NOT invariant (a fetched
	// instruction holds a slot without a slot token existing anywhere), so
	// SlotColor violates strict conservation — the checker must say so.
	cn, _, err := Convert(fig2(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cn.CheckConservation(SlotColor, 4096); err == nil {
		t.Fatal("expected a conservation violation for bare slot counts")
	}
}

func TestMarkingCanonical(t *testing.T) {
	n := New()
	p := n.Place("P")
	p.Add(Token{Color: 2})
	p.Add(Token{Color: 1})
	m1 := n.markingOf()
	p.tokens = nil
	p.Add(Token{Color: 1})
	p.Add(Token{Color: 2})
	m2 := n.markingOf()
	if m1 != m2 {
		t.Fatalf("marking not canonical: %q vs %q", m1, m2)
	}
	if !strings.Contains(string(m1), "1:1") {
		t.Fatalf("marking format unexpected: %q", m1)
	}
}

func TestStageInvariantOnConvertedNets(t *testing.T) {
	// Fig. 2 pipeline: every reachable marking preserves slots+occupants ==
	// capacity for both latches.
	src := fig2(3)
	cn, m, err := Convert(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.CheckStageInvariant(src, m, 4096); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestStageInvariantWithReservations(t *testing.T) {
	build := func() *core.Net {
		n := core.NewNet(1)
		l1 := n.Place("L1", n.Stage("L1", 1))
		l2 := n.Place("L2", n.Stage("L2", 1))
		end := n.EndPlace("end")
		n.AddTransition(&core.Transition{Name: "D", Class: 0, From: l1, To: l2, ResOut: []*core.Place{l1}})
		n.AddTransition(&core.Transition{Name: "B", Class: 0, From: l2, To: end, ResIn: []*core.Place{l1}})
		made := 0
		n.AddSource(&core.Source{
			Name: "F", To: l1,
			Guard: func() bool { return made < 2 },
			Fire:  func() *core.Token { made++; return core.NewToken(0, made) },
		})
		n.MustBuild()
		return n
	}
	src := build()
	cn, m, err := Convert(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.CheckStageInvariant(src, m, 4096); err != nil {
		t.Fatalf("invariant violated with reservation tokens: %v", err)
	}
}

func TestCheckInvariantDetectsViolation(t *testing.T) {
	// A net that duplicates a token breaks any conservation predicate.
	n := New()
	a := n.Place("A")
	b := n.Place("B")
	a.Add(Token{Color: 0})
	n.AddTransition(&Transition{Name: "dup",
		In:  []Arc{{Place: a}},
		Out: []Arc{{Place: b}, {Place: b}}})
	err := n.CheckInvariant(func() error {
		if len(a.Tokens())+len(b.Tokens()) != 1 {
			return fmt.Errorf("token count changed")
		}
		return nil
	}, 100)
	if err == nil {
		t.Fatal("violation not detected")
	}
}
