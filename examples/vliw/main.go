// Vliw models a two-lane VLIW machine as an RCPN — the "VLIW and
// multi-issue machines" extension the paper's technical report covers. It
// demonstrates the token-generation rule of §3: "Any sub-net can generate
// an instruction token and send it to its corresponding sub-net. This is
// equivalent with instructions that generate multiple micro operations in
// a pipeline."
//
// A bundle token carries two operations. At the dispatch transition the
// bundle continues into lane 0 and *injects* a fresh token for its second
// operation into lane 1 (net.Inject). The two lanes execute in parallel
// over a shared register file; the RegRef interface still catches
// cross-lane hazards, so a "bad bundle" (lane 1 consuming lane 0's result)
// visibly stalls instead of reading stale data.
//
// Run with: go run ./examples/vliw
package main

import (
	"fmt"

	"rcpn/internal/core"
	"rcpn/internal/reg"
)

const (
	classBundle core.ClassID = iota
	classOp
	numClasses
)

type op struct {
	name string
	tok  *core.Token
	dst  *reg.Ref
	s1   reg.Operand
	s2   reg.Operand
	fn   func(a, b uint32) uint32
}

func (o *op) InState(s int) bool { return o.tok.InState(s) }

type bundle struct {
	name string
	tok  *core.Token
	ops  [2]*op
}

func (b *bundle) InState(s int) bool { return b.tok.InState(s) }

// pool recycles instruction tokens between program runs.
var pool core.TokenPool

func main() {
	gpr := reg.NewFile("R", 8)
	regs := make([]*reg.Register, 8)
	for i := range regs {
		regs[i] = gpr.Register(fmt.Sprintf("r%d", i), i)
	}

	n := core.NewNet(int(numClasses))
	de := n.Place("DE", n.Stage("DE", 1))       // bundle decode latch
	l0 := n.Place("lane0", n.Stage("lane0", 1)) // execution lanes
	l1 := n.Place("lane1", n.Stage("lane1", 1))
	w0 := n.Place("wb0", n.Stage("wb0", 1))
	w1 := n.Place("wb1", n.Stage("wb1", 1))
	end := n.EndPlace("end")

	issueReady := func(o *op) bool {
		return o.s1.CanRead() && o.s2.CanRead() && o.dst.CanWrite()
	}
	issueDo := func(o *op) {
		o.s1.Read()
		o.s2.Read()
		o.dst.ReserveWrite()
	}

	// Dispatch: the bundle heads into lane 0 carrying its first operation
	// and injects a token for the second operation into lane 1. VLIW
	// lockstep: both lanes must be free and both operations issueable.
	n.AddTransition(&core.Transition{
		Name: "dispatch", Class: classBundle, From: de, To: l0,
		Guard: func(tok *core.Token) bool {
			b := tok.Data.(*bundle)
			return l1.Stage.Free() >= 1 && issueReady(b.ops[0]) && issueReady(b.ops[1])
		},
		Action: func(tok *core.Token) {
			b := tok.Data.(*bundle)
			issueDo(b.ops[0])
			issueDo(b.ops[1])
			if !n.Inject(b.ops[1].tok, l1) {
				panic("vliw: lane1 full despite guard")
			}
			fmt.Printf("  cycle %2d: %s dispatched to both lanes\n", n.CycleCount(), b.name)
		},
	})

	exec := func(lane string) func(tok *core.Token) {
		return func(tok *core.Token) {
			var o *op
			switch d := tok.Data.(type) {
			case *bundle:
				o = d.ops[0]
			case *op:
				o = d
			}
			o.dst.SetValue(o.fn(o.s1.Value(), o.s2.Value()))
			fmt.Printf("  cycle %2d: %-8s %s -> %d\n", n.CycleCount(), lane, o.name, o.dst.Value())
		}
	}
	wb := func(tok *core.Token) {
		switch d := tok.Data.(type) {
		case *bundle:
			d.ops[0].dst.Writeback()
		case *op:
			d.dst.Writeback()
		}
	}
	n.AddTransition(&core.Transition{Name: "exec0", Class: classBundle, From: l0, To: w0, Action: exec("lane0:")})
	n.AddTransition(&core.Transition{Name: "exec1", Class: classOp, From: l1, To: w1, Action: exec("lane1:")})
	n.AddTransition(&core.Transition{Name: "wb0", Class: classBundle, From: w0, To: end, Action: wb})
	n.AddTransition(&core.Transition{Name: "wb1", Class: classOp, From: w1, To: end, Action: wb})

	// Retired tokens refill the pool buildProgram drew from (the
	// allocation-free steady-state idiom; a no-op for this one-shot program).
	n.OnRetire(pool.Put)
	program := buildProgram(regs)
	next := 0
	n.AddSource(&core.Source{
		Name: "fetch", To: de,
		Guard: func() bool { return next < len(program) },
		Fire: func() *core.Token {
			b := program[next]
			next++
			fmt.Printf("  cycle %2d: %s fetched\n", n.CycleCount(), b.name)
			return b.tok
		},
	})
	n.MustBuild()

	total := uint64(2 * len(program)) // bundle + injected op per bundle
	fmt.Println("Two-lane VLIW as an RCPN (bundle tokens inject lane-1 micro-ops)")
	fmt.Println("simulating:")
	if _, err := n.Run(func() bool { return n.RetiredCount == total }, 200); err != nil {
		panic(err)
	}
	fmt.Printf("\n%d operations (%d bundles) in %d cycles — operations per cycle %.2f\n",
		total, len(program), n.CycleCount(), float64(total)/float64(n.CycleCount()))
	for i := 0; i < 8; i++ {
		fmt.Printf("r%d=%-5d ", i, regs[i].Value())
	}
	fmt.Println()
	if regs[4].Value() != 30 || regs[5].Value() != 300 || regs[6].Value() != 220 {
		panic("architected results wrong")
	}
}

func buildProgram(regs []*reg.Register) []*bundle {
	add := func(a, b uint32) uint32 { return a + b }
	mul := func(a, b uint32) uint32 { return a * b }

	mkOp := func(name string, fn func(a, b uint32) uint32, d, a int, b reg.Operand) *op {
		o := &op{name: name, fn: fn}
		o.tok = pool.Get(classOp, o)
		o.dst = reg.NewRef(regs[d], o)
		o.s1 = reg.NewRef(regs[a], o)
		o.s2 = b
		return o
	}
	mkBundle := func(name string, o0, o1 *op) *bundle {
		b := &bundle{name: name, ops: [2]*op{o0, o1}}
		b.tok = pool.Get(classBundle, b)
		// The first op rides inside the bundle token.
		o0.tok = b.tok
		return b
	}

	regs[1].Set(10)
	regs[2].Set(100)
	return []*bundle{
		// b0: independent ops — full dual issue.
		mkBundle("b0{r3=r1+r1 | r4=r1+r1+r1...}",
			mkOp("r3=r1+r1", add, 3, 1, reg.NewRef(regs[1], nil)),
			mkOp("r4=r1*3", mul, 4, 1, reg.NewConst(3))),
		// b1: lane1 depends on b0's lane0 result — the hazard interface
		// stalls the whole bundle until r3 is written back (lockstep).
		mkBundle("b1{r5=r2*3 | r6=r3*11}",
			mkOp("r5=r2*3", mul, 5, 2, reg.NewConst(3)),
			mkOp("r6=r3*11", mul, 6, 3, reg.NewConst(11))),
	}
}
