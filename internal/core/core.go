// Package core implements RCPN — the Reduced Colored Petri Net of the paper —
// and the high-performance cycle-accurate simulation engine generated from it.
//
// An RCPN redefines CPN concepts for pipelined-processor modeling (§3):
//
//   - A Stage is a pipeline storage element (latch, reservation station) with
//     finite capacity; the virtual "end" stage has unlimited capacity.
//   - A Place is an instruction state bound to a stage. Places sharing a
//     stage share its capacity; a place's tokens are stored in its stage.
//   - A Transition is the work performed when an instruction changes state.
//     It is enabled when its guard holds, required tokens are present AND
//     the stages of its output places have spare capacity — the redefinition
//     that eliminates CPN's back-edge capacity loops.
//   - Arcs carry priorities: the output transitions of a place are tried in
//     priority order and the first enabled one fires (deterministic choice,
//     e.g. bypass path preferred over register-file read).
//   - Tokens are reservation tokens (no data; occupancy only, kept as
//     per-place counters) or instruction tokens (decoded instructions).
//   - Delays on places, transitions and tokens model multi-cycle units and
//     data-dependent latencies; a token delay overrides the delay of the
//     place the token moves into.
//
// The engine implements the paper's §4 optimizations: a static
// sorted-transitions table per (place, instruction class) computed before
// simulation (Fig. 6), per-place token processing (Fig. 7), and a main loop
// that evaluates places in reverse topological order so that only places
// queried through feedback paths need the two-list (master/slave) algorithm
// (Fig. 8). On top of Fig. 8 the loop is event-driven: only *active* places
// (those holding a ready token) are visited each cycle, with delayed tokens
// scheduled on a wakeup wheel — see engine.go; SetFullSweep restores the
// literal full-order sweep for ablation.
package core

import (
	"fmt"

	"rcpn/internal/obsv"
)

// ClassID identifies an instruction's operation class; each class has its
// own sub-net. AnyClass marks transitions belonging to the instruction-
// independent sub-net, which apply to tokens of every class.
type ClassID int

// AnyClass marks instruction-independent transitions (e.g. a shared decode
// stage) that accept tokens of every class.
const AnyClass ClassID = -1

// Stage is a pipeline storage element with a capacity shared by all places
// assigned to it.
type Stage struct {
	Name      string
	Capacity  int // <= 0 means unlimited (the virtual end stage)
	occupancy int // live instruction + reservation tokens
	id        int
}

// Unlimited reports whether the stage has no capacity bound.
func (s *Stage) Unlimited() bool { return s.Capacity <= 0 }

// Free returns how many more tokens the stage accepts this cycle.
func (s *Stage) Free() int {
	if s.Unlimited() {
		return 1 << 30
	}
	return s.Capacity - s.occupancy
}

// Occupancy returns the number of tokens currently held (including staged
// arrivals of two-list places and reservation tokens).
func (s *Stage) Occupancy() int { return s.occupancy }

// ID returns the stage's dense creation index.
func (s *Stage) ID() int { return s.id }

// Place is an instruction state assigned to a pipeline stage.
type Place struct {
	Name  string
	Stage *Stage
	// Delay is the default residency delay: how many cycles a token must sit
	// in this place before its output transitions may consider it. Places
	// are created with Delay 1 (one pipeline stage per cycle).
	Delay int64
	// TwoList marks the place as using the two-list (master/slave latch)
	// algorithm: arrivals stay invisible until the start of the next cycle.
	// Build sets it automatically for places read through feedback paths;
	// models may also set it explicitly.
	TwoList bool
	// End marks the virtual final state: tokens reaching it retire.
	End bool

	id     int
	net    *Net
	tokens []*Token        // visible tokens
	staged []*Token        // arrivals pending promotion (TwoList only)
	out    [][]*Transition // per-class sorted transition lists (compiled)

	// meta and stagedMeta mirror tokens and staged index-for-index with
	// the fields the cycle loop scans — readiness cycle and class: the
	// struct-of-arrays half of the token hot path. The engine walks these
	// dense slices and dereferences a *Token only once it is actually
	// going to probe transitions for it (engine.go). Both fields are
	// written exactly once per residency (deliver), so the mirrors are
	// coherent by construction.
	meta       []tokMeta
	stagedMeta []tokMeta

	// Event-driven scheduling state (see engine.go).
	pos        int  // index in the reverse topological order (set by Build)
	inPromoteQ bool // queued for two-list promotion at next cycle start

	reservations int // visible reservation tokens
}

// ID returns the place's dense index, usable as a reg.StateQuerier state.
func (p *Place) ID() int { return p.id }

// Stalls returns the token-cycles in which a resident instruction token had
// no enabled output transition. The counters of all places live in one
// dense net-owned slice indexed by place id — the same index space the
// engine's other per-place state uses — so the stall-path increment
// touches a flat array instead of scattered Place structs.
func (p *Place) Stalls() uint64 { return p.net.stalls[p.id] }

// Position returns the place's slot in the reverse topological evaluation
// order (valid after Build; 0 is evaluated first). Code generators walk the
// order through this to emit stage step functions in engine order.
func (p *Place) Position() int { return p.pos }

// Tokens returns the currently visible instruction tokens (oldest first).
// The returned slice is owned by the place; callers must not mutate it.
func (p *Place) Tokens() []*Token { return p.tokens }

// ForEachToken visits every instruction token held by the place, including
// arrivals still staged in a two-list buffer (pipeline-flush support).
func (p *Place) ForEachToken(f func(*Token)) {
	for _, t := range p.tokens {
		f(t)
	}
	for _, t := range p.staged {
		f(t)
	}
}

// Reservations returns the visible reservation-token count.
func (p *Place) Reservations() int { return p.reservations }

// tokMeta is one slot of a place's struct-of-arrays token mirror: the
// residency-entry deadline and the class, the only token fields the cycle
// loop needs before committing to fire.
type tokMeta struct {
	ready int64
	cls   ClassID
}

// Transition is the functionality executed when an instruction moves between
// two places (or is produced, for source transitions of the instruction-
// independent sub-net).
type Transition struct {
	Name  string
	Class ClassID
	From  *Place // nil for source transitions
	To    *Place // nil only if the action always re-routes (not supported; required)
	// Priority orders the output arcs of From: lower fires first.
	Priority int
	// Delay is the execution delay of the transition's functionality, added
	// to the residency delay of the destination place.
	Delay int64
	// Guard is the arc guard condition; nil means always true. Guards must
	// be side-effect free.
	Guard func(tok *Token) bool
	// Action is the transition function, run when the transition fires.
	Action func(tok *Token)
	// ResIn lists places from which one reservation token is consumed per
	// firing (dotted input arcs).
	ResIn []*Place
	// ResOut lists places into which one reservation token is produced per
	// firing (dotted output arcs).
	ResOut []*Place
	// Reads lists places whose token state the guard or action inspects
	// through feedback queries (e.g. RegRef.CanReadIn(state)). Build uses
	// these arcs to decide which places need the two-list algorithm.
	Reads []*Place
	// Explain, when set, sub-classifies a false Guard for stall
	// attribution (e.g. RAW wait vs writeback wait). It is consulted only
	// on the profiling slow path, never during normal simulation, and
	// must be side-effect free like the guard itself.
	Explain func(tok *Token) obsv.StallKind

	// Fires counts how many times the transition fired.
	Fires uint64

	id int
	// Compiled fast-path facts (set by Build).
	needCap bool   // firing consumes destination-stage capacity
	capOf   *Stage // the stage whose capacity is consumed
	hasRes  bool   // transition has reservation arcs
}

// ID returns the transition's dense creation index (also its identity in
// trace Ops tables).
func (t *Transition) ID() int { return t.id }

// NeedsCapacity reports whether firing the transition consumes destination-
// stage capacity (valid after Build): false for self-loops and for moves
// into end/unlimited stages. Code generators use this to decide whether to
// emit a latch-free check before the inlined guard.
func (t *Transition) NeedsCapacity() bool { return t.needCap }

// Token is an RCPN token. Instruction tokens carry the decoded instruction
// in Data; reservation tokens are not Token values (they are per-place
// counters, since they carry no data — §4).
type Token struct {
	Class ClassID
	// Data is the decoded-instruction payload, opaque to the engine.
	Data any
	// Delay, when set non-zero by a transition, overrides the residency
	// delay of the next place this token enters, then resets — the paper's
	// "t.delay = mem.delay(addr)" idiom for data-dependent latencies.
	Delay int64

	place   *Place
	readyAt int64  // first cycle output transitions may consider the token
	movedAt int64  // cycle of last firing (one move per cycle)
	staged  bool   // sitting in a two-list staging buffer
	pooled  bool   // sitting in a free list (double-put guard)
	idx     int32  // arena slot index; -1 when not arena-allocated
	seq     uint64 // trace identity, assigned at birth when tracing
	// extState is the residency state of a token driven by a generated
	// simulator, which keeps no Place structures at run time (internal/gen).
	// -1 means unset; InState falls back to it only when place is nil, so
	// the interpreted fast path is unchanged.
	extState int
}

// Place returns the token's current place (nil after retirement or before
// injection).
func (t *Token) Place() *Place { return t.place }

// InState reports whether the token currently resides, visibly, in the place
// with the given ID. Tokens staged in a two-list place are not yet visible —
// this is exactly the beginning-of-cycle semantics feedback queries need.
// It implements reg.StateQuerier. Tokens outside any net (generated
// simulators keep no places at run time) answer from the state set with
// SetExternalState.
func (t *Token) InState(state int) bool {
	if t.place != nil {
		return t.place.id == state && !t.staged
	}
	return state >= 0 && t.extState == state
}

// SetExternalState records the residency state a generated simulator's
// feedback queries should see for this token (-1 = none). It has no effect
// on tokens living inside a net, where the place pointer wins.
func (t *Token) SetExternalState(state int) { t.extState = state }

// Ready reports whether the token's residency delay has elapsed.
func (t *Token) Ready(now int64) bool { return t.readyAt <= now }

// Net is an RCPN model plus its compiled simulation structures.
type Net struct {
	stages      []*Stage
	places      []*Place
	transitions []*Transition
	sources     []*Source

	// sorted[placeID][classID+1] is the paper's sorted_transitions table
	// (Fig. 6): the output transitions of a place that an instruction token
	// of a class can take, in arc-priority order. Index 0 would be AnyClass
	// alone, but AnyClass transitions are merged into every class's list.
	sorted [][][]*Transition

	order        []*Place // reverse topological evaluation order
	twoList      []*Place
	numClasses   int
	cycle        int64
	built        bool
	retire       func(tok *Token)
	RetiredCount uint64

	// dynamicSearch disables the static sorted_transitions table and makes
	// the engine search all transitions for every token each cycle, the way
	// a generic Petri-net simulator must. It exists only to quantify the
	// Fig. 6 optimization in the ablation benchmarks.
	dynamicSearch bool
	dynScratch    []*Transition

	// Event-driven scheduling state (see engine.go). sweep selects the
	// full-order ablation loop; the rest implement the active-place set.
	sweep      bool
	activeMask []uint64          // bit per order position: process this cycle
	nextMask   []uint64          // armed for the next cycle (delay-1 fast path)
	promoteQ   []*Place          // two-list places with staged arrivals
	wheel      [][]int32         // wakeup wheel of positions, cycle & wheelMask
	farWake    map[int64][]int32 // wakeups beyond the wheel horizon

	// stalls holds every place's stall counter, indexed by place id: the
	// observability counters folded into the same dense index space as the
	// rest of the per-place engine state. Place.Stalls reads it back.
	stalls []uint64

	// Observability attachments (see obsv.go); nil unless enabled.
	tracer     *obsv.Tracer
	prof       *obsv.StallProfile
	profStages []*Stage   // finite stages in the profile, in id order
	profPlaces [][]*Place // per profiled stage: its non-end places
	profFired  []int64    // per stage id: last cycle a transition fired out
	tokSeq     uint64     // trace token-identity counter
}

// SetDynamicSearch toggles the ablation mode in which enabled transitions
// are located by scanning and sorting the full transition list per token per
// cycle instead of via the precomputed sorted_transitions table.
func (n *Net) SetDynamicSearch(on bool) { n.dynamicSearch = on }

// Source is a transition of the instruction-independent sub-net that
// generates instruction tokens (the fetch unit). It is enabled when its
// guard holds and the destination stage has capacity; Fire returns the new
// token, or nil to generate nothing this cycle.
type Source struct {
	Name  string
	To    *Place
	Guard func() bool
	Fire  func() *Token
	// Fires counts generated tokens.
	Fires uint64
	// Stalls counts cycles the source was blocked by capacity or guard.
	Stalls uint64
}

// NewNet creates an empty RCPN model with the given number of instruction
// classes (ClassIDs 0..numClasses-1).
func NewNet(numClasses int) *Net {
	if numClasses < 1 {
		panic("core: need at least one instruction class")
	}
	return &Net{numClasses: numClasses}
}

// NumClasses returns the number of instruction classes.
func (n *Net) NumClasses() int { return n.numClasses }

// Cycle returns the current cycle number.
func (n *Net) CycleCount() int64 { return n.cycle }

// Stage adds a pipeline stage with the given capacity (<=0 = unlimited).
func (n *Net) Stage(name string, capacity int) *Stage {
	s := &Stage{Name: name, Capacity: capacity, id: len(n.stages)}
	n.stages = append(n.stages, s)
	return s
}

// Place adds a place assigned to stage, with the default residency delay of
// one cycle.
func (n *Net) Place(name string, stage *Stage) *Place {
	if stage == nil {
		panic("core: place " + name + " needs a stage")
	}
	p := &Place{Name: name, Stage: stage, Delay: 1, id: len(n.places), net: n}
	n.places = append(n.places, p)
	n.stalls = append(n.stalls, 0)
	return p
}

// EndPlace adds the virtual final place: an unlimited-capacity stage whose
// arriving tokens retire immediately.
func (n *Net) EndPlace(name string) *Place {
	p := n.Place(name, n.Stage(name+".stage", 0))
	p.End = true
	p.Delay = 0
	return p
}

// AddTransition registers t and returns it.
func (n *Net) AddTransition(t *Transition) *Transition {
	if t.To == nil {
		panic("core: transition " + t.Name + " needs a destination place")
	}
	if t.Class < AnyClass || int(t.Class) >= n.numClasses {
		panic(fmt.Sprintf("core: transition %s: bad class %d", t.Name, t.Class))
	}
	t.id = len(n.transitions)
	n.transitions = append(n.transitions, t)
	return t
}

// AddSource registers a token-generating source transition.
func (n *Net) AddSource(s *Source) *Source {
	if s.To == nil {
		panic("core: source " + s.Name + " needs a destination place")
	}
	n.sources = append(n.sources, s)
	return s
}

// OnRetire installs the callback invoked when an instruction token reaches
// an end place (after the arriving transition's action ran).
func (n *Net) OnRetire(f func(tok *Token)) { n.retire = f }

// Places returns all places in creation order.
func (n *Net) Places() []*Place { return n.places }

// Transitions returns all transitions in creation order.
func (n *Net) Transitions() []*Transition { return n.transitions }

// Sources returns all source transitions in creation order.
func (n *Net) Sources() []*Source { return n.sources }

// Order returns the compiled place evaluation order (after Build).
func (n *Net) Order() []*Place { return n.order }

// TwoListPlaces returns the places using the two-list algorithm (after
// Build).
func (n *Net) TwoListPlaces() []*Place { return n.twoList }

// Built reports whether Build has compiled the net.
func (n *Net) Built() bool { return n.built }
