package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestStallPartition: Validate accepts an exact slot partition and names
// the offending stage when a slot is double-counted or skipped.
func TestStallPartition(t *testing.T) {
	p := NewStallProfile("IF", "EX")
	for c := 0; c < 10; c++ {
		p.Advance(0)
		if c%2 == 0 {
			p.Advance(1)
		} else {
			p.Stall(1, StallRAW)
		}
		p.EndCycle()
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Stall(1, StallEmpty) // 11 slots in a 10-cycle profile
	err := p.Validate()
	if err == nil {
		t.Fatal("Validate accepted an over-full stage")
	}
	if !strings.Contains(err.Error(), "EX") {
		t.Fatalf("violation does not name the stage: %v", err)
	}
}

// TestStallSnapshotJSON: snapshots carry only nonzero kinds, and their
// JSON encoding is byte-deterministic.
func TestStallSnapshotJSON(t *testing.T) {
	p := NewStallProfile("IF")
	p.Advance(0)
	p.EndCycle()
	p.Stall(0, StallCapacity)
	p.EndCycle()
	p.BypassServed = 3

	snap := p.Snapshot()
	if len(snap.Stages[0].Stalls) != 1 {
		t.Fatalf("snapshot carries zero-count kinds: %v", snap.Stages[0].Stalls)
	}
	if snap.Stages[0].Stalls["capacity"] != 1 {
		t.Fatalf("capacity stall lost: %v", snap.Stages[0].Stalls)
	}
	a, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", a, b)
	}
	if (*StallProfile)(nil).Snapshot() != nil {
		t.Fatal("nil profile must snapshot to nil")
	}
}

// TestStallMerge: seeding a fresh profile from a snapshot and accruing
// more cycles equals one straight-through profile — the resume primitive.
func TestStallMerge(t *testing.T) {
	account := func(p *StallProfile, cycles int) {
		for c := 0; c < cycles; c++ {
			p.Advance(0)
			if c%3 == 0 {
				p.Stall(1, StallDelay)
			} else {
				p.Advance(1)
			}
			p.EndCycle()
		}
		p.BypassServed += uint64(cycles)
	}

	whole := NewStallProfile("IF", "EX")
	account(whole, 7)
	account(whole, 5)

	donor := NewStallProfile("IF", "EX")
	account(donor, 7)
	resumed := NewStallProfile("IF", "EX")
	if err := resumed.Merge(donor.Snapshot()); err != nil {
		t.Fatal(err)
	}
	account(resumed, 5)

	if err := resumed.Validate(); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(whole.Snapshot())
	b, _ := json.Marshal(resumed.Snapshot())
	if !bytes.Equal(a, b) {
		t.Fatalf("merged profile differs from straight-through:\n%s\n%s", a, b)
	}
	if err := resumed.Merge(nil); err != nil {
		t.Fatal("nil snapshot must merge as a no-op")
	}

	// Mismatches are rejected without touching the profile.
	before, _ := json.Marshal(resumed.Snapshot())
	if err := resumed.Merge(NewStallProfile("IF").Snapshot()); err == nil {
		t.Fatal("accepted a snapshot with the wrong stage count")
	}
	bad := NewStallProfile("IF", "MEM").Snapshot()
	if err := resumed.Merge(bad); err == nil {
		t.Fatal("accepted a snapshot with mismatched stage names")
	}
	bad = NewStallProfile("IF", "EX").Snapshot()
	bad.Stages[1].Stalls["warp"] = 1
	if err := resumed.Merge(bad); err == nil {
		t.Fatal("accepted a snapshot with an unknown stall kind")
	}
	after, _ := json.Marshal(resumed.Snapshot())
	if !bytes.Equal(before, after) {
		t.Fatal("failed merges must leave the profile untouched")
	}
}

// TestStallClone: a clone is independent of the live profile — the
// salvage primitive must not alias stage counters.
func TestStallClone(t *testing.T) {
	p := NewStallProfile("IF")
	p.Advance(0)
	p.EndCycle()
	c := p.Clone()
	p.Advance(0)
	p.EndCycle()
	if c.Cycles != 1 || c.Stages[0].Occupied != 1 {
		t.Fatalf("clone tracked the original: %+v", c)
	}
	if p.Cycles != 2 {
		t.Fatalf("original perturbed: %+v", p)
	}
}

// TestTopStalls sorts by descending count with kind-order ties.
func TestTopStalls(t *testing.T) {
	var s StageProfile
	s.Counts[StallRAW] = 5
	s.Counts[StallEmpty] = 9
	s.Counts[StallDelay] = 5
	got := s.TopStalls()
	want := []StallKind{StallEmpty, StallDelay, StallRAW}
	if len(got) != len(want) {
		t.Fatalf("TopStalls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopStalls = %v, want %v", got, want)
		}
	}
}

// TestTracerRing: a full ring keeps the most recent events in emission
// order and counts what it evicted.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for c := int64(0); c < 10; c++ {
		tr.Birth(c, uint64(c), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.Cycle != want {
			t.Fatalf("event %d at cycle %d, want %d (ring must keep the last events, oldest first)", i, e.Cycle, want)
		}
	}
}

// TestBinaryRoundTrip: WriteBinary/ReadBinary preserve events, name
// tables and the drop count exactly.
func TestBinaryRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	tr.Locs = []string{"IF", "EX"}
	tr.Ops = []string{"fetch", "alu"}
	tr.Birth(1, 7, 0)
	tr.Move(2, 7, 1, 0)
	tr.Fire(2, 7, 1, 1)
	tr.Retire(3, 7, 1)
	tr.dropped = 42

	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Dropped() != 42 {
		t.Fatalf("dropped = %d, want 42", rt.Dropped())
	}
	a, b := tr.Events(), rt.Events()
	if len(a) != len(b) {
		t.Fatalf("%d events, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: %+v, want %+v", i, b[i], a[i])
		}
	}
	if strings.Join(rt.Locs, ",") != "IF,EX" || strings.Join(rt.Ops, ",") != "fetch,alu" {
		t.Fatalf("name tables lost: %v %v", rt.Locs, rt.Ops)
	}
}

// TestReadBinaryRejects: bad magic and truncation are errors, never
// silent partial traces.
func TestReadBinaryRejects(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTATRCE-------")); err == nil {
		t.Fatal("accepted bad magic")
	}
	tr := NewTracer(4)
	tr.Birth(1, 1, 0)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := len(whole) - 1; cut > 8; cut /= 2 {
		if _, err := ReadBinary(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("accepted trace truncated to %d/%d bytes", cut, len(whole))
		}
	}
}

// TestWrapStalls: the checkpoint framing round-trips a snapshot plus an
// opaque payload, and passes unframed payloads through untouched.
func TestWrapStalls(t *testing.T) {
	p := NewStallProfile("IF")
	p.Advance(0)
	p.EndCycle()
	payload := []byte("RCPNCKPT-opaque-engine-bytes")

	wrapped := WrapStalls(p.Snapshot(), payload)
	snap, rest := SplitStalls(wrapped)
	if snap == nil || snap.Cycles != 1 {
		t.Fatalf("snapshot lost in framing: %+v", snap)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload corrupted: %q", rest)
	}
	if snap, rest := SplitStalls(payload); snap != nil || !bytes.Equal(rest, payload) {
		t.Fatal("unframed payload must pass through untouched")
	}
	// A truncated frame degrades to pass-through, never panics.
	if snap, rest := SplitStalls(wrapped[:len(stallMagic)+2]); snap != nil || rest == nil {
		t.Fatal("truncated frame must degrade to pass-through")
	}
}

// TestChromeJSON: the Chrome export is valid JSON, reports drops, and a
// move closes the source residency before opening the destination.
func TestChromeJSON(t *testing.T) {
	tr := NewTracer(2)
	tr.Locs = []string{"IF", "EX"}
	tr.Birth(0, 1, 0) // evicted by the two later events
	tr.Move(1, 1, 1, 0)
	tr.Fire(1, 1, 1, 0)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var v struct {
		OtherData struct {
			Dropped uint64 `json:"dropped"`
		} `json:"otherData"`
		Events []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    *int64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if v.OtherData.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", v.OtherData.Dropped)
	}
	// The move renders as E(IF) then B(EX); the fire as an instant.
	phases := make([]string, 0, len(v.Events))
	for _, e := range v.Events {
		if e.TS == nil {
			t.Fatalf("event lacks ts: %+v", e)
		}
		phases = append(phases, e.Phase+":"+e.Name)
	}
	if got := strings.Join(phases, " "); got != "E:IF B:EX i:op0" {
		t.Fatalf("events = %q, want %q", got, "E:IF B:EX i:op0")
	}
}

// TestMetricsWriter: a page with every metric shape passes the strict
// validator, renders deterministic sorted labels, and formats whole
// floats as integers.
func TestMetricsWriter(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Gauge("g", "a gauge", 3, nil)
	m.Counter("c", "a counter", 7, map[string]string{"b": "2", "a": "1"})
	m.MultiGauge("mg", "a family", []LabeledValue{
		{Labels: map[string]string{"state": "x"}, Value: 1},
		{Labels: map[string]string{"state": "y"}, Value: 0},
	})
	m.HistogramMetric("hist", "a histogram", h)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	page := buf.String()

	if n, err := ValidateProm([]byte(page)); err != nil {
		t.Fatalf("page invalid: %v\n%s", err, page)
	} else if n != 9 { // g, c, mg×2, hist: 3 buckets + sum + count
		t.Fatalf("validator saw %d samples, want 9\n%s", n, page)
	}
	for _, want := range []string{
		"g 3\n",
		`c{a="1",b="2"} 7` + "\n",
		`hist_bucket{le="1"} 1` + "\n",
		`hist_bucket{le="10"} 2` + "\n",
		`hist_bucket{le="+Inf"} 3` + "\n",
		"hist_sum 55.5\n",
		"hist_count 3\n",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("page lacks %q:\n%s", want, page)
		}
	}
}

// TestValidatePromRejects: the strict parser is actually strict.
func TestValidatePromRejects(t *testing.T) {
	for name, page := range map[string]string{
		"untyped sample": "orphan 1\n",
		"bad value":      "# TYPE x gauge\nx banana\n",
		"missing value":  "# TYPE x gauge\nx\n",
		"empty page":     "",
	} {
		if _, err := ValidateProm([]byte(page)); err == nil {
			t.Errorf("%s: accepted %q", name, page)
		}
	}
}
