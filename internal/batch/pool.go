package batch

import (
	"errors"
	"runtime"
	"sync"
)

// Run covers the fixed-matrix case: all jobs known up front, one Report at
// the end. Pool is the streaming counterpart for long-lived callers (the
// simulation service): jobs arrive one at a time, wait in a bounded FIFO
// queue, and complete through a per-job callback. The bounded queue is the
// backpressure mechanism — TrySubmit refuses instead of buffering without
// limit, so an overloaded caller can shed load (HTTP 429) rather than grow
// memory.

// ErrQueueFull is returned by TrySubmit when the queue is at capacity.
var ErrQueueFull = errors.New("batch: queue full")

// ErrPoolClosed is returned by TrySubmit after Close.
var ErrPoolClosed = errors.New("batch: pool closed")

type poolItem struct {
	job  Job
	done func(Result)
}

// Pool is a fixed set of workers draining a bounded FIFO job queue. Jobs
// run with the same isolation as Run: panic recovery, the per-job deadline
// from Options, and the sweep-wide Options.Context.
type Pool struct {
	queue chan poolItem
	opt   Options
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts the workers. queueDepth bounds the jobs waiting to be
// claimed (minimum 1); Options.Workers sizes the pool as in Run.
func NewPool(queueDepth int, opt Options) *Pool {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{queue: make(chan poolItem, queueDepth), opt: opt}
	for w := 0; w < opt.Workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for it := range p.queue {
				r := runOne(&it.job, p.opt.parent(), p.opt.Timeout)
				if it.done != nil {
					it.done(r)
				}
			}
		}()
	}
	return p
}

// Workers is the pool's concurrency.
func (p *Pool) Workers() int { return p.opt.Workers }

// Depth is the number of jobs waiting in the queue (claimed jobs excluded).
func (p *Pool) Depth() int { return len(p.queue) }

// Cap is the queue capacity.
func (p *Pool) Cap() int { return cap(p.queue) }

// TrySubmit enqueues a job without blocking. done, when non-nil, is called
// exactly once with the job's result, on the worker goroutine that ran it.
// ErrQueueFull means the caller should shed or retry; ErrPoolClosed means
// the pool is draining or closed.
func (p *Pool) TrySubmit(j Job, done func(Result)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- poolItem{job: j, done: done}:
		return nil
	default:
		return ErrQueueFull
	}
}

// Close stops admission, runs every already-queued job to completion, and
// waits for the workers to exit. Queued jobs still run under
// Options.Context — cancel it (e.g. after a drain grace period) to turn the
// remaining queue into fast Canceled results instead of full runs. Close is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
