// Package ckpt implements serializable architectural checkpoints — the
// substrate of sampled simulation. The paper's conclusion points at a
// spectrum from "fast functional simulators" to cycle-accurate detail; the
// standard way real simulator stacks exploit that spectrum (SMARTS/SimPoint-
// style sampling) is to fast-forward functionally, snapshot, and run detailed
// intervals from the snapshots. A Checkpoint is such a snapshot:
//
//   - full architected state: the 16 ARM registers (r15 = next fetch PC),
//     packed NZCV flags, retired-instruction count, emitted output and exit
//     status;
//   - memory as the canonical sparse page set (the same canonical form
//     mem.Memory.Digest hashes: populated, non-zero pages in ascending
//     order), so a restored memory is byte-identical to the donor;
//   - optional warm microarchitectural state — I/D cache residency (and,
//     for the SimpleScalar-like baseline, TLBs) plus branch-predictor
//     history — so a detailed interval does not start against cold
//     structures (the cold-start bias functional warmup exists to remove).
//
// Checkpoints are captured from the ISS or from any cycle simulator at a
// drained-pipeline boundary (no in-flight instructions), which is the only
// point where architected state alone determines all future behavior. Every
// simulator in this repository can restore one, so any (producer, consumer)
// handoff pair works: ISS -> RCPN-StrongARM, ISS -> baseline, StrongARM ->
// StrongARM across processes, and so on.
//
// The binary codec (codec.go) is versioned, deterministic and
// round-trippable: Encode of a Decode output is byte-identical, and two
// captures of equal state encode equally regardless of access history.
package ckpt

import (
	"fmt"

	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/mem"
)

// Page is one captured memory page: Base is the page-aligned address, Data
// the mem.PageBytes-sized contents.
type Page struct {
	Base uint32
	Data []byte
}

// Checkpoint is a complete architectural snapshot plus optional warm
// microarchitectural state.
type Checkpoint struct {
	// R holds r0..r14; R[15] is the address of the next instruction to
	// fetch (the ISS convention).
	R [16]uint32
	// Flags is the packed NZCV (bit 3 = N, 2 = Z, 1 = C, 0 = V).
	Flags uint32
	// Instret counts architecturally retired instructions at the snapshot.
	Instret uint64
	// Exited/Exit record program termination (a checkpoint of a finished
	// program restores as finished).
	Exited bool
	Exit   uint32
	// Output and Text are the words and bytes emitted so far (SWI 1/2);
	// carrying them across the handoff keeps a restored run's final output
	// identical to an uninterrupted one.
	Output []uint32
	Text   []byte
	// Mem is the canonical sparse page set, ascending by Base.
	Mem []Page

	// Warm microarchitectural state; nil means "not captured" and the
	// consumer keeps its structures cold (reset).
	ICache *mem.CacheState
	DCache *mem.CacheState
	ITLB   *mem.CacheState
	DTLB   *mem.CacheState
	Pred   *bpred.State
}

// PC returns the next fetch address.
func (ck *Checkpoint) PC() uint32 { return ck.R[15] }

// ArchFlags returns the unpacked NZCV flags.
func (ck *Checkpoint) ArchFlags() arm.Flags {
	return arm.Flags{N: ck.Flags&8 != 0, Z: ck.Flags&4 != 0, C: ck.Flags&2 != 0, V: ck.Flags&1 != 0}
}

// SetArchFlags stores f in packed form.
func (ck *Checkpoint) SetArchFlags(f arm.Flags) {
	var v uint32
	if f.N {
		v |= 8
	}
	if f.Z {
		v |= 4
	}
	if f.C {
		v |= 2
	}
	if f.V {
		v |= 1
	}
	ck.Flags = v
}

// CaptureMem copies m's contents as the canonical page set.
func CaptureMem(m *mem.Memory) []Page {
	var pages []Page
	m.ForEachPage(func(base uint32, data []byte) {
		pages = append(pages, Page{Base: base, Data: append([]byte(nil), data...)})
	})
	return pages
}

// RestoreMem resets m and installs the captured pages.
func RestoreMem(m *mem.Memory, pages []Page) {
	m.Reset()
	for _, p := range pages {
		m.SetPage(p.Base, p.Data)
	}
}

// CapturePred snapshots p's state if the predictor supports it, else nil.
func CapturePred(p bpred.Predictor) *bpred.State {
	if s, ok := p.(bpred.Snapshotter); ok {
		st := s.Snapshot()
		return &st
	}
	return nil
}

// RestorePred resets p, then installs the snapshot if one is present and p
// supports restoring. A nil snapshot leaves p cold — never stale: restore
// always clears whatever warm history the predictor accumulated before.
func RestorePred(p bpred.Predictor, st *bpred.State) error {
	s, ok := p.(bpred.Snapshotter)
	if !ok {
		if st != nil {
			return fmt.Errorf("ckpt: predictor %T cannot restore warm state", p)
		}
		return nil
	}
	s.Reset()
	if st == nil {
		return nil
	}
	return s.Restore(*st)
}

// CaptureCache snapshots c (nil-safe).
func CaptureCache(c *mem.Cache) *mem.CacheState {
	if c == nil {
		return nil
	}
	st := c.State()
	return &st
}

// RestoreCache resets c, then installs the snapshot if present (nil-safe on
// both sides; a snapshot without a cache to receive it is ignored, since the
// consumer model simply does not have that structure).
func RestoreCache(c *mem.Cache, st *mem.CacheState) error {
	if c == nil {
		return nil
	}
	c.Reset()
	if st == nil {
		return nil
	}
	return c.SetState(*st)
}
