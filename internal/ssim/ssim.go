// Package ssim reimplements the comparison baseline of the paper's
// evaluation: a SimpleScalar-style (sim-outorder) cycle-accurate simulator.
// The paper measures its generated simulators against "the popular
// SimpleScalar ARM simulator ... configured for the StrongArm architecture
// with all checkings disabled and simplest parameter values" and reports
// ~0.6 million cycles/second against 8-12 for RCPN.
//
// This baseline follows sim-outorder's actual architecture, which is where
// that cost comes from:
//
//   - a Register Update Unit (RUU) — a circular window of per-instruction
//     records allocated at dispatch (no token caching);
//   - functional execution at dispatch time by an oracle core (SimpleScalar's
//     speculative functional core), with the timing model replaying the
//     dependences separately;
//   - dependence tracking through a create vector and per-producer consumer
//     chains walked at writeback;
//   - a load/store queue searched linearly for memory dependences;
//   - an ordered event queue for functional-unit completions;
//   - per-stage re-derivation of instruction fields from the raw word
//     (SimpleScalar extracts fields through macros at every use site; here
//     every pipeline stage re-decodes the word it handles);
//   - the fixed main loop commit -> writeback -> issue -> dispatch -> fetch
//     executed every cycle regardless of model.
//
// Configured "simplest": width 1, in-order issue, StrongARM-class caches and
// static not-taken prediction, matching the paper's baseline setup. It is
// functionally exact (the oracle is the ISS), cross-checked in the tests.
package ssim

import (
	"fmt"

	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/iss"
	"rcpn/internal/mem"
	"rcpn/internal/obsv"
)

// Config selects the baseline's parameters.
type Config struct {
	Caches    mem.Hierarchy
	Predictor bpred.Predictor
	StackTop  uint32
	RUUSize   int // register update unit entries (default 8)
	IFQSize   int // fetch queue entries (default 4)
	Width     int // fetch/dispatch/issue/commit width (default 1)

	// ITLB/DTLB model the SA-110's 32-entry translation buffers;
	// sim-outorder performs a TLB lookup on every fetch and memory access.
	// nil selects the defaults.
	ITLB, DTLB *mem.Cache
}

// defaultTLB returns a 32-entry fully-associative TLB over 4KB pages.
func defaultTLB(name string) *mem.Cache {
	return mem.MustCache(mem.CacheConfig{
		Name: name, Sets: 1, Ways: 32, LineBytes: 4096,
		HitLatency: 1, MissLatency: 30,
	})
}

// pseudo-register index used for the NZCV flags in dependence tracking.
const flagReg = 15

// ruuEntry is one in-flight instruction record (a Register Update Unit
// slot plus, for memory operations, its load/store-queue half).
type ruuEntry struct {
	seq       uint64
	raw, addr uint32

	issued    bool
	completed bool

	idepsLeft int         // outstanding input dependences
	consumers []*ruuEntry // entries waiting on this one (RDEP chain)

	isLoad, isStore bool
	ea              uint32 // effective address (known from the oracle)
	memExtra        int64  // extra transfer cycles (block transfers)
	mulRs           uint32 // multiplier operand value for timing

	isBranch   bool
	mispred    bool
	actualNext uint32

	spec     bool // wrong-path (speculative) instruction
	squashed bool // rolled back; pending events are ignored
}

// Sim is the baseline simulator.
type Sim struct {
	oracle *iss.CPU // functional core (executes at dispatch)

	ICache *mem.Cache
	DCache *mem.Cache
	ITLB   *mem.Cache
	DTLB   *mem.Cache
	Pred   bpred.Predictor

	cfg Config

	// Fetch.
	fetchPC   uint32
	ifq       []fetchSlot
	recover   *ruuEntry // mispredicted branch blocking the front end
	refetchAt int64     // cycle fetch may resume after recovery
	holdFetch bool      // front end paused while draining to a checkpoint boundary

	// RUU window, oldest first.
	ruu []*ruuEntry
	seq uint64

	// Create vector: last producer per architectural register (+flags).
	createVec [16]*ruuEntry

	// Event queue, ordered by cycle: functional-unit completions.
	events *event

	// Functional-unit pools: next free cycle.
	aluFree, mulFree, memFree int64

	// Wrong-path (speculative) execution state.
	spec specState

	Cycles  int64
	Instret uint64
	Flushes uint64
	Exited  bool
	Err     error

	// Occupancy statistics, accumulated every cycle the way sim-outorder
	// maintains its per-structure counters.
	RUUOccSum uint64
	IFQOccSum uint64
	IssuedSum uint64

	// Free lists and scratch buffers. They change no modeled behavior —
	// sim-outorder's per-instruction record and event churn stays, only the
	// Go allocator is taken off the hot path.
	entryPool   []*ruuEntry
	entryBlocks [][]ruuEntry // arena backing: entries allocate from contiguous blocks
	entryNext   int          // high-water mark into entryBlocks
	eventPool   *event
	inScratch   []int
	outScratch  []int
	lsmScratch  []uint32

	// Observability attachments (obsv.go); nil unless enabled.
	prof *obsv.StallProfile
	tr   *obsv.Tracer
}

type fetchSlot struct {
	addr     uint32
	predNext uint32
	readyAt  int64
}

type event struct {
	at    int64
	entry *ruuEntry
	next  *event
}

// entryBlockSize sizes the RUU-record arena blocks: comfortably above the
// RUU window plus in-flight wrong-path entries, so a run settles into one
// or two blocks and every live record shares a short run of cache lines.
const entryBlockSize = 256

// newEntry returns a zeroed RUU record, reusing a retired one when possible
// (keeping its consumers capacity) and otherwise carving the next slot out
// of the arena's contiguous blocks.
func (s *Sim) newEntry() *ruuEntry {
	if k := len(s.entryPool); k > 0 {
		e := s.entryPool[k-1]
		s.entryPool = s.entryPool[:k-1]
		cons := e.consumers[:0]
		*e = ruuEntry{}
		e.consumers = cons
		return e
	}
	if s.entryNext == len(s.entryBlocks)*entryBlockSize {
		s.entryBlocks = append(s.entryBlocks, make([]ruuEntry, entryBlockSize))
	}
	e := &s.entryBlocks[s.entryNext/entryBlockSize][s.entryNext%entryBlockSize]
	s.entryNext++
	return e
}

// freeEntry recycles an RUU record. Callers must guarantee no event or
// consumer chain still references it: commit (all producers completed and
// unlinked before issue), rollback (unissued squashed entries, after the
// stale-consumer filter), and the squashed-event drain in writeback.
func (s *Sim) freeEntry(e *ruuEntry) {
	s.entryPool = append(s.entryPool, e)
}

// popIFQ removes the head fetch-queue slot, compacting in place so the
// queue's small backing array is reused for the whole run.
func (s *Sim) popIFQ() {
	copy(s.ifq, s.ifq[1:])
	s.ifq = s.ifq[:len(s.ifq)-1]
}

// New builds the baseline with the program loaded.
func New(p *arm.Program, cfg Config) *Sim {
	if cfg.Caches.I == nil {
		cfg.Caches = mem.DefaultStrongARM()
	}
	if cfg.Predictor == nil {
		cfg.Predictor = bpred.NewNotTaken()
	}
	if cfg.RUUSize <= 0 {
		cfg.RUUSize = 8
	}
	if cfg.IFQSize <= 0 {
		cfg.IFQSize = 4
	}
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	if cfg.ITLB == nil {
		cfg.ITLB = defaultTLB("itlb")
	}
	if cfg.DTLB == nil {
		cfg.DTLB = defaultTLB("dtlb")
	}
	s := &Sim{
		oracle: iss.New(p, cfg.StackTop),
		ICache: cfg.Caches.I,
		DCache: cfg.Caches.D,
		ITLB:   cfg.ITLB,
		DTLB:   cfg.DTLB,
		Pred:   cfg.Predictor,
		cfg:    cfg,
	}
	s.oracle.MaxInstrs = 0
	s.fetchPC = p.Entry
	return s
}

// Output returns the emitted word stream.
func (s *Sim) Output() []uint32 { return s.oracle.Output }

// Text returns the emitted byte stream.
func (s *Sim) Text() []byte { return s.oracle.Text }

// ExitCode returns the program's exit code.
func (s *Sim) ExitCode() uint32 { return s.oracle.Exit }

// Reg returns the architected value of register r.
func (s *Sim) Reg(r arm.Reg) uint32 { return s.oracle.R[r] }

// Mem returns the architected memory (the oracle core's, which is the
// committed state — wrong-path stores live only in the spec overlay).
func (s *Sim) Mem() *mem.Memory { return s.oracle.Mem }

// Flags returns the architected NZCV flags.
func (s *Sim) Flags() arm.Flags { return s.oracle.F }

// CPI returns cycles per committed instruction.
func (s *Sim) CPI() float64 {
	if s.Instret == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instret)
}

// Run simulates until the program exits and the pipeline drains.
func (s *Sim) Run(maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for !s.Exited || len(s.ruu) > 0 {
		if s.Cycles >= maxCycles {
			return fmt.Errorf("ssim: cycle limit %d exceeded at pc=%#08x", maxCycles, s.fetchPC)
		}
		s.cycle()
		if s.Err != nil {
			return s.Err
		}
	}
	return nil
}

// cycle is sim-outorder's main loop: ruu_commit, ruu_writeback, ruu_issue,
// ruu_dispatch, ruu_fetch — every stage every cycle.
func (s *Sim) cycle() {
	s.commit()
	s.writeback()
	s.issue()
	s.dispatch()
	s.fetch()
	s.RUUOccSum += uint64(len(s.ruu))
	s.IFQOccSum += uint64(len(s.ifq))
	if s.prof != nil {
		s.prof.EndCycle()
	}
	s.Cycles++
}

// ---- commit --------------------------------------------------------------

func (s *Sim) commit() {
	committed := 0
	for ; committed < s.cfg.Width && len(s.ruu) > 0; committed++ {
		head := s.ruu[0]
		if !head.completed || head.spec {
			// Not committable: wrong-path head waits for recovery (guard),
			// an unissued head is still dependence-blocked (RAW), an issued
			// one is mid-latency in a functional unit (delay).
			switch {
			case head.spec:
				s.profSlot(stCommit, committed, obsv.StallGuard)
			case !head.issued:
				s.profSlot(stCommit, committed, obsv.StallRAW)
			default:
				s.profSlot(stCommit, committed, obsv.StallDelay)
			}
			return // speculative entries never commit; rollback removes them
		}
		// Field re-derivation at commit (as SimpleScalar's macros do).
		_ = arm.Decode(head.raw, head.addr)
		for r := range s.createVec {
			if s.createVec[r] == head {
				s.createVec[r] = nil
			}
		}
		copy(s.ruu, s.ruu[1:])
		s.ruu = s.ruu[:len(s.ruu)-1]
		s.Instret++
		if s.tr != nil {
			s.tr.Fire(s.Cycles, head.seq, 0, opCommit)
			s.tr.Retire(s.Cycles, head.seq, 0)
		}
		// head completed, so every producer already walked its consumer
		// chain and head's own chain was cleared at writeback: recycle.
		s.freeEntry(head)
	}
	s.profSlot(stCommit, committed, obsv.StallEmpty)
}

// ---- writeback -----------------------------------------------------------

func (s *Sim) writeback() {
	for s.events != nil && s.events.at <= s.Cycles {
		ev := s.events
		s.events = ev.next
		e := ev.entry
		ev.entry = nil
		ev.next = s.eventPool
		s.eventPool = ev
		if e.squashed {
			// Last reference to a rolled-back entry: recycle it.
			s.freeEntry(e)
			continue
		}
		e.completed = true
		if s.tr != nil {
			s.tr.Fire(s.Cycles, e.seq, 0, opComplete)
		}
		// Walk the dependence chain, waking consumers.
		for _, c := range e.consumers {
			c.idepsLeft--
		}
		e.consumers = e.consumers[:0]
		// Branch recovery: when the mispredicted instruction completes, the
		// wrong-path work is rolled back and fetch redirected.
		if e == s.recover {
			s.recover = nil
			s.rollback()
			s.ifq = s.ifq[:0]
			s.fetchPC = e.actualNext
			s.refetchAt = s.Cycles + 1
			s.Flushes++
		}
		_ = arm.Decode(e.raw, e.addr) // per-stage field re-derivation
	}
}

func (s *Sim) schedule(e *ruuEntry, at int64) {
	ev := s.eventPool
	if ev != nil {
		s.eventPool = ev.next
		ev.at, ev.entry, ev.next = at, e, nil
	} else {
		ev = &event{at: at, entry: e}
	}
	if s.events == nil || s.events.at > at {
		ev.next = s.events
		s.events = ev
		return
	}
	cur := s.events
	for cur.next != nil && cur.next.at <= at {
		cur = cur.next
	}
	ev.next = cur.next
	cur.next = ev
}

// ---- issue ---------------------------------------------------------------

// issue scans the RUU oldest-first for ready, unissued entries, honoring
// in-order issue and functional-unit availability.
func (s *Sim) issue() {
	issued := 0
	for _, e := range s.ruu {
		if issued >= s.cfg.Width {
			s.profSlot(stIssue, issued, obsv.StallEmpty)
			return
		}
		if e.issued {
			continue
		}
		// In-order issue ("simplest parameters"): an unissued older entry
		// blocks everything younger.
		if e.idepsLeft > 0 {
			s.profSlot(stIssue, issued, obsv.StallRAW)
			return
		}
		ins := arm.Decode(e.raw, e.addr) // re-derive fields at issue
		var done int64
		switch {
		case e.isLoad:
			if s.memFree > s.Cycles {
				s.profSlot(stIssue, issued, obsv.StallReservation)
				return
			}
			// Search the load/store queue (the older RUU entries) for a
			// store to the same word that has not completed — a memory
			// dependence found by linear scan, as sim-outorder does.
			for _, older := range s.ruu {
				if older == e {
					break
				}
				if older.isStore && !older.completed && older.ea&^3 == e.ea&^3 {
					s.profSlot(stIssue, issued, obsv.StallRAW)
					return // stall until the store completes
				}
			}
			lat := s.dmemLatency(e)
			s.memFree = s.Cycles + lat
			done = s.Cycles + lat
		case e.isStore:
			if s.memFree > s.Cycles {
				s.profSlot(stIssue, issued, obsv.StallReservation)
				return
			}
			lat := s.dmemLatency(e)
			s.memFree = s.Cycles + lat
			done = s.Cycles + 1 // store retires via the write buffer
		case ins.Class == arm.ClassMult:
			if s.mulFree > s.Cycles {
				s.profSlot(stIssue, issued, obsv.StallReservation)
				return
			}
			lat := mulCycles(e.mulRs)
			if ins.Long {
				lat++
			}
			s.mulFree = s.Cycles + lat
			done = s.Cycles + lat
		default:
			if s.aluFree > s.Cycles {
				s.profSlot(stIssue, issued, obsv.StallReservation)
				return
			}
			s.aluFree = s.Cycles + 1
			done = s.Cycles + 1
		}
		e.issued = true
		s.schedule(e, done)
		issued++
		s.IssuedSum++
		if s.tr != nil {
			s.tr.Fire(s.Cycles, e.seq, 0, opIssue)
		}
	}
	s.profSlot(stIssue, issued, obsv.StallEmpty)
}

// dmemLatency charges the data TLB and data cache for a memory operation
// (sim-outorder consults both on every access; a TLB miss serializes with
// the cache access).
func (s *Sim) dmemLatency(e *ruuEntry) int64 {
	lat := int64(1)
	if s.DTLB != nil {
		lat = int64(s.DTLB.Access(e.ea))
	}
	if s.DCache != nil {
		lat += int64(s.DCache.Access(e.ea)) - 1
	}
	return lat + e.memExtra // block transfers move one register per cycle
}

func mulCycles(rs uint32) int64 {
	switch {
	case rs&0xffffff00 == 0 || rs|0xff == 0xffffffff:
		return 1
	case rs&0xffff0000 == 0 || rs|0xffff == 0xffffffff:
		return 2
	case rs&0xff000000 == 0 || rs|0xffffff == 0xffffffff:
		return 3
	default:
		return 4
	}
}
