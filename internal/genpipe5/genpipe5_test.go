package genpipe5_test

import (
	"go/format"
	"os"
	"reflect"
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/gen"
	"rcpn/internal/genpipe5"
	"rcpn/internal/machine"
	"rcpn/internal/obsv"
	"rcpn/internal/workload"
)

// TestCommittedFileFresh is the staleness gate: the checked-in artifact
// must be byte-identical to what rcpngen emits from the current generator
// and spec, and gofmt-clean.
func TestCommittedFileFresh(t *testing.T) {
	want, err := gen.Generate(machine.StrongARMSpec(),
		gen.Options{Package: "genpipe5", Model: "pipe5", OutDir: "internal/genpipe5"})
	if err != nil {
		t.Fatal(err)
	}
	have, err := os.ReadFile("genpipe5.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(have) != string(want) {
		t.Fatalf("genpipe5.go is stale (%d bytes committed, %d generated); regenerate with: go run ./cmd/rcpngen -model pipe5 -pkg genpipe5 -out internal/genpipe5",
			len(have), len(want))
	}
	formatted, err := format.Source(have)
	if err != nil {
		t.Fatal(err)
	}
	if string(formatted) != string(have) {
		t.Fatal("genpipe5.go is not gofmt-clean")
	}
}

const traceCap = 1 << 21

// TestEquivalentToInterpreted pins the generated simulator cycle-exact
// against its interpreted twin (machine.Generate on the same spec) on
// every kernel: same cycle count, same final architected state, same stall
// profile (the full per-stage partition plus operand counters), and a
// byte-identical event trace — every birth, firing, move and retirement on
// the same cycle with the same ids.
func TestEquivalentToInterpreted(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}

			gs := genpipe5.New(p, machine.Config{})
			gtr := obsv.NewTracer(traceCap)
			gs.AttachTrace(gtr)
			gprof := gs.EnableProfile()
			if err := gs.Run(0); err != nil {
				t.Fatalf("generated: %v", err)
			}
			gm := gs.Runtime()

			im, err := machine.Generate(p, machine.StrongARMSpec(), machine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			itr := obsv.NewTracer(traceCap)
			im.AttachTrace(itr)
			iprof := im.EnableProfile()
			if err := im.Run(0); err != nil {
				t.Fatalf("interpreted: %v", err)
			}

			if gs.Cycles != im.Net.CycleCount() {
				t.Errorf("cycles: generated %d, interpreted %d", gs.Cycles, im.Net.CycleCount())
			}
			if gm.Instret != im.Instret {
				t.Errorf("instret: generated %d, interpreted %d", gm.Instret, im.Instret)
			}
			for r := 0; r < 15; r++ {
				if g, i := gm.Reg(arm.Reg(r)), im.Reg(arm.Reg(r)); g != i {
					t.Errorf("r%d: generated %#x, interpreted %#x", r, g, i)
				}
			}
			if gm.Flags() != im.Flags() {
				t.Errorf("flags: generated %+v, interpreted %+v", gm.Flags(), im.Flags())
			}
			if g, i := gm.Mem.Digest(), im.Mem.Digest(); g != i {
				t.Errorf("memory digest: generated %#x, interpreted %#x", g, i)
			}
			if gm.ExitCode != im.ExitCode {
				t.Errorf("exit: generated %d, interpreted %d", gm.ExitCode, im.ExitCode)
			}

			if err := gprof.Validate(); err != nil {
				t.Errorf("generated profile: %v", err)
			}
			if !reflect.DeepEqual(gprof, iprof) {
				t.Errorf("stall profiles differ:\ngenerated:\n%s\ninterpreted:\n%s",
					gprof.Table(), iprof.Table())
			}

			if !reflect.DeepEqual(gtr.Locs, itr.Locs) || !reflect.DeepEqual(gtr.Ops, itr.Ops) {
				t.Fatalf("trace name tables differ: locs %v vs %v, %d vs %d ops",
					gtr.Locs, itr.Locs, len(gtr.Ops), len(itr.Ops))
			}
			if gtr.Dropped() != itr.Dropped() {
				t.Fatalf("trace drops differ: generated %d, interpreted %d", gtr.Dropped(), itr.Dropped())
			}
			ge, ie := gtr.Events(), itr.Events()
			if len(ge) != len(ie) {
				t.Fatalf("trace length: generated %d events, interpreted %d", len(ge), len(ie))
			}
			for i := range ge {
				if ge[i] != ie[i] {
					t.Fatalf("trace event %d: generated %+v, interpreted %+v", i, ge[i], ie[i])
				}
			}
		})
	}
}
