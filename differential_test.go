package rcpn

// The differential test the paper performs informally — "the functional
// correctness of the generated simulators was validated against the ISS" —
// done exhaustively in `go test`: every workload kernel runs to completion
// on the ISS golden model and on every cycle-accurate simulator, and the
// complete architectural state at exit must match bit-for-bit: the register
// file r0..r14, the NZCV flags, a digest of the entire data memory, the
// retired-instruction count, and the emitted output streams.
//
// This is a stronger check than comparing emitted checksums alone: a
// simulator that, say, drops a writeback on a squashed path or commits a
// wrong-path store would still usually emit the right checksums but diverge
// in a register or a memory word.

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/mem"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
	"rcpn/internal/workload"
)

// archState is the comparable end-of-run architectural state.
type archState struct {
	regs    [15]uint32 // r0..r14 (r15 representations differ by simulator)
	flags   arm.Flags
	memHash uint64
	instret uint64
	exit    uint32
	output  []uint32
	text    string
}

func (a archState) diff(t *testing.T, name string, golden archState) {
	t.Helper()
	for r, v := range a.regs {
		if v != golden.regs[r] {
			t.Errorf("%s: r%d = %#x, iss %#x", name, r, v, golden.regs[r])
		}
	}
	if a.flags != golden.flags {
		t.Errorf("%s: flags %+v, iss %+v", name, a.flags, golden.flags)
	}
	if a.memHash != golden.memHash {
		t.Errorf("%s: memory digest %#x, iss %#x", name, a.memHash, golden.memHash)
	}
	if a.instret != golden.instret {
		t.Errorf("%s: instret %d, iss %d", name, a.instret, golden.instret)
	}
	if a.exit != golden.exit {
		t.Errorf("%s: exit %d, iss %d", name, a.exit, golden.exit)
	}
	if len(a.output) != len(golden.output) {
		t.Errorf("%s: %d output words, iss %d", name, len(a.output), len(golden.output))
	} else {
		for i := range a.output {
			if a.output[i] != golden.output[i] {
				t.Errorf("%s: output[%d] = %#x, iss %#x", name, i, a.output[i], golden.output[i])
			}
		}
	}
	if a.text != golden.text {
		t.Errorf("%s: text stream differs (%d bytes vs %d)", name, len(a.text), len(golden.text))
	}
}

func stateOf(reg func(arm.Reg) uint32, flags arm.Flags, m *mem.Memory,
	instret uint64, exit uint32, output []uint32, text []byte) archState {
	s := archState{
		flags:   flags,
		memHash: m.Digest(),
		instret: instret,
		exit:    exit,
		output:  output,
		text:    string(text),
	}
	for r := 0; r < 15; r++ {
		s.regs[r] = reg(arm.Reg(r))
	}
	return s
}

// TestDifferentialISSvsCycleSims runs every workload through the ISS and
// every cycle simulator and requires identical architectural state.
func TestDifferentialISSvsCycleSims(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}

			golden := iss.New(p, 0)
			golden.MaxInstrs = 200_000_000
			if err := golden.Run(); err != nil {
				t.Fatalf("iss: %v", err)
			}
			ref := stateOf(func(r arm.Reg) uint32 { return golden.R[r] },
				golden.F, golden.Mem, golden.Instret, golden.Exit, golden.Output, golden.Text)

			hp := pipe5.New(p, pipe5.Config{})
			if err := hp.Run(0); err != nil {
				t.Fatalf("pipe5: %v", err)
			}
			stateOf(func(r arm.Reg) uint32 { return hp.R[r] },
				hp.F, hp.Mem, hp.Instret, hp.ExitCode, hp.Output, hp.Text).
				diff(t, "pipe5", ref)

			sa := machine.NewStrongARM(p, machine.Config{})
			if err := sa.Run(0); err != nil {
				t.Fatalf("strongarm: %v", err)
			}
			stateOf(sa.Reg, sa.Flags(), sa.Mem, sa.Instret, sa.ExitCode, sa.Output, sa.Text).
				diff(t, "strongarm", ref)

			xs := machine.NewXScale(p, machine.Config{})
			if err := xs.Run(0); err != nil {
				t.Fatalf("xscale: %v", err)
			}
			stateOf(xs.Reg, xs.Flags(), xs.Mem, xs.Instret, xs.ExitCode, xs.Output, xs.Text).
				diff(t, "xscale", ref)

			bs := ssim.New(p, ssim.Config{})
			if err := bs.Run(0); err != nil {
				t.Fatalf("ssim: %v", err)
			}
			stateOf(bs.Reg, bs.Flags(), bs.Mem(), bs.Instret, bs.ExitCode(), bs.Output(), bs.Text()).
				diff(t, "ssim", ref)
		})
	}
}
