package arm

import "fmt"

// Operand2 describes the flexible second operand of a data-processing
// instruction or the offset of a load/store, before encoding.
type Operand2 struct {
	Imm      uint32 // immediate value (HasImm)
	HasImm   bool
	Rm       Reg
	ShiftTyp Shift
	ShiftAmt uint8 // immediate shift amount
	ShiftReg bool  // shift amount in Rs
	Rs       Reg
}

// ImmOp returns an immediate flexible operand.
func ImmOp(v uint32) Operand2 { return Operand2{Imm: v, HasImm: true} }

// RegOp returns a plain register flexible operand.
func RegOp(r Reg) Operand2 { return Operand2{Rm: r} }

// ShiftedOp returns a register operand shifted by an immediate amount.
func ShiftedOp(r Reg, t Shift, amt uint8) Operand2 {
	return Operand2{Rm: r, ShiftTyp: t, ShiftAmt: amt}
}

// EncodeImm encodes v as an ARM rotated 8-bit immediate. ok is false when v
// is not representable.
func EncodeImm(v uint32) (enc uint32, ok bool) {
	for rot := uint32(0); rot < 32; rot += 2 {
		r := v<<rot | v>>(32-rot)
		if rot == 0 {
			r = v
		}
		if r <= 0xff {
			return rot/2<<8 | r, true
		}
	}
	return 0, false
}

func encOp2(op2 Operand2) (uint32, error) {
	if op2.HasImm {
		enc, ok := EncodeImm(op2.Imm)
		if !ok {
			return 0, fmt.Errorf("arm: immediate %#x not encodable", op2.Imm)
		}
		return 1<<25 | enc, nil
	}
	w := uint32(op2.Rm) | uint32(op2.ShiftTyp)<<5
	if op2.ShiftReg {
		w |= 1<<4 | uint32(op2.Rs)<<8
	} else {
		w |= uint32(op2.ShiftAmt&31) << 7
	}
	return w, nil
}

// EncodeDP encodes a data-processing instruction.
func EncodeDP(cond Cond, op DPOp, s bool, rd, rn Reg, op2 Operand2) (uint32, error) {
	w := uint32(cond)<<28 | uint32(op)<<21 | uint32(rn)<<16 | uint32(rd)<<12
	if s {
		w |= 1 << 20
	}
	o, err := encOp2(op2)
	if err != nil {
		return 0, err
	}
	return w | o, nil
}

// EncodeMul encodes MUL (accum=false) or MLA (accum=true).
// MUL rd, rm, rs; MLA rd, rm, rs, rn.
func EncodeMul(cond Cond, s, accum bool, rd, rm, rs, rn Reg) uint32 {
	w := uint32(cond)<<28 | 9<<4 | uint32(rd)<<16 | uint32(rn)<<12 |
		uint32(rs)<<8 | uint32(rm)
	if accum {
		w |= 1 << 21
	}
	if s {
		w |= 1 << 20
	}
	return w
}

// EncodeMulLong encodes UMULL/UMLAL/SMULL/SMLAL:
// {rdHi,rdLo} = rm * rs (+ {rdHi,rdLo}).
func EncodeMulLong(cond Cond, signed, accum, s bool, rdHi, rdLo, rm, rs Reg) uint32 {
	w := uint32(cond)<<28 | 1<<23 | 9<<4 |
		uint32(rdHi)<<16 | uint32(rdLo)<<12 | uint32(rs)<<8 | uint32(rm)
	if signed {
		w |= 1 << 22
	}
	if accum {
		w |= 1 << 21
	}
	if s {
		w |= 1 << 20
	}
	return w
}

// EncodeHS encodes the halfword / signed transfers (LDRH/STRH/LDRSB/LDRSH).
// For stores only the unsigned halfword form exists.
func EncodeHS(cond Cond, load, signed, half bool, rd Reg, m MemMode) (uint32, error) {
	var sh uint32
	switch {
	case half && !signed:
		sh = 1
	case !half && signed:
		sh = 2
	case half && signed:
		sh = 3
	default:
		return 0, fmt.Errorf("arm: invalid halfword/signed transfer form")
	}
	if !load && sh != 1 {
		return 0, fmt.Errorf("arm: signed stores do not exist")
	}
	w := uint32(cond)<<28 | 1<<7 | sh<<5 | 1<<4 |
		uint32(m.Rn)<<16 | uint32(rd)<<12
	if load {
		w |= 1 << 20
	}
	if m.Up {
		w |= 1 << 23
	}
	if m.PreIndex {
		w |= 1 << 24
	}
	if m.Writeback {
		w |= 1 << 21
	}
	if m.Off.HasImm {
		if m.Off.Imm > 0xff {
			return 0, fmt.Errorf("arm: halfword offset %#x exceeds 8 bits", m.Off.Imm)
		}
		w |= 1<<22 | m.Off.Imm&0x0f | m.Off.Imm<<4&0xf00
	} else {
		if m.Off.ShiftAmt != 0 || m.Off.ShiftTyp != LSL || m.Off.ShiftReg {
			return 0, fmt.Errorf("arm: halfword transfers take plain register offsets only")
		}
		w |= uint32(m.Off.Rm)
	}
	return w, nil
}

// MemMode describes a load/store addressing mode.
type MemMode struct {
	Rn        Reg
	Off       Operand2 // immediate (<=4095) or (scaled) register
	Up        bool     // add offset (default true when built by the assembler)
	PreIndex  bool
	Writeback bool
}

// EncodeLS encodes LDR/STR (load=true/false), optionally byte-sized.
func EncodeLS(cond Cond, load, byteSz bool, rd Reg, m MemMode) (uint32, error) {
	w := uint32(cond)<<28 | 1<<26 | uint32(m.Rn)<<16 | uint32(rd)<<12
	if load {
		w |= 1 << 20
	}
	if byteSz {
		w |= 1 << 22
	}
	if m.Up {
		w |= 1 << 23
	}
	if m.PreIndex {
		w |= 1 << 24
	}
	if m.Writeback {
		w |= 1 << 21
	}
	if m.Off.HasImm {
		if m.Off.Imm > 0xfff {
			return 0, fmt.Errorf("arm: load/store offset %#x exceeds 12 bits", m.Off.Imm)
		}
		w |= m.Off.Imm
	} else {
		if m.Off.ShiftReg {
			return 0, fmt.Errorf("arm: register-shifted load/store offset not supported")
		}
		w |= 1<<25 | uint32(m.Off.Rm) | uint32(m.Off.ShiftTyp)<<5 |
			uint32(m.Off.ShiftAmt&31)<<7
	}
	return w, nil
}

// EncodeLSM encodes LDM/STM. pre/up select the IA/IB/DA/DB variant.
func EncodeLSM(cond Cond, load, pre, up, writeback bool, rn Reg, list uint16) uint32 {
	w := uint32(cond)<<28 | 1<<27 | uint32(rn)<<16 | uint32(list)
	if load {
		w |= 1 << 20
	}
	if pre {
		w |= 1 << 24
	}
	if up {
		w |= 1 << 23
	}
	if writeback {
		w |= 1 << 21
	}
	return w
}

// EncodeBranch encodes B/BL from instruction address to target.
func EncodeBranch(cond Cond, link bool, addr, target uint32) (uint32, error) {
	diff := int64(target) - int64(addr) - 8
	if diff&3 != 0 {
		return 0, fmt.Errorf("arm: branch target %#x not word aligned", target)
	}
	off := diff >> 2
	if off < -(1<<23) || off >= 1<<23 {
		return 0, fmt.Errorf("arm: branch from %#x to %#x out of range", addr, target)
	}
	w := uint32(cond)<<28 | 5<<25 | uint32(off)&0x00ffffff
	if link {
		w |= 1 << 24
	}
	return w, nil
}

// EncodeSWI encodes a software interrupt with a 24-bit comment field.
func EncodeSWI(cond Cond, num uint32) uint32 {
	return uint32(cond)<<28 | 0xf<<24 | num&0x00ffffff
}
