package iss

import (
	"testing"

	"rcpn/internal/bpred"
	"rcpn/internal/ckpt"
	"rcpn/internal/mem"
	"rcpn/internal/workload"
)

// TestCheckpointLockstep is the round-trip property test: a CPU restored
// from a mid-run checkpoint stays in lockstep with the donor for every
// remaining instruction — same registers, flags and retirement count after
// each step — and ends with identical output and memory.
func TestCheckpointLockstep(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	donor := New(p, 0)
	if _, err := donor.RunN(5000); err != nil {
		t.Fatal(err)
	}

	// Round-trip through the binary codec so the lockstep check also covers
	// serialization, not just in-memory copying.
	data, err := donor.Checkpoint().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := ckpt.FromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := NewFromCheckpoint(decoded)
	if err != nil {
		t.Fatal(err)
	}

	for step := 0; !donor.Exited; step++ {
		if err := donor.Step(); err != nil {
			t.Fatal(err)
		}
		if err := twin.Step(); err != nil {
			t.Fatal(err)
		}
		if donor.R != twin.R {
			t.Fatalf("step %d: registers diverged\ndonor %#v\n twin %#v", step, donor.R, twin.R)
		}
		if donor.F != twin.F {
			t.Fatalf("step %d: flags diverged: %+v vs %+v", step, donor.F, twin.F)
		}
		if donor.Instret != twin.Instret {
			t.Fatalf("step %d: instret %d vs %d", step, donor.Instret, twin.Instret)
		}
	}
	if !twin.Exited || donor.Exit != twin.Exit {
		t.Fatalf("exit state diverged: (%v,%d) vs (%v,%d)",
			donor.Exited, donor.Exit, twin.Exited, twin.Exit)
	}
	if donor.Mem.Digest() != twin.Mem.Digest() {
		t.Fatal("memory diverged")
	}
	if len(donor.Output) != len(twin.Output) {
		t.Fatalf("output length %d vs %d", len(donor.Output), len(twin.Output))
	}
	for i := range donor.Output {
		if donor.Output[i] != twin.Output[i] {
			t.Fatalf("output[%d] = %#x vs %#x", i, donor.Output[i], twin.Output[i])
		}
	}
}

// TestCheckpointOfFinishedProgram: a checkpoint taken after exit restores
// as a finished program with the complete final state.
func TestCheckpointOfFinishedProgram(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, 0)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	twin, err := NewFromCheckpoint(c.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	if !twin.Exited || twin.Exit != c.Exit || twin.Instret != c.Instret {
		t.Fatal("finished-program checkpoint did not restore as finished")
	}
	if twin.Mem.Digest() != c.Mem.Digest() {
		t.Fatal("memory differs")
	}
}

// TestRunNStopsAtTarget: RunN retires exactly the requested count when the
// program has that many instructions left.
func TestRunNStopsAtTarget(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, 0)
	ran, err := c.RunN(1234)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1234 || c.Instret != 1234 {
		t.Fatalf("ran %d, instret %d, want 1234", ran, c.Instret)
	}
	// The remainder still completes correctly.
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ref := New(p, 0)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Instret != ref.Instret || c.Mem.Digest() != ref.Mem.Digest() {
		t.Fatal("resumed run diverged from an uninterrupted one")
	}
}

// TestWarmStateCaptured: warm units attached to the ISS show up in the
// checkpoint with non-trivial contents.
func TestWarmStateCaptured(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, 0)
	h := mem.DefaultStrongARM()
	c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, bpred.NewBimodal(128)
	if _, err := c.RunN(5000); err != nil {
		t.Fatal(err)
	}
	ck := c.Checkpoint()
	if ck.ICache == nil || ck.DCache == nil || ck.Pred == nil {
		t.Fatal("warm state missing from checkpoint")
	}
	if ck.ICache.Stats.Accesses() == 0 {
		t.Fatal("warm I-cache saw no accesses")
	}
	if ck.DCache.Stats.Accesses() == 0 {
		t.Fatal("warm D-cache saw no accesses")
	}
	if ck.Pred.Stats.Lookups == 0 {
		t.Fatal("warm predictor saw no branches")
	}
	if ck.Pred.Kind != "bimodal" {
		t.Fatalf("predictor kind %q", ck.Pred.Kind)
	}
}
