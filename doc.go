// Package repro is a from-scratch Go reproduction of "Generic Pipelined
// Processor Modeling and High Performance Cycle-Accurate Simulator
// Generation" (Reshadi & Dutt, DATE 2005) — the RCPN (Reduced Colored Petri
// Net) processor-modeling formalism and the optimized cycle-accurate
// simulation engine generated from it.
//
// The root package carries the benchmark harness (bench_test.go) that
// regenerates the paper's Figure 10 (simulation performance) and Figure 11
// (CPI) plus the engine-optimization ablations; the implementation lives
// under internal/ (see DESIGN.md for the full inventory):
//
//	internal/core      RCPN model + simulation engine (§3, §4)
//	internal/reg       three-level register / RegRef data-hazard structure (Fig. 3)
//	internal/arm       ARM7 ISA: decode, semantics, assembler, disassembler
//	internal/iss       functional golden-model simulator
//	internal/mem       memory, caches
//	internal/bpred     branch predictors
//	internal/machine   RCPN-generated StrongARM and XScale simulators (§5)
//	internal/ssim      SimpleScalar(sim-outorder)-style baseline
//	internal/pipe5     hand-written direct five-stage simulator
//	internal/cpn       standard CPN, RCPN→CPN conversion, analyses (§3)
//	internal/workload  the six benchmark kernels of the evaluation
//	internal/stats     measurement collection and figure-style tables
package rcpn
