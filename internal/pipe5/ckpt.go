package pipe5

import (
	"fmt"

	"rcpn/internal/ckpt"
)

// Checkpoint support for the hand-written baseline, mirroring the RCPN
// models: snapshots only at drained-pipeline boundaries, produced on demand
// by RunN (run to a retirement target, hold fetch, let the latches empty).

// Drained reports whether all four pipeline latches are empty.
func (s *Sim) Drained() bool {
	return s.fq == nil && s.dx == nil && s.mx == nil && s.wx == nil
}

// RunN simulates until at least n more instructions retire (or the program
// exits), then drains the pipeline to a checkpointable boundary. maxCycles
// bounds the whole operation (0 = 1<<40).
func (s *Sim) RunN(n uint64, maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	target := s.Instret + n
	step := func() error {
		if s.Cycles >= maxCycles {
			return fmt.Errorf("pipe5: cycle limit %d exceeded at pc=%#08x", maxCycles, s.pc)
		}
		s.cycle()
		return s.Err
	}
	for !s.Exited && s.Instret < target {
		if err := step(); err != nil {
			return err
		}
	}
	s.holdFetch = true
	defer func() { s.holdFetch = false }()
	for !s.Exited && !s.Drained() {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil simulates until at least target total instructions have retired,
// the program exits, or Cycles reaches cycleLimit (0 = 1<<40). Reaching the
// cycle limit is a clean stop, not an error, and the first state with
// Instret >= target does not depend on where the limit-sized bursts end.
func (s *Sim) RunUntil(target uint64, cycleLimit int64) error {
	if cycleLimit <= 0 {
		cycleLimit = 1 << 40
	}
	for !s.Exited && s.Instret < target && s.Cycles < cycleLimit {
		s.cycle()
		if s.Err != nil {
			return s.Err
		}
	}
	return nil
}

// Drain holds fetch and runs the latches empty, leaving the simulator at a
// checkpointable boundary. maxCycles bounds the drain (0 = 1<<40).
func (s *Sim) Drain(maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	s.holdFetch = true
	defer func() { s.holdFetch = false }()
	for !s.Exited && !s.Drained() {
		if s.Cycles >= maxCycles {
			return fmt.Errorf("pipe5: cycle limit %d exceeded draining at pc=%#08x", maxCycles, s.pc)
		}
		s.cycle()
		if s.Err != nil {
			return s.Err
		}
	}
	return nil
}

// Checkpoint captures the architected state plus warm cache and predictor
// state. It fails unless the pipeline is drained.
func (s *Sim) Checkpoint() (*ckpt.Checkpoint, error) {
	if s.Err != nil {
		return nil, s.Err
	}
	if !s.Drained() {
		return nil, fmt.Errorf("pipe5: checkpoint requires a drained pipeline (use RunN)")
	}
	ck := &ckpt.Checkpoint{
		R:       s.R,
		Instret: s.Instret,
		Exited:  s.Exited,
		Exit:    s.ExitCode,
		Output:  append([]uint32(nil), s.Output...),
		Text:    append([]byte(nil), s.Text...),
		Mem:     ckpt.CaptureMem(s.Mem),
		ICache:  ckpt.CaptureCache(s.ICache),
		DCache:  ckpt.CaptureCache(s.DCache),
		Pred:    ckpt.CapturePred(s.Pred),
	}
	ck.R[15] = s.pc
	ck.SetArchFlags(s.F)
	return ck, nil
}

// Restore overwrites the simulator's state with the checkpoint (drained
// simulators only; a freshly built one is). Caches and the predictor are
// reset, then warmed from the checkpoint when it carries state.
func (s *Sim) Restore(ck *ckpt.Checkpoint) error {
	if !s.Drained() {
		return fmt.Errorf("pipe5: restore requires a drained pipeline")
	}
	ckpt.RestoreMem(s.Mem, ck.Mem)
	s.R = ck.R
	s.R[15] = 0 // r15 storage is never architected; the fetch PC carries it
	s.F = ck.ArchFlags()
	s.pc = ck.PC()
	s.Instret = ck.Instret
	s.Output = append(s.Output[:0], ck.Output...)
	s.Text = append(s.Text[:0], ck.Text...)
	s.Exited = ck.Exited
	s.ExitCode = ck.Exit
	s.Err = nil
	s.fetchHold = 0
	s.pending = [16]int{}
	if err := ckpt.RestoreCache(s.ICache, ck.ICache); err != nil {
		return err
	}
	if err := ckpt.RestoreCache(s.DCache, ck.DCache); err != nil {
		return err
	}
	return ckpt.RestorePred(s.Pred, ck.Pred)
}
