package faultinj

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestNilInjectorIsInert: the production wiring passes nil; every method
// must be a safe no-op.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(SiteJournalAppend, 0); err != nil {
		t.Fatalf("nil injector injected %v", err)
	}
	if in.Hits(SiteJournalAppend) != 0 || in.Fired() != nil {
		t.Fatal("nil injector kept state")
	}
}

// TestOnHitRule: a rule armed for the Nth hit fires exactly there, once.
func TestOnHitRule(t *testing.T) {
	in := New(Rule{Site: "x", OnHit: 3, Action: ActError, Msg: "boom"})
	for i := 1; i <= 5; i++ {
		err := in.Hit("x", 0)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if i == 3 {
			var f *Fault
			if !errors.As(err, &f) || f.Site != "x" {
				t.Fatalf("hit 3: not a *Fault for site x: %v", err)
			}
		}
	}
	if got := in.Fired(); !reflect.DeepEqual(got, []string{"x#3:error"}) {
		t.Fatalf("fired log = %v", got)
	}
}

// TestAtValueRule: an @value rule fires on the first hit whose value
// reaches the threshold — the deterministic "crash at retirement N" knob.
func TestAtValueRule(t *testing.T) {
	in := New(Rule{Site: SiteWorkerPanic, AtValue: 1000, Action: ActError})
	if err := in.Hit(SiteWorkerPanic, 400); err != nil {
		t.Fatalf("below threshold fired: %v", err)
	}
	if err := in.Hit(SiteWorkerPanic, 999); err != nil {
		t.Fatalf("below threshold fired: %v", err)
	}
	if err := in.Hit(SiteWorkerPanic, 1000); err == nil {
		t.Fatal("threshold reached but nothing fired")
	}
	if err := in.Hit(SiteWorkerPanic, 2000); err != nil {
		t.Fatalf("one-shot rule fired twice: %v", err)
	}
}

// TestPanicAction: an ActPanic rule panics with a *Fault, which is what the
// batch layer's recover sees.
func TestPanicAction(t *testing.T) {
	in := New(Rule{Site: "w", Action: ActPanic, Times: -1})
	defer func() {
		p := recover()
		f, ok := p.(*Fault)
		if !ok || f.Site != "w" {
			t.Fatalf("panicked with %v, want *Fault{Site: w}", p)
		}
	}()
	in.Hit("w", 0)
	t.Fatal("ActPanic did not panic")
}

// TestDelayAction: an ActDelay rule sleeps and succeeds.
func TestDelayAction(t *testing.T) {
	in := New(Rule{Site: "io", Action: ActDelay, Delay: 10 * time.Millisecond, Times: -1})
	start := time.Now()
	if err := in.Hit("io", 0); err != nil {
		t.Fatalf("delay rule errored: %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("delay rule did not sleep")
	}
}

// TestTimesUnlimited: Times = -1 fires forever.
func TestTimesUnlimited(t *testing.T) {
	in := New(Rule{Site: "x", Action: ActError, Times: -1})
	for i := 0; i < 4; i++ {
		if err := in.Hit("x", 0); err == nil {
			t.Fatalf("hit %d did not fire", i)
		}
	}
}

// TestParse: the plan grammar round-trips into working rules.
func TestParse(t *testing.T) {
	in, err := Parse("journal.append#2:error=disk gone, worker.panic@500:panic, ckpt.write*-1:delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Hit(SiteJournalAppend, 0); err != nil {
		t.Fatalf("journal hit 1 fired early: %v", err)
	}
	if err := in.Hit(SiteJournalAppend, 0); err == nil {
		t.Fatal("journal hit 2 did not fire")
	} else if err.Error() != "faultinj: journal.append: disk gone" {
		t.Fatalf("unexpected message: %v", err)
	}
	if err := in.Hit(SiteCkptWrite, 0); err != nil {
		t.Fatalf("delay rule errored: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("worker.panic@500 did not panic at value 500")
			}
		}()
		in.Hit(SiteWorkerPanic, 500)
	}()

	for _, bad := range []string{
		"siteonly", "x:explode", "x#zero:error", "x@0:error", "x*0:error",
		"x:delay", "x:delay=potato", ":error",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestSeededDeterministic: the same seed yields the same plan; a different
// seed (almost surely) differs, and firing order is reproducible.
func TestSeededDeterministic(t *testing.T) {
	sites := []string{"a", "b", "c"}
	run := func(seed int64) []string {
		in := Seeded(seed, sites, 4, 5)
		for i := 0; i < 8; i++ {
			for _, s := range sites {
				in.Hit(s, 0) //nolint:errcheck // only the fired log matters
			}
		}
		return in.Fired()
	}
	if a, b := run(42), run(42); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a, b := run(42), run(43); reflect.DeepEqual(a, b) && len(a) > 0 {
		t.Logf("seeds 42 and 43 coincide (possible but unlikely): %v", a)
	}
}
