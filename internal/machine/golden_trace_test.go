package machine

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/core"
	"rcpn/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files")

// goldenTraceCycles bounds the per-cycle occupancy lines in the golden file;
// the run itself goes to completion and its final counters (cycle count,
// instret, every transition's fire count, every place's stall count) are part
// of the golden too, so the whole run is pinned, not just the prefix.
const goldenTraceCycles = 400

// occupancyTrace renders one line per cycle: every non-end place holding
// anything, as name=visible/staged/reservations. It uses only public engine
// API so it keeps working across engine rewrites — which is the point: the
// trace must be bit-identical before and after scheduler changes.
func occupancyLine(n *core.Net) string {
	var b strings.Builder
	fmt.Fprintf(&b, "c%d", n.CycleCount())
	for _, p := range n.Places() {
		if p.End {
			continue
		}
		total := 0
		p.ForEachToken(func(*core.Token) { total++ })
		vis := len(p.Tokens())
		res := p.Reservations()
		if total == 0 && res == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s=%d/%d/%d", p.Name, vis, total-vis, res)
	}
	return b.String()
}

// TestGoldenTraceStrongARM pins the exact cycle-by-cycle behavior of the
// RCPN-StrongARM model on the crc workload: stage occupancy for the first
// goldenTraceCycles cycles plus the end-of-run counters. Regenerate with
//
//	go test ./internal/machine -run TestGoldenTrace -update-golden
//
// only when a change is *supposed* to alter modeled timing.
func TestGoldenTraceStrongARM(t *testing.T) {
	goldenTrace(t, NewStrongARM, "golden_trace_strongarm_crc.txt")
}

// TestGoldenTraceXScale covers the engine paths StrongARM does not: two-list
// places, reservation tokens and out-of-order completion (Fig. 9).
func TestGoldenTraceXScale(t *testing.T) {
	goldenTrace(t, NewXScale, "golden_trace_xscale_crc.txt")
}

func goldenTrace(t *testing.T, build func(p *arm.Program, cfg Config) *Machine, file string) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	m := build(p, Config{})
	var b strings.Builder
	for !m.Exited {
		if m.Net.CycleCount() >= 1<<24 {
			t.Fatal("runaway simulation")
		}
		m.Net.Step()
		if m.Err != nil {
			t.Fatal(m.Err)
		}
		if m.Net.CycleCount() <= goldenTraceCycles {
			b.WriteString(occupancyLine(m.Net))
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "final cycles=%d instret=%d flushes=%d retired=%d\n",
		m.Net.CycleCount(), m.Instret, m.Flushes, m.Net.RetiredCount)
	for _, tr := range m.Net.Transitions() {
		fmt.Fprintf(&b, "fires %s=%d\n", tr.Name, tr.Fires)
	}
	for _, pl := range m.Net.Places() {
		fmt.Fprintf(&b, "stalls %s=%d\n", pl.Name, pl.Stalls())
	}

	compareGolden(t, filepath.Join("testdata", file), b.String())
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden %s rewritten (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden to create): %v", path, err)
	}
	if string(want) == got {
		return
	}
	// Report the first diverging line to make timing regressions readable.
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			t.Fatalf("golden trace diverges at line %d:\n want: %s\n  got: %s", i+1, wl[i], gl[i])
		}
	}
	t.Fatalf("golden trace length differs: want %d lines, got %d", len(wl), len(gl))
}
