package iss

import "rcpn/internal/obsv"

// Observability for the golden model. The ISS has no pipeline — every
// step retires exactly one instruction — so the profile is the degenerate
// single-stage partition (one Occupied slot per instruction) and the
// trace is a retire-only event stream. Both exist so the ISS can stand in
// any cross-engine comparison of observability artifacts, not because the
// functional model has stalls to attribute. CPU implements
// obsv.Instrumentable.

// AttachTrace routes instruction retirements into tr. Must be called
// before the first step.
func (c *CPU) AttachTrace(tr *obsv.Tracer) {
	tr.Locs = []string{"commit"}
	c.tr = tr
}

// EnableProfile returns the (trivial) single-stage profile. Must be
// called before the first step; calling it again returns the same
// profile.
func (c *CPU) EnableProfile() *obsv.StallProfile {
	if c.prof == nil {
		c.prof = obsv.NewStallProfile("commit")
	}
	return c.prof
}

// Profile returns the attached stall profile, or nil.
func (c *CPU) Profile() *obsv.StallProfile { return c.prof }
