package ssim

import "rcpn/internal/arm"

// Speculative (wrong-path) execution, as sim-outorder models it: after a
// mispredicted branch dispatches, the front end keeps fetching down the
// predicted (wrong) path and the dispatcher keeps executing those
// instructions against a checkpointed register file and a hash-table
// speculative memory (SimpleScalar's spec_regs / spec_mem). The wrong-path
// instructions occupy RUU slots, issue to functional units and pollute the
// caches — the timing effects of misspeculation — and are rolled back when
// the branch resolves at writeback.

type specState struct {
	active bool
	regs   [16]uint32
	flags  arm.Flags
	pc     uint32
	mem    map[uint32]uint32 // word-address overlay over real memory
}

// enterSpec checkpoints architected state and begins wrong-path execution
// at wrongPC.
func (s *Sim) enterSpec(wrongPC uint32) {
	s.spec.active = true
	s.spec.regs = s.oracle.R
	s.spec.flags = s.oracle.F
	s.spec.pc = wrongPC
	if s.spec.mem == nil {
		s.spec.mem = make(map[uint32]uint32, 16)
	}
}

// rollback squashes all speculative RUU entries and speculative state
// (sim-outorder's ruu_recover + tracer recovery).
func (s *Sim) rollback() {
	old := s.ruu
	n := len(old)
	for n > 0 && old[n-1].spec {
		n--
	}
	s.ruu = old[:n]
	for r := range s.createVec {
		if s.createVec[r] != nil && s.createVec[r].spec {
			s.createVec[r] = nil
		}
	}
	// Drop pending completion events of squashed entries.
	for ev := s.events; ev != nil; ev = ev.next {
		if ev.entry.spec {
			ev.entry.squashed = true
		}
	}
	// Surviving entries may still list squashed entries as consumers; the
	// wakeup those would get is a no-op (squashed entries never issue), so
	// unlinking them is behavior-preserving and lets the records recycle.
	for _, e := range s.ruu {
		if len(e.consumers) == 0 {
			continue
		}
		kept := e.consumers[:0]
		for _, c := range e.consumers {
			if !c.spec {
				kept = append(kept, c)
			}
		}
		e.consumers = kept
	}
	// Unissued squashed entries have no pending event (their only remaining
	// reference): recycle now. Issued ones recycle when their event drains.
	for _, e := range old[n:] {
		if !e.issued {
			s.freeEntry(e)
		}
	}
	clear(s.spec.mem)
	s.spec.active = false
}

func (s *Sim) specReg(r arm.Reg, pc uint32) uint32 {
	if r == arm.PC {
		return pc + 8
	}
	return s.spec.regs[r]
}

func (s *Sim) specRead32(addr uint32) uint32 {
	if v, ok := s.spec.mem[addr&^3]; ok {
		return v
	}
	return s.oracle.Mem.Read32(addr)
}

func (s *Sim) specRead8(addr uint32) byte {
	w := s.specRead32(addr)
	return byte(w >> (8 * (addr & 3)))
}

func (s *Sim) specWrite32(addr, v uint32) {
	s.spec.mem[addr&^3] = v
}

func (s *Sim) specRead16(addr uint32) uint16 {
	w := s.specRead32(addr)
	return uint16(w >> (8 * (addr & 2)))
}

func (s *Sim) specWrite16(addr uint32, v uint16) {
	w := s.specRead32(addr)
	sh := 8 * (addr & 2)
	w = w&^(0xffff<<sh) | uint32(v)<<sh
	s.spec.mem[addr&^3] = w
}

// specMemView adapts the speculative overlay to arm.DataMem for LoadValue.
type specMemView struct{ s *Sim }

func (v specMemView) Read8(addr uint32) byte    { return v.s.specRead8(addr) }
func (v specMemView) Read16(addr uint32) uint16 { return v.s.specRead16(addr) }
func (v specMemView) Read32(addr uint32) uint32 { return v.s.specRead32(addr) }

func (s *Sim) specWrite8(addr uint32, v byte) {
	w := s.specRead32(addr)
	sh := 8 * (addr & 3)
	w = w&^(0xff<<sh) | uint32(v)<<sh
	s.spec.mem[addr&^3] = w
}

// specExec executes one wrong-path instruction against the speculative
// state. Architected side effects (system calls) and faults (undefined
// words — wrong paths run into data) are suppressed; the instruction still
// flows through the timing model. It returns the speculative next PC.
func (s *Sim) specExec(ins *arm.Instr) uint32 {
	pc := s.spec.pc
	next := pc + 4
	f := &s.spec.flags
	if !ins.Cond.Passes(f.N, f.Z, f.C, f.V) {
		return next
	}
	switch ins.Class {
	case arm.ClassDataProc:
		rm := s.specReg(ins.Rm, pc)
		rs := s.specReg(ins.Rs, pc)
		op2, shiftC := ins.Operand2Value(rm, rs, f.C)
		res, nf := arm.AluExec(ins.Op, s.specReg(ins.Rn, pc), op2, *f, shiftC)
		if ins.SetFlags || ins.IsCompare() {
			*f = nf
		}
		if ins.Op.WritesRd() {
			if ins.Rd == arm.PC {
				next = res &^ 3
			} else {
				s.spec.regs[ins.Rd] = res
			}
		}
	case arm.ClassMult:
		if ins.Long {
			lo, hi, nf := arm.MulLongExec(ins.SignedMul, ins.Accum,
				s.specReg(ins.Rm, pc), s.specReg(ins.Rs, pc),
				s.spec.regs[ins.Rn], s.spec.regs[ins.Rd], *f)
			if ins.SetFlags {
				*f = nf
			}
			s.spec.regs[ins.Rn] = lo
			s.spec.regs[ins.Rd] = hi
			break
		}
		res, nf := arm.MulExec(ins.Accum, s.specReg(ins.Rm, pc), s.specReg(ins.Rs, pc),
			s.specReg(ins.Rn, pc), *f)
		if ins.SetFlags {
			*f = nf
		}
		s.spec.regs[ins.Rd] = res
	case arm.ClassLoadStore:
		base := s.specReg(ins.Rn, pc)
		ea, wb, doWB := ins.LSAddress(base, s.specReg(ins.Rm, pc))
		if ins.Load {
			v := ins.LoadValue(specMemView{s}, ea)
			if doWB && ins.Rn != arm.PC {
				s.spec.regs[ins.Rn] = wb
			}
			if ins.Rd == arm.PC {
				next = v &^ 3
			} else {
				s.spec.regs[ins.Rd] = v
			}
		} else {
			v := s.specReg(ins.Rd, pc)
			switch {
			case ins.Byte:
				s.specWrite8(ea, byte(v))
			case ins.Half:
				s.specWrite16(ea, uint16(v))
			default:
				s.specWrite32(ea, v)
			}
			if doWB && ins.Rn != arm.PC {
				s.spec.regs[ins.Rn] = wb
			}
		}
	case arm.ClassLoadStoreM:
		base := s.specReg(ins.Rn, pc)
		addrs, final := ins.LSMAddressesInto(base, s.lsmScratch)
		s.lsmScratch = addrs
		k := 0
		for r := arm.Reg(0); r < 16; r++ {
			if ins.RegList&(1<<r) == 0 {
				continue
			}
			ea := addrs[k]
			k++
			if ins.Load {
				v := s.specRead32(ea)
				if r == arm.PC {
					next = v &^ 3
				} else {
					s.spec.regs[r] = v
				}
			} else {
				s.specWrite32(ea, s.specReg(r, pc))
			}
		}
		if ins.Writeback && ins.Rn != arm.PC &&
			!(ins.Load && ins.RegList&(1<<ins.Rn) != 0) {
			s.spec.regs[ins.Rn] = final
		}
	case arm.ClassBranch:
		if ins.Link {
			s.spec.regs[arm.LR] = pc + 4
		}
		next = ins.Target()
	case arm.ClassSystem:
		// Suppressed on the wrong path (including undefined words).
	}
	return next
}

// dispatchSpec executes one wrong-path instruction through the timing model.
func (s *Sim) dispatchSpec() {
	if len(s.ruu) >= s.cfg.RUUSize || len(s.ifq) == 0 {
		return
	}
	slot := s.ifq[0]
	if slot.readyAt > s.Cycles {
		return
	}
	if slot.addr != s.spec.pc {
		s.popIFQ()
		return
	}
	s.popIFQ()

	raw := s.specRead32(slot.addr)
	ins := arm.Decode(raw, slot.addr)

	s.seq++
	e := s.newEntry()
	e.seq, e.raw, e.addr, e.spec = s.seq, raw, slot.addr, true
	switch ins.Class {
	case arm.ClassLoadStore:
		ea, _, _ := ins.LSAddress(s.specReg(ins.Rn, slot.addr), s.specReg(ins.Rm, slot.addr))
		e.ea = ea
		e.isLoad = ins.Load
		e.isStore = !ins.Load
	case arm.ClassLoadStoreM:
		addrs, _ := ins.LSMAddressesInto(s.specReg(ins.Rn, slot.addr), s.lsmScratch)
		s.lsmScratch = addrs
		if len(addrs) > 0 {
			e.ea = addrs[0]
		}
		e.isLoad = ins.Load
		e.isStore = !ins.Load
		e.memExtra = int64(len(addrs) - 1)
	case arm.ClassMult:
		e.mulRs = s.specReg(ins.Rs, slot.addr)
	}
	s.inScratch = inputRegs(&ins, s.inScratch)
	for _, r := range s.inScratch {
		p := s.createVec[r]
		if p != nil && !p.completed {
			p.consumers = append(p.consumers, e)
			e.idepsLeft++
		}
	}
	s.spec.pc = s.specExec(&ins)
	if s.spec.pc != slot.predNext {
		// A wrong-path control transfer diverged from the fetch prediction:
		// redirect the front end along the speculative path.
		s.fetchPC = s.spec.pc
		s.ifq = s.ifq[:0]
	}
	s.outScratch = outputRegs(&ins, s.outScratch)
	for _, r := range s.outScratch {
		s.createVec[r] = e
	}
	s.ruu = append(s.ruu, e)
}
