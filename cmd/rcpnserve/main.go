// Command rcpnserve runs the simulation service: an HTTP API over every
// simulator in this repository, with content-addressed result caching,
// bounded-queue backpressure, graceful drain on SIGTERM/SIGINT and — with
// -data — crash-safe durability: accepted jobs journal to disk, long jobs
// checkpoint periodically, and a restarted server resumes pending work
// from the last checkpoint while serving finished results byte-identical
// to the original runs.
//
// Usage:
//
//	rcpnserve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	          [-timeout 5m] [-drain 30s] [-maxcycles N]
//	          [-data DIR] [-attempts N] [-retry-base 100ms] [-retry-max 5s]
//	          [-coordinator ADDR] [-quota-rate R] [-quota-burst N]
//	          [-faultinj PLAN] [-pprof ADDR]
//
// -coordinator turns the instance into a shard coordinator: it listens on
// ADDR for rcpnworker connections and dispatches jobs onto the live-worker
// ring (DESIGN.md §14). With zero connected workers it degrades to local
// execution — same bytes, /healthz reports "degraded". -quota-rate and
// -quota-burst arm per-tenant token-bucket admission (X-Tenant header;
// refusals are 429 + Retry-After).
//
// API (see DESIGN.md §8–§10 and the README quickstart):
//
//	POST /v1/jobs            submit a job spec; 202 + content-addressed id,
//	                         429 + Retry-After when the queue is full,
//	                         503 + Retry-After while draining
//	GET  /v1/jobs/{id}       job state; rcpn-batch/v1 result when finished
//	GET  /v1/jobs/{id}/events  SSE progress (cycles retired, Mcycles/s)
//	GET  /v1/jobs/{id}/trace   Chrome trace_event JSON (trace_events > 0 jobs)
//	GET  /v1/metrics         Prometheus text format: queue, jobs, cache, ...
//	GET  /healthz            200 ok, 200 degraded (durability lost), 503 draining
//
// -faultinj arms the deterministic fault-injection harness (testing only);
// the plan grammar is internal/faultinj's: site[#N][@V][*T]:action[=arg],
// comma-separated, e.g. "worker.panic@50000:panic,journal.append#3:error".
// -pprof serves net/http/pprof on a second, typically loopback-only,
// listener (e.g. -pprof localhost:6060) so profiling never shares the
// public address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof listener's DefaultServeMux
	"os"
	"os/signal"
	"syscall"
	"time"

	"rcpn/internal/faultinj"
	"rcpn/internal/serve"
	"rcpn/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth (full queue = HTTP 429)")
	cache := flag.Int("cache", 1024, "result cache entries")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-job deadline")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight jobs on shutdown")
	maxCycles := flag.Int64("maxcycles", 1<<32, "default per-job cycle cap (when the spec sets none)")
	data := flag.String("data", "", "data directory for crash-safe durability (empty = memory-only)")
	attempts := flag.Int("attempts", 3, "max executions before a transiently failing job is poisoned")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "first retry backoff (doubles per attempt)")
	retryMax := flag.Duration("retry-max", 5*time.Second, "retry backoff ceiling")
	coordAddr := flag.String("coordinator", "", "listen for shard workers on this address (empty = single-process)")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant submissions/second (0 = quotas off)")
	quotaBurst := flag.Int("quota-burst", 0, "per-tenant burst size (0 = default when quotas are on)")
	faultPlan := flag.String("faultinj", "", "deterministic fault-injection plan (testing only)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries only the net/http/pprof handlers here;
			// the service itself uses its own mux.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rcpnserve: pprof listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "rcpnserve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	var inj *faultinj.Injector
	if *faultPlan != "" {
		var err error
		if inj, err = faultinj.Parse(*faultPlan); err != nil {
			fmt.Fprintln(os.Stderr, "rcpnserve:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rcpnserve: fault injection armed: %s\n", *faultPlan)
	}

	var coord *shard.Coordinator
	if *coordAddr != "" {
		ln, lerr := net.Listen("tcp", *coordAddr)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "rcpnserve:", lerr)
			os.Exit(1)
		}
		coord = shard.NewCoordinator(shard.CoordinatorConfig{Fault: inj})
		go func() {
			if serr := coord.Serve(ln); serr != nil && !errors.Is(serr, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "rcpnserve: coordinator:", serr)
			}
		}()
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "rcpnserve: coordinating shard workers on %s\n", ln.Addr())
	}

	cfg := serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		JobTimeout:   *timeout,
		MaxCycles:    *maxCycles,
		DataDir:      *data,
		MaxAttempts:  *attempts,
		RetryBase:    *retryBase,
		RetryMax:     *retryMax,
		QuotaRate:    *quotaRate,
		QuotaBurst:   *quotaBurst,
		Fault:        inj,
	}
	if coord != nil {
		cfg.Dispatcher = coord
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcpnserve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintf(os.Stderr, "rcpnserve: draining (grace %v)\n", *drain)
		// Stop admitting and let in-flight work finish (or get canceled at
		// the grace deadline) while the listener keeps serving GETs, so
		// clients can still collect results; then close the listener.
		srv.Drain(*drain)
		if coord != nil {
			coord.Close()
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx) //nolint:errcheck // best-effort close
		fmt.Fprintln(os.Stderr, "rcpnserve: drained")
	}()

	fmt.Fprintf(os.Stderr, "rcpnserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rcpnserve:", err)
		os.Exit(1)
	}
	<-shutdownDone
}
