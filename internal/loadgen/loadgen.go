// Package loadgen is the open-loop load generator behind cmd/rcpnload: it
// drives a live rcpnserve instance to saturation and reports what the
// service actually delivered — offered vs achieved throughput, completion
// latency quantiles, backpressure (429) and drain (503) counts, and the
// aggregate simulated Mcycles/s the fleet of jobs extracted from the
// server.
//
// Open-loop means arrivals follow a fixed stochastic schedule that does not
// slow down when the server does: a saturated server faces the same offered
// rate and must shed load through its admission machinery (bounded queue,
// per-tenant quotas), which is exactly the behavior under test. The
// schedule, the job corpus and every mutation decision derive from one
// 64-bit seed through splitmix64, so two runs with the same seed submit the
// same bytes in the same order at the same offsets.
package loadgen

import (
	"fmt"
	"math"
	"time"
)

// Arrival selects the inter-arrival process of the open-loop schedule.
type Arrival string

const (
	// ArrivalExponential draws i.i.d. exponential gaps (a Poisson arrival
	// process): the memoryless worst case for queue depth spikes.
	ArrivalExponential Arrival = "exponential"
	// ArrivalUniform draws gaps uniformly from [0.5, 1.5) of the mean gap:
	// a jittered steady stream, gentler on the queue at the same rate.
	ArrivalUniform Arrival = "uniform"
)

// rng is splitmix64, the same deterministic generator armgen uses.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float64 returns a uniform draw in (0, 1]: never zero, so -ln of it is
// always finite.
func (r *rng) float64() float64 {
	return float64(r.next()>>11+1) / float64(1<<53)
}

// Schedule returns the n arrival offsets (from the run's start, ascending)
// of the given process at the given mean rate. The same (kind, rate, n,
// seed) always produce the same offsets.
func Schedule(kind Arrival, rate float64, n int, seed uint64) ([]time.Duration, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be > 0, got %g", rate)
	}
	if n < 0 {
		return nil, fmt.Errorf("loadgen: negative schedule length %d", n)
	}
	r := rng{s: seed}
	mean := 1 / rate // seconds between arrivals
	offsets := make([]time.Duration, n)
	var at float64
	for i := range offsets {
		var gap float64
		switch kind {
		case ArrivalExponential:
			gap = -math.Log(r.float64()) * mean
		case ArrivalUniform:
			gap = (0.5 + r.float64()) * mean
		default:
			return nil, fmt.Errorf("loadgen: unknown arrival process %q", kind)
		}
		at += gap
		offsets[i] = time.Duration(at * float64(time.Second))
	}
	return offsets, nil
}
