package pipe5

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/iss"
)

func crossCheck(t *testing.T, src string) *Sim {
	t.Helper()
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	golden := iss.New(p, 0)
	golden.MaxInstrs = 2_000_000
	if err := golden.Run(); err != nil {
		t.Fatalf("iss: %v", err)
	}
	s := New(p, Config{})
	if err := s.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if s.ExitCode != golden.Exit {
		t.Errorf("exit %d, iss %d", s.ExitCode, golden.Exit)
	}
	if len(s.Output) != len(golden.Output) {
		t.Fatalf("output %v, iss %v", s.Output, golden.Output)
	}
	for i := range s.Output {
		if s.Output[i] != golden.Output[i] {
			t.Errorf("output[%d] = %#x, iss %#x", i, s.Output[i], golden.Output[i])
		}
	}
	if string(s.Text) != string(golden.Text) {
		t.Errorf("text %q, iss %q", s.Text, golden.Text)
	}
	if s.Instret != golden.Instret {
		t.Errorf("instret %d, iss %d", s.Instret, golden.Instret)
	}
	for r := arm.Reg(0); r < 15; r++ {
		if s.R[r] != golden.R[r] {
			t.Errorf("r%d = %#x, iss %#x", r, s.R[r], golden.R[r])
		}
	}
	return s
}

func TestBaselineSumLoop(t *testing.T) {
	s := crossCheck(t, `
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, r1, #1
	cmp r1, #101
	bne loop
	swi #1
	swi #0
`)
	if cpi := s.CPI(); cpi < 1.0 || cpi > 6.0 {
		t.Errorf("implausible CPI %.2f", cpi)
	}
}

func TestBaselineFactorial(t *testing.T) {
	crossCheck(t, `
_start:
	mov r0, #8
	bl fact
	swi #1
	swi #0
fact:
	cmp r0, #1
	movle r0, #1
	movle pc, lr
	push {r4, lr}
	mov r4, r0
	sub r0, r0, #1
	bl fact
	mul r0, r4, r0
	pop {r4, pc}
`)
}

func TestBaselineMemoryAndBlockTransfer(t *testing.T) {
	crossCheck(t, `
	ldr r1, =buf
	mov r2, #0
fill:
	str r2, [r1, r2, lsl #2]
	add r2, r2, #1
	cmp r2, #16
	bne fill
	mov r3, #0
	mov r2, #0
sum:
	ldr r0, [r1, r2, lsl #2]
	add r3, r3, r0
	add r2, r2, #1
	cmp r2, #16
	bne sum
	mov r0, r3
	swi #1
	mov r4, #0x11
	mov r5, #0x22
	mov r6, #0x33
	ldr r7, =buf+128
	stmia r7!, {r4-r6}
	mov r4, #0
	mov r5, #0
	mov r6, #0
	ldmdb r7, {r4-r6}
	add r0, r4, r5
	add r0, r0, r6
	swi #1
	swi #0
	.align
buf:
	.space 256
`)
}

func TestBaselineHazardsAndCarry(t *testing.T) {
	crossCheck(t, `
	mov r0, #1
	add r1, r0, r0
	add r2, r1, r1
	mvn r0, #0
	mov r1, #1
	adds r2, r0, r1
	adc r3, r1, #0
	mov r0, r3
	swi #1
	subs r6, r1, #1
	moveq r0, #42
	movne r0, #7
	swi #1
	mov r4, #3
	mov r5, #20
	mov r6, r5, lsl r4
	mov r0, r6
	swi #1
	swi #0
`)
}

func TestBaselineBranchyAndText(t *testing.T) {
	crossCheck(t, `
	mov r0, #27
	mov r2, #0
step:
	add r2, r2, #1
	cmp r0, #1
	beq done
	tst r0, #1
	bne odd
	mov r0, r0, lsr #1
	b step
odd:
	add r1, r0, r0, lsl #1
	add r0, r1, #1
	b step
done:
	mov r0, r2
	swi #1
	ldr r4, =msg
next:
	ldrb r0, [r4], #1
	cmp r0, #0
	beq fin
	swi #2
	b next
fin:
	mov r0, #0
	swi #0
msg:
	.asciz "baseline"
`)
}

func TestBaselinePCWrites(t *testing.T) {
	crossCheck(t, `
	ldr r1, =t1
	mov pc, r1
	mov r0, #99
	swi #1
t1:
	mov r0, #5
	swi #1
	ldr pc, =t2
	mov r0, #98
	swi #1
t2:
	bl leaf
	swi #1
	swi #0
leaf:
	push {r4, lr}
	mov r4, #9
	mov r0, r4
	pop {r4, pc}
`)
}

func TestBaselineMultiplyTiming(t *testing.T) {
	s := crossCheck(t, `
	mov r1, #100
	mvn r2, #0
	mul r3, r1, r2
	mov r0, r3
	swi #1
	mla r4, r1, r1, r3
	mov r0, r4
	swi #1
	swi #0
`)
	if s.Cycles < 10 {
		t.Errorf("suspiciously few cycles: %d", s.Cycles)
	}
}

func TestBaselineCycleLimit(t *testing.T) {
	p, err := arm.Assemble("x: b x\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{})
	if err := s.Run(500); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}

func TestBaselineUndefined(t *testing.T) {
	p, err := arm.Assemble(".word 0xec000000\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{})
	if err := s.Run(1000); err == nil {
		t.Fatal("expected undefined-instruction error")
	}
}
