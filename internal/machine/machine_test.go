package machine

import (
	"fmt"
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/iss"
)

// buildModels returns constructors for every model under test.
func buildModels() map[string]func(*arm.Program, Config) *Machine {
	return map[string]func(*arm.Program, Config) *Machine{
		"strongarm": NewStrongARM,
		"xscale":    NewXScale,
	}
}

// crossCheck runs src on the ISS and on each cycle-accurate model and
// requires identical architected results.
func crossCheck(t *testing.T, src string) map[string]*Machine {
	t.Helper()
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	golden := iss.New(p, 0)
	golden.MaxInstrs = 2_000_000
	if err := golden.Run(); err != nil {
		t.Fatalf("iss: %v", err)
	}
	out := map[string]*Machine{}
	for name, build := range buildModels() {
		m := build(p, Config{})
		if err := m.Run(20_000_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.ExitCode != golden.Exit {
			t.Errorf("%s: exit %d, iss %d", name, m.ExitCode, golden.Exit)
		}
		if len(m.Output) != len(golden.Output) {
			t.Fatalf("%s: output %v, iss %v", name, m.Output, golden.Output)
		}
		for i := range m.Output {
			if m.Output[i] != golden.Output[i] {
				t.Errorf("%s: output[%d] = %#x, iss %#x", name, i, m.Output[i], golden.Output[i])
			}
		}
		if string(m.Text) != string(golden.Text) {
			t.Errorf("%s: text %q, iss %q", name, m.Text, golden.Text)
		}
		if m.Instret != golden.Instret {
			t.Errorf("%s: instret %d, iss %d", name, m.Instret, golden.Instret)
		}
		// Architected registers must match too (r15 excluded: ISS holds the
		// post-exit pc, the machine the speculative fetch pc).
		for r := arm.Reg(0); r < 15; r++ {
			if m.Reg(r) != golden.R[r] {
				t.Errorf("%s: r%d = %#x, iss %#x", name, r, m.Reg(r), golden.R[r])
			}
		}
		out[name] = m
	}
	return out
}

func TestSumLoopBothModels(t *testing.T) {
	ms := crossCheck(t, `
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, r1, #1
	cmp r1, #101
	bne loop
	swi #1
	swi #0
`)
	for name, m := range ms {
		if cpi := m.CPI(); cpi < 1.0 || cpi > 6.0 {
			t.Errorf("%s: implausible CPI %.2f", name, cpi)
		}
	}
}

func TestFactorialBothModels(t *testing.T) {
	crossCheck(t, `
_start:
	mov r0, #8
	bl fact
	swi #1
	swi #0
fact:
	cmp r0, #1
	movle r0, #1
	movle pc, lr
	push {r4, lr}
	mov r4, r0
	sub r0, r0, #1
	bl fact
	mul r0, r4, r0
	pop {r4, pc}
`)
}

func TestMemoryPatternsBothModels(t *testing.T) {
	crossCheck(t, `
	ldr r1, =buf
	mov r2, #0
	mov r3, #0
fill:
	str r2, [r1, r2, lsl #2]
	add r2, r2, #1
	cmp r2, #32
	bne fill
	mov r2, #0
sum:
	ldr r0, [r1, r2, lsl #2]
	add r3, r3, r0
	add r2, r2, #1
	cmp r2, #32
	bne sum
	mov r0, r3
	swi #1
	strb r3, [r1, #1]
	ldrb r0, [r1, #1]
	swi #1
	ldr r0, [r1], #4
	swi #1
	ldr r0, [r1, #4]!
	swi #1
	swi #0
	.align
buf:
	.space 256
`)
}

func TestHazardChainsBothModels(t *testing.T) {
	// Tight RAW chains, flag dependencies, shifter-by-register, carry chains.
	crossCheck(t, `
	mov r0, #1
	add r1, r0, r0      ; RAW back to back
	add r2, r1, r1
	add r3, r2, r2
	mov r4, #3
	mov r5, r3, lsl r4  ; shift amount from register
	swi_emit1:
	mov r0, r5
	swi #1
	; 64-bit add via carry chain
	mvn r0, #0
	mov r1, #1
	adds r2, r0, r1     ; carry out
	adc r3, r1, #0      ; consumes carry immediately
	mov r0, r3
	swi #1
	; flags read just after set
	subs r6, r1, #1
	moveq r0, #42
	movne r0, #7
	swi #1
	; RRX uses carry
	movs r7, r0, lsr #1 ; sets C from bit0 of 42 -> 0
	mov r8, #8
	movs r8, r8, rrx
	mov r0, r8
	swi #1
	swi #0
`)
}

func TestConditionalAndCompareOpsBothModels(t *testing.T) {
	crossCheck(t, `
	mov r0, #0
	mov r1, #10
	mov r2, #20
	cmp r1, r2
	addlt r0, r0, #1
	addgt r0, r0, #100
	addle r0, r0, #2
	addge r0, r0, #200
	cmn r1, r2
	addmi r0, r0, #4
	addpl r0, r0, #8
	tst r1, #2
	addne r0, r0, #16
	teq r1, r1
	addeq r0, r0, #32
	swi #1
	swi #0
`)
}

func TestLdmStmBothModels(t *testing.T) {
	crossCheck(t, `
	mov r1, #1
	mov r2, #2
	mov r3, #3
	mov r4, #4
	ldr r0, =save
	stmia r0!, {r1-r4}
	mov r1, #0
	mov r2, #0
	mov r3, #0
	mov r4, #0
	ldr r0, =save
	ldmia r0, {r1-r4}
	add r0, r1, r2
	add r0, r0, r3
	add r0, r0, r4
	swi #1
	; stack discipline with pc pop
	bl leaf
	swi #1
	swi #0
leaf:
	push {r4-r6, lr}
	mov r4, #5
	mov r5, #6
	mov r6, #7
	add r0, r4, r5
	add r0, r0, r6
	pop {r4-r6, pc}
	.align
save:
	.space 64
`)
}

func TestBranchyCodeBothModels(t *testing.T) {
	// Collatz from 27: many data-dependent branches.
	crossCheck(t, `
	mov r0, #27
	mov r2, #0
step:
	add r2, r2, #1
	cmp r0, #1
	beq done
	tst r0, #1
	bne odd
	mov r0, r0, lsr #1
	b step
odd:
	add r1, r0, r0, lsl #1 ; 3n
	add r0, r1, #1         ; 3n+1
	b step
done:
	mov r0, r2
	swi #1
	swi #0
`)
}

func TestMultiplyVariantsBothModels(t *testing.T) {
	crossCheck(t, `
	mov r1, #100
	mov r2, #3072
	mul r3, r1, r2
	mla r4, r1, r2, r3
	mov r0, r4
	swi #1
	mvn r5, #0          ; large multiplier -> max early-termination cycles
	mul r6, r1, r5
	mov r0, r6
	swi #1
	muls r7, r1, r1
	movmi r0, #1
	movpl r0, #2
	swi #1
	swi #0
`)
}

func TestPCWritesBothModels(t *testing.T) {
	crossCheck(t, `
	; computed jump via mov pc
	ldr r1, =t1
	mov pc, r1
	mov r0, #99       ; skipped
	swi #1
t1:
	mov r0, #5
	swi #1
	; jump via ldr pc
	ldr pc, =t2
	mov r0, #98       ; skipped
	swi #1
t2:
	mov r0, #6
	swi #1
	swi #0
`)
}

func TestTextOutputBothModels(t *testing.T) {
	crossCheck(t, `
	ldr r4, =msg
next:
	ldrb r0, [r4], #1
	cmp r0, #0
	beq fin
	swi #2
	b next
fin:
	mov r0, #0
	swi #0
msg:
	.asciz "hello, rcpn"
`)
}

func TestTimingSanityStrongARMStreams(t *testing.T) {
	// A warm loop of independent ops should stream near CPI 1 on the
	// 5-stage model: bypassing removes RAW stalls and the icache is warm
	// after the first iteration.
	var b string
	for i := 0; i < 12; i++ {
		b += fmt.Sprintf("\tadd r%d, r%d, #1\n", 1+i%4, 1+i%4)
	}
	src := "\tmov r1, #0\n\tmov r2, #0\n\tmov r3, #0\n\tmov r4, #0\n\tmov r5, #0\n" +
		"loop:\n" + b +
		"\tadd r5, r5, #1\n\tcmp r5, #500\n\tbne loop\n\tswi #0\n"
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewStrongARM(p, Config{})
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// 15 instructions per iteration + 2-cycle taken-branch refetch.
	if cpi := m.CPI(); cpi > 1.35 {
		t.Errorf("warm-loop CPI %.2f, want near 17/15", cpi)
	}
}

func TestTakenBranchPenaltyStrongARM(t *testing.T) {
	// With the not-taken static predictor every loop back-edge costs a
	// flush; the flush counter must reflect that.
	p, err := arm.Assemble(`
	mov r0, #0
loop:
	add r0, r0, #1
	cmp r0, #50
	bne loop
	swi #0
`, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewStrongARM(p, Config{})
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Flushes < 49 {
		t.Errorf("flushes = %d, want >= 49 (one per taken back-edge)", m.Flushes)
	}
}

func TestBimodalReducesFlushesXScale(t *testing.T) {
	src := `
	mov r0, #0
loop:
	add r0, r0, #1
	cmp r0, #200
	bne loop
	swi #0
`
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewXScale(p, Config{})
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// The loop branch trains quickly: flushes far below iteration count.
	if m.Flushes > 20 {
		t.Errorf("flushes = %d with bimodal predictor, want few", m.Flushes)
	}
	if acc := m.Pred.Stats().Accuracy(); acc < 0.9 {
		t.Errorf("predictor accuracy %.2f, want >= 0.9", acc)
	}
}

func TestAblationConfigsStillCorrect(t *testing.T) {
	src := `
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, r1, #1
	cmp r1, #30
	bne loop
	swi #1
	swi #0
`
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStrongARM(p, Config{})
	if err := ref.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{NoTokenCache: true},
		{DynamicSearch: true},
		{TwoListAll: true},
	} {
		m := NewStrongARM(p, cfg)
		if err := m.Run(0); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if len(m.Output) != 1 || m.Output[0] != ref.Output[0] {
			t.Errorf("%+v: output %v, want %v", cfg, m.Output, ref.Output)
		}
		// NoTokenCache and DynamicSearch change only simulator speed, never
		// modeled time; TwoListAll may legally change timing.
		if !cfg.TwoListAll && m.Net.CycleCount() != ref.Net.CycleCount() {
			t.Errorf("%+v: cycles %d, want %d", cfg, m.Net.CycleCount(), ref.Net.CycleCount())
		}
	}
}

func TestCacheStatsAccumulate(t *testing.T) {
	src := `
	ldr r1, =buf
	mov r2, #0
loop:
	ldr r0, [r1, r2, lsl #2]
	add r2, r2, #1
	cmp r2, #64
	bne loop
	swi #0
	.align
buf:
	.space 1024
`
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewStrongARM(p, Config{})
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	d := m.DCache.Stats
	// 64 loop loads plus the literal-pool load of =buf.
	if d.Accesses() != 65 {
		t.Errorf("dcache accesses = %d, want 65", d.Accesses())
	}
	if d.Misses == 0 || d.Hits == 0 {
		t.Errorf("expected a mix of hits and misses, got %+v", d)
	}
	if m.ICache.Stats.Accesses() == 0 {
		t.Error("icache never accessed")
	}
}

func TestUndefinedInstructionSurfaces(t *testing.T) {
	p, err := arm.Assemble(".word 0xec000000\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewStrongARM(p, Config{})
	if err := m.Run(1000); err == nil {
		t.Fatal("expected undefined-instruction error")
	}
}

func TestCycleLimit(t *testing.T) {
	p, err := arm.Assemble("x: b x\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewXScale(p, Config{})
	if err := m.Run(500); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}

func TestDotRendersBothModels(t *testing.T) {
	p, err := arm.Assemble("swi #0\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range buildModels() {
		m := build(p, Config{})
		dot := m.Dot()
		if len(dot) < 100 {
			t.Errorf("%s: dot output too small", name)
		}
	}
}
