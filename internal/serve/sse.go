package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"rcpn/internal/stats"
)

// GET /v1/jobs/{id}/events streams the job's lifecycle as server-sent
// events: an immediate "state" event, a "progress" event (cycles retired,
// Mcycles/s) every SSEInterval while the job runs, and a terminal "state"
// event when it completes, after which the stream ends. The progress feed
// reads the counters the worker publishes at every Drive chunk, so no
// per-subscriber plumbing touches the simulation hot path.

// batchProgress assembles a stats.Progress snapshot from the job's live
// counters.
func batchProgress(j *job) stats.Progress {
	p := stats.Progress{Cycles: j.cycles.Load(), Instret: j.instret.Load()}
	if start := j.startNano.Load(); start != 0 {
		end := j.endNano.Load() // frozen at completion so late reads keep the true rate
		if end == 0 {
			end = time.Now().UnixNano()
		}
		p.Wall = time.Duration(end - start)
	}
	return p
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Subscriber gauge: a disconnecting client must release its slot (the
	// select below watches r.Context()); the leak test pins this to zero.
	s.sseActive.Add(1)
	defer s.sseActive.Add(-1)

	emit := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	state, _, _ := j.snapshot()
	if state == StateDone || state == StateFailed {
		// Already terminal: emit the final counters and the terminal
		// state so late subscribers still get a complete stream.
		emit("progress", j.progress())
		emit("state", map[string]string{"id": j.id, "state": state})
		return
	}
	emit("state", map[string]string{"id": j.id, "state": state})

	ticker := time.NewTicker(s.cfg.SSEInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			state, _, _ := j.snapshot()
			emit("progress", j.progress())
			emit("state", map[string]string{"id": j.id, "state": state})
			return
		case <-ticker.C:
			if st, _, _ := j.snapshot(); st == StateRunning {
				emit("progress", j.progress())
			}
		}
	}
}
