package rcpn

// Time-parallel conformance rows: every kernel × engine cell also runs
// through internal/tpar exact mode at N ∈ {2, 4}, and the stitched result
// must be byte-identical to the serial segmented reference — cycle count,
// retired instructions, final architectural state and merged stall
// profile — and the final state must still match the ISS golden model.
// This is the executable form of the exact-mode contract: time-parallelism
// is an execution strategy, never a semantics change.
//
// TestSegmentKillResume additionally arms the tpar.segment fault site to
// crash the worker holding a segment mid-sweep and asserts the reassigned
// segment converges to the same bytes.

import (
	"reflect"
	"testing"

	"rcpn/internal/diffrun"
	"rcpn/internal/faultinj"
	"rcpn/internal/tpar"
	"rcpn/internal/workload"
)

// tparMinSegment keeps segment counts honest on the small test kernels
// (the production default of 1024 would clamp N=4 away on short runs).
const tparMinSegment = 256

func tparOptions(engine string, segments int) tpar.Options {
	return tpar.Options{
		Segments:   segments,
		Mode:       tpar.Exact,
		Warm:       tpar.DefaultWarm(engine),
		MinSegment: tparMinSegment,
		Profile:    true,
	}
}

// assertIdentical compares a stitched parallel result with its serial
// reference field by field so a mismatch names what diverged.
func assertIdentical(t *testing.T, par, ser *tpar.Result) {
	t.Helper()
	if par.Cycles != ser.Cycles {
		t.Errorf("cycles: parallel %d, serial %d", par.Cycles, ser.Cycles)
	}
	if par.Instret != ser.Instret {
		t.Errorf("instret: parallel %d, serial %d", par.Instret, ser.Instret)
	}
	if par.State == nil || ser.State == nil {
		t.Fatalf("missing final state: parallel %v, serial %v", par.State, ser.State)
	}
	diffState(t, "tpar", *par.State, *ser.State)
	if !reflect.DeepEqual(par.Stalls, ser.Stalls) {
		t.Errorf("stall profiles differ:\n parallel %+v\n serial   %+v", par.Stalls, ser.Stalls)
	}
}

// TestTparConformance is the kernel × engine × N matrix for exact mode.
func TestTparConformance(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			ref := goldenState(t, p)
			for _, n := range []int{2, 4} {
				n := n
				for _, e := range diffrun.Engines() {
					e := e
					t.Run(e.Name+"@N"+string(rune('0'+n)), func(t *testing.T) {
						opt := tparOptions(e.Name, n)
						plan, err := tpar.NewPlan(p, opt)
						if err != nil {
							t.Fatal(err)
						}
						par, err := tpar.RunPlan(p, plan, tpar.EngineBuild(e, p), opt)
						if err != nil {
							t.Fatal(err)
						}
						ser, err := tpar.Serial(plan, tpar.EngineBuild(e, p), opt)
						if err != nil {
							t.Fatal(err)
						}
						assertIdentical(t, par, ser)
						diffState(t, e.Name+"@golden", *par.State, ref)
					})
				}
			}
		})
	}
}

// TestSegmentKillResume: a faultinj panic rule kills the worker running
// the final segment of a parallel sweep; the pool recovers, the segment
// is reassigned, and the stitched result is identical to the unfaulted
// run — crash recovery is invisible in the result bytes.
func TestSegmentKillResume(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	var engine diffrun.Engine
	for _, e := range diffrun.Engines() {
		if e.Name == "pipe5" {
			engine = e
		}
	}
	opt := tparOptions(engine.Name, 4)
	plan, err := tpar.NewPlan(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := tpar.RunPlan(p, plan, tpar.EngineBuild(engine, p), opt)
	if err != nil {
		t.Fatal(err)
	}

	fopt := opt
	fopt.Fault = faultinj.New(faultinj.Rule{
		Site: faultinj.SiteTparSegment,
		// The value is the segment's starting retired-instruction count, so
		// triggering at the last boundary pins the kill to the final
		// segment regardless of worker interleaving.
		AtValue: plan.Boundaries[len(plan.Boundaries)-1],
		Action:  faultinj.ActPanic,
	})
	faulted, err := tpar.RunPlan(p, plan, tpar.EngineBuild(engine, p), fopt)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Reassigned < 1 {
		t.Fatalf("injected crash caused no reassignment (fired: %v)", fopt.Fault.Fired())
	}
	assertIdentical(t, faulted, clean)
}
