// Package obsv is the observability layer shared by every engine in this
// repository: per-stage stall attribution (StallProfile), a bounded
// ring-buffer event tracer with Chrome trace_event and compact binary
// writers (Tracer), and a minimal Prometheus text-format exposition
// helper used by the simulation service.
//
// Two invariants govern the whole package:
//
//   - Zero overhead when disabled. Engines keep a nil pointer to their
//     attachment and guard every hook with a single nil check; nothing is
//     allocated, counted or formatted unless the caller opted in.
//   - Determinism. Every emitted artifact — stall tables, trace files,
//     report fragments — is a pure function of the simulated run: cycle
//     numbers are the only timestamps, iteration orders are fixed, and no
//     wall-clock or map-order nondeterminism leaks in. Two runs of the
//     same spec produce byte-identical output, so everything here is
//     golden-testable.
//
// The package depends only on the standard library so that internal/core
// and every engine above it can import it without cycles.
package obsv

import (
	"fmt"
	"sort"
	"strings"
)

// StallKind classifies why a pipeline stage made no forward progress in a
// cycle. The taxonomy mirrors the transition-enabling clauses of the RCPN
// formalism (DESIGN.md §10): a transition fires only if its output stage
// has capacity, its reservation inputs hold tokens, and its guard is
// true — each clause that fails maps to one kind, and the guard clause is
// sub-classified into the register-hazard kinds when the model can tell.
type StallKind uint8

const (
	// StallEmpty: the stage held no token — a pipeline bubble (the
	// "input token absent" clause: nothing upstream delivered work).
	StallEmpty StallKind = iota
	// StallDelay: the stage's token is still inside a multi-cycle
	// residency delay (cache miss penalty, multiplier latency, pipeline
	// fill) and is not yet eligible to fire.
	StallDelay
	// StallGuard: a guard predicate evaluated false for a reason the
	// model did not sub-classify (serialization, branch recovery, ...).
	StallGuard
	// StallCapacity: the output stage was full — structural back-pressure.
	StallCapacity
	// StallReservation: a reservation place held no token (shared
	// resource such as a multiplier or memory port already claimed).
	StallReservation
	// StallRAW: guard false because a source operand was not readable in
	// the register file or on any bypass path — a true RAW hazard wait.
	StallRAW
	// StallWriteback: guard false because a destination could not be
	// reserved or written back — a WAW/writeback-order wait.
	StallWriteback

	// NumStallKinds bounds the per-kind counter arrays.
	NumStallKinds
)

var stallNames = [NumStallKinds]string{
	"empty", "delay", "guard", "capacity", "reservation", "raw", "writeback",
}

func (k StallKind) String() string {
	if int(k) < len(stallNames) {
		return stallNames[k]
	}
	return fmt.Sprintf("stallkind(%d)", uint8(k))
}

// StageProfile is one pipeline stage's cycle accounting. Every simulated
// cycle contributes exactly one slot to exactly one bucket: Occupied when
// the stage advanced work (fired a token onward, retired one, or made a
// micro-step of multi-cycle progress), or one of the Counts when it did
// not. The identity Occupied + sum(Counts) == Cycles is what makes the
// profile a partition of time rather than a pile of overlapping counters.
type StageProfile struct {
	Name string `json:"name"`
	// Occupied counts cycles in which the stage made forward progress.
	Occupied uint64 `json:"occupied"`
	// Counts[k] counts cycles lost to StallKind k.
	Counts [NumStallKinds]uint64 `json:"-"`
}

// Stalls returns the stage's total stall slots across all kinds.
func (s *StageProfile) Stalls() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// StallProfile is a full per-stage stall attribution for one run. Engines
// create it through NewStallProfile at attach time and account one slot
// per stage per cycle; nil receivers are inert so call sites need no
// guards of their own beyond the engine's single attachment check.
type StallProfile struct {
	// Cycles is the number of simulated cycles accounted so far.
	Cycles uint64
	// Stages holds one entry per pipeline stage, in pipeline order.
	Stages []StageProfile
	// BypassServed counts source-operand reads satisfied by a bypass
	// (forwarding) path instead of the architected register file. These
	// are event counters, not cycle slots: they record hazards that were
	// *hidden* and so never show up in the per-stage stall partition.
	BypassServed uint64
	// FileReads counts source-operand reads served by the register file.
	FileReads uint64
}

// NewStallProfile builds a profile over the named stages in pipeline order.
func NewStallProfile(stages ...string) *StallProfile {
	p := &StallProfile{Stages: make([]StageProfile, len(stages))}
	for i, name := range stages {
		p.Stages[i].Name = name
	}
	return p
}

// Advance accounts one forward-progress slot for the stage.
func (p *StallProfile) Advance(stage int) { p.Stages[stage].Occupied++ }

// Stall accounts one stall slot of kind k for the stage.
func (p *StallProfile) Stall(stage int, k StallKind) { p.Stages[stage].Counts[k]++ }

// EndCycle marks one simulated cycle accounted. Engines call it once per
// cycle after filling every stage's slot.
func (p *StallProfile) EndCycle() { p.Cycles++ }

// Validate checks the slot partition: for every stage,
// Occupied + sum(Counts) must equal Cycles — equivalently, total stall
// cycles sum to (Cycles × stages − occupied cycles). A violation means an
// engine double-counted or skipped a (stage, cycle) slot.
func (p *StallProfile) Validate() error {
	for i := range p.Stages {
		s := &p.Stages[i]
		if got := s.Occupied + s.Stalls(); got != p.Cycles {
			return fmt.Errorf("stage %s: occupied %d + stalls %d = %d slots, want %d cycles",
				s.Name, s.Occupied, s.Stalls(), got, p.Cycles)
		}
	}
	return nil
}

// Table renders the profile as an aligned text table, one row per stage,
// with per-kind stall columns and an occupancy percentage. Deterministic:
// fixed column order, no wall-clock.
func (p *StallProfile) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %7s", "stage", "occupied", "occ%")
	for k := StallKind(0); k < NumStallKinds; k++ {
		fmt.Fprintf(&b, " %11s", k.String())
	}
	b.WriteByte('\n')
	for i := range p.Stages {
		s := &p.Stages[i]
		pct := 0.0
		if p.Cycles > 0 {
			pct = 100 * float64(s.Occupied) / float64(p.Cycles)
		}
		fmt.Fprintf(&b, "%-10s %12d %6.1f%%", s.Name, s.Occupied, pct)
		for k := StallKind(0); k < NumStallKinds; k++ {
			fmt.Fprintf(&b, " %11d", s.Counts[k])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "cycles %d", p.Cycles)
	if p.BypassServed+p.FileReads > 0 {
		fmt.Fprintf(&b, "; operand reads: %d bypass, %d regfile", p.BypassServed, p.FileReads)
	}
	b.WriteByte('\n')
	return b.String()
}

// jsonStage is the serialized form of one stage: the fixed-size kind
// array becomes a name→count object so the report stays self-describing
// when the taxonomy grows.
type jsonStage struct {
	Name     string            `json:"name"`
	Occupied uint64            `json:"occupied"`
	Stalls   map[string]uint64 `json:"stalls"`
}

// Snapshot returns a plain-data copy of the profile suitable for
// deterministic JSON embedding in rcpn-batch/v1 reports: maps hold only
// nonzero kinds (encoding/json sorts the keys, keeping bytes stable).
func (p *StallProfile) Snapshot() *StallSnapshot {
	if p == nil {
		return nil
	}
	snap := &StallSnapshot{
		Cycles:       p.Cycles,
		BypassServed: p.BypassServed,
		FileReads:    p.FileReads,
		Stages:       make([]jsonStage, len(p.Stages)),
	}
	for i := range p.Stages {
		s := &p.Stages[i]
		js := jsonStage{Name: s.Name, Occupied: s.Occupied, Stalls: map[string]uint64{}}
		for k := StallKind(0); k < NumStallKinds; k++ {
			if s.Counts[k] != 0 {
				js.Stalls[k.String()] = s.Counts[k]
			}
		}
		snap.Stages[i] = js
	}
	return snap
}

// Merge adds a snapshot's accounting into the profile — the resume
// primitive: a run restored from a checkpoint seeds its fresh profile
// with the donor attempt's accounting, so the finished profile covers
// the whole run and a resumed result stays byte-identical to an
// uninterrupted one. The snapshot must describe the same stage list.
func (p *StallProfile) Merge(s *StallSnapshot) error {
	if s == nil {
		return nil
	}
	if len(s.Stages) != len(p.Stages) {
		return fmt.Errorf("obsv: merge: snapshot has %d stages, profile has %d", len(s.Stages), len(p.Stages))
	}
	for i := range s.Stages {
		if s.Stages[i].Name != p.Stages[i].Name {
			return fmt.Errorf("obsv: merge: stage %d is %q, profile has %q",
				i, s.Stages[i].Name, p.Stages[i].Name)
		}
		for name := range s.Stages[i].Stalls {
			if _, ok := kindByName(name); !ok {
				return fmt.Errorf("obsv: merge: unknown stall kind %q", name)
			}
		}
	}
	for i := range s.Stages {
		in := &s.Stages[i]
		st := &p.Stages[i]
		st.Occupied += in.Occupied
		for name, n := range in.Stalls {
			k, _ := kindByName(name)
			st.Counts[k] += n
		}
	}
	p.Cycles += s.Cycles
	p.BypassServed += s.BypassServed
	p.FileReads += s.FileReads
	return nil
}

func kindByName(name string) (StallKind, bool) {
	for k, n := range stallNames {
		if n == name {
			return StallKind(k), true
		}
	}
	return 0, false
}

// Clone returns a deep copy of the profile — the snapshot primitive for
// partial-result salvage: a driver can copy the live profile at a chunk
// boundary and hand the copy out even if the run later panics.
func (p *StallProfile) Clone() *StallProfile {
	if p == nil {
		return nil
	}
	c := *p
	c.Stages = append([]StageProfile(nil), p.Stages...)
	return &c
}

// StallSnapshot is the JSON form of a StallProfile as embedded in
// rcpn-batch/v1 reports under "stalls".
type StallSnapshot struct {
	Cycles       uint64      `json:"cycles"`
	Stages       []jsonStage `json:"stages"`
	BypassServed uint64      `json:"bypass_served,omitempty"`
	FileReads    uint64      `json:"file_reads,omitempty"`
}

// TopStalls returns the stall kinds of a stage sorted by descending
// count (ties broken by kind order), for compact reporting.
func (s *StageProfile) TopStalls() []StallKind {
	kinds := make([]StallKind, 0, NumStallKinds)
	for k := StallKind(0); k < NumStallKinds; k++ {
		if s.Counts[k] > 0 {
			kinds = append(kinds, k)
		}
	}
	sort.SliceStable(kinds, func(a, b int) bool {
		return s.Counts[kinds[a]] > s.Counts[kinds[b]]
	})
	return kinds
}
