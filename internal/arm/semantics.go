package arm

// Flags is the NZCV condition-flag state. It is the piece of architected
// state beyond the register file that instructions read (conditions, ADC/SBC,
// shifter carry) and write (S-suffixed instructions).
type Flags struct {
	N, Z, C, V bool
}

// Shifter applies a barrel-shifter operation and returns the result together
// with the shifter carry-out, following the ARM ARM semantics for
// immediate-amount shifts (byReg=false) and register-amount shifts
// (byReg=true, amount taken modulo 256).
func Shifter(val uint32, typ Shift, amount uint32, byReg bool, carryIn bool) (uint32, bool) {
	amt := amount
	if byReg {
		amt &= 0xff
		if amt == 0 {
			return val, carryIn
		}
	}
	switch typ {
	case LSL:
		switch {
		case amt == 0:
			return val, carryIn
		case amt < 32:
			return val << amt, val>>(32-amt)&1 != 0
		case amt == 32:
			return 0, val&1 != 0
		default:
			return 0, false
		}
	case LSR:
		if !byReg && amt == 0 { // LSR #0 encodes LSR #32
			amt = 32
		}
		switch {
		case amt == 0:
			return val, carryIn
		case amt < 32:
			return val >> amt, val>>(amt-1)&1 != 0
		case amt == 32:
			return 0, val>>31 != 0
		default:
			return 0, false
		}
	case ASR:
		if !byReg && amt == 0 { // ASR #0 encodes ASR #32
			amt = 32
		}
		if amt == 0 {
			return val, carryIn
		}
		if amt >= 32 {
			if val>>31 != 0 {
				return 0xffffffff, true
			}
			return 0, false
		}
		return uint32(int32(val) >> amt), val>>(amt-1)&1 != 0
	default: // ROR
		if !byReg && amt == 0 { // ROR #0 encodes RRX
			carry := val&1 != 0
			res := val >> 1
			if carryIn {
				res |= 1 << 31
			}
			return res, carry
		}
		amt &= 31
		if amt == 0 {
			return val, val>>31 != 0
		}
		res := val>>amt | val<<(32-amt)
		return res, res>>31 != 0
	}
}

// Operand2Value evaluates the flexible second operand of a decoded
// data-processing instruction given the values of Rm and Rs, returning the
// operand value and the shifter carry-out. For immediate forms rmVal/rsVal
// are ignored.
func (i *Instr) Operand2Value(rmVal, rsVal uint32, carryIn bool) (uint32, bool) {
	if i.HasImm {
		if i.ShiftAmt == 0 {
			return i.Imm, carryIn
		}
		return i.Imm, i.Imm>>31 != 0
	}
	if i.ShiftReg {
		return Shifter(rmVal, i.ShiftTyp, rsVal, true, carryIn)
	}
	return Shifter(rmVal, i.ShiftTyp, uint32(i.ShiftAmt), false, carryIn)
}

// AluExec executes a data-processing opcode on operands a (Rn) and b
// (operand2). shiftC is the shifter carry-out, used as the C result of the
// logical opcodes. It returns the result and the new flags; callers decide
// whether to commit them (S bit, compare opcodes).
func AluExec(op DPOp, a, b uint32, f Flags, shiftC bool) (uint32, Flags) {
	var res uint32
	out := f
	logical := false
	switch op {
	case OpAND, OpTST:
		res, logical = a&b, true
	case OpEOR, OpTEQ:
		res, logical = a^b, true
	case OpORR:
		res, logical = a|b, true
	case OpBIC:
		res, logical = a&^b, true
	case OpMOV:
		res, logical = b, true
	case OpMVN:
		res, logical = ^b, true
	case OpSUB, OpCMP:
		res = a - b
		out.C = a >= b
		out.V = (a^b)&(a^res)>>31&1 != 0
	case OpRSB:
		res = b - a
		out.C = b >= a
		out.V = (b^a)&(b^res)>>31&1 != 0
	case OpADD, OpCMN:
		res = a + b
		out.C = res < a
		out.V = ^(a^b)&(a^res)>>31&1 != 0
	case OpADC:
		c := uint32(0)
		if f.C {
			c = 1
		}
		res = a + b + c
		out.C = uint64(a)+uint64(b)+uint64(c) > 0xffffffff
		out.V = ^(a^b)&(a^res)>>31&1 != 0
	case OpSBC:
		c := uint32(1)
		if f.C {
			c = 0
		}
		res = a - b - c
		out.C = uint64(a) >= uint64(b)+uint64(c)
		out.V = (a^b)&(a^res)>>31&1 != 0
	case OpRSC:
		c := uint32(1)
		if f.C {
			c = 0
		}
		res = b - a - c
		out.C = uint64(b) >= uint64(a)+uint64(c)
		out.V = (b^a)&(b^res)>>31&1 != 0
	}
	if logical {
		out.C = shiftC
		// V unaffected by logical operations.
		out.V = f.V
	}
	out.N = res>>31 != 0
	out.Z = res == 0
	return res, out
}

// MulExec executes MUL/MLA and returns the result and updated flags
// (C and V are unaffected on ARM7 multiplies; N and Z follow the result).
func MulExec(accum bool, rmVal, rsVal, accVal uint32, f Flags) (uint32, Flags) {
	res := rmVal * rsVal
	if accum {
		res += accVal
	}
	out := f
	out.N = res>>31 != 0
	out.Z = res == 0
	return res, out
}

// MulLongExec executes the 64-bit multiplies (UMULL/UMLAL/SMULL/SMLAL):
// {hi,lo} = Rm * Rs (+ {accHi,accLo} when accum). Flags follow the 64-bit
// result; C and V are unaffected (ARMv4 leaves them unpredictable — we keep
// them, which is the common simulator choice).
func MulLongExec(signed, accum bool, rmVal, rsVal, accLo, accHi uint32, f Flags) (lo, hi uint32, out Flags) {
	var res uint64
	if signed {
		res = uint64(int64(int32(rmVal)) * int64(int32(rsVal)))
	} else {
		res = uint64(rmVal) * uint64(rsVal)
	}
	if accum {
		res += uint64(accHi)<<32 | uint64(accLo)
	}
	out = f
	out.N = res>>63 != 0
	out.Z = res == 0
	return uint32(res), uint32(res >> 32), out
}

// DataMem is the read side of a data memory, satisfied by mem.Memory; it
// lets the load-size/extension semantics live here, shared by every
// simulator.
type DataMem interface {
	Read8(addr uint32) byte
	Read16(addr uint32) uint16
	Read32(addr uint32) uint32
}

// LoadValue performs the read side of every load flavor the subset knows:
// word, byte, halfword, and the sign-extending LDRSB/LDRSH forms.
func (i *Instr) LoadValue(m DataMem, ea uint32) uint32 {
	switch {
	case i.Byte && i.SignedLoad:
		return uint32(int32(int8(m.Read8(ea))))
	case i.Byte:
		return uint32(m.Read8(ea))
	case i.Half && i.SignedLoad:
		return uint32(int32(int16(m.Read16(ea))))
	case i.Half:
		return uint32(m.Read16(ea))
	default:
		return m.Read32(ea)
	}
}

// LSAddress computes the effective address and the post-instruction base
// value for a decoded load/store given the base and offset-register values.
// wbVal is meaningful when the instruction writes the base back
// (post-indexed, or pre-indexed with W set).
func (i *Instr) LSAddress(base, rmVal uint32) (addr, wbVal uint32, writeback bool) {
	off := i.Imm
	if !i.HasImm {
		off, _ = Shifter(rmVal, i.ShiftTyp, uint32(i.ShiftAmt), false, false)
	}
	moved := base + off
	if !i.Up {
		moved = base - off
	}
	if i.PreIndex {
		return moved, moved, i.Writeback
	}
	return base, moved, true // post-indexed always writes back
}

// LSMAddresses returns the ascending list of addresses touched by an LDM/STM
// and the final base value, following the ARM block-transfer rules for the
// four IA/IB/DA/DB variants.
func (i *Instr) LSMAddresses(base uint32) (addrs []uint32, finalBase uint32) {
	return i.LSMAddressesInto(base, nil)
}

// LSMAddressesInto is LSMAddresses appending into buf (reused from length 0),
// so per-instruction simulators can keep a scratch buffer and avoid the
// allocation on every block transfer.
func (i *Instr) LSMAddressesInto(base uint32, buf []uint32) (addrs []uint32, finalBase uint32) {
	n := uint32(RegListCount(i.RegList))
	var start uint32
	switch {
	case i.Up && !i.PreIndex: // IA
		start = base
		finalBase = base + 4*n
	case i.Up && i.PreIndex: // IB
		start = base + 4
		finalBase = base + 4*n
	case !i.Up && !i.PreIndex: // DA
		start = base - 4*n + 4
		finalBase = base - 4*n
	default: // DB
		start = base - 4*n
		finalBase = base - 4*n
	}
	addrs = buf[:0]
	for k := uint32(0); k < n; k++ {
		addrs = append(addrs, start+4*k)
	}
	return addrs, finalBase
}
