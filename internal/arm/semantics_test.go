package arm

import (
	"testing"
	"testing/quick"
)

func TestShifterLSL(t *testing.T) {
	cases := []struct {
		val, amt  uint32
		byReg     bool
		cin       bool
		want      uint32
		wantCarry bool
	}{
		{0x1, 0, false, true, 0x1, true}, // amount 0: unchanged, carry preserved
		{0x1, 1, false, false, 0x2, false},
		{0x80000000, 1, false, false, 0, true},
		{0xffffffff, 4, false, false, 0xfffffff0, true},
		{0x1, 32, true, false, 0, true},
		{0x1, 33, true, false, 0, false},
		{0x1, 300, true, true, 0, false}, // 300&0xff=44 >32
	}
	for _, c := range cases {
		got, carry := Shifter(c.val, LSL, c.amt, c.byReg, c.cin)
		if got != c.want || carry != c.wantCarry {
			t.Errorf("LSL %#x by %d (reg=%v): got %#x/%v want %#x/%v",
				c.val, c.amt, c.byReg, got, carry, c.want, c.wantCarry)
		}
	}
}

func TestShifterLSRImm0Is32(t *testing.T) {
	got, carry := Shifter(0x80000000, LSR, 0, false, false)
	if got != 0 || !carry {
		t.Errorf("LSR #32: got %#x carry=%v", got, carry)
	}
}

func TestShifterASR(t *testing.T) {
	got, carry := Shifter(0x80000000, ASR, 4, false, false)
	if got != 0xf8000000 || carry {
		t.Errorf("ASR #4: got %#x carry=%v", got, carry)
	}
	got, carry = Shifter(0x80000000, ASR, 0, false, false) // ASR #32
	if got != 0xffffffff || !carry {
		t.Errorf("ASR #32: got %#x carry=%v", got, carry)
	}
	got, carry = Shifter(0x7fffffff, ASR, 40, true, false)
	if got != 0 || carry {
		t.Errorf("ASR reg 40 of positive: got %#x carry=%v", got, carry)
	}
}

func TestShifterRORAndRRX(t *testing.T) {
	got, carry := Shifter(0x00000003, ROR, 1, false, false)
	if got != 0x80000001 || !carry {
		t.Errorf("ROR #1: got %#x carry=%v", got, carry)
	}
	// ROR #0 immediate encodes RRX: carry shifts in at the top.
	got, carry = Shifter(0x00000001, ROR, 0, false, true)
	if got != 0x80000000 || !carry {
		t.Errorf("RRX: got %#x carry=%v", got, carry)
	}
	got, carry = Shifter(0x00000002, ROR, 0, false, false)
	if got != 0x00000001 || carry {
		t.Errorf("RRX no carry-in: got %#x carry=%v", got, carry)
	}
	// Register ROR by multiple of 32: value unchanged, carry = bit31.
	got, carry = Shifter(0x80000000, ROR, 32, true, false)
	if got != 0x80000000 || !carry {
		t.Errorf("ROR reg 32: got %#x carry=%v", got, carry)
	}
}

// Rotation by register amount is a bijection: ror by n then rol by n restores.
func TestShifterRORProperty(t *testing.T) {
	err := quick.Check(func(v uint32, amt uint8) bool {
		n := uint32(amt&31) | 1 // nonzero, <32
		r1, _ := Shifter(v, ROR, n, true, false)
		r2, _ := Shifter(r1, ROR, 32-n, true, false)
		return r2 == v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAluAddSubFlags(t *testing.T) {
	cases := []struct {
		op         DPOp
		a, b       uint32
		want       uint32
		n, z, c, v bool
	}{
		{OpADD, 1, 2, 3, false, false, false, false},
		{OpADD, 0xffffffff, 1, 0, false, true, true, false},
		{OpADD, 0x7fffffff, 1, 0x80000000, true, false, false, true},
		{OpADD, 0x80000000, 0x80000000, 0, false, true, true, true},
		{OpSUB, 5, 3, 2, false, false, true, false},
		{OpSUB, 3, 5, 0xfffffffe, true, false, false, false},
		{OpSUB, 0x80000000, 1, 0x7fffffff, false, false, true, true},
		{OpSUB, 7, 7, 0, false, true, true, false},
		{OpRSB, 3, 5, 2, false, false, true, false},
		{OpCMP, 5, 5, 0, false, true, true, false},
		{OpCMN, 0xffffffff, 1, 0, false, true, true, false},
	}
	for _, tc := range cases {
		res, fl := AluExec(tc.op, tc.a, tc.b, Flags{}, false)
		if res != tc.want || fl.N != tc.n || fl.Z != tc.z || fl.C != tc.c || fl.V != tc.v {
			t.Errorf("%v %#x,%#x: got %#x NZCV=%v%v%v%v want %#x %v%v%v%v",
				tc.op, tc.a, tc.b, res, fl.N, fl.Z, fl.C, fl.V,
				tc.want, tc.n, tc.z, tc.c, tc.v)
		}
	}
}

func TestAluCarryChain(t *testing.T) {
	// ADC with carry set adds 1 more.
	res, fl := AluExec(OpADC, 10, 20, Flags{C: true}, false)
	if res != 31 {
		t.Errorf("ADC = %d", res)
	}
	// SBC with carry clear subtracts 1 more.
	res, _ = AluExec(OpSBC, 10, 3, Flags{C: false}, false)
	if res != 6 {
		t.Errorf("SBC (C=0) = %d", res)
	}
	res, _ = AluExec(OpSBC, 10, 3, Flags{C: true}, false)
	if res != 7 {
		t.Errorf("SBC (C=1) = %d", res)
	}
	// RSC mirrors SBC with swapped operands.
	res, _ = AluExec(OpRSC, 3, 10, Flags{C: true}, false)
	if res != 7 {
		t.Errorf("RSC = %d", res)
	}
	_ = fl
}

// 64-bit add/sub chains via ADDS/ADC and SUBS/SBC behave like native 64-bit
// arithmetic: a property test of the carry semantics.
func TestAluWideArithmeticProperty(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		alo, ahi := uint32(a), uint32(a>>32)
		blo, bhi := uint32(b), uint32(b>>32)
		lo, f := AluExec(OpADD, alo, blo, Flags{}, false)
		hi, _ := AluExec(OpADC, ahi, bhi, f, false)
		if uint64(hi)<<32|uint64(lo) != a+b {
			return false
		}
		lo, f = AluExec(OpSUB, alo, blo, Flags{}, false)
		hi, _ = AluExec(OpSBC, ahi, bhi, f, false)
		return uint64(hi)<<32|uint64(lo) == a-b
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAluLogicalFlags(t *testing.T) {
	// Logical ops take C from the shifter, leave V alone.
	res, fl := AluExec(OpAND, 0xf0, 0x0f, Flags{V: true}, true)
	if res != 0 || !fl.Z || !fl.C || !fl.V {
		t.Errorf("AND: res=%#x fl=%+v", res, fl)
	}
	res, fl = AluExec(OpMVN, 0, 0, Flags{}, false)
	if res != 0xffffffff || !fl.N || fl.C {
		t.Errorf("MVN: res=%#x fl=%+v", res, fl)
	}
	res, _ = AluExec(OpBIC, 0xff, 0x0f, Flags{}, false)
	if res != 0xf0 {
		t.Errorf("BIC: res=%#x", res)
	}
	res, _ = AluExec(OpEOR, 0xff, 0x0f, Flags{}, false)
	if res != 0xf0 {
		t.Errorf("EOR: res=%#x", res)
	}
	res, _ = AluExec(OpORR, 0xf0, 0x0f, Flags{}, false)
	if res != 0xff {
		t.Errorf("ORR: res=%#x", res)
	}
	res, _ = AluExec(OpTEQ, 5, 5, Flags{}, false)
	if res != 0 {
		t.Errorf("TEQ: res=%#x", res)
	}
}

func TestMulExec(t *testing.T) {
	res, fl := MulExec(false, 6, 7, 99, Flags{C: true, V: true})
	if res != 42 || fl.N || fl.Z || !fl.C || !fl.V {
		t.Errorf("MUL: res=%d fl=%+v", res, fl)
	}
	res, _ = MulExec(true, 6, 7, 8, Flags{})
	if res != 50 {
		t.Errorf("MLA: res=%d", res)
	}
	_, fl = MulExec(false, 0, 5, 0, Flags{})
	if !fl.Z {
		t.Errorf("MUL zero: fl=%+v", fl)
	}
}

func TestLSAddressModes(t *testing.T) {
	enc := func(pre, up, wb bool, off uint32) *Instr {
		w, err := EncodeLS(AL, true, false, 1, MemMode{Rn: 2, Off: ImmOp(off), Up: up, PreIndex: pre, Writeback: wb})
		if err != nil {
			t.Fatal(err)
		}
		ins := Decode(w, 0)
		return &ins
	}
	// Pre-indexed, no writeback.
	if ea, _, wb := enc(true, true, false, 8).LSAddress(100, 0); ea != 108 || wb {
		t.Errorf("pre: ea=%d wb=%v", ea, wb)
	}
	// Pre-indexed with writeback.
	if ea, nb, wb := enc(true, true, true, 8).LSAddress(100, 0); ea != 108 || nb != 108 || !wb {
		t.Errorf("pre!: ea=%d nb=%d wb=%v", ea, nb, wb)
	}
	// Pre-indexed down.
	if ea, _, _ := enc(true, false, false, 8).LSAddress(100, 0); ea != 92 {
		t.Errorf("pre-down: ea=%d", ea)
	}
	// Post-indexed: address is the old base, base moves.
	if ea, nb, wb := enc(false, true, false, 8).LSAddress(100, 0); ea != 100 || nb != 108 || !wb {
		t.Errorf("post: ea=%d nb=%d wb=%v", ea, nb, wb)
	}
}

func TestLSMAddresses(t *testing.T) {
	mk := func(pre, up bool) *Instr {
		w := EncodeLSM(AL, true, pre, up, true, 0, 0b1110) // r1,r2,r3
		ins := Decode(w, 0)
		return &ins
	}
	// IA from 100: 100,104,108; final 112.
	addrs, final := mk(false, true).LSMAddresses(100)
	if len(addrs) != 3 || addrs[0] != 100 || addrs[2] != 108 || final != 112 {
		t.Errorf("IA: %v final=%d", addrs, final)
	}
	// IB from 100: 104,108,112; final 112.
	addrs, final = mk(true, true).LSMAddresses(100)
	if addrs[0] != 104 || addrs[2] != 112 || final != 112 {
		t.Errorf("IB: %v final=%d", addrs, final)
	}
	// DA from 100: 92,96,100; final 88.
	addrs, final = mk(false, false).LSMAddresses(100)
	if addrs[0] != 92 || addrs[2] != 100 || final != 88 {
		t.Errorf("DA: %v final=%d", addrs, final)
	}
	// DB from 100: 88,92,96; final 88.
	addrs, final = mk(true, false).LSMAddresses(100)
	if addrs[0] != 88 || addrs[2] != 96 || final != 88 {
		t.Errorf("DB: %v final=%d", addrs, final)
	}
}

// Push/pop round trip: stmdb sp!, {..} then ldmia sp!, {..} restores sp.
func TestLSMStackProperty(t *testing.T) {
	err := quick.Check(func(mask uint16, sp uint32) bool {
		if mask == 0 {
			return true
		}
		sp &^= 3
		push := Decode(EncodeLSM(AL, false, true, false, true, SP, mask), 0)
		pop := Decode(EncodeLSM(AL, true, false, true, true, SP, mask), 0)
		_, spAfterPush := push.LSMAddresses(sp)
		pushAddrs, _ := push.LSMAddresses(sp)
		popAddrs, spAfterPop := pop.LSMAddresses(spAfterPush)
		if spAfterPop != sp {
			return false
		}
		// Same slots touched in the same (ascending) order.
		for i := range pushAddrs {
			if pushAddrs[i] != popAddrs[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
