package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.Write32(0x8000, 0xdeadbeef)
	if got := m.Read32(0x8000); got != 0xdeadbeef {
		t.Fatalf("read32 = %#x", got)
	}
	// Little-endian byte order.
	if m.Read8(0x8000) != 0xef || m.Read8(0x8003) != 0xde {
		t.Fatalf("byte order wrong: %x %x", m.Read8(0x8000), m.Read8(0x8003))
	}
	m.Write8(0x8001, 0x11)
	if got := m.Read32(0x8000); got != 0xdead11ef {
		t.Fatalf("after byte write: %#x", got)
	}
}

func TestMemoryAlignmentMasking(t *testing.T) {
	m := New()
	m.Write32(0x1000, 0x12345678)
	for off := uint32(0); off < 4; off++ {
		if got := m.Read32(0x1000 + off); got != 0x12345678 {
			t.Errorf("read32 at +%d = %#x", off, got)
		}
	}
	m.Write32(0x2002, 0xaabbccdd) // lands at 0x2000
	if got := m.Read32(0x2000); got != 0xaabbccdd {
		t.Errorf("unaligned write landed at %#x", got)
	}
}

func TestMemoryZeroDefault(t *testing.T) {
	m := New()
	if m.Read32(0xfffffff0) != 0 || m.Read8(0x42) != 0 {
		t.Fatal("untouched memory must read zero")
	}
}

func TestMemoryPageBoundaries(t *testing.T) {
	m := New()
	// Bytes on both sides of the 64KB page boundary must be independent and
	// an aligned word just below it must not bleed into the next page.
	m.Write8(0xffff, 0xaa)
	m.Write8(0x10000, 0xbb)
	if m.Read8(0xffff) != 0xaa || m.Read8(0x10000) != 0xbb {
		t.Fatal("page boundary bytes wrong")
	}
	m.Write32(0xfffc, 0x11223344)
	if m.Read8(0x10000) != 0xbb {
		t.Fatal("word write bled into the next page")
	}
}

func TestLoadImage(t *testing.T) {
	m := New()
	img := []byte{1, 2, 3, 4, 5}
	m.LoadImage(0x8000, img)
	for i, b := range img {
		if m.Read8(0x8000+uint32(i)) != b {
			t.Fatalf("byte %d wrong", i)
		}
	}
	if m.Read32(0x8000) != 0x04030201 {
		t.Fatalf("word view = %#x", m.Read32(0x8000))
	}
}

// Property: write-then-read returns the written word at any aligned address.
func TestMemoryProperty(t *testing.T) {
	m := New()
	err := quick.Check(func(addr, val uint32) bool {
		m.Write32(addr, val)
		return m.Read32(addr) == val
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Name: "x", Sets: 0, Ways: 1, LineBytes: 32, HitLatency: 1, MissLatency: 10},
		{Name: "x", Sets: 3, Ways: 1, LineBytes: 32, HitLatency: 1, MissLatency: 10},
		{Name: "x", Sets: 4, Ways: 0, LineBytes: 32, HitLatency: 1, MissLatency: 10},
		{Name: "x", Sets: 4, Ways: 1, LineBytes: 5, HitLatency: 1, MissLatency: 10},
		{Name: "x", Sets: 4, Ways: 1, LineBytes: 32, HitLatency: 0, MissLatency: 10},
		{Name: "x", Sets: 4, Ways: 1, LineBytes: 32, HitLatency: 5, MissLatency: 2},
	}
	for i, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("config %d unexpectedly valid: %+v", i, cfg)
		}
	}
	if _, err := NewCache(CacheConfig{Name: "ok", Sets: 4, Ways: 2, LineBytes: 16, HitLatency: 1, MissLatency: 8}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestCacheHitMissLatencies(t *testing.T) {
	c := MustCache(CacheConfig{Name: "t", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1, MissLatency: 9})
	if lat := c.Access(0x100); lat != 9 {
		t.Fatalf("cold access latency %d", lat)
	}
	if lat := c.Access(0x104); lat != 1 {
		t.Fatalf("same-line access latency %d", lat)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	// Direct-mapped, 4 sets, 16B lines: addresses 64 bytes apart collide.
	c := MustCache(CacheConfig{Name: "t", Sets: 4, Ways: 1, LineBytes: 16, HitLatency: 1, MissLatency: 9})
	c.Access(0x000)
	c.Access(0x040) // evicts 0x000
	if c.Probe(0x000) {
		t.Fatal("0x000 should have been evicted")
	}
	if !c.Probe(0x040) {
		t.Fatal("0x040 should be resident")
	}
	if lat := c.Access(0x000); lat != 9 {
		t.Fatalf("re-access after eviction: %d", lat)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 1 set, 2 ways: the least recently used line is the victim.
	c := MustCache(CacheConfig{Name: "t", Sets: 1, Ways: 2, LineBytes: 16, HitLatency: 1, MissLatency: 9})
	c.Access(0x00) // A
	c.Access(0x10) // B
	c.Access(0x00) // touch A: B becomes LRU
	c.Access(0x20) // C evicts B
	if !c.Probe(0x00) || c.Probe(0x10) || !c.Probe(0x20) {
		t.Fatalf("LRU wrong: A=%v B=%v C=%v", c.Probe(0x00), c.Probe(0x10), c.Probe(0x20))
	}
}

func TestCacheProbeDoesNotTouch(t *testing.T) {
	c := MustCache(CacheConfig{Name: "t", Sets: 1, Ways: 2, LineBytes: 16, HitLatency: 1, MissLatency: 9})
	c.Access(0x00)
	c.Access(0x10)
	c.Probe(0x00) // must NOT refresh A's recency
	c.Access(0x20)
	if c.Probe(0x00) {
		t.Fatal("probe refreshed LRU state")
	}
}

func TestCacheReset(t *testing.T) {
	c := MustCache(CacheConfig{Name: "t", Sets: 2, Ways: 1, LineBytes: 16, HitLatency: 1, MissLatency: 9})
	c.Access(0x00)
	c.Access(0x00)
	c.Reset()
	if c.Stats.Accesses() != 0 {
		t.Fatal("stats survived reset")
	}
	if c.Probe(0x00) {
		t.Fatal("lines survived reset")
	}
}

func TestHitRatio(t *testing.T) {
	var s CacheStats
	if s.HitRatio() != 1 {
		t.Fatal("empty stats should report ratio 1")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRatio() != 0.75 {
		t.Fatalf("ratio = %f", s.HitRatio())
	}
}

func TestDefaultHierarchies(t *testing.T) {
	for _, h := range []Hierarchy{DefaultStrongARM(), DefaultXScale()} {
		if h.I == nil || h.D == nil {
			t.Fatal("nil cache in default hierarchy")
		}
		if h.I.Config().HitLatency != 1 {
			t.Fatal("unexpected hit latency")
		}
	}
}

// Property: a cache never reports a latency other than hit or miss latency,
// and an immediate re-access of the same address always hits.
func TestCacheLatencyProperty(t *testing.T) {
	c := MustCache(CacheConfig{Name: "t", Sets: 8, Ways: 2, LineBytes: 32, HitLatency: 2, MissLatency: 20})
	err := quick.Check(func(addr uint32) bool {
		l1 := c.Access(addr)
		if l1 != 2 && l1 != 20 {
			return false
		}
		return c.Access(addr) == 2
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}
