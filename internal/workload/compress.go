package workload

import "fmt"

// compressSource is the SPEC95 129.compress kernel: LZW compression with an
// open-addressed hash table (hash, probe, secondary displacement, table
// reset when full) over skewed pseudo-text, which is where compress spends
// its time. Emits the accumulated code stream hash and the code count.
func compressSource(scale int) string {
	input := 3072 * scale
	return fmt.Sprintf(`
; compress kernel (SPEC95 129.compress) — LZW over %[1]d bytes of pseudo-text
;
; table: 1024 entries, key[i] at htab, code[i] at ctab. key -1 = empty.
; register map in the main loop:
;   r4 = input ptr  r5 = remaining  r6 = ent  r7 = next free code
;   r8 = out hash   r9 = code count r10 = htab  r11 = ctab
_start:
	; synthesize skewed text: 16-symbol alphabet indexed by LCG high bits
	ldr r0, =input
	ldr r1, =%[1]d
	ldr r2, =0xfeedbeef
	ldr r3, =1664525
	ldr r12, =1013904223
	ldr r6, =alphabet
gen:
	mla r2, r2, r3, r12
	mov r5, r2, lsr #28        ; 0..15
	ldrb r5, [r6, r5]
	strb r5, [r0], #1
	subs r1, r1, #1
	bne gen

	bl clear_table

	ldr r4, =input
	ldr r5, =%[1]d
	ldr r10, =htab
	ldr r11, =ctab
	mov r8, #0
	mov r9, #0
	ldr r7, =256               ; first multi-char code
	ldrb r6, [r4], #1          ; ent = first symbol
	sub r5, r5, #1
main_loop:
	ldrb r0, [r4], #1          ; c
	; fcode = (c << 16) | ent
	orr r1, r6, r0, lsl #16
	; h = (fcode ^ (fcode >> 9) ^ (fcode >> 16)) & 1023
	eor r2, r1, r1, lsr #9
	eor r2, r2, r1, lsr #16
	ldr r3, =1023
	and r2, r2, r3
probe:
	ldr r12, [r10, r2, lsl #2] ; key[h]
	cmn r12, #1                ; empty? (key == -1)
	beq miss
	cmp r12, r1
	beq hit
	add r2, r2, #1             ; linear displacement
	and r2, r2, r3
	b probe
hit:
	ldr r6, [r11, r2, lsl #2]  ; ent = code[h]
	b next
miss:
	; emit ent: out = out*31 + ent ; count++
	mov r12, r8, lsl #5
	sub r8, r12, r8
	add r8, r8, r6
	add r9, r9, #1
	; insert fcode -> nextcode
	str r1, [r10, r2, lsl #2]
	str r7, [r11, r2, lsl #2]
	add r7, r7, #1
	mov r6, r0                 ; ent = c
	; table full? reset like compress does (block compress mode)
	ldr r12, =1000
	cmp r7, r12
	blge reset_table
next:
	subs r5, r5, #1
	bne main_loop

	; emit final ent
	mov r12, r8, lsl #5
	sub r8, r12, r8
	add r8, r8, r6
	add r9, r9, #1

	mov r0, r8
	swi #1
	mov r0, r9
	swi #1
	mov r0, #0
	swi #0

; ---- helpers -------------------------------------------------------------
reset_table:
	push {r0-r3, lr}
	bl clear_table
	ldr r7, =256
	pop {r0-r3, pc}

clear_table:
	ldr r0, =htab
	ldr r1, =htab+4096
	mvn r2, #0
	mvn r3, #0
clear_loop:
	stmia r0!, {r2, r3}
	cmp r0, r1
	blo clear_loop
	mov pc, lr
	.ltorg
	.align
alphabet:
	.asciz "etaoin shrdlucm"
	.align
htab:
	.space 4096
ctab:
	.space 4096
input:
	.space %[1]d
`, input)
}
