package pipe5

import "rcpn/internal/obsv"

// Observability for the hand-written baseline. The four pipeline latches
// are the profiled stages; each stage function accounts exactly one slot
// for the latch it drains every cycle (the return paths map one-to-one
// onto the stall taxonomy), so the Occupied + stalls == cycles partition
// holds by construction. Sim implements obsv.Instrumentable.

// Profiled stage indices: the latch each stage function drains.
const (
	stIFID = iota // fq: fetch latch, drained by ID
	stIDEX        // dx: issue latch, drained by EX
	stEXME        // mx: execute latch, drained by MEM
	stMEWB        // wx: memory latch, drained by WB
)

var stageNames = []string{"IF/ID", "ID/EX", "EX/MEM", "MEM/WB"}

// Trace operation indices (Tracer.Ops).
const (
	opIssue = iota
	opExecute
	opMem
	opWriteback
	opLSMStep
)

var opNames = []string{"issue", "execute", "mem", "writeback", "lsm.step"}

// AttachTrace routes slot movements between the latches into tr. Must be
// called before the first cycle.
func (s *Sim) AttachTrace(tr *obsv.Tracer) {
	tr.Locs = append([]string(nil), stageNames...)
	tr.Ops = append([]string(nil), opNames...)
	s.tr = tr
}

// EnableProfile turns on per-cycle stall attribution over the four
// latches and returns the live profile. Must be called before the first
// cycle; calling it again returns the same profile.
func (s *Sim) EnableProfile() *obsv.StallProfile {
	if s.prof == nil {
		s.prof = obsv.NewStallProfile(stageNames...)
	}
	return s.prof
}

// Profile returns the attached stall profile, or nil.
func (s *Sim) Profile() *obsv.StallProfile { return s.prof }

func (s *Sim) profAdvance(st int) {
	if s.prof != nil {
		s.prof.Advance(st)
	}
}

func (s *Sim) profStall(st int, k obsv.StallKind) {
	if s.prof != nil {
		s.prof.Stall(st, k)
	}
}
