package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"rcpn/internal/batch"
)

// orderStepper finishes instantly and records its tag in a shared slice, so
// a test can observe the exact order the worker executed its backlog.
type orderStepper struct {
	tag   int
	mu    *sync.Mutex
	order *[]int
	pos   int64
}

func (o *orderStepper) Pos() int64                { return o.pos }
func (o *orderStepper) Progress() (int64, uint64) { return o.pos, uint64(o.pos) }
func (o *orderStepper) StepTo(limit int64) (bool, error) {
	o.mu.Lock()
	*o.order = append(*o.order, o.tag)
	o.mu.Unlock()
	o.pos = limit
	return true, nil
}

// submitHdr posts a spec with extra headers and returns the decoded 202.
func submitHdr(t *testing.T, url, body string, hdr map[string]string) submitResponse {
	t.Helper()
	code, _, data := postHdr(t, url, body, hdr)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", code, data)
	}
	var r submitResponse
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("bad submit response %q: %v", data, err)
	}
	return r
}

// TestPrioritySaturation: with the single worker parked and the low-priority
// level filled to capacity, a high-priority job is still admitted, sits
// alone in its own queue level — with the depth metrics agreeing exactly
// with the pool's internal accounting — and once the worker frees up it runs
// before every job in the low-priority backlog. A full bulk backlog must
// never starve interactive work.
func TestPrioritySaturation(t *testing.T) {
	const depth = 4
	release := make(chan struct{})
	var mu sync.Mutex
	var order []int
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: depth})
	s.buildOverride = func(spec *JobSpec) (batch.Stepper, error) {
		if spec.Scale == 1 {
			return &blockingStepper{release: release}, nil
		}
		return &orderStepper{tag: spec.Scale, mu: &mu, order: &order}, nil
	}

	blocker := submit(t, hs.URL, specN(1)) // claims the only worker
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, hs.URL, `rcpn_jobs{state="running"}`) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never claimed the worker")
		}
		time.Sleep(time.Millisecond)
	}

	// Saturate the low-priority level.
	low := map[string]string{"X-Priority": "low"}
	lows := make([]submitResponse, 0, depth)
	for i := 0; i < depth; i++ {
		lows = append(lows, submitHdr(t, hs.URL, specN(10+i), low))
	}
	if code, _, data := postHdr(t, hs.URL, specN(10+depth), low); code != http.StatusTooManyRequests {
		t.Fatalf("low submit past capacity = %d, want 429: %s", code, data)
	}
	if got := metric(t, hs.URL, "rcpn_rejected_queue_full_total"); got != 1 {
		t.Fatalf("rejected_queue_full_total = %v, want 1", got)
	}

	// The full bulk backlog must not block high-priority admission.
	high := submitHdr(t, hs.URL, specN(50), nil)

	// Per-level depth metrics must match the queue contents exactly — both
	// the counts this test arranged and the pool's own accounting.
	for _, check := range []struct {
		series string
		pool   int
		want   float64
	}{
		{`rcpn_queue_depth_by_priority{priority="high"}`, s.pool.DepthPri(batch.PriHigh), 1},
		{`rcpn_queue_depth_by_priority{priority="low"}`, s.pool.DepthPri(batch.PriLow), float64(depth)},
	} {
		got := metric(t, hs.URL, check.series)
		if got != check.want {
			t.Fatalf("%s = %v, want %v", check.series, got, check.want)
		}
		if float64(check.pool) != got {
			t.Fatalf("%s = %v but pool reports %d", check.series, got, check.pool)
		}
	}

	close(release)
	waitState(t, hs.URL, blocker.ID)
	waitState(t, hs.URL, high.ID)
	for _, r := range lows {
		waitState(t, hs.URL, r.ID)
	}

	mu.Lock()
	got := append([]int(nil), order...)
	mu.Unlock()
	if len(got) != depth+1 {
		t.Fatalf("executed %d queued jobs, want %d: %v", len(got), depth+1, got)
	}
	if got[0] != 50 {
		t.Fatalf("first job off the queue was scale %d, want the high-priority 50: %v", got[0], got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != 10+i-1 {
			t.Fatalf("low backlog drained out of FIFO order: %v", got)
		}
	}

	// Drained: both levels back to empty on the metrics page.
	for _, series := range []string{
		`rcpn_queue_depth_by_priority{priority="high"}`,
		`rcpn_queue_depth_by_priority{priority="low"}`,
	} {
		if got := metric(t, hs.URL, series); got != 0 {
			t.Fatalf("after drain %s = %v, want 0", series, got)
		}
	}
}

// TestQuotaClockSkew drives the token bucket through clock steps, forwards
// and backwards. A backward step (NTP slew, VM migration) must not drain the
// bucket or inflate the advertised wait — the bucket simply earns nothing
// until the clock passes its last stamp again.
func TestQuotaClockSkew(t *testing.T) {
	base := time.Unix(10_000, 0)
	type step struct {
		at   time.Duration // offset from base; negative = clock stepped back
		ok   bool
		wait time.Duration // expected Retry-After when refused
	}
	cases := []struct {
		name  string
		rate  float64
		burst int
		steps []step
	}{
		{
			name: "backward step does not drain",
			rate: 1, burst: 2,
			steps: []step{
				{0, true, 0}, {0, true, 0}, // spend the burst
				// An hour of skew: still one token away, not 3601s away.
				{-time.Hour, false, time.Second},
				// Clock back at base: nothing was earned meanwhile.
				{0, false, time.Second},
				// One second past the pre-skew stamp: one whole token.
				{time.Second, true, 0},
				{time.Second, false, time.Second},
			},
		},
		{
			name: "refill resumes from the pre-skew stamp",
			rate: 0.5, burst: 1,
			steps: []step{
				{0, true, 0},
				{-10 * time.Second, false, 2 * time.Second},
				{2 * time.Second, true, 0}, // 2s past base = one token at 0.5/s
			},
		},
		{
			name: "forward-only control",
			rate: 1, burst: 1,
			steps: []step{
				{0, true, 0},
				{0, false, time.Second},
				{time.Second, true, 0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := newQuotas(tc.rate, tc.burst)
			for i, st := range tc.steps {
				ok, wait := q.allow("t", base.Add(st.at))
				if ok != st.ok {
					t.Fatalf("step %d at %v: ok=%v, want %v (wait %v)", i, st.at, ok, st.ok, wait)
				}
				if !ok && wait != st.wait {
					t.Fatalf("step %d at %v: wait=%v, want %v", i, st.at, wait, st.wait)
				}
			}
		})
	}
}

// TestQuotaPruneAtTenantCap exercises the maxTenants prune path: at the cap
// with every bucket drained nothing is evicted (draining tenants are exactly
// the state the limiter holds), once the buckets refill the next insertion
// collapses the map, and an evicted tenant returns to a brand-new full
// bucket — forgetting a refilled bucket is lossless and leaks nothing.
func TestQuotaPruneAtTenantCap(t *testing.T) {
	q := newQuotas(1000, 1)
	t0 := time.Unix(50_000, 0)
	for i := 0; i < maxTenants; i++ {
		if ok, _ := q.allow(fmt.Sprintf("tenant-%d", i), t0); !ok {
			t.Fatalf("tenant %d refused its first token", i)
		}
	}
	if len(q.b) != maxTenants {
		t.Fatalf("bucket map holds %d tenants, want %d", len(q.b), maxTenants)
	}

	// At the cap, all buckets freshly drained: the prune runs but drops
	// nothing, and the newcomer is still admitted.
	if ok, _ := q.allow("straggler", t0); !ok {
		t.Fatal("straggler refused at the cap")
	}
	if len(q.b) != maxTenants+1 {
		t.Fatalf("bucket map holds %d tenants after straggler, want %d", len(q.b), maxTenants+1)
	}

	// 10ms later every bucket has refilled (1000 tokens/s, burst 1): the
	// next new tenant triggers the prune and the map collapses to just it.
	t1 := t0.Add(10 * time.Millisecond)
	if ok, _ := q.allow("fresh", t1); !ok {
		t.Fatal("fresh tenant refused")
	}
	if len(q.b) != 1 {
		t.Fatalf("bucket map holds %d tenants after prune, want 1", len(q.b))
	}

	// An evicted tenant is re-admitted with a full bucket that enforces the
	// same burst as any new tenant's.
	if ok, _ := q.allow("tenant-5", t1); !ok {
		t.Fatal("evicted tenant refused on return")
	}
	if ok, _ := q.allow("tenant-5", t1); ok {
		t.Fatal("re-admitted bucket exceeded burst")
	}
	if len(q.b) != 2 {
		t.Fatalf("bucket map holds %d tenants at the end, want 2 (no leak)", len(q.b))
	}
}
