// Package faultinj is a deterministic fault-injection harness for the
// durability layer. Production code declares named fault sites — points
// where an I/O write, a checkpoint capture or a worker can fail — and calls
// Hit at each one; an Injector armed with rules decides, purely as a
// function of the hit sequence, whether that site fails now. Because the
// decision depends only on how many times each site was hit (or on a
// monotonic value the caller passes, such as the retired-instruction
// count), a test that arms the same plan against the same workload sees the
// same fault at the same place every run: recovery paths are exercised by
// construction, not by luck.
//
// A nil *Injector is a valid no-op, so production wiring passes nil and
// pays one pointer test per site.
package faultinj

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Canonical site names used across the repository. Sites are open-ended —
// any string works — but the durability layer sticks to this catalog so
// plans are portable across tests and the CLI.
const (
	// SiteJournalAppend is hit before each job-journal frame write.
	SiteJournalAppend = "journal.append"
	// SiteResultWrite is hit before each durable result-file write.
	SiteResultWrite = "result.write"
	// SiteCkptWrite is hit before each durable checkpoint-file write.
	SiteCkptWrite = "ckpt.write"
	// SiteCkptRead is hit before each checkpoint-file read.
	SiteCkptRead = "ckpt.read"
	// SiteWorkerPanic is hit at every drained checkpoint boundary of a
	// running job, with the retired-instruction count as the value; a panic
	// rule here simulates a worker crash at retirement N.
	SiteWorkerPanic = "worker.panic"
	// SiteTparSegment is hit at the start of every time-parallel segment
	// execution (speculative, re-run and reassigned alike), with the
	// segment's starting retired-instruction count as the value. A panic
	// rule here kills one segment worker mid-sweep; internal/tpar recovers
	// by reassigning the segment to another worker, and the stitched result
	// must stay byte-identical.
	SiteTparSegment = "tpar.segment"
	// SiteRPCDrop is hit before every RCPNRPC1 frame send on a
	// coordinator↔worker connection. An error rule drops the frame on the
	// floor (simulated loss — the stream stays framed, the peer just never
	// sees the message), a corrupt rule flips a payload byte after the CRC
	// is computed (the receiver detects the mismatch and tears the
	// connection down), and a delay rule stalls the send. All three are how
	// tests prove that frame loss, corruption and latency never change
	// result bytes: the shard layer times out, evicts and reassigns.
	SiteRPCDrop = "rpc.drop"
)

// Action is what a fired rule does.
type Action int

const (
	// ActError makes Hit return a *Fault error.
	ActError Action = iota
	// ActPanic makes Hit panic (simulating a worker crash; the batch
	// layer's recover turns it into a Panicked result).
	ActPanic
	// ActDelay makes Hit sleep for Rule.Delay and then succeed
	// (simulating slow I/O without failing it).
	ActDelay
	// ActCorrupt makes Hit return a *Fault whose Act is ActCorrupt. Only
	// sites that know how to damage their payload honor it (the RPC frame
	// writer flips a byte after computing the CRC); everywhere else it
	// behaves exactly like ActError.
	ActCorrupt
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	case ActCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Rule arms one fault. The trigger is OnHit (fire on the Nth Hit of the
// site, 1-based), or AtValue (fire on the first Hit whose value reaches
// AtValue); with neither set the rule fires on every hit. Times bounds how
// often the rule fires before disarming (0 means once, -1 means forever).
type Rule struct {
	Site    string
	OnHit   int
	AtValue uint64
	Times   int
	Action  Action
	Msg     string
	Delay   time.Duration
}

// Fault is the error an ActError or ActCorrupt rule injects. Act tells a
// site that distinguishes the two (the RPC frame writer) which one fired;
// callers that ignore it see both as plain injected errors.
type Fault struct {
	Site string
	Msg  string
	Act  Action
}

func (f *Fault) Error() string {
	if f.Msg != "" {
		return fmt.Sprintf("faultinj: %s: %s", f.Site, f.Msg)
	}
	return fmt.Sprintf("faultinj: injected fault at %s", f.Site)
}

type armedRule struct {
	Rule
	left int // firings remaining; -1 = unlimited
}

// Injector holds armed rules and per-site hit counters. Safe for
// concurrent use; the zero value and the nil pointer are inert.
type Injector struct {
	mu    sync.Mutex
	rules []*armedRule
	hits  map[string]int
	fired []string
	rng   *rand.Rand
}

// New builds an injector with the given rules armed.
func New(rules ...Rule) *Injector {
	in := &Injector{hits: make(map[string]int)}
	for _, r := range rules {
		in.Arm(r)
	}
	return in
}

// Arm adds a rule.
func (in *Injector) Arm(r Rule) {
	left := r.Times
	if left == 0 {
		left = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.hits == nil {
		in.hits = make(map[string]int)
	}
	in.rules = append(in.rules, &armedRule{Rule: r, left: left})
}

// Hit reports site execution number len+1 with an optional monotonic value
// (pass 0 when the site has no natural value). It returns the injected
// error, panics, or sleeps according to the first matching armed rule, and
// returns nil when nothing fires. Nil-receiver safe.
func (in *Injector) Hit(site string, value uint64) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if in.hits == nil {
		in.hits = make(map[string]int)
	}
	in.hits[site]++
	n := in.hits[site]
	var match *armedRule
	for _, r := range in.rules {
		if r.Site != site || r.left == 0 {
			continue
		}
		if r.OnHit > 0 && n != r.OnHit {
			continue
		}
		if r.AtValue > 0 && value < r.AtValue {
			continue
		}
		match = r
		break
	}
	if match == nil {
		in.mu.Unlock()
		return nil
	}
	if match.left > 0 {
		match.left--
	}
	in.fired = append(in.fired, fmt.Sprintf("%s#%d:%s", site, n, match.Action))
	act, msg, delay := match.Action, match.Msg, match.Delay
	in.mu.Unlock()

	switch act {
	case ActPanic:
		if msg == "" {
			msg = "injected worker crash"
		}
		panic(&Fault{Site: site, Msg: msg})
	case ActDelay:
		time.Sleep(delay)
		return nil
	default: // ActError and ActCorrupt differ only in the Act the caller sees
		return &Fault{Site: site, Msg: msg, Act: act}
	}
}

// Rand63n draws a pseudo-random int64 in [0, n). An armed injector answers
// from its own seeded stream (default seed 1; Seeded carries its seed
// through), so anything randomized next to fault injection — retry jitter,
// backoff spreads — replays identically in a test sweep. A nil injector
// falls back to the global source: production jitter stays genuinely
// random.
func (in *Injector) Rand63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if in == nil {
		return rand.Int63n(n)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng == nil {
		in.rng = rand.New(rand.NewSource(1))
	}
	return in.rng.Int63n(n)
}

// Hits returns how many times site has been hit so far.
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fired returns the log of fired rules, in firing order, as
// "site#hit:action" strings.
func (in *Injector) Fired() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.fired...)
}

// Parse builds an injector from a comma-separated plan string, one rule per
// element:
//
//	site[#N][@V][*T]:action[=arg]
//
// #N fires on the Nth hit (default: first match), @V fires once the hit
// value reaches V, *T allows T firings (-1 = unlimited). action is error,
// panic, corrupt or delay (delay requires arg as a Go duration; the others
// take an optional message). Examples:
//
//	journal.append#2:error
//	worker.panic@50000:panic=crash at 50k retirements
//	ckpt.write*-1:delay=5ms
//	rpc.drop#3:corrupt
func Parse(spec string) (*Injector, error) {
	in := New()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, action, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faultinj: rule %q: want site:action", part)
		}
		var r Rule
		if s, times, ok := strings.Cut(head, "*"); ok {
			t, err := strconv.Atoi(times)
			if err != nil || t == 0 || t < -1 {
				return nil, fmt.Errorf("faultinj: rule %q: bad times %q", part, times)
			}
			r.Times = t
			head = s
		}
		if s, v, ok := strings.Cut(head, "@"); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("faultinj: rule %q: bad value %q", part, v)
			}
			r.AtValue = n
			head = s
		}
		if s, v, ok := strings.Cut(head, "#"); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinj: rule %q: bad hit count %q", part, v)
			}
			r.OnHit = n
			head = s
		}
		r.Site = strings.TrimSpace(head)
		if r.Site == "" {
			return nil, fmt.Errorf("faultinj: rule %q: empty site", part)
		}
		verb, arg, _ := strings.Cut(action, "=")
		switch verb {
		case "error":
			r.Action, r.Msg = ActError, arg
		case "panic":
			r.Action, r.Msg = ActPanic, arg
		case "corrupt":
			r.Action, r.Msg = ActCorrupt, arg
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinj: rule %q: delay needs a duration arg", part)
			}
			r.Action, r.Delay = ActDelay, d
		default:
			return nil, fmt.Errorf("faultinj: rule %q: unknown action %q", part, verb)
		}
		in.Arm(r)
	}
	return in, nil
}

// Seeded derives a deterministic random plan: n ActError rules spread over
// the given sites with hit counts in [1, maxHit]. The same (seed, sites, n,
// maxHit) always produces the same plan, so a test sweep can cover many
// fault placements while every placement stays reproducible.
func Seeded(seed int64, sites []string, n, maxHit int) *Injector {
	sites = append([]string(nil), sites...)
	sort.Strings(sites)
	rng := rand.New(rand.NewSource(seed))
	in := New()
	in.rng = rng // Rand63n continues the same seeded stream
	if len(sites) == 0 || n <= 0 {
		return in
	}
	if maxHit < 1 {
		maxHit = 1
	}
	for i := 0; i < n; i++ {
		in.Arm(Rule{
			Site:   sites[rng.Intn(len(sites))],
			OnHit:  1 + rng.Intn(maxHit),
			Action: ActError,
			Msg:    fmt.Sprintf("seeded fault %d (seed %d)", i, seed),
		})
	}
	return in
}
