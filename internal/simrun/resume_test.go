package simrun

import (
	"context"
	"testing"

	"rcpn/internal/batch"
	"rcpn/internal/ckpt"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
	"rcpn/internal/workload"
)

// TestResumeIdenticalProgress is the engine-level half of the crash-safety
// acceptance criterion: for every engine, a checkpointed DriveCkpt run that
// is cut short and then resumed — fresh simulator, Restore from the
// byte-round-tripped checkpoint, Resumed wrapper carrying the donor's cycle
// count — finishes with exactly the cycle and instruction counts of the
// uninterrupted run. Since the service's rcpn-batch/v1 payload is a
// deterministic function of those counts (wall-clock fields omitted),
// equality here is byte-identity of results there.
func TestResumeIdenticalProgress(t *testing.T) {
	w := workload.ByName("crc")
	if w == nil {
		t.Fatal("crc workload missing")
	}
	builders := []struct {
		name  string
		build func() batch.CheckpointStepper
	}{
		{"strongarm", func() batch.CheckpointStepper {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			return Machine(machine.NewStrongARM(p, machine.Config{})).(batch.CheckpointStepper)
		}},
		{"pipe5", func() batch.CheckpointStepper {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			return Pipe5(pipe5.New(p, pipe5.Config{})).(batch.CheckpointStepper)
		}},
		{"ssim", func() batch.CheckpointStepper {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			return SSim(ssim.New(p, ssim.Config{})).(batch.CheckpointStepper)
		}},
		{"functional", func() batch.CheckpointStepper {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			return Functional(machine.NewFunctional(p, machine.Config{})).(batch.CheckpointStepper)
		}},
		{"iss", func() batch.CheckpointStepper {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			return ISS(iss.New(p, 0)).(batch.CheckpointStepper)
		}},
	}
	const interval = 2000
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			// Uninterrupted reference run, recording every checkpoint.
			type saved struct {
				instret uint64
				cycles  int64
				raw     []byte
			}
			var cks []saved
			ref := b.build()
			if err := batch.DriveCkpt(context.Background(), ref, 0, 4096, interval,
				func(i uint64, c int64, ck *ckpt.Checkpoint) error {
					raw, err := ck.Bytes()
					if err != nil {
						return err
					}
					cks = append(cks, saved{i, c, raw})
					return nil
				}, nil); err != nil {
				t.Fatal(err)
			}
			wantC, wantI := ref.Progress()
			if len(cks) < 2 {
				t.Fatalf("only %d checkpoints; workload too short for interval %d", len(cks), interval)
			}
			// Resume from the first and the last checkpoint — the crash could
			// land anywhere, and every boundary must retrace identically.
			for _, k := range []int{0, len(cks) - 1} {
				sv := cks[k]
				ck, err := ckpt.FromBytes(sv.raw)
				if err != nil {
					t.Fatal(err)
				}
				fresh := b.build()
				if err := fresh.Restore(ck); err != nil {
					t.Fatal(err)
				}
				st := batch.Resumed(fresh, sv.cycles)
				if err := batch.DriveCkpt(context.Background(), st, 0, 4096, interval, nil, nil); err != nil {
					t.Fatal(err)
				}
				gotC, gotI := st.Progress()
				if gotC != wantC || gotI != wantI {
					t.Fatalf("resume from checkpoint %d (instret %d): final (%d cycles, %d instr), uninterrupted (%d, %d)",
						k, sv.instret, gotC, gotI, wantC, wantI)
				}
			}
		})
	}
}

// TestResumeChunkIndependent: for a cycle engine, the checkpoint schedule of
// DriveCkpt does not move when the chunk size changes — the property that
// lets a resumed run (whose first chunk boundary lands elsewhere) retrace
// the donor's boundaries exactly.
func TestResumeChunkIndependent(t *testing.T) {
	w := workload.ByName("crc")
	run := func(chunk int64) (bounds []uint64, cycles []int64) {
		p, err := w.Program(1)
		if err != nil {
			t.Fatal(err)
		}
		st := Pipe5(pipe5.New(p, pipe5.Config{})).(batch.CheckpointStepper)
		if err := batch.DriveCkpt(context.Background(), st, 0, chunk, 2000,
			func(i uint64, c int64, _ *ckpt.Checkpoint) error {
				bounds = append(bounds, i)
				cycles = append(cycles, c)
				return nil
			}, nil); err != nil {
			t.Fatal(err)
		}
		return bounds, cycles
	}
	refB, refC := run(1 << 18)
	for _, chunk := range []int64{97, 4096} {
		b, c := run(chunk)
		if len(b) != len(refB) {
			t.Fatalf("chunk %d: %d boundaries vs %d", chunk, len(b), len(refB))
		}
		for i := range b {
			if b[i] != refB[i] || c[i] != refC[i] {
				t.Fatalf("chunk %d: boundary %d at (instret %d, cycle %d), reference (%d, %d)",
					chunk, i, b[i], c[i], refB[i], refC[i])
			}
		}
	}
}
