package arm_test

// Disassemble → reassemble round-trip, driven by the fuzzer's generator:
// for every instruction word of every generated program, feeding its
// disassembly back through the assembler must reproduce the word exactly.
// The generator is the right driver because it exercises the encodable
// surface the disassembler has to render faithfully — all shifter operands,
// long multiplies, signed/halfword transfers, block transfers with
// writeback, conditional execution — rather than the handful of mnemonics
// the workload kernels use. (The package-external import is why this test
// lives in arm_test: armgen depends on arm.)

import (
	"fmt"
	"strings"
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/armgen"
)

func TestDisasmReassembleRoundTrip(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 5
	}
	checked := 0
	for seed := 1; seed <= seeds; seed++ {
		p, err := armgen.Generate(armgen.Config{Seed: uint64(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, w := range p.Image.Words() {
			addr := p.Image.Base + uint32(4*i)
			ins := arm.Decode(w, addr)
			if ins.Undefined() {
				t.Fatalf("seed %d: generator emitted undefined word %#08x at %#x", seed, w, addr)
			}
			text := arm.Disassemble(&ins)
			// Assemble the single line at the word's own address so
			// PC-relative branch offsets survive the round trip.
			src := fmt.Sprintf("_start:\n\t%s\n", text)
			rp, err := arm.Assemble(src, addr)
			if err != nil {
				t.Fatalf("seed %d: %#08x at %#x disassembles to unparseable %q: %v",
					seed, w, addr, text, err)
			}
			words := rp.Words()
			if len(words) != 1 {
				t.Fatalf("seed %d: %q assembled to %d words", seed, text, len(words))
			}
			if words[0] != w {
				t.Fatalf("seed %d: round trip broke at %#x:\n  original %#08x\n  disasm   %q\n  reasm    %#08x",
					seed, addr, w, text, words[0])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no instructions checked")
	}
	t.Logf("%d instruction words round-tripped", checked)
}

// TestDisasmReassembleBranchLabels covers the one construct the per-word
// round trip can't: branches disassemble to absolute targets, which the
// assembler accepts as literal addresses. A label-written branch and its
// disassembled absolute form must encode identically.
func TestDisasmReassembleBranchLabels(t *testing.T) {
	src := "_start:\n\tb done\n\tmov r0, #1\ndone:\n\tswi #0\n"
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Words()[0]
	ins := arm.Decode(w, p.Base)
	text := arm.Disassemble(&ins)
	if !strings.HasPrefix(text, "b") {
		t.Fatalf("expected a branch, got %q", text)
	}
	rp, err := arm.Assemble("_start:\n\t"+text+"\n", p.Base)
	if err != nil {
		t.Fatalf("disassembled branch %q does not reassemble: %v", text, err)
	}
	if got := rp.Words()[0]; got != w {
		t.Fatalf("branch round trip: %#08x -> %q -> %#08x", w, text, got)
	}
}
