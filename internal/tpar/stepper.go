package tpar

import (
	"sync"

	"rcpn/internal/arm"
)

// Stepper adapts a time-parallel run to batch.Stepper, so everything
// built on batch.Drive — internal/serve progress bookkeeping, SSE rate
// streams, durable result plumbing — works unchanged on a parallel job.
// The run starts lazily on the first Pos/StepTo/Progress call and
// executes on its own goroutine; StepTo blocks until the run's cumulative
// progress reaches the limit or the run finishes. Position is cycles for
// detailed engines and retired instructions for functional ones (which
// report zero cycles), matching the convention of the serial steppers.
//
// Cumulative progress counts re-run and crashed-then-reassigned segment
// work too, so it can exceed — never lag — the stitched totals; at
// completion Progress snaps to the stitched result, so the final numbers
// a driver records are the deterministic ones.
type Stepper struct {
	p    *arm.Program
	b    Build
	opt  Options
	mu   sync.Mutex
	cond *sync.Cond

	started bool
	done    bool
	cycles  int64
	instret uint64
	res     *Result
	err     error
}

// NewStepper prepares a lazy time-parallel run. The returned stepper owns
// opt.Progress: callers receive progress through batch.Drive instead.
func NewStepper(p *arm.Program, b Build, opt Options) *Stepper {
	s := &Stepper{p: p, b: b, opt: opt}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// start launches the run goroutine once. Caller holds s.mu.
func (s *Stepper) start() {
	if s.started {
		return
	}
	s.started = true
	opt := s.opt
	opt.Progress = func(c int64, i uint64) {
		s.mu.Lock()
		// Concurrent workers race to report; keep the counters monotonic.
		if c > s.cycles {
			s.cycles = c
		}
		if i > s.instret {
			s.instret = i
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}
	go func() {
		res, err := Run(s.p, s.b, opt)
		s.mu.Lock()
		s.done = true
		s.res, s.err = res, err
		if res != nil {
			s.cycles, s.instret = res.Cycles, res.Instret
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}()
}

func (s *Stepper) pos() int64 {
	if s.cycles > 0 {
		return s.cycles
	}
	return int64(s.instret)
}

// Pos implements batch.Stepper.
func (s *Stepper) Pos() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.start()
	return s.pos()
}

// Progress implements batch.Stepper.
func (s *Stepper) Progress() (int64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.start()
	return s.cycles, s.instret
}

// StepTo implements batch.Stepper: it blocks until cumulative progress
// reaches limit or the run completes. Cancellation flows through
// opt.Context — the run aborts and StepTo returns its error.
func (s *Stepper) StepTo(limit int64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.start()
	for !s.done && s.pos() < limit {
		s.cond.Wait()
	}
	if s.done {
		return s.err == nil, s.err
	}
	return false, nil
}

// Result blocks until the run completes and returns the stitched result.
func (s *Stepper) Result() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.start()
	for !s.done {
		s.cond.Wait()
	}
	return s.res, s.err
}
