package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"rcpn/internal/batch"
	"rcpn/internal/faultinj"
	"rcpn/internal/rpc"
	"rcpn/internal/serve"
	"rcpn/internal/store"
)

// WorkerConfig sizes one worker process. The execution knobs (JobTimeout,
// MaxCycles, Chunk) must match the coordinator-side serve.Config for
// byte-identical failover between remote and local execution — the
// defaults on both sides already agree.
type WorkerConfig struct {
	// Node names this worker on the ring (default host:pid).
	Node string
	// Slots is the concurrent job capacity (default GOMAXPROCS).
	Slots int
	// JobTimeout is the per-job deadline (default 5m, the serve default).
	JobTimeout time.Duration
	// MaxCycles caps specs that leave max_cycles unset (default 1<<32,
	// the serve default).
	MaxCycles int64
	// Chunk is the Drive burst length (default batch.DefaultChunk).
	Chunk int64
	// Heartbeat is the ping interval; the connection is considered dead
	// after Heartbeat×HeartbeatMiss of silence (defaults 2s × 3, matching
	// the coordinator).
	Heartbeat     time.Duration
	HeartbeatMiss int
	// Store, when set, is the shared result layer: finished results are
	// written by content address, and a submitted job whose result is
	// already present — orphaned by a worker that died between computing
	// and answering — is adopted instead of re-executed.
	Store *store.Store
	// Fault arms the rpc.drop site on worker→coordinator frames and the
	// executor's sites. Nil is inert.
	Fault *faultinj.Injector
	// Logf receives connection and job log lines (default: stderr).
	Logf func(format string, args ...any)
	// Build replaces JobSpec.Build (tests).
	Build func(*serve.JobSpec) (batch.Stepper, error)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Node == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.Node = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if c.Slots <= 0 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 1 << 32
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 2 * time.Second
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 3
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return c
}

// Worker dials a coordinator, executes the jobs it is handed through the
// serve executor, and answers with worker-rendered result payloads. It
// holds no routing state and never retries a job on its own: retry policy
// lives entirely with the coordinator, which is what keeps policy out of
// the result bytes.
type Worker struct {
	cfg WorkerConfig

	// executed / adopted count jobs run locally vs adopted from the
	// shared store.
	executed atomic.Int64
	adopted  atomic.Int64
}

func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg.withDefaults()}
}

// Executed and Adopted expose the work counters.
func (w *Worker) Executed() int64 { return w.executed.Load() }
func (w *Worker) Adopted() int64  { return w.adopted.Load() }

// Run connects to the coordinator at addr and serves jobs until ctx is
// canceled, redialing with backoff whenever the connection dies. Crash-
// only: a lost connection abandons in-flight sends — the coordinator has
// already evicted us and reassigned the jobs.
func (w *Worker) Run(ctx context.Context, addr string) error {
	delay := 500 * time.Millisecond
	for {
		err := w.session(ctx, addr)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.cfg.Logf("shard: worker %s connection lost (%v); redialing in %v", w.cfg.Node, err, delay)
		if !sleepCtx(ctx, delay/2+time.Duration(w.cfg.Fault.Rand63n(int64(delay/2)+1))) {
			return ctx.Err()
		}
		if delay < 5*time.Second {
			delay *= 2
		}
	}
}

// session is one connection lifetime: dial, handshake, serve submits.
func (w *Worker) session(ctx context.Context, addr string) error {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var d net.Dialer
	nc, err := d.DialContext(sctx, "tcp", addr)
	if err != nil {
		return err
	}
	conn := rpc.NewConn(nc, w.cfg.Fault)
	conn.WriteTimeout = 10 * time.Second
	defer conn.Close()
	if _, err := conn.Handshake(rpc.Hello{
		Version: rpc.Version,
		Node:    w.cfg.Node,
		Slots:   uint32(w.cfg.Slots),
	}, 10*time.Second); err != nil {
		return err
	}
	w.cfg.Logf("shard: worker %s connected to %s", w.cfg.Node, addr)

	// The pool mirrors the serve layer's: same worker isolation, same
	// per-job deadline, so a timeout or panic classifies identically
	// here and there. Canceling sctx turns queued work into fast
	// Canceled results so pool.Close cannot hang on a dead connection.
	pool := batch.NewPool(2*w.cfg.Slots, batch.Options{
		Workers: w.cfg.Slots,
		Timeout: w.cfg.JobTimeout,
		Context: sctx,
	})
	defer pool.Close()

	// Heartbeat loop. The coordinator's Pong replies keep our read
	// deadline fed, so both directions notice a dead peer within the
	// same window.
	go func() {
		t := time.NewTicker(w.cfg.Heartbeat)
		defer t.Stop()
		var seq uint64
		for {
			select {
			case <-sctx.Done():
				return
			case <-t.C:
				seq++
				if err := conn.Send(rpc.Ping{Seq: seq}); err != nil {
					return // the reader loop is about to fail too
				}
			}
		}
	}()

	conn.ReadTimeout = w.cfg.Heartbeat * time.Duration(w.cfg.HeartbeatMiss)
	for {
		m, err := conn.Recv()
		if err != nil {
			return err
		}
		switch m := m.(type) {
		case rpc.Pong:
			// Liveness was the Recv itself.
		case rpc.Submit:
			if err := w.accept(sctx, conn, m, pool); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unexpected %T from coordinator", m)
		}
	}
}

// accept admits one submitted job: adopt its result from the shared store
// if a previous life already computed it, otherwise queue it for
// execution. Only queue-level failures are returned (they poison the
// connection); job-level failures answer over the protocol.
func (w *Worker) accept(ctx context.Context, conn *rpc.Conn, m rpc.Submit, pool *batch.Pool) error {
	if w.cfg.Store != nil {
		if payload, err := w.cfg.Store.ReadResult(m.ID); err == nil {
			// Orphaned-result adoption: the bytes were rendered by the
			// same executor on a previous life of this store, so serving
			// them is equivalent to re-running the job — minus the work.
			w.adopted.Add(1)
			w.cfg.Logf("shard: worker %s adopting stored result for job %s", w.cfg.Node, short(m.ID))
			return conn.Send(rpc.Result{ID: m.ID, Payload: payload})
		} else if !errors.Is(err, fs.ErrNotExist) {
			w.cfg.Logf("shard: worker %s stored result for %s unreadable (%v); re-executing", w.cfg.Node, short(m.ID), err)
		}
	}
	spec, err := serve.ParseSpec(bytes.NewReader(m.Spec))
	if err != nil {
		return conn.Send(rpc.JobError{ID: m.ID, Msg: fmt.Sprintf("spec does not parse: %v", err)})
	}
	if got := spec.ID(); got != m.ID {
		return conn.Send(rpc.JobError{ID: m.ID, Msg: fmt.Sprintf("content address mismatch: spec hashes to %s", short(got))})
	}

	var trace []byte
	job := batch.Job{
		// Identical labels to serve.(*Server).enqueue — they are in the
		// rendered report, so they are part of byte-identity.
		Simulator: spec.Simulator,
		Workload:  spec.WorkloadLabel(),
		Config:    spec.ConfigLabel(),
		Run: func(jctx context.Context) (batch.Metrics, error) {
			w.executed.Add(1)
			metrics, tr, err := serve.ExecuteSpec(jctx, spec, serve.ExecOptions{
				MaxCycles: w.cfg.MaxCycles,
				Chunk:     w.cfg.Chunk,
				Fault:     w.cfg.Fault,
				Logf: func(format string, args ...any) {
					w.cfg.Logf("shard: worker %s "+format, append([]any{w.cfg.Node}, args...)...)
				},
				Progress: w.progressSender(conn, m.ID),
				Build:    w.cfg.Build,
			})
			trace = tr
			return metrics, err
		},
	}
	done := func(res batch.Result) {
		if res.TimedOut || res.Canceled || res.Panicked {
			// Wall-clock-dependent outcome: no deterministic bytes exist
			// for it. The coordinator owns the retry.
			conn.Send(rpc.JobError{ID: m.ID, Msg: res.Err, Transient: true}) //nolint:errcheck // conn death is handled by the reader loop
			return
		}
		payload, err := (&batch.Report{Results: []batch.Result{res}}).JSON(false)
		if err != nil { // cannot happen for plain data; mirror serve's fallback
			payload = []byte(fmt.Sprintf(`{"schema":%q,"jobs":[{"error":%q}]}`, batch.Schema, err))
		}
		if w.cfg.Store != nil && res.Err == "" {
			if werr := w.cfg.Store.WriteResult(m.ID, payload); werr != nil {
				w.cfg.Logf("shard: worker %s could not store result for %s: %v", w.cfg.Node, short(m.ID), werr)
			}
		}
		conn.Send(rpc.Result{ //nolint:errcheck // conn death is handled by the reader loop
			ID:      m.ID,
			Failed:  res.Err != "",
			Cycles:  res.Cycles,
			Instret: res.Instret,
			Payload: payload,
			Trace:   trace,
		})
	}
	if err := pool.TrySubmit(job, done); err != nil {
		// Slots and queue full: the coordinator should spill this job to
		// another worker rather than wait on us.
		return conn.Send(rpc.JobError{ID: m.ID, Msg: "worker at capacity", Transient: true})
	}
	return nil
}

// progressSender forwards chunk-boundary progress, throttled so a fast
// simulator does not flood the connection; the coordinator's idle clock
// only needs an occasional frame.
func (w *Worker) progressSender(conn *rpc.Conn, id string) func(cycles int64, instret uint64) {
	var lastNano atomic.Int64
	return func(cycles int64, instret uint64) {
		now := time.Now().UnixNano()
		last := lastNano.Load()
		if now-last < int64(50*time.Millisecond) || !lastNano.CompareAndSwap(last, now) {
			return
		}
		conn.Send(rpc.Progress{ID: id, Cycles: cycles, Instret: instret}) //nolint:errcheck // advisory
	}
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
