package machine

import (
	"fmt"

	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/core"
	"rcpn/internal/mem"
	"rcpn/internal/obsv"
)

// This file is the declarative model-description layer: a processor is
// written down as a Spec — stages, the shared front end, one route per
// operation class, bypass points — and Generate lowers it to the RCPN the
// engine executes. This is the paper's pitch made concrete: the description
// mirrors the pipeline block diagram, and the cycle-accurate simulator is
// *generated* from it. NewStrongARM9E below and the generated-StrongARM
// equivalence test show the layer producing working simulators.

// Role names the work performed when an instruction leaves a stage.
type Role uint8

// Stage-exit roles.
const (
	// RolePass moves the instruction along with no architected work
	// (fetch buffers, extra decode stages).
	RolePass Role = iota
	// RoleIssue reads source operands (with bypass) and reserves
	// destinations; multiplies acquire their data-dependent latency here.
	RoleIssue
	// RoleExecute computes results, resolves branches/PC writes, computes
	// effective addresses and acquires cache latencies.
	RoleExecute
	// RoleMem performs the functional memory access; block transfers stay
	// in the stage moving one register per cycle.
	RoleMem
	// RoleWriteback commits results to architected state (and performs
	// trap effects). The instruction retires afterwards.
	RoleWriteback
	// RoleMemWriteback fuses the memory access and the writeback into one
	// stage exit — the shape of a memory pipe that retires directly from
	// its last stage (XScale's DWB).
	RoleMemWriteback
)

var roleNames = [...]string{"pass", "issue", "execute", "mem", "wb", "memwb"}

func (r Role) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// StageSpec declares one pipeline storage element.
type StageSpec struct {
	Name     string
	Capacity int   // 0 -> 1
	Delay    int64 // residency delay; 0 -> 1
}

// Seg is one step of a route: the stage an instruction sits in and the role
// performed when it leaves.
type Seg struct {
	Stage string
	Exit  Role
}

// Spec is a declarative pipelined-processor description.
type Spec struct {
	Name   string
	Stages []StageSpec
	// FrontEnd lists the shared stages every instruction traverses, in
	// order; the first receives fetched tokens. Exits are RolePass except
	// that the *route* of each class begins at the last front-end stage.
	FrontEnd []string
	// Routes gives each operation class its back-end path, starting from
	// the last front-end stage. The final Seg's Exit must be RoleWriteback
	// (its destination is the virtual end place).
	Routes map[arm.Class][]Seg
	// Bypass names the stages whose resident results feed the forwarding
	// network (RegRef.CanReadIn states).
	Bypass []string
	// MACExtra adds fixed cycles to every multiply's issue latency (a
	// deeper multiplier pipeline, e.g. the XScale MAC).
	MACExtra int64
}

// Generate lowers a Spec to a runnable Machine. The produced net has one
// place per declared stage and one transition per route segment, with the
// operation-class semantics of ops.go wired in by role — the same wiring
// the hand-written models use.
func Generate(p *arm.Program, spec Spec, cfg Config) (*Machine, error) {
	m := newMachine(spec.Name, p, cfg, defaultStrongARMUnits)

	n := core.NewNet(int(arm.NumClasses))
	places := map[string]*core.Place{}
	for _, ss := range spec.Stages {
		if _, dup := places[ss.Name]; dup {
			return nil, fmt.Errorf("adl: duplicate stage %q", ss.Name)
		}
		cap := ss.Capacity
		if cap <= 0 {
			cap = 1
		}
		pl := n.Place(ss.Name, n.Stage(ss.Name, cap))
		if ss.Delay > 0 {
			pl.Delay = ss.Delay
		}
		places[ss.Name] = pl
	}
	end := n.EndPlace("end")

	lookup := func(name string) (*core.Place, error) {
		pl, ok := places[name]
		if !ok {
			return nil, fmt.Errorf("adl: unknown stage %q", name)
		}
		return pl, nil
	}

	if len(spec.FrontEnd) == 0 {
		return nil, fmt.Errorf("adl: a front end stage is required")
	}
	var bypass []int
	for _, name := range spec.Bypass {
		pl, err := lookup(name)
		if err != nil {
			return nil, err
		}
		bypass = append(bypass, pl.ID())
	}

	// Shared front end: AnyClass pass transitions between successive stages.
	for i := 0; i+1 < len(spec.FrontEnd); i++ {
		from, err := lookup(spec.FrontEnd[i])
		if err != nil {
			return nil, err
		}
		to, err := lookup(spec.FrontEnd[i+1])
		if err != nil {
			return nil, err
		}
		n.AddTransition(&core.Transition{
			Name: "fe." + spec.FrontEnd[i+1], Class: core.AnyClass, From: from, To: to,
		})
	}
	routeStart, err := lookup(spec.FrontEnd[len(spec.FrontEnd)-1])
	if err != nil {
		return nil, err
	}

	inst := func(tok *core.Token) *Inst { return tok.Data.(*Inst) }

	for c := arm.Class(0); c < arm.NumClasses; c++ {
		route, ok := spec.Routes[c]
		if !ok || len(route) == 0 {
			return nil, fmt.Errorf("adl: class %v has no route", c)
		}
		if last := route[len(route)-1].Exit; last != RoleWriteback && last != RoleMemWriteback {
			return nil, fmt.Errorf("adl: class %v route must end with a writeback", c)
		}
		from := routeStart
		for si, seg := range route {
			segStage, err := lookup(seg.Stage)
			if err != nil {
				return nil, err
			}
			if si == 0 && segStage != routeStart {
				return nil, fmt.Errorf("adl: class %v route must start at %s", c, routeStart.Name)
			}
			if si > 0 && segStage != from {
				return nil, fmt.Errorf("adl: class %v route is not contiguous at %s", c, seg.Stage)
			}
			to := end
			if si+1 < len(route) {
				if to, err = lookup(route[si+1].Stage); err != nil {
					return nil, err
				}
			}
			name := fmt.Sprintf("%s.%s.%s", c, seg.Stage, seg.Exit)
			if err := addRoleTransition(n, inst, name, c, seg.Exit, segStage, to, bypass, spec.MACExtra); err != nil {
				return nil, err
			}
			from = to
		}
	}

	n.AddSource(&core.Source{Name: "fetch", To: places[spec.FrontEnd[0]], Fire: m.fetchOne})
	n.OnRetire(m.retire)
	m.Net = n
	m.applyAblation()
	if err := n.Build(); err != nil {
		return nil, err
	}
	return m, nil
}

// defaultStrongARMUnits supplies StrongARM-class non-pipeline units when a
// Spec-generated model's config leaves them unset.
func defaultStrongARMUnits(c *Config) {
	if c.Caches.I == nil {
		c.Caches = mem.DefaultStrongARM()
	}
	if c.Predictor == nil {
		c.Predictor = bpred.NewNotTaken()
	}
}

// addRoleTransition wires one route segment to the operation-class
// semantics, including the class-specific specials (multiplier latency at
// issue, cache latency at execute, block-transfer stay loop at mem).
func addRoleTransition(n *core.Net, inst func(*core.Token) *Inst,
	name string, c arm.Class, role Role, from, to *core.Place, bypass []int, macExtra int64) error {
	class := core.ClassID(c)
	switch role {
	case RolePass:
		n.AddTransition(&core.Transition{Name: name, Class: class, From: from, To: to})

	case RoleIssue:
		t := &core.Transition{
			Name: name, Class: class, From: from, To: to,
			Guard:   func(tok *core.Token) bool { return inst(tok).IssueReady(bypass) },
			Explain: func(tok *core.Token) obsv.StallKind { return inst(tok).IssueStallKind(bypass) },
			Action:  func(tok *core.Token) { inst(tok).Issue(bypass) },
		}
		if c == arm.ClassMult {
			t.Action = func(tok *core.Token) {
				in := inst(tok)
				in.Issue(bypass)
				if !in.annulled {
					tok.Delay = macExtra + in.MulLatency()
				}
			}
		}
		n.AddTransition(t)

	case RoleExecute:
		t := &core.Transition{
			Name: name, Class: class, From: from, To: to,
			Action: func(tok *core.Token) { inst(tok).Execute() },
		}
		if c == arm.ClassLoadStore || c == arm.ClassLoadStoreM {
			t.Action = func(tok *core.Token) {
				in := inst(tok)
				in.Execute()
				tok.Delay = in.MemLatency()
			}
		}
		n.AddTransition(t)

	case RoleMem:
		switch c {
		case arm.ClassLoadStore:
			n.AddTransition(&core.Transition{
				Name: name, Class: class, From: from, To: to,
				Action: func(tok *core.Token) { inst(tok).MemAccess() },
			})
		case arm.ClassLoadStoreM:
			n.AddTransition(&core.Transition{
				Name: name + "step", Class: class, From: from, To: from, Priority: 0,
				Guard:  func(tok *core.Token) bool { return inst(tok).LSMMore() },
				Action: func(tok *core.Token) { tok.Delay = inst(tok).LSMStep() },
			})
			n.AddTransition(&core.Transition{
				Name: name + "last", Class: class, From: from, To: to, Priority: 1,
				Action: func(tok *core.Token) { inst(tok).LSMFinish() },
			})
		default:
			n.AddTransition(&core.Transition{Name: name, Class: class, From: from, To: to})
		}

	case RoleWriteback:
		n.AddTransition(&core.Transition{
			Name: name, Class: class, From: from, To: to,
			Action: func(tok *core.Token) { inst(tok).Writeback() },
		})

	case RoleMemWriteback:
		switch c {
		case arm.ClassLoadStore:
			n.AddTransition(&core.Transition{
				Name: name, Class: class, From: from, To: to,
				Action: func(tok *core.Token) {
					in := inst(tok)
					in.MemAccess()
					in.Writeback()
				},
			})
		case arm.ClassLoadStoreM:
			n.AddTransition(&core.Transition{
				Name: name + "step", Class: class, From: from, To: from, Priority: 0,
				Guard:  func(tok *core.Token) bool { return inst(tok).LSMMore() },
				Action: func(tok *core.Token) { tok.Delay = inst(tok).LSMStep() },
			})
			n.AddTransition(&core.Transition{
				Name: name + "last", Class: class, From: from, To: to, Priority: 1,
				Action: func(tok *core.Token) {
					in := inst(tok)
					in.LSMFinish()
					in.Writeback()
				},
			})
		default:
			n.AddTransition(&core.Transition{
				Name: name, Class: class, From: from, To: to,
				Action: func(tok *core.Token) { inst(tok).Writeback() },
			})
		}

	default:
		return fmt.Errorf("adl: unknown role %v", role)
	}
	return nil
}
