package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rcpn/internal/faultinj"
)

// Conn wraps a net.Conn with RCPNRPC1 framing, per-operation deadlines and
// the rpc.drop fault site. Send is safe for concurrent use; Recv must be
// called from one goroutine (the usual reader-loop shape).
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	// ReadTimeout bounds how long Recv waits for the next frame; it is the
	// liveness deadline (heartbeats must arrive faster than this). 0 means
	// block forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds each Send. 0 means block forever.
	WriteTimeout time.Duration

	inj *faultinj.Injector

	wmu sync.Mutex
}

// NewConn wraps c. inj may be nil (no fault injection).
func NewConn(c net.Conn, inj *faultinj.Injector) *Conn {
	return &Conn{c: c, br: bufio.NewReaderSize(c, 64<<10), inj: inj}
}

// Handshake performs this side's half of the preamble: write our magic and
// hello, then read and verify the peer's. Symmetric, so both sides call it
// concurrently with their own hello.
func (c *Conn) Handshake(hello Hello, timeout time.Duration) (Hello, error) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	c.c.SetDeadline(deadline) //nolint:errcheck // net.Conn deadlines don't fail
	defer c.c.SetDeadline(time.Time{})
	if err := WriteMagic(c.c); err != nil {
		return Hello{}, err
	}
	if err := WriteFrame(c.c, Encode(hello)); err != nil {
		return Hello{}, err
	}
	if err := ReadMagic(c.br); err != nil {
		return Hello{}, err
	}
	payload, err := ReadFrame(c.br)
	if err != nil {
		return Hello{}, err
	}
	m, err := DecodeMsg(payload)
	if err != nil {
		return Hello{}, err
	}
	peer, ok := m.(Hello)
	if !ok {
		return Hello{}, fmt.Errorf("rpc: handshake got %T, want hello", m)
	}
	if peer.Version != Version {
		return Hello{}, fmt.Errorf("rpc: protocol version %d, want %d", peer.Version, Version)
	}
	return peer, nil
}

// Send frames and writes one message. The rpc.drop fault site fires before
// the write: an error rule silently drops the frame (the peer simply never
// sees it — simulated loss), a corrupt rule flips one payload byte after
// the CRC is computed (the peer detects the mismatch and poisons the
// connection), a delay rule stalls the send.
func (c *Conn) Send(m Msg) error {
	buf := AppendFrame(nil, Encode(m))
	if err := c.inj.Hit(faultinj.SiteRPCDrop, 0); err != nil {
		var f *faultinj.Fault
		if errors.As(err, &f) && f.Act == faultinj.ActCorrupt {
			// Flip a bit mid-payload, past the varint length so the frame
			// boundary survives and the CRC is what catches it.
			buf[len(buf)/2] ^= 0x40
		} else {
			return nil // dropped on the floor: the bytes never leave this host
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.WriteTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.WriteTimeout)) //nolint:errcheck // net.Conn deadlines don't fail
	}
	_, err := c.c.Write(buf)
	return err
}

// Recv reads and decodes the next message, waiting at most ReadTimeout.
func (c *Conn) Recv() (Msg, error) {
	if c.ReadTimeout > 0 {
		c.c.SetReadDeadline(time.Now().Add(c.ReadTimeout)) //nolint:errcheck // net.Conn deadlines don't fail
	}
	payload, err := ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	return DecodeMsg(payload)
}

// Close closes the underlying connection. Safe to call more than once and
// from any goroutine; a blocked Recv or Send unblocks with an error.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr names the peer for logs.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }
