package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rcpn/internal/faultinj"
	"rcpn/internal/obsv"
)

// stallsOf extracts jobs[0].stalls from a terminal GET body.
func stallsOf(t *testing.T, body []byte) *obsv.StallSnapshot {
	t.Helper()
	var v struct {
		Result struct {
			Jobs []struct {
				Cycles   int64               `json:"cycles"`
				Instret  uint64              `json:"instructions"`
				Stalls   *obsv.StallSnapshot `json:"stalls"`
				Panicked bool                `json:"panicked"`
			} `json:"jobs"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad terminal body %s: %v", body, err)
	}
	if len(v.Result.Jobs) != 1 {
		t.Fatalf("want 1 job in the report, got %d: %s", len(v.Result.Jobs), body)
	}
	return v.Result.Jobs[0].Stalls
}

// checkPartition asserts the slot-partition identity on a serialized
// snapshot: per stage, occupied + sum(stalls) == cycles.
func checkPartition(t *testing.T, snap *obsv.StallSnapshot) {
	t.Helper()
	if snap == nil {
		t.Fatal("no stalls snapshot in the result")
	}
	if snap.Cycles == 0 || len(snap.Stages) == 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}
	for _, st := range snap.Stages {
		slots := st.Occupied
		for _, n := range st.Stalls {
			slots += n
		}
		if slots != snap.Cycles {
			t.Fatalf("stage %s: occupied %d + stalls = %d slots, want %d cycles",
				st.Name, st.Occupied, slots, snap.Cycles)
		}
	}
}

// TestProfiledJobEmbedsStalls: profile:true jobs carry a per-stage stall
// snapshot in the rcpn-batch/v1 result, the snapshot satisfies the slot
// partition identity, and profiling does not perturb the simulated outcome
// (same cycles and instructions as the unprofiled spec).
func TestProfiledJobEmbedsStalls(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	plain := submit(t, hs.URL, `{"simulator":"pipe5","kernel":"crc"}`)
	profiled := submit(t, hs.URL, `{"simulator":"pipe5","kernel":"crc","profile":true}`)
	if plain.ID == profiled.ID {
		t.Fatal("profile:true must change the content address (the result bytes differ)")
	}

	var plainRes, profRes struct {
		Jobs []struct {
			Cycles  int64  `json:"cycles"`
			Instret uint64 `json:"instructions"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(resultOf(t, waitState(t, hs.URL, plain.ID)), &plainRes); err != nil {
		t.Fatal(err)
	}
	body := waitState(t, hs.URL, profiled.ID)
	if err := json.Unmarshal(resultOf(t, body), &profRes); err != nil {
		t.Fatal(err)
	}
	if plainRes.Jobs[0] != profRes.Jobs[0] {
		t.Fatalf("profiling perturbed the run: %+v vs %+v", profRes.Jobs[0], plainRes.Jobs[0])
	}

	snap := stallsOf(t, body)
	checkPartition(t, snap)
	if snap.Cycles != uint64(profRes.Jobs[0].Cycles) {
		t.Fatalf("snapshot cycles %d != job cycles %d", snap.Cycles, profRes.Jobs[0].Cycles)
	}
}

// TestTraceEndpoint: trace_events > 0 jobs expose Chrome trace_event JSON
// at /v1/jobs/{id}/trace; untraced and unknown jobs 404.
func TestTraceEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})

	r := submit(t, hs.URL, `{"simulator":"pipe5","kernel":"crc","trace_events":4096}`)
	waitState(t, hs.URL, r.ID)
	code, data := get(t, hs.URL+"/v1/jobs/"+r.ID+"/trace")
	if code != 200 {
		t.Fatalf("GET trace = %d: %s", code, data)
	}
	var tr struct {
		Events []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    *int64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid trace_event JSON: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("trace has no events")
	}
	for i, e := range tr.Events {
		if e.Phase == "" || e.TS == nil {
			t.Fatalf("event %d lacks ph/ts: %+v", i, e)
		}
	}

	plain := submit(t, hs.URL, `{"simulator":"pipe5","kernel":"crc"}`)
	waitState(t, hs.URL, plain.ID)
	if code, _ := get(t, hs.URL+"/v1/jobs/"+plain.ID+"/trace"); code != 404 {
		t.Fatalf("untraced job trace = %d, want 404", code)
	}
	if code, _ := get(t, hs.URL+"/v1/jobs/deadbeef/trace"); code != 404 {
		t.Fatalf("unknown job trace = %d, want 404", code)
	}
}

// TestProfiledResumeByteIdentical: a profiled checkpointing job killed by
// an injected panic and resumed must produce the same result bytes — the
// stall profile included — as an uninterrupted run. This is what the
// stall-snapshot framing inside persisted checkpoints buys: without it
// the resumed profile would only cover cycles after the restore.
func TestProfiledResumeByteIdentical(t *testing.T) {
	spec := `{"simulator":"strongarm","kernel":"crc","profile":true,"checkpoint_interval":2000}`

	clean, hsClean := newTestServer(t, Config{Workers: 1})
	rc := submit(t, hsClean.URL, spec)
	want := resultOf(t, waitState(t, hsClean.URL, rc.ID))
	hsClean.Close()
	clean.Drain(0)
	if !strings.Contains(string(want), `"stalls"`) {
		t.Fatalf("reference result carries no stall snapshot: %s", want)
	}

	inj := faultinj.New(faultinj.Rule{
		Site: faultinj.SiteWorkerPanic, AtValue: 5000, Action: faultinj.ActPanic,
		Msg: "injected crash at first boundary past 5000 retirements",
	})
	s, hs := newTestServer(t, Config{Workers: 1, Fault: inj, Logf: t.Logf})
	defer func() { hs.Close(); s.Drain(0) }()
	r := submit(t, hs.URL, spec)
	if r.ID != rc.ID {
		t.Fatalf("content address differs between servers: %s vs %s", r.ID, rc.ID)
	}
	got := resultOf(t, waitState(t, hs.URL, r.ID))
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed profiled result differs from uninterrupted run:\n%s\n----\n%s", got, want)
	}
	if got := metric(t, hs.URL, "rcpn_jobs_resumed_total"); got < 1 {
		t.Fatalf("rcpn_jobs_resumed_total = %v, want >= 1 (the retry must resume, not restart)", got)
	}
	if len(inj.Fired()) == 0 {
		t.Fatal("fault never fired; the test exercised nothing")
	}
}

// TestPanicSalvagesPartialProfile: a worker panic (injected at the
// worker.panic site, every attempt, so the job poisons) must not lose the
// observability already gathered — the terminal failure report still
// embeds the stall snapshot and progress from the last completed chunk.
func TestPanicSalvagesPartialProfile(t *testing.T) {
	inj := faultinj.New(faultinj.Rule{
		Site: faultinj.SiteWorkerPanic, AtValue: 5000, Times: -1,
		Action: faultinj.ActPanic, Msg: "injected crash on every attempt",
	})
	_, hs := newTestServer(t, Config{
		Workers: 1, MaxAttempts: 1, Fault: inj, Logf: t.Logf,
	})

	r := submit(t, hs.URL,
		`{"simulator":"pipe5","kernel":"crc","profile":true,"checkpoint_interval":2000}`)
	body := waitState(t, hs.URL, r.ID)
	if !strings.Contains(string(body), `"state": "failed"`) && !strings.Contains(string(body), `"state":"failed"`) {
		t.Fatalf("job should have poisoned after the injected panic: %s", body)
	}

	var v struct {
		Result struct {
			Jobs []struct {
				Cycles   int64               `json:"cycles"`
				Instret  uint64              `json:"instructions"`
				Stalls   *obsv.StallSnapshot `json:"stalls"`
				Panicked bool                `json:"panicked"`
			} `json:"jobs"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad terminal body %s: %v", body, err)
	}
	j := v.Result.Jobs[0]
	if !j.Panicked {
		t.Fatalf("job not marked panicked: %+v", j)
	}
	if j.Instret == 0 || j.Cycles == 0 {
		t.Fatalf("panic lost the partial progress: %+v", j)
	}
	if j.Stalls == nil {
		t.Fatal("panic lost the partial stall profile")
	}
	checkPartition(t, j.Stalls)
	if len(inj.Fired()) == 0 {
		t.Fatal("fault never fired; the test exercised nothing")
	}
}
