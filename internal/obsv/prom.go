package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is a minimal Prometheus text exposition (format 0.0.4)
// writer: enough for the simulation service to expose counters, gauges
// and histograms that a stock Prometheus scraper ingests, without pulling
// in a client library. Metric order is the registration order and label
// sets are rendered sorted, so a scrape of an idle server is
// byte-deterministic.

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// sense: Observe(v) increments every bucket whose upper bound is ≥ v,
// plus the implicit +Inf bucket, the count and the sum. Safe for
// concurrent use.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds, +Inf excluded
	buckets []uint64  // len(bounds)+1; last is +Inf
	sum     float64
	count   uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshot returns cumulative bucket counts, the sum and the count.
func (h *Histogram) snapshot() (bounds []float64, cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.buckets))
	var acc uint64
	for i, c := range h.buckets {
		acc += c
		cum[i] = acc
	}
	return h.bounds, cum, h.sum, h.count
}

// MetricsWriter renders one exposition page. It is write-once: build it,
// add metrics in the order they should appear, then flush with Close.
type MetricsWriter struct {
	bw  *bufio.Writer
	err error
}

// NewMetricsWriter wraps w for one exposition page.
func NewMetricsWriter(w io.Writer) *MetricsWriter {
	return &MetricsWriter{bw: bufio.NewWriter(w)}
}

// ContentType is the HTTP Content-Type of the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func (m *MetricsWriter) header(name, help, typ string) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func renderLabels(labels map[string]string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter emits one counter sample (with optional labels).
func (m *MetricsWriter) Counter(name, help string, v float64, labels map[string]string) {
	m.header(name, help, "counter")
	m.sample(name, labels, v)
}

// Gauge emits one gauge sample.
func (m *MetricsWriter) Gauge(name, help string, v float64, labels map[string]string) {
	m.header(name, help, "gauge")
	m.sample(name, labels, v)
}

// MultiGauge emits one gauge family with several label sets; rows render
// in the given order.
func (m *MetricsWriter) MultiGauge(name, help string, rows []LabeledValue) {
	m.header(name, help, "gauge")
	for _, r := range rows {
		m.sample(name, r.Labels, r.Value)
	}
}

// MultiCounter emits one counter family with several label sets.
func (m *MetricsWriter) MultiCounter(name, help string, rows []LabeledValue) {
	m.header(name, help, "counter")
	for _, r := range rows {
		m.sample(name, r.Labels, r.Value)
	}
}

// LabeledValue is one sample row of a multi-sample family.
type LabeledValue struct {
	Labels map[string]string
	Value  float64
}

func (m *MetricsWriter) sample(name string, labels map[string]string, v float64) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.bw, "%s%s %s\n", name, renderLabels(labels), formatValue(v))
}

// HistogramMetric emits a histogram family from h.
func (m *MetricsWriter) HistogramMetric(name, help string, h *Histogram) {
	m.header(name, help, "histogram")
	bounds, cum, sum, count := h.snapshot()
	for i, ub := range bounds {
		if m.err != nil {
			return
		}
		_, m.err = fmt.Fprintf(m.bw, "%s_bucket{le=%q} %d\n", name, formatValue(ub), cum[i])
	}
	if m.err == nil {
		_, m.err = fmt.Fprintf(m.bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
	}
	if m.err == nil {
		_, m.err = fmt.Fprintf(m.bw, "%s_sum %s\n", name, formatValue(sum))
	}
	if m.err == nil {
		_, m.err = fmt.Fprintf(m.bw, "%s_count %d\n", name, count)
	}
}

// Close flushes the page and reports the first write error.
func (m *MetricsWriter) Close() error {
	if m.err != nil {
		return m.err
	}
	return m.bw.Flush()
}

// ValidateProm parses a Prometheus text-format page strictly enough for
// tests: every non-comment line must be `name[{labels}] value`, every
// sample's base family must have had a preceding # TYPE line, and values
// must parse as floats. Returns the number of samples seen.
func ValidateProm(page []byte) (samples int, err error) {
	typed := map[string]string{}
	lines := strings.Split(string(page), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		rest := line[len(name):]
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return samples, fmt.Errorf("line %d: unterminated label set: %s", ln+1, line)
			}
			rest = rest[end+1:]
		}
		rest = strings.TrimSpace(rest)
		// Histograms time-series use _bucket/_sum/_count suffixes on the
		// declared family name.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := typed[strings.TrimSuffix(name, suf)]; ok && t == "histogram" && strings.HasSuffix(name, suf) {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := typed[base]; !ok {
			return samples, fmt.Errorf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		// A timestamp may follow the value; the service never emits one.
		val := strings.Fields(rest)
		if len(val) == 0 {
			return samples, fmt.Errorf("line %d: missing value: %s", ln+1, line)
		}
		if val[0] != "+Inf" && val[0] != "-Inf" && val[0] != "NaN" {
			if _, perr := strconv.ParseFloat(val[0], 64); perr != nil {
				return samples, fmt.Errorf("line %d: bad value %q: %v", ln+1, val[0], perr)
			}
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples in page")
	}
	return samples, nil
}
