package machine

import (
	"strings"
	"testing"

	"rcpn/internal/arm"
)

func TestPipelineTrace(t *testing.T) {
	p, err := arm.Assemble(`
	mov r0, #0
	add r0, r0, #1
	cmp r0, #1
	swi #0
`, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewStrongARM(p, Config{})
	var b strings.Builder
	m.AttachTracer(&b, 0)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cycle", "FD", "EX", "ME", "WB", "mov", "add", "cmp", "swi"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines < int(m.Net.CycleCount()) {
		t.Errorf("trace has %d lines for %d cycles", lines, m.Net.CycleCount())
	}
}

func TestPipelineTraceLimit(t *testing.T) {
	p, err := arm.Assemble(`
	mov r1, #0
loop:
	add r1, r1, #1
	cmp r1, #40
	bne loop
	swi #0
`, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewXScale(p, Config{})
	var b strings.Builder
	m.AttachTracer(&b, 5)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// Header + exactly 5 traced cycles.
	if got := strings.Count(b.String(), "\n"); got != 6 {
		t.Errorf("limited trace produced %d lines", got)
	}
}

func TestTraceMarksAnnulled(t *testing.T) {
	p, err := arm.Assemble(`
	mov r0, #1
	cmp r0, #2
	addeq r0, r0, #9   ; annulled
	swi #0
`, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewStrongARM(p, Config{})
	var b strings.Builder
	m.AttachTracer(&b, 0)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "addeq!") {
		t.Errorf("annulled instruction not marked:\n%s", b.String())
	}
}
