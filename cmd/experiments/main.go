// Command experiments regenerates the paper's evaluation (DATE 2005,
// Reshadi & Dutt): Figure 10 (simulation performance in million cycles per
// second for SimpleScalar-ARM vs the RCPN-generated XScale and StrongARM
// simulators), Figure 11 (CPI of SimpleScalar-ARM vs RCPN-StrongARM), and
// the ablation study quantifying each §4/§5 engine optimization.
//
// Usage:
//
//	experiments [-fig 10|11|ablation|all] [-scale N] [-csv out.csv]
//
// Absolute numbers depend on the host; the paper's claims are about shape:
// RCPN simulators an order of magnitude faster than the baseline,
// StrongARM faster than XScale (simpler pipeline -> simpler generated
// simulator), and CPIs of the two CPI-comparable simulators within ~10%.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/core"
	"rcpn/internal/cpn"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/mem"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
	"rcpn/internal/stats"
	"rcpn/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 10, 11, ablation, sweep, all")
	scale := flag.Int("scale", 4, "workload scale factor (1 = quick)")
	csv := flag.String("csv", "", "also write raw measurements as CSV to this file")
	flag.IntVar(&workers, "j", 0, "measurement worker pool (0 = GOMAXPROCS, 1 = the old serial loop)")
	flag.Parse()

	set := &stats.Set{}
	switch *fig {
	case "10":
		fig10(set, *scale)
	case "11":
		fig11(set, *scale)
	case "ablation":
		ablation(*scale)
	case "sweep":
		sweep(*scale)
	case "all":
		fig10(set, *scale)
		fig11(set, *scale)
		ablation(*scale)
		sweep(*scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
	if *csv != "" {
		if err := os.WriteFile(*csv, []byte(set.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("raw measurements written to %s\n", *csv)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// runner abstracts the three measured simulators.
type runner struct {
	name string
	run  func(p *arm.Program) (cycles int64, instret uint64, err error)
}

func runners() []runner {
	return []runner{
		{"SimpleScalar-Arm", func(p *arm.Program) (int64, uint64, error) {
			s := ssim.New(p, ssim.Config{})
			err := s.Run(0)
			return s.Cycles, s.Instret, err
		}},
		{"RCPN-XScale", func(p *arm.Program) (int64, uint64, error) {
			m := machine.NewXScale(p, machine.Config{})
			err := m.Run(0)
			return m.Net.CycleCount(), m.Instret, err
		}},
		{"RCPN-StrongARM", func(p *arm.Program) (int64, uint64, error) {
			m := machine.NewStrongARM(p, machine.Config{})
			err := m.Run(0)
			return m.Net.CycleCount(), m.Instret, err
		}},
		// Extra, beyond the paper's three bars: a hand-written direct-style
		// five-stage simulator, showing the generated RCPN simulator reaches
		// hand-written performance (the paper's §5 FastSim comparison).
		{"hand-written-5stage", func(p *arm.Program) (int64, uint64, error) {
			s := pipe5.New(p, pipe5.Config{})
			err := s.Run(0)
			return s.Cycles, s.Instret, err
		}},
	}
}

// workers is the -j flag: the size of the measurement worker pool.
var workers int

// measure runs every workload on every simulator through the batch worker
// pool, verifying results against the ISS golden model as it goes. The golden
// functional runs happen up front (they are cheap and their instruction
// counts feed every job's verification); the cycle-accurate runs — the
// expensive part — fan out as independent jobs. With -j 1 the pool claims
// jobs in submission order, reproducing the old serial loop exactly; the
// result tables are identical at any -j because results are aggregated in
// submission order, not completion order.
func measure(set *stats.Set, scale int) {
	var jobs []batch.Job
	for _, w := range workload.All() {
		p, err := w.Program(scale)
		if err != nil {
			die(err)
		}
		golden := iss.New(p, 0)
		golden.MaxInstrs = 2_000_000_000
		if err := golden.Run(); err != nil {
			die(fmt.Errorf("%s: iss: %w", w.Name, err))
		}
		for _, r := range runners() {
			if _, ok := set.Get(r.name, w.Name); ok {
				continue
			}
			r, w, p, want := r, w, p, golden.Instret
			jobs = append(jobs, batch.Job{
				Simulator: r.name, Workload: w.Name,
				Run: func(context.Context) (batch.Metrics, error) {
					cycles, instret, err := r.run(p)
					if err != nil {
						return batch.Metrics{}, err
					}
					if instret != want {
						return batch.Metrics{}, fmt.Errorf(
							"instret %d, golden %d — simulator bug", instret, want)
					}
					return batch.Metrics{Cycles: cycles, Instret: instret}, nil
				},
			})
		}
	}
	rep := batch.Run(jobs, batch.Options{Workers: workers})
	for _, r := range rep.Results {
		if r.Err != "" {
			die(fmt.Errorf("%s on %s: %s", r.Simulator, r.Workload, r.Err))
		}
		set.Add(stats.Run{Simulator: r.Simulator, Workload: r.Workload,
			Cycles: r.Cycles, Instret: r.Instret, Wall: r.Wall})
	}
}

func fig10(set *stats.Set, scale int) {
	measure(set, scale)
	fmt.Println(set.Table("Figure 10 — Simulation performance", "million cycles/second", stats.MetricMCPS, 2))
	base := set.Average("SimpleScalar-Arm", stats.MetricMCPS)
	if base > 0 {
		fmt.Printf("speedup over SimpleScalar-Arm:  RCPN-XScale %.1fx,  RCPN-StrongARM %.1fx\n",
			set.Average("RCPN-XScale", stats.MetricMCPS)/base,
			set.Average("RCPN-StrongARM", stats.MetricMCPS)/base)
		fmt.Printf("paper reported:                 ~13.7x (8.2/0.6)    ~20.3x (12.2/0.6); \"~15 times\" overall\n\n")
	}
}

func fig11(set *stats.Set, scale int) {
	measure(set, scale)
	// Figure 11 compares only SimpleScalar-ARM and RCPN-StrongARM (both
	// model a StrongARM-class five-stage machine).
	sub := &stats.Set{}
	for _, r := range set.Runs {
		if r.Simulator == "SimpleScalar-Arm" || r.Simulator == "RCPN-StrongARM" {
			sub.Add(r)
		}
	}
	fmt.Println(sub.Table("Figure 11 — Clocks per instruction", "CPI", stats.MetricCPI, 2))
	a := sub.Average("SimpleScalar-Arm", stats.MetricCPI)
	b := sub.Average("RCPN-StrongARM", stats.MetricCPI)
	if a > 0 {
		fmt.Printf("average CPI difference: %.1f%% (paper: ~10%%, averages 1.8 vs 2.0)\n\n", 100*(b-a)/a)
	}
}

// ablation quantifies the §4/§5 optimizations: the active-place worklist
// replacing the full reverse-topological sweep, the sorted-transitions
// table (Fig. 6), the reverse-topological order avoiding the two-list
// algorithm (Fig. 8), the decoded-token cache, and the RCPN engine vs a
// naive CPN simulation of the converted net. The configuration names match
// BenchmarkAblation in bench_test.go so `go test -bench` and this command
// report the same rows.
func ablation(scale int) {
	fmt.Println("Ablation — engine optimizations (RCPN-StrongARM, crc + go workloads)")
	fmt.Println("metric: Minstr/s (host throughput per simulated instruction; the")
	fmt.Println("two-list ablation also changes modeled timing, so a cycle rate would mislead)")
	fmt.Printf("%-34s%14s%14s\n", "configuration", "Minstr/s", "slowdown")

	configs := []struct {
		name string
		cfg  machine.Config
	}{
		{"full-engine", machine.Config{}},
		{"activeList=off", machine.Config{NoActiveList: true}},
		{"pool=off", machine.Config{NoTokenCache: true}},
		{"activeList=off,pool=off", machine.Config{NoActiveList: true, NoTokenCache: true}},
		{"dynamic-search", machine.Config{DynamicSearch: true}},
		{"two-list-everywhere", machine.Config{TwoListAll: true}},
		{"all-off", machine.Config{NoTokenCache: true, DynamicSearch: true,
			TwoListAll: true, NoActiveList: true}},
	}
	var baseline float64
	for i, c := range configs {
		var instrs uint64
		var wall time.Duration
		for _, name := range []string{"crc", "go"} {
			p, err := workload.ByName(name).Program(scale)
			if err != nil {
				die(err)
			}
			m := machine.NewStrongARM(p, c.cfg)
			start := time.Now()
			if err := m.Run(0); err != nil {
				die(err)
			}
			wall += time.Since(start)
			instrs += m.Instret
		}
		mips := float64(instrs) / wall.Seconds() / 1e6
		if i == 0 {
			baseline = mips
		}
		fmt.Printf("%-34s%14.2f%13.2fx\n", c.name, mips, baseline/mips)
	}
	fmt.Println()
	cpnAblation()
}

// cpnAblation compares the RCPN engine against the generic CPN engine on
// the converted Figure 2 pipeline — the structural reason CPN models of
// pipelines "significantly reduce simulation performance" (§2).
func cpnAblation() {
	const tokens = 200_000
	build := func(pool *core.TokenPool) *core.Net {
		n := core.NewNet(2)
		l1 := n.Place("L1", n.Stage("L1", 1))
		l2 := n.Place("L2", n.Stage("L2", 1))
		end := n.EndPlace("end")
		n.AddTransition(&core.Transition{Name: "U2", Class: 0, From: l1, To: l2})
		n.AddTransition(&core.Transition{Name: "U3", Class: 0, From: l2, To: end})
		n.AddTransition(&core.Transition{Name: "U4", Class: 1, From: l1, To: end})
		made := 0
		n.AddSource(&core.Source{
			Name: "U1", To: l1,
			Guard: func() bool { return made < tokens },
			Fire:  func() *core.Token { made++; return pool.Get(core.ClassID(made%2), made) },
		})
		// Recycling retired tokens through the pool keeps the measured loop
		// allocation-free; the CPN conversion below ignores the callback, so
		// its side of the comparison is unaffected.
		n.OnRetire(pool.Put)
		n.MustBuild()
		return n
	}

	rc := build(new(core.TokenPool))
	start := time.Now()
	if _, err := rc.Run(func() bool { return rc.RetiredCount >= tokens }, 10*tokens); err != nil {
		die(err)
	}
	rcRate := float64(rc.CycleCount()) / time.Since(start).Seconds() / 1e6

	converted, _, err := cpn.Convert(build(new(core.TokenPool)))
	if err != nil {
		die(err)
	}
	var endPlace *cpn.Place
	for _, p := range converted.Places() {
		if p.Name == "end" {
			endPlace = p
		}
	}
	start = time.Now()
	if err := converted.Run(func() bool { return len(endPlace.Tokens()) >= tokens }, 10*tokens); err != nil {
		die(err)
	}
	cpnRate := float64(converted.CycleCount()) / time.Since(start).Seconds() / 1e6

	fmt.Println("Engine comparison on the Figure 2 pipeline (200k tokens):")
	fmt.Printf("%-34s%14.2f\n", "RCPN engine (Mcycles/s)", rcRate)
	fmt.Printf("%-34s%14.2f\n", "naive CPN engine (Mcycles/s)", cpnRate)
	fmt.Printf("%-34s%13.2fx\n", "RCPN advantage", rcRate/cpnRate)
	fmt.Println()
}

// sweep is an extension beyond the paper's figures: the kind of design-space
// study the generated simulators exist for. It sweeps the data-cache size on
// the RCPN StrongARM model and reports CPI and hit ratio per configuration —
// "performance metrics such as cycle counts, cache hit ratios and different
// resource utilization statistics" (§1).
func sweep(scale int) {
	fmt.Println("Extension — data-cache size sweep (RCPN-StrongARM, compress + fir16)")
	fmt.Printf("%-10s%12s%12s%12s%12s\n", "dcache", "CPI", "D$ hit", "cycles", "stall@FD")
	for _, kb := range []int{1, 2, 4, 8, 16, 32} {
		sets := kb * 1024 / (32 * 8) // 8-way, 32B lines
		var cycles int64
		var instret uint64
		var hits, accesses uint64
		var fdStalls uint64
		for _, name := range []string{"compress", "fir16"} {
			p, err := workload.ByName(name).Program(scale)
			if err != nil {
				die(err)
			}
			cfg := machine.Config{Caches: mem.Hierarchy{
				I: mem.MustCache(mem.CacheConfig{Name: "icache", Sets: 16, Ways: 32, LineBytes: 32, HitLatency: 1, MissLatency: 24}),
				D: mem.MustCache(mem.CacheConfig{Name: "dcache", Sets: sets, Ways: 8, LineBytes: 32, HitLatency: 1, MissLatency: 24}),
			}}
			m := machine.NewStrongARM(p, cfg)
			if err := m.Run(0); err != nil {
				die(err)
			}
			cycles += m.Net.CycleCount()
			instret += m.Instret
			hits += m.DCache.Stats.Hits
			accesses += m.DCache.Stats.Accesses()
			for _, pl := range m.Net.Places() {
				if pl.Name == "FD" {
					fdStalls += pl.Stalls()
				}
			}
		}
		fmt.Printf("%6dKB  %12.3f%11.1f%%%12d%12d\n",
			kb, float64(cycles)/float64(instret), 100*float64(hits)/float64(accesses), cycles, fdStalls)
	}
	fmt.Println()
}
