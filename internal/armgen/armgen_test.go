package armgen

import (
	"bytes"
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/iss"
)

// TestDeterministic pins the determinism contract: the same config produces
// a byte-identical source and image on every call.
func TestDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Source != b.Source {
			t.Fatalf("seed %d: source differs between runs", seed)
		}
		if !bytes.Equal(a.Image.Bytes, b.Image.Bytes) {
			t.Fatalf("seed %d: image differs between runs", seed)
		}
	}
}

// TestSeedsDiffer is a sanity check that the seed actually matters.
func TestSeedsDiffer(t *testing.T) {
	a, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Source == b.Source {
		t.Fatal("seeds 1 and 2 generated the same program")
	}
}

// runISS executes a program on the golden model with a generous instruction
// budget and returns the CPU; the program must exit.
func runISS(t *testing.T, src string) *iss.CPU {
	t.Helper()
	img, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := iss.New(img, 0)
	c.MaxInstrs = 5_000_000
	if err := c.Run(); err != nil {
		t.Fatalf("iss: %v\nsource:\n%s", err, src)
	}
	return c
}

// TestTerminatesAndConfined runs many seeds on the ISS: every program must
// exit within the budget, and no store may touch the program text (the
// memory-confinement invariant — the scratch window is nowhere near the
// image at 0x8000).
func TestTerminatesAndConfined(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		p, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c := runISS(t, p.Source)
		for i, want := range p.Image.Bytes {
			if got := c.Mem.Read8(p.Image.Base + uint32(i)); got != want {
				t.Fatalf("seed %d: text byte %#x changed from %#02x to %#02x",
					seed, p.Image.Base+uint32(i), want, got)
			}
		}
	}
}

// TestChunkDeletionWellFormed deletes pseudo-random chunk subsets and
// requires every residue to assemble and terminate — the invariant the
// delta-debugging minimizer depends on.
func TestChunkDeletionWellFormed(t *testing.T) {
	p, err := Generate(Config{Seed: 7, Len: 64})
	if err != nil {
		t.Fatal(err)
	}
	r := rng{s: 99}
	for trial := 0; trial < 25; trial++ {
		var kept []Chunk
		for _, c := range p.Chunks {
			if r.intn(3) != 0 { // drop ~1/3 of chunks
				kept = append(kept, c)
			}
		}
		runISS(t, Render(kept))
	}
	// The empty residue is the degenerate minimum: just the exit stub.
	c := runISS(t, Render(nil))
	if c.Instret != 1 {
		t.Fatalf("empty program retired %d instructions, want 1", c.Instret)
	}
}

// TestWeightsRespected checks that zeroed-out classes do not appear: a
// memory-free weight set must generate a program whose data memory is never
// written.
func TestWeightsRespected(t *testing.T) {
	w := DefaultWeights()
	w.LoadStore, w.HalfSigned, w.Block = 0, 0, 0
	p, err := Generate(Config{Seed: 3, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	c := runISS(t, p.Source)
	start := uint32(ScratchBase - 0x1000)
	for a := start; a < ScratchBase+0x2000; a++ {
		if c.Mem.Read8(a) != 0 {
			t.Fatalf("memory-free weights still wrote scratch byte %#x", a)
		}
	}
}
