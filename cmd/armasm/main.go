// Command armasm assembles an ARM7 assembly file with the repository's
// two-pass assembler and writes the image as a hex word dump (default), a
// raw little-endian binary, or a disassembly listing.
//
// Usage:
//
//	armasm [-base 0x8000] [-o out] [-format hex|bin|list] file.s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"rcpn/internal/arm"
)

func main() {
	baseStr := flag.String("base", "0x8000", "load address")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "hex", "output format: hex, bin, list")
	syms := flag.Bool("syms", false, "also print the symbol table (hex/list formats)")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := strconv.ParseUint(*baseStr, 0, 32)
	if err != nil {
		fail(fmt.Errorf("bad -base: %w", err))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	p, err := arm.Assemble(string(src), uint32(base))
	if err != nil {
		fail(err)
	}

	var b strings.Builder
	switch *format {
	case "bin":
		writeOut(*out, p.Bytes)
		return
	case "hex":
		for i, w := range p.Words() {
			fmt.Fprintf(&b, "%08x: %08x\n", p.Base+uint32(4*i), w)
		}
	case "list":
		for i, w := range p.Words() {
			addr := p.Base + uint32(4*i)
			ins := arm.Decode(w, addr)
			fmt.Fprintf(&b, "%08x: %08x  %s\n", addr, w, arm.Disassemble(&ins))
		}
	default:
		fail(fmt.Errorf("unknown -format %q", *format))
	}
	if *syms {
		names := make([]string, 0, len(p.Symbols))
		for n := range p.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return p.Symbols[names[i]] < p.Symbols[names[j]] })
		b.WriteString("\nsymbols:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %08x %s\n", p.Symbols[n], n)
		}
	}
	writeOut(*out, []byte(b.String()))
}

func writeOut(path string, data []byte) {
	if path == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "armasm:", err)
	os.Exit(1)
}
