package cpn

import (
	"fmt"
	"sort"

	"rcpn/internal/core"
)

// Reserved colors used by converted nets. Instruction classes map to
// Color(class); the slot/reservation colors sit above any class.
const (
	SlotColor        Color = 1 << 20 // stage-capacity resource token
	ReservationColor Color = 1<<20 + 1
)

// Convert lowers an RCPN into a standard CPN, materializing what RCPN keeps
// implicit (§3):
//
//   - every bounded stage becomes a resource place primed with
//     capacity-many slot tokens;
//   - every RCPN transition additionally consumes a slot of its output
//     place's stage and returns the slot of its input place's stage — the
//     circular back-edges of Figure 2(b) that make plain CPN pipeline
//     models grow so complex;
//   - reservation-token arcs become ordinary arcs over reservation-colored
//     tokens, which also occupy stage slots;
//   - guards and actions are carried over, operating on the embedded
//     *core.Token payloads;
//   - arc priorities are encoded as transition order (standard CPN has no
//     priorities; the generic engine scans in registration order).
//
// The conversion preserves untimed behaviour; RCPN's place/token delays are
// approximated at one step per move, so converted nets are compared against
// delay-1 RCPN models in the equivalence tests.
func Convert(src *core.Net) (*Net, *Mapping, error) {
	n := New()
	m := &Mapping{
		PlaceOf: map[*core.Place]*Place{},
		SlotOf:  map[*core.Stage]*Place{},
	}

	for _, p := range src.Places() {
		m.PlaceOf[p] = n.Place(p.Name)
	}
	for _, p := range src.Places() {
		st := p.Stage
		if st.Unlimited() {
			continue
		}
		if _, ok := m.SlotOf[st]; ok {
			continue
		}
		slots := n.Place(st.Name + ".slots")
		for i := 0; i < st.Capacity; i++ {
			slots.Add(Token{Color: SlotColor})
		}
		m.SlotOf[st] = slots
	}

	instr := func(c core.ClassID) func(Token) bool {
		return func(t Token) bool {
			if t.Color >= SlotColor {
				return false
			}
			return c == core.AnyClass || t.Color == Color(c)
		}
	}
	slotF := func(t Token) bool { return t.Color == SlotColor }
	resvF := func(t Token) bool { return t.Color == ReservationColor }

	// Transitions must be added in priority order per place for the scan
	// order to encode RCPN arc priorities.
	byPrio := append([]*core.Transition(nil), src.Transitions()...)
	sort.SliceStable(byPrio, func(i, j int) bool {
		if byPrio[i].From != byPrio[j].From {
			return false // keep registration order across places
		}
		return byPrio[i].Priority < byPrio[j].Priority
	})

	for _, t := range byPrio {
		t := t
		if t.From == nil {
			return nil, nil, fmt.Errorf("cpn: source transitions are registered separately")
		}
		ct := &Transition{Name: t.Name}

		ct.In = append(ct.In, Arc{Place: m.PlaceOf[t.From], Filter: instr(t.Class)})
		// Output capacity -> consume a slot of the destination stage.
		if t.To != t.From && !t.To.Stage.Unlimited() {
			ct.In = append(ct.In, Arc{Place: m.SlotOf[t.To.Stage], Filter: slotF})
		}
		for _, r := range t.ResIn {
			ct.In = append(ct.In, Arc{Place: m.PlaceOf[r], Filter: resvF})
			// Consuming a reservation frees a slot of its stage.
			ct.Out = append(ct.Out, Arc{Place: m.SlotOf[r.Stage],
				Emit: func([]Token) Token { return Token{Color: SlotColor} }})
		}

		// Instruction token moves to the destination.
		ct.Out = append(ct.Out, Arc{Place: m.PlaceOf[t.To],
			Emit: func(b []Token) Token { return b[0] }})
		// A reservation occupies a slot of its stage — except that a
		// reservation left in the stage the instruction token is leaving
		// reuses the slot the departure frees (RCPN's enabling rule allows
		// this, e.g. a branch re-occupying the fetch latch it vacates).
		fromSlotReused := false
		for _, r := range t.ResOut {
			ct.Out = append(ct.Out, Arc{Place: m.PlaceOf[r],
				Emit: func([]Token) Token { return Token{Color: ReservationColor} }})
			if !fromSlotReused && t.From != nil && r.Stage == t.From.Stage &&
				t.To != t.From && !t.From.Stage.Unlimited() {
				fromSlotReused = true
				continue
			}
			ct.In = append(ct.In, Arc{Place: m.SlotOf[r.Stage], Filter: slotF})
		}
		// The freed slot of the source stage returns (the back-edge),
		// unless a reservation output reused it.
		if t.To != t.From && !t.From.Stage.Unlimited() && !fromSlotReused {
			ct.Out = append(ct.Out, Arc{Place: m.SlotOf[t.From.Stage],
				Emit: func([]Token) Token { return Token{Color: SlotColor} }})
		}

		if g := t.Guard; g != nil {
			ct.Guard = func(b []Token) bool {
				tok, _ := b[0].Data.(*core.Token)
				return g(tok)
			}
		}
		if a := t.Action; a != nil {
			ct.Action = func(b []Token) {
				tok, _ := b[0].Data.(*core.Token)
				a(tok)
			}
		}
		n.AddTransition(ct)
	}

	// RCPN sources: generate instruction tokens when the destination stage
	// has a slot.
	for _, s := range src.Sources() {
		s := s
		dst := m.PlaceOf[s.To]
		var in []Arc
		if !s.To.Stage.Unlimited() {
			in = append(in, Arc{Place: m.SlotOf[s.To.Stage], Filter: slotF})
		}
		n.AddTransition(&Transition{
			Name: s.Name,
			In:   in,
			Guard: func([]Token) bool {
				if s.Guard != nil && !s.Guard() {
					return false
				}
				return true
			},
			Out: []Arc{{Place: dst, Emit: func([]Token) Token {
				tok := s.Fire()
				if tok == nil {
					// Convertible models must decide production entirely in
					// the source's Guard (conversion contract).
					panic("cpn: source Fire returned nil despite a true guard; " +
						"move the decision into Guard for convertible models")
				}
				return Token{Color: Color(tok.Class), Data: tok}
			}}},
		})
	}

	return n, m, nil
}

// Mapping records how RCPN elements map to converted CPN places.
type Mapping struct {
	PlaceOf map[*core.Place]*Place
	SlotOf  map[*core.Stage]*Place
}
