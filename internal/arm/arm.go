// Package arm implements the ARMv4 (ARM7) instruction-set substrate used by
// the RCPN processor models: binary encodings, a decoder into the six
// operation classes of the paper, shared execution semantics (barrel shifter,
// ALU with NZCV flags, addressing modes), a disassembler, and a two-pass
// assembler so workloads can be written as ARM assembly text.
//
// The subset covers what arm-linux-gcc emits for integer code at the ARM7
// level: all data-processing instructions with the full barrel shifter,
// MUL/MLA, LDR/STR (word and byte, all addressing modes), LDM/STM, B/BL and
// SWI, with the full 15-entry condition field on everything.
package arm

import "fmt"

// Reg is an ARM register number r0..r15. r13 is SP, r14 is LR, r15 is PC.
type Reg uint8

// Named registers.
const (
	SP Reg = 13
	LR Reg = 14
	PC Reg = 15
)

func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Cond is the 4-bit condition field present on every ARM instruction.
type Cond uint8

// Condition codes.
const (
	EQ Cond = iota // Z set
	NE             // Z clear
	CS             // C set
	CC             // C clear
	MI             // N set
	PL             // N clear
	VS             // V set
	VC             // V clear
	HI             // C set and Z clear
	LS             // C clear or Z set
	GE             // N == V
	LT             // N != V
	GT             // Z clear and N == V
	LE             // Z set or N != V
	AL             // always
	NV             // never (reserved)
)

var condNames = [16]string{
	"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "", "nv",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Passes reports whether the condition holds for the given NZCV flags.
func (c Cond) Passes(n, z, cf, v bool) bool {
	switch c {
	case EQ:
		return z
	case NE:
		return !z
	case CS:
		return cf
	case CC:
		return !cf
	case MI:
		return n
	case PL:
		return !n
	case VS:
		return v
	case VC:
		return !v
	case HI:
		return cf && !z
	case LS:
		return !cf || z
	case GE:
		return n == v
	case LT:
		return n != v
	case GT:
		return !z && n == v
	case LE:
		return z || n != v
	case AL:
		return true
	default: // NV
		return false
	}
}

// Class is the operation class of an instruction. The paper implements the
// ARM instruction set with six operation classes (§5); instructions in a
// class share a binary format, a decode scheme and an RCPN sub-net.
type Class uint8

// The six operation classes.
const (
	ClassDataProc   Class = iota // data processing incl. compares and moves
	ClassMult                    // MUL / MLA
	ClassLoadStore               // LDR / STR (word, byte)
	ClassLoadStoreM              // LDM / STM (block transfer)
	ClassBranch                  // B / BL
	ClassSystem                  // SWI
	NumClasses
)

var classNames = [NumClasses]string{
	"DataProc", "Mult", "LoadStore", "LoadStoreM", "Branch", "System",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// DPOp is the 4-bit data-processing opcode.
type DPOp uint8

// Data-processing opcodes.
const (
	OpAND DPOp = iota
	OpEOR
	OpSUB
	OpRSB
	OpADD
	OpADC
	OpSBC
	OpRSC
	OpTST
	OpTEQ
	OpCMP
	OpCMN
	OpORR
	OpMOV
	OpBIC
	OpMVN
)

var dpNames = [16]string{
	"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
	"tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn",
}

func (op DPOp) String() string { return dpNames[op&15] }

// WritesRd reports whether the opcode writes a destination register
// (TST/TEQ/CMP/CMN only set flags).
func (op DPOp) WritesRd() bool { return op < OpTST || op > OpCMN }

// UsesRn reports whether the opcode reads the first operand register
// (MOV and MVN ignore Rn).
func (op DPOp) UsesRn() bool { return op != OpMOV && op != OpMVN }

// Shift is a barrel-shifter operation type.
type Shift uint8

// Shift types. ROR with a zero immediate amount encodes RRX.
const (
	LSL Shift = iota
	LSR
	ASR
	ROR
)

var shiftNames = [4]string{"lsl", "lsr", "asr", "ror"}

func (s Shift) String() string { return shiftNames[s&3] }

// Syscall numbers used in the SWI immediate field. The paper's benchmarks
// "use very few simple system calls (mainly for IO) that should be translated
// into host operating system calls in the simulator"; ours are the same idea.
const (
	SysExit = 0 // terminate; r0 = exit code
	SysEmit = 1 // append the word in r0 to the program's output stream
	SysPutc = 2 // append the low byte of r0 to the program's text output
)

// Instr is a fully decoded instruction: the token payload of the paper's
// instruction tokens. Decoding happens once, when the token is generated,
// and the decoded form is carried (and cached) with the token so no pipeline
// stage ever re-decodes (§5, third speedup reason).
type Instr struct {
	Raw  uint32 // original instruction word
	Addr uint32 // address the word was fetched from

	Cond  Cond
	Class Class

	// Data processing / multiply.
	Op       DPOp
	SetFlags bool
	Rn       Reg // first operand (DP), base (LDR/STR/LDM/STM), accumulator (MLA)
	Rd       Reg // destination (DP/LDR/STR), Rd of MUL/MLA
	Rm       Reg // register operand 2 / multiplicand / offset register
	Rs       Reg // shift-amount register / multiplier

	Imm      uint32 // rotated DP immediate, or load/store offset
	HasImm   bool   // operand2/offset is an immediate
	ShiftTyp Shift
	ShiftAmt uint8 // immediate shift amount (0..31)
	ShiftReg bool  // shift amount comes from Rs
	Accum    bool  // MLA / UMLAL / SMLAL (accumulate)

	// Long multiply (UMULL/UMLAL/SMULL/SMLAL): Rd is RdHi, Rn is RdLo.
	Long      bool
	SignedMul bool

	// Load/store and block transfer.
	Load       bool
	Byte       bool
	Half       bool // halfword transfer (LDRH/STRH/LDRSH)
	SignedLoad bool // sign-extending load (LDRSB/LDRSH)
	PreIndex   bool
	Up         bool
	Writeback  bool
	RegList    uint16 // LDM/STM register mask

	// Branch.
	Link   bool
	BrOff  int32 // word offset, sign-extended, relative to Addr+8
	SWINum uint32
}

// Target returns the branch destination address.
func (i *Instr) Target() uint32 {
	return i.Addr + 8 + uint32(i.BrOff)*4
}

// IsCompare reports whether a data-processing instruction only sets flags.
func (i *Instr) IsCompare() bool {
	return i.Class == ClassDataProc && !i.Op.WritesRd()
}

// WritesPC reports whether the instruction can redirect control flow by
// writing r15 (branches always do; data processing and loads may).
func (i *Instr) WritesPC() bool {
	switch i.Class {
	case ClassBranch:
		return true
	case ClassDataProc:
		return i.Op.WritesRd() && i.Rd == PC
	case ClassLoadStore:
		return i.Load && i.Rd == PC
	case ClassLoadStoreM:
		return i.Load && i.RegList&(1<<PC) != 0
	}
	return false
}

// RegListCount returns the number of registers in an LDM/STM mask.
func RegListCount(mask uint16) int {
	n := 0
	for m := mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}
