package machine

import (
	"fmt"

	"rcpn/internal/arm"
)

// This file implements the direction the paper's conclusion sets out:
// "extracting fast functional simulators from the same detailed RCPN
// models." A functional Machine executes programs using exactly the
// operation-class semantics the cycle-accurate models wire into their
// transitions — the Issue/Execute/MemAccess/Writeback bodies of ops.go —
// but runs each instruction to completion in program order, with no net,
// no stages, no hazards, and no timing. One model description therefore
// yields both the cycle-accurate simulator and the fast functional one,
// and the test suite cross-checks the extraction against the independent
// ISS golden model.

// NewFunctional builds a functional simulator from the operation-class
// model. Caches and the branch predictor are not consulted; the decoded-
// instruction cache still applies (and benefits throughput the same way).
func NewFunctional(p *arm.Program, cfg Config) *Machine {
	m := newMachine("functional", p, cfg, func(c *Config) {})
	m.functional = true
	return m
}

// RunFunctional executes the program to completion in program order.
// maxInstrs bounds runaway programs (0 = 2^40).
func (m *Machine) RunFunctional(maxInstrs uint64) error {
	if !m.functional {
		return fmt.Errorf("%s: not a functional machine (use NewFunctional)", m.Name)
	}
	if maxInstrs == 0 {
		maxInstrs = 1 << 40
	}
	for !m.Exited {
		if m.Instret >= maxInstrs {
			return fmt.Errorf("functional: instruction limit %d exceeded at pc=%#08x", maxInstrs, m.pc)
		}
		m.stepFunctional()
		if m.Err != nil {
			return m.Err
		}
	}
	return nil
}

// stepFunctional drives one instruction through the model's class semantics
// back-to-back: the degenerate one-stage pipeline.
func (m *Machine) stepFunctional() {
	addr := m.pc
	in := m.decode(addr)
	in.predNext = addr + 4
	m.pc = addr + 4 // control transfers overwrite via resolveControl

	// In program order every guard of the class sub-nets holds trivially
	// (no instruction is in flight, so no reference is reserved); the
	// actions run unconditionally.
	in.Issue(nil)
	in.Execute()
	switch in.I.Class {
	case arm.ClassLoadStore:
		in.MemAccess()
	case arm.ClassLoadStoreM:
		for in.LSMMore() {
			in.LSMStep()
		}
		in.LSMFinish()
	}
	in.Writeback()

	m.Instret++
	if m.prof != nil {
		m.prof.Advance(0)
		m.prof.EndCycle()
	}
	if m.funcTracer != nil {
		m.funcTracer.Birth(int64(m.Instret), m.Instret, 0)
		m.funcTracer.Retire(int64(m.Instret), m.Instret, 0)
	}
	m.recycle(in)
}
