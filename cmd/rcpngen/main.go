// rcpngen generates a cycle-accurate simulator package from a declarative
// machine spec: the RCPN compiled to straight-line Go (internal/gen), with
// fetch/decode, architected state and checkpointing shared with the
// interpreted machines.
//
// Usage:
//
//	rcpngen -model pipe5 -pkg genpipe5 -out internal/genpipe5 [-check] [-build]
//
// The output file is <out>/<pkg>.go. With -check, rcpngen regenerates and
// exits nonzero if the committed file is stale instead of writing (the CI
// staleness gate). With -build, it runs "go build" on the emitted package.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"rcpn/internal/gen"
	"rcpn/internal/machine"
)

var models = map[string]func() machine.Spec{
	"pipe5": machine.StrongARMSpec,
	"arm9":  machine.ARM9Spec,
}

func modelNames() []string {
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	model := flag.String("model", "pipe5", fmt.Sprintf("machine model to generate %v", modelNames()))
	pkg := flag.String("pkg", "", "emitted package name (default gen<model>)")
	out := flag.String("out", "", "output directory (default internal/gen<model>)")
	check := flag.Bool("check", false, "verify the committed file is up to date instead of writing")
	build := flag.Bool("build", false, "go build the emitted package after writing")
	flag.Parse()

	specFn, ok := models[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "rcpngen: unknown model %q (have %v)\n", *model, modelNames())
		os.Exit(2)
	}
	if *pkg == "" {
		*pkg = "gen" + *model
	}
	if *out == "" {
		*out = filepath.Join("internal", "gen"+*model)
	}

	src, err := gen.Generate(specFn(), gen.Options{Package: *pkg, Model: *model, OutDir: *out})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcpngen: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(*out, *pkg+".go")

	if *check {
		have, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcpngen: %s: %v (regenerate with: go run ./cmd/rcpngen -model %s -pkg %s -out %s)\n",
				path, err, *model, *pkg, *out)
			os.Exit(1)
		}
		if !bytes.Equal(have, src) {
			fmt.Fprintf(os.Stderr, "rcpngen: %s is stale; regenerate with: go run ./cmd/rcpngen -model %s -pkg %s -out %s\n",
				path, *model, *pkg, *out)
			os.Exit(1)
		}
		fmt.Printf("rcpngen: %s is up to date (%d bytes)\n", path, len(have))
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "rcpngen: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, src, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rcpngen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rcpngen: wrote %s (%d bytes)\n", path, len(src))

	if *build {
		cmd := exec.Command("go", "build", "./"+filepath.ToSlash(*out))
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "rcpngen: build failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("rcpngen: built ./%s\n", filepath.ToSlash(*out))
	}
}
