package batch

import (
	"context"
	"errors"
	"testing"

	"rcpn/internal/ckpt"
)

// fakeCkptStepper models a pipelined simulator with a fixed IPC of 1/2 (one
// retirement every other cycle), a fixed 3-cycle drain bubble, and honest
// checkpoint/restore: Restore resets the cycle counter to zero exactly like
// the real cycle simulators, so tests must wrap it with Resumed to get
// continuous positions.
type fakeCkptStepper struct {
	cycles  int64
	instret uint64
	phase   int    // progress through the current 2-cycle instruction
	total   uint64 // program length in instructions
	drained bool
}

func (f *fakeCkptStepper) exited() bool { return f.instret >= f.total }

func (f *fakeCkptStepper) Pos() int64                { return f.cycles }
func (f *fakeCkptStepper) Progress() (int64, uint64) { return f.cycles, f.instret }

func (f *fakeCkptStepper) cycle() {
	f.cycles++
	f.phase++
	if f.phase == 2 {
		f.phase = 0
		f.instret++
	}
	f.drained = false
}

func (f *fakeCkptStepper) StepTo(limit int64) (bool, error) {
	for f.cycles < limit && !f.exited() {
		f.cycle()
	}
	return f.exited(), nil
}

func (f *fakeCkptStepper) StepToRetired(target uint64, posLimit int64) (bool, error) {
	for f.instret < target && f.cycles < posLimit && !f.exited() {
		f.cycle()
	}
	return f.exited(), nil
}

func (f *fakeCkptStepper) DrainBoundary() error {
	if !f.drained {
		f.cycles += 3 // pipeline bubbles while the latches empty
		f.drained = true
	}
	return nil
}

func (f *fakeCkptStepper) Checkpoint() (*ckpt.Checkpoint, error) {
	return &ckpt.Checkpoint{Instret: f.instret}, nil
}

func (f *fakeCkptStepper) Restore(ck *ckpt.Checkpoint) error {
	f.cycles, f.instret, f.phase, f.drained = 0, ck.Instret, 0, true
	return nil
}

type boundary struct {
	instret uint64
	cycles  int64
}

// TestDriveCkptChunkIndependent: the checkpoint schedule — which boundaries
// fire, at what retirement counts and cumulative cycle counts — must be
// identical regardless of chunk size. This is the determinism contract that
// makes a resumed run retrace the original.
func TestDriveCkptChunkIndependent(t *testing.T) {
	run := func(chunk int64) ([]boundary, int64, uint64) {
		f := &fakeCkptStepper{total: 1000}
		var bs []boundary
		err := DriveCkpt(context.Background(), f, 0, chunk, 100,
			func(i uint64, c int64, ck *ckpt.Checkpoint) error {
				if ck.Instret != i {
					t.Fatalf("checkpoint instret %d != reported %d", ck.Instret, i)
				}
				bs = append(bs, boundary{i, c})
				return nil
			}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c, i := f.Progress()
		return bs, c, i
	}
	refB, refC, refI := run(1 << 18)
	if len(refB) == 0 {
		t.Fatal("no checkpoints produced for a 1000-instruction run at interval 100")
	}
	for _, chunk := range []int64{7, 64, 101, 999} {
		b, c, i := run(chunk)
		if c != refC || i != refI {
			t.Fatalf("chunk %d: final (%d cycles, %d instr) != reference (%d, %d)", chunk, c, i, refC, refI)
		}
		if len(b) != len(refB) {
			t.Fatalf("chunk %d: %d boundaries, reference has %d", chunk, len(b), len(refB))
		}
		for k := range b {
			if b[k] != refB[k] {
				t.Fatalf("chunk %d: boundary %d = %+v, reference %+v", chunk, k, b[k], refB[k])
			}
		}
	}
}

// TestDriveCkptResumeRetraces: restoring any checkpoint into a fresh stepper
// and continuing under the Resumed wrapper reproduces the donor's remaining
// boundaries and final progress exactly.
func TestDriveCkptResumeRetraces(t *testing.T) {
	donor := &fakeCkptStepper{total: 1000}
	type saved struct {
		b  boundary
		ck *ckpt.Checkpoint
	}
	var all []saved
	if err := DriveCkpt(context.Background(), donor, 0, 64, 100,
		func(i uint64, c int64, ck *ckpt.Checkpoint) error {
			all = append(all, saved{boundary{i, c}, ck})
			return nil
		}, nil); err != nil {
		t.Fatal(err)
	}
	wantC, wantI := donor.Progress()
	for k, sv := range all {
		fresh := &fakeCkptStepper{total: 1000, drained: true}
		if err := fresh.Restore(sv.ck); err != nil {
			t.Fatal(err)
		}
		st := Resumed(fresh, sv.b.cycles)
		var rest []boundary
		if err := DriveCkpt(context.Background(), st, 0, 64, 100,
			func(i uint64, c int64, _ *ckpt.Checkpoint) error {
				rest = append(rest, boundary{i, c})
				return nil
			}, nil); err != nil {
			t.Fatal(err)
		}
		c, i := st.Progress()
		if c != wantC || i != wantI {
			t.Fatalf("resume from boundary %d: final (%d, %d), donor (%d, %d)", k, c, i, wantC, wantI)
		}
		want := all[k+1:]
		if len(rest) != len(want) {
			t.Fatalf("resume from boundary %d: %d further boundaries, donor had %d", k, len(rest), len(want))
		}
		for j := range rest {
			if rest[j] != want[j].b {
				t.Fatalf("resume from boundary %d: boundary %d = %+v, donor %+v", k, j, rest[j], want[j].b)
			}
		}
	}
}

// TestDriveCkptZeroInterval: interval 0 degrades to plain Drive — no drains,
// no checkpoints, same completion.
func TestDriveCkptZeroInterval(t *testing.T) {
	f := &fakeCkptStepper{total: 500}
	called := false
	err := DriveCkpt(context.Background(), f, 0, 64, 0,
		func(uint64, int64, *ckpt.Checkpoint) error { called = true; return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("sink called with interval 0")
	}
	if f.instret != 500 {
		t.Fatalf("instret %d, want 500", f.instret)
	}
}

// TestDriveCkptSinkError: a sink failure aborts the run with that error.
func TestDriveCkptSinkError(t *testing.T) {
	f := &fakeCkptStepper{total: 1000}
	boom := errors.New("sink failed")
	err := DriveCkpt(context.Background(), f, 0, 64, 100,
		func(uint64, int64, *ckpt.Checkpoint) error { return boom }, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
}

// TestDriveCkptCancel: context cancellation surfaces between bursts.
func TestDriveCkptCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &fakeCkptStepper{total: 1 << 30}
	err := DriveCkpt(ctx, f, 0, 64, 100, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDriveCkptCap: the cumulative cap still stops a checkpointing run.
func TestDriveCkptCap(t *testing.T) {
	f := &fakeCkptStepper{total: 1 << 30}
	err := DriveCkpt(context.Background(), f, 500, 64, 100, nil, nil)
	if err == nil {
		t.Fatal("cap 500 did not stop the run")
	}
}
