package rcpn

// Integration tests that run every example program end to end. The examples
// assert their own architected results internally (they panic on wrong
// values), so a clean exit is a real correctness signal, not just "it
// compiled".

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, dir string, wantOutput ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "./examples/"+dir)
	cmd.Dir = "."
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("example %s timed out", dir)
	}
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", dir, err, out)
	}
	for _, want := range wantOutput {
		if !strings.Contains(string(out), want) {
			t.Errorf("example %s output missing %q\n%s", dir, want, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "quickstart",
		"5 instructions retired in 6 cycles",
		"digraph RCPN")
}

func TestExampleOutoforder(t *testing.T) {
	runExample(t, "outoforder",
		"two-list places (auto-detected from the feedback arc): L3",
		"feedback-path issue count (Dfwd fires): 2",
		"mem[28]=22")
}

func TestExampleTomasulo(t *testing.T) {
	runExample(t, "tomasulo",
		"renaming check passed")
}

func TestExampleVliw(t *testing.T) {
	runExample(t, "vliw",
		"operations per cycle")
}

func TestExampleXscale(t *testing.T) {
	runExample(t, "xscale",
		"adpcm", "go", "Mcycles/s")
}
