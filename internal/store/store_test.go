package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"rcpn/internal/ckpt"
	"rcpn/internal/faultinj"
)

func open(t *testing.T, dir string, inj *faultinj.Injector) (*Store, []Job) {
	t.Helper()
	s, jobs, err := Open(dir, inj, t.Logf)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s, jobs
}

// ckptBytes builds a minimal valid RCPNCKPT payload.
func ckptBytes(t *testing.T) []byte {
	t.Helper()
	ck := &ckpt.Checkpoint{Instret: 1234}
	ck.R[15] = 0x8000
	data, err := ck.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

const specA = `{"simulator":"pipe5","kernel":"crc","scale":1,"config":{}}`

// TestRoundTrip: submit → result → done survives a close/reopen cycle with
// byte-identical payloads; a pending job (no terminal record) is recovered
// as pending with its spec.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, jobs := open(t, dir, nil)
	if len(jobs) != 0 {
		t.Fatalf("fresh dir recovered %d jobs", len(jobs))
	}
	payload := []byte(`{"schema":"rcpn-batch/v1","jobs":[{"cycles":42}]}` + "\n")
	if err := s.LogSubmit("aaa", []byte(specA)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteResult("aaa", payload); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDone("aaa"); err != nil {
		t.Fatal(err)
	}
	if err := s.LogSubmit("bbb", []byte(specA)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, jobs = open(t, dir, nil)
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2: %+v", len(jobs), jobs)
	}
	if jobs[0].ID != "aaa" || jobs[0].State != StateDone || !bytes.Equal(jobs[0].Result, payload) {
		t.Fatalf("done job mangled: %+v", jobs[0])
	}
	if jobs[1].ID != "bbb" || jobs[1].State != StatePending || string(jobs[1].Spec) != specA {
		t.Fatalf("pending job mangled: %+v", jobs[1])
	}
}

// TestCheckpointRoundTrip: a checkpoint write/read round-trips the header
// fields and payload; deletion makes it ErrNotExist.
func TestCheckpointRoundTrip(t *testing.T) {
	s, _ := open(t, t.TempDir(), nil)
	payload := ckptBytes(t)
	if err := s.WriteCheckpoint("job1", 50000, 123456, payload); err != nil {
		t.Fatal(err)
	}
	instret, cycles, got, err := s.ReadCheckpoint("job1")
	if err != nil {
		t.Fatal(err)
	}
	if instret != 50000 || cycles != 123456 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip mangled: instret=%d cycles=%d", instret, cycles)
	}
	// Overwrite keeps the latest.
	if err := s.WriteCheckpoint("job1", 60000, 222222, payload); err != nil {
		t.Fatal(err)
	}
	if instret, _, _, _ := s.ReadCheckpoint("job1"); instret != 60000 {
		t.Fatalf("overwrite kept stale checkpoint (instret %d)", instret)
	}
	if err := s.DeleteCheckpoint("job1"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.ReadCheckpoint("job1"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("deleted checkpoint read: %v", err)
	}
}

// TestDrop: a dropped job's files disappear and recovery does not
// resurrect it.
func TestDrop(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, nil)
	if err := s.LogSubmit("xxx", []byte(specA)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteResult("xxx", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDone("xxx"); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("xxx"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, jobs := open(t, dir, nil)
	if len(jobs) != 0 {
		t.Fatalf("dropped job resurrected: %+v", jobs)
	}
}

// corrupt mutates a file in place.
func corrupt(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCorruptionTable: every way a journal can be damaged —
// truncated tail, flipped payload byte, bad CRC, oversized frame, garbage
// header — must recover the good prefix (or nothing), quarantine the
// damage, and never fail Open. This is the recovery-hardening satellite's
// table test.
func TestJournalCorruptionTable(t *testing.T) {
	// seed writes two complete jobs and one pending, returning the journal.
	seed := func(t *testing.T, dir string) {
		s, _ := open(t, dir, nil)
		for i, id := range []string{"one", "two"} {
			if err := s.LogSubmit(id, []byte(specA)); err != nil {
				t.Fatal(err)
			}
			if err := s.WriteResult(id, []byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
				t.Fatal(err)
			}
			if err := s.LogDone(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.LogSubmit("three", []byte(specA)); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		// wantIDs is the minimum set of ids that must survive (orphaned
		// result adoption can add back "one"/"two" even when the journal is
		// wholly lost).
		wantIDs     []string
		wantPending []string // ids that must be pending after recovery
	}{
		{
			name:    "truncated tail",
			mut:     func(b []byte) []byte { return b[:len(b)-7] },
			wantIDs: []string{"one", "two"}, // the last record (three's submit) is torn
		},
		{
			name: "flipped payload byte in last frame",
			mut: func(b []byte) []byte {
				b[len(b)-3] ^= 0xff
				return b
			},
			wantIDs: []string{"one", "two"},
		},
		{
			name: "bad frame length",
			mut: func(b []byte) []byte {
				// Stamp an absurd length into the last frame's header. The
				// last record is small; find it by scanning from the front.
				off := 12
				for {
					ln := int(binary.LittleEndian.Uint32(b[off:]))
					if off+8+ln >= len(b) {
						break
					}
					off += 8 + ln
				}
				binary.LittleEndian.PutUint32(b[off:], 1<<30)
				return b
			},
			wantIDs: []string{"one", "two"},
		},
		{
			name:        "garbage header",
			mut:         func(b []byte) []byte { return append([]byte("NOTAJRNL"), b[8:]...) },
			wantIDs:     []string{"one", "two"}, // adopted from orphaned results
			wantPending: nil,                    // "three" is lost with the journal (no result file)
		},
		{
			name:    "empty file",
			mut:     func([]byte) []byte { return nil },
			wantIDs: []string{"one", "two"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seed(t, dir)
			corrupt(t, filepath.Join(dir, "journal.log"), tc.mut)
			s, jobs := open(t, dir, nil)
			got := map[string]string{}
			for _, j := range jobs {
				got[j.ID] = j.State
			}
			for _, id := range tc.wantIDs {
				if got[id] != StateDone {
					t.Errorf("job %s: state %q, want done (recovered %v)", id, got[id], got)
				}
			}
			for _, id := range tc.wantPending {
				if got[id] != StatePending {
					t.Errorf("job %s: state %q, want pending", id, got[id])
				}
			}
			if s.QuarantineCount() == 0 {
				t.Error("damage was not quarantined")
			}
			// The rewritten journal must recover identically on a third open.
			s.Close()
			_, jobs2 := open(t, dir, nil)
			got2 := map[string]string{}
			for _, j := range jobs2 {
				got2[j.ID] = j.State
			}
			for id, st := range got {
				if got2[id] != st {
					t.Errorf("compacted journal lost %s (%q -> %q)", id, st, got2[id])
				}
			}
		})
	}
}

// TestCheckpointCorruptionTable: a damaged checkpoint file must be
// quarantined and reported as not-exist — the job restarts from scratch,
// recovery never fails.
func TestCheckpointCorruptionTable(t *testing.T) {
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"bad magic", func(b []byte) []byte { copy(b, "XXXXXXXX"); return b }},
		{"bad version", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], 99); return b }},
		{"short file", func([]byte) []byte { return []byte("RC") }},
		{"valid frame, garbage codec payload", func(b []byte) []byte {
			// Re-frame garbage with a correct CRC so only the RCPNCKPT
			// decode can catch it.
			payload := []byte("not a checkpoint at all")
			out := append([]byte(nil), b[:28]...)
			out = append(out, 0, 0, 0, 0, 0, 0, 0, 0)
			binary.LittleEndian.PutUint32(out[28:], crc32IEEE(payload))
			binary.LittleEndian.PutUint32(out[32:], uint32(len(payload)))
			return append(out, payload...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := open(t, t.TempDir(), nil)
			if err := s.WriteCheckpoint("job", 100, 200, ckptBytes(t)); err != nil {
				t.Fatal(err)
			}
			corrupt(t, s.ckptPath("job"), tc.mut)
			_, _, _, err := s.ReadCheckpoint("job")
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("corrupt checkpoint read: err = %v, want ErrNotExist", err)
			}
			if s.QuarantineCount() != 1 {
				t.Fatalf("quarantine count = %d, want 1", s.QuarantineCount())
			}
			// A second read is a clean miss (no file, nothing new quarantined).
			if _, _, _, err := s.ReadCheckpoint("job"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("second read: %v", err)
			}
		})
	}
}

// TestCorruptResultDegradesToPending: a done job whose result file is
// damaged re-runs instead of serving garbage.
func TestCorruptResultDegradesToPending(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, nil)
	if err := s.LogSubmit("j", []byte(specA)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteResult("j", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDone("j"); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s.resultPath("j"), func(b []byte) []byte { return b[:3] })
	s.Close()

	_, jobs := open(t, dir, nil)
	if len(jobs) != 1 || jobs[0].State != StatePending || string(jobs[0].Spec) != specA {
		t.Fatalf("corrupt-result job not degraded to pending: %+v", jobs)
	}
}

// TestInjectedWriteFailures: every write site surfaces the injected fault
// as a plain error (degraded-mode fuel for the service layer), and the
// store remains usable afterwards.
func TestInjectedWriteFailures(t *testing.T) {
	inj := faultinj.New(
		faultinj.Rule{Site: faultinj.SiteJournalAppend, OnHit: 1, Action: faultinj.ActError},
		faultinj.Rule{Site: faultinj.SiteResultWrite, OnHit: 1, Action: faultinj.ActError},
		faultinj.Rule{Site: faultinj.SiteCkptWrite, OnHit: 1, Action: faultinj.ActError},
	)
	s, _ := open(t, t.TempDir(), inj)
	var f *faultinj.Fault
	if err := s.LogSubmit("a", []byte(specA)); !errors.As(err, &f) {
		t.Fatalf("journal fault not surfaced: %v", err)
	}
	if err := s.WriteResult("a", []byte(`{}`)); !errors.As(err, &f) {
		t.Fatalf("result fault not surfaced: %v", err)
	}
	if err := s.WriteCheckpoint("a", 1, 1, ckptBytes(t)); !errors.As(err, &f) {
		t.Fatalf("checkpoint fault not surfaced: %v", err)
	}
	// Rules were one-shot: the store works again.
	if err := s.LogSubmit("a", []byte(specA)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteResult("a", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
}

// crc32IEEE is a tiny local alias so the corruption table reads cleanly.
func crc32IEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}
