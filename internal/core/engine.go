package core

import (
	"fmt"
	"math/bits"
)

// The engine's cycle loop is event-driven: instead of sweeping every place in
// reverse topological order each cycle (the literal Fig. 8 loop, kept as the
// stepSweep ablation below), it processes only *active* places — places that
// hold at least one token whose residency delay has elapsed. Everything else
// is skipped at zero cost:
//
//   - empty places are never visited;
//   - places whose tokens are all still waiting out a delay are woken by a
//     per-cycle wakeup wheel: deliver() schedules the holding place on the
//     wheel slot of the token's readyAt cycle, so multi-cycle units (cache
//     misses, multiplier early termination) cost nothing while they wait;
//   - a place with a ready token that found no enabled transition (a stall)
//     stays active, so guards that depend on external state are re-evaluated
//     every cycle exactly as the full sweep would;
//   - two-list places with staged arrivals are queued for promotion at the
//     start of the next cycle, preserving their beginning-of-cycle
//     visibility semantics independently of when they next process tokens.
//
// The active set is a bitmask over reverse-topological positions: bit i of
// activeMask covers n.order[i]. Activation is one OR, deactivation is
// implicit (a place re-arms only by stalling or by a wakeup), and iterating
// set bits in ascending position visits active places in exactly the order
// the full sweep would — so the two schedulers are cycle-for-cycle,
// counter-for-counter identical; the golden-trace and ablation-equivalence
// tests pin this. The common case (residency delay 1, the one-stage-per-
// cycle pipeline step) bypasses the wheel entirely: deliver sets the
// destination's bit in nextMask, which becomes activeMask at the next Step.

// wheelSpan is the wakeup-wheel horizon in cycles. Token delays beyond it
// (rare: deeper than any modeled miss latency) fall back to the farWake map.
const wheelSpan = 256

const wheelMask = wheelSpan - 1

// Step advances the model by one clock cycle:
//
//	promote staged arrivals queued by last cycle's deliveries;
//	wake places whose tokens become ready this cycle;
//	process the active places in reverse topological order;
//	execute the instruction-independent (token-generating) sub-net;
//	increment the cycle count.
func (n *Net) Step() {
	if !n.built {
		panic("core: Step before Build")
	}
	if n.sweep {
		n.stepSweep()
		return
	}
	if len(n.promoteQ) > 0 {
		for _, p := range n.promoteQ {
			p.inPromoteQ = false
			p.promote()
		}
		n.promoteQ = n.promoteQ[:0]
	}
	// This cycle's active set is everything armed for it last cycle
	// (nextMask) plus the wakeups scheduled for it on the wheel.
	n.activeMask, n.nextMask = n.nextMask, n.activeMask
	next := n.nextMask
	for i := range next {
		next[i] = 0
	}
	slot := n.cycle & wheelMask
	if wb := n.wheel[slot]; len(wb) > 0 {
		for _, pos := range wb {
			n.activeMask[pos>>6] |= 1 << (uint(pos) & 63)
		}
		n.wheel[slot] = wb[:0]
	}
	if len(n.farWake) > 0 {
		if list, ok := n.farWake[n.cycle]; ok {
			for _, pos := range list {
				n.activeMask[pos>>6] |= 1 << (uint(pos) & 63)
			}
			delete(n.farWake, n.cycle)
		}
	}
	// Deliveries during processing only ever target future cycles (residency
	// delays are >= 1), so activeMask is fixed for the duration of the loop:
	// process() arms nextMask, never activeMask. Ascending bit order is
	// ascending reverse-topological position.
	for w, word := range n.activeMask {
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			if n.process(n.order[base+b]) {
				next[w] |= 1 << uint(b) // stalled: re-evaluate next cycle
			}
		}
	}
	for _, s := range n.sources {
		n.fireSource(s)
	}
	if n.prof != nil {
		n.profileCycle()
	}
	n.cycle++
}

// stepSweep is the pre-event-driven loop body of Fig. 8, retained as the
// activeList=off ablation: promote every two-list place, then visit every
// place in reverse topological order whether or not it holds work.
func (n *Net) stepSweep() {
	for _, p := range n.twoList {
		p.promote()
	}
	for _, p := range n.order {
		n.process(p)
	}
	for _, s := range n.sources {
		n.fireSource(s)
	}
	if n.prof != nil {
		n.profileCycle()
	}
	n.cycle++
}

// SetFullSweep toggles the ablation mode in which Step visits every place
// every cycle instead of only the active ones. It must be selected before
// the first Step; the two modes produce bit-identical simulations.
func (n *Net) SetFullSweep(on bool) {
	if n.cycle != 0 {
		panic("core: SetFullSweep after simulation started")
	}
	n.sweep = on
}

// scheduleWake arranges for the place at reverse-topological position pos to
// be processed at cycle `at` (the readyAt of a token just delivered into
// it). Duplicate wakeups are harmless: arming the active bit is idempotent.
func (n *Net) scheduleWake(pos int32, at int64) {
	if at-n.cycle < wheelSpan {
		slot := at & wheelMask
		n.wheel[slot] = append(n.wheel[slot], pos)
		return
	}
	if n.farWake == nil {
		n.farWake = make(map[int64][]int32)
	}
	n.farWake[at] = append(n.farWake[at], pos)
}

// Run steps until stop returns true or the cycle budget is exhausted. The
// semantics are pinned (and covered by a table test): stop is evaluated
// before every cycle, so a stop condition that already holds runs zero
// cycles; otherwise Run executes at most maxCycles cycles (<= 0 = unlimited)
// and returns a cycle-limit error if stop still does not hold after the
// maxCycles-th cycle. In both cases the returned count is the number of
// cycles executed by this call.
func (n *Net) Run(stop func() bool, maxCycles int64) (int64, error) {
	start := n.cycle
	for !stop() {
		if maxCycles > 0 && n.cycle-start >= maxCycles {
			return n.cycle - start, fmt.Errorf("core: cycle limit %d exceeded", maxCycles)
		}
		n.Step()
	}
	return n.cycle - start, nil
}

// promote makes staged arrivals of a two-list place visible.
func (p *Place) promote() {
	if len(p.staged) == 0 {
		return
	}
	for _, tok := range p.staged {
		tok.staged = false
	}
	p.tokens = append(p.tokens, p.staged...)
	p.meta = append(p.meta, p.stagedMeta...)
	p.staged = p.staged[:0]
	p.stagedMeta = p.stagedMeta[:0]
}

// process implements Fig. 7: for every ready instruction token in the place,
// in arrival order, try the statically sorted transitions for its class and
// fire the first enabled one. It reports whether the place must stay active
// next cycle — true exactly when a ready token stalled (its guards need
// re-evaluation every cycle); tokens still inside a residency delay are
// covered by the wakeup wheel instead.
func (n *Net) process(p *Place) (keepActive bool) {
	if p.End {
		return false
	}
	now := n.cycle
	for i := 0; i < len(p.tokens); {
		// Readiness and class come from the dense mirror: tokens still
		// waiting out a residency delay are skipped, and the candidate list
		// is looked up, without touching the Token struct at all (the
		// struct-of-arrays fast path). A movedAt==now check is unnecessary:
		// every just-moved token is delivered with readyAt ≥ now+1 or has
		// retired out of the list, so the ready test already excludes it.
		m := p.meta[i]
		if m.ready > now {
			i++
			continue
		}
		cand := p.out[m.cls]
		tok := p.tokens[i]
		fired := false
		if n.dynamicSearch {
			cand = n.candidates(p, tok)
		}
		for _, t := range cand {
			if n.enabled(t, tok) {
				n.fire(t, tok, i)
				fired = true
				break
			}
		}
		if !fired {
			n.stalls[p.id]++
			keepActive = true
			i++
		}
		// On fire the token was removed from index i; the next token is now
		// at i, so i stays put.
	}
	return keepActive
}

// candidates returns the transitions to try for tok at p in priority order:
// the precomputed sorted_transitions list normally, or — in the ablation's
// dynamic-search mode — a per-call scan and sort over all transitions, the
// overhead a generic Petri-net simulator pays every cycle.
func (n *Net) candidates(p *Place, tok *Token) []*Transition {
	if !n.dynamicSearch {
		return n.sorted[p.id][tok.Class]
	}
	cand := n.dynScratch[:0]
	for _, t := range n.transitions {
		if t.From == p && (t.Class == AnyClass || t.Class == tok.Class) {
			cand = append(cand, t)
		}
	}
	// Insertion sort by priority (stable, small lists).
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j].Priority < cand[j-1].Priority; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	n.dynScratch = cand
	return cand
}

// enabled checks a transition against one candidate token: output-stage
// capacity (including reservation-token outputs), reservation-token inputs,
// then the guard.
func (n *Net) enabled(t *Transition, tok *Token) bool {
	if t.needCap && t.capOf.occupancy >= t.capOf.Capacity {
		return false
	}
	if t.hasRes {
		for _, r := range t.ResIn {
			if r.reservations < 1 {
				return false
			}
		}
		for _, r := range t.ResOut {
			// A reservation output to the same stage the token is leaving
			// can reuse the freed slot; otherwise it needs spare capacity.
			need := 1
			if t.From != nil && r.Stage == t.From.Stage {
				need = 0
			}
			if r.Stage.Free() < need {
				return false
			}
		}
	}
	if t.Guard != nil && !t.Guard(tok) {
		return false
	}
	return true
}

// fire executes the transition for tok, currently at index idx of t.From:
// remove the token from its input place, consume reservation inputs, run the
// action, emit reservation outputs, and deliver the token to the output
// place (or retire it at an end place).
func (n *Net) fire(t *Transition, tok *Token, idx int) {
	from := t.From
	if last := len(from.tokens) - 1; idx < last {
		copy(from.tokens[idx:], from.tokens[idx+1:])
		copy(from.meta[idx:], from.meta[idx+1:])
		from.tokens = from.tokens[:last]
		from.meta = from.meta[:last]
	} else { // common case: only/last token, no copy
		from.tokens = from.tokens[:last]
		from.meta = from.meta[:last]
	}
	from.Stage.occupancy--
	tok.place = nil

	if t.hasRes {
		for _, r := range t.ResIn {
			r.reservations--
			r.Stage.occupancy--
		}
	}

	if t.Action != nil {
		t.Action(tok)
	}
	t.Fires++

	if t.hasRes {
		for _, r := range t.ResOut {
			r.reservations++
			r.Stage.occupancy++
		}
	}

	tok.movedAt = n.cycle
	if n.prof != nil {
		n.profFired[from.Stage.id] = n.cycle
	}
	if n.tracer != nil {
		n.tracer.Fire(n.cycle, tok.seq, int32(from.id), int32(t.id))
	}
	if t.To.End {
		n.RetiredCount++
		if n.tracer != nil {
			n.tracer.Retire(n.cycle, tok.seq, int32(from.id))
		}
		if n.retire != nil {
			n.retire(tok)
		}
		return
	}
	n.deliver(tok, t.To, t.Delay)
	if n.tracer != nil {
		n.tracer.Move(n.cycle, tok.seq, int32(t.To.id), int32(from.id))
	}
}

// deliver places tok into p, computing its residency delay: the token delay
// (if set) overrides the place delay; the transition delay adds. In
// event-driven mode it also schedules the wakeup that will process the token
// when the delay elapses, and queues two-list promotion for next cycle.
func (n *Net) deliver(tok *Token, p *Place, transDelay int64) {
	d := p.Delay
	if tok.Delay > 0 {
		d = tok.Delay
		tok.Delay = 0
	}
	d += transDelay
	if d < 1 {
		d = 1
	}
	tok.readyAt = n.cycle + d
	tok.place = p
	p.Stage.occupancy++
	if p.TwoList {
		tok.staged = true
		p.staged = append(p.staged, tok)
		p.stagedMeta = append(p.stagedMeta, tokMeta{tok.readyAt, tok.Class})
		if !n.sweep && !p.inPromoteQ {
			p.inPromoteQ = true
			n.promoteQ = append(n.promoteQ, p)
		}
	} else {
		p.tokens = append(p.tokens, tok)
		p.meta = append(p.meta, tokMeta{tok.readyAt, tok.Class})
	}
	if !n.sweep && !p.End {
		if tok.readyAt == n.cycle+1 {
			// The one-stage-per-cycle fast path: arm the place directly for
			// the next cycle, skipping the wheel.
			n.nextMask[p.pos>>6] |= 1 << (uint(p.pos) & 63)
		} else {
			n.scheduleWake(int32(p.pos), tok.readyAt)
		}
	}
}

// fireSource runs one instruction-independent source transition.
func (n *Net) fireSource(s *Source) {
	if !s.To.End && s.To.Stage.Free() < 1 {
		s.Stalls++
		return
	}
	if s.Guard != nil && !s.Guard() {
		s.Stalls++
		return
	}
	tok := s.Fire()
	if tok == nil {
		return
	}
	if tok.Class < 0 || int(tok.Class) >= n.numClasses {
		panic(fmt.Sprintf("core: source %s produced token with bad class %d", s.Name, tok.Class))
	}
	s.Fires++
	tok.movedAt = n.cycle
	if n.tracer != nil {
		n.tokSeq++
		tok.seq = n.tokSeq
		n.tracer.Birth(n.cycle, tok.seq, int32(s.To.id))
	}
	n.deliver(tok, s.To, 0)
}

// Inject adds a token produced inside a transition action (micro-operation
// generation: "any sub-net can generate an instruction token and send it to
// its corresponding sub-net"). It reports false, without side effects, when
// the destination stage is full; actions should guard the capacity via the
// transition's Guard or retry next cycle.
func (n *Net) Inject(tok *Token, p *Place) bool {
	if !p.End && p.Stage.Free() < 1 {
		return false
	}
	if n.tracer != nil && tok.seq == 0 {
		n.tokSeq++
		tok.seq = n.tokSeq
		n.tracer.Birth(n.cycle, tok.seq, int32(p.id))
	}
	if p.End {
		n.RetiredCount++
		if n.tracer != nil {
			n.tracer.Retire(n.cycle, tok.seq, int32(p.id))
		}
		if n.retire != nil {
			n.retire(tok)
		}
		return true
	}
	tok.movedAt = n.cycle
	n.deliver(tok, p, 0)
	return true
}

// RemoveToken squashes a token wherever it currently is (pipeline flush on
// a mispredicted branch). It reports whether the token was found. The
// holding place may stay on the active list or wakeup wheel; a spurious
// visit of a now-empty place is a no-op and it deactivates again.
func (n *Net) RemoveToken(tok *Token) bool {
	p := tok.place
	if p == nil {
		return false
	}
	for i, t := range p.tokens {
		if t != tok {
			continue
		}
		copy(p.tokens[i:], p.tokens[i+1:])
		copy(p.meta[i:], p.meta[i+1:])
		p.tokens = p.tokens[:len(p.tokens)-1]
		p.meta = p.meta[:len(p.meta)-1]
		p.Stage.occupancy--
		tok.place = nil
		tok.staged = false
		return true
	}
	for i, t := range p.staged {
		if t != tok {
			continue
		}
		copy(p.staged[i:], p.staged[i+1:])
		copy(p.stagedMeta[i:], p.stagedMeta[i+1:])
		p.staged = p.staged[:len(p.staged)-1]
		p.stagedMeta = p.stagedMeta[:len(p.stagedMeta)-1]
		p.Stage.occupancy--
		tok.place = nil
		tok.staged = false
		return true
	}
	return false
}

// DrainReservations removes all reservation tokens from a place (flush
// support).
func (p *Place) DrainReservations() {
	p.Stage.occupancy -= p.reservations
	p.reservations = 0
}

// NewToken returns a fresh instruction token of the given class and payload,
// heap-allocated outside any arena. Hot paths should prefer a TokenArena or
// TokenPool; NewToken remains for one-off tokens and external callers.
func NewToken(class ClassID, data any) *Token {
	return &Token{Class: class, Data: data, movedAt: -1, readyAt: -1, extState: -1, idx: -1}
}

// Recycle prepares a retired token for reuse by the simulator's token cache.
// The arena slot index survives recycling — it is the token's identity in
// the pool index space, not per-flight state.
func (t *Token) Recycle(class ClassID, data any) {
	t.Class = class
	t.Data = data
	t.Delay = 0
	t.place = nil
	t.readyAt = -1
	t.movedAt = -1
	t.staged = false
	t.pooled = false
	t.seq = 0
	t.extState = -1
}

// TokenPool is a free list of instruction tokens backed by a TokenArena:
// retire callbacks put tokens back, sources get recycled ones out, and a
// free-list miss allocates from the arena's contiguous blocks — so
// steady-state simulation performs no token allocation at all and the
// in-flight set stays cache-dense. The zero value is ready to use. Models
// that cache richer per-instruction state (like machine.Inst) keep their
// own pools; TokenPool serves bare-token models — the engine benchmarks,
// the examples and the CPN comparison harness.
type TokenPool struct {
	arena TokenArena
	free  []*Token
}

// Get returns a token of the given class and payload, reusing a recycled
// one when available and arena-allocating otherwise.
func (tp *TokenPool) Get(class ClassID, data any) *Token {
	if k := len(tp.free); k > 0 {
		t := tp.free[k-1]
		tp.free = tp.free[:k-1]
		t.Recycle(class, data)
		return t
	}
	return tp.arena.Get(class, data)
}

// Put recycles a token into the pool. The caller must no longer reference
// it; the token's payload is cleared so pooled tokens do not pin data.
// Putting the same token twice used to corrupt the free list silently (the
// token would be handed out to two owners); now the duplicate is detected
// through the pooled flag — race and rcpn_tokendebug builds panic at the
// offending call site, release builds drop the duplicate and keep the free
// list intact.
func (tp *TokenPool) Put(t *Token) {
	if t.pooled {
		if poolDebug {
			panic("core: TokenPool.Put called twice for the same token")
		}
		return
	}
	t.Data = nil
	t.pooled = true
	tp.free = append(tp.free, t)
}

// Len returns the number of pooled tokens (observability for tests).
func (tp *TokenPool) Len() int { return len(tp.free) }

// Reset bulk-frees the pool between jobs: the free list empties and the
// arena reclaims every slot while keeping its blocks, so the next job
// allocates nothing. Tokens obtained from this pool must no longer be live.
func (tp *TokenPool) Reset() {
	tp.free = tp.free[:0]
	tp.arena.Reset()
}
