// Package stats collects and renders the measurements the experiment
// harness reports: simulated cycles, retired instructions, CPI, host wall
// time and simulation throughput (million cycles per second — the unit of
// the paper's Figure 10).
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Run is one (simulator, workload) measurement.
type Run struct {
	Simulator string
	Workload  string
	Cycles    int64
	Instret   uint64
	Wall      time.Duration
}

// CPI returns cycles per instruction.
func (r Run) CPI() float64 {
	if r.Instret == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instret)
}

// MCyclesPerSec returns simulation throughput in million cycles per second.
func (r Run) MCyclesPerSec() float64 {
	s := r.Wall.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Cycles) / s / 1e6
}

// Progress is a live snapshot of a simulation still in flight: the
// cumulative counters so far plus the wall time spent producing them. A Run
// describes a finished measurement; Progress is what a long-running job
// reports mid-flight (per-chunk callbacks, the service's SSE feed).
type Progress struct {
	Cycles  int64         `json:"cycles"`
	Instret uint64        `json:"instructions"`
	Wall    time.Duration `json:"-"`
}

// CPI returns cycles per instruction so far.
func (p Progress) CPI() float64 {
	if p.Instret == 0 {
		return 0
	}
	return float64(p.Cycles) / float64(p.Instret)
}

// MCyclesPerSec returns throughput so far in million cycles per second.
func (p Progress) MCyclesPerSec() float64 {
	s := p.Wall.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(p.Cycles) / s / 1e6
}

// MInstrPerSec returns throughput so far in million instructions per
// second — the speed metric for purely functional simulators, which report
// zero cycles.
func (p Progress) MInstrPerSec() float64 {
	s := p.Wall.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(p.Instret) / s / 1e6
}

// Run freezes the snapshot into a finished measurement.
func (p Progress) Run(simulator, workload string) Run {
	return Run{Simulator: simulator, Workload: workload,
		Cycles: p.Cycles, Instret: p.Instret, Wall: p.Wall}
}

// Set accumulates runs and renders figure-style tables.
type Set struct {
	Runs []Run
}

// Add appends a run.
func (s *Set) Add(r Run) { s.Runs = append(s.Runs, r) }

// Simulators returns the distinct simulator names in first-seen order.
func (s *Set) Simulators() []string { return s.distinct(func(r Run) string { return r.Simulator }) }

// Workloads returns the distinct workload names in first-seen order.
func (s *Set) Workloads() []string { return s.distinct(func(r Run) string { return r.Workload }) }

func (s *Set) distinct(key func(Run) string) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range s.Runs {
		k := key(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Get returns the run for (sim, workload) and whether it exists.
func (s *Set) Get(sim, workload string) (Run, bool) {
	for _, r := range s.Runs {
		if r.Simulator == sim && r.Workload == workload {
			return r, true
		}
	}
	return Run{}, false
}

// Metric selects what a table cell shows.
type Metric func(Run) float64

// MetricMCPS is simulation speed (Figure 10).
func MetricMCPS(r Run) float64 { return r.MCyclesPerSec() }

// MetricCPI is clocks per instruction (Figure 11).
func MetricCPI(r Run) float64 { return r.CPI() }

// Table renders workloads as rows and simulators as columns, with a
// geometric-mean-free arithmetic Average row like the paper's figures, in
// aligned plain text.
func (s *Set) Table(title, unit string, metric Metric, digits int) string {
	sims := s.Simulators()
	works := s.Workloads()
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, unit)

	width := 12
	for _, sim := range sims {
		if len(sim)+2 > width {
			width = len(sim) + 2
		}
	}
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, sim := range sims {
		fmt.Fprintf(&b, "%*s", width, sim)
	}
	b.WriteString("\n")

	sums := make([]float64, len(sims))
	counts := make([]int, len(sims))
	for _, w := range works {
		fmt.Fprintf(&b, "%-12s", w)
		for i, sim := range sims {
			if r, ok := s.Get(sim, w); ok {
				v := metric(r)
				sums[i] += v
				counts[i]++
				fmt.Fprintf(&b, "%*.*f", width, digits, v)
			} else {
				fmt.Fprintf(&b, "%*s", width, "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-12s", "Average")
	for i := range sims {
		if counts[i] > 0 {
			fmt.Fprintf(&b, "%*.*f", width, digits, sums[i]/float64(counts[i]))
		} else {
			fmt.Fprintf(&b, "%*s", width, "-")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Average returns the arithmetic mean of metric over the simulator's runs.
func (s *Set) Average(sim string, metric Metric) float64 {
	sum, n := 0.0, 0
	for _, r := range s.Runs {
		if r.Simulator == sim {
			sum += metric(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CSV renders all runs as CSV (one row per run) for external plotting.
func (s *Set) CSV() string {
	var b strings.Builder
	b.WriteString("simulator,workload,cycles,instructions,cpi,wall_seconds,mcycles_per_sec\n")
	runs := append([]Run(nil), s.Runs...)
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].Simulator != runs[j].Simulator {
			return runs[i].Simulator < runs[j].Simulator
		}
		return runs[i].Workload < runs[j].Workload
	})
	for _, r := range runs {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%.4f,%.4f,%.3f\n",
			r.Simulator, r.Workload, r.Cycles, r.Instret, r.CPI(),
			r.Wall.Seconds(), r.MCyclesPerSec())
	}
	return b.String()
}
