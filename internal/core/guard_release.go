//go:build !race && !rcpn_tokendebug

package core

// poolDebug is off in release builds: a double Put is dropped silently
// (the free list stays intact) instead of panicking a serving process.
const poolDebug = false
