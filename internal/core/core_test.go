package core

import (
	"strings"
	"testing"
)

// linearNet builds a 3-place linear pipeline L1 -> L2 -> end for one class,
// with a source that produces up to n tokens.
func linearNet(t *testing.T, produce int) (*Net, *Place, *Place, *[]int64) {
	t.Helper()
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	end := n.EndPlace("end")
	n.AddTransition(&Transition{Name: "U2", Class: 0, From: l1, To: l2})
	n.AddTransition(&Transition{Name: "U3", Class: 0, From: l2, To: end})
	made := 0
	n.AddSource(&Source{
		Name: "F",
		To:   l1,
		Fire: func() *Token {
			if made >= produce {
				return nil
			}
			made++
			return NewToken(0, made)
		},
	})
	var retired []int64
	n.OnRetire(func(tok *Token) { retired = append(retired, n.CycleCount()) })
	if err := n.Build(); err != nil {
		t.Fatal(err)
	}
	return n, l1, l2, &retired
}

func TestLinearPipelineFlow(t *testing.T) {
	n, _, _, retired := linearNet(t, 3)
	// Token k is produced at cycle k-1, moves L1->L2 at k, L2->end at k+1.
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if n.RetiredCount != 3 {
		t.Fatalf("retired %d tokens", n.RetiredCount)
	}
	// With full pipelining, retirements happen on consecutive cycles 2,3,4.
	want := []int64{2, 3, 4}
	for i, w := range want {
		if (*retired)[i] != w {
			t.Errorf("token %d retired at cycle %d, want %d", i+1, (*retired)[i], w)
		}
	}
}

func TestSourceStallsOnFullStage(t *testing.T) {
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	end := n.EndPlace("end")
	blocked := true
	n.AddTransition(&Transition{
		Name: "U", Class: 0, From: l1, To: end,
		Guard: func(*Token) bool { return !blocked },
	})
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token { return NewToken(0, nil) }})
	n.MustBuild()
	for i := 0; i < 5; i++ {
		n.Step()
	}
	// One token entered L1 on the first cycle; the source stalled afterward.
	if got := n.Sources()[0].Fires; got != 1 {
		t.Errorf("source fired %d times, want 1", got)
	}
	if got := n.Sources()[0].Stalls; got != 4 {
		t.Errorf("source stalled %d times, want 4", got)
	}
	if l1.Stalls() != 4 {
		t.Errorf("L1 recorded %d stalls, want 4", l1.Stalls())
	}
	blocked = false
	n.Step()
	if n.RetiredCount != 1 {
		t.Errorf("token did not retire after unblocking")
	}
}

func TestStageCapacityShared(t *testing.T) {
	// Two places assigned to one stage of capacity 2 share it.
	n := NewNet(2)
	st := n.Stage("RS", 2)
	pa := n.Place("RS.a", st)
	pb := n.Place("RS.b", st)
	end := n.EndPlace("end")
	n.AddTransition(&Transition{Name: "Ta", Class: 0, From: pa, To: end,
		Guard: func(*Token) bool { return false }})
	n.AddTransition(&Transition{Name: "Tb", Class: 1, From: pb, To: end,
		Guard: func(*Token) bool { return false }})
	k := 0
	n.AddSource(&Source{Name: "Fa", To: pa, Fire: func() *Token { k++; return NewToken(0, k) }})
	n.AddSource(&Source{Name: "Fb", To: pb, Fire: func() *Token { k++; return NewToken(1, k) }})
	n.MustBuild()
	for i := 0; i < 4; i++ {
		n.Step()
	}
	if st.Occupancy() != 2 {
		t.Errorf("stage occupancy = %d, want 2", st.Occupancy())
	}
	if len(pa.Tokens())+len(pb.Tokens()) != 2 {
		t.Errorf("places hold %d+%d tokens", len(pa.Tokens()), len(pb.Tokens()))
	}
}

func TestArcPriorities(t *testing.T) {
	// Two output transitions; the lower-priority-number one wins while its
	// guard holds, the other is the fallback.
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	end := n.EndPlace("end")
	preferOK := true
	var path []string
	n.AddTransition(&Transition{
		Name: "fallback", Class: 0, From: l1, To: end, Priority: 1,
		Action: func(*Token) { path = append(path, "fallback") },
	})
	n.AddTransition(&Transition{
		Name: "prefer", Class: 0, From: l1, To: end, Priority: 0,
		Guard:  func(*Token) bool { return preferOK },
		Action: func(*Token) { path = append(path, "prefer") },
	})
	made := 0
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token {
		if made >= 2 {
			return nil
		}
		made++
		return NewToken(0, made)
	}})
	n.MustBuild()
	n.Step() // token 1 into L1
	n.Step() // token 1 takes "prefer"; token 2 into L1
	preferOK = false
	n.Step() // token 2 takes "fallback"
	if len(path) != 2 || path[0] != "prefer" || path[1] != "fallback" {
		t.Fatalf("path = %v", path)
	}
}

func TestReservationTokensStallSource(t *testing.T) {
	// Branch-style stall: issuing a token from L1 leaves a reservation token
	// in L1 that blocks the source; the next transition consumes it.
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	end := n.EndPlace("end")
	n.AddTransition(&Transition{
		Name: "D", Class: 0, From: l1, To: l2,
		ResOut: []*Place{l1}, // occupy L1 while the branch resolves
	})
	n.AddTransition(&Transition{
		Name: "B", Class: 0, From: l2, To: end,
		ResIn: []*Place{l1}, // un-stall fetch
	})
	made := 0
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token {
		made++
		return NewToken(0, made)
	}})
	n.MustBuild()

	n.Step() // c0: fetch token1 -> L1
	if made != 1 {
		t.Fatalf("cycle0: made=%d", made)
	}
	n.Step() // c1: D fires (res token into L1); fetch blocked by reservation
	if made != 1 {
		t.Fatalf("cycle1: fetch was not stalled (made=%d)", made)
	}
	if l1.Reservations() != 1 {
		t.Fatalf("cycle1: reservations=%d", l1.Reservations())
	}
	n.Step() // c2: B consumes reservation and retires; fetch resumes
	if n.RetiredCount != 1 {
		t.Fatalf("cycle2: retired=%d", n.RetiredCount)
	}
	if l1.Reservations() != 0 {
		t.Fatalf("cycle2: reservations=%d", l1.Reservations())
	}
	if made != 2 {
		t.Fatalf("cycle2: fetch did not resume (made=%d)", made)
	}
}

func TestTokenDelayOverridesPlaceDelay(t *testing.T) {
	// A transition sets tok.Delay (cache miss); the token then waits that
	// long in the next place.
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	end := n.EndPlace("end")
	n.AddTransition(&Transition{
		Name: "M", Class: 0, From: l1, To: l2,
		Action: func(tok *Token) { tok.Delay = 5 },
	})
	n.AddTransition(&Transition{Name: "W", Class: 0, From: l2, To: end})
	sent := false
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token {
		if sent {
			return nil
		}
		sent = true
		return NewToken(0, nil)
	}})
	var retireCycle int64 = -1
	n.OnRetire(func(*Token) { retireCycle = n.CycleCount() })
	n.MustBuild()
	for i := 0; i < 12; i++ {
		n.Step()
	}
	// Fetch at c0, M at c1 (delay 5 -> ready at c6), W at c6.
	if retireCycle != 6 {
		t.Fatalf("retired at cycle %d, want 6", retireCycle)
	}
}

func TestPlaceAndTransitionDelays(t *testing.T) {
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	l2.Delay = 3 // multi-cycle unit
	end := n.EndPlace("end")
	n.AddTransition(&Transition{Name: "E", Class: 0, From: l1, To: l2, Delay: 2})
	n.AddTransition(&Transition{Name: "W", Class: 0, From: l2, To: end})
	sent := false
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token {
		if sent {
			return nil
		}
		sent = true
		return NewToken(0, nil)
	}})
	var retireCycle int64 = -1
	n.OnRetire(func(*Token) { retireCycle = n.CycleCount() })
	n.MustBuild()
	for i := 0; i < 12; i++ {
		n.Step()
	}
	// Fetch c0; E at c1 with place delay 3 + transition delay 2 -> ready c6.
	if retireCycle != 6 {
		t.Fatalf("retired at cycle %d, want 6", retireCycle)
	}
}

func TestTwoListAutoDetection(t *testing.T) {
	// A transition out of L1 reads L3 through a feedback query. L3 is
	// processed before L1 (reverse topo order), so it must be two-list.
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	l3 := n.Place("L3", n.Stage("L3", 1))
	end := n.EndPlace("end")
	n.AddTransition(&Transition{Name: "D", Class: 0, From: l1, To: l2, Reads: []*Place{l3}})
	n.AddTransition(&Transition{Name: "E", Class: 0, From: l2, To: l3})
	n.AddTransition(&Transition{Name: "W", Class: 0, From: l3, To: end})
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token { return nil }})
	n.MustBuild()
	if !l3.TwoList {
		t.Error("L3 should be two-list")
	}
	if l1.TwoList || l2.TwoList {
		t.Error("L1/L2 should not be two-list")
	}
	if len(n.TwoListPlaces()) != 1 {
		t.Errorf("TwoListPlaces = %d", len(n.TwoListPlaces()))
	}
}

func TestTwoListVisibilitySemantics(t *testing.T) {
	// A token arriving into a two-list place this cycle must not be visible
	// to InState queries until the next cycle.
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 2))
	l2 := n.Place("L2", n.Stage("L2", 1))
	l2.TwoList = true
	end := n.EndPlace("end")
	n.AddTransition(&Transition{Name: "T", Class: 0, From: l1, To: l2})
	n.AddTransition(&Transition{Name: "W", Class: 0, From: l2, To: end})
	tok := NewToken(0, nil)
	sent := false
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token {
		if sent {
			return nil
		}
		sent = true
		return tok
	}})
	n.MustBuild()
	n.Step() // c0: token into L1
	if !tok.InState(l1.ID()) {
		t.Fatal("token should be visible in L1")
	}
	n.Step() // c1: T moved token into L2's staging buffer
	if tok.InState(l2.ID()) {
		t.Fatal("staged token must not be visible in L2 yet")
	}
	if tok.Place() != l2 {
		t.Fatal("token should nominally be at L2")
	}
	n.Step() // c2: promoted at cycle start, then W consumed it
	if n.RetiredCount != 1 {
		t.Fatalf("retired=%d", n.RetiredCount)
	}
}

func TestStayTransitionSelfLoop(t *testing.T) {
	// From == To models a token staying in a stage while emitting work
	// (multi-cycle LDM). It must not deadlock capacity-1 stages.
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	end := n.EndPlace("end")
	count := 0
	n.AddTransition(&Transition{
		Name: "stay", Class: 0, From: l1, To: l1, Priority: 0,
		Guard:  func(tok *Token) bool { return count < 3 },
		Action: func(tok *Token) { count++ },
	})
	n.AddTransition(&Transition{Name: "done", Class: 0, From: l1, To: end, Priority: 1})
	sent := false
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token {
		if sent {
			return nil
		}
		sent = true
		return NewToken(0, nil)
	}})
	n.MustBuild()
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if count != 3 {
		t.Errorf("stay fired %d times, want 3", count)
	}
	if n.RetiredCount != 1 {
		t.Errorf("retired=%d", n.RetiredCount)
	}
}

func TestCycleDetection(t *testing.T) {
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	n.AddTransition(&Transition{Name: "A", Class: 0, From: l1, To: l2})
	n.AddTransition(&Transition{Name: "B", Class: 0, From: l2, To: l1})
	err := n.Build()
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestReverseTopologicalOrder(t *testing.T) {
	n, l1, l2, _ := linearNet(t, 0)
	pos := map[string]int{}
	for i, p := range n.Order() {
		pos[p.Name] = i
	}
	if !(pos["end"] < pos["L2"] && pos["L2"] < pos["L1"]) {
		t.Fatalf("order: %v", pos)
	}
	_ = l1
	_ = l2
}

func TestSortedTransitionsTable(t *testing.T) {
	// AnyClass transitions appear in every class's list at their priority.
	n := NewNet(2)
	l1 := n.Place("L1", n.Stage("L1", 1))
	end := n.EndPlace("end")
	tAny := n.AddTransition(&Transition{Name: "any", Class: AnyClass, From: l1, To: end, Priority: 1})
	t0 := n.AddTransition(&Transition{Name: "c0", Class: 0, From: l1, To: end, Priority: 0})
	t1 := n.AddTransition(&Transition{Name: "c1", Class: 1, From: l1, To: end, Priority: 2})
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token { return nil }})
	n.MustBuild()
	got0 := n.SortedTransitions(l1, 0)
	if len(got0) != 2 || got0[0] != t0 || got0[1] != tAny {
		t.Errorf("class0 list wrong: %v", names(got0))
	}
	got1 := n.SortedTransitions(l1, 1)
	if len(got1) != 2 || got1[0] != tAny || got1[1] != t1 {
		t.Errorf("class1 list wrong: %v", names(got1))
	}
}

func names(ts []*Transition) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func TestInjectRespectsCapacity(t *testing.T) {
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	n.EndPlace("end")
	n.AddTransition(&Transition{Name: "hold", Class: 0, From: l1, To: l1,
		Guard: func(*Token) bool { return false }})
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token { return nil }})
	n.MustBuild()
	if !n.Inject(NewToken(0, nil), l1) {
		t.Fatal("first inject should succeed")
	}
	if n.Inject(NewToken(0, nil), l1) {
		t.Fatal("second inject should fail on full stage")
	}
}

func TestRemoveToken(t *testing.T) {
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 2))
	n.EndPlace("end")
	n.AddTransition(&Transition{Name: "hold", Class: 0, From: l1, To: l1,
		Guard: func(*Token) bool { return false }})
	n.AddSource(&Source{Name: "F", To: l1, Fire: func() *Token { return nil }})
	n.MustBuild()
	a := NewToken(0, "a")
	b := NewToken(0, "b")
	n.Inject(a, l1)
	n.Inject(b, l1)
	if !n.RemoveToken(a) {
		t.Fatal("remove a")
	}
	if n.RemoveToken(a) {
		t.Fatal("double remove should fail")
	}
	if l1.Stage.Occupancy() != 1 || len(l1.Tokens()) != 1 || l1.Tokens()[0] != b {
		t.Fatalf("state after remove: occ=%d tokens=%d", l1.Stage.Occupancy(), len(l1.Tokens()))
	}
}

func TestTokenRecycle(t *testing.T) {
	tok := NewToken(0, "x")
	tok.Delay = 9
	tok.Recycle(0, "y")
	if tok.Delay != 0 || tok.Data != "y" || tok.Place() != nil {
		t.Fatalf("recycle left state: %+v", tok)
	}
}

func TestRunStopsAndLimits(t *testing.T) {
	n, _, _, _ := linearNet(t, 2)
	cycles, err := n.Run(func() bool { return n.RetiredCount == 2 }, 100)
	if err != nil || cycles == 0 {
		t.Fatalf("run: cycles=%d err=%v", cycles, err)
	}
	n2, _, _, _ := linearNet(t, 0)
	if _, err := n2.Run(func() bool { return false }, 10); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}

func TestDotOutput(t *testing.T) {
	n, _, _, _ := linearNet(t, 0)
	dot := n.Dot([]string{"ALU"})
	for _, want := range []string{"digraph RCPN", "L1", "L2", "end", "U2", "U3", "cluster"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	n := NewNet(1)
	l1 := n.Place("L1", n.Stage("L1", 1))
	end := n.EndPlace("end")
	n.AddTransition(&Transition{Name: "X", Class: 0, From: end, To: l1})
	if err := n.Build(); err == nil {
		t.Fatal("expected error for transition leaving end place")
	}

	n2 := NewNet(1)
	n2.Place("L1", n2.Stage("L1", 1))
	n2.Place("L1", n2.Stage("L1b", 1))
	if err := n2.Build(); err == nil {
		t.Fatal("expected duplicate-place error")
	}
}
