package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rcpn/internal/faultinj"
	"rcpn/internal/rpc"
)

// CoordinatorConfig tunes liveness and reassignment. Every knob here is
// routing policy: none of them can change result bytes, only how fast a
// dead worker is noticed and its jobs re-run elsewhere.
type CoordinatorConfig struct {
	// Heartbeat is the expected worker ping interval; a worker quiet for
	// Heartbeat×HeartbeatMiss is evicted (defaults 2s × 3).
	Heartbeat     time.Duration
	HeartbeatMiss int
	// IdleTimeout bounds how long a dispatched job may go without any
	// progress frame before the worker is declared wedged and evicted
	// (default 2m). Progress arrives at Drive-chunk cadence, so a healthy
	// run refreshes this constantly.
	IdleTimeout time.Duration
	// DispatchAttempts is how many workers one Dispatch call will try
	// before giving the failure back to the server's own retry machinery
	// (default 4).
	DispatchAttempts int
	// RetryBase/RetryMax shape the exponential backoff between those
	// attempts (defaults 50ms / 2s), jittered from the injector's seeded
	// stream when fault injection is armed.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Fault arms the rpc.drop site on coordinator→worker frames and
	// seeds the backoff jitter. Nil is inert.
	Fault *faultinj.Injector
	// Logf receives eviction and rebalance log lines (default: stderr).
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 2 * time.Second
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 3
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.DispatchAttempts <= 0 {
		c.DispatchAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return c
}

// dispatchReply is one terminal answer for an in-flight dispatch.
type dispatchReply struct {
	res  *rpc.Result
	jerr *rpc.JobError
}

// call is one in-flight dispatch on one worker.
type call struct {
	reply    chan dispatchReply // buffered 1
	progress func(cycles int64, instret uint64)
	activity chan struct{} // buffered 1: progress seen, reset the idle clock
}

// remoteWorker is the coordinator's handle on one connected worker.
type remoteWorker struct {
	node  string
	slots int
	conn  *rpc.Conn

	mu       sync.Mutex
	inflight map[string]*call

	gone    chan struct{} // closed at eviction; fails all in-flight calls
	goneErr error
	once    sync.Once
}

// Coordinator accepts worker connections, maintains the live ring, and
// implements serve.Dispatcher. It is crash-only toward its workers: any
// protocol error, missed heartbeat cadence or idle dispatch evicts the
// worker and reassigns its jobs; a worker reconnects as a fresh node.
type Coordinator struct {
	cfg  CoordinatorConfig
	ring *Ring

	mu      sync.Mutex
	workers map[string]*remoteWorker
	closed  bool

	// counters, for logs and the cmd layer.
	evictions  atomic.Int64
	reassigned atomic.Int64
}

func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		ring:    NewRing(),
		workers: make(map[string]*remoteWorker),
	}
}

// Serve accepts worker connections on ln until the listener closes. Call
// it on its own goroutine; Close unblocks it.
func (c *Coordinator) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go c.admit(nc)
	}
}

// admit handshakes one inbound connection and runs its reader loop.
func (c *Coordinator) admit(nc net.Conn) {
	conn := rpc.NewConn(nc, c.cfg.Fault)
	conn.WriteTimeout = 10 * time.Second
	hello, err := conn.Handshake(rpc.Hello{Version: rpc.Version}, 10*time.Second)
	if err != nil {
		c.cfg.Logf("shard: rejecting connection from %s: %v", nc.RemoteAddr(), err)
		conn.Close()
		return
	}
	node := hello.Node
	if node == "" {
		node = nc.RemoteAddr().String()
	}
	w := &remoteWorker{
		node:     node,
		slots:    int(hello.Slots),
		conn:     conn,
		inflight: make(map[string]*call),
		gone:     make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if _, taken := c.workers[node]; taken {
		// Same name, new connection: most likely a worker that restarted
		// faster than its old connection timed out. Qualify the newcomer;
		// the stale entry evicts on its own heartbeat deadline.
		node = fmt.Sprintf("%s@%s", node, nc.RemoteAddr())
		w.node = node
	}
	c.workers[node] = w
	c.mu.Unlock()
	c.ring.Add(node)
	c.cfg.Logf("shard: worker %s joined (%d slots); ring has %d workers", node, w.slots, c.ring.Len())

	// Reader loop: everything the worker sends arrives here. The read
	// deadline is the liveness check — a healthy worker pings faster.
	conn.ReadTimeout = c.cfg.Heartbeat * time.Duration(c.cfg.HeartbeatMiss)
	for {
		m, err := conn.Recv()
		if err != nil {
			c.evict(w, err)
			return
		}
		switch m := m.(type) {
		case rpc.Ping:
			if err := conn.Send(rpc.Pong{Seq: m.Seq}); err != nil {
				c.evict(w, err)
				return
			}
		case rpc.Progress:
			w.mu.Lock()
			cl := w.inflight[m.ID]
			w.mu.Unlock()
			if cl != nil {
				cl.progress(m.Cycles, m.Instret)
				select {
				case cl.activity <- struct{}{}:
				default:
				}
			}
		case rpc.Result:
			w.deliver(m.ID, dispatchReply{res: &m})
		case rpc.JobError:
			w.deliver(m.ID, dispatchReply{jerr: &m})
		default:
			c.evict(w, fmt.Errorf("unexpected %T from worker", m))
			return
		}
	}
}

func (w *remoteWorker) deliver(id string, r dispatchReply) {
	w.mu.Lock()
	cl := w.inflight[id]
	delete(w.inflight, id)
	w.mu.Unlock()
	if cl != nil {
		cl.reply <- r // buffered; never blocks
	}
}

// evict removes a worker from the ring and fails its in-flight calls.
// Idempotent per worker instance.
func (c *Coordinator) evict(w *remoteWorker, cause error) {
	w.once.Do(func() {
		c.mu.Lock()
		if c.workers[w.node] == w {
			delete(c.workers, w.node)
		}
		c.mu.Unlock()
		c.ring.Remove(w.node)
		w.goneErr = cause
		close(w.gone)
		w.conn.Close()
		c.evictions.Add(1)
		c.cfg.Logf("shard: evicted worker %s (%v); ring has %d workers", w.node, cause, c.ring.Len())
	})
}

// pick routes a job id to its live worker.
func (c *Coordinator) pick(id string) *remoteWorker {
	node, ok := c.ring.Lookup(id)
	if !ok {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[node]
}

// Live implements serve.Dispatcher.
func (c *Coordinator) Live() int { return c.ring.Len() }

// Evictions and Reassignments expose the routing counters.
func (c *Coordinator) Evictions() int64     { return c.evictions.Load() }
func (c *Coordinator) Reassignments() int64 { return c.reassigned.Load() }

// Dispatch implements serve.Dispatcher: route the job to its ring owner,
// and on any transient failure — worker death, dropped or corrupted
// frames, a wedged run — evict, back off, and re-pick against the
// rebalanced ring. Reassignment cannot change the bytes: the job either
// completed nowhere, or completes exactly once on whichever worker
// finally answers, and every worker renders identical bytes.
func (c *Coordinator) Dispatch(ctx context.Context, id string, spec []byte,
	progress func(cycles int64, instret uint64)) (*rpc.Result, error) {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.DispatchAttempts; attempt++ {
		w := c.pick(id)
		if w == nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, rpc.ErrNoWorkers
		}
		res, err := c.dispatchTo(ctx, w, id, spec, progress)
		switch {
		case err == nil:
			return res, nil
		case errors.Is(err, rpc.ErrPermanent) || ctx.Err() != nil:
			return nil, err
		}
		lastErr = err
		c.reassigned.Add(1)
		if !sleepCtx(ctx, c.backoff(attempt)) {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// dispatchTo runs one attempt on one worker, bounding silence with the
// idle clock (progress frames reset it).
func (c *Coordinator) dispatchTo(ctx context.Context, w *remoteWorker, id string, spec []byte,
	progress func(cycles int64, instret uint64)) (*rpc.Result, error) {
	cl := &call{
		reply:    make(chan dispatchReply, 1),
		progress: progress,
		activity: make(chan struct{}, 1),
	}
	if progress == nil {
		cl.progress = func(int64, uint64) {}
	}
	w.mu.Lock()
	if _, dup := w.inflight[id]; dup {
		w.mu.Unlock()
		// Content addressing makes a duplicate dispatch of the same id a
		// server bug; refuse loudly rather than crossing replies.
		return nil, fmt.Errorf("job %s already in flight on %s", id, w.node)
	}
	w.inflight[id] = cl
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.inflight, id)
		w.mu.Unlock()
	}()

	if err := w.conn.Send(rpc.Submit{ID: id, Spec: spec}); err != nil {
		c.evict(w, err)
		return nil, fmt.Errorf("submit to %s: %w", w.node, err)
	}
	idle := time.NewTimer(c.cfg.IdleTimeout)
	defer idle.Stop()
	for {
		select {
		case r := <-cl.reply:
			if r.res != nil {
				return r.res, nil
			}
			if r.jerr.Transient {
				return nil, fmt.Errorf("worker %s: %s", w.node, r.jerr.Msg)
			}
			return nil, fmt.Errorf("%w: worker %s: %s", rpc.ErrPermanent, w.node, r.jerr.Msg)
		case <-cl.activity:
			if !idle.Stop() {
				<-idle.C
			}
			idle.Reset(c.cfg.IdleTimeout)
		case <-idle.C:
			err := fmt.Errorf("no progress from %s within %v", w.node, c.cfg.IdleTimeout)
			c.evict(w, err)
			return nil, err
		case <-w.gone:
			return nil, fmt.Errorf("worker %s died mid-job: %w", w.node, w.goneErr)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// backoff is exponential with half-width jitter, like the serve layer's,
// and draws from the injector's seeded stream for reproducible schedules
// under fault injection.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase
	for i := 1; i < attempt && d < c.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	return d/2 + time.Duration(c.cfg.Fault.Rand63n(int64(d/2)+1))
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Close evicts every worker and marks the coordinator closed. The caller
// owns the listener passed to Serve and closes it separately.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	ws := make([]*remoteWorker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	for _, w := range ws {
		c.evict(w, errors.New("coordinator shutting down"))
	}
}
