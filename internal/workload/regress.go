package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadRegressions reads every *.s file under dir as a regression kernel —
// the minimized repros rcpnfuzz commits after a divergence hunt. Each file
// becomes a Workload named "regress-<stem>" whose source ignores the scale
// factor (repros are already minimal). Files are returned in sorted name
// order so callers iterate deterministically. A missing directory is not an
// error: there are simply no regressions yet.
func LoadRegressions(dir string) ([]*Workload, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("workload: regressions: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".s") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*Workload
	for _, name := range names {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("workload: regressions: %w", err)
		}
		src := string(text)
		out = append(out, &Workload{
			Name:   "regress-" + strings.TrimSuffix(name, ".s"),
			Suite:  "regression",
			source: func(int) string { return src },
		})
	}
	return out, nil
}
