package batch

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockingJob returns a job that holds its worker until release is closed.
func blockingJob(name string, release <-chan struct{}) Job {
	return Job{Simulator: name, Workload: "w",
		Run: func(ctx context.Context) (Metrics, error) {
			select {
			case <-release:
				return Metrics{Cycles: 1}, nil
			case <-ctx.Done():
				return Metrics{}, ctx.Err()
			}
		}}
}

// TestPoolBackpressure: with one busy worker and a one-slot queue, the
// third submission is refused with ErrQueueFull instead of buffering.
func TestPoolBackpressure(t *testing.T) {
	release := make(chan struct{})
	p := NewPool(1, Options{Workers: 1})
	defer p.Close()

	var mu sync.Mutex
	results := map[string]Result{}
	record := func(r Result) { mu.Lock(); results[r.Simulator] = r; mu.Unlock() }

	if err := p.TrySubmit(blockingJob("a", release), record); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has claimed "a" so "b" occupies the queue alone.
	deadline := time.Now().Add(5 * time.Second)
	for p.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never claimed the first job")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.TrySubmit(blockingJob("b", release), record); err != nil {
		t.Fatal(err)
	}
	if err := p.TrySubmit(blockingJob("c", release), record); err != ErrQueueFull {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	close(release)
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(results) != 2 {
		t.Fatalf("%d results, want 2 (a and b)", len(results))
	}
	for name, r := range results {
		if r.Err != "" {
			t.Fatalf("job %s failed: %s", name, r.Err)
		}
	}
}

// TestPoolCloseRejects: Close stops admission and drains queued work.
func TestPoolCloseRejects(t *testing.T) {
	p := NewPool(4, Options{Workers: 2})
	done := make(chan Result, 8)
	for i := 0; i < 4; i++ {
		j := Job{Simulator: fmt.Sprintf("s%d", i), Workload: "w",
			Run: func(ctx context.Context) (Metrics, error) { return Metrics{Cycles: 7}, nil }}
		if err := p.TrySubmit(j, func(r Result) { done <- r }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if err := p.TrySubmit(Job{}, nil); err != ErrPoolClosed {
		t.Fatalf("submit after close: err = %v, want ErrPoolClosed", err)
	}
	if len(done) != 4 {
		t.Fatalf("%d results after Close, want 4 (queued work must drain)", len(done))
	}
	p.Close() // idempotent
}

// TestPoolHardCancel: canceling Options.Context while jobs block turns the
// in-flight jobs into prompt Canceled results and lets Close return — the
// drain-deadline path of the service.
func TestPoolHardCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(8, Options{Workers: 2, Context: ctx})
	never := make(chan struct{}) // jobs block until canceled
	defer close(never)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var canceled int
	for i := 0; i < 6; i++ {
		wg.Add(1)
		err := p.TrySubmit(blockingJob(fmt.Sprintf("s%d", i), never), func(r Result) {
			mu.Lock()
			if r.Canceled {
				canceled++
			}
			mu.Unlock()
			wg.Done()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after hard cancel")
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if canceled != 6 {
		t.Fatalf("canceled = %d, want 6", canceled)
	}
}

// TestFailedOrdering: Failed() preserves submission order even when
// completion order is scrambled by parallelism — downstream tooling keys
// on that for stable diffs.
func TestFailedOrdering(t *testing.T) {
	jobs := fakeJobs(12)
	for _, i := range []int{1, 5, 9} {
		i := i
		jobs[i].Run = func(ctx context.Context) (Metrics, error) {
			time.Sleep(time.Duration(12-i) * time.Millisecond)
			return Metrics{}, fmt.Errorf("fail-%d", i)
		}
	}
	rep := Run(jobs, Options{Workers: 6})
	failed := rep.Failed()
	if len(failed) != 3 {
		t.Fatalf("Failed() = %d results, want 3", len(failed))
	}
	for k, want := range []int{1, 5, 9} {
		if got := failed[k].Err; !strings.Contains(got, fmt.Sprintf("fail-%d", want)) {
			t.Fatalf("failed[%d] = %q, want fail-%d (submission order)", k, got, want)
		}
	}
}
