package reg

import (
	"testing"
	"testing/quick"
)

// fakeOwner is a StateQuerier pinned to one state.
type fakeOwner struct{ state int }

func (f *fakeOwner) InState(s int) bool { return f.state == s }

func TestReadWriteRoundTrip(t *testing.T) {
	f := NewFile("gpr", 4)
	r0 := f.Register("r0", 0)
	ref := NewRef(r0, nil)
	if !ref.CanRead() || !ref.CanWrite() {
		t.Fatal("fresh register should be readable and writable")
	}
	ref.ReserveWrite()
	ref.SetValue(42)
	ref.Writeback()
	if r0.Value() != 42 {
		t.Fatalf("r0 = %d", r0.Value())
	}
	reader := NewRef(r0, nil)
	reader.Read()
	if reader.Value() != 42 {
		t.Fatalf("read internal = %d", reader.Value())
	}
}

func TestRAWHazardBlocksReaders(t *testing.T) {
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	writer := NewRef(r, nil)
	reader := NewRef(r, nil)

	writer.ReserveWrite()
	if reader.CanRead() {
		t.Fatal("reader must stall on pending writer (RAW)")
	}
	if reader.CanWrite() {
		t.Fatal("second writer must stall (WAW)")
	}
	// The writer itself still sees its own reservation as available.
	if !writer.CanRead() || !writer.CanWrite() {
		t.Fatal("writer's own reservation should not block itself")
	}
	writer.SetValue(7)
	writer.Writeback()
	if !reader.CanRead() {
		t.Fatal("reader should proceed after writeback")
	}
	reader.Read()
	if reader.Value() != 7 {
		t.Fatalf("read %d", reader.Value())
	}
}

func TestBypassReadIn(t *testing.T) {
	const stateL3 = 3
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	owner := &fakeOwner{state: 99}
	writer := NewRef(r, owner)
	reader := NewRef(r, nil)

	writer.ReserveWrite()
	writer.SetValue(123) // result computed, not yet written back

	if reader.CanReadIn(stateL3) {
		t.Fatal("writer not in L3 yet")
	}
	owner.state = stateL3
	if !reader.CanReadIn(stateL3) {
		t.Fatal("bypass should be available with writer in L3")
	}
	reader.ReadIn(stateL3)
	if reader.Value() != 123 {
		t.Fatalf("bypassed value = %d", reader.Value())
	}
	// Architected state still old.
	if r.Value() != 0 {
		t.Fatalf("architected value leaked: %d", r.Value())
	}
}

func TestCanReadInNeverForOwnRef(t *testing.T) {
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	owner := &fakeOwner{state: 1}
	writer := NewRef(r, owner)
	writer.ReserveWrite()
	if writer.CanReadIn(1) {
		t.Fatal("a ref must not bypass-read itself")
	}
}

func TestReadInWithoutWriterPanics(t *testing.T) {
	f := NewFile("gpr", 1)
	ref := NewRef(f.Register("r0", 0), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for guard/action mismatch")
		}
	}()
	ref.ReadIn(0)
}

func TestOverlappingRegisters(t *testing.T) {
	// Two architectural names share one storage cell (register banking).
	f := NewFile("banked", 2)
	a := f.Register("r8_usr", 0)
	b := f.Register("r8_fiq", 0) // overlaps
	c := f.Register("r9", 1)

	wa := NewRef(a, nil)
	wa.ReserveWrite()

	rb := NewRef(b, nil)
	if rb.CanRead() {
		t.Fatal("overlapping register must see the hazard")
	}
	rc := NewRef(c, nil)
	if !rc.CanRead() {
		t.Fatal("distinct cell must be unaffected")
	}
	wa.SetValue(5)
	wa.Writeback()
	rb.Read()
	if rb.Value() != 5 {
		t.Fatalf("overlap read = %d", rb.Value())
	}
}

func TestReleaseDropsReservation(t *testing.T) {
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	r.Set(11)
	w := NewRef(r, nil)
	w.ReserveWrite()
	w.SetValue(99)
	w.Release() // squashed instruction: no writeback
	if r.Value() != 11 {
		t.Fatalf("value changed on release: %d", r.Value())
	}
	other := NewRef(r, nil)
	if !other.CanRead() || !other.CanWrite() {
		t.Fatal("reservation not released")
	}
	// Releasing when not the writer is a no-op.
	other.ReserveWrite()
	w.Release()
	if f.PendingWriter(0) == nil {
		t.Fatal("foreign release cleared another writer")
	}
}

func TestClearHazards(t *testing.T) {
	f := NewFile("gpr", 3)
	for i := 0; i < 3; i++ {
		NewRef(f.Register("r", i), nil).ReserveWrite()
	}
	f.ClearHazards()
	for i := 0; i < 3; i++ {
		if f.PendingWriter(i) != nil {
			t.Fatalf("cell %d still reserved", i)
		}
	}
}

func TestWritebackOnlyClearsOwnReservation(t *testing.T) {
	// writer1 reserves, then a flush gives the reservation to writer2;
	// writer1's late writeback must not clear writer2's reservation.
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	w1 := NewRef(r, nil)
	w2 := NewRef(r, nil)
	w1.ReserveWrite()
	f.ClearHazards()
	w2.ReserveWrite()
	w1.SetValue(1)
	w1.Writeback()
	if f.PendingWriter(0) != w2 {
		t.Fatal("stale writeback cleared the new writer")
	}
}

func TestConstInterface(t *testing.T) {
	c := NewConst(77)
	if !c.CanRead() || c.CanReadIn(0) || !c.CanWrite() {
		t.Fatal("const predicates wrong")
	}
	c.Read()
	c.ReadIn(0)
	if c.Value() != 77 {
		t.Fatalf("const value = %d", c.Value())
	}
	c.ReserveWrite()
	c.SetValue(5)
	c.Writeback() // all no-ops against architected state
	if c.Value() != 5 {
		t.Fatalf("internal value = %d", c.Value())
	}
	c.Reset(9)
	if c.Value() != 9 {
		t.Fatalf("reset value = %d", c.Value())
	}
}

func TestRetarget(t *testing.T) {
	f := NewFile("gpr", 2)
	a := f.Register("r0", 0)
	b := f.Register("r1", 1)
	a.Set(1)
	b.Set(2)
	ref := NewRef(a, nil)
	ref.Read()
	ref.Retarget(b, nil)
	if ref.Value() != 0 {
		t.Fatal("retarget must clear internal value")
	}
	ref.Read()
	if ref.Value() != 2 {
		t.Fatalf("retargeted read = %d", ref.Value())
	}
}

// Property: any sequence of reserve/writeback pairs keeps the invariant that
// a cell's pending writer is nil or the most recent reserver, and CanRead
// for a third party is exactly "no pending writer".
func TestReservationInvariant(t *testing.T) {
	err := quick.Check(func(ops []bool, vals []uint32) bool {
		f := NewFile("gpr", 1)
		r := f.Register("r0", 0)
		var current *Ref
		for i, reserve := range ops {
			if reserve {
				ref := NewRef(r, nil)
				ref.ReserveWrite()
				if len(vals) > 0 {
					ref.SetValue(vals[i%len(vals)])
				}
				current = ref
			} else if current != nil {
				current.Writeback()
				current = nil
			}
			observer := NewRef(r, nil)
			if observer.CanRead() != (f.PendingWriter(0) == nil) {
				return false
			}
			if current != nil && f.PendingWriter(0) != current {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBypassRequiresComputedValue(t *testing.T) {
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	owner := &fakeOwner{state: 2}
	w := NewRef(r, owner)
	reader := NewRef(r, nil)
	w.ReserveWrite()
	if reader.CanReadIn(2) {
		t.Fatal("bypass must not offer a value that has not been computed")
	}
	w.SetValue(9)
	if !reader.CanReadIn(2) {
		t.Fatal("bypass should open once the value is computed")
	}
}

func TestPeek(t *testing.T) {
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	r.Set(5)
	reader := NewRef(r, nil)
	if v, ok := reader.Peek(); !ok || v != 5 {
		t.Fatalf("peek architected: %d %v", v, ok)
	}
	owner := &fakeOwner{state: 7}
	w := NewRef(r, owner)
	w.ReserveWrite()
	if _, ok := reader.Peek(); ok {
		t.Fatal("peek should fail with pending writer and no bypass")
	}
	w.SetValue(8)
	if _, ok := reader.Peek(3); ok {
		t.Fatal("peek must honor the allowed bypass states")
	}
	if v, ok := reader.Peek(3, 7); !ok || v != 8 {
		t.Fatalf("peek bypass: %d %v", v, ok)
	}
	// Peek must not disturb the architected value or reader internal state.
	if r.Value() != 5 || reader.Value() != 0 {
		t.Fatal("peek mutated state")
	}
}

func TestStackedWriters(t *testing.T) {
	// Two in-order pending writers (flag-style WAW stacking): readers see
	// the newest; releasing the newest re-exposes the older.
	f := NewFile("psr", 1)
	r := f.Register("cpsr", 0)
	o1, o2 := &fakeOwner{state: 1}, &fakeOwner{state: 2}
	w1, w2 := NewRef(r, o1), NewRef(r, o2)
	w1.ReserveWrite()
	w1.SetValue(10)
	w2.ReserveWrite()
	w2.SetValue(20)
	if f.PendingWriters(0) != 2 {
		t.Fatalf("pending = %d", f.PendingWriters(0))
	}
	reader := NewRef(r, nil)
	if !reader.CanReadIn(2) || reader.CanReadIn(1) {
		t.Fatal("reader must bypass from the newest writer only")
	}
	reader.ReadIn(2)
	if reader.Value() != 20 {
		t.Fatalf("bypassed %d", reader.Value())
	}
	// Newest squashed: the older writer is exposed again.
	w2.Release()
	if !reader.CanReadIn(1) {
		t.Fatal("older writer should be visible after newest released")
	}
	// In-order writebacks give the final value of the newest writeback.
	w2x := NewRef(r, o2)
	w2x.ReserveWrite()
	w2x.SetValue(30)
	w1.Writeback()
	w2x.Writeback()
	if r.Value() != 30 || f.PendingWriters(0) != 0 {
		t.Fatalf("final %d pending %d", r.Value(), f.PendingWriters(0))
	}
}

func TestOutOfOrderCompletion(t *testing.T) {
	// An older writer completing after a younger one (out-of-order
	// completion) must not clobber the younger's architected result.
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	older, younger := NewRef(r, nil), NewRef(r, nil)
	older.ReserveWrite() // program order: older first
	younger.ReserveWrite()
	older.SetValue(1)
	younger.SetValue(2)
	younger.Writeback() // completes first
	older.Writeback()   // late completion must not land
	if r.Value() != 2 {
		t.Fatalf("final value %d, want 2 (younger write wins)", r.Value())
	}
	if f.PendingWriters(0) != 0 {
		t.Fatalf("pending = %d", f.PendingWriters(0))
	}
	// A later reservation writes normally again.
	w := NewRef(r, nil)
	w.ReserveWrite()
	w.SetValue(3)
	w.Writeback()
	if r.Value() != 3 {
		t.Fatalf("subsequent write lost: %d", r.Value())
	}
}

func TestReserveWriteIdempotent(t *testing.T) {
	f := NewFile("gpr", 1)
	r := f.Register("r0", 0)
	w := NewRef(r, nil)
	w.ReserveWrite()
	w.ReserveWrite()
	if f.PendingWriters(0) != 1 {
		t.Fatalf("pending = %d", f.PendingWriters(0))
	}
}

func TestFileBasics(t *testing.T) {
	f := NewFile("gpr", 16)
	if f.Name() != "gpr" || f.Size() != 16 {
		t.Fatal("file metadata wrong")
	}
	f.SetRaw(3, 33)
	if f.Raw(3) != 33 {
		t.Fatal("raw access wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range cell")
		}
	}()
	f.Register("bad", 16)
}
