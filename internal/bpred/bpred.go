// Package bpred implements the branch predictors referenced by the RCPN
// models. A transition in the instruction-independent sub-net "can directly
// reference non-pipeline units such as branch predictor, memory, cache etc."
// (paper §3); these are those units for control flow.
package bpred

import "fmt"

// Predictor is the interface the fetch transitions use. Predict is consulted
// at fetch time; Update is called by the branch sub-net at resolution.
type Predictor interface {
	// Predict returns whether the branch at pc is predicted taken and, if a
	// target is known (BTB hit), that target.
	Predict(pc uint32) (taken bool, target uint32, targetKnown bool)
	// Update trains the predictor with the actual outcome.
	Update(pc uint32, taken bool, target uint32)
	// Stats returns prediction statistics.
	Stats() Stats
}

// Stats counts prediction outcomes.
type Stats struct {
	Lookups uint64
	Correct uint64
}

// Accuracy returns the fraction of correct predictions (1 with no lookups).
func (s Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return float64(s.Correct) / float64(s.Lookups)
}

// State is a serializable predictor snapshot — the warm branch-history state
// a checkpoint can carry across a functional-to-detailed handoff. Kind names
// the predictor type; the table slices are empty for stateless predictors.
type State struct {
	Kind    string // "not-taken" or "bimodal"
	Stats   Stats
	Counter []uint8  // bimodal 2-bit counters
	BTBTag  []uint32 // bimodal BTB tags
	BTBTgt  []uint32 // bimodal BTB targets
}

// Snapshotter is implemented by predictors whose dynamic state can be
// captured and restored. Reset returns the predictor to its post-construction
// state, so a restored job never inherits stale warm history.
type Snapshotter interface {
	Predictor
	Snapshot() State
	Restore(State) error
	Reset()
}

// FromState builds a fresh predictor of the snapshot's kind and restores the
// snapshot into it.
func FromState(st State) (Predictor, error) {
	switch st.Kind {
	case "not-taken":
		p := NewNotTaken()
		return p, p.Restore(st)
	case "bimodal":
		p := NewBimodal(len(st.Counter))
		return p, p.Restore(st)
	default:
		return nil, fmt.Errorf("bpred: unknown predictor kind %q", st.Kind)
	}
}

// NotTaken always predicts not-taken (the simplest static predictor; also
// the configuration used to approximate "simplest parameter values" baseline
// runs).
type NotTaken struct{ s Stats }

// NewNotTaken returns a static not-taken predictor.
func NewNotTaken() *NotTaken { return &NotTaken{} }

// Predict implements Predictor.
func (p *NotTaken) Predict(pc uint32) (bool, uint32, bool) {
	p.s.Lookups++
	return false, 0, false
}

// Update implements Predictor.
func (p *NotTaken) Update(pc uint32, taken bool, target uint32) {
	if !taken {
		p.s.Correct++
	}
}

// Stats implements Predictor.
func (p *NotTaken) Stats() Stats { return p.s }

// Snapshot implements Snapshotter.
func (p *NotTaken) Snapshot() State { return State{Kind: "not-taken", Stats: p.s} }

// Restore implements Snapshotter.
func (p *NotTaken) Restore(st State) error {
	if st.Kind != "not-taken" {
		return fmt.Errorf("bpred: cannot restore %q snapshot into not-taken", st.Kind)
	}
	p.s = st.Stats
	return nil
}

// Reset implements Snapshotter.
func (p *NotTaken) Reset() { p.s = Stats{} }

// Bimodal is a classic 2-bit saturating-counter predictor with a
// direct-mapped branch target buffer.
type Bimodal struct {
	mask    uint32
	counter []uint8 // 2-bit counters, predict taken when >= 2
	btbTag  []uint32
	btbTgt  []uint32
	s       Stats
}

// NewBimodal returns a bimodal predictor with the given table size
// (rounded up to a power of two, minimum 16).
func NewBimodal(entries int) *Bimodal {
	n := 16
	for n < entries {
		n <<= 1
	}
	p := &Bimodal{
		mask:    uint32(n - 1),
		counter: make([]uint8, n),
		btbTag:  make([]uint32, n),
		btbTgt:  make([]uint32, n),
	}
	for i := range p.counter {
		p.counter[i] = 1 // weakly not-taken
		p.btbTag[i] = ^uint32(0)
	}
	return p
}

func (p *Bimodal) index(pc uint32) uint32 { return (pc >> 2) & p.mask }

// Predict implements Predictor.
func (p *Bimodal) Predict(pc uint32) (bool, uint32, bool) {
	p.s.Lookups++
	i := p.index(pc)
	taken := p.counter[i] >= 2
	if !taken {
		return false, 0, false
	}
	if p.btbTag[i] == pc {
		return true, p.btbTgt[i], true
	}
	// Predicted taken but no target known: the fetch unit must stall or
	// fall through; report no target.
	return true, 0, false
}

// Update implements Predictor.
func (p *Bimodal) Update(pc uint32, taken bool, target uint32) {
	i := p.index(pc)
	predTaken := p.counter[i] >= 2
	correct := predTaken == taken &&
		(!taken || (p.btbTag[i] == pc && p.btbTgt[i] == target))
	if correct {
		p.s.Correct++
	}
	if taken {
		if p.counter[i] < 3 {
			p.counter[i]++
		}
		p.btbTag[i] = pc
		p.btbTgt[i] = target
	} else if p.counter[i] > 0 {
		p.counter[i]--
	}
}

// Stats implements Predictor.
func (p *Bimodal) Stats() Stats { return p.s }

// Snapshot implements Snapshotter.
func (p *Bimodal) Snapshot() State {
	return State{
		Kind:    "bimodal",
		Stats:   p.s,
		Counter: append([]uint8(nil), p.counter...),
		BTBTag:  append([]uint32(nil), p.btbTag...),
		BTBTgt:  append([]uint32(nil), p.btbTgt...),
	}
}

// Restore implements Snapshotter.
func (p *Bimodal) Restore(st State) error {
	if st.Kind != "bimodal" {
		return fmt.Errorf("bpred: cannot restore %q snapshot into bimodal", st.Kind)
	}
	if len(st.Counter) != len(p.counter) ||
		len(st.BTBTag) != len(p.btbTag) || len(st.BTBTgt) != len(p.btbTgt) {
		return fmt.Errorf("bpred: bimodal snapshot has %d entries, predictor has %d",
			len(st.Counter), len(p.counter))
	}
	copy(p.counter, st.Counter)
	copy(p.btbTag, st.BTBTag)
	copy(p.btbTgt, st.BTBTgt)
	p.s = st.Stats
	return nil
}

// Reset implements Snapshotter.
func (p *Bimodal) Reset() {
	for i := range p.counter {
		p.counter[i] = 1 // weakly not-taken, as at construction
		p.btbTag[i] = ^uint32(0)
		p.btbTgt[i] = 0
	}
	p.s = Stats{}
}

var (
	_ Snapshotter = (*NotTaken)(nil)
	_ Snapshotter = (*Bimodal)(nil)
)
