package machine

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/iss"
	"rcpn/internal/mem"
	"rcpn/internal/workload"
)

// TestGeneratedStrongARMEquivalence is the generation-correctness anchor:
// the Spec-generated StrongARM must be cycle-identical to the hand-built
// model on real programs.
func TestGeneratedStrongARMEquivalence(t *testing.T) {
	programs := []string{
		`
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, r1, #1
	cmp r1, #60
	bne loop
	swi #1
	swi #0
`,
		`
	ldr r1, =buf
	mov r2, #0
f:
	str r2, [r1, r2, lsl #2]
	add r2, r2, #1
	cmp r2, #12
	bne f
	push {r1, r2}
	pop {r3, r4}
	mul r5, r2, r2
	mov r0, r5
	swi #1
	swi #0
	.align
buf:
	.space 64
`,
	}
	for i, src := range programs {
		p, err := arm.Assemble(src, 0x8000)
		if err != nil {
			t.Fatal(err)
		}
		hand := NewStrongARM(p, Config{})
		if err := hand.Run(0); err != nil {
			t.Fatal(err)
		}
		gen, err := Generate(p, StrongARMSpec(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.Run(0); err != nil {
			t.Fatal(err)
		}
		if hand.Net.CycleCount() != gen.Net.CycleCount() {
			t.Errorf("program %d: hand-built %d cycles, generated %d",
				i, hand.Net.CycleCount(), gen.Net.CycleCount())
		}
		if hand.Instret != gen.Instret || hand.Output[0] != gen.Output[0] {
			t.Errorf("program %d: results diverge", i)
		}
	}
}

func TestGeneratedStrongARMOnWorkload(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	hand := NewStrongARM(p, Config{})
	if err := hand.Run(0); err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(p, StrongARMSpec(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Run(0); err != nil {
		t.Fatal(err)
	}
	if hand.Net.CycleCount() != gen.Net.CycleCount() {
		t.Fatalf("crc: hand-built %d cycles, generated %d", hand.Net.CycleCount(), gen.Net.CycleCount())
	}
}

// TestGeneratedXScaleEquivalence pins the declaratively written XScale to
// the hand-built model, cycle for cycle, on every workload at scale 1.
func TestGeneratedXScaleEquivalence(t *testing.T) {
	for _, w := range workload.All() {
		p, err := w.Program(1)
		if err != nil {
			t.Fatal(err)
		}
		hand := NewXScale(p, Config{})
		if err := hand.Run(0); err != nil {
			t.Fatal(err)
		}
		gen, err := Generate(p, XScaleSpec(), Config{
			Caches:    mem.DefaultXScale(),
			Predictor: bpred.NewBimodal(128),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.Run(0); err != nil {
			t.Fatal(err)
		}
		if hand.Net.CycleCount() != gen.Net.CycleCount() {
			t.Errorf("%s: hand-built %d cycles, generated %d",
				w.Name, hand.Net.CycleCount(), gen.Net.CycleCount())
		}
		if hand.Instret != gen.Instret {
			t.Errorf("%s: instret %d vs %d", w.Name, hand.Instret, gen.Instret)
		}
	}
}

func TestARM9ModelCorrectAndDeeper(t *testing.T) {
	src := `
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, r1, #1
	cmp r1, #200
	bne loop
	swi #1
	swi #0
`
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	golden := iss.New(p, 0)
	golden.MaxInstrs = 1_000_000
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}
	a9, err := NewARM9(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a9.Run(0); err != nil {
		t.Fatal(err)
	}
	if a9.Output[0] != golden.Output[0] || a9.Instret != golden.Instret {
		t.Fatalf("arm9 functional divergence")
	}
	sa := NewStrongARM(p, Config{})
	if err := sa.Run(0); err != nil {
		t.Fatal(err)
	}
	// The deeper front end costs an extra cycle per taken branch.
	if a9.Net.CycleCount() <= sa.Net.CycleCount() {
		t.Errorf("arm9 (%d cycles) should be slower than strongarm (%d) on branchy code",
			a9.Net.CycleCount(), sa.Net.CycleCount())
	}
}

func TestARM9OnAllWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		p, err := w.Program(1)
		if err != nil {
			t.Fatal(err)
		}
		golden := iss.New(p, 0)
		golden.MaxInstrs = 50_000_000
		if err := golden.Run(); err != nil {
			t.Fatal(err)
		}
		m, err := NewARM9(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(0); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if m.Instret != golden.Instret {
			t.Errorf("%s: instret %d, iss %d", w.Name, m.Instret, golden.Instret)
		}
		for i := range golden.Output {
			if m.Output[i] != golden.Output[i] {
				t.Errorf("%s: output[%d] mismatch", w.Name, i)
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	p, err := arm.Assemble("swi #0\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	base := StrongARMSpec()

	bad := base
	bad.FrontEnd = nil
	if _, err := Generate(p, bad, Config{}); err == nil {
		t.Error("missing front end accepted")
	}

	bad = StrongARMSpec()
	bad.Routes[arm.ClassBranch] = nil
	if _, err := Generate(p, bad, Config{}); err == nil {
		t.Error("missing route accepted")
	}

	bad = StrongARMSpec()
	r := bad.Routes[arm.ClassDataProc]
	r[len(r)-1].Exit = RolePass
	if _, err := Generate(p, bad, Config{}); err == nil {
		t.Error("route without writeback accepted")
	}

	bad = StrongARMSpec()
	bad.Routes[arm.ClassDataProc][1].Stage = "NOPE"
	if _, err := Generate(p, bad, Config{}); err == nil {
		t.Error("unknown stage accepted")
	}

	bad = StrongARMSpec()
	bad.Stages = append(bad.Stages, StageSpec{Name: "FD"})
	if _, err := Generate(p, bad, Config{}); err == nil {
		t.Error("duplicate stage accepted")
	}

	bad = StrongARMSpec()
	bad.Bypass = []string{"missing"}
	if _, err := Generate(p, bad, Config{}); err == nil {
		t.Error("unknown bypass stage accepted")
	}
}
