package core

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the RCPN as a Graphviz digraph, grouping each instruction
// class's sub-net in a cluster — the "mirror image of the processor pipeline
// block diagram" view of Fig. 5. classNames maps ClassID to a label; the
// instruction-independent sub-net (sources and AnyClass transitions) forms
// its own cluster.
func (n *Net) Dot(classNames []string) string {
	var b strings.Builder
	b.WriteString("digraph RCPN {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")

	// Places: one node per place; two-list places double-circled.
	for _, p := range n.places {
		shape := "circle"
		if p.TwoList {
			shape = "doublecircle"
		}
		style := ""
		if p.End {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  p%d [label=%q, shape=%s%s];\n", p.id, p.Name, shape, style)
	}

	className := func(c ClassID) string {
		if c == AnyClass {
			return "Instruction Independent"
		}
		if int(c) < len(classNames) {
			return classNames[c]
		}
		return fmt.Sprintf("class%d", c)
	}

	// Group transitions by class into clusters.
	byClass := map[ClassID][]*Transition{}
	for _, t := range n.transitions {
		byClass[t.Class] = append(byClass[t.Class], t)
	}
	classes := make([]ClassID, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	for _, c := range classes {
		fmt.Fprintf(&b, "  subgraph cluster_c%d {\n    label=%q;\n", c+1, className(c))
		for _, t := range byClass[c] {
			fmt.Fprintf(&b, "    t%d [label=%q, shape=box];\n", t.id, t.Name)
		}
		b.WriteString("  }\n")
	}
	if len(n.sources) > 0 {
		b.WriteString("  subgraph cluster_src {\n    label=\"Instruction Independent (sources)\";\n")
		for i, s := range n.sources {
			fmt.Fprintf(&b, "    s%d [label=%q, shape=box, style=bold];\n", i, s.Name)
		}
		b.WriteString("  }\n")
	}

	// Arcs. Solid: instruction-token flow (labelled with arc priority when
	// nonzero); dotted: reservation-token arcs; dashed grey: feedback reads.
	for _, t := range n.transitions {
		if t.From != nil {
			lbl := ""
			if t.Priority != 0 {
				lbl = fmt.Sprintf(" [label=\"%d\"]", t.Priority)
			}
			fmt.Fprintf(&b, "  p%d -> t%d%s;\n", t.From.id, t.id, lbl)
		}
		fmt.Fprintf(&b, "  t%d -> p%d;\n", t.id, t.To.id)
		for _, r := range t.ResIn {
			fmt.Fprintf(&b, "  p%d -> t%d [style=dotted];\n", r.id, t.id)
		}
		for _, r := range t.ResOut {
			fmt.Fprintf(&b, "  t%d -> p%d [style=dotted];\n", t.id, r.id)
		}
		for _, r := range t.Reads {
			fmt.Fprintf(&b, "  p%d -> t%d [style=dashed, color=gray];\n", r.id, t.id)
		}
	}
	for i, s := range n.sources {
		fmt.Fprintf(&b, "  s%d -> p%d;\n", i, s.To.id)
	}
	b.WriteString("}\n")
	return b.String()
}
