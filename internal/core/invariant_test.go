package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomNet builds a randomized but well-formed layered pipeline: `depth`
// layers of places with random capacities, each class taking a random path
// through one place per layer, with random place delays and random guard
// availability driven by a seeded RNG (deterministic per seed).
func randomNet(seed int64, produce int) (*Net, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	classes := 1 + rng.Intn(3)
	depth := 2 + rng.Intn(3)
	width := 1 + rng.Intn(2)

	n := NewNet(classes)
	layers := make([][]*Place, depth)
	for l := range layers {
		for wi := 0; wi < width; wi++ {
			st := n.Stage(fmt.Sprintf("S%d.%d", l, wi), 1+rng.Intn(2))
			p := n.Place(fmt.Sprintf("P%d.%d", l, wi), st)
			p.Delay = int64(1 + rng.Intn(2))
			layers[l] = append(layers[l], p)
		}
	}
	end := n.EndPlace("end")

	for c := 0; c < classes; c++ {
		prev := layers[0][rng.Intn(len(layers[0]))]
		for l := 1; l < depth; l++ {
			next := layers[l][rng.Intn(len(layers[l]))]
			n.AddTransition(&Transition{
				Name:  fmt.Sprintf("t%d.%d", c, l),
				Class: ClassID(c),
				From:  prev, To: next,
				Delay: int64(rng.Intn(2)),
			})
			prev = next
		}
		n.AddTransition(&Transition{
			Name:  fmt.Sprintf("t%d.end", c),
			Class: ClassID(c),
			From:  prev, To: end,
		})
	}

	made := 0
	n.AddSource(&Source{
		Name: "src",
		To:   layers[0][0],
		Guard: func() bool {
			return made < produce
		},
		Fire: func() *Token {
			// Tokens must enter through layer-0 place 0; give them a class
			// whose path starts there, falling back to class 0 paths that
			// start elsewhere (they will simply never leave, which the
			// invariants still cover) — avoid that by routing all classes
			// from layer 0 place 0. Rebuild guard below handles it.
			made++
			return NewToken(ClassID(made%classes), made)
		},
	})
	return n, rng
}

// buildConnected retries seeds until every class's path starts at the
// source's destination (so all tokens can retire).
func buildConnected(t *testing.T, seed int64, produce int) *Net {
	t.Helper()
	for s := seed; s < seed+10_000; s++ {
		n, _ := randomNet(s, produce)
		if err := n.Build(); err != nil {
			continue
		}
		src := n.Sources()[0]
		ok := true
		for c := 0; c < n.NumClasses(); c++ {
			if len(n.SortedTransitions(src.To, ClassID(c))) == 0 {
				ok = false
			}
		}
		if ok {
			return n
		}
	}
	t.Fatal("no connected random net found")
	return nil
}

// checkInvariants asserts the structural engine invariants at a cycle
// boundary.
func checkInvariants(t *testing.T, n *Net, produced uint64) {
	t.Helper()
	var inFlight uint64
	for _, p := range n.Places() {
		count := 0
		p.ForEachToken(func(tok *Token) {
			count++
			if tok.Place() != p {
				t.Fatalf("token thinks it is at %v but held by %s", tok.Place(), p.Name)
			}
		})
		if !p.End {
			inFlight += uint64(count)
		}
		if p.Reservations() < 0 {
			t.Fatalf("negative reservations at %s", p.Name)
		}
	}
	// Conservation: produced = retired + in flight.
	if produced != n.RetiredCount+inFlight {
		t.Fatalf("token conservation broken: produced %d, retired %d, in flight %d",
			produced, n.RetiredCount, inFlight)
	}
	// Stage occupancy never exceeds capacity, and is exactly accounted for:
	// occupancy == instruction tokens + reservation tokens across the
	// stage's places (the paper's invariant that a stage's capacity is
	// consumed only by tokens visibly resident in it).
	held := map[*Stage]int{}
	for _, p := range n.Places() {
		if p.End {
			continue // end-place tokens retire on arrival, never occupy
		}
		count := 0
		p.ForEachToken(func(*Token) { count++ })
		held[p.Stage] += count + p.Reservations()
	}
	for _, p := range n.Places() {
		st := p.Stage
		want, tracked := held[st]
		if !tracked {
			continue
		}
		delete(held, st)
		if st.Occupancy() != want {
			t.Fatalf("stage %s occupancy %d != tokens+reservations %d",
				st.Name, st.Occupancy(), want)
		}
		if !st.Unlimited() && st.Occupancy() > st.Capacity {
			t.Fatalf("stage %s over capacity: %d > %d", st.Name, st.Occupancy(), st.Capacity)
		}
	}
}

func TestEngineInvariantsRandomNets(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const produce = 25
			n := buildConnected(t, seed*1000, produce)
			src := n.Sources()[0]
			for i := 0; i < 500 && n.RetiredCount < produce; i++ {
				n.Step()
				checkInvariants(t, n, src.Fires)
			}
			if n.RetiredCount != produce {
				// Some class paths may start at a different layer-0 place
				// than the source feeds; those tokens can never move. That
				// is legal (they just sit), but conservation must hold.
				checkInvariants(t, n, src.Fires)
				t.Skipf("net stalls by construction (retired %d/%d)", n.RetiredCount, produce)
			}
		})
	}
}

// addRandomGuards decorates every transition of a built net with a pure
// time-varying guard (bit cycle%64 of a per-transition random mask) and a
// pure data-dependent token delay installed by the action — the paper's
// "t.delay = mem.delay(addr)" idiom with a synthetic delay function.
// Purity matters: the active-list engine evaluates guards only for places
// on its worklist while the full sweep evaluates every place, so guards
// that consumed an RNG at evaluation time would diverge between the two
// modes even though the engines are equivalent.
func addRandomGuards(n *Net, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, tr := range n.Transitions() {
		// Force bits 0 and 63 on so every guard has true windows each
		// 64-cycle period: stalls are transient, never deadlocks.
		mask := rng.Uint64() | 1 | 1<<63
		stride := int64(1 + rng.Intn(3))
		tr.Guard = func(*Token) bool {
			return mask>>(uint64(n.CycleCount())%64)&1 != 0
		}
		tr.Action = func(tok *Token) {
			tok.Delay = int64(tok.Data.(int))*stride%3 + 1
		}
	}
}

// TestEngineInvariantsRandomGuardedNets re-runs the structural invariants
// under adversarial timing: every transition guarded by a random cycle
// schedule and every firing overriding the destination residency with a
// data-dependent token delay. This is the regime the active-list engine
// must survive — stalled places must stay on the worklist until their
// guard opens, and wheel-scheduled wakeups must not strand delayed tokens.
func TestEngineInvariantsRandomGuardedNets(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const produce = 25
			n := buildConnected(t, seed*1000, produce)
			addRandomGuards(n, seed*77)
			src := n.Sources()[0]
			for i := 0; i < 4000 && n.RetiredCount < produce; i++ {
				n.Step()
				checkInvariants(t, n, src.Fires)
			}
			if n.RetiredCount != produce {
				checkInvariants(t, n, src.Fires)
				t.Skipf("net stalls by construction (retired %d/%d)", n.RetiredCount, produce)
			}
		})
	}
}

// TestActiveListMatchesFullSweep locksteps the event-driven engine against
// the literal Fig. 8 full reverse-topological sweep on identical guarded
// nets and requires bit-identical evolution: same retired count after every
// cycle, same final cycle count, and the same firing count on every
// transition. This is the equivalence argument for the active-list
// scheduler, checked mechanically across random structures, guards and
// delays.
func TestActiveListMatchesFullSweep(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const produce = 30
			active := buildConnected(t, seed*1000, produce)
			sweep := buildConnected(t, seed*1000, produce)
			addRandomGuards(active, seed*99)
			addRandomGuards(sweep, seed*99)
			sweep.SetFullSweep(true)

			for i := 0; i < 4000 && active.RetiredCount < produce; i++ {
				active.Step()
				sweep.Step()
				if active.RetiredCount != sweep.RetiredCount {
					t.Fatalf("cycle %d: active retired %d, sweep retired %d",
						active.CycleCount(), active.RetiredCount, sweep.RetiredCount)
				}
				for pi, p := range active.Places() {
					q := sweep.Places()[pi]
					if len(p.Tokens()) != len(q.Tokens()) || p.Reservations() != q.Reservations() {
						t.Fatalf("cycle %d: place %s diverged: %d/%d tokens, %d/%d reservations",
							active.CycleCount(), p.Name, len(p.Tokens()), len(q.Tokens()),
							p.Reservations(), q.Reservations())
					}
				}
			}
			if active.CycleCount() != sweep.CycleCount() {
				t.Fatalf("cycle counts diverged: %d vs %d", active.CycleCount(), sweep.CycleCount())
			}
			for ti, tr := range active.Transitions() {
				if got := sweep.Transitions()[ti].Fires; tr.Fires != got {
					t.Fatalf("transition %s fired %d (active) vs %d (sweep)", tr.Name, tr.Fires, got)
				}
			}
		})
	}
}

// Determinism: identical nets stepped identically produce identical state
// evolution (cycle counts, retire counts, firing counts).
func TestEngineDeterminism(t *testing.T) {
	run := func() (int64, uint64, []uint64) {
		n := buildConnected(t, 4242, 30)
		for i := 0; i < 300 && n.RetiredCount < 30; i++ {
			n.Step()
		}
		var fires []uint64
		for _, tr := range n.Transitions() {
			fires = append(fires, tr.Fires)
		}
		return n.CycleCount(), n.RetiredCount, fires
	}
	c1, r1, f1 := run()
	c2, r2, f2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", c1, r1, c2, r2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("transition %d fired %d vs %d times", i, f1[i], f2[i])
		}
	}
}
