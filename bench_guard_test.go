//go:build bench_guard

package rcpn

// Bench regression guard, build-tagged out of the default test run:
//
//	go test -tags bench_guard -run 'TestBenchGuard|TestGeneratedSpeedup' -v .
//
// With observability disabled (the nil-check fast path), each cycle engine
// runs the crc kernel and its simulation rate must stay within benchGuardDrop
// of the committed baseline in testdata/bench_baseline.json. The guard
// exists to catch the failure mode this repository's observability layer is
// designed against — instrumentation hooks leaking cost into uninstrumented
// runs — and it is advisory in CI (hosted runners are noisy; the committed
// baseline describes the reference container).
//
// TestGeneratedSpeedup is the paper's compiled-vs-interpreted claim made
// executable: the generated pipe5 simulator must beat its cycle-identical
// interpreted twin by genSpeedupFloor in geometric mean across all kernels.
//
// Regenerate the baseline on the reference machine with:
//
//	RCPN_BENCH_BASELINE_WRITE=1 go test -tags bench_guard -run TestBenchGuard .
//
// The writer records whatever the host delivers at that moment; the
// reference container's throughput is bimodal (scheduler placement), so the
// committed file pins each row near its slow mode — the floor then tolerates
// a slow episode while still catching a real regression on top of one.

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"rcpn/internal/diffrun"
	"rcpn/internal/loadgen"
	"rcpn/internal/serve"
	"rcpn/internal/tpar"
	"rcpn/internal/workload"
)

const benchBaselinePath = "testdata/bench_baseline.json"

// benchGuardDrop is the tolerated slowdown before the guard fails: a >15%
// drop in cycles/sec against the baseline is a regression.
const benchGuardDrop = 0.15

// benchGuardReps runs each measurement this many times and keeps the best,
// shedding scheduler noise the cheap way.
const benchGuardReps = 3

// guardEngines are the measured microbenches: the cycle engines on crc,
// interpreted and generated.
var guardEngines = []string{"pipe5", "strongarm", "ssim", "genpipe5"}

// genSpeedupFloor is the minimum geometric-mean speedup of the generated
// pipe5 engine over the interpreted RCPN engine it was compiled from.
const genSpeedupFloor = 1.3

func guardEngine(t *testing.T, name string) diffrun.Engine {
	t.Helper()
	for _, e := range diffrun.Engines() {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("unknown guard engine %q", name)
	return diffrun.Engine{}
}

// measureMcps returns the best-of-reps simulation rate of one engine on
// the kernel, in simulated Mcycles per wall second, with no observability
// attached.
func measureMcps(t *testing.T, engine, kernel string) float64 {
	t.Helper()
	e := guardEngine(t, engine)
	p, err := workload.ByName(kernel).Program(1)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for rep := 0; rep < benchGuardReps; rep++ {
		st, _, err := e.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		done, err := st.StepTo(noLimit)
		wall := time.Since(start)
		if err != nil || !done {
			t.Fatalf("%s/%s: done=%v err=%v", engine, kernel, done, err)
		}
		cycles, _ := st.Progress()
		if mcps := float64(cycles) / 1e6 / wall.Seconds(); mcps > best {
			best = mcps
		}
	}
	return best
}

// tparGuardKey names the time-parallel path's baseline entry: strongarm on
// crc through tpar sampled mode at 4 segments, measured end to end
// (leader passes, segment sweep, stitch). Guarding the whole pipeline
// catches regressions in the orchestration itself — pool churn, checkpoint
// encode/restore cost, stitch overhead — not just the engines.
//
// Unlike the single-goroutine engine rows, this measurement is bimodal on
// the 1-core reference container (~5.4 vs ~6.5 Mcycles/s depending on how
// the scheduler interleaves pool workers), so the committed baseline pins
// the slow mode; the floor still catches any real orchestration-cost
// regression.
const tparGuardKey = "tpar-sampled-n4"

// measureTparMcps is measureMcps for the time-parallel path. The kernel
// runs at scale 4: the orchestration adds fixed per-run cost (two leader
// passes, pool spin-up), so a scale-1 run is ~40ms of wall time and the
// measurement is all scheduler noise; scale 4 keeps it fast but stable.
func measureTparMcps(t *testing.T, engine, kernel string) float64 {
	t.Helper()
	e := guardEngine(t, engine)
	p, err := workload.ByName(kernel).Program(4)
	if err != nil {
		t.Fatal(err)
	}
	opt := tpar.Options{Segments: 4, Mode: tpar.Sampled,
		Warm: tpar.DefaultWarm(engine), MinSegment: 256}
	best := 0.0
	for rep := 0; rep < benchGuardReps; rep++ {
		// The time-parallel path allocates much more than a plain engine
		// run (leader ISS pass, per-segment simulators, checkpoint
		// buffers), so garbage left by earlier measurements triggers GC
		// mid-sweep and skews the wall clock. Start each rep clean.
		runtime.GC()
		start := time.Now()
		res, err := tpar.Run(p, tpar.EngineBuild(e, p), opt)
		wall := time.Since(start)
		if err != nil {
			t.Fatalf("tpar %s/%s: %v", engine, kernel, err)
		}
		if mcps := float64(res.Cycles) / 1e6 / wall.Seconds(); mcps > best {
			best = mcps
		}
	}
	return best
}

// loadGuardKey names the end-to-end load number: a seeded rcpnload corpus
// driven open-loop through an in-process serve.Server — HTTP submission,
// quota/queue admission, dedup, pool execution, result polling — reported
// as aggregate simulated Mcycles per wall second from the rcpn-load/v1
// report. It guards the serving stack the way the engine rows guard the
// cycle loops: a drop here with flat engine rows points at the server, not
// the simulators.
//
// Like tpar-sampled-n4, this row is bimodal on the 1-core reference
// container (~5.7 vs ~7.1 Mcycles/s depending on how the scheduler
// interleaves the worker with the poller), so the committed baseline pins
// the slow mode.
const loadGuardKey = "load-e2e"

// measureLoadMcps boots a one-worker server and replays the same seeded
// 40-job run against it. One worker keeps the measurement stable on the
// 1-core reference container. The corpus draws from the crc kernel at
// mixed scales rather than generated programs: generated programs exit
// within a few hundred cycles, which would make this row measure HTTP and
// polling overhead instead of sustained serving throughput.
func measureLoadMcps(t *testing.T) float64 {
	t.Helper()
	best := 0.0
	for rep := 0; rep < benchGuardReps; rep++ {
		runtime.GC()
		s, err := serve.New(serve.Config{Workers: 1, QueueDepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(s)
		ld, err := loadgen.New(loadgen.Config{
			Target: hs.URL, Seed: 7, Jobs: 40, Rate: 2000,
			Corpus: loadgen.CorpusConfig{Seed: 7, Programs: 8, Kernels: []string{"crc"}},
			PollInterval: 2 * time.Millisecond,
			Client:       hs.Client(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rpt, err := ld.Run(context.Background())
		hs.Close()
		s.Drain(0)
		if err != nil {
			t.Fatal(err)
		}
		if rpt.Incomplete != 0 || rpt.Done == 0 {
			t.Fatalf("load run did not finish cleanly: done=%d failed=%d incomplete=%d",
				rpt.Done, rpt.Failed, rpt.Incomplete)
		}
		if rpt.MCyclesPerSec > best {
			best = rpt.MCyclesPerSec
		}
	}
	return best
}

func TestBenchGuard(t *testing.T) {
	if os.Getenv("RCPN_BENCH_BASELINE_WRITE") != "" {
		out := map[string]float64{}
		for _, name := range guardEngines {
			out[name] = measureMcps(t, name, "crc")
		}
		out[tparGuardKey] = measureTparMcps(t, "strongarm", "crc")
		out[loadGuardKey] = measureLoadMcps(t)
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchBaselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s:\n%s", benchBaselinePath, data)
		return
	}

	data, err := os.ReadFile(benchBaselinePath)
	if err != nil {
		t.Fatalf("no committed baseline (generate with RCPN_BENCH_BASELINE_WRITE=1): %v", err)
	}
	var base map[string]float64
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("bad baseline %s: %v", benchBaselinePath, err)
	}
	check := func(t *testing.T, name string, measure func(*testing.T, string, string) float64) {
		want, ok := base[name]
		if !ok {
			t.Fatalf("baseline lacks %q; regenerate it", name)
		}
		got := measure(t, "strongarm", "crc")
		floor := (1 - benchGuardDrop) * want
		t.Logf("%s: %.2f Mcycles/s (baseline %.2f, floor %.2f)", name, got, want, floor)
		if got < floor {
			t.Errorf("%s regressed: %.2f Mcycles/s < %.2f (baseline %.2f − %.0f%%)",
				name, got, floor, want, 100*benchGuardDrop)
		}
	}
	for _, name := range guardEngines {
		name := name
		t.Run(name, func(t *testing.T) {
			check(t, name, func(t *testing.T, _, kernel string) float64 {
				return measureMcps(t, name, kernel)
			})
		})
	}
	t.Run(tparGuardKey, func(t *testing.T) {
		check(t, tparGuardKey, measureTparMcps)
	})
	t.Run(loadGuardKey, func(t *testing.T) {
		check(t, loadGuardKey, func(t *testing.T, _, _ string) float64 {
			return measureLoadMcps(t)
		})
	})
}

// TestGeneratedSpeedup measures genpipe5 against the interpreted
// strongarm engine on every kernel and asserts the geometric-mean speedup
// floor. The per-kernel rates it logs are the source of the EXPERIMENTS.md
// speedup table.
func TestGeneratedSpeedup(t *testing.T) {
	logGM := 0.0
	n := 0
	for _, w := range workload.All() {
		gen := measureMcps(t, "genpipe5", w.Name)
		interp := measureMcps(t, "strongarm", w.Name)
		speedup := gen / interp
		t.Logf("%-10s interpreted %6.2f Mcps   generated %6.2f Mcps   speedup %.2fx",
			w.Name, interp, gen, speedup)
		logGM += math.Log(speedup)
		n++
	}
	gm := math.Exp(logGM / float64(n))
	t.Logf("geomean speedup: %.2fx (floor %.2fx)", gm, genSpeedupFloor)
	if gm < genSpeedupFloor {
		t.Errorf("generated engine geomean speedup %.2fx < %.2fx floor", gm, genSpeedupFloor)
	}
}
