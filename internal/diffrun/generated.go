package diffrun

import (
	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/genpipe5"
	"rcpn/internal/machine"
)

// Generated simulators (internal/gen output) register here so every diffrun
// consumer — the conformance matrix, cmd/rcpnfuzz, the regression-kernel
// replayer — sweeps them alongside the interpreted engines automatically.

func init() {
	Register(Engine{Name: "genpipe5", Build: func(p *arm.Program) (batch.CheckpointStepper, func() State, error) {
		s := genpipe5.New(p, machine.Config{})
		m := s.Runtime()
		return genpipe5.Stepper(s), func() State {
			return StateOf(m.Reg, m.Flags(), m.Mem, m.Instret, m.ExitCode, m.Output, m.Text)
		}, nil
	}})
}
