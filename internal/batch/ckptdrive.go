package batch

import (
	"context"
	"fmt"

	"rcpn/internal/ckpt"
)

// CheckpointStepper extends Stepper for simulators that can capture and
// restore RCPNCKPT checkpoints at drained boundaries. It is the substrate
// of crash-safe jobs: DriveCkpt produces checkpoints on a schedule that is
// a pure function of the retired-instruction stream, so a run resumed from
// any of its checkpoints retraces the original run exactly — same drain
// points, same cycle counts, same result bytes.
type CheckpointStepper interface {
	Stepper
	// StepToRetired advances until at least target total instructions have
	// retired, the program exits, or the cumulative position (Pos units)
	// reaches posLimit — whichever comes first. Reaching posLimit is a
	// clean stop, and the first state with instret >= target must not
	// depend on where the posLimit bursts fall.
	StepToRetired(target uint64, posLimit int64) (exited bool, err error)
	// DrainBoundary runs the simulator to the nearest drained
	// (checkpointable) boundary with fetch held. A no-op for functional
	// simulators, whose every instruction boundary is drained.
	DrainBoundary() error
	// Checkpoint captures the drained state.
	Checkpoint() (*ckpt.Checkpoint, error)
	// Restore overwrites the simulator with ck. Only valid on a freshly
	// built (drained) simulator.
	Restore(ck *ckpt.Checkpoint) error
}

// CheckpointSink receives each periodic checkpoint with the cumulative
// progress at its boundary. Returning an error aborts the run; a sink that
// wants persistence failures to degrade rather than kill the job must
// swallow them.
type CheckpointSink func(instret uint64, cycles int64, ck *ckpt.Checkpoint) error

// DriveCkpt runs s to completion like Drive — chunk-sized bursts, context
// checks, progress reports — and additionally drains and checkpoints the
// simulator every `interval` retired instructions (0 falls back to plain
// Drive). Boundaries land at the first drained point at or after each
// multiple of interval, exactly as the simulators' RunN places them.
//
// Determinism contract: the boundary placement depends only on the
// simulated instruction stream and interval — not on chunk, wall time, or
// how often the context was polled — so an uninterrupted run and a run
// resumed from any checkpoint produce identical boundaries, cycle counts
// and results. The drains themselves perturb cycle-level timing (bubbles
// while the pipeline empties), which is why interval must be part of any
// content address that names the result.
func DriveCkpt(ctx context.Context, s CheckpointStepper, cap, chunk int64, interval uint64,
	sink CheckpointSink, progress func(cycles int64, instret uint64)) error {
	if interval == 0 {
		return Drive(ctx, s, cap, chunk, progress)
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	report := func() {
		if progress != nil {
			c, i := s.Progress()
			progress(c, i)
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, i := s.Progress()
		// Next boundary target: the first multiple of interval strictly
		// above the current retirement count (drain overshoot can skip
		// whole multiples; the formula is self-healing either way).
		target := (i/interval + 1) * interval
		limit := s.Pos() + chunk
		if cap > 0 && limit > cap {
			limit = cap
		}
		exited, err := s.StepToRetired(target, limit)
		report()
		if err != nil {
			return err
		}
		if exited {
			return nil
		}
		if _, i = s.Progress(); i >= target {
			if err := s.DrainBoundary(); err != nil {
				return err
			}
			ck, err := s.Checkpoint()
			if err != nil {
				return err
			}
			c, i := s.Progress()
			if sink != nil {
				if err := sink(i, c, ck); err != nil {
					return err
				}
			}
			report()
		}
		if cap > 0 && s.Pos() >= cap {
			c, i := s.Progress()
			return fmt.Errorf("batch: cap %d exceeded (cycles %d, instructions %d)", cap, c, i)
		}
	}
}

// Resumed wraps a stepper that was just restored from a checkpoint so its
// cumulative position and progress include the donor run's pre-checkpoint
// cycles. A freshly built cycle simulator restarts its cycle counter at
// zero after Restore; the wrapper adds the checkpoint's cumulative cycle
// count back, so caps, chunk limits, progress reports and subsequent
// checkpoints all see one continuous run. Functional steppers (whose
// position is the retirement count, fully carried by the checkpoint) pass
// cycles == 0 and the wrapper is an identity.
func Resumed(s CheckpointStepper, cycles int64) CheckpointStepper {
	if cycles == 0 {
		return s
	}
	return &resumed{inner: s, off: cycles}
}

type resumed struct {
	inner CheckpointStepper
	off   int64
}

func (r *resumed) Pos() int64 { return r.inner.Pos() + r.off }

func (r *resumed) Progress() (int64, uint64) {
	c, i := r.inner.Progress()
	return c + r.off, i
}

func (r *resumed) StepTo(limit int64) (bool, error) {
	return r.inner.StepTo(limit - r.off)
}

func (r *resumed) StepToRetired(target uint64, posLimit int64) (bool, error) {
	return r.inner.StepToRetired(target, posLimit-r.off)
}

func (r *resumed) DrainBoundary() error { return r.inner.DrainBoundary() }

func (r *resumed) Checkpoint() (*ckpt.Checkpoint, error) { return r.inner.Checkpoint() }

func (r *resumed) Restore(ck *ckpt.Checkpoint) error { return r.inner.Restore(ck) }
