package gen_test

import (
	"go/format"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"rcpn/internal/gen"
	"rcpn/internal/machine"
)

func generate(t *testing.T, spec machine.Spec, pkg string) []byte {
	t.Helper()
	src, err := gen.Generate(spec, gen.Options{Package: pkg, Model: pkg, OutDir: "internal/" + pkg})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestByteStable pins generation as a pure function: the same spec emits
// identical bytes every time (the property the CI staleness gate relies
// on).
func TestByteStable(t *testing.T) {
	a := generate(t, machine.StrongARMSpec(), "genpipe5")
	b := generate(t, machine.StrongARMSpec(), "genpipe5")
	if string(a) != string(b) {
		t.Fatal("two generations of the same spec differ")
	}
}

// TestGofmtClean pins the emitted source as already formatted: writing it
// to disk and running gofmt must be a no-op.
func TestGofmtClean(t *testing.T) {
	src := generate(t, machine.StrongARMSpec(), "genpipe5")
	formatted, err := format.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(formatted) != string(src) {
		t.Fatal("emitted source is not gofmt-clean")
	}
}

// TestEmittedPackagesBuild generates each CLI model into a scratch
// directory inside the module (an underscore prefix keeps it out of ./...
// wildcards) and compiles it — the end-to-end check that emitted code is
// valid Go against the real machine/obsv/batch surfaces, for the linear
// five-stage model and the deeper-front-end ARM9 alike.
func TestEmittedPackagesBuild(t *testing.T) {
	specs := map[string]machine.Spec{
		"pipe5": machine.StrongARMSpec(),
		"arm9":  machine.ARM9Spec(),
	}
	for name, spec := range specs {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			src := generate(t, spec, "gentest"+name)
			dir, err := os.MkdirTemp(".", "_gentest")
			if err != nil {
				t.Fatal(err)
			}
			defer os.RemoveAll(dir)
			if err := os.WriteFile(filepath.Join(dir, "gen.go"), src, 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("go", "build", "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go build: %v\n%s", err, out)
			}
		})
	}
}

// TestRejectsUnsupportedSpec pins the analyzer's validation: a spec whose
// lowering the emitter cannot faithfully compile must fail loudly at
// generation time, never emit subtly wrong code.
func TestRejectsUnsupportedSpec(t *testing.T) {
	spec := machine.StrongARMSpec()
	spec.Stages[1].Capacity = 4 // multi-slot latches are not compilable yet
	if _, err := gen.Generate(spec, gen.Options{Package: "p", Model: "m"}); err == nil {
		t.Fatal("multi-capacity stage generated without error")
	}

	if _, err := gen.Generate(machine.StrongARMSpec(), gen.Options{}); err == nil {
		t.Fatal("empty package name accepted")
	}
}
