package machine

import (
	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/core"
	"rcpn/internal/mem"
	"rcpn/internal/obsv"
)

// NewStrongARM builds the StrongARM (SA-110) model of the paper's
// evaluation: a simple five-stage pipeline
//
//	Fetch -> Decode/Issue -> Execute -> Memory -> Writeback
//
// modeled as one RCPN place per pipeline latch (FD, EX, ME, WB) plus the
// virtual end place, with one sub-net per ARM operation class — "there are
// six RCPN sub-nets in the StrongArm model" (§5). Default non-pipeline
// units: 16KB I/D caches, static not-taken branch handling (the SA-110 has
// no branch predictor, so every taken branch pays the two-cycle refetch).
func NewStrongARM(p *arm.Program, cfg Config) *Machine {
	m := newMachine("strongarm", p, cfg, func(c *Config) {
		if c.Caches.I == nil {
			c.Caches = mem.DefaultStrongARM()
		}
		if c.Predictor == nil {
			c.Predictor = bpred.NewNotTaken()
		}
	})

	n := core.NewNet(int(arm.NumClasses))
	fd := n.Place("FD", n.Stage("FD", 1)) // fetch latch
	ex := n.Place("EX", n.Stage("EX", 1))
	me := n.Place("ME", n.Stage("ME", 1))
	wb := n.Place("WB", n.Stage("WB", 1))
	end := n.EndPlace("end")

	// The bypass network: results are forwardable from the ME and WB
	// latches (ALU results enter ME, load results enter WB), expressed with
	// the paper's CanReadIn/ReadIn states.
	bypass := []int{me.ID(), wb.ID()}

	inst := func(tok *core.Token) *Inst { return tok.Data.(*Inst) }

	for c := arm.Class(0); c < arm.NumClasses; c++ {
		class := core.ClassID(c)
		name := c.String()

		issue := &core.Transition{
			Name: name + ".issue", Class: class, From: fd, To: ex,
			Guard:   func(tok *core.Token) bool { return inst(tok).IssueReady(bypass) },
			Explain: func(tok *core.Token) obsv.StallKind { return inst(tok).IssueStallKind(bypass) },
			Action:  func(tok *core.Token) { inst(tok).Issue(bypass) },
		}
		if c == arm.ClassMult {
			// The multiplier occupies EX for a data-dependent number of
			// cycles (early termination).
			issue.Action = func(tok *core.Token) {
				in := inst(tok)
				in.Issue(bypass)
				if !in.annulled {
					tok.Delay = in.MulLatency()
				}
			}
		}
		n.AddTransition(issue)

		execute := &core.Transition{
			Name: name + ".execute", Class: class, From: ex, To: me,
			Action: func(tok *core.Token) { inst(tok).Execute() },
		}
		if c == arm.ClassLoadStore || c == arm.ClassLoadStoreM {
			execute.Action = func(tok *core.Token) {
				in := inst(tok)
				in.Execute()
				tok.Delay = in.MemLatency() // "t.delay = mem.delay(addr)"
			}
		}
		n.AddTransition(execute)

		switch c {
		case arm.ClassLoadStore:
			n.AddTransition(&core.Transition{
				Name: name + ".mem", Class: class, From: me, To: wb,
				Action: func(tok *core.Token) { inst(tok).MemAccess() },
			})
		case arm.ClassLoadStoreM:
			// Block transfers stay in ME, moving one register per step
			// (footnote 1 of the paper), then leave through .memlast.
			n.AddTransition(&core.Transition{
				Name: name + ".memstep", Class: class, From: me, To: me, Priority: 0,
				Guard:  func(tok *core.Token) bool { return inst(tok).LSMMore() },
				Action: func(tok *core.Token) { tok.Delay = inst(tok).LSMStep() },
			})
			n.AddTransition(&core.Transition{
				Name: name + ".memlast", Class: class, From: me, To: wb, Priority: 1,
				Action: func(tok *core.Token) { inst(tok).LSMFinish() },
			})
		default:
			n.AddTransition(&core.Transition{
				Name: name + ".mem", Class: class, From: me, To: wb,
			})
		}

		n.AddTransition(&core.Transition{
			Name: name + ".wb", Class: class, From: wb, To: end,
			Action: func(tok *core.Token) { inst(tok).Writeback() },
		})
	}

	n.AddSource(&core.Source{Name: "fetch", To: fd, Fire: m.fetchOne})
	n.OnRetire(m.retire)

	m.Net = n
	m.applyAblation()
	n.MustBuild()
	return m
}
