//go:build race || rcpn_tokendebug

package core

// poolDebug arms the loud double-put diagnosis: race and rcpn_tokendebug
// builds panic at the offending Put call site instead of dropping the
// duplicate. The constant folds the check away entirely in release builds.
const poolDebug = true
