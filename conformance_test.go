package rcpn

// Cross-engine conformance matrix — the differential validation the paper
// performs informally ("the functional correctness of the generated
// simulators was validated against the ISS"), done exhaustively as one
// kernel × engine table: every workload kernel runs to completion on every
// engine — the ISS golden model, the functional RCPN machine, the three
// generated cycle-accurate machines, the hand-written five-stage pipeline
// and the SimpleScalar-like baseline, each additionally in a checkpointed
// variant that snapshots at a drained boundary and finishes in a fresh
// instance — and the complete architectural state at exit must match the
// ISS bit-for-bit: registers r0..r14, the NZCV flags, a digest of the
// entire data memory, the retired-instruction count, and both emitted
// output streams.
//
// This replaces the earlier per-pair differential tests with a single
// registry, so adding an engine (or a kernel) extends the whole matrix at
// once, and a conformance failure names its exact (kernel, engine) cell.

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/mem"
	"rcpn/internal/pipe5"
	"rcpn/internal/simrun"
	"rcpn/internal/ssim"
	"rcpn/internal/workload"
)

// archState is the comparable end-of-run architectural state.
type archState struct {
	regs    [15]uint32 // r0..r14 (r15 representations differ by simulator)
	flags   arm.Flags
	memHash uint64
	instret uint64
	exit    uint32
	output  []uint32
	text    string
}

func (a archState) diff(t *testing.T, name string, golden archState) {
	t.Helper()
	for r, v := range a.regs {
		if v != golden.regs[r] {
			t.Errorf("%s: r%d = %#x, iss %#x", name, r, v, golden.regs[r])
		}
	}
	if a.flags != golden.flags {
		t.Errorf("%s: flags %+v, iss %+v", name, a.flags, golden.flags)
	}
	if a.memHash != golden.memHash {
		t.Errorf("%s: memory digest %#x, iss %#x", name, a.memHash, golden.memHash)
	}
	if a.instret != golden.instret {
		t.Errorf("%s: instret %d, iss %d", name, a.instret, golden.instret)
	}
	if a.exit != golden.exit {
		t.Errorf("%s: exit %d, iss %d", name, a.exit, golden.exit)
	}
	if len(a.output) != len(golden.output) {
		t.Errorf("%s: %d output words, iss %d", name, len(a.output), len(golden.output))
	} else {
		for i := range a.output {
			if a.output[i] != golden.output[i] {
				t.Errorf("%s: output[%d] = %#x, iss %#x", name, i, a.output[i], golden.output[i])
			}
		}
	}
	if a.text != golden.text {
		t.Errorf("%s: text stream differs (%d bytes vs %d)", name, len(a.text), len(golden.text))
	}
}

func stateOf(reg func(arm.Reg) uint32, flags arm.Flags, m *mem.Memory,
	instret uint64, exit uint32, output []uint32, text []byte) archState {
	s := archState{
		flags:   flags,
		memHash: m.Digest(),
		instret: instret,
		exit:    exit,
		output:  output,
		text:    string(text),
	}
	for r := 0; r < 15; r++ {
		s.regs[r] = reg(arm.Reg(r))
	}
	return s
}

// conformanceEngine is one row of the matrix: build constructs a fresh
// instance on a program and returns its checkpointable stepper plus a
// closure that extracts the instance's final architectural state.
type conformanceEngine struct {
	name  string
	build func(p *arm.Program) (batch.CheckpointStepper, func() archState, error)
}

func machineEngine(name string, mk func(p *arm.Program) (*machine.Machine, error)) conformanceEngine {
	return conformanceEngine{name: name, build: func(p *arm.Program) (batch.CheckpointStepper, func() archState, error) {
		m, err := mk(p)
		if err != nil {
			return nil, nil, err
		}
		st := simrun.Machine(m).(batch.CheckpointStepper)
		return st, func() archState {
			return stateOf(m.Reg, m.Flags(), m.Mem, m.Instret, m.ExitCode, m.Output, m.Text)
		}, nil
	}}
}

func conformanceEngines() []conformanceEngine {
	engines := []conformanceEngine{
		{name: "iss", build: func(p *arm.Program) (batch.CheckpointStepper, func() archState, error) {
			c := iss.New(p, 0)
			st := simrun.ISS(c).(batch.CheckpointStepper)
			return st, func() archState {
				return stateOf(func(r arm.Reg) uint32 { return c.R[r] },
					c.F, c.Mem, c.Instret, c.Exit, c.Output, c.Text)
			}, nil
		}},
		{name: "func", build: func(p *arm.Program) (batch.CheckpointStepper, func() archState, error) {
			m := machine.NewFunctional(p, machine.Config{})
			st := simrun.Functional(m).(batch.CheckpointStepper)
			return st, func() archState {
				return stateOf(m.Reg, m.Flags(), m.Mem, m.Instret, m.ExitCode, m.Output, m.Text)
			}, nil
		}},
		machineEngine("strongarm", func(p *arm.Program) (*machine.Machine, error) {
			return machine.NewStrongARM(p, machine.Config{}), nil
		}),
		machineEngine("xscale", func(p *arm.Program) (*machine.Machine, error) {
			return machine.NewXScale(p, machine.Config{}), nil
		}),
		machineEngine("arm9", func(p *arm.Program) (*machine.Machine, error) {
			return machine.NewARM9(p, machine.Config{})
		}),
		{name: "pipe5", build: func(p *arm.Program) (batch.CheckpointStepper, func() archState, error) {
			s := pipe5.New(p, pipe5.Config{})
			st := simrun.Pipe5(s).(batch.CheckpointStepper)
			return st, func() archState {
				return stateOf(func(r arm.Reg) uint32 { return s.R[r] },
					s.F, s.Mem, s.Instret, s.ExitCode, s.Output, s.Text)
			}, nil
		}},
		{name: "ssim", build: func(p *arm.Program) (batch.CheckpointStepper, func() archState, error) {
			s := ssim.New(p, ssim.Config{})
			st := simrun.SSim(s).(batch.CheckpointStepper)
			return st, func() archState {
				return stateOf(s.Reg, s.Flags(), s.Mem(), s.Instret, s.ExitCode(), s.Output(), s.Text())
			}, nil
		}},
	}
	return engines
}

// noLimit is a position limit no kernel reaches.
const noLimit = int64(1) << 60

// ckptBoundary is where the checkpointed variants snapshot: past warmup,
// well before any kernel finishes.
const ckptBoundary = 5000

// runPlain runs a fresh instance to completion.
func runPlain(e conformanceEngine, p *arm.Program) (archState, error) {
	st, state, err := e.build(p)
	if err != nil {
		return archState{}, err
	}
	done, err := st.StepTo(noLimit)
	if err != nil {
		return archState{}, err
	}
	if !done {
		return archState{}, errNotFinished
	}
	return state(), nil
}

// runCheckpointed runs to a drained boundary, snapshots, restores into a
// completely fresh instance, and finishes there — the cross-instance
// handoff every engine's checkpoint support must survive.
func runCheckpointed(e conformanceEngine, p *arm.Program) (archState, error) {
	st, state, err := e.build(p)
	if err != nil {
		return archState{}, err
	}
	done, err := st.StepToRetired(ckptBoundary, noLimit)
	if err != nil {
		return archState{}, err
	}
	if done {
		// Kernel shorter than the boundary: nothing to hand off.
		return state(), nil
	}
	if err := st.DrainBoundary(); err != nil {
		return archState{}, err
	}
	ck, err := st.Checkpoint()
	if err != nil {
		return archState{}, err
	}
	st2, state2, err := e.build(p)
	if err != nil {
		return archState{}, err
	}
	if err := st2.Restore(ck); err != nil {
		return archState{}, err
	}
	done, err = st2.StepTo(noLimit)
	if err != nil {
		return archState{}, err
	}
	if !done {
		return archState{}, errNotFinished
	}
	return state2(), nil
}

type conformanceErr string

func (e conformanceErr) Error() string { return string(e) }

const errNotFinished = conformanceErr("run hit the position limit without exiting")

// TestConformanceMatrix is the kernel × engine matrix: every engine — and
// its checkpointed variant — must end every kernel in the ISS-golden
// architectural state.
func TestConformanceMatrix(t *testing.T) {
	engines := conformanceEngines()
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			golden := iss.New(p, 0)
			golden.MaxInstrs = 200_000_000
			if err := golden.Run(); err != nil {
				t.Fatalf("iss: %v", err)
			}
			ref := stateOf(func(r arm.Reg) uint32 { return golden.R[r] },
				golden.F, golden.Mem, golden.Instret, golden.Exit, golden.Output, golden.Text)

			for _, e := range engines {
				e := e
				t.Run(e.name, func(t *testing.T) {
					got, err := runPlain(e, p)
					if err != nil {
						t.Fatalf("%s: %v", e.name, err)
					}
					got.diff(t, e.name, ref)
				})
				t.Run(e.name+"+ckpt", func(t *testing.T) {
					got, err := runCheckpointed(e, p)
					if err != nil {
						t.Fatalf("%s+ckpt: %v", e.name, err)
					}
					got.diff(t, e.name+"+ckpt", ref)
				})
			}
		})
	}
}
