package batch

import (
	"context"
	"fmt"
)

// Stepper is the minimal chunked-execution surface of a simulator. The
// concrete simulators all expose a "run until a cumulative limit" loop
// (cycles for the detailed models, instructions for the functional ones);
// a Stepper adapts that loop so a driver can interleave limit-sized bursts
// with context checks and progress reports without perturbing the
// simulation: the sequence of simulated steps is identical no matter where
// the chunk boundaries fall.
type Stepper interface {
	// Pos is the cumulative position in the unit StepTo limits by
	// (cycles for detailed simulators, instructions for functional ones).
	Pos() int64
	// StepTo advances the simulation until Pos() >= limit, the program
	// exits, or a simulation error occurs. Reaching the limit is not an
	// error; exited reports program completion.
	StepTo(limit int64) (exited bool, err error)
	// Progress returns the cumulative (cycles, instructions) so far.
	// Purely functional simulators report zero cycles.
	Progress() (cycles int64, instret uint64)
}

// DefaultChunk is the burst length Drive uses between context checks when
// the caller passes chunk <= 0. At typical simulation speeds (a few Mcycles
// per second and up) this bounds cancellation latency to well under a
// second while keeping the check overhead unmeasurable.
const DefaultChunk = 1 << 18

// Drive runs s to completion in chunk-sized bursts, checking ctx between
// bursts and reporting cumulative progress after each one. It returns nil
// when the program exits, ctx.Err() when canceled or past its deadline
// (the coarse cycle-granularity deadline check: the simulator actually
// stops, nothing is leaked), or an error when the simulation fails or
// exceeds cap (a cumulative position cap; 0 = none).
func Drive(ctx context.Context, s Stepper, cap, chunk int64, progress func(cycles int64, instret uint64)) error {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		limit := s.Pos() + chunk
		if cap > 0 && limit > cap {
			limit = cap
		}
		exited, err := s.StepTo(limit)
		if progress != nil {
			c, i := s.Progress()
			progress(c, i)
		}
		if err != nil {
			return err
		}
		if exited {
			return nil
		}
		if cap > 0 && s.Pos() >= cap {
			c, i := s.Progress()
			return fmt.Errorf("batch: cap %d exceeded (cycles %d, instructions %d)", cap, c, i)
		}
	}
}
