package workload

import "fmt"

// crcSource is the MiBench crc32 kernel: a bit-serial CRC-32 (polynomial
// 0xEDB88320) over an LCG-generated buffer. The inner loop is the classic
// shift/conditional-xor pair — a dense stream of flag-setting shifts and
// conditionally executed instructions.
func crcSource(scale int) string {
	size := 2048 * scale
	return fmt.Sprintf(`
; crc32 kernel (MiBench crc) — bit-serial CRC over %[1]d bytes
_start:
	ldr r0, =buf
	ldr r1, =%[1]d
	ldr r2, =0x12345678      ; LCG seed
	ldr r3, =1664525
	ldr r4, =1013904223
gen:
	mla r2, r2, r3, r4       ; x = x*1664525 + 1013904223
	mov r5, r2, lsr #24
	strb r5, [r0], #1
	subs r1, r1, #1
	bne gen

	ldr r0, =buf
	ldr r1, =%[1]d
	mvn r2, #0               ; crc = 0xffffffff
	ldr r6, =0xEDB88320
byteloop:
	ldrb r3, [r0], #1
	eor r2, r2, r3
	mov r4, #8
bitloop:
	movs r2, r2, lsr #1      ; C := bit shifted out
	eorcs r2, r2, r6
	subs r4, r4, #1
	bne bitloop
	subs r1, r1, #1
	bne byteloop

	mvn r0, r2               ; final CRC
	swi #1
	mov r0, #0
	swi #0
	.ltorg
	.align
buf:
	.space %[1]d
`, size)
}
