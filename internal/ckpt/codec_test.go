package ckpt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"rcpn/internal/bpred"
	"rcpn/internal/mem"
)

// randomCheckpoint generates an arbitrary but well-formed checkpoint:
// canonical ascending page set, optional warm state, nil (never empty
// non-nil) slices so DeepEqual matches the decoder's conventions.
func randomCheckpoint(rng *rand.Rand) *Checkpoint {
	ck := &Checkpoint{
		Flags:   rng.Uint32() & 0xf,
		Instret: rng.Uint64(),
		Exited:  rng.Intn(2) == 1,
		Exit:    rng.Uint32(),
	}
	for i := range ck.R {
		ck.R[i] = rng.Uint32()
	}
	if n := rng.Intn(8); n > 0 {
		ck.Output = make([]uint32, n)
		for i := range ck.Output {
			ck.Output[i] = rng.Uint32()
		}
	}
	if n := rng.Intn(16); n > 0 {
		ck.Text = make([]byte, n)
		rng.Read(ck.Text)
	}
	base := uint32(0)
	for i, n := 0, rng.Intn(5); i < n; i++ {
		base += uint32(1+rng.Intn(8)) * mem.PageBytes
		data := make([]byte, mem.PageBytes)
		rng.Read(data)
		ck.Mem = append(ck.Mem, Page{Base: base, Data: data})
	}
	randCache := func() *mem.CacheState {
		n := 1 + rng.Intn(64)
		st := &mem.CacheState{
			Tags:  make([]uint32, n),
			LRU:   make([]uint64, n),
			Clock: rng.Uint64(),
		}
		for i := range st.Tags {
			st.Tags[i] = rng.Uint32()
			st.LRU[i] = rng.Uint64()
		}
		st.Stats.Hits = rng.Uint64()
		st.Stats.Misses = rng.Uint64()
		return st
	}
	if rng.Intn(2) == 1 {
		ck.ICache = randCache()
	}
	if rng.Intn(2) == 1 {
		ck.DCache = randCache()
	}
	if rng.Intn(2) == 1 {
		ck.ITLB = randCache()
	}
	if rng.Intn(2) == 1 {
		ck.DTLB = randCache()
	}
	switch rng.Intn(3) {
	case 1:
		ck.Pred = &bpred.State{Kind: "not-taken",
			Stats: bpred.Stats{Lookups: rng.Uint64(), Correct: rng.Uint64()}}
	case 2:
		n := 1 + rng.Intn(64)
		st := &bpred.State{Kind: "bimodal",
			Stats:   bpred.Stats{Lookups: rng.Uint64(), Correct: rng.Uint64()},
			Counter: make([]uint8, n),
			BTBTag:  make([]uint32, n),
			BTBTgt:  make([]uint32, n),
		}
		rng.Read(st.Counter)
		for i := range st.BTBTag {
			st.BTBTag[i] = rng.Uint32()
			st.BTBTgt[i] = rng.Uint32()
		}
		ck.Pred = st
	}
	return ck
}

// TestCodecRoundTrip is the codec property test: decode(encode(ck)) is
// structurally identical and re-encodes to the same bytes.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		ck := randomCheckpoint(rng)
		data, err := ck.Bytes()
		if err != nil {
			t.Fatalf("iter %d: encode: %v", i, err)
		}
		got, err := FromBytes(data)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, ck) {
			t.Fatalf("iter %d: round trip mismatch:\n got %+v\nwant %+v", i, got, ck)
		}
		data2, err := got.Bytes()
		if err != nil {
			t.Fatalf("iter %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("iter %d: re-encode not byte-identical", i)
		}
	}
}

// TestCodecDeterministic: equal states encode equally regardless of history.
func TestCodecDeterministic(t *testing.T) {
	a := randomCheckpoint(rand.New(rand.NewSource(7)))
	b := randomCheckpoint(rand.New(rand.NewSource(7)))
	da, _ := a.Bytes()
	db, _ := b.Bytes()
	if !bytes.Equal(da, db) {
		t.Fatal("identical states encoded differently")
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	ck := randomCheckpoint(rand.New(rand.NewSource(2)))
	data, err := ck.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	// Truncations anywhere must error, never panic or succeed.
	for _, n := range []int{0, 1, 7, 8, 11, 12, 20, 40, len(data) / 2, len(data) - 1} {
		if n >= len(data) {
			continue
		}
		if _, err := FromBytes(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), data...)
		f(b)
		return b
	}
	if _, err := FromBytes(mutate(func(b []byte) { b[0] ^= 0xff })); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := FromBytes(mutate(func(b []byte) { b[8] = 99 })); err == nil {
		t.Error("bad version accepted")
	}

	// A huge length field must be rejected by the count limits, not
	// attempted as an allocation. Offset 93 is the output count (8 magic +
	// 4 version + 64 regs + 4 flags + 8 instret + 1 exited + 4 exit).
	if _, err := FromBytes(mutate(func(b []byte) {
		b[93], b[94], b[95], b[96] = 0xff, 0xff, 0xff, 0xff
	})); err == nil {
		t.Error("absurd output count accepted")
	}
}

func TestCodecRejectsBadPages(t *testing.T) {
	mk := func(pages []Page) []byte {
		ck := &Checkpoint{Mem: pages}
		data, err := ck.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	blank := func() []byte { return make([]byte, mem.PageBytes) }

	// The encoder is producer-trusted; the decoder must still reject
	// non-canonical streams (out-of-order, duplicate or misaligned pages).
	if _, err := FromBytes(mk([]Page{
		{Base: 2 * mem.PageBytes, Data: blank()},
		{Base: 1 * mem.PageBytes, Data: blank()},
	})); err == nil {
		t.Error("descending page bases accepted")
	}
	if _, err := FromBytes(mk([]Page{
		{Base: mem.PageBytes, Data: blank()},
		{Base: mem.PageBytes, Data: blank()},
	})); err == nil {
		t.Error("duplicate page base accepted")
	}
	if _, err := FromBytes(mk([]Page{{Base: 12, Data: blank()}})); err == nil {
		t.Error("misaligned page base accepted")
	}
}
