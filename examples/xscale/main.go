// Xscale runs the paper's six benchmark kernels on the RCPN-generated
// XScale simulator and prints the per-benchmark report a user of the
// framework would read: cycles, CPI, cache hit ratios, branch-prediction
// accuracy and simulation speed.
//
// Run with: go run ./examples/xscale [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rcpn/internal/machine"
	"rcpn/internal/workload"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	flag.Parse()

	fmt.Println("XScale (PXA250-class, Fig. 9 pipeline) — RCPN-generated simulator")
	fmt.Printf("%-10s %12s %10s %7s %8s %8s %8s %10s\n",
		"benchmark", "instructions", "cycles", "CPI", "I$ hit", "D$ hit", "bpred", "Mcycles/s")

	for _, w := range workload.All() {
		p, err := w.Program(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m := machine.NewXScale(p, machine.Config{})
		start := time.Now()
		if err := m.Run(0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Printf("%-10s %12d %10d %7.2f %7.1f%% %7.1f%% %7.1f%% %10.2f\n",
			w.Name, m.Instret, m.Net.CycleCount(), m.CPI(),
			100*m.ICache.Stats.HitRatio(), 100*m.DCache.Stats.HitRatio(),
			100*m.Pred.Stats().Accuracy(),
			float64(m.Net.CycleCount())/wall.Seconds()/1e6)
	}
}
