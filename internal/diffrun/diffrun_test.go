package diffrun

import (
	"testing"

	"rcpn/internal/armgen"
)

// TestGeneratedSeedsConform is the in-tree slice of the fuzzer: a band of
// generated programs must run divergence-free across the whole engine
// registry, plain and checkpointed. cmd/rcpnfuzz sweeps far larger seed
// ranges in CI.
func TestGeneratedSeedsConform(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := 1; seed <= seeds; seed++ {
		p, err := armgen.Generate(armgen.Config{Seed: uint64(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := Run(p.Image, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Clean() {
			t.Errorf("seed %d:\n%s\nprogram:\n%s", seed, res.Report(), p.Source)
		}
	}
}

// TestReportDeterministic requires byte-identical reports across repeated
// runs of the same program — the contract the minimizer's determinism
// re-check and CI log diffing rely on.
func TestReportDeterministic(t *testing.T) {
	p, err := armgen.Generate(armgen.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(p.Image, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p.Image, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatalf("reports differ between runs:\n--- a\n%s\n--- b\n%s", a.Report(), b.Report())
	}
	if a.Signature() != b.Signature() {
		t.Fatalf("signatures differ between runs")
	}
}

// TestMutationHookDetected plants a trivially wrong engine (every MOV
// immediate is off by one) and requires the runner to flag it and only it.
func TestMutationHookDetected(t *testing.T) {
	p, err := armgen.Generate(armgen.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	engines := Engines()
	for i, e := range engines {
		if e.Name == "func" {
			engines[i] = e.WithProgramMutation(func(words []uint32) {
				for j, w := range words {
					// MOV rd, #imm (AL only): flip immediate bit 0.
					if w&0x0fef0000 == 0x03a00000 && w>>28 == 14 {
						words[j] = w ^ 1
					}
				}
			})
		}
	}
	res, err := Run(p.Image, Options{Engines: engines})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatal("mutated engine not detected")
	}
	for _, d := range res.Divergences {
		if d.Engine != "func" {
			t.Errorf("unexpected divergence in unmutated engine %s+%s", d.Engine, d.Variant)
		}
	}
}
