package machine

import "rcpn/internal/obsv"

// The observability attachments of an RCPN machine delegate to the net:
// the engine already sees every firing, delivery and retirement, so the
// model layer only adds what the net cannot know — the register-hazard
// sub-classification (Transition.Explain on the issue transitions, wired
// in the model files) and the bypass-served/file-read operand counters
// (Inst.readFrom). Machine implements obsv.Instrumentable.

// AttachTrace routes the model's token game into tr. Must be called
// before the first cycle.
func (m *Machine) AttachTrace(tr *obsv.Tracer) {
	if m.functional {
		// The extracted-functional model has no net; trace retirements as
		// a single-place token game (see functional.go).
		m.funcTracer = tr
		tr.Locs = []string{"commit"}
		return
	}
	m.Net.AttachTrace(tr)
}

// EnableProfile turns on per-cycle stall attribution over the model's
// pipeline stages and returns the live profile. Must be called before the
// first cycle; calling it again returns the same profile.
func (m *Machine) EnableProfile() *obsv.StallProfile {
	if m.prof != nil {
		return m.prof
	}
	if m.functional {
		// One virtual stage that advances once per executed instruction.
		m.prof = obsv.NewStallProfile("commit")
		return m.prof
	}
	m.prof = m.Net.EnableProfile()
	return m.prof
}

// Profile returns the attached stall profile, or nil.
func (m *Machine) Profile() *obsv.StallProfile { return m.prof }
