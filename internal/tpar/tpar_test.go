package tpar

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"rcpn/internal/batch"
	"rcpn/internal/diffrun"
	"rcpn/internal/faultinj"
	"rcpn/internal/workload"
)

func engineByName(t *testing.T, name string) diffrun.Engine {
	t.Helper()
	for _, e := range diffrun.Engines() {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("engine %q not registered", name)
	return diffrun.Engine{}
}

func TestPlanClampAndLogOnce(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	plan, err := NewPlan(p, Options{
		Segments:   1 << 20, // absurd: must clamp to total/MinSegment
		MinSegment: 2048,
		Logf:       func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total == 0 {
		t.Fatal("leader measured zero instructions")
	}
	if got, max := uint64(plan.Segments), plan.Total/2048; got > max {
		t.Errorf("segments %d not clamped to %d (total %d)", got, max, plan.Total)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "clamped segments") {
		t.Errorf("want exactly one clamp log line, got %q", logs)
	}
	if len(plan.Boundaries) != plan.Segments-1 {
		t.Errorf("want %d boundaries, got %d", plan.Segments-1, len(plan.Boundaries))
	}
	for k, b := range plan.Boundaries {
		if want := uint64(k+1) * plan.Interval; b != want {
			t.Errorf("boundary %d = %d, want %d", k, b, want)
		}
		if b >= plan.Total {
			t.Errorf("boundary %d = %d past total %d", k, b, plan.Total)
		}
	}
}

func TestWorkerClampLogOnce(t *testing.T) {
	var logs []string
	opt := Options{
		Workers: 512,
		Logf:    func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) },
	}
	w := clampWorkers(&opt, 3)
	if w > 3 || w > runtime.GOMAXPROCS(0) || w < 1 {
		t.Errorf("clampWorkers(512, 3) = %d", w)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "clamped workers") {
		t.Errorf("want exactly one clamp log line, got %q", logs)
	}
}

// TestWorkerCountInvariance is the graceful-degradation regression: the
// stitched result must be identical whether the sweep runs wide, narrow,
// or fully serial (the GOMAXPROCS=1 degenerate case), and none of those
// may deadlock.
func TestWorkerCountInvariance(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	e := engineByName(t, "pipe5")
	base := Options{Segments: 4, Mode: Exact, Warm: DefaultWarm(e.Name),
		MinSegment: 64, Profile: true}
	plan, err := NewPlan(p, base)
	if err != nil {
		t.Fatal(err)
	}
	var results []*Result
	for _, workers := range []int{1, 2, 16} {
		opt := base
		opt.Workers = workers
		r, err := RunPlan(p, plan, EngineBuild(e, p), opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, r)
	}
	for i, r := range results[1:] {
		r.Workers = results[0].Workers // the one field allowed to differ
		r.Reassigned = results[0].Reassigned
		if !reflect.DeepEqual(results[0], r) {
			t.Errorf("result with more workers differs from serial degenerate case (case %d)", i+1)
		}
	}
}

// TestExactAdoptsFunctional: when the engine under simulation is the ISS
// itself, the leader's checkpoints are exact, so every speculative segment
// must be adopted with zero re-runs.
func TestExactAdoptsFunctional(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	e := engineByName(t, "iss")
	opt := Options{Segments: 4, Mode: Exact, MinSegment: 64}
	r, err := Run(p, EngineBuild(e, p), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reruns != 0 {
		t.Errorf("iss exact mode re-ran %d segments, want 0", r.Reruns)
	}
	if r.Adopted != r.Plan.Segments {
		t.Errorf("adopted %d of %d segments", r.Adopted, r.Plan.Segments)
	}
	if r.Instret != r.Plan.Total {
		t.Errorf("stitched instret %d, want plan total %d", r.Instret, r.Plan.Total)
	}
	if r.State == nil || r.State.Instret != r.Plan.Total {
		t.Errorf("final state missing or wrong: %+v", r.State)
	}
}

// TestExactMatchesSerial: the converged parallel chain must reproduce the
// serial segmented reference byte-for-byte — state, cycles, stall profile.
func TestExactMatchesSerial(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	e := engineByName(t, "pipe5")
	opt := Options{Segments: 3, Mode: Exact, Warm: DefaultWarm(e.Name),
		MinSegment: 64, Profile: true}
	plan, err := NewPlan(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPlan(p, plan, EngineBuild(e, p), opt)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := Serial(plan, EngineBuild(e, p), opt)
	if err != nil {
		t.Fatal(err)
	}
	if par.Cycles != ser.Cycles {
		t.Errorf("cycles: parallel %d, serial %d", par.Cycles, ser.Cycles)
	}
	if par.Instret != ser.Instret {
		t.Errorf("instret: parallel %d, serial %d", par.Instret, ser.Instret)
	}
	if !reflect.DeepEqual(par.State, ser.State) {
		t.Errorf("final state differs:\n parallel %+v\n serial   %+v", par.State, ser.State)
	}
	if !reflect.DeepEqual(par.Stalls, ser.Stalls) {
		t.Errorf("stall profiles differ:\n parallel %+v\n serial   %+v", par.Stalls, ser.Stalls)
	}
}

// TestSampled: sampled mode accepts every segment and reports a
// non-negative aggregate error bound; the stitched cycle count must land
// near the serial reference (the bound is the claim, the reference the
// check).
func TestSampled(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	e := engineByName(t, "pipe5")
	opt := Options{Segments: 4, Mode: Sampled, Warm: DefaultWarm(e.Name), MinSegment: 64}
	plan, err := NewPlan(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunPlan(p, plan, EngineBuild(e, p), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Adopted != plan.Segments || r.Reruns != 0 {
		t.Errorf("sampled mode: adopted %d reruns %d, want %d/0", r.Adopted, r.Reruns, plan.Segments)
	}
	if r.ErrBoundPct < 0 {
		t.Errorf("negative error bound %f", r.ErrBoundPct)
	}
	ser, err := Serial(plan, EngineBuild(e, p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotErr := 100 * absF(float64(r.Cycles)-float64(ser.Cycles)) / float64(ser.Cycles)
	if gotErr > 25 {
		t.Errorf("sampled cycle error %.2f%% vs serial — warmup bias out of control", gotErr)
	}
	if r.State == nil || r.State.Exit != ser.State.Exit {
		t.Errorf("sampled final state missing or wrong exit: %+v", r.State)
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestKillReassign arms a panic rule at the tpar.segment site: the worker
// running the last segment crashes, the pool recovers, the segment is
// reassigned, and the stitched result is byte-identical to an unfaulted
// run.
func TestKillReassign(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	e := engineByName(t, "pipe5")
	opt := Options{Segments: 3, Mode: Exact, Warm: DefaultWarm(e.Name),
		MinSegment: 64, Profile: true}
	plan, err := NewPlan(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunPlan(p, plan, EngineBuild(e, p), opt)
	if err != nil {
		t.Fatal(err)
	}

	fopt := opt
	// Trigger on the last segment's starting instret: deterministic under
	// any worker interleaving because the value identifies the segment.
	fopt.Fault = faultinj.New(faultinj.Rule{
		Site:    faultinj.SiteTparSegment,
		AtValue: plan.Boundaries[len(plan.Boundaries)-1],
		Action:  faultinj.ActPanic,
	})
	faulted, err := RunPlan(p, plan, EngineBuild(e, p), fopt)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Reassigned < 1 {
		t.Fatalf("fault did not cause a reassignment (fired: %v)", fopt.Fault.Fired())
	}
	faulted.Reassigned = clean.Reassigned
	for i := range faulted.Segments {
		faulted.Segments[i].Reassigned = clean.Segments[i].Reassigned
	}
	if !reflect.DeepEqual(clean, faulted) {
		t.Errorf("result after worker kill differs from clean run:\n clean   %+v\n faulted %+v", clean, faulted)
	}
}

// TestKillOutOfRetries: a rule that keeps firing must surface as an error,
// not a hang.
func TestKillOutOfRetries(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	e := engineByName(t, "iss")
	opt := Options{Segments: 2, Mode: Exact, MinSegment: 64,
		Fault: faultinj.New(faultinj.Rule{
			Site: faultinj.SiteTparSegment, Times: -1, Action: faultinj.ActPanic,
		})}
	if _, err := Run(p, EngineBuild(e, p), opt); err == nil {
		t.Fatal("want error when every attempt crashes")
	}
}

// TestStepper drives a parallel run through the batch.Stepper adapter and
// checks the final numbers match a direct run.
func TestStepper(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	e := engineByName(t, "pipe5")
	opt := Options{Segments: 3, Mode: Exact, Warm: DefaultWarm(e.Name), MinSegment: 64}
	plan, err := NewPlan(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunPlan(p, plan, EngineBuild(e, p), opt)
	if err != nil {
		t.Fatal(err)
	}

	st := NewStepper(p, EngineBuild(e, p), opt)
	var mu sync.Mutex
	var lastC int64
	var lastI uint64
	err = batch.Drive(context.Background(), st, 0, 4096, func(c int64, i uint64) {
		mu.Lock()
		lastC, lastI = c, i
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != direct.Cycles || res.Instret != direct.Instret {
		t.Errorf("stepper result (%d, %d) != direct (%d, %d)",
			res.Cycles, res.Instret, direct.Cycles, direct.Instret)
	}
	if lastC != res.Cycles || lastI != res.Instret {
		t.Errorf("final progress (%d, %d) did not snap to stitched (%d, %d)",
			lastC, lastI, res.Cycles, res.Instret)
	}
}
