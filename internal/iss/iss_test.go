package iss

import (
	"testing"

	"rcpn/internal/arm"
)

func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, 0)
	c.MaxInstrs = 1_000_000
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSumLoop(t *testing.T) {
	c := run(t, `
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, r1, #1
	cmp r1, #11
	bne loop
	swi #1      ; emit sum
	swi #0
`)
	if len(c.Output) != 1 || c.Output[0] != 55 {
		t.Fatalf("output = %v, want [55]", c.Output)
	}
}

func TestFactorialRecursive(t *testing.T) {
	c := run(t, `
_start:
	mov r0, #6
	bl fact
	swi #1
	swi #0
fact:              ; r0 = n -> r0 = n!
	cmp r0, #1
	movle r0, #1
	movle pc, lr
	push {r4, lr}
	mov r4, r0
	sub r0, r0, #1
	bl fact
	mul r0, r4, r0
	pop {r4, pc}
`)
	if len(c.Output) != 1 || c.Output[0] != 720 {
		t.Fatalf("output = %v, want [720]", c.Output)
	}
}

func TestMemoryAndBytes(t *testing.T) {
	c := run(t, `
	ldr r1, =buf
	mov r2, #0xab
	strb r2, [r1, #1]
	ldr r3, [r1]
	mov r0, r3
	swi #1
	ldrb r0, [r1, #1]
	swi #1
	swi #0
buf:
	.word 0x11002233
`)
	if c.Output[0] != 0x1100ab33 {
		t.Errorf("word after strb = %#x", c.Output[0])
	}
	if c.Output[1] != 0xab {
		t.Errorf("byte readback = %#x", c.Output[1])
	}
}

func TestLdmStm(t *testing.T) {
	c := run(t, `
	mov r1, #1
	mov r2, #2
	mov r3, #3
	push {r1-r3}
	mov r1, #0
	mov r2, #0
	mov r3, #0
	pop {r1-r3}
	add r0, r1, r2
	add r0, r0, r3
	swi #1
	swi #0
`)
	if c.Output[0] != 6 {
		t.Fatalf("sum after push/pop = %d", c.Output[0])
	}
}

func TestConditionalExecution(t *testing.T) {
	c := run(t, `
	mov r0, #0
	mov r1, #5
	cmp r1, #3
	addgt r0, r0, #100   ; executes
	addlt r0, r0, #10    ; skipped
	addeq r0, r0, #1     ; skipped
	swi #1
	swi #0
`)
	if c.Output[0] != 100 {
		t.Fatalf("conditional result = %d", c.Output[0])
	}
}

func TestShiftsAndFlags(t *testing.T) {
	c := run(t, `
	mov r1, #1
	movs r2, r1, lsl #31  ; r2 = 0x80000000, N set
	swi #1                ; should not be skipped (swi unconditional)
	mvnmi r0, #0          ; N set -> r0 = 0xffffffff
	swi #1
	mov r0, r2, asr #31   ; sign fill
	swi #1
	swi #0
`)
	// Note: first emit sends r0 which still holds 0 at that point.
	if c.Output[1] != 0xffffffff {
		t.Errorf("mvnmi = %#x", c.Output[1])
	}
	if c.Output[2] != 0xffffffff {
		t.Errorf("asr 31 = %#x", c.Output[2])
	}
}

func TestMultiplyAccumulate(t *testing.T) {
	c := run(t, `
	mov r1, #7
	mov r2, #9
	mov r3, #5
	mla r0, r1, r2, r3
	swi #1
	swi #0
`)
	if c.Output[0] != 68 {
		t.Fatalf("mla = %d", c.Output[0])
	}
}

func TestPCRelativeLoadAndPCReads(t *testing.T) {
	c := run(t, `
	ldr r0, val       ; pc-relative
	swi #1
	mov r0, pc        ; reads addr+8 = 0x8008 + 8
	swi #1
	swi #0
val:
	.word 12345
`)
	if c.Output[0] != 12345 {
		t.Errorf("pc-relative load = %d", c.Output[0])
	}
	if c.Output[1] != 0x8008+8 {
		t.Errorf("mov r0, pc = %#x, want %#x", c.Output[1], 0x8008+8)
	}
}

func TestExitCodeAndText(t *testing.T) {
	c := run(t, `
	mov r0, #'H'
	swi #2
	mov r0, #'i'
	swi #2
	mov r0, #3
	swi #0
`)
	if string(c.Text) != "Hi" {
		t.Errorf("text = %q", c.Text)
	}
	if c.Exit != 3 {
		t.Errorf("exit = %d", c.Exit)
	}
	if c.Instret != 6 {
		t.Errorf("instret = %d", c.Instret)
	}
}

func TestUndefinedInstruction(t *testing.T) {
	p, err := arm.Assemble(".word 0xec000000\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, 0)
	if err := c.Step(); err == nil {
		t.Fatal("expected undefined-instruction error")
	}
}

func TestInstructionLimit(t *testing.T) {
	p, err := arm.Assemble("x: b x\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, 0)
	c.MaxInstrs = 100
	if err := c.Run(); err == nil {
		t.Fatal("expected limit error")
	}
	if c.Instret != 100 {
		t.Errorf("instret = %d", c.Instret)
	}
}

func TestLoadToPCReturns(t *testing.T) {
	c := run(t, `
	bl sub
	mov r0, #1
	swi #1
	swi #0
sub:
	push {lr}
	pop {pc}
`)
	if len(c.Output) != 1 || c.Output[0] != 1 {
		t.Fatalf("output = %v", c.Output)
	}
}

func TestBranchWithLinkChain(t *testing.T) {
	c := run(t, `
	mov r0, #0
	bl a
	swi #1
	swi #0
a:
	add r0, r0, #1
	mov pc, lr
`)
	if c.Output[0] != 1 {
		t.Fatalf("output = %v", c.Output)
	}
}
