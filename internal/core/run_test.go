package core

import (
	"strings"
	"testing"
)

// runNet builds a minimal valid net whose Step is a no-op (no tokens ever
// enter), so Run's control flow can be observed in isolation.
func runNet(t *testing.T) *Net {
	t.Helper()
	n := NewNet(1)
	p := n.Place("p", n.Stage("s", 1))
	end := n.EndPlace("end")
	n.AddTransition(&Transition{Name: "t", From: p, To: end})
	n.AddSource(&Source{Name: "src", To: p, Guard: func() bool { return false },
		Fire: func() *Token { return nil }})
	if err := n.Build(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRunMaxCyclesSemantics pins the documented Net.Run contract:
//   - stop is evaluated before every cycle (a pre-satisfied stop runs zero
//     cycles and a stop that holds exactly at the budget wins over the
//     cycle-limit error);
//   - maxCycles > 0 bounds the cycles executed by this call, not the net's
//     absolute cycle count, and overrunning it is an error;
//   - maxCycles <= 0 means unlimited.
func TestRunMaxCyclesSemantics(t *testing.T) {
	cases := []struct {
		name      string
		stopAfter int64 // stop() returns true once this many cycles ran (this call)
		maxCycles int64
		want      int64
		wantErr   bool
	}{
		{"stop-already-true", 0, 10, 0, false},
		{"stop-already-true-zero-budget", 0, 0, 0, false},
		{"stop-before-limit", 3, 10, 3, false},
		{"stop-exactly-at-limit", 10, 10, 10, false}, // stop checked first: no error
		{"limit-exceeded", 11, 10, 10, true},
		{"limit-far-exceeded", 1 << 30, 5, 5, true},
		{"unlimited-zero", 250, 0, 250, false},
		{"unlimited-negative", 250, -1, 250, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n := runNet(t)
			// Warm the net so the budget provably counts this call's cycles,
			// not the absolute cycle number.
			if _, err := n.Run(func() bool { return n.CycleCount() >= 7 }, 0); err != nil {
				t.Fatal(err)
			}
			start := n.CycleCount()
			stop := func() bool { return n.CycleCount()-start >= tc.stopAfter }
			got, err := n.Run(stop, tc.maxCycles)
			if got != tc.want {
				t.Errorf("ran %d cycles, want %d", got, tc.want)
			}
			if n.CycleCount()-start != tc.want {
				t.Errorf("net advanced %d cycles, want %d", n.CycleCount()-start, tc.want)
			}
			if tc.wantErr {
				if err == nil || !strings.Contains(err.Error(), "cycle limit") {
					t.Errorf("want cycle-limit error, got %v", err)
				}
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
}
