package loadgen

import (
	"fmt"

	"rcpn/internal/armgen"
	"rcpn/internal/serve"
)

// CorpusConfig parameterizes the seeded job corpus. The zero value (plus a
// seed) is a usable default mix.
type CorpusConfig struct {
	Seed uint64
	// Programs is the number of distinct generated programs (default 16).
	// Submissions cycle through them, so a run longer than the corpus
	// exercises the server's content-addressed dedup and result cache.
	Programs int
	// Simulators is the engine mix to spread jobs over (default pipe5,
	// strongarm, ssim, func — the fast-to-build subset of the registry).
	Simulators []string
	// Tenants is how many distinct X-Tenant identities submit (default 4).
	Tenants int
	// LowPriPct is the percent of submissions tagged X-Priority: low
	// (default 30).
	LowPriPct int
	// MaxCycles is the job-size mix drawn from per submission (default
	// 20k/100k/500k): mixed sizes make head-of-line blocking visible in the
	// latency quantiles.
	MaxCycles []int64
	// Kernels, when non-empty, switches the corpus from generated programs
	// to the named built-in kernels: specs reference kernel+scale workloads
	// whose simulated work is orders of magnitude larger than a generated
	// program's — what a throughput measurement wants, where the generated
	// mix is what admission/dedup coverage wants. Programs then counts
	// distinct (simulator, kernel, scale, size) draws.
	Kernels []string
	// Scales is the kernel workload scale mix (default 1/2/4); only used
	// with Kernels.
	Scales []int
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.Programs <= 0 {
		c.Programs = 16
	}
	if len(c.Simulators) == 0 {
		c.Simulators = []string{"pipe5", "strongarm", "ssim", "func"}
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.LowPriPct == 0 {
		c.LowPriPct = 30
	}
	if len(c.MaxCycles) == 0 {
		if len(c.Kernels) > 0 {
			// Kernels terminate on their own and a run that trips its
			// max_cycles cap counts as failed, so the kernel corpus varies
			// job size through Scales and leaves the cap out of reach.
			c.MaxCycles = []int64{1 << 30}
		} else {
			c.MaxCycles = []int64{20_000, 100_000, 500_000}
		}
	}
	if len(c.Scales) == 0 {
		c.Scales = []int{1, 2, 4}
	}
	return c
}

// Job is one prepared submission: the canonical spec bytes plus the request
// headers that route it.
type Job struct {
	ID       string // content address of Body
	Body     []byte // canonical JobSpec JSON
	Tenant   string
	Priority string // "" (high) or "low"
}

// BuildCorpus generates the seeded spec corpus: cfg.Programs distinct
// armgen programs, each wrapped in a job spec with a simulator, size,
// tenant and priority drawn from the mixes. Everything derives from
// cfg.Seed, so the corpus is byte-identical across runs.
func BuildCorpus(cfg CorpusConfig) ([]Job, error) {
	cfg = cfg.withDefaults()
	r := rng{s: cfg.Seed ^ 0xc0ffee}
	jobs := make([]Job, 0, cfg.Programs)
	for i := 0; i < cfg.Programs; i++ {
		var spec serve.JobSpec
		if len(cfg.Kernels) > 0 {
			spec = serve.JobSpec{
				Simulator: cfg.Simulators[r.intn(len(cfg.Simulators))],
				Kernel:    cfg.Kernels[r.intn(len(cfg.Kernels))],
				Scale:     cfg.Scales[r.intn(len(cfg.Scales))],
				MaxCycles: cfg.MaxCycles[r.intn(len(cfg.MaxCycles))],
			}
		} else {
			// Vary program length with the index so the corpus mixes short
			// and long bodies; the seed offset keeps each program's stream
			// distinct.
			prog, err := armgen.Generate(armgen.Config{
				Seed: cfg.Seed + uint64(i)*0x9e37,
				Len:  16 + 8*(i%5),
			})
			if err != nil {
				return nil, fmt.Errorf("loadgen: corpus program %d: %w", i, err)
			}
			spec = serve.JobSpec{
				Simulator: cfg.Simulators[r.intn(len(cfg.Simulators))],
				Source:    prog.Source,
				Scale:     1,
				MaxCycles: cfg.MaxCycles[r.intn(len(cfg.MaxCycles))],
			}
		}
		if err := spec.Normalize(); err != nil {
			return nil, fmt.Errorf("loadgen: corpus program %d spec: %w", i, err)
		}
		j := Job{
			ID:     spec.ID(),
			Body:   spec.Canonical(),
			Tenant: fmt.Sprintf("tenant-%d", r.intn(cfg.Tenants)),
		}
		if r.intn(100) < cfg.LowPriPct {
			j.Priority = "low"
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}
