package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rcpn/internal/batch"
	"rcpn/internal/faultinj"
)

// durableConfig returns a Config for durability tests: quiet logs, fast
// retries, a data dir under t.TempDir().
func durableConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		Workers:   2,
		DataDir:   dir,
		RetryBase: time.Millisecond,
		RetryMax:  5 * time.Millisecond,
		Logf:      t.Logf,
	}
}

// resultOf extracts the raw result object from a terminal GET body.
func resultOf(t *testing.T, body []byte) json.RawMessage {
	t.Helper()
	var v struct {
		State  string          `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad terminal body %s: %v", body, err)
	}
	return v.Result
}

// TestDurableRestartServesIdenticalBytes: a finished result survives a
// restart — the new process serves it from disk as a cache hit, and the
// payload is byte-identical to what the original run produced.
func TestDurableRestartServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	s1, hs1 := newTestServer(t, durableConfig(t, dir))
	r1 := submit(t, hs1.URL, crcSpec)
	want := resultOf(t, waitState(t, hs1.URL, r1.ID))
	hs1.Close()
	s1.Drain(0)

	s2, hs2 := newTestServer(t, durableConfig(t, dir))
	defer func() { hs2.Close(); s2.Drain(0) }()
	if got := metric(t, hs2.URL, "rcpn_jobs_recovered_total"); got != 1 {
		t.Fatalf("jobs.recovered = %v, want 1", got)
	}
	r2 := submit(t, hs2.URL, crcSpec)
	if r2.ID != r1.ID || !r2.Cached {
		t.Fatalf("restarted server did not serve from recovered cache: %+v", r2)
	}
	got := resultOf(t, waitState(t, hs2.URL, r2.ID))
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs:\n%s\n----\n%s", got, want)
	}
	if got := metric(t, hs2.URL, "rcpn_cache_misses_total"); got != 0 {
		t.Fatalf("restart re-ran a finished job: misses = %v", got)
	}
}

// ckptSpec is a checkpointing job: the interval is part of the spec, so
// checkpointed and plain runs have different content addresses by design.
func ckptSpec(sim string) string {
	return fmt.Sprintf(`{"simulator":%q,"kernel":"crc","checkpoint_interval":2000}`, sim)
}

// TestPanicResumeByteIdentical is the acceptance criterion at the service
// level, per engine: a job killed by an injected worker panic mid-run is
// retried, resumes from its last checkpoint (not from scratch), and the
// final rcpn-batch/v1 result is byte-identical to an uninterrupted run of
// the same spec on a clean server.
func TestPanicResumeByteIdentical(t *testing.T) {
	for _, sim := range []string{"strongarm", "pipe5", "ssim", "func", "iss"} {
		t.Run(sim, func(t *testing.T) {
			spec := ckptSpec(sim)

			clean, hsClean := newTestServer(t, Config{Workers: 1})
			rc := submit(t, hsClean.URL, spec)
			want := resultOf(t, waitState(t, hsClean.URL, rc.ID))
			hsClean.Close()
			clean.Drain(0)

			inj := faultinj.New(faultinj.Rule{
				Site: faultinj.SiteWorkerPanic, AtValue: 5000, Action: faultinj.ActPanic,
				Msg: "injected crash at first boundary past 5000 retirements",
			})
			cfg := durableConfig(t, t.TempDir())
			cfg.Workers = 1
			cfg.Fault = inj
			s, hs := newTestServer(t, cfg)
			defer func() { hs.Close(); s.Drain(0) }()
			r := submit(t, hs.URL, spec)
			if r.ID != rc.ID {
				t.Fatalf("content address differs between servers: %s vs %s", r.ID, rc.ID)
			}
			body := waitState(t, hs.URL, r.ID)
			if !strings.Contains(string(body), `"state": "done"`) && !strings.Contains(string(body), `"state":"done"`) {
				t.Fatalf("job did not finish after injected panic: %s", body)
			}
			got := resultOf(t, body)
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed result differs from uninterrupted run:\n%s\n----\n%s", got, want)
			}
			if got := metric(t, hs.URL, "rcpn_jobs_retried_total"); got < 1 {
				t.Fatalf("jobs.retried = %v, want >= 1 (the panic must have retried)", got)
			}
			if got := metric(t, hs.URL, "rcpn_jobs_resumed_total"); got < 1 {
				t.Fatalf("jobs.resumed = %v, want >= 1 (the retry must resume, not restart)", got)
			}
			if len(inj.Fired()) == 0 {
				t.Fatal("fault never fired; the test exercised nothing")
			}
		})
	}
}

// TestRestartResumesFromCheckpoint: cross-process resume. Server 1 is
// stopped mid-run after the job's first durable checkpoint lands; the
// journal still owes the job. Server 2 recovers it, resumes from the
// checkpoint and produces the byte-identical result of an uninterrupted
// run. (CI's crash-recovery smoke repeats this with a real kill -9.)
func TestRestartResumesFromCheckpoint(t *testing.T) {
	spec := ckptSpec("pipe5")

	clean, hsClean := newTestServer(t, Config{Workers: 1})
	rc := submit(t, hsClean.URL, spec)
	want := resultOf(t, waitState(t, hsClean.URL, rc.ID))
	hsClean.Close()
	clean.Drain(0)

	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.Workers = 1
	// Slow the simulation down at every checkpoint so the drain below
	// reliably lands mid-run.
	cfg.Fault = faultinj.New(faultinj.Rule{
		Site: faultinj.SiteCkptWrite, Times: -1,
		Action: faultinj.ActDelay, Delay: 20 * time.Millisecond,
	})
	s1, hs1 := newTestServer(t, cfg)
	r := submit(t, hs1.URL, spec)
	ckPath := filepath.Join(dir, "ckpt", r.ID+".ck")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	hs1.Close()
	s1.Drain(0) // cancel mid-run: transient, so the durable record stays pending

	s2, hs2 := newTestServer(t, durableConfig(t, dir))
	defer func() { hs2.Close(); s2.Drain(0) }()
	got := resultOf(t, waitState(t, hs2.URL, r.ID))
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart result differs from uninterrupted run:\n%s\n----\n%s", got, want)
	}
	if got := metric(t, hs2.URL, "rcpn_jobs_resumed_total"); got != 1 {
		t.Fatalf("jobs.resumed = %v, want 1 (recovery must resume, not restart)", got)
	}
}

// TestCorruptCheckpointRestartsFromScratch: a corrupt checkpoint on disk is
// quarantined at resume time and the recovered job restarts from scratch —
// same correct bytes, no startup failure.
func TestCorruptCheckpointRestartsFromScratch(t *testing.T) {
	spec := ckptSpec("iss")

	clean, hsClean := newTestServer(t, Config{Workers: 1})
	rc := submit(t, hsClean.URL, spec)
	want := resultOf(t, waitState(t, hsClean.URL, rc.ID))
	hsClean.Close()
	clean.Drain(0)

	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.Fault = faultinj.New(faultinj.Rule{
		Site: faultinj.SiteCkptWrite, Times: -1,
		Action: faultinj.ActDelay, Delay: 20 * time.Millisecond,
	})
	s1, hs1 := newTestServer(t, cfg)
	r := submit(t, hs1.URL, spec)
	ckPath := filepath.Join(dir, "ckpt", r.ID+".ck")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	hs1.Close()
	s1.Drain(0)

	// Flip a byte in the checkpoint payload: the CRC catches it at resume.
	data, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(ckPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, hs2 := newTestServer(t, durableConfig(t, dir))
	defer func() { hs2.Close(); s2.Drain(0) }()
	got := resultOf(t, waitState(t, hs2.URL, r.ID))
	if !bytes.Equal(got, want) {
		t.Fatalf("result after corrupt-checkpoint recovery differs:\n%s\n----\n%s", got, want)
	}
	if got := metric(t, hs2.URL, "rcpn_jobs_resumed_total"); got != 0 {
		t.Fatalf("jobs.resumed = %v, want 0 (corrupt checkpoint must not restore)", got)
	}
	if got := metric(t, hs2.URL, "rcpn_quarantined_checkpoints"); got < 1 {
		t.Fatalf("durability.quarantined = %v, want >= 1", got)
	}
}

// TestPoisonAfterRepeatedPanics: a job that panics on every attempt is
// quarantined into a terminal failed state carrying the diagnosis, and the
// terminal record is durable — a restarted server serves it from cache
// instead of running the poison again.
func TestPoisonAfterRepeatedPanics(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.Workers = 1
	cfg.MaxAttempts = 2
	cfg.Fault = faultinj.New(faultinj.Rule{
		Site: faultinj.SiteWorkerPanic, AtValue: 1, Times: -1,
		Action: faultinj.ActPanic, Msg: "panics every attempt",
	})
	s1, hs1 := newTestServer(t, cfg)
	spec := ckptSpec("pipe5")
	r := submit(t, hs1.URL, spec)
	body := waitState(t, hs1.URL, r.ID)
	if !strings.Contains(string(body), "poisoned after 2 attempts") {
		t.Fatalf("no poison diagnosis in result: %s", body)
	}
	if got := metric(t, hs1.URL, "rcpn_jobs_poisoned_total"); got != 1 {
		t.Fatalf("jobs.poisoned = %v, want 1", got)
	}
	// Poison is terminal, not transient: resubmitting serves the record.
	r2 := submit(t, hs1.URL, spec)
	if !r2.Cached {
		t.Fatalf("poisoned job was retried on resubmit: %+v", r2)
	}
	hs1.Close()
	s1.Drain(0)

	s2, hs2 := newTestServer(t, durableConfig(t, dir))
	defer func() { hs2.Close(); s2.Drain(0) }()
	r3 := submit(t, hs2.URL, spec)
	if !r3.Cached {
		t.Fatalf("restart forgot the poisoned job: %+v", r3)
	}
	body2 := waitState(t, hs2.URL, r3.ID)
	if !strings.Contains(string(body2), "poisoned after 2 attempts") {
		t.Fatalf("poison diagnosis lost across restart: %s", body2)
	}
}

// TestDegradedMode: a durability write failure at runtime flips the server
// to memory-only — logged once, /healthz reports "degraded" while staying
// ready (200), and jobs keep completing.
func TestDegradedMode(t *testing.T) {
	var logMu sync.Mutex
	var logLines []string
	cfg := durableConfig(t, t.TempDir())
	cfg.Fault = faultinj.New(faultinj.Rule{
		Site: faultinj.SiteJournalAppend, Times: -1,
		Action: faultinj.ActError, Msg: "disk on fire",
	})
	cfg.Logf = func(format string, args ...any) {
		logMu.Lock()
		logLines = append(logLines, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	s, hs := newTestServer(t, cfg)
	defer func() { hs.Close(); s.Drain(0) }()

	r := submit(t, hs.URL, crcSpec) // LogSubmit fails -> degrade
	body := waitState(t, hs.URL, r.ID)
	if !strings.Contains(string(body), `"done"`) {
		t.Fatalf("job failed in degraded mode: %s", body)
	}

	code, data := get(t, hs.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded healthz = %d, want 200 (degraded is still ready)", code)
	}
	if !strings.Contains(string(data), "degraded") {
		t.Fatalf("healthz does not report degradation: %s", data)
	}
	degradedLogs := 0
	logMu.Lock()
	for _, l := range logLines {
		if strings.Contains(l, "durability degraded") {
			degradedLogs++
		}
	}
	logMu.Unlock()
	if degradedLogs != 1 {
		t.Fatalf("degradation logged %d times, want exactly once", degradedLogs)
	}
	// Memory-only service still works: a second job runs and caches.
	r2 := submit(t, hs.URL, specN(2))
	waitState(t, hs.URL, r2.ID)
}

// TestPendingJobSurvivesRestart: a job accepted but canceled by shutdown is
// still owed — the restarted server re-enqueues and finishes it without the
// client resubmitting.
func TestPendingJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.Workers = 1
	s1, hs1 := newTestServer(t, cfg)
	s1.buildOverride = func(*JobSpec) (batch.Stepper, error) { return &endlessStepper{}, nil }
	r := submit(t, hs1.URL, crcSpec)
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, hs1.URL, `rcpn_jobs{state="running"}`) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	hs1.Close()
	s1.Drain(10 * time.Millisecond) // cancels the run: transient, so the record stays pending

	s2, hs2 := newTestServer(t, durableConfig(t, dir))
	defer func() { hs2.Close(); s2.Drain(0) }()
	// No resubmission: the job recovered as pending and runs to done.
	body := waitState(t, hs2.URL, r.ID)
	if !strings.Contains(string(body), `"done"`) {
		t.Fatalf("recovered pending job did not finish: %s", body)
	}
	if got := metric(t, hs2.URL, "rcpn_jobs_recovered_total"); got != 1 {
		t.Fatalf("jobs.recovered = %v, want 1", got)
	}
}

// TestSSESubscriberReleased: a disconnecting events client releases its
// subscriber slot within bounded time — no goroutine leak per dropped
// stream.
func TestSSESubscriberReleased(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, SSEInterval: time.Millisecond})
	defer func() { hs.Close(); s.Drain(0) }()
	s.buildOverride = func(*JobSpec) (batch.Stepper, error) { return &endlessStepper{}, nil }
	r := submit(t, hs.URL, specN(1))

	const clients = 4
	var resps []*http.Response
	for i := 0; i < clients; i++ {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + r.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, hs.URL, "rcpn_sse_subscribers") != clients {
		if time.Now().After(deadline) {
			t.Fatalf("sse_subscribers never reached %d", clients)
		}
		time.Sleep(time.Millisecond)
	}
	for _, resp := range resps {
		resp.Body.Close() // client disconnects mid-stream
	}
	deadline = time.Now().Add(5 * time.Second)
	for metric(t, hs.URL, "rcpn_sse_subscribers") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sse_subscribers = %v after disconnect, want 0 (leak)",
				metric(t, hs.URL, "rcpn_sse_subscribers"))
		}
		time.Sleep(time.Millisecond)
	}
}
