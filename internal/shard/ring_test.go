package shard

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064d", i)
	}
	return keys
}

// TestRingDeterministic: ownership is a pure function of the membership
// set — join order must not matter, or two coordinators (or one across a
// restart) would route the same job differently.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(), NewRing()
	for _, n := range []string{"w1", "w2", "w3"} {
		a.Add(n)
	}
	for _, n := range []string{"w3", "w1", "w2"} {
		b.Add(n)
	}
	owned := map[string]int{}
	for _, k := range ringKeys(300) {
		na, ok := a.Lookup(k)
		if !ok {
			t.Fatalf("lookup %s failed on populated ring", k)
		}
		nb, _ := b.Lookup(k)
		if na != nb {
			t.Fatalf("key %s: owner %s vs %s depending on join order", k, na, nb)
		}
		owned[na]++
	}
	for _, n := range []string{"w1", "w2", "w3"} {
		if owned[n] == 0 {
			t.Fatalf("node %s owns no keys out of 300: vnode spread is broken (%v)", n, owned)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property itself: an
// eviction moves only the dead node's keys. Anything more would re-route
// healthy in-flight work for no reason.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing()
	for _, n := range []string{"w1", "w2", "w3"} {
		r.Add(n)
	}
	keys := ringKeys(500)
	before := map[string]string{}
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}
	r.Remove("w2")
	for _, k := range keys {
		after, ok := r.Lookup(k)
		if !ok {
			t.Fatalf("lookup %s failed after eviction", k)
		}
		if after == "w2" {
			t.Fatalf("key %s still routed to the evicted node", k)
		}
		if before[k] != "w2" && after != before[k] {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, before[k], after)
		}
	}
}

// TestRingEdges: empty-ring lookups say so, duplicate adds are no-ops, and
// removing an absent node does nothing.
func TestRingEdges(t *testing.T) {
	r := NewRing()
	if _, ok := r.Lookup("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Remove("ghost") // must not panic
	r.Add("w1")
	r.Add("w1")
	if r.Len() != 1 {
		t.Fatalf("Len after duplicate add = %d, want 1", r.Len())
	}
	if len(r.vnodes) != vnodesPerNode {
		t.Fatalf("duplicate add grew the vnode set to %d", len(r.vnodes))
	}
	r.Remove("w1")
	if r.Len() != 0 || len(r.vnodes) != 0 {
		t.Fatalf("ring not empty after removing the last node: %d nodes, %d vnodes", r.Len(), len(r.vnodes))
	}
}
