package serve

import (
	"bytes"
	"testing"
)

// FuzzParseSpec: admission must never panic on arbitrary request bodies,
// and canonicalization must be a fixed point — re-parsing a spec's
// canonical form yields the same canonical bytes and the same content
// address, so a job's identity is stable no matter how its spec was
// spelled.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		crcSpec,
		`{"simulator":"pipe5","kernel":"crc","scale":3,"checkpoint_interval":5000}`,
		`{"simulator":"iss","source":"start:\n\tmov r0, #7\n\tswi 1\n\tmov r0, #0\n\tswi 0\n"}`,
		`{"simulator":"ssim","kernel":"adpcm","max_cycles":100000}`,
		`{ "simulator" : "PIPE5", "kernel" : "CRC", "scale" : 0 }`,
		`{"simulator":"pipe5","kernel":"crc","config":{"bpred":"bimodal"}}`,
		`{"simulator":"vax","kernel":"crc"}`,
		`{"simulator":"pipe5","kernel":"crc","parallelism":4}`,
		`{"simulator":"pipe5","kernel":"crc","parallelism":4,"parallel_mode":"sampled"}`,
		`{"simulator":"pipe5","kernel":"crc","parallelism":1,"parallel_mode":"EXACT"}`,
		`{"simulator":"pipe5","kernel":"crc","parallelism":-2}`,
		`{"simulator":"pipe5","kernel":"crc","parallelism":64}`,
		`{"simulator":"pipe5","kernel":"crc","parallelism":2,"checkpoint_interval":5000}`,
		`{"simulator":"pipe5","kernel":"crc","parallelism":2,"trace_events":64}`,
		`{"simulator":"iss","kernel":"crc","parallel_mode":"sampled"}`,
		`{"simulator":"pipe5","kernel":"crc","checkpoint_interval":1}`,
		`{"simulator":"pipe5","kernel":"crc","max_cycles":-1}`,
		`{"simulator":"pipe5"}`,
		`{}`,
		`not json at all`,
		`null`,
		`[1,2,3]`,
		`{"simulator":"pipe5","kernel":"crc","scale":1e309}`,
		"{\"simulator\":\"pipe5\",\"kernel\":\"crc\"\x00}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		canon := sp.Canonical()
		id := sp.ID()
		sp2, err := ParseSpec(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanonical: %s", err, data, canon)
		}
		if got := sp2.Canonical(); !bytes.Equal(got, canon) {
			t.Fatalf("canonicalization is not a fixed point:\nfirst:  %s\nsecond: %s", canon, got)
		}
		if got := sp2.ID(); got != id {
			t.Fatalf("content address unstable across reparse: %s vs %s\nspec: %s", got, id, canon)
		}
	})
}
