package pipe5

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcpn/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files")

const goldenTraceCycles = 400

// latchLine renders the occupancy of the four pipeline latches for the
// current cycle (1 = a slot is resident, 0 = empty), plus the in-flight
// slot's sequence numbers so reordering bugs show up too.
func (s *Sim) latchLine() string {
	occ := func(sl *slot) string {
		if sl == nil {
			return "-"
		}
		return fmt.Sprintf("%d", sl.seq)
	}
	return fmt.Sprintf("c%d fq=%s dx=%s mx=%s wx=%s",
		s.Cycles, occ(s.fq), occ(s.dx), occ(s.mx), occ(s.wx))
}

// TestGoldenTracePipe5 pins the cycle-by-cycle latch occupancy of the
// hand-written five-stage baseline on the crc workload, plus its end-of-run
// architectural counters. Regenerate with -update-golden only when modeled
// timing is meant to change.
func TestGoldenTracePipe5(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{})
	var b strings.Builder
	for !s.Exited {
		if s.Cycles >= 1<<24 {
			t.Fatal("runaway simulation")
		}
		s.cycle()
		if s.Err != nil {
			t.Fatal(s.Err)
		}
		if s.Cycles <= goldenTraceCycles {
			b.WriteString(s.latchLine())
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "final cycles=%d instret=%d flushes=%d\n", s.Cycles, s.Instret, s.Flushes)
	for r, v := range s.R {
		fmt.Fprintf(&b, "r%d=%#x\n", r, v)
	}
	fmt.Fprintf(&b, "output=%v exit=%d\n", s.Output, s.ExitCode)

	path := filepath.Join("testdata", "golden_trace_pipe5_crc.txt")
	got := b.String()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden %s rewritten (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden to create): %v", path, err)
	}
	if string(want) != got {
		wl := strings.Split(string(want), "\n")
		gl := strings.Split(got, "\n")
		for i := 0; i < len(wl) && i < len(gl); i++ {
			if wl[i] != gl[i] {
				t.Fatalf("golden trace diverges at line %d:\n want: %s\n  got: %s", i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("golden trace length differs: want %d lines, got %d", len(wl), len(gl))
	}
}
