package core

import "testing"

// TestArenaBlocksAndStability allocates across a block boundary and checks
// that indices are dense, payloads land in the right slots, and earlier
// token pointers stay valid after new blocks are appended.
func TestArenaBlocksAndStability(t *testing.T) {
	var a TokenArena
	const n = arenaBlockSize*2 + 3
	toks := make([]*Token, n)
	for i := 0; i < n; i++ {
		toks[i] = a.Get(ClassID(i%3), i)
		if got := toks[i].PoolIndex(); got != int32(i) {
			t.Fatalf("token %d: PoolIndex = %d", i, got)
		}
	}
	if a.Live() != n {
		t.Fatalf("Live = %d, want %d", a.Live(), n)
	}
	if a.Cap() != arenaBlockSize*3 {
		t.Fatalf("Cap = %d, want %d", a.Cap(), arenaBlockSize*3)
	}
	// Pointer stability: the first token still holds its payload and its
	// address still resolves through the index.
	if toks[0].Data != 0 || a.at(0) != toks[0] {
		t.Fatalf("block 0 moved: data=%v at(0)=%p tok=%p", toks[0].Data, a.at(0), toks[0])
	}
	if toks[n-1].Data != n-1 {
		t.Fatalf("last token data = %v", toks[n-1].Data)
	}
}

// TestArenaPutReuse checks LIFO slot recycling and the Live accounting.
func TestArenaPutReuse(t *testing.T) {
	var a TokenArena
	t1 := a.Get(0, "a")
	t2 := a.Get(0, "b")
	a.Put(t2)
	if a.Live() != 1 {
		t.Fatalf("Live after Put = %d", a.Live())
	}
	if t2.Data != nil {
		t.Fatalf("Put kept payload alive: %v", t2.Data)
	}
	t3 := a.Get(1, "c")
	if t3 != t2 {
		t.Fatalf("Get did not reuse the freed slot: %p vs %p", t3, t2)
	}
	if t3.Class != 1 || t3.Data != "c" || t3.pooled {
		t.Fatalf("recycled token not reset: %+v", t3)
	}
	_ = t1
}

// TestArenaReset reclaims every slot while keeping the blocks.
func TestArenaReset(t *testing.T) {
	var a TokenArena
	for i := 0; i < arenaBlockSize+1; i++ {
		a.Get(0, i)
	}
	capBefore := a.Cap()
	a.Reset()
	if a.Live() != 0 {
		t.Fatalf("Live after Reset = %d", a.Live())
	}
	if a.Cap() != capBefore {
		t.Fatalf("Reset dropped blocks: Cap %d -> %d", capBefore, a.Cap())
	}
	if tok := a.Get(0, "x"); tok.PoolIndex() != 0 {
		t.Fatalf("first Get after Reset got index %d", tok.PoolIndex())
	}
}

// TestArenaPutForeignToken verifies that handing a non-arena token to an
// arena is diagnosed loudly in every build flavor.
func TestArenaPutForeignToken(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Put of a NewToken token did not panic")
		}
	}()
	var a TokenArena
	a.Put(NewToken(0, nil))
}

// TestTokenPoolDoublePut is the regression test for the double-Put bug: a
// token returned twice used to be appended to the free list twice, so two
// later Gets handed out the same token. In release builds the duplicate
// must now be dropped; in race/rcpn_tokendebug builds it must panic at the
// second Put. The test follows poolDebug so the same file covers both
// build flavors (plain `go test` and `go test -race`).
func TestTokenPoolDoublePut(t *testing.T) {
	var tp TokenPool
	tok := tp.Get(0, "x")
	tp.Put(tok)

	if poolDebug {
		defer func() {
			if recover() == nil {
				t.Fatalf("double Put did not panic in debug build")
			}
		}()
		tp.Put(tok)
		return
	}

	tp.Put(tok) // must be dropped silently
	if tp.Len() != 1 {
		t.Fatalf("free list holds %d entries after double Put, want 1", tp.Len())
	}
	a := tp.Get(0, "a")
	b := tp.Get(0, "b")
	if a == b {
		t.Fatalf("double Put corrupted the free list: one token handed out twice")
	}
}

// TestArenaDoublePut covers the same contract at the TokenArena layer.
func TestArenaDoublePut(t *testing.T) {
	var a TokenArena
	tok := a.Get(0, nil)
	a.Put(tok)

	if poolDebug {
		defer func() {
			if recover() == nil {
				t.Fatalf("double Put did not panic in debug build")
			}
		}()
		a.Put(tok)
		return
	}

	a.Put(tok)
	if a.Live() != 0 {
		t.Fatalf("Live = %d after double Put, want 0", a.Live())
	}
	x := a.Get(0, nil)
	y := a.Get(0, nil)
	if x == y {
		t.Fatalf("double Put corrupted the free list: one slot handed out twice")
	}
}

// TestTokenPoolReset drops the free list and reclaims the arena in one
// step, the between-jobs path of a long-lived worker.
func TestTokenPoolReset(t *testing.T) {
	var tp TokenPool
	tok := tp.Get(0, nil)
	tp.Put(tok)
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tp.Len())
	}
	if got := tp.Get(0, nil); got.PoolIndex() != 0 {
		t.Fatalf("Get after Reset got index %d", got.PoolIndex())
	}
}
