package bpred

import (
	"math/rand"
	"reflect"
	"testing"
)

// train drives a deterministic pseudo-random branch stream into p.
func train(p Predictor, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pc := uint32(rng.Intn(256)) * 4
		p.Predict(pc)
		p.Update(pc, rng.Intn(3) != 0, pc+uint32(rng.Intn(64))*4)
	}
}

// TestBimodalSnapshotRoundTrip: a predictor restored from a snapshot is
// behaviorally identical to the donor.
func TestBimodalSnapshotRoundTrip(t *testing.T) {
	donor := NewBimodal(128)
	train(donor, 1, 5000)
	st := donor.Snapshot()

	twin, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		pc := uint32(rng.Intn(256)) * 4
		t1, g1, k1 := donor.Predict(pc)
		t2, g2, k2 := twin.Predict(pc)
		if t1 != t2 || g1 != g2 || k1 != k2 {
			t.Fatalf("prediction diverged at %d: (%v,%#x,%v) vs (%v,%#x,%v)",
				i, t1, g1, k1, t2, g2, k2)
		}
		taken := rng.Intn(2) == 0
		target := pc + 16
		donor.Update(pc, taken, target)
		twin.Update(pc, taken, target)
	}
	if donor.Stats() != twin.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", donor.Stats(), twin.Stats())
	}

	// Snapshot must copy, not alias.
	st2 := donor.Snapshot()
	st2.Counter[0] ^= 3
	if donor.Snapshot().Counter[0] == st2.Counter[0] {
		t.Fatal("Snapshot aliases live tables")
	}
}

// TestResetSymmetry: Reset returns a trained predictor to its
// post-construction state.
func TestResetSymmetry(t *testing.T) {
	b := NewBimodal(64)
	train(b, 3, 1000)
	b.Reset()
	if !reflect.DeepEqual(b.Snapshot(), NewBimodal(64).Snapshot()) {
		t.Fatal("reset bimodal differs from a fresh one")
	}

	n := NewNotTaken()
	train(n, 4, 100)
	n.Reset()
	if !reflect.DeepEqual(n.Snapshot(), NewNotTaken().Snapshot()) {
		t.Fatal("reset not-taken differs from a fresh one")
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	if err := NewBimodal(64).Restore(NewNotTaken().Snapshot()); err == nil {
		t.Error("bimodal accepted a not-taken snapshot")
	}
	if err := NewNotTaken().Restore(NewBimodal(64).Snapshot()); err == nil {
		t.Error("not-taken accepted a bimodal snapshot")
	}
	if err := NewBimodal(64).Restore(NewBimodal(256).Snapshot()); err == nil {
		t.Error("bimodal accepted a differently-sized snapshot")
	}
	if _, err := FromState(State{Kind: "gshare"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestNotTakenSnapshotCarriesStats: the stateless predictor's snapshot is
// its statistics, and FromState reproduces them.
func TestNotTakenSnapshotCarriesStats(t *testing.T) {
	p := NewNotTaken()
	train(p, 5, 500)
	q, err := FromState(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats() != q.Stats() {
		t.Fatalf("stats %+v, want %+v", q.Stats(), p.Stats())
	}
}
