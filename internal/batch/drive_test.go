package batch

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeStepper simulates a program of totalLen steps, optionally failing at
// failAt, honoring cumulative StepTo limits exactly like the real
// simulators do.
type fakeStepper struct {
	pos      int64
	totalLen int64
	failAt   int64 // 0 = never
	calls    int
}

func (f *fakeStepper) Pos() int64                { return f.pos }
func (f *fakeStepper) Progress() (int64, uint64) { return f.pos, uint64(f.pos / 2) }
func (f *fakeStepper) StepTo(limit int64) (bool, error) {
	f.calls++
	for f.pos < limit && f.pos < f.totalLen {
		f.pos++
		if f.failAt != 0 && f.pos == f.failAt {
			return false, errors.New("injected simulator fault")
		}
	}
	return f.pos >= f.totalLen, nil
}

// TestDriveRunsToCompletion: chunked driving reaches the end and reports
// monotonically nondecreasing progress after each chunk.
func TestDriveRunsToCompletion(t *testing.T) {
	f := &fakeStepper{totalLen: 1000}
	var seen []int64
	err := Drive(context.Background(), f, 0, 64, func(c int64, i uint64) { seen = append(seen, c) })
	if err != nil {
		t.Fatal(err)
	}
	if f.pos != 1000 {
		t.Fatalf("pos %d, want 1000", f.pos)
	}
	if f.calls < 1000/64 {
		t.Fatalf("only %d chunks for 1000 steps at chunk 64", f.calls)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("progress went backwards: %v", seen)
		}
	}
}

// TestDriveCap: a run that would exceed the position cap stops with an
// error at the cap, not at the chunk boundary past it.
func TestDriveCap(t *testing.T) {
	f := &fakeStepper{totalLen: 1 << 30}
	err := Drive(context.Background(), f, 500, 64, nil)
	if err == nil || !strings.Contains(err.Error(), "cap 500 exceeded") {
		t.Fatalf("err = %v", err)
	}
	if f.pos != 500 {
		t.Fatalf("overran the cap: pos %d", f.pos)
	}
}

// TestDriveCancel: cancellation between chunks stops the simulator and
// surfaces ctx.Err().
func TestDriveCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f := &fakeStepper{totalLen: 1 << 30}
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		first := true
		done <- Drive(ctx, f, 0, 64, func(int64, uint64) {
			if first {
				close(started)
				first = false
			}
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drive did not stop after cancel")
	}
}

// TestDriveSimError: a genuine simulation failure propagates, it is not
// mistaken for a chunk boundary.
func TestDriveSimError(t *testing.T) {
	f := &fakeStepper{totalLen: 1 << 20, failAt: 777}
	err := Drive(context.Background(), f, 0, 64, nil)
	if err == nil || !strings.Contains(err.Error(), "injected simulator fault") {
		t.Fatalf("err = %v", err)
	}
}

// TestCooperativeTimeout: a job that drives its simulator through Drive is
// actually stopped by the per-job deadline — the goroutine exits and the
// result records the timeout with the partial metrics.
func TestCooperativeTimeout(t *testing.T) {
	stopped := make(chan struct{})
	jobs := []Job{{
		Simulator: "slow", Workload: "w",
		Timeout: 30 * time.Millisecond,
		Run: func(ctx context.Context) (Metrics, error) {
			defer close(stopped)
			f := &fakeStepper{totalLen: 1 << 40}
			err := Drive(ctx, f, 0, 1, func(int64, uint64) { time.Sleep(time.Millisecond) })
			return Metrics{Cycles: f.pos}, err
		},
	}}
	rep := Run(jobs, Options{Workers: 1})
	r := rep.Results[0]
	if !r.TimedOut || r.Err == "" {
		t.Fatalf("timeout not recorded: %+v", r)
	}
	if r.Cycles == 0 {
		t.Fatalf("partial metrics lost: %+v", r)
	}
	select {
	case <-stopped:
		// The simulator loop actually stopped — nothing leaked.
	case <-time.After(2 * time.Second):
		t.Fatal("job goroutine still running after cooperative timeout")
	}
}

// TestSweepCancel: canceling Options.Context mid-sweep cancels the running
// job cooperatively and completes the not-yet-started jobs immediately as
// Canceled, without running them.
func TestSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var ran [4]bool
	jobs := make([]Job, 4)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Simulator: "s", Workload: "w", Interval: string(rune('a' + i)),
			Run: func(jctx context.Context) (Metrics, error) {
				ran[i] = true
				if i == 0 {
					close(started)
					f := &fakeStepper{totalLen: 1 << 40}
					return Metrics{}, Drive(jctx, f, 0, 1, nil)
				}
				return Metrics{}, nil
			},
		}
	}
	go func() {
		<-started
		cancel()
	}()
	rep := Run(jobs, Options{Workers: 1, Context: ctx})
	if !rep.Results[0].Canceled {
		t.Fatalf("running job not canceled: %+v", rep.Results[0])
	}
	for i := 1; i < 4; i++ {
		if ran[i] {
			t.Fatalf("job %d ran after sweep cancel", i)
		}
		if !rep.Results[i].Canceled || rep.Results[i].Err == "" {
			t.Fatalf("queued job %d not marked canceled: %+v", i, rep.Results[i])
		}
	}
}
