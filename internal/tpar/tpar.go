// Package tpar is the time-parallel executor for a single long simulation:
// it splits one job into N instruction-count segments, has an ISS leader
// race ahead functionally — warming caches and the branch predictor and
// dropping a ckpt snapshot at every segment boundary — and runs the
// segments concurrently on detailed workers (any engine in the diffrun
// registry, including generated ones) through a batch.Pool. A stitcher then
// merges per-segment cycle counts, obsv stall profiles and the final
// architectural state into one result.
//
// The parallelism across jobs that internal/batch provides does nothing
// for the wall-clock of the single biggest job; tpar parallelizes *within*
// one run, built from the pieces the repository already trusts: warmed
// fast-forward checkpoints (internal/ckpt + iss functional warming),
// drained-boundary RunUntil/Drain hooks on every engine, and the
// sampled-CPI machinery that quantifies warmup inaccuracy.
//
// Two stitching modes:
//
//   - Exact. The reference semantics is the serial segmented run (Serial):
//     one instance driven with a pipeline drain at every boundary target —
//     the same self-healing boundary formula as batch.DriveCkpt — so the
//     reference is a pure function of (program, plan), exactly like a
//     checkpoint_interval job. The parallel run speculates each segment
//     from the leader's warmed checkpoint, then walks the chain: a
//     speculative segment is adopted only if the confirmed predecessor's
//     achieved checkpoint is byte-identical to the donor checkpoint the
//     speculation started from; otherwise the segment is re-run from the
//     corrected state. Checkpoint bytes are canonical (equal state encodes
//     equally), and restore is bit-exact (PR 2), so by induction the
//     converged chain is byte-identical to Serial — state, cycle count and
//     stall profile. Functional engines adopt every segment (the leader is
//     their own microarchitecture); detailed engines usually mismatch on
//     warm cache contents and drain overshoot and re-run, so exact mode is
//     the correctness anchor, not the speed story.
//
//   - Sampled. Every speculative segment is accepted as-is. Segments start
//     from functionally-warmed (not cycle-accurate) microarchitectural
//     state, so per-segment cycle counts carry a warmup bias; each segment
//     measures the CPI of its warmup window against the rest of the
//     segment and reports the difference as an error bound, the same
//     accounting the PR 2 sampled-CPI study bounded at <= 3.2%. This is
//     where the wall-clock speedup lives.
//
// Determinism: the stitched result is a pure function of (program, plan,
// mode) — never of worker count, GOMAXPROCS, scheduling, or injected
// worker crashes (a killed segment is reassigned and re-runs to the same
// bytes).
package tpar

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/ckpt"
	"rcpn/internal/diffrun"
	"rcpn/internal/faultinj"
	"rcpn/internal/iss"
	"rcpn/internal/obsv"
)

// Mode selects the stitching discipline.
type Mode int

const (
	// Exact converges the segment chain until it is byte-identical to the
	// serial segmented reference (Serial).
	Exact Mode = iota
	// Sampled accepts warmup-biased segments and reports a CPI error bound
	// per segment.
	Sampled
)

func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case Sampled:
		return "sampled"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses a mode name; the empty string is Exact (the default).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return Exact, nil
	case "sampled":
		return Sampled, nil
	}
	return Exact, fmt.Errorf("tpar: unknown mode %q (want exact or sampled)", s)
}

// Build constructs a fresh instance of the engine under simulation. The
// state extractor may be nil; when present it is called on the instance
// that finishes the final segment and its value becomes Result.State.
type Build func() (batch.CheckpointStepper, func() diffrun.State, error)

// EngineBuild adapts a diffrun registry engine to a Build on a fixed
// program — any registered engine, including generated ones, can run
// time-parallel with no further wiring.
func EngineBuild(e diffrun.Engine, p *arm.Program) Build {
	return func() (batch.CheckpointStepper, func() diffrun.State, error) {
		return e.Build(p)
	}
}

const (
	// DefaultMinSegment is the smallest segment worth a pipeline drain; the
	// segment count is clamped so no segment is shorter.
	DefaultMinSegment = 1024
	// defaultRetries is how many times a crashed (panicked) segment worker
	// is reassigned before the failure is reported.
	defaultRetries = 2
	// defaultMaxInstrs bounds the leader against runaway programs.
	defaultMaxInstrs = 1 << 32
)

// Options configure a time-parallel run.
type Options struct {
	// Segments is the requested segment count N. It participates in the
	// result (segment boundaries drain the pipeline, perturbing cycle
	// timing), so callers naming results by content address must include
	// it. Clamped so every segment has at least MinSegment instructions.
	Segments int
	// Workers bounds concurrent segment workers (<= 0: GOMAXPROCS). Purely
	// an execution knob: the result is independent of it. Clamped to the
	// segment count and to GOMAXPROCS.
	Workers int
	// Mode selects Exact (default) or Sampled stitching.
	Mode Mode
	// Warm, when non-nil, attaches warm units to the leader ISS before the
	// checkpoint pass (see DefaultWarm). The units must match the engine's
	// cache geometry and predictor type or segment restores will fail; nil
	// (cold checkpoints) is always safe.
	Warm func(c *iss.CPU)
	// MaxInstrs bounds the leader run (default 1<<32).
	MaxInstrs uint64
	// PosBudget bounds each segment worker in its engine's position unit
	// (cycles, or instructions for functional engines), counted from the
	// segment's start; 0 derives a generous hang guard from the program
	// length.
	PosBudget int64
	// MinSegment overrides DefaultMinSegment (tests use tiny programs).
	MinSegment uint64
	// Chunk is the burst length between context checks and progress
	// reports (default batch.DefaultChunk).
	Chunk int64
	// Context cancels the run; nil means context.Background().
	Context context.Context
	// Progress receives cumulative (cycles, instret) across all segments,
	// possibly concurrently from several workers. Because re-run segments
	// also simulate, the cumulative totals can exceed the stitched result.
	Progress func(cycles int64, instret uint64)
	// Profile enables per-stage stall attribution on every segment; the
	// merged snapshot lands in Result.Stalls.
	Profile bool
	// Fault arms deterministic fault injection at the tpar.segment site.
	// Nil is inert.
	Fault *faultinj.Injector
	// Retries caps reassignments of a crashed segment worker (0: default 2,
	// negative: none).
	Retries int
	// Logf receives clamp warnings and convergence notes (nil: silent).
	Logf func(format string, args ...any)
}

func (o *Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Plan is the segmentation of one program: measured by a functional leader
// pass, so it is a pure function of the program (and the segment request).
type Plan struct {
	// Total is the program's retired-instruction count at exit.
	Total uint64
	// Interval is the segment length; boundary targets are its multiples.
	Interval uint64
	// Segments is the clamped segment count.
	Segments int
	// Boundaries[k] is the boundary target (k+1)*Interval where segment k
	// hands off to segment k+1; len(Boundaries) == Segments-1.
	Boundaries []uint64
}

// NewPlan measures the program with a plain ISS pass and splits it into
// opt.Segments segments, clamping so no segment is shorter than
// MinSegment. The plan is engine-independent: any engine can run it.
func NewPlan(p *arm.Program, opt Options) (*Plan, error) {
	maxInstrs := opt.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = defaultMaxInstrs
	}
	c := iss.New(p, 0)
	c.MaxInstrs = maxInstrs
	if err := c.Run(); err != nil {
		return nil, fmt.Errorf("tpar: leader: %w", err)
	}
	if !c.Exited {
		return nil, fmt.Errorf("tpar: leader: program did not exit within %d instructions", maxInstrs)
	}
	total := c.Instret

	minSeg := opt.MinSegment
	if minSeg == 0 {
		minSeg = DefaultMinSegment
	}
	req := opt.Segments
	if req < 1 {
		req = 1
	}
	segs := uint64(req)
	if maxSegs := total / minSeg; segs > maxSegs {
		if maxSegs < 1 {
			maxSegs = 1
		}
		segs = maxSegs
		opt.logf("tpar: clamped segments %d -> %d (%d retired instructions, min segment %d)",
			req, segs, total, minSeg)
	}
	interval := (total + segs - 1) / segs
	segs = (total + interval - 1) / interval
	plan := &Plan{Total: total, Interval: interval, Segments: int(segs)}
	for k := uint64(1); k < segs; k++ {
		plan.Boundaries = append(plan.Boundaries, k*interval)
	}
	return plan, nil
}

// Segment is one stitched segment's report.
type Segment struct {
	Index int `json:"index"`
	// Start and End are the retired-instruction counts at segment entry
	// and at its achieved drained boundary (or exit). Detailed engines
	// overshoot the boundary target by the instructions already in flight
	// when it retired (drain overshoot).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Cycles the segment simulated (0 for functional engines).
	Cycles int64 `json:"cycles"`
	Exited bool  `json:"exited,omitempty"`
	// Adopted: the speculative parallel result was kept. Rerun: the
	// segment was re-executed from the corrected chain state (exact mode).
	Adopted bool `json:"adopted,omitempty"`
	Rerun   bool `json:"rerun,omitempty"`
	// Reassigned counts crashed-worker reassignments for this segment.
	Reassigned int `json:"reassigned,omitempty"`
	// ErrBoundPct is the sampled-mode warmup error bound for this segment,
	// as a percentage of its cycles.
	ErrBoundPct float64 `json:"err_bound_pct,omitempty"`
}

// Result is a stitched time-parallel run.
type Result struct {
	Mode     Mode
	Plan     *Plan
	Segments []Segment
	// Cycles and Instret are the stitched totals. In exact mode they equal
	// the serial segmented reference; in sampled mode segment overlap from
	// drain overshoot can count a few boundary instructions twice.
	Cycles  int64
	Instret uint64
	// Reruns and Adopted count convergence outcomes; Reassigned counts
	// crashed-worker recoveries across all segments.
	Reruns     int
	Adopted    int
	Reassigned int
	// ErrBoundPct is the cycle-weighted aggregate of the per-segment
	// warmup error bounds (sampled mode; 0 in exact mode).
	ErrBoundPct float64
	// Stalls is the merged stall profile (Options.Profile).
	Stalls *obsv.StallSnapshot
	// State is the final architectural state, when the builder provides an
	// extractor.
	State *diffrun.State
	// Workers is the clamped worker count the run used.
	Workers int
}

// Run plans and executes a time-parallel run of the program.
func Run(p *arm.Program, build Build, opt Options) (*Result, error) {
	plan, err := NewPlan(p, opt)
	if err != nil {
		return nil, err
	}
	return RunPlan(p, plan, build, opt)
}

// RunPlan executes a previously computed plan (callers comparing against
// Serial reuse one plan for both).
func RunPlan(p *arm.Program, plan *Plan, build Build, opt Options) (*Result, error) {
	ctx := opt.context()
	workers := clampWorkers(&opt, plan.Segments)

	leaderCk, leaderRaw, err := leaderCheckpoints(p, plan, opt)
	if err != nil {
		return nil, err
	}

	r := &runner{opt: opt, plan: plan, build: build, ctx: ctx}
	r.pool = batch.NewPool(plan.Segments+2, batch.Options{Workers: workers, Context: ctx})
	defer r.pool.Close()

	// Speculative sweep: every segment in parallel, segment k restoring the
	// leader's checkpoint at boundary k.
	jobs := make([]segJob, plan.Segments)
	for j := range jobs {
		jobs[j] = segJob{
			index:  j,
			input:  leaderCk[j], // nil for segment 0: fresh reset state
			start:  uint64(j) * plan.Interval,
			target: uint64(j+1) * plan.Interval,
			warmup: opt.Mode == Sampled && j > 0,
		}
	}
	spec := r.dispatch(jobs)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var res *Result
	if opt.Mode == Sampled {
		res, err = r.stitchSampled(spec)
	} else {
		res, err = r.stitchExact(spec, leaderRaw)
	}
	if err != nil {
		return nil, err
	}
	res.Workers = workers
	res.Reassigned = int(r.reassigned.Load())
	return res, nil
}

// clampWorkers applies the graceful-degradation rules: never more workers
// than segments, never more than GOMAXPROCS (on a GOMAXPROCS=1 host the
// sweep degrades to a serial loop over the segments), always at least one.
// Logged once per run; the stitched result never depends on the outcome.
func clampWorkers(opt *Options, segments int) int {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	orig := w
	if w > segments {
		w = segments
	}
	if g := runtime.GOMAXPROCS(0); w > g {
		w = g
	}
	if w < 1 {
		w = 1
	}
	if w != orig {
		opt.logf("tpar: clamped workers %d -> %d (%d segments, GOMAXPROCS %d)",
			orig, w, segments, runtime.GOMAXPROCS(0))
	}
	return w
}

// leaderCheckpoints is the leader's second pass: a fresh ISS with warm
// units attached replays the program, checkpointing at every boundary.
// Index k holds segment k's donor checkpoint (index 0 stays nil — segment
// 0 starts from reset). Raw holds the canonical encoding, the byte form
// the exact-mode chain compares against.
func leaderCheckpoints(p *arm.Program, plan *Plan, opt Options) ([]*ckpt.Checkpoint, [][]byte, error) {
	cks := make([]*ckpt.Checkpoint, plan.Segments)
	raws := make([][]byte, plan.Segments)
	if plan.Segments == 1 {
		return cks, raws, nil
	}
	c := iss.New(p, 0)
	c.MaxInstrs = opt.MaxInstrs
	if c.MaxInstrs == 0 {
		c.MaxInstrs = defaultMaxInstrs
	}
	if opt.Warm != nil {
		opt.Warm(c)
	}
	for k, b := range plan.Boundaries {
		if _, err := c.RunN(b - c.Instret); err != nil {
			return nil, nil, fmt.Errorf("tpar: leader warmup: %w", err)
		}
		if c.Exited || c.Instret != b {
			return nil, nil, fmt.Errorf("tpar: leader diverged from plan: at %d retired (exited=%v), want boundary %d",
				c.Instret, c.Exited, b)
		}
		ck := c.Checkpoint()
		raw, err := ck.Bytes()
		if err != nil {
			return nil, nil, fmt.Errorf("tpar: leader checkpoint at %d: %w", b, err)
		}
		cks[k+1], raws[k+1] = ck, raw
	}
	return cks, raws, nil
}

// segJob is one segment execution request.
type segJob struct {
	index  int
	input  *ckpt.Checkpoint // nil: fresh reset state
	start  uint64
	target uint64 // boundary target; the program may exit first
	warmup bool   // measure the warmup window (sampled mode)
	rerun  bool
}

// segResult is one segment execution outcome.
type segResult struct {
	seg     Segment
	endCk   *ckpt.Checkpoint // achieved drained checkpoint (nil when exited)
	endRaw  []byte
	state   *diffrun.State
	stalls  *obsv.StallSnapshot
	warmC   int64 // cycles and instructions inside the warmup window
	warmI   uint64
	boundCy float64 // warmup bias bound, in cycles
	err     error
}

type runner struct {
	opt        Options
	plan       *Plan
	build      Build
	ctx        context.Context
	pool       *batch.Pool
	progC      atomic.Int64
	progI      atomic.Uint64
	reassigned atomic.Int64
}

// report accumulates progress deltas across all concurrent segments.
func (r *runner) report(dc int64, di uint64) {
	c := r.progC.Add(dc)
	i := r.progI.Add(di)
	if r.opt.Progress != nil {
		r.opt.Progress(c, i)
	}
}

func (r *runner) posBudget() int64 {
	if r.opt.PosBudget > 0 {
		return r.opt.PosBudget
	}
	// Hang guard, same shape as diffrun's: no engine spends anywhere near
	// 64 positions per retired instruction.
	return int64(r.plan.Total)*64 + 1_000_000
}

// warmWindow is the sampled-mode measurement window at the head of a
// restored segment.
func warmWindow(interval uint64) uint64 {
	w := interval / 8
	if w < 64 {
		w = 64
	}
	if w > 65536 {
		w = 65536
	}
	return w
}

// runSegment executes one segment on the calling (pool worker) goroutine.
// Failures are recorded in the result, not returned: the caller decides
// whether a failure is fatal (sampled) or repairable by a re-run (exact).
func (r *runner) runSegment(ctx context.Context, sj segJob) *segResult {
	res := &segResult{seg: Segment{Index: sj.index, Start: sj.start, Rerun: sj.rerun}}
	fail := func(err error) *segResult {
		res.err = err
		return res
	}
	// The injection point for a "killed worker": a panic rule fires here,
	// the pool's recover turns it into a Panicked result, and dispatch
	// reassigns the segment.
	if err := r.opt.Fault.Hit(faultinj.SiteTparSegment, sj.start); err != nil {
		return fail(err)
	}
	st, stateFn, err := r.build()
	if err != nil {
		return fail(fmt.Errorf("tpar: segment %d: build: %w", sj.index, err))
	}
	var prof *obsv.StallProfile
	if r.opt.Profile {
		ins, ok := st.(obsv.Instrumentable)
		if !ok {
			return fail(fmt.Errorf("tpar: segment %d: engine is not instrumentable", sj.index))
		}
		prof = ins.EnableProfile()
	}
	if sj.input != nil {
		if err := st.Restore(sj.input); err != nil {
			return fail(fmt.Errorf("tpar: segment %d: restore at %d: %w", sj.index, sj.start, err))
		}
	}
	baseC, baseI := st.Progress()
	lastC, lastI := baseC, baseI
	report := func() {
		c, i := st.Progress()
		r.report(c-lastC, i-lastI)
		lastC, lastI = c, i
	}
	chunk := r.opt.Chunk
	if chunk <= 0 {
		chunk = batch.DefaultChunk
	}
	posLimit := st.Pos() + r.posBudget()
	drive := func(target uint64) (bool, error) {
		for {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			limit := st.Pos() + chunk
			if limit > posLimit {
				limit = posLimit
			}
			exited, err := st.StepToRetired(target, limit)
			report()
			if err != nil {
				return false, err
			}
			if exited {
				return true, nil
			}
			if _, i := st.Progress(); i >= target {
				return false, nil
			}
			if st.Pos() >= posLimit {
				return false, fmt.Errorf("tpar: segment %d: position budget exhausted before %d retired (engine hang?)",
					sj.index, target)
			}
		}
	}
	exited := false
	if sj.warmup {
		mark := sj.start + warmWindow(r.plan.Interval)
		if mark < sj.target {
			exited, err = drive(mark)
			if err != nil {
				return fail(err)
			}
			c, i := st.Progress()
			res.warmC, res.warmI = c-baseC, i-baseI
		}
	}
	if !exited {
		exited, err = drive(sj.target)
		if err != nil {
			return fail(err)
		}
	}
	if !exited {
		if err := st.DrainBoundary(); err != nil {
			return fail(fmt.Errorf("tpar: segment %d: drain: %w", sj.index, err))
		}
		report()
		ck, err := st.Checkpoint()
		if err != nil {
			return fail(fmt.Errorf("tpar: segment %d: checkpoint: %w", sj.index, err))
		}
		raw, err := ck.Bytes()
		if err != nil {
			return fail(fmt.Errorf("tpar: segment %d: encode: %w", sj.index, err))
		}
		res.endCk, res.endRaw = ck, raw
	} else if stateFn != nil {
		s := stateFn()
		res.state = &s
	}
	endC, endI := st.Progress()
	res.seg.Cycles = endC - baseC
	res.seg.End = endI
	res.seg.Exited = exited
	res.stalls = prof.Snapshot()
	res.bound()
	return res
}

// bound computes the sampled-mode warmup bias bound: the warmup window's
// CPI against the rest of the segment, charged over the window — the
// heuristic the EXPERIMENTS.md accuracy table validates against true
// errors measured with Serial.
func (s *segResult) bound() {
	if s.seg.Cycles == 0 || s.warmI == 0 {
		return
	}
	restI := (s.seg.End - s.seg.Start) - s.warmI
	restC := s.seg.Cycles - s.warmC
	if restI == 0 || restC <= 0 {
		return
	}
	cpiWarm := float64(s.warmC) / float64(s.warmI)
	cpiRest := float64(restC) / float64(restI)
	s.boundCy = math.Abs(cpiWarm-cpiRest) * float64(s.warmI)
	s.seg.ErrBoundPct = 100 * s.boundCy / float64(s.seg.Cycles)
}

// dispatch runs the jobs through the pool, reassigning any segment whose
// worker crashed (panicked) up to the retry budget, and returns results in
// job order. It never deadlocks: every submitted segment accounts exactly
// one wg.Done, whether it ran, crashed out of retries, or was refused.
func (r *runner) dispatch(jobs []segJob) []*segResult {
	out := make([]*segResult, len(jobs))
	retries := r.opt.Retries
	if retries == 0 {
		retries = defaultRetries
	} else if retries < 0 {
		retries = 0
	}
	var wg sync.WaitGroup
	var submit func(i, attempt int)
	submit = func(i, attempt int) {
		sj := jobs[i]
		var got *segResult
		job := batch.Job{
			Simulator: "tpar",
			Workload:  fmt.Sprintf("segment-%02d", sj.index),
			Run: func(ctx context.Context) (batch.Metrics, error) {
				got = r.runSegment(ctx, sj)
				if got.err != nil {
					return batch.Metrics{}, got.err
				}
				return batch.Metrics{Cycles: got.seg.Cycles, Instret: got.seg.End - got.seg.Start}, nil
			},
		}
		err := r.pool.TrySubmit(job, func(pr batch.Result) {
			if pr.Panicked && attempt < retries && r.ctx.Err() == nil {
				// The worker died mid-segment; requeue so any live worker
				// claims it. The engine is deterministic, so the retraced
				// segment is byte-identical to an uncrashed one.
				r.reassigned.Add(1)
				r.opt.logf("tpar: segment %d worker crashed; reassigning (attempt %d)", sj.index, attempt+2)
				submit(i, attempt+1)
				return
			}
			if got == nil {
				msg := pr.Err
				if msg == "" {
					msg = "worker crashed"
				}
				got = &segResult{seg: Segment{Index: sj.index, Start: sj.start},
					err: fmt.Errorf("tpar: segment %d: %s", sj.index, msg)}
			}
			got.seg.Reassigned = attempt
			out[i] = got
			wg.Done()
		})
		if err != nil {
			out[i] = &segResult{seg: Segment{Index: sj.index, Start: sj.start},
				err: fmt.Errorf("tpar: segment %d: submit: %w", sj.index, err)}
			wg.Done()
		}
	}
	wg.Add(len(jobs))
	for i := range jobs {
		submit(i, 0)
	}
	wg.Wait()
	return out
}

// rerun executes one corrective segment (exact mode) through the pool, so
// crash isolation and reassignment apply to re-runs too.
func (r *runner) rerun(index int, input *ckpt.Checkpoint, start, target uint64) *segResult {
	out := r.dispatch([]segJob{{index: index, input: input, start: start, target: target, rerun: true}})
	return out[0]
}

// stitchExact walks the convergence chain. The confirmed chain starts at
// segment 0 (reset state: exact by construction) and extends one segment
// at a time: if the confirmed predecessor's achieved checkpoint is
// byte-identical to the leader checkpoint a speculative segment consumed,
// that segment is adopted — and, by induction, everything it feeds stays
// adoptable; otherwise the segment re-runs from the corrected checkpoint.
// The boundary formula matches batch.DriveCkpt, so drain overshoot that
// skips whole boundary multiples shortens the chain exactly as it would a
// serial checkpointed run.
func (r *runner) stitchExact(spec []*segResult, leaderRaw [][]byte) (*Result, error) {
	interval := r.plan.Interval
	boundarySeg := make(map[uint64]int, len(r.plan.Boundaries))
	for k, b := range r.plan.Boundaries {
		boundarySeg[b] = k + 1
	}

	var chain []*segResult
	reruns, adopted := 0, 0
	cur := spec[0]
	if cur == nil || cur.err != nil {
		if cur != nil && r.ctx.Err() == nil {
			r.opt.logf("tpar: segment 0 speculation failed (%v); re-running", cur.err)
		}
		cur = r.rerun(0, nil, 0, interval)
		if cur.err != nil {
			return nil, cur.err
		}
		reruns++
	} else {
		cur.seg.Adopted = true
		adopted++
	}
	chain = append(chain, cur)

	for !cur.seg.Exited {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		if len(chain) > 2*r.plan.Segments+16 {
			return nil, fmt.Errorf("tpar: convergence chain did not terminate after %d segments", len(chain))
		}
		at := cur.seg.End
		var next *segResult
		if j, ok := boundarySeg[at]; ok && spec[j] != nil && spec[j].err == nil &&
			bytes.Equal(cur.endRaw, leaderRaw[j]) {
			next = spec[j]
			next.seg.Adopted = true
			adopted++
		} else {
			target := (at/interval + 1) * interval
			next = r.rerun(len(chain), cur.endCk, at, target)
			if next.err != nil {
				return nil, next.err
			}
			reruns++
		}
		chain = append(chain, next)
		cur = next
	}

	res := &Result{Mode: Exact, Plan: r.plan, Reruns: reruns, Adopted: adopted}
	return r.stitch(res, chain)
}

// stitchSampled accepts every speculative segment. Unlike exact mode,
// failures here are fatal: there is no corrective chain to repair them.
func (r *runner) stitchSampled(spec []*segResult) (*Result, error) {
	var boundCy, totalCy float64
	for _, sr := range spec {
		if sr.err != nil {
			return nil, sr.err
		}
		sr.seg.Adopted = true
		boundCy += sr.boundCy
		totalCy += float64(sr.seg.Cycles)
	}
	res := &Result{Mode: Sampled, Plan: r.plan, Adopted: len(spec)}
	if totalCy > 0 {
		res.ErrBoundPct = 100 * boundCy / totalCy
	}
	return r.stitch(res, spec)
}

// stitch merges the confirmed segments into the result.
func (r *runner) stitch(res *Result, chain []*segResult) (*Result, error) {
	var snaps []*obsv.StallSnapshot
	for _, sr := range chain {
		res.Segments = append(res.Segments, sr.seg)
		res.Cycles += sr.seg.Cycles
		res.Instret += sr.seg.End - sr.seg.Start
		snaps = append(snaps, sr.stalls)
	}
	last := chain[len(chain)-1]
	if !last.seg.Exited {
		return nil, fmt.Errorf("tpar: final segment did not exit (ended at %d retired)", last.seg.End)
	}
	res.State = last.state
	if r.opt.Profile {
		merged, err := mergeStalls(snaps)
		if err != nil {
			return nil, fmt.Errorf("tpar: stall merge: %w", err)
		}
		res.Stalls = merged
	}
	return res, nil
}

// mergeStalls folds per-segment snapshots into one profile, in chain
// order. Stall accounting is additive per (stage, kind), so the merged
// snapshot is byte-identical to the profile of one continuous segmented
// run (the property the conformance matrix asserts against Serial).
func mergeStalls(snaps []*obsv.StallSnapshot) (*obsv.StallSnapshot, error) {
	var first *obsv.StallSnapshot
	for _, s := range snaps {
		if s != nil {
			first = s
			break
		}
	}
	if first == nil {
		return nil, nil
	}
	names := make([]string, len(first.Stages))
	for i := range first.Stages {
		names[i] = first.Stages[i].Name
	}
	p := obsv.NewStallProfile(names...)
	for _, s := range snaps {
		if err := p.Merge(s); err != nil {
			return nil, err
		}
	}
	return p.Snapshot(), nil
}

// Serial is the exact-mode reference: one instance of the engine driven
// serially with a drain at every boundary target of the plan — precisely
// the run a checkpoint_interval job performs, and the run the converged
// parallel chain must reproduce byte-for-byte (state, cycle count, stall
// profile).
func Serial(plan *Plan, build Build, opt Options) (*Result, error) {
	ctx := opt.context()
	st, stateFn, err := build()
	if err != nil {
		return nil, err
	}
	var prof *obsv.StallProfile
	if opt.Profile {
		ins, ok := st.(obsv.Instrumentable)
		if !ok {
			return nil, fmt.Errorf("tpar: serial: engine is not instrumentable")
		}
		prof = ins.EnableProfile()
	}
	chunk := opt.Chunk
	if chunk <= 0 {
		chunk = batch.DefaultChunk
	}
	budget := opt.PosBudget
	if budget <= 0 {
		budget = int64(plan.Total)*64 + 1_000_000
	} else {
		// PosBudget is per segment; the serial run covers them all.
		budget *= int64(plan.Segments)
	}
	posLimit := st.Pos() + budget

	res := &Result{Mode: Exact, Plan: plan, Workers: 1}
	lastC, lastI := st.Progress()
	for {
		target := (lastI/plan.Interval + 1) * plan.Interval
		exited := false
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			limit := st.Pos() + chunk
			if limit > posLimit {
				limit = posLimit
			}
			exited, err = st.StepToRetired(target, limit)
			if opt.Progress != nil {
				c, i := st.Progress()
				opt.Progress(c, i)
			}
			if err != nil {
				return nil, err
			}
			if exited {
				break
			}
			if _, i := st.Progress(); i >= target {
				break
			}
			if st.Pos() >= posLimit {
				return nil, fmt.Errorf("tpar: serial: position budget exhausted before %d retired (engine hang?)", target)
			}
		}
		if !exited {
			if err := st.DrainBoundary(); err != nil {
				return nil, err
			}
		}
		c, i := st.Progress()
		res.Segments = append(res.Segments, Segment{
			Index: len(res.Segments), Start: lastI, End: i,
			Cycles: c - lastC, Exited: exited,
		})
		lastC, lastI = c, i
		if exited {
			break
		}
	}
	res.Cycles, res.Instret = lastC, lastI
	res.Stalls = prof.Snapshot()
	if stateFn != nil {
		s := stateFn()
		res.State = &s
	}
	return res, nil
}
