// Command rcpnfuzz is the differential fuzzer: it generates seeded random
// ARM programs (internal/armgen), runs each on the ISS golden model and on
// every registered cycle engine — plain and through a checkpoint/restore
// handoff (internal/diffrun) — and reports any divergence. With -minimize,
// a diverging program is delta-debugged down to a minimal repro and written
// as a regression kernel under -out, in the format the conformance matrix
// auto-discovers (testdata/regressions/).
//
//	rcpnfuzz -seeds 1..500              # sweep a seed range, exit 1 on divergence
//	rcpnfuzz -seeds 1..0 -budget 30s    # open-ended sweep under a time budget
//	rcpnfuzz -seeds 7..7 -emit          # print the generated program for a seed
//	rcpnfuzz -seeds 1..500 -minimize -out testdata/regressions
//
// Output is deterministic for a fixed seed range: results are printed in
// seed order regardless of -j, and reports contain no wall-clock fields.
// Only the set of seeds reached under -budget is host-dependent — the
// "swept seeds N..M" trailer states exactly which ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rcpn/internal/armgen"
	"rcpn/internal/diffrun"
)

func main() {
	seedsFlag := flag.String("seeds", "1..100", "inclusive seed range A..B (B < A with -budget = open-ended)")
	jobs := flag.Int("j", 4, "concurrent seeds")
	budget := flag.Duration("budget", 0, "stop starting new seeds after this long (0 = none)")
	length := flag.Int("len", 0, "body chunks per program (0 = generator default)")
	condPct := flag.Int("cond", 0, "percent of single-instruction chunks conditionalized (0 = default)")
	weightsFlag := flag.String("weights", "", "weight overrides, e.g. mul=20,block=0 (see -weights help)")
	minimize := flag.Bool("minimize", false, "delta-debug each divergence to a minimal repro")
	out := flag.String("out", "", "directory for minimized regression kernels (with -minimize)")
	emit := flag.Bool("emit", false, "print each generated program instead of running it")
	quiet := flag.Bool("q", false, "suppress per-seed ok lines")
	flag.Parse()

	first, last, openEnded, err := parseSeeds(*seedsFlag, *budget)
	if err != nil {
		die(err)
	}
	weights, err := parseWeights(*weightsFlag)
	if err != nil {
		die(err)
	}
	mkConfig := func(seed uint64) armgen.Config {
		return armgen.Config{Seed: seed, Len: *length, Weights: weights, CondPct: *condPct}
	}

	if *emit {
		for seed := first; seed <= last; seed++ {
			p, err := armgen.Generate(mkConfig(seed))
			if err != nil {
				die(fmt.Errorf("seed %d: %w", seed, err))
			}
			fmt.Printf("; seed %d (%d instruction words)\n%s", seed, len(p.Image.Words()), p.Source)
		}
		return
	}

	var (
		mu       sync.Mutex
		results  = map[uint64]outcome{}
		next     = first
		deadline time.Time
		swept    []uint64
	)
	if *budget > 0 {
		deadline = time.Now().Add(*budget)
	}
	claim := func() (uint64, bool) {
		mu.Lock()
		defer mu.Unlock()
		if !openEnded && next > last {
			return 0, false
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, false
		}
		s := next
		next++
		swept = append(swept, s)
		return s, true
	}

	var wg sync.WaitGroup
	for w := 0; w < max(1, *jobs); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seed, ok := claim()
				if !ok {
					return
				}
				o := runSeed(seed, mkConfig(seed), *minimize, *out)
				mu.Lock()
				results[seed] = o
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sort.Slice(swept, func(i, j int) bool { return swept[i] < swept[j] })
	divergences := 0
	for _, seed := range swept {
		o := results[seed]
		switch {
		case o.err != nil:
			fmt.Printf("seed %d: ERROR: %v\n", seed, o.err)
			divergences++
		case o.report != "":
			fmt.Printf("seed %d: %s", seed, o.report)
			divergences++
		case !*quiet:
			fmt.Printf("seed %d: ok\n", seed)
		}
	}
	if len(swept) == 0 {
		fmt.Println("swept no seeds")
	} else {
		fmt.Printf("swept %d seeds (%d..%d): %d divergence(s)\n",
			len(swept), swept[0], swept[len(swept)-1], divergences)
	}
	if divergences > 0 {
		os.Exit(1)
	}
}

// outcome is one seed's result: a non-empty report or an error marks a
// divergence.
type outcome struct {
	report string // deterministic divergence report; empty when clean
	err    error
}

// runSeed generates, runs, and (optionally) minimizes one seed.
func runSeed(seed uint64, cfg armgen.Config, minimize bool, out string) (o outcome) {
	p, err := armgen.Generate(cfg)
	if err != nil {
		o.err = fmt.Errorf("generate: %w", err)
		return o
	}
	res, err := diffrun.Run(p.Image, diffrun.Options{})
	if err != nil {
		o.err = err
		return o
	}
	if res.Clean() {
		return o
	}
	var b strings.Builder
	b.WriteString(res.Report())
	if minimize {
		m, err := diffrun.Minimize(p.Chunks, diffrun.CheckEngines(diffrun.Options{}))
		if err != nil {
			fmt.Fprintf(&b, "  minimize failed: %v\n", err)
		} else {
			fmt.Fprintf(&b, "  minimized to %d instructions in %d steps\n", m.Instructions(), m.Steps)
			if out != "" {
				name := fmt.Sprintf("seed-%d", seed)
				path, err := diffrun.WriteRegression(out, name, cfg, m)
				if err != nil {
					fmt.Fprintf(&b, "  write regression: %v\n", err)
				} else {
					fmt.Fprintf(&b, "  regression kernel written to %s\n", path)
				}
			} else {
				b.WriteString("  minimized repro (pass -out to save):\n")
				for _, l := range strings.Split(strings.TrimRight(m.Source, "\n"), "\n") {
					fmt.Fprintf(&b, "    %s\n", l)
				}
			}
		}
	}
	o.report = b.String()
	return o
}

// parseSeeds parses "A..B" (inclusive) or a single "N". B < A is an
// open-ended sweep, valid only under a time budget.
func parseSeeds(s string, budget time.Duration) (first, last uint64, openEnded bool, err error) {
	lo, hi, ok := strings.Cut(s, "..")
	if !ok {
		hi = lo
	}
	if first, err = strconv.ParseUint(strings.TrimSpace(lo), 10, 64); err != nil {
		return 0, 0, false, fmt.Errorf("bad seed range %q: %w", s, err)
	}
	if last, err = strconv.ParseUint(strings.TrimSpace(hi), 10, 64); err != nil {
		return 0, 0, false, fmt.Errorf("bad seed range %q: %w", s, err)
	}
	if last < first {
		if budget <= 0 {
			return 0, 0, false, fmt.Errorf("open-ended seed range %q needs -budget", s)
		}
		return first, 0, true, nil
	}
	return first, last, false, nil
}

// parseWeights applies "name=value" overrides to the default weight mix.
// Names are the lower-cased Weights field names.
func parseWeights(s string) (armgen.Weights, error) {
	w := armgen.DefaultWeights()
	if s == "" {
		return w, nil
	}
	fields := map[string]*int{
		"dataimm":      &w.DataImm,
		"datareg":      &w.DataReg,
		"datashiftimm": &w.DataShiftImm,
		"datashiftreg": &w.DataShiftReg,
		"mul":          &w.Mul,
		"mullong":      &w.MulLong,
		"loadstore":    &w.LoadStore,
		"halfsigned":   &w.HalfSigned,
		"block":        &w.Block,
		"const":        &w.Const,
		"condskip":     &w.CondSkip,
		"loop":         &w.Loop,
	}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return w, fmt.Errorf("bad weight %q (want name=value)", kv)
		}
		p, ok := fields[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			return w, fmt.Errorf("unknown weight class %q", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return w, fmt.Errorf("bad weight value %q for %s", val, name)
		}
		*p = n
	}
	return w, nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "rcpnfuzz:", err)
	os.Exit(2)
}
