// Command rcpndot renders the RCPN of a processor model as a Graphviz
// digraph — the "mirror image of the processor pipeline block diagram" view
// the paper emphasizes — together with a short structural report (places,
// transitions, evaluation order, two-list places).
//
// Usage:
//
//	rcpndot [-model strongarm|xscale] [-report]
package main

import (
	"flag"
	"fmt"
	"os"

	"rcpn/internal/arm"
	"rcpn/internal/machine"
)

func main() {
	model := flag.String("model", "strongarm", "processor model: strongarm, xscale, arm9")
	report := flag.Bool("report", false, "print a structural report instead of DOT")
	flag.Parse()

	// Any loadable program works; the net structure is program independent.
	p, err := arm.Assemble("swi #0\n", 0x8000)
	if err != nil {
		fail(err)
	}
	var m *machine.Machine
	switch *model {
	case "strongarm":
		m = machine.NewStrongARM(p, machine.Config{})
	case "xscale":
		m = machine.NewXScale(p, machine.Config{})
	case "arm9":
		if m, err = machine.NewARM9(p, machine.Config{}); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown model %q", *model))
	}

	if !*report {
		fmt.Print(m.Dot())
		return
	}
	n := m.Net
	fmt.Printf("model: %s\n", m.Name)
	fmt.Printf("places (%d):", len(n.Places()))
	for _, pl := range n.Places() {
		cap := fmt.Sprintf("%d", pl.Stage.Capacity)
		if pl.Stage.Unlimited() {
			cap = "inf"
		}
		fmt.Printf(" %s[%s]", pl.Name, cap)
	}
	fmt.Printf("\ntransitions (%d):", len(n.Transitions()))
	for _, t := range n.Transitions() {
		fmt.Printf(" %s", t.Name)
	}
	fmt.Printf("\nevaluation order:")
	for _, pl := range n.Order() {
		fmt.Printf(" %s", pl.Name)
	}
	fmt.Printf("\ntwo-list places:")
	if len(n.TwoListPlaces()) == 0 {
		fmt.Printf(" (none — reverse topological order suffices)")
	}
	for _, pl := range n.TwoListPlaces() {
		fmt.Printf(" %s", pl.Name)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rcpndot:", err)
	os.Exit(1)
}
