// Command rcpnworker is one shard worker: it dials a coordinator
// (rcpnserve -coordinator), executes the job specs it is handed through
// the same executor a local server uses, and answers with fully rendered
// result payloads — which is why scaling out never changes result bytes
// (DESIGN.md §14).
//
// Usage:
//
//	rcpnworker -coordinator HOST:PORT [-node NAME] [-slots N]
//	           [-timeout 5m] [-maxcycles N] [-data DIR]
//	           [-heartbeat 2s] [-faultinj PLAN]
//
// The execution knobs (-timeout, -maxcycles) default to the rcpnserve
// defaults and must match the coordinator's if overridden there: they are
// part of the deterministic execution contract.
//
// -data points at a result store directory. Workers sharing one (a shared
// mount) adopt results orphaned by a worker that died between computing
// and answering, instead of re-executing.
//
// The worker is crash-only: losing the coordinator connection abandons all
// in-flight work (the coordinator has already reassigned it) and redials.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rcpn/internal/faultinj"
	"rcpn/internal/shard"
	"rcpn/internal/store"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator address (required), e.g. host:9090")
	node := flag.String("node", "", "worker name on the ring (default host:pid)")
	slots := flag.Int("slots", 0, "concurrent job capacity (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-job deadline (must match the coordinator's)")
	maxCycles := flag.Int64("maxcycles", 1<<32, "default per-job cycle cap (must match the coordinator's)")
	data := flag.String("data", "", "shared result store directory for orphaned-result adoption (empty = none)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "ping interval (must match the coordinator's)")
	faultPlan := flag.String("faultinj", "", "deterministic fault-injection plan (testing only)")
	flag.Parse()

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "rcpnworker: -coordinator is required")
		flag.Usage()
		os.Exit(2)
	}
	var inj *faultinj.Injector
	if *faultPlan != "" {
		var err error
		if inj, err = faultinj.Parse(*faultPlan); err != nil {
			fmt.Fprintln(os.Stderr, "rcpnworker:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rcpnworker: fault injection armed: %s\n", *faultPlan)
	}
	var st *store.Store
	if *data != "" {
		var err error
		if st, _, err = store.Open(*data, inj, nil); err != nil {
			fmt.Fprintln(os.Stderr, "rcpnworker:", err)
			os.Exit(1)
		}
	}

	w := shard.NewWorker(shard.WorkerConfig{
		Node:       *node,
		Slots:      *slots,
		JobTimeout: *timeout,
		MaxCycles:  *maxCycles,
		Heartbeat:  *heartbeat,
		Store:      st,
		Fault:      inj,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rcpnworker: "+format+"\n", args...)
		},
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx, *coordinator); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "rcpnworker:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rcpnworker: shut down")
}
