package batch

import (
	"errors"
	"runtime"
	"sync"
)

// Run covers the fixed-matrix case: all jobs known up front, one Report at
// the end. Pool is the streaming counterpart for long-lived callers (the
// simulation service): jobs arrive one at a time, wait in a bounded queue,
// and complete through a per-job callback. The bounded queue is the
// backpressure mechanism — TrySubmit refuses instead of buffering without
// limit, so an overloaded caller can shed load (HTTP 429) rather than grow
// memory.
//
// The queue is two-level: PriHigh (interactive work, the default) and
// PriLow (bulk sweeps). Workers prefer high-priority jobs whenever one is
// ready, so a flood of low-priority submissions fills its own queue and
// backs up — it cannot push interactive jobs out of the way or starve them.
// Each level has its own capacity, so the levels also cannot starve each
// other of queue space.

// ErrQueueFull is returned by TrySubmit when the queue is at capacity.
var ErrQueueFull = errors.New("batch: queue full")

// ErrPoolClosed is returned by TrySubmit after Close.
var ErrPoolClosed = errors.New("batch: pool closed")

// Priority selects a Pool queue level.
type Priority int

const (
	// PriHigh is the default, interactive level: preferred by workers.
	PriHigh Priority = iota
	// PriLow is the bulk level: claimed only when no high-priority job is
	// ready.
	PriLow
)

type poolItem struct {
	job  Job
	done func(Result)
}

// Pool is a fixed set of workers draining a bounded two-level job queue.
// Jobs run with the same isolation as Run: panic recovery, the per-job
// deadline from Options, and the sweep-wide Options.Context.
type Pool struct {
	high chan poolItem
	low  chan poolItem
	opt  Options
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts the workers. queueDepth bounds the jobs waiting to be
// claimed at each priority level (minimum 1); Options.Workers sizes the
// pool as in Run.
func NewPool(queueDepth int, opt Options) *Pool {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{
		high: make(chan poolItem, queueDepth),
		low:  make(chan poolItem, queueDepth),
		opt:  opt,
	}
	for w := 0; w < opt.Workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				it, ok := p.next()
				if !ok {
					return
				}
				r := runOne(&it.job, p.opt.parent(), p.opt.Timeout)
				if it.done != nil {
					it.done(r)
				}
			}
		}()
	}
	return p
}

// next claims the worker's next job, preferring the high queue whenever it
// has one ready. After Close both channels are closed; remaining buffered
// items still drain (Close's contract) before ok turns false.
func (p *Pool) next() (poolItem, bool) {
	// Non-blocking preference pass: never touch the low queue while a
	// high-priority job is waiting.
	select {
	case it, ok := <-p.high:
		if ok {
			return it, true
		}
		// High closed and empty: only the low queue can have work left.
		it, ok = <-p.low
		return it, ok
	default:
	}
	select {
	case it, ok := <-p.high:
		if ok {
			return it, true
		}
		it, ok = <-p.low
		return it, ok
	case it, ok := <-p.low:
		if ok {
			return it, true
		}
		it, ok = <-p.high
		return it, ok
	}
}

// Workers is the pool's concurrency.
func (p *Pool) Workers() int { return p.opt.Workers }

// Depth is the number of jobs waiting across both queue levels (claimed
// jobs excluded).
func (p *Pool) Depth() int { return len(p.high) + len(p.low) }

// DepthPri is the number of jobs waiting at one level.
func (p *Pool) DepthPri(pri Priority) int {
	if pri == PriLow {
		return len(p.low)
	}
	return len(p.high)
}

// Cap is the per-level queue capacity.
func (p *Pool) Cap() int { return cap(p.high) }

// TrySubmit enqueues a job at the default (high) priority without
// blocking. done, when non-nil, is called exactly once with the job's
// result, on the worker goroutine that ran it. ErrQueueFull means the
// caller should shed or retry; ErrPoolClosed means the pool is draining or
// closed.
func (p *Pool) TrySubmit(j Job, done func(Result)) error {
	return p.TrySubmitPri(j, PriHigh, done)
}

// TrySubmitPri enqueues a job at the given priority level without
// blocking. A full level refuses with ErrQueueFull even when the other
// level has room — levels do not share capacity, by design.
func (p *Pool) TrySubmitPri(j Job, pri Priority, done func(Result)) error {
	q := p.high
	if pri == PriLow {
		q = p.low
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case q <- poolItem{job: j, done: done}:
		return nil
	default:
		return ErrQueueFull
	}
}

// Close stops admission, runs every already-queued job to completion, and
// waits for the workers to exit. Queued jobs still run under
// Options.Context — cancel it (e.g. after a drain grace period) to turn the
// remaining queue into fast Canceled results instead of full runs. Close is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.high)
		close(p.low)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
