// Package mem provides the memory substrate shared by all simulators: a
// sparse paged flat memory for data, and latency-producing cache models that
// feed the data-dependent token delays of the RCPN LoadStore sub-nets
// (the paper's "t.delay = mem.delay(addr)").
package mem

import "encoding/binary"

const (
	pageBits = 16
	pageSize = 1 << pageBits
	numPages = 1 << (32 - pageBits)
)

// PageBytes is the size of one sparse page — the granularity at which
// checkpoints capture and restore memory contents.
const PageBytes = pageSize

// Memory is a sparse, paged, little-endian 32-bit address space. The zero
// value is ready to use. Word accesses are aligned by the implementation
// (low address bits ignored, as the ARM7 data path does).
type Memory struct {
	pages [numPages]*[pageSize]byte
}

// New returns an empty memory.
func New() *Memory { return &Memory{} }

func (m *Memory) page(addr uint32) *[pageSize]byte {
	p := m.pages[addr>>pageBits]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[addr>>pageBits] = p
	}
	return p
}

// LoadImage copies b into memory starting at base.
func (m *Memory) LoadImage(base uint32, b []byte) {
	for i, v := range b {
		m.Write8(base+uint32(i), v)
	}
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) byte {
	p := m.pages[addr>>pageBits]
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v byte) {
	m.page(addr)[addr&(pageSize-1)] = v
}

// Read16 reads an aligned little-endian halfword (low address bit ignored).
func (m *Memory) Read16(addr uint32) uint16 {
	addr &^= 1
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 writes an aligned little-endian halfword (low address bit
// ignored).
func (m *Memory) Write16(addr uint32, v uint16) {
	addr &^= 1
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
}

// Read32 reads an aligned little-endian word (low address bits ignored).
func (m *Memory) Read32(addr uint32) uint32 {
	addr &^= 3
	off := addr & (pageSize - 1)
	p := m.pages[addr>>pageBits]
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p[off : off+4])
}

// Write32 writes an aligned little-endian word (low address bits ignored).
func (m *Memory) Write32(addr uint32, v uint32) {
	addr &^= 3
	off := addr & (pageSize - 1)
	binary.LittleEndian.PutUint32(m.page(addr)[off:off+4], v)
}

// ForEachPage calls f for every populated, non-zero page in ascending page
// order with the page's base address and its PageBytes-sized contents. Pages
// that were allocated but hold only zero bytes are skipped — they are
// indistinguishable from untouched pages — so two memories with the same
// byte contents always enumerate the same page sequence regardless of which
// pages were ever touched (the property Digest relies on, extended to the
// checkpoint codec: capture is canonical and deterministic). The slice
// passed to f aliases live storage; f must not retain it.
func (m *Memory) ForEachPage(f func(base uint32, data []byte)) {
	for i, p := range m.pages {
		if p == nil {
			continue
		}
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		f(uint32(i)<<pageBits, p[:])
	}
}

// SetPage copies data (at most PageBytes) into the page containing base,
// which must be page-aligned. Checkpoint restore uses it to install captured
// pages wholesale instead of byte-at-a-time writes.
func (m *Memory) SetPage(base uint32, data []byte) {
	if len(data) > pageSize {
		data = data[:pageSize]
	}
	p := m.page(base)
	copy(p[:], data)
	for i := len(data); i < pageSize; i++ {
		p[i] = 0
	}
}

// Reset drops every page, returning the memory to its zero state. A restored
// simulation must start from here so no stale data survives from a previous
// run (the warm-state symmetry the batch runner depends on).
func (m *Memory) Reset() {
	for i := range m.pages {
		m.pages[i] = nil
	}
}

// CopyFrom makes m an exact copy of src's contents (Reset + page copies).
func (m *Memory) CopyFrom(src *Memory) {
	m.Reset()
	src.ForEachPage(func(base uint32, data []byte) {
		m.SetPage(base, data)
	})
}

// Digest returns an FNV-1a hash over the populated address space, walking
// pages in ascending address order. Unallocated pages hash identically to
// all-zero pages, so two memories with the same byte contents always digest
// equal regardless of which pages were ever touched — the property the
// cross-simulator differential tests rely on.
func (m *Memory) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, p := range m.pages {
		if p == nil {
			continue
		}
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue // indistinguishable from an untouched page
		}
		h ^= uint64(i)
		h *= prime64
		for _, b := range p {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}
