package rcpn

// The benchmark harness regenerating the paper's evaluation:
//
//	Figure 10 (simulation performance, Mcycles/s):
//	    BenchmarkFig10/<simulator>/<benchmark>
//	Figure 11 (CPI; reported as the "CPI" metric):
//	    BenchmarkFig11/<simulator>/<benchmark>
//	§4/§5 engine-optimization ablations:
//	    BenchmarkAblation/<configuration>
//	RCPN engine vs naive CPN engine on the Figure 2 pipeline:
//	    BenchmarkEngine/<engine>
//
// Run everything with:
//
//	go test -bench=. -benchmem .
//
// Simulated cycle counts are deterministic; Mcycles/s depends on the host.
// cmd/experiments prints the same data in the paper's table form.

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/core"
	"rcpn/internal/cpn"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
	"rcpn/internal/workload"
)

// benchScale keeps individual bench iterations short; cmd/experiments uses
// larger scales for the headline tables.
const benchScale = 1

type simResult struct {
	cycles  int64
	instret uint64
}

// simulators maps the Figure 10 bar names to runners.
func simulators() map[string]func(p *arm.Program) (simResult, error) {
	return map[string]func(p *arm.Program) (simResult, error){
		"SimpleScalar-Arm": func(p *arm.Program) (simResult, error) {
			s := ssim.New(p, ssim.Config{})
			err := s.Run(0)
			return simResult{s.Cycles, s.Instret}, err
		},
		"RCPN-XScale": func(p *arm.Program) (simResult, error) {
			m := machine.NewXScale(p, machine.Config{})
			err := m.Run(0)
			return simResult{m.Net.CycleCount(), m.Instret}, err
		},
		"RCPN-StrongARM": func(p *arm.Program) (simResult, error) {
			m := machine.NewStrongARM(p, machine.Config{})
			err := m.Run(0)
			return simResult{m.Net.CycleCount(), m.Instret}, err
		},
		"hand-written-5stage": func(p *arm.Program) (simResult, error) {
			s := pipe5.New(p, pipe5.Config{})
			err := s.Run(0)
			return simResult{s.Cycles, s.Instret}, err
		},
	}
}

var fig10Order = []string{
	"SimpleScalar-Arm", "RCPN-XScale", "RCPN-StrongARM", "hand-written-5stage",
}

// BenchmarkFig10 regenerates Figure 10: simulation performance in million
// simulated cycles per host second, per simulator per benchmark.
func BenchmarkFig10(b *testing.B) {
	sims := simulators()
	for _, simName := range fig10Order {
		run := sims[simName]
		b.Run(simName, func(b *testing.B) {
			for _, w := range workload.All() {
				p, err := w.Program(benchScale)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(w.Name, func(b *testing.B) {
					var cycles int64
					for i := 0; i < b.N; i++ {
						r, err := run(p)
						if err != nil {
							b.Fatal(err)
						}
						cycles += r.cycles
					}
					b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
				})
			}
		})
	}
}

// BenchmarkFig11 regenerates Figure 11: CPI of the StrongARM-class cycle
// simulators (reported as the "CPI" metric; deterministic per benchmark).
func BenchmarkFig11(b *testing.B) {
	sims := simulators()
	for _, simName := range []string{"SimpleScalar-Arm", "RCPN-StrongARM"} {
		run := sims[simName]
		b.Run(simName, func(b *testing.B) {
			for _, w := range workload.All() {
				p, err := w.Program(benchScale)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(w.Name, func(b *testing.B) {
					var last simResult
					for i := 0; i < b.N; i++ {
						r, err := run(p)
						if err != nil {
							b.Fatal(err)
						}
						last = r
					}
					b.ReportMetric(float64(last.cycles)/float64(last.instret), "CPI")
				})
			}
		})
	}
}

// BenchmarkAblation quantifies the §4/§5 engine optimizations on the
// RCPN-StrongARM simulator (crc workload). The metric is Minstr/s — host
// throughput per simulated instruction — because the two-list ablation also
// changes modeled timing, which would distort a cycles-based rate.
func BenchmarkAblation(b *testing.B) {
	configs := []struct {
		name string
		cfg  machine.Config
	}{
		{"full-engine", machine.Config{}},
		{"activeList=off", machine.Config{NoActiveList: true}},
		{"pool=off", machine.Config{NoTokenCache: true}},
		{"activeList=off,pool=off", machine.Config{NoActiveList: true, NoTokenCache: true}},
		{"dynamic-search", machine.Config{DynamicSearch: true}},
		{"two-list-everywhere", machine.Config{TwoListAll: true}},
		{"all-off", machine.Config{NoTokenCache: true, DynamicSearch: true, TwoListAll: true, NoActiveList: true}},
	}
	p, err := workload.ByName("crc").Program(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				m := machine.NewStrongARM(p, c.cfg)
				if err := m.Run(0); err != nil {
					b.Fatal(err)
				}
				instrs += m.Instret
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkEngine compares the RCPN engine against the generic CPN engine
// on the same (converted) Figure 2 pipeline — the §2 claim that direct CPN
// simulation of pipelines is slow. The rcpn side measures steady state: the
// net is built once, tokens come from a core.TokenPool and go back into it
// on retirement, and each iteration pushes `tokens` more tokens through —
// so after warm-up, allocs/op is zero. The cpn-naive side rebuilds and
// allocates per iteration, which is exactly the generic-engine overhead the
// paper argues against.
func BenchmarkEngine(b *testing.B) {
	const tokens = 20_000
	build := func() *core.Net {
		n := core.NewNet(2)
		l1 := n.Place("L1", n.Stage("L1", 1))
		l2 := n.Place("L2", n.Stage("L2", 1))
		end := n.EndPlace("end")
		n.AddTransition(&core.Transition{Name: "U2", Class: 0, From: l1, To: l2})
		n.AddTransition(&core.Transition{Name: "U3", Class: 0, From: l2, To: end})
		n.AddTransition(&core.Transition{Name: "U4", Class: 1, From: l1, To: end})
		made := 0
		n.AddSource(&core.Source{
			Name: "U1", To: l1,
			Guard: func() bool { return made < tokens },
			Fire:  func() *core.Token { made++; return core.NewToken(core.ClassID(made%2), made) },
		})
		n.MustBuild()
		return n
	}
	b.Run("rcpn", func(b *testing.B) {
		var pool core.TokenPool
		made, target := 0, 0
		n := core.NewNet(2)
		l1 := n.Place("L1", n.Stage("L1", 1))
		l2 := n.Place("L2", n.Stage("L2", 1))
		end := n.EndPlace("end")
		n.AddTransition(&core.Transition{Name: "U2", Class: 0, From: l1, To: l2})
		n.AddTransition(&core.Transition{Name: "U3", Class: 0, From: l2, To: end})
		n.AddTransition(&core.Transition{Name: "U4", Class: 1, From: l1, To: end})
		n.AddSource(&core.Source{
			Name: "U1", To: l1,
			Guard: func() bool { return made < target },
			// nil payload: boxing an int into Token.Data would allocate per
			// token and hide the engine's own (zero) steady-state allocation.
			Fire: func() *core.Token { made++; return pool.Get(core.ClassID(made%2), nil) },
		})
		n.OnRetire(func(t *core.Token) { pool.Put(t) })
		n.MustBuild()
		b.ResetTimer()
		var cycles int64
		for i := 0; i < b.N; i++ {
			start := n.CycleCount()
			target += tokens
			want := n.RetiredCount + tokens
			if _, err := n.Run(func() bool { return n.RetiredCount >= want }, 10*tokens); err != nil {
				b.Fatal(err)
			}
			cycles += n.CycleCount() - start
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
	})
	b.Run("cpn-naive", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			converted, _, err := cpn.Convert(build())
			if err != nil {
				b.Fatal(err)
			}
			var endPlace *cpn.Place
			for _, p := range converted.Places() {
				if p.Name == "end" {
					endPlace = p
				}
			}
			if err := converted.Run(func() bool { return len(endPlace.Tokens()) >= tokens }, 10*tokens); err != nil {
				b.Fatal(err)
			}
			cycles += converted.CycleCount()
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
	})
}

// BenchmarkISS measures the functional golden model for context (the
// "extracting fast functional simulators" direction of the paper's
// conclusion).
func BenchmarkISS(b *testing.B) {
	for _, w := range workload.All() {
		p, err := w.Program(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.Name, func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				c := iss.New(p, 0)
				c.MaxInstrs = 1 << 34
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
				instrs += c.Instret
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkFunctional measures the functional simulator extracted from the
// RCPN model semantics (the paper's future-work direction), next to the
// independent ISS above.
func BenchmarkFunctional(b *testing.B) {
	for _, w := range workload.All() {
		p, err := w.Program(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.Name, func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				m := machine.NewFunctional(p, machine.Config{})
				if err := m.RunFunctional(0); err != nil {
					b.Fatal(err)
				}
				instrs += m.Instret
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkDecode measures raw instruction-word decoding (the operation the
// token cache amortizes away).
func BenchmarkDecode(b *testing.B) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		b.Fatal(err)
	}
	words := p.Words()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := words[i%len(words)]
		_ = arm.Decode(w, 0x8000+uint32(4*(i%len(words))))
	}
}

// BenchmarkAssemble measures the two-pass assembler on the largest kernel.
func BenchmarkAssemble(b *testing.B) {
	src := workload.ByName("go").Source(1)
	for i := 0; i < b.N; i++ {
		if _, err := arm.Assemble(src, 0x8000); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchmarkHarnessSmoke keeps the harness itself covered by `go test`:
// every simulator must run every workload at the bench scale.
func TestBenchmarkHarnessSmoke(t *testing.T) {
	sims := simulators()
	p, err := workload.ByName("crc").Program(benchScale)
	if err != nil {
		t.Fatal(err)
	}
	var ref *simResult
	for _, name := range fig10Order {
		r, err := sims[name](p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.instret == 0 || r.cycles == 0 {
			t.Fatalf("%s: empty result %+v", name, r)
		}
		if ref == nil {
			ref = &r
		} else if r.instret != ref.instret {
			t.Errorf("%s: instret %d, want %d", name, r.instret, ref.instret)
		}
	}
}
