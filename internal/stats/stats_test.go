package stats

import (
	"strings"
	"testing"
	"time"
)

func sample() *Set {
	s := &Set{}
	s.Add(Run{Simulator: "ssim", Workload: "crc", Cycles: 1_000_000, Instret: 500_000, Wall: 2 * time.Second})
	s.Add(Run{Simulator: "ssim", Workload: "go", Cycles: 2_000_000, Instret: 1_000_000, Wall: 4 * time.Second})
	s.Add(Run{Simulator: "rcpn", Workload: "crc", Cycles: 1_000_000, Instret: 500_000, Wall: 200 * time.Millisecond})
	s.Add(Run{Simulator: "rcpn", Workload: "go", Cycles: 2_000_000, Instret: 1_000_000, Wall: 400 * time.Millisecond})
	return s
}

func TestRunMetrics(t *testing.T) {
	r := Run{Cycles: 3_000_000, Instret: 1_500_000, Wall: time.Second}
	if r.CPI() != 2.0 {
		t.Errorf("CPI = %f", r.CPI())
	}
	if r.MCyclesPerSec() != 3.0 {
		t.Errorf("MCPS = %f", r.MCyclesPerSec())
	}
	zero := Run{}
	if zero.CPI() != 0 || zero.MCyclesPerSec() != 0 {
		t.Error("zero run should yield zero metrics")
	}
}

func TestSetOrderingAndLookup(t *testing.T) {
	s := sample()
	if sims := s.Simulators(); len(sims) != 2 || sims[0] != "ssim" || sims[1] != "rcpn" {
		t.Errorf("simulators: %v", sims)
	}
	if works := s.Workloads(); len(works) != 2 || works[0] != "crc" {
		t.Errorf("workloads: %v", works)
	}
	if _, ok := s.Get("rcpn", "crc"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := s.Get("rcpn", "nope"); ok {
		t.Error("phantom lookup")
	}
}

func TestTableAndAverages(t *testing.T) {
	s := sample()
	tab := s.Table("Simulation performance", "Mcycles/s", MetricMCPS, 1)
	for _, want := range []string{"crc", "go", "Average", "ssim", "rcpn", "5.0", "0.5"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	if avg := s.Average("ssim", MetricMCPS); avg != 0.5 {
		t.Errorf("ssim average MCPS = %f", avg)
	}
	if avg := s.Average("rcpn", MetricMCPS); avg != 5.0 {
		t.Errorf("rcpn average MCPS = %f", avg)
	}
	if s.Average("none", MetricCPI) != 0 {
		t.Error("missing simulator should average 0")
	}
}

func TestCSV(t *testing.T) {
	csv := sample().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "simulator,workload") {
		t.Errorf("header: %s", lines[0])
	}
	// Sorted: rcpn rows before ssim rows.
	if !strings.HasPrefix(lines[1], "rcpn,crc") {
		t.Errorf("sorting: %s", lines[1])
	}
}

func TestProgress(t *testing.T) {
	p := Progress{Cycles: 4_000_000, Instret: 2_000_000, Wall: 2 * time.Second}
	if got := p.CPI(); got != 2.0 {
		t.Errorf("CPI = %v, want 2", got)
	}
	if got := p.MCyclesPerSec(); got != 2.0 {
		t.Errorf("MCyclesPerSec = %v, want 2", got)
	}
	if got := p.MInstrPerSec(); got != 1.0 {
		t.Errorf("MInstrPerSec = %v, want 1", got)
	}
	// Zero-duration and zero-instruction snapshots must not divide by zero.
	z := Progress{}
	if z.CPI() != 0 || z.MCyclesPerSec() != 0 || z.MInstrPerSec() != 0 {
		t.Error("zero snapshot produced nonzero rates")
	}
	r := p.Run("sim", "wl")
	if r.Simulator != "sim" || r.Cycles != p.Cycles || r.Wall != p.Wall {
		t.Errorf("Run conversion lost fields: %+v", r)
	}
}
