package gen

import (
	"bytes"
	"fmt"
	"strings"

	"rcpn/internal/arm"
)

// The emitter writes the generated package as one Go source file. Output is
// deterministic — stages are walked in place-id order for declarations and
// in the compiled reverse topological order for the step loop, classes in
// class-id order — and is passed through go/format before it leaves
// Generate, so identical inputs produce identical bytes.
//
// Name mangling: each stage name is sanitized to an identifier suffix
// (letters and digits kept, everything else becomes '_'), and every
// generated symbol derives from it by prefix — latch slot l<ident>, ready
// cycle r<ident>, state index st<ident>, step function step<ident>, stall
// classifier classify<ident>, op-id table op<ident><slot>. Collisions after
// sanitization are an analysis error.

type emitter struct {
	buf bytes.Buffer
	m   *model
}

func (e *emitter) f(format string, args ...any) { fmt.Fprintf(&e.buf, format, args...) }

func className(c int) string { return arm.Class(c).String() }

func classLabels(classes []int) string {
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = classConstNames[c]
	}
	return strings.Join(names, ", ")
}

func classList(classes []int) string {
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = className(c)
	}
	return strings.Join(names, ", ")
}

// classGroup is a set of classes sharing one emitted body — the
// devirtualized form of per-class dispatch: identical bodies merge, and a
// stage whose classes all behave alike needs no switch at all.
type classGroup struct {
	classes []int
	body    string
}

func groupClasses(bodies []string) []classGroup {
	var gs []classGroup
	idx := map[string]int{}
	for c, b := range bodies {
		if i, ok := idx[b]; ok {
			gs[i].classes = append(gs[i].classes, c)
		} else {
			idx[b] = len(gs)
			gs = append(gs, classGroup{classes: []int{c}, body: b})
		}
	}
	return gs
}

// dispatch emits the per-class dispatch over the given bodies: no switch
// when every class shares one body, otherwise a switch whose largest group
// (ties: earliest class) is the default clause, keeping the switch
// exhaustive without a dead tail.
func (e *emitter) dispatch(bodies []string) {
	gs := groupClasses(bodies)
	if len(gs) == 1 {
		e.f("%s", gs[0].body)
		return
	}
	def := 0
	for i, g := range gs {
		if len(g.classes) > len(gs[def].classes) {
			def = i
		}
	}
	e.f("switch in.I.Class {\n")
	for i, g := range gs {
		if i == def {
			continue
		}
		e.f("case %s:\n%s", classLabels(g.classes), g.body)
	}
	e.f("default: // %s\n%s", classList(gs[def].classes), gs[def].body)
	e.f("}\n")
}

// actionLines inlines the transition's semantic calls. When wantDelay is
// true (the destination is a real latch) the data-dependent kinds also bind
// d, the token-delay override of the interpreted engine's deliver;
// destinations past the end place retire immediately and take no delay.
func (e *emitter) actionLines(b *strings.Builder, k candKind, wantDelay bool) (delayVar bool) {
	switch k {
	case kPass:
	case kIssue:
		b.WriteString("in.Issue(bypassStates)\n")
	case kIssueMult:
		b.WriteString("in.Issue(bypassStates)\n")
		if wantDelay {
			b.WriteString("var d int64\nif !in.Annulled() {\n")
			if e.m.macExtra != 0 {
				fmt.Fprintf(b, "d = %d + in.MulLatency()\n", e.m.macExtra)
			} else {
				b.WriteString("d = in.MulLatency()\n")
			}
			b.WriteString("}\n")
			delayVar = true
		}
	case kExecute:
		b.WriteString("in.Execute()\n")
	case kExecuteMem:
		b.WriteString("in.Execute()\n")
		if wantDelay {
			b.WriteString("d := in.MemLatency()\n")
			delayVar = true
		}
	case kMemAccess:
		b.WriteString("in.MemAccess()\n")
	case kLSMStep:
		b.WriteString("d := in.LSMStep()\n")
		delayVar = true
	case kLSMLast:
		b.WriteString("in.LSMFinish()\n")
	case kWriteback:
		b.WriteString("in.Writeback()\n")
	case kMemWB:
		b.WriteString("in.MemAccess()\nin.Writeback()\n")
	case kLSMLastWB:
		b.WriteString("in.LSMFinish()\nin.Writeback()\n")
	}
	return delayVar
}

// fireLines emits one transition firing, mirroring the interpreted fire():
// remove from the latch, run the action, deliver (token delay overriding
// the destination's residency delay, minimum one cycle) or retire, with the
// trace events in the engine's exact order.
func (e *emitter) fireLines(st *stageInfo, slot int, cd cand) string {
	var b strings.Builder
	tr := cd.tr
	selfLoop := tr.From == tr.To
	toEnd := tr.To.End
	if !selfLoop {
		fmt.Fprintf(&b, "s.l%s = nil\nin.SetState(-1)\n", st.ident)
	}
	delayVar := e.actionLines(&b, cd.kind, !toEnd)
	opRef := fmt.Sprintf("op%s%d[in.I.Class]", st.ident, slot)
	switch {
	case toEnd:
		fmt.Fprintf(&b, "s.fired[st%s] = now\n", st.ident)
		fmt.Fprintf(&b, "if s.trace != nil {\ns.trace.Fire(now, in.Seq, st%s, %s)\ns.trace.Retire(now, in.Seq, st%s)\n}\n",
			st.ident, opRef, st.ident)
		b.WriteString("s.m.GenRetire(in)\n")
	case selfLoop:
		fmt.Fprintf(&b, "if d < 1 {\nd = %d\n}\n", st.delay)
		fmt.Fprintf(&b, "s.r%s = now + d\n", st.ident)
		fmt.Fprintf(&b, "s.fired[st%s] = now\n", st.ident)
		fmt.Fprintf(&b, "if s.trace != nil {\ns.trace.Fire(now, in.Seq, st%s, %s)\ns.trace.Move(now, in.Seq, st%s, st%s)\n}\n",
			st.ident, opRef, st.ident, st.ident)
	default:
		to := &e.m.stages[tr.To.ID()]
		if delayVar {
			fmt.Fprintf(&b, "if d < 1 {\nd = %d\n}\n", to.delay)
			fmt.Fprintf(&b, "s.l%s, s.r%s = in, now+d\n", to.ident, to.ident)
		} else {
			fmt.Fprintf(&b, "s.l%s, s.r%s = in, now+%d\n", to.ident, to.ident, to.delay)
		}
		fmt.Fprintf(&b, "in.SetState(st%s)\n", to.ident)
		fmt.Fprintf(&b, "s.fired[st%s] = now\n", st.ident)
		fmt.Fprintf(&b, "if s.trace != nil {\ns.trace.Fire(now, in.Seq, st%s, %s)\ns.trace.Move(now, in.Seq, st%s, st%s)\n}\n",
			st.ident, opRef, to.ident, st.ident)
	}
	return b.String()
}

// stepBody emits one class's candidate chain for a stage: each candidate's
// enabling clauses (destination latch free, inlined guard) as one if, in
// arc-priority order, firing the first enabled one.
func (e *emitter) stepBody(st *stageInfo, c int) string {
	cands := st.cands[c]
	if len(cands) == 0 {
		return fmt.Sprintf("// class %s can never leave %s\n", className(c), st.name)
	}
	var b strings.Builder
	for slot, cd := range cands {
		var conds []string
		if cd.tr.NeedsCapacity() {
			conds = append(conds, fmt.Sprintf("s.l%s == nil", e.m.stages[cd.tr.To.ID()].ident))
		}
		switch cd.kind {
		case kIssue, kIssueMult:
			conds = append(conds, "in.IssueReady(bypassStates)")
		case kLSMStep:
			conds = append(conds, "in.LSMMore()")
		}
		fire := e.fireLines(st, slot, cd)
		if len(conds) == 0 {
			// Unconditionally enabled: fires every time, shadowing any
			// lower-priority candidate (the interpreted engine would never
			// reach them either).
			b.WriteString(fire)
			break
		}
		fmt.Fprintf(&b, "if %s {\n%sreturn\n}\n", strings.Join(conds, " && "), fire)
	}
	return b.String()
}

// classifyBody mirrors the engine's classifyToken for one class: probe the
// highest-priority candidate's clauses in enabling order and name the first
// failing one.
func (e *emitter) classifyBody(st *stageInfo, c int) string {
	cands := st.cands[c]
	if len(cands) == 0 {
		return "return obsv.StallGuard\n"
	}
	cd := cands[0]
	var b strings.Builder
	if cd.tr.NeedsCapacity() {
		fmt.Fprintf(&b, "if s.l%s != nil {\nreturn obsv.StallCapacity\n}\n", e.m.stages[cd.tr.To.ID()].ident)
	}
	if cd.kind.needsExplain() {
		b.WriteString("if !in.IssueReady(bypassStates) {\nreturn in.IssueStallKind(bypassStates)\n}\n")
	}
	b.WriteString("return obsv.StallGuard\n")
	return b.String()
}

func emit(m *model, opts Options) []byte {
	e := &emitter{m: m}
	nc := int(arm.NumClasses)

	e.f("// Code generated by rcpngen from the %q machine spec; DO NOT EDIT.\n", m.spec.Name)
	e.f("//\n// Regenerate with:\n//\n//\tgo run ./cmd/rcpngen -model %s -pkg %s -out %s\n\n",
		opts.Model, opts.Package, opts.OutDir)
	e.f("// Package %s is a generated cycle-accurate simulator for the %s\n", opts.Package, m.spec.Name)
	e.f("// model: the RCPN's sorted_transitions table compiled to one flattened\n")
	e.f("// step function per pipeline stage, with guards inlined as ifs and\n")
	e.f("// per-operation-class dispatch devirtualized into direct calls. Fetch and\n")
	e.f("// decode (with the per-PC decoded-instruction cache), architected state,\n")
	e.f("// flush handling and checkpointing are shared with the interpreted\n")
	e.f("// machines through the machine package's generated-simulator runtime.\n")
	e.f("package %s\n\n", opts.Package)
	e.f("import (\n\"fmt\"\n\n\"rcpn/internal/arm\"\n\"rcpn/internal/batch\"\n\"rcpn/internal/ckpt\"\n\"rcpn/internal/machine\"\n\"rcpn/internal/obsv\"\n)\n\n")

	e.f("const modelName = %q\n\n", m.spec.Name)
	e.f("// Pipeline state indices: the source net's place ids, reused as trace\n")
	e.f("// locations, profile rows and the bypass-query states tokens carry.\n")
	e.f("const (\n")
	for _, st := range m.stages {
		e.f("st%s = %d\n", st.ident, st.id)
	}
	e.f(")\n\n")
	e.f("const numStages = %d\n\n", len(m.stages))

	e.f("// bypassStates feeds the forwarding-network queries (reg.Ref.CanReadIn).\n")
	if len(m.bypass) == 0 {
		e.f("var bypassStates []int\n\n")
	} else {
		refs := make([]string, len(m.bypass))
		for i, id := range m.bypass {
			refs[i] = "st" + m.stages[id].ident
		}
		e.f("var bypassStates = []int{%s}\n\n", strings.Join(refs, ", "))
	}

	e.f("// Name tables, identical to the interpreted net's profile and trace\n// tables so artifacts are comparable across the two engines.\n")
	e.f("var stageNames = []string{")
	for i, st := range m.stages {
		if i > 0 {
			e.f(", ")
		}
		e.f("%q", st.name)
	}
	e.f("}\n\n")
	e.f("var locNames = []string{")
	for _, st := range m.stages {
		e.f("%q, ", st.name)
	}
	e.f("%q}\n\n", m.endName)
	e.f("var opNames = []string{\n")
	for _, op := range m.ops {
		e.f("%q,\n", op)
	}
	e.f("}\n\n")

	e.f("// Per-(stage, candidate slot) transition ids by operation class — the\n")
	e.f("// trace Fire op argument; -1 marks a class without that candidate.\n")
	e.f("var (\n")
	for _, st := range m.stages {
		slots := 0
		for c := 0; c < nc; c++ {
			if len(st.cands[c]) > slots {
				slots = len(st.cands[c])
			}
		}
		for j := 0; j < slots; j++ {
			e.f("op%s%d = [...]int32{", st.ident, j)
			for c := 0; c < nc; c++ {
				if c > 0 {
					e.f(", ")
				}
				if j < len(st.cands[c]) {
					e.f("%d", st.cands[c][j].tr.ID())
				} else {
					e.f("-1")
				}
			}
			e.f("}\n")
		}
	}
	e.f(")\n\n")

	// The simulator type.
	e.f("// Sim is one %s pipeline instance: a single-slot latch per stage plus\n", m.spec.Name)
	e.f("// the shared net-free machine runtime.\n")
	e.f("type Sim struct {\n")
	e.f("m *machine.Machine\n\n")
	e.f("// One latch per capacity-1 stage place; r<stage> is the first cycle\n// the occupant's output transitions may fire (residency delay).\n")
	for _, st := range m.stages {
		e.f("l%s *machine.Inst\n", st.ident)
		e.f("r%s int64\n", st.ident)
	}
	e.f("\n// Cycles counts completed simulation cycles.\nCycles int64\n\n")
	e.f("// Observability attachments; nil unless enabled (every hot-path hook\n// is one nil check).\n")
	e.f("prof *obsv.StallProfile\ntrace *obsv.Tracer\n")
	e.f("// fired[stage] is the last cycle a transition fired out of the stage.\n")
	e.f("fired [numStages]int64\n")
	e.f("// victims is the flush hook's reusable scratch buffer.\nvictims []*machine.Inst\n")
	e.f("}\n\n")

	e.f("// New builds a fresh simulator over program p.\n")
	e.f("func New(p *arm.Program, cfg machine.Config) *Sim {\n")
	e.f("s := &Sim{m: machine.NewGenRuntime(modelName, p, cfg)}\n")
	e.f("s.m.SetGenFlush(s.flushYounger)\n")
	e.f("for i := range s.fired {\ns.fired[i] = -1\n}\n")
	e.f("return s\n}\n\n")

	e.f("// Runtime exposes the shared machine runtime (architected state, fetch\n// statistics, program results).\n")
	e.f("func (s *Sim) Runtime() *machine.Machine { return s.m }\n\n")

	// step: stages in reverse topological order, then fetch, then profile.
	e.f("// step executes one cycle: every stage in the net's reverse topological\n")
	e.f("// order (downstream first, so a latch empties before its feeder fills\n")
	e.f("// it and one token moves at most once per cycle), then fetch, then the\n")
	e.f("// per-cycle profile slot.\n")
	e.f("func (s *Sim) step() {\n")
	e.f("now := s.Cycles\n")
	for _, id := range m.order {
		e.f("s.step%s(now)\n", m.stages[id].ident)
	}
	e.f("s.fetch(now)\n")
	e.f("if s.prof != nil {\ns.profileCycle(now)\n}\n")
	e.f("s.Cycles++\n}\n\n")

	// Stage step functions, in the same order as the step loop.
	for _, id := range m.order {
		st := &m.stages[id]
		e.f("// step%s advances the %s stage.\n", st.ident, st.name)
		e.f("func (s *Sim) step%s(now int64) {\n", st.ident)
		e.f("in := s.l%s\n", st.ident)
		e.f("if in == nil || s.r%s > now {\nreturn\n}\n", st.ident)
		bodies := make([]string, nc)
		for c := 0; c < nc; c++ {
			bodies[c] = e.stepBody(st, c)
		}
		e.dispatch(bodies)
		e.f("}\n\n")
	}

	// fetch.
	fe := &m.stages[m.fetchTo]
	e.f("// fetch runs the front end: one instruction per cycle into %s when the\n", fe.name)
	e.f("// latch is free, with the I-cache latency as the arrival delay.\n")
	e.f("func (s *Sim) fetch(now int64) {\n")
	e.f("if s.l%s != nil {\nreturn\n}\n", fe.ident)
	e.f("in, lat := s.m.GenFetch()\n")
	e.f("if in == nil {\nreturn\n}\n")
	e.f("if lat < 1 {\nlat = %d\n}\n", fe.delay)
	e.f("s.l%s, s.r%s = in, now+lat\n", fe.ident, fe.ident)
	e.f("in.SetState(st%s)\n", fe.ident)
	e.f("if s.trace != nil {\ns.trace.Birth(now, in.Seq, st%s)\n}\n", fe.ident)
	e.f("}\n\n")

	// flushYounger.
	e.f("// flushYounger is the machine's squash hook: clear every latch holding\n")
	e.f("// an instruction younger than seq and hand the victims back (lock\n")
	e.f("// release, recycling and the PC redirect happen machine-side).\n")
	e.f("func (s *Sim) flushYounger(seq uint64) []*machine.Inst {\n")
	e.f("v := s.victims[:0]\n")
	for _, st := range m.stages {
		e.f("if in := s.l%s; in != nil && in.Seq > seq {\ns.l%s = nil\nv = append(v, in)\n}\n", st.ident, st.ident)
	}
	e.f("s.victims = v\nreturn v\n}\n\n")

	// profileCycle + classify functions.
	e.f("// profileCycle fills one accounting slot per stage for the cycle that\n")
	e.f("// just executed, mirroring the interpreted engine's end-of-cycle\n")
	e.f("// classification exactly (same taxonomy, same clause order).\n")
	e.f("func (s *Sim) profileCycle(now int64) {\n")
	for _, st := range m.stages {
		e.f("if s.fired[st%s] == now {\ns.prof.Advance(st%s)\n} else {\ns.prof.Stall(st%s, s.classify%s(now))\n}\n",
			st.ident, st.ident, st.ident, st.ident)
	}
	e.f("s.prof.EndCycle()\n}\n\n")

	for si := range m.stages {
		st := &m.stages[si]
		e.f("// classify%s names the stall of an unprogressed %s slot: Empty, still\n", st.ident, st.name)
		e.f("// in a residency delay, or the first failing enabling clause of the\n")
		e.f("// occupant's highest-priority candidate.\n")
		e.f("func (s *Sim) classify%s(now int64) obsv.StallKind {\n", st.ident)
		e.f("in := s.l%s\n", st.ident)
		e.f("if in == nil {\nreturn obsv.StallEmpty\n}\n")
		e.f("if s.r%s > now {\nreturn obsv.StallDelay\n}\n", st.ident)
		bodies := make([]string, nc)
		for c := 0; c < nc; c++ {
			bodies[c] = e.classifyBody(st, c)
		}
		e.dispatch(bodies)
		e.f("}\n\n")
	}

	// Drained + run loops + checkpointing.
	drained := make([]string, 0, len(m.stages)+1)
	for _, st := range m.stages {
		drained = append(drained, fmt.Sprintf("s.l%s == nil", st.ident))
	}
	drained = append(drained, "!s.m.FetchHeld()")
	e.f("// Drained reports whether no instruction is in flight.\n")
	e.f("func (s *Sim) Drained() bool {\nreturn %s\n}\n\n", strings.Join(drained, " && "))

	e.f("// Run simulates until the program exits (and the pipeline drains), an\n")
	e.f("// error occurs, or maxCycles elapses (0 = 1<<40).\n")
	e.f("func (s *Sim) Run(maxCycles int64) error {\n")
	e.f("if maxCycles <= 0 {\nmaxCycles = 1 << 40\n}\n")
	e.f("for !(s.m.Exited && s.Drained()) {\n")
	e.f("if s.Cycles >= maxCycles {\nreturn fmt.Errorf(\"%%s: cycle limit %%d exceeded at pc=%%#08x\", modelName, maxCycles, s.m.PC())\n}\n")
	e.f("s.step()\n")
	e.f("if s.m.Err != nil {\nreturn s.m.Err\n}\n")
	e.f("}\nreturn nil\n}\n\n")

	e.f("// RunUntil simulates until at least target total instructions retired,\n")
	e.f("// the program exited, or the cycle count reached cycleLimit (0 =\n")
	e.f("// 1<<40); reaching the limit is a clean chunk boundary, not an error.\n")
	e.f("func (s *Sim) RunUntil(target uint64, cycleLimit int64) error {\n")
	e.f("if cycleLimit <= 0 {\ncycleLimit = 1 << 40\n}\n")
	e.f("for !(s.m.Exited && s.Drained()) && s.m.Instret < target && s.Cycles < cycleLimit {\n")
	e.f("s.step()\n")
	e.f("if s.m.Err != nil {\nreturn s.m.Err\n}\n")
	e.f("}\nreturn nil\n}\n\n")

	e.f("// Drain holds the front end and runs the pipeline empty, leaving the\n")
	e.f("// simulator at a checkpointable architectural boundary.\n")
	e.f("func (s *Sim) Drain(maxCycles int64) error {\n")
	e.f("if maxCycles <= 0 {\nmaxCycles = 1 << 40\n}\n")
	e.f("s.m.GenHoldFetch(true)\n")
	e.f("defer s.m.GenHoldFetch(false)\n")
	e.f("for !s.Drained() {\n")
	e.f("if s.Cycles >= maxCycles {\nreturn fmt.Errorf(\"%%s: cycle limit %%d exceeded draining at pc=%%#08x\", modelName, maxCycles, s.m.PC())\n}\n")
	e.f("s.step()\n")
	e.f("if s.m.Err != nil {\nreturn s.m.Err\n}\n")
	e.f("}\nreturn nil\n}\n\n")

	e.f("// Checkpoint captures architected plus warm microarchitectural state;\n")
	e.f("// the pipeline must be drained.\n")
	e.f("func (s *Sim) Checkpoint() (*ckpt.Checkpoint, error) {\n")
	e.f("if !s.Drained() {\nreturn nil, fmt.Errorf(\"%%s: checkpoint requires a drained pipeline\", modelName)\n}\n")
	e.f("return s.m.Checkpoint()\n}\n\n")

	e.f("// Restore overwrites the simulator's state with the checkpoint; the\n")
	e.f("// pipeline must be drained (a fresh instance is).\n")
	e.f("func (s *Sim) Restore(ck *ckpt.Checkpoint) error {\n")
	e.f("if !s.Drained() {\nreturn fmt.Errorf(\"%%s: restore requires a drained pipeline\", modelName)\n}\n")
	e.f("return s.m.Restore(ck)\n}\n\n")

	e.f("// AttachTrace routes the token game into tr; the net's place and\n")
	e.f("// transition names are the tracer's name tables. Call before the first\n")
	e.f("// cycle.\n")
	e.f("func (s *Sim) AttachTrace(tr *obsv.Tracer) {\n")
	e.f("tr.Locs, tr.Ops = locNames, opNames\n")
	e.f("s.trace = tr\n}\n\n")

	e.f("// EnableProfile turns on per-cycle stall attribution and returns the\n")
	e.f("// live profile. Call before the first cycle; calling it again returns\n")
	e.f("// the same profile.\n")
	e.f("func (s *Sim) EnableProfile() *obsv.StallProfile {\n")
	e.f("if s.prof == nil {\ns.prof = obsv.NewStallProfile(stageNames...)\ns.m.InstallProfile(s.prof)\n}\n")
	e.f("return s.prof\n}\n\n")

	// The batch stepper adapter.
	e.f("// Stepper adapts the simulator to the batch driving interfaces.\n")
	e.f("func Stepper(s *Sim) batch.CheckpointStepper { return stepper{s} }\n\n")
	e.f("type stepper struct{ s *Sim }\n\n")
	e.f("var (\n_ batch.CheckpointStepper = stepper{}\n_ obsv.Instrumentable = stepper{}\n)\n\n")
	e.f("func (a stepper) Pos() int64 { return a.s.Cycles }\n\n")
	e.f("func (a stepper) Progress() (int64, uint64) { return a.s.Cycles, a.s.m.Instret }\n\n")
	e.f("func (a stepper) StepTo(limit int64) (bool, error) {\n")
	e.f("err := a.s.Run(limit)\n")
	e.f("if err == nil {\nreturn true, nil\n}\n")
	e.f("if a.s.m.Err == nil && !a.s.m.Exited && a.s.Cycles >= limit {\nreturn false, nil // chunk boundary, not a failure\n}\n")
	e.f("return false, err\n}\n\n")
	e.f("func (a stepper) StepToRetired(target uint64, posLimit int64) (bool, error) {\n")
	e.f("if err := a.s.RunUntil(target, posLimit); err != nil {\nreturn false, err\n}\n")
	e.f("return a.s.m.Exited, nil\n}\n\n")
	e.f("func (a stepper) DrainBoundary() error { return a.s.Drain(0) }\n\n")
	e.f("func (a stepper) Checkpoint() (*ckpt.Checkpoint, error) { return a.s.Checkpoint() }\n\n")
	e.f("func (a stepper) Restore(ck *ckpt.Checkpoint) error { return a.s.Restore(ck) }\n\n")
	e.f("func (a stepper) AttachTrace(tr *obsv.Tracer) { a.s.AttachTrace(tr) }\n\n")
	e.f("func (a stepper) EnableProfile() *obsv.StallProfile { return a.s.EnableProfile() }\n")

	return e.buf.Bytes()
}
