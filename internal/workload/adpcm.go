package workload

import "fmt"

// adpcmSource is the MediaBench adpcm (rawcaudio) kernel: an IMA ADPCM
// encoder with the standard 89-entry step-size table, fed by a bounded
// pseudo-random walk standing in for a PCM waveform. The loop body is
// table lookups, clamping ladders and sign-dependent branches.
func adpcmSource(scale int) string {
	samples := 2048 * scale
	return fmt.Sprintf(`
; adpcm kernel (MediaBench adpcm) — IMA ADPCM encode of %[1]d samples
;
; register map:
;   r4 = sample  r5 = predictor (valpred)  r6 = index  r7 = step
;   r8 = LCG state  r9 = loop count  r10 = checksum  r11 = steptab base
_start:
	mov r5, #0
	mov r6, #0
	ldr r8, =0x2468ace0
	ldr r9, =%[1]d
	mov r10, #0
	ldr r11, =steptab
	mov r4, #0               ; waveform state (random walk)
sample_loop:
	; next input sample: bounded random walk, +-31 per step
	ldr r0, =1664525
	ldr r1, =1013904223
	mla r8, r8, r0, r1
	mov r0, r8, lsr #26      ; 0..63
	sub r0, r0, #32          ; -32..31
	add r4, r4, r0
	; clamp sample to [-2048, 2047]
	ldr r0, =2047
	cmp r4, r0
	movgt r4, r0
	ldr r0, =-2048
	cmp r4, r0
	movlt r4, r0

	; diff = sample - valpred; sign bit in r3 (8 = negative)
	subs r1, r4, r5
	mov r3, #0
	rsblt r1, r1, #0         ; diff = abs(diff)
	movlt r3, #8

	; step = steptab[index]
	ldr r7, [r11, r6, lsl #2]

	; quantize diff against step: delta bits 2..0
	mov r2, #0               ; delta
	cmp r1, r7
	orrge r2, r2, #4
	subge r1, r1, r7
	mov r0, r7, lsr #1
	cmp r1, r0
	orrge r2, r2, #2
	subge r1, r1, r0
	mov r0, r7, lsr #2
	cmp r1, r0
	orrge r2, r2, #1

	; vpdiff = step>>3 + step terms mirroring the decoder
	mov r0, r7, lsr #3
	tst r2, #4
	addne r0, r0, r7
	tst r2, #2
	addne r0, r0, r7, lsr #1
	tst r2, #1
	addne r0, r0, r7, lsr #2

	; predictor update with clamp
	tst r3, #8
	subne r5, r5, r0
	addeq r5, r5, r0
	ldr r0, =2047
	cmp r5, r0
	movgt r5, r0
	ldr r0, =-2048
	cmp r5, r0
	movlt r5, r0

	; index update with clamp to [0, 88]
	orr r2, r2, r3           ; 4-bit code incl. sign
	ldr r0, =indextab
	and r1, r2, #7
	ldr r1, [r0, r1, lsl #2]
	add r6, r6, r1
	cmp r6, #0
	movlt r6, #0
	cmp r6, #88
	movgt r6, #88

	; checksum = checksum*31 + code
	mov r0, r10, lsl #5
	sub r10, r0, r10
	add r10, r10, r2

	subs r9, r9, #1
	bne sample_loop

	mov r0, r10
	swi #1
	mov r0, r5               ; final predictor state
	swi #1
	mov r0, #0
	swi #0
	.ltorg
	.align
indextab:
	.word -1, -1, -1, -1, 2, 4, 6, 8
steptab:
	.word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17
	.word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45
	.word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118
	.word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307
	.word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796
	.word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066
	.word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358
	.word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899
	.word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
`, samples)
}
