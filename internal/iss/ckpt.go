package iss

import (
	"fmt"

	"rcpn/internal/arm"
	"rcpn/internal/ckpt"
	"rcpn/internal/mem"
)

// This file implements the fast-forward half of sampled simulation: the ISS
// runs N instructions at functional speed, snapshots, and any detailed model
// restores the snapshot and measures an interval. Because every instruction
// boundary of a purely functional simulator is a drained boundary, the ISS
// can checkpoint anywhere.

// RunN executes up to n further instructions (or until exit) and returns how
// many actually retired. MaxInstrs still bounds the total.
func (c *CPU) RunN(n uint64) (uint64, error) {
	start := c.Instret
	for !c.Exited && c.Instret-start < n {
		if c.MaxInstrs != 0 && c.Instret >= c.MaxInstrs {
			return c.Instret - start, fmt.Errorf("iss: instruction limit %d exceeded at pc=%#08x", c.MaxInstrs, c.R[arm.PC])
		}
		if err := c.Step(); err != nil {
			return c.Instret - start, err
		}
	}
	return c.Instret - start, nil
}

// Checkpoint captures the complete architected state, plus warm
// microarchitectural state when warm units are attached.
func (c *CPU) Checkpoint() *ckpt.Checkpoint {
	ck := &ckpt.Checkpoint{
		R:       c.R,
		Instret: c.Instret,
		Exited:  c.Exited,
		Exit:    c.Exit,
		Output:  append([]uint32(nil), c.Output...),
		Text:    append([]byte(nil), c.Text...),
		Mem:     ckpt.CaptureMem(c.Mem),
		ICache:  ckpt.CaptureCache(c.WarmI),
		DCache:  ckpt.CaptureCache(c.WarmD),
	}
	ck.SetArchFlags(c.F)
	if c.WarmPred != nil {
		ck.Pred = ckpt.CapturePred(c.WarmPred)
	}
	return ck
}

// Restore overwrites the CPU's architected state with the checkpoint. The
// decode cache is dropped (the restored image may differ) and any attached
// warm units are reset, then warmed from the checkpoint if it carries state.
func (c *CPU) Restore(ck *ckpt.Checkpoint) error {
	c.R = ck.R
	c.F = ck.ArchFlags()
	c.Instret = ck.Instret
	c.Exited = ck.Exited
	c.Exit = ck.Exit
	c.Output = append(c.Output[:0], ck.Output...)
	c.Text = append(c.Text[:0], ck.Text...)
	ckpt.RestoreMem(c.Mem, ck.Mem)
	clear(c.decode)
	if err := ckpt.RestoreCache(c.WarmI, ck.ICache); err != nil {
		return err
	}
	if err := ckpt.RestoreCache(c.WarmD, ck.DCache); err != nil {
		return err
	}
	if c.WarmPred != nil {
		if err := ckpt.RestorePred(c.WarmPred, ck.Pred); err != nil {
			return err
		}
	}
	return nil
}

// NewFromCheckpoint builds a CPU directly from a checkpoint, with no program
// image (the checkpointed memory is the image).
func NewFromCheckpoint(ck *ckpt.Checkpoint) (*CPU, error) {
	c := &CPU{Mem: mem.New(), decode: make(map[uint32]*arm.Instr)}
	if err := c.Restore(ck); err != nil {
		return nil, err
	}
	return c, nil
}
