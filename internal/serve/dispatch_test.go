package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rcpn/internal/batch"
	"rcpn/internal/rpc"
)

// fakeDispatcher scripts Dispatch outcomes for serve-layer tests; the real
// implementation lives in internal/shard.
type fakeDispatcher struct {
	live     atomic.Int64
	calls    atomic.Int64
	dispatch func(call int64, id string, spec []byte) (*rpc.Result, error)
}

func (f *fakeDispatcher) Dispatch(ctx context.Context, id string, spec []byte,
	progress func(int64, uint64)) (*rpc.Result, error) {
	return f.dispatch(f.calls.Add(1), id, spec)
}

func (f *fakeDispatcher) Live() int { return int(f.live.Load()) }

// resultField extracts the result JSON from a GET /v1/jobs/{id} body,
// compacted: writeJSON re-indents the stored payload on the way out (for
// sharded and local results alike), so value comparison is compact-form.
func resultField(t *testing.T, body []byte) string {
	t.Helper()
	var v struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad job body %q: %v", body, err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, v.Result); err != nil {
		t.Fatalf("result field is not JSON: %v", err)
	}
	return buf.String()
}

// TestDispatchRemoteResult: with a Dispatcher configured, the job's served
// result is the worker's payload verbatim, not a local rendering.
func TestDispatchRemoteResult(t *testing.T) {
	payload := `{"schema":"rcpn-batch/v1","from":"worker"}`
	d := &fakeDispatcher{dispatch: func(_ int64, id string, spec []byte) (*rpc.Result, error) {
		return &rpc.Result{ID: id, Cycles: 42, Instret: 21, Payload: []byte(payload)}, nil
	}}
	d.live.Store(1)
	_, hs := newTestServer(t, Config{Workers: 1, Dispatcher: d})

	r := submit(t, hs.URL, crcSpec)
	body := waitState(t, hs.URL, r.ID)
	if !strings.Contains(string(body), `"state": "done"`) {
		t.Fatalf("job not done: %s", body)
	}
	if got := resultField(t, body); got != payload {
		t.Fatalf("served result %q, want the worker payload %q", got, payload)
	}
	if got := metric(t, hs.URL, "rcpn_shard_dispatched_total"); got != 1 {
		t.Fatalf("dispatched_total = %v, want 1", got)
	}
	if code, body := get(t, hs.URL+"/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz with live workers = %d %s, want ok", code, body)
	}
}

// TestDispatchRemoteFailure: a worker-reported terminal failure keeps the
// worker's diagnostic payload and lands the job in failed, not in retry.
func TestDispatchRemoteFailure(t *testing.T) {
	payload := `{"schema":"rcpn-batch/v1","error":"deterministic failure"}`
	d := &fakeDispatcher{dispatch: func(_ int64, id string, spec []byte) (*rpc.Result, error) {
		return &rpc.Result{ID: id, Failed: true, Payload: []byte(payload)}, nil
	}}
	d.live.Store(1)
	_, hs := newTestServer(t, Config{Workers: 1, Dispatcher: d})

	r := submit(t, hs.URL, crcSpec)
	body := waitState(t, hs.URL, r.ID)
	if !strings.Contains(string(body), `"state": "failed"`) {
		t.Fatalf("job not failed: %s", body)
	}
	if got := resultField(t, body); got != payload {
		t.Fatalf("served result %q, want the worker diagnostic %q", got, payload)
	}
	if d.calls.Load() != 1 {
		t.Fatalf("dispatch calls = %d, want 1 (terminal failures must not retry)", d.calls.Load())
	}
}

// TestDispatchNoWorkersFallsBackLocal: an empty ring serves the job by
// executing locally — same bytes as a dispatcher-less server — while
// /healthz reports degraded (still 200: the instance works).
func TestDispatchNoWorkersFallsBackLocal(t *testing.T) {
	d := &fakeDispatcher{dispatch: func(int64, string, []byte) (*rpc.Result, error) {
		return nil, rpc.ErrNoWorkers
	}}
	_, hs := newTestServer(t, Config{Workers: 1, Dispatcher: d})
	_, ref := newTestServer(t, Config{Workers: 1})

	r := submit(t, hs.URL, crcSpec)
	got := resultField(t, waitState(t, hs.URL, r.ID))
	rr := submit(t, ref.URL, crcSpec)
	want := resultField(t, waitState(t, ref.URL, rr.ID))
	if got != want {
		t.Fatalf("local-fallback bytes differ from single-process bytes:\n%s\nvs\n%s", got, want)
	}
	if n := metric(t, hs.URL, "rcpn_shard_local_fallback_total"); n != 1 {
		t.Fatalf("local_fallback_total = %v, want 1", n)
	}
	code, body := get(t, hs.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"degraded"`) {
		t.Fatalf("healthz with empty ring = %d %s, want 200 degraded", code, body)
	}
}

// TestDispatchTransientErrorRetries: a failed dispatch (worker died mid-
// job) re-enters the retry machinery; the next attempt re-dispatches and
// the job completes with the reassigned worker's bytes.
func TestDispatchTransientErrorRetries(t *testing.T) {
	payload := `{"schema":"rcpn-batch/v1","attempt":"second"}`
	d := &fakeDispatcher{dispatch: func(call int64, id string, spec []byte) (*rpc.Result, error) {
		if call == 1 {
			return nil, context.DeadlineExceeded // worker lost mid-job
		}
		return &rpc.Result{ID: id, Cycles: 7, Payload: []byte(payload)}, nil
	}}
	d.live.Store(2)
	_, hs := newTestServer(t, Config{
		Workers: 1, Dispatcher: d,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	})

	r := submit(t, hs.URL, crcSpec)
	body := waitState(t, hs.URL, r.ID)
	if !strings.Contains(string(body), `"state": "done"`) {
		t.Fatalf("job not done after reassignment: %s", body)
	}
	if got := resultField(t, body); got != payload {
		t.Fatalf("served result %q, want reassigned worker payload %q", got, payload)
	}
	if got := metric(t, hs.URL, "rcpn_jobs_retried_total"); got != 1 {
		t.Fatalf("retried_total = %v, want 1", got)
	}
	if got := metric(t, hs.URL, "rcpn_shard_dispatch_errors_total"); got != 1 {
		t.Fatalf("dispatch_errors_total = %v, want 1", got)
	}
}

// postHdr is post with extra request headers.
func postHdr(t *testing.T, url, body string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, data
}

// TestQuota429RetryAfter: an exhausted tenant bucket answers 429 with a
// positive integer Retry-After; other tenants are unaffected. (Refill
// arithmetic is covered clock-controlled in TestQuotaRefill.)
func TestQuota429RetryAfter(t *testing.T) {
	// Slow refill so test-runner scheduling jitter cannot hand the tenant
	// a fresh token between requests.
	_, hs := newTestServer(t, Config{Workers: 1, QuotaRate: 0.2, QuotaBurst: 2})

	heavy := map[string]string{"X-Tenant": "heavy"}
	for i := 0; i < 2; i++ {
		if code, _, data := postHdr(t, hs.URL, crcSpec, heavy); code != http.StatusAccepted {
			t.Fatalf("within-burst submit %d = %d: %s", i, code, data)
		}
	}
	code, hdr, data := postHdr(t, hs.URL, crcSpec, heavy)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit = %d, want 429: %s", code, data)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("quota 429 Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	if !strings.Contains(string(data), "quota") {
		t.Fatalf("quota rejection body %q does not name the quota", data)
	}
	// Another tenant (and the anonymous default) still gets in.
	if code, _, data := postHdr(t, hs.URL, crcSpec, map[string]string{"X-Tenant": "light"}); code != http.StatusAccepted {
		t.Fatalf("other tenant = %d: %s", code, data)
	}
	if code, _, data := postHdr(t, hs.URL, crcSpec, nil); code != http.StatusAccepted {
		t.Fatalf("anonymous tenant = %d: %s", code, data)
	}
	if got := metric(t, hs.URL, "rcpn_rejected_quota_total"); got != 1 {
		t.Fatalf("rejected_quota_total = %v, want 1", got)
	}
}

// TestQuotaRefill drives the bucket arithmetic with a synthetic clock:
// exhaustion, partial refill (still refused, shrinking wait), whole-token
// refill, and the burst cap.
func TestQuotaRefill(t *testing.T) {
	q := newQuotas(0.5, 2) // one token per 2s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("t", now); !ok {
			t.Fatalf("burst submit %d refused", i)
		}
	}
	ok, wait := q.allow("t", now)
	if ok || wait != 2*time.Second {
		t.Fatalf("empty bucket: ok=%v wait=%v, want refused with 2s", ok, wait)
	}
	// Half a token back after 1s: still refused, wait now 1s.
	ok, wait = q.allow("t", now.Add(time.Second))
	if ok || wait != time.Second {
		t.Fatalf("half-refilled: ok=%v wait=%v, want refused with 1s", ok, wait)
	}
	if ok, _ = q.allow("t", now.Add(3*time.Second)); !ok {
		t.Fatal("whole token refilled but still refused")
	}
	// A long idle caps at burst, not unbounded credit.
	if ok, _ = q.allow("t", now.Add(time.Hour)); !ok {
		t.Fatal("idle tenant refused")
	}
	if ok, _ = q.allow("t", now.Add(time.Hour)); !ok {
		t.Fatal("second burst token refused")
	}
	if ok, _ = q.allow("t", now.Add(time.Hour)); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

// TestPrioritySubmission: X-Priority: low routes jobs to the bulk queue
// level; with the worker busy they wait there, visible on the metrics
// page, and drain after the interactive work.
func TestPrioritySubmission(t *testing.T) {
	release := make(chan struct{})
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	s.buildOverride = func(*JobSpec) (batch.Stepper, error) {
		return &blockingStepper{release: release}, nil
	}

	r1 := submit(t, hs.URL, specN(1)) // claims the only worker
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, hs.URL, `rcpn_jobs{state="running"}`) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _, data := postHdr(t, hs.URL, specN(2), map[string]string{"X-Priority": "low"}); code != http.StatusAccepted {
		t.Fatalf("low-priority submit = %d: %s", code, data)
	}
	if got := metric(t, hs.URL, `rcpn_queue_depth_by_priority{priority="low"}`); got != 1 {
		t.Fatalf("low-priority depth = %v, want 1", got)
	}
	if got := metric(t, hs.URL, `rcpn_queue_depth_by_priority{priority="high"}`); got != 0 {
		t.Fatalf("high-priority depth = %v, want 0", got)
	}
	close(release)
	waitState(t, hs.URL, r1.ID)
}
