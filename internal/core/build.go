package core

import (
	"fmt"
	"sort"
	"strings"
)

// Build compiles the model for simulation (the paper's "simulator
// generation" step, performed before program simulation begins and therefore
// free at run time):
//
//  1. validates the net,
//  2. computes the reverse topological evaluation order of places over the
//     instruction-flow arcs (instruction tokens never go through circular
//     paths, so this order exists; self-loop "stay" transitions are exempt),
//  3. marks as two-list every place that is read through a feedback query
//     (a Reads arc) by a transition evaluated after it — exactly the places
//     for which reverse-topological evaluation cannot guarantee
//     read-before-write (§4, Fig. 8),
//  4. extracts sorted_transitions[place, class] (Fig. 6).
func (n *Net) Build() error {
	if n.built {
		return fmt.Errorf("core: net already built")
	}
	if err := n.validate(); err != nil {
		return err
	}
	if err := n.computeOrder(); err != nil {
		return err
	}
	n.markTwoList()
	n.calculateSortedTransitions()
	for _, t := range n.transitions {
		t.needCap = t.To != t.From && !t.To.End && !t.To.Stage.Unlimited()
		t.capOf = t.To.Stage
		t.hasRes = len(t.ResIn)+len(t.ResOut) > 0
	}
	// Event-driven scheduling structures: each place learns its slot in the
	// evaluation order (the active masks are indexed by it), and the wakeup
	// wheel gets one bucket per cycle in its horizon.
	for i, p := range n.order {
		p.pos = i
	}
	words := (len(n.places) + 63) / 64
	if words == 0 {
		words = 1
	}
	n.activeMask = make([]uint64, words)
	n.nextMask = make([]uint64, words)
	n.wheel = make([][]int32, wheelSpan)
	n.built = true
	return nil
}

// MustBuild is Build, panicking on model errors.
func (n *Net) MustBuild() {
	if err := n.Build(); err != nil {
		panic(err)
	}
}

func (n *Net) validate() error {
	names := map[string]bool{}
	for _, p := range n.places {
		if names["p:"+p.Name] {
			return fmt.Errorf("core: duplicate place name %q", p.Name)
		}
		names["p:"+p.Name] = true
		if p.Delay < 0 {
			return fmt.Errorf("core: place %s: negative delay", p.Name)
		}
		if p.End && !p.Stage.Unlimited() {
			return fmt.Errorf("core: end place %s must use an unlimited stage", p.Name)
		}
	}
	for _, t := range n.transitions {
		if t.Delay < 0 {
			return fmt.Errorf("core: transition %s: negative delay", t.Name)
		}
		if t.From != nil && t.From.End {
			return fmt.Errorf("core: transition %s leaves end place %s", t.Name, t.From.Name)
		}
		if t.From == nil {
			return fmt.Errorf("core: transition %s has no input place (use AddSource for generators)", t.Name)
		}
		for _, r := range t.ResOut {
			if r.Stage.Unlimited() {
				return fmt.Errorf("core: transition %s produces reservation tokens into unlimited place %s", t.Name, r.Name)
			}
		}
	}
	return nil
}

// computeOrder topologically sorts places over instruction-flow arcs
// From -> To (self-loops excluded) and stores the order with downstream
// places first, so that a stage empties before its upstream stage tries to
// fill it and tokens from the previous cycle are read before being
// overwritten.
func (n *Net) computeOrder() error {
	np := len(n.places)
	succ := make([][]int, np) // From -> To edges
	indeg := make([]int, np)  // in reversed orientation: To counts as source
	edge := map[[2]int]bool{}
	for _, t := range n.transitions {
		if t.From == nil || t.From == t.To {
			continue
		}
		k := [2]int{t.From.id, t.To.id}
		if edge[k] {
			continue
		}
		edge[k] = true
		succ[t.From.id] = append(succ[t.From.id], t.To.id)
		indeg[t.From.id]++ // reversed: From depends on To
	}
	// Kahn over reversed edges (To before From). Seed with places no token
	// leaves (end places, sinks), keeping creation order for determinism.
	var queue []int
	for _, p := range n.places {
		if indeg[p.id] == 0 {
			queue = append(queue, p.id)
		}
	}
	// pred in reversed orientation: To -> From
	pred := make([][]int, np)
	for from, tos := range succ {
		for _, to := range tos {
			pred[to] = append(pred[to], from)
		}
	}
	order := make([]*Place, 0, np)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, n.places[id])
		for _, from := range pred[id] {
			indeg[from]--
			if indeg[from] == 0 {
				queue = append(queue, from)
			}
		}
	}
	if len(order) != np {
		var cyc []string
		for _, p := range n.places {
			if indeg[p.id] > 0 {
				cyc = append(cyc, p.Name)
			}
		}
		return fmt.Errorf("core: instruction tokens must not flow in cycles; cyclic places: %s",
			strings.Join(cyc, ", "))
	}
	n.order = order
	return nil
}

// markTwoList finds places whose contents are inspected through feedback
// (Reads arcs) by transitions that run after the place was already
// processed in this cycle — i.e. the read place appears *earlier* in the
// evaluation order than the reading transition's input place. Arrivals into
// such places must be staged until the next cycle to preserve
// beginning-of-cycle semantics.
func (n *Net) markTwoList() {
	pos := make([]int, len(n.places))
	for i, p := range n.order {
		pos[p.id] = i
	}
	for _, t := range n.transitions {
		for _, read := range t.Reads {
			if t.From != nil && pos[read.id] < pos[t.From.id] {
				read.TwoList = true
			}
		}
	}
	n.twoList = n.twoList[:0]
	for _, p := range n.places {
		if p.TwoList {
			n.twoList = append(n.twoList, p)
		}
	}
}

// calculateSortedTransitions builds the static per-(place, class) transition
// lists of Fig. 6. AnyClass (instruction-independent) transitions are merged
// into every class's list at their arc priority.
func (n *Net) calculateSortedTransitions() {
	n.sorted = make([][][]*Transition, len(n.places))
	for pid := range n.places {
		n.sorted[pid] = make([][]*Transition, n.numClasses)
	}
	for _, t := range n.transitions {
		if t.From == nil {
			continue
		}
		if t.Class == AnyClass {
			for c := 0; c < n.numClasses; c++ {
				n.sorted[t.From.id][c] = append(n.sorted[t.From.id][c], t)
			}
		} else {
			n.sorted[t.From.id][t.Class] = append(n.sorted[t.From.id][t.Class], t)
		}
	}
	for pid := range n.places {
		for c := 0; c < n.numClasses; c++ {
			list := n.sorted[pid][c]
			sort.SliceStable(list, func(i, j int) bool {
				return list[i].Priority < list[j].Priority
			})
		}
		n.places[pid].out = n.sorted[pid]
	}
}

// SortedTransitions returns the compiled transition list for (place, class);
// it is exposed for tests, the DOT exporter and the CPN converter.
func (n *Net) SortedTransitions(p *Place, c ClassID) []*Transition {
	if !n.built || c < 0 || int(c) >= n.numClasses {
		return nil
	}
	return n.sorted[p.id][c]
}
