package rcpn

// Observability determinism tests — the properties that make obsv
// artifacts golden-testable:
//
//  1. Partition identity: with profiling on, every engine accounts each
//     (stage, cycle) slot exactly once, so per stage
//     occupied + Σ stalls == cycles — equivalently, total stall cycles sum
//     to (cycles × stages − occupied cycles). This is StallProfile.Validate,
//     asserted here on every engine over every workload kernel.
//  2. Run-to-run determinism: two identical instrumented runs produce
//     byte-identical Chrome JSON traces, byte-identical binary traces and
//     identical stall tables. Nothing in the artifacts depends on wall
//     clock or iteration order.
//  3. Zero observation effect: enabling the profile and the tracer must
//     not change the simulated outcome — same cycles, same instructions as
//     an uninstrumented run.

import (
	"bytes"
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/diffrun"
	"rcpn/internal/obsv"
	"rcpn/internal/workload"
)

// runInstrumented builds engine e on p, attaches a profile and a tracer
// (ring capacity cap; cap 0 = no tracer), runs to completion, and returns
// the outcome.
func runInstrumented(t *testing.T, e diffrun.Engine, p *arm.Program, cap int) (
	cycles int64, instret uint64, prof *obsv.StallProfile, tr *obsv.Tracer) {
	t.Helper()
	st, _, err := e.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := st.(obsv.Instrumentable)
	if !ok {
		t.Fatalf("engine %s stepper is not obsv.Instrumentable", e.Name)
	}
	prof = ins.EnableProfile()
	if cap > 0 {
		tr = obsv.NewTracer(cap)
		ins.AttachTrace(tr)
	}
	done, err := st.StepTo(noLimit)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("run hit the position limit without exiting")
	}
	cycles, instret = st.Progress()
	return cycles, instret, prof, tr
}

// TestStallPartitionIdentity: every engine × every kernel, the slot
// partition must hold exactly. For the cycle engines this pins the stall
// taxonomy to the timing model; for the functional engines it pins the
// degenerate one-slot-per-instruction profile.
func TestStallPartitionIdentity(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range diffrun.Engines() {
				e := e
				t.Run(e.Name, func(t *testing.T) {
					_, _, prof, _ := runInstrumented(t, e, p, 0)
					if err := prof.Validate(); err != nil {
						t.Fatal(err)
					}
					if prof.Cycles == 0 {
						t.Fatal("profile accounted no cycles")
					}
				})
			}
		})
	}
}

// TestObservabilityDeterministic: identical instrumented runs yield
// byte-identical artifacts, and instrumentation does not perturb the run.
func TestObservabilityDeterministic(t *testing.T) {
	const ring = 1 << 16
	for _, e := range diffrun.Engines() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			p, err := workload.ByName("crc").Program(1)
			if err != nil {
				t.Fatal(err)
			}

			// Baseline: no instrumentation at all.
			st, _, err := e.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			if done, err := st.StepTo(noLimit); err != nil || !done {
				t.Fatalf("bare run: done=%v err=%v", done, err)
			}
			bareCycles, bareInstret := st.Progress()

			c1, i1, prof1, tr1 := runInstrumented(t, e, p, ring)
			c2, i2, prof2, tr2 := runInstrumented(t, e, p, ring)

			if c1 != bareCycles || i1 != bareInstret {
				t.Fatalf("observation effect: instrumented (%d cycles, %d instret) vs bare (%d, %d)",
					c1, i1, bareCycles, bareInstret)
			}
			if c1 != c2 || i1 != i2 {
				t.Fatalf("nondeterministic run: (%d, %d) vs (%d, %d)", c1, i1, c2, i2)
			}
			if got, want := prof1.Table(), prof2.Table(); got != want {
				t.Fatalf("stall tables differ between identical runs:\n%s----\n%s", got, want)
			}

			var json1, json2, bin1, bin2 bytes.Buffer
			if err := tr1.WriteChromeJSON(&json1); err != nil {
				t.Fatal(err)
			}
			if err := tr2.WriteChromeJSON(&json2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(json1.Bytes(), json2.Bytes()) {
				t.Fatal("Chrome JSON traces differ between identical runs")
			}
			if err := tr1.WriteBinary(&bin1); err != nil {
				t.Fatal(err)
			}
			if err := tr2.WriteBinary(&bin2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bin1.Bytes(), bin2.Bytes()) {
				t.Fatal("binary traces differ between identical runs")
			}
			if tr1.Len() == 0 {
				t.Fatal("tracer captured no events")
			}

			// The binary round-trips.
			rt, err := obsv.ReadBinary(bytes.NewReader(bin1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if rt.Len() != tr1.Len() || rt.Dropped() != tr1.Dropped() {
				t.Fatalf("binary round-trip: %d events/%d dropped, want %d/%d",
					rt.Len(), rt.Dropped(), tr1.Len(), tr1.Dropped())
			}
		})
	}
}
