package mem

import (
	"reflect"
	"testing"
)

// TestForEachPageCanonical: only populated, non-zero pages appear, in
// ascending order — the same canonical set Digest hashes.
func TestForEachPageCanonical(t *testing.T) {
	m := New()
	m.Write32(5*PageBytes+4, 0xdeadbeef)
	m.Write32(1*PageBytes, 0x1234)
	m.Write32(9*PageBytes+96, 1)
	// A touched-then-zeroed page must not appear.
	m.Write32(3*PageBytes, 7)
	m.Write32(3*PageBytes, 0)

	var bases []uint32
	m.ForEachPage(func(base uint32, data []byte) {
		bases = append(bases, base)
		if len(data) != PageBytes {
			t.Fatalf("page %#x: %d bytes", base, len(data))
		}
	})
	want := []uint32{1 * PageBytes, 5 * PageBytes, 9 * PageBytes}
	if !reflect.DeepEqual(bases, want) {
		t.Fatalf("bases %#v, want %#v", bases, want)
	}
}

// TestSetPageRoundTrip: capture -> Reset -> SetPage reproduces the digest.
func TestSetPageRoundTrip(t *testing.T) {
	m := New()
	for i := uint32(0); i < 2000; i += 7 {
		m.Write32(i*52, i*i+1)
	}
	want := m.Digest()

	type page struct {
		base uint32
		data []byte
	}
	var pages []page
	m.ForEachPage(func(base uint32, data []byte) {
		pages = append(pages, page{base, append([]byte(nil), data...)})
	})

	m.Reset()
	if m.Digest() == want {
		t.Fatal("reset did not change a populated memory's digest")
	}
	for _, p := range pages {
		m.SetPage(p.base, p.data)
	}
	if m.Digest() != want {
		t.Fatal("digest differs after capture/reset/restore")
	}
}

// TestSetPageShortData: a short page is zero-filled to the page size.
func TestSetPageShortData(t *testing.T) {
	m := New()
	m.Write32(PageBytes+PageBytes-4, 0xffffffff)
	m.SetPage(PageBytes, []byte{1, 2})
	if got := m.Read8(PageBytes); got != 1 {
		t.Fatalf("byte 0 = %d", got)
	}
	if got := m.Read32(PageBytes + PageBytes - 4); got != 0 {
		t.Fatalf("tail not zero-filled: %#x", got)
	}
}

func TestCopyFrom(t *testing.T) {
	a := New()
	for i := uint32(0); i < 300; i++ {
		a.Write32(i*4096, i+1)
	}
	b := New()
	b.Write32(77, 1) // pre-existing content must be dropped
	b.CopyFrom(a)
	if a.Digest() != b.Digest() {
		t.Fatal("CopyFrom digest mismatch")
	}
	// The copy must be independent storage.
	b.Write32(0, 0xabcdef)
	if a.Read32(0) == 0xabcdef {
		t.Fatal("CopyFrom aliased the source pages")
	}
}

// TestCacheStateRoundTrip: a cache restored from a snapshot behaves
// identically to the donor on the same access stream.
func TestCacheStateRoundTrip(t *testing.T) {
	cfg := CacheConfig{Name: "c", Sets: 8, Ways: 2, LineBytes: 32,
		HitLatency: 1, MissLatency: 20}
	donor := MustCache(cfg)
	for i := uint32(0); i < 500; i++ {
		donor.Access(i * 52 % 4096)
	}
	st := donor.State()

	twin := MustCache(cfg)
	if err := twin.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 500; i++ {
		addr := i * 97 % 4096
		if a, b := donor.Access(addr), twin.Access(addr); a != b {
			t.Fatalf("access %#x: donor latency %d, twin %d", addr, a, b)
		}
	}
	if donor.Stats != twin.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", donor.Stats, twin.Stats)
	}

	// State must be a copy, not an alias.
	st2 := donor.State()
	st2.Tags[0] = ^st2.Tags[0]
	if donor.State().Tags[0] == st2.Tags[0] {
		t.Fatal("State aliases live cache storage")
	}
}

// TestCacheSetStateGeometry: snapshots only restore into matching geometry.
func TestCacheSetStateGeometry(t *testing.T) {
	a := MustCache(CacheConfig{Name: "a", Sets: 8, Ways: 2, LineBytes: 32,
		HitLatency: 1, MissLatency: 20})
	b := MustCache(CacheConfig{Name: "b", Sets: 4, Ways: 2, LineBytes: 32,
		HitLatency: 1, MissLatency: 20})
	if err := b.SetState(a.State()); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// TestCacheResetSymmetry: Reset returns a used cache to its
// post-construction state.
func TestCacheResetSymmetry(t *testing.T) {
	cfg := CacheConfig{Name: "c", Sets: 4, Ways: 4, LineBytes: 16,
		HitLatency: 1, MissLatency: 10}
	used := MustCache(cfg)
	for i := uint32(0); i < 100; i++ {
		used.Access(i * 64)
	}
	used.Reset()
	if !reflect.DeepEqual(used.State(), MustCache(cfg).State()) {
		t.Fatal("reset cache state differs from a fresh cache")
	}
}
