package rcpn

// Checkpoint handoff tests — the contract internal/ckpt exists to uphold:
//
//  1. Bit-exact resume: for every cycle simulator, a run that checkpoints at
//     a drained boundary and restores into a *fresh* instance must match the
//     uninterrupted donor in full architectural state AND in cycles simulated
//     after the handoff. Any absolute-time residue (unit free stamps, stale
//     register-file generations, leftover latches) breaks the cycle count
//     first, which is why that comparison is the sharp edge here.
//  2. Cross-model handoff: an ISS fast-forward checkpoint (with functional
//     warming) restores into every detailed model and the completed run ends
//     in the ISS-golden architectural state.
//  3. Sampled accuracy: pooled CPI over K checkpointed intervals lands near
//     the full-run CPI (the sampling methodology the subsystem exists for).

import (
	"math"
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/ckpt"
	"rcpn/internal/diffrun"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/mem"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
	"rcpn/internal/workload"
)

// csim wraps one cycle simulator instance behind uniform closures.
type csim struct {
	runN     func(n uint64) error
	run      func() error
	cycles   func() int64
	instret  func() uint64
	snapshot func() (*ckpt.Checkpoint, error)
	restore  func(*ckpt.Checkpoint) error
	state    func() diffrun.State
}

// cycleSims returns a builder per simulator; each call builds a fresh
// instance on p.
func cycleSims() map[string]func(p *arm.Program) *csim {
	return map[string]func(p *arm.Program) *csim{
		"strongarm": func(p *arm.Program) *csim {
			m := machine.NewStrongARM(p, machine.Config{})
			return &csim{
				runN:     func(n uint64) error { return m.RunN(n, 0) },
				run:      func() error { return m.Run(0) },
				cycles:   func() int64 { return m.Net.CycleCount() },
				instret:  func() uint64 { return m.Instret },
				snapshot: m.Checkpoint,
				restore:  m.Restore,
				state: func() diffrun.State {
					return diffrun.StateOf(m.Reg, m.Flags(), m.Mem, m.Instret, m.ExitCode, m.Output, m.Text)
				},
			}
		},
		"xscale": func(p *arm.Program) *csim {
			m := machine.NewXScale(p, machine.Config{})
			return &csim{
				runN:     func(n uint64) error { return m.RunN(n, 0) },
				run:      func() error { return m.Run(0) },
				cycles:   func() int64 { return m.Net.CycleCount() },
				instret:  func() uint64 { return m.Instret },
				snapshot: m.Checkpoint,
				restore:  m.Restore,
				state: func() diffrun.State {
					return diffrun.StateOf(m.Reg, m.Flags(), m.Mem, m.Instret, m.ExitCode, m.Output, m.Text)
				},
			}
		},
		"pipe5": func(p *arm.Program) *csim {
			s := pipe5.New(p, pipe5.Config{})
			return &csim{
				runN:     func(n uint64) error { return s.RunN(n, 0) },
				run:      func() error { return s.Run(0) },
				cycles:   func() int64 { return s.Cycles },
				instret:  func() uint64 { return s.Instret },
				snapshot: s.Checkpoint,
				restore:  s.Restore,
				state: func() diffrun.State {
					return diffrun.StateOf(func(r arm.Reg) uint32 { return s.R[r] },
						s.F, s.Mem, s.Instret, s.ExitCode, s.Output, s.Text)
				},
			}
		},
		"ssim": func(p *arm.Program) *csim {
			s := ssim.New(p, ssim.Config{})
			return &csim{
				runN:     func(n uint64) error { return s.RunN(n, 0) },
				run:      func() error { return s.Run(0) },
				cycles:   func() int64 { return s.Cycles },
				instret:  func() uint64 { return s.Instret },
				snapshot: s.Checkpoint,
				restore:  s.Restore,
				state: func() diffrun.State {
					return diffrun.StateOf(s.Reg, s.Flags(), s.Mem(), s.Instret, s.ExitCode(), s.Output(), s.Text())
				},
			}
		},
	}
}

// TestBitExactResume: donor runs N instructions, checkpoints at the drained
// boundary, keeps running to completion; a fresh instance restores the
// (codec-round-tripped) checkpoint and runs to completion. Post-handoff cycle
// counts and final architectural state must match exactly.
func TestBitExactResume(t *testing.T) {
	for _, wname := range []string{"crc", "adpcm"} {
		p, err := workload.ByName(wname).Program(1)
		if err != nil {
			t.Fatal(err)
		}
		for name, build := range cycleSims() {
			t.Run(name+"/"+wname, func(t *testing.T) {
				donor := build(p)
				if err := donor.runN(5000); err != nil {
					t.Fatal(err)
				}
				boundaryCycles := donor.cycles()
				boundaryInstret := donor.instret()
				ck, err := donor.snapshot()
				if err != nil {
					t.Fatal(err)
				}
				data, err := ck.Bytes()
				if err != nil {
					t.Fatal(err)
				}
				if err := donor.run(); err != nil {
					t.Fatal(err)
				}
				afterCycles := donor.cycles() - boundaryCycles
				afterInstret := donor.instret() - boundaryInstret

				decoded, err := ckpt.FromBytes(data)
				if err != nil {
					t.Fatal(err)
				}
				resumed := build(p)
				if err := resumed.restore(decoded); err != nil {
					t.Fatal(err)
				}
				if got := resumed.instret(); got != boundaryInstret {
					t.Fatalf("restored instret %d, boundary %d", got, boundaryInstret)
				}
				if err := resumed.run(); err != nil {
					t.Fatal(err)
				}
				if got := resumed.cycles(); got != afterCycles {
					t.Errorf("post-handoff cycles %d, donor %d — timing not bit-exact", got, afterCycles)
				}
				if got := resumed.instret() - boundaryInstret; got != afterInstret {
					t.Errorf("post-handoff instret %d, donor %d", got, afterInstret)
				}
				diffState(t, name+"(resumed)", resumed.state(), donor.state())
			})
		}
	}
}

// TestISSHandoff: fast-forward on the functional ISS with warming, hand the
// checkpoint to every detailed model, run to completion; the final
// architectural state must match the ISS golden run.
func TestISSHandoff(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	golden := iss.New(p, 0)
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}
	ref := diffrun.StateOf(func(r arm.Reg) uint32 { return golden.R[r] },
		golden.F, golden.Mem, golden.Instret, golden.Exit, golden.Output, golden.Text)

	warms := map[string]func(c *iss.CPU){
		"strongarm": func(c *iss.CPU) {
			h := mem.DefaultStrongARM()
			c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, bpred.NewNotTaken()
		},
		"xscale": func(c *iss.CPU) {
			h := mem.DefaultXScale()
			c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, bpred.NewBimodal(128)
		},
		"pipe5": func(c *iss.CPU) {
			h := mem.DefaultStrongARM()
			c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, bpred.NewNotTaken()
		},
		"ssim": func(c *iss.CPU) {
			h := mem.DefaultStrongARM()
			c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, bpred.NewNotTaken()
		},
	}
	for name, build := range cycleSims() {
		t.Run(name, func(t *testing.T) {
			ff := iss.New(p, 0)
			warms[name](ff)
			if _, err := ff.RunN(5000); err != nil {
				t.Fatal(err)
			}
			ck := ff.Checkpoint()
			if ck.ICache == nil || ck.DCache == nil {
				t.Fatal("functional warming produced no cache state")
			}
			s := build(p)
			if err := s.restore(ck); err != nil {
				t.Fatal(err)
			}
			if err := s.run(); err != nil {
				t.Fatal(err)
			}
			diffState(t, name, s.state(), ref)
		})
	}
}

// TestSampledCPIAccuracy: the sampled-simulation estimate (pooled over K
// checkpointed intervals with functional warming) must land within a
// documented bound of the full-run CPI. The bound is deliberately loose —
// K=4 tiny intervals on a tiny kernel — the point is methodological sanity,
// not SMARTS-grade confidence intervals (EXPERIMENTS.md reports measured
// errors of a few percent).
func TestSampledCPIAccuracy(t *testing.T) {
	const (
		k      = 4
		ilen   = 10_000
		bound  = 15.0 // percent
		wlName = "crc"
	)
	p, err := workload.ByName(wlName).Program(1)
	if err != nil {
		t.Fatal(err)
	}
	golden := iss.New(p, 0)
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}
	total := golden.Instret

	for _, name := range []string{"strongarm", "pipe5"} {
		t.Run(name, func(t *testing.T) {
			build := cycleSims()[name]
			full := build(p)
			if err := full.run(); err != nil {
				t.Fatal(err)
			}
			fullCPI := float64(full.cycles()) / float64(full.instret())

			var cyc int64
			var ins uint64
			for i := 0; i < k; i++ {
				ff := iss.New(p, 0)
				h := mem.DefaultStrongARM()
				ff.WarmI, ff.WarmD, ff.WarmPred = h.I, h.D, bpred.NewNotTaken()
				if _, err := ff.RunN(total * uint64(i) / k); err != nil {
					t.Fatal(err)
				}
				s := build(p)
				if err := s.restore(ff.Checkpoint()); err != nil {
					t.Fatal(err)
				}
				base := s.instret()
				if err := s.runN(ilen); err != nil {
					t.Fatal(err)
				}
				cyc += s.cycles()
				ins += s.instret() - base
			}
			sampled := float64(cyc) / float64(ins)
			errPct := 100 * math.Abs(sampled-fullCPI) / fullCPI
			if errPct > bound {
				t.Errorf("sampled CPI %.3f vs full %.3f: error %.1f%% exceeds %v%%",
					sampled, fullCPI, errPct, bound)
			}
		})
	}
}

// TestCheckpointRequiresDrained: snapshotting straight after construction is
// legal (a fresh simulator is drained); the error paths fire on geometry
// mismatches, not on fresh instances.
func TestCheckpointRequiresDrained(t *testing.T) {
	p, err := workload.ByName("crc").Program(1)
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range cycleSims() {
		s := build(p)
		if _, err := s.snapshot(); err != nil {
			t.Errorf("%s: fresh simulator not checkpointable: %v", name, err)
		}
	}
	// A warm snapshot from mismatched cache geometry must be refused.
	ff := iss.New(p, 0)
	ff.WarmI = mem.MustCache(mem.CacheConfig{Name: "tiny", Sets: 2, Ways: 1,
		LineBytes: 16, HitLatency: 1, MissLatency: 10})
	if _, err := ff.RunN(100); err != nil {
		t.Fatal(err)
	}
	m := machine.NewStrongARM(p, machine.Config{})
	if err := m.Restore(ff.Checkpoint()); err == nil {
		t.Error("geometry-mismatched warm state restored without error")
	}
}
