package arm

import (
	"strconv"
	"strings"
	"testing"
)

func asmOne(t *testing.T, line string) *Instr {
	t.Helper()
	p, err := Assemble(line+"\n", 0x8000)
	if err != nil {
		t.Fatalf("assemble %q: %v", line, err)
	}
	ins := Decode(p.Words()[0], 0x8000)
	return &ins
}

func TestAssembleDataProc(t *testing.T) {
	ins := asmOne(t, "adds r1, r2, #10")
	if ins.Op != OpADD || !ins.SetFlags || ins.Rd != 1 || ins.Rn != 2 || !ins.HasImm || ins.Imm != 10 {
		t.Fatalf("adds: %+v", ins)
	}
	ins = asmOne(t, "subne r0, r1, r2, lsl #3")
	if ins.Op != OpSUB || ins.Cond != NE || ins.ShiftTyp != LSL || ins.ShiftAmt != 3 || ins.Rm != 2 {
		t.Fatalf("subne: %+v", ins)
	}
	ins = asmOne(t, "mov r4, r5, lsr r6")
	if ins.Op != OpMOV || !ins.ShiftReg || ins.Rs != 6 || ins.ShiftTyp != LSR {
		t.Fatalf("mov shift-reg: %+v", ins)
	}
	ins = asmOne(t, "cmp r3, #0xff")
	if ins.Op != OpCMP || !ins.SetFlags || ins.Rn != 3 || ins.Imm != 0xff {
		t.Fatalf("cmp: %+v", ins)
	}
	ins = asmOne(t, "mvn r0, #0")
	if ins.Op != OpMVN || ins.Imm != 0 {
		t.Fatalf("mvn: %+v", ins)
	}
}

func TestAssembleShiftAliases(t *testing.T) {
	ins := asmOne(t, "lsl r0, r1, #4")
	if ins.Op != OpMOV || ins.Rm != 1 || ins.ShiftTyp != LSL || ins.ShiftAmt != 4 {
		t.Fatalf("lsl alias: %+v", ins)
	}
	ins = asmOne(t, "lsrs r0, r1, r2")
	if ins.Op != OpMOV || !ins.SetFlags || !ins.ShiftReg || ins.Rs != 2 || ins.ShiftTyp != LSR {
		t.Fatalf("lsrs alias: %+v", ins)
	}
	ins = asmOne(t, "neg r2, r3")
	if ins.Op != OpRSB || ins.Rd != 2 || ins.Rn != 3 || ins.Imm != 0 {
		t.Fatalf("neg alias: %+v", ins)
	}
}

func TestAssembleLoadStore(t *testing.T) {
	ins := asmOne(t, "ldr r0, [r1]")
	if !ins.Load || ins.Rn != 1 || !ins.PreIndex || ins.Imm != 0 {
		t.Fatalf("ldr [r1]: %+v", ins)
	}
	ins = asmOne(t, "str r0, [r1, #-8]")
	if ins.Load || ins.Up || ins.Imm != 8 || !ins.PreIndex {
		t.Fatalf("str neg: %+v", ins)
	}
	ins = asmOne(t, "ldrb r2, [r3, r4, lsl #2]!")
	if !ins.Byte || ins.HasImm || ins.Rm != 4 || ins.ShiftAmt != 2 || !ins.Writeback {
		t.Fatalf("ldrb scaled: %+v", ins)
	}
	ins = asmOne(t, "ldr r0, [r1], #4")
	if ins.PreIndex || ins.Imm != 4 || !ins.Up {
		t.Fatalf("post-index: %+v", ins)
	}
	ins = asmOne(t, "strb r5, [r6], -r7")
	if ins.PreIndex || ins.Up || ins.Rm != 7 || !ins.Byte || ins.Load {
		t.Fatalf("post reg down: %+v", ins)
	}
}

func TestAssembleLSMAndStack(t *testing.T) {
	ins := asmOne(t, "ldmia r0!, {r1-r3, r5}")
	if !ins.Load || ins.PreIndex || !ins.Up || !ins.Writeback ||
		ins.RegList != 0b101110 {
		t.Fatalf("ldmia: %+v", ins)
	}
	ins = asmOne(t, "push {r0, lr}")
	if ins.Load || !ins.PreIndex || ins.Up || ins.Rn != SP || ins.RegList != 1|1<<LR {
		t.Fatalf("push: %+v", ins)
	}
	ins = asmOne(t, "pop {r0, pc}")
	if !ins.Load || ins.PreIndex || !ins.Up || ins.RegList != 1|1<<PC {
		t.Fatalf("pop: %+v", ins)
	}
	ins = asmOne(t, "stmfd sp!, {r4-r6}")
	if ins.Load || !ins.PreIndex || ins.Up {
		t.Fatalf("stmfd: %+v", ins)
	}
}

func TestAssembleBranchesAndLabels(t *testing.T) {
	src := `
_start:
	mov r0, #0
loop:
	add r0, r0, #1
	cmp r0, #10
	bne loop
	bl fin
	b _start
fin:
	swi #0
`
	p, err := Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	words := p.Words()
	if p.Entry != 0x8000 {
		t.Errorf("entry = %#x", p.Entry)
	}
	bne := Decode(words[3], 0x8000+12)
	if bne.Class != ClassBranch || bne.Cond != NE || bne.Target() != p.Symbols["loop"] {
		t.Errorf("bne: %+v target=%#x want %#x", bne, bne.Target(), p.Symbols["loop"])
	}
	bl := Decode(words[4], 0x8000+16)
	if !bl.Link || bl.Target() != p.Symbols["fin"] {
		t.Errorf("bl: target=%#x", bl.Target())
	}
}

func TestAssembleDirectivesAndPool(t *testing.T) {
	src := `
	ldr r0, =data
	ldr r1, =0x12345678
	ldr r2, =data
	swi #0
data:
	.word 0xdeadbeef, 42
	.byte 1, 2, 3
	.align
	.space 8
tail:
	.word tail
`
	p, err := Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	sym := p.Symbols
	if sym["data"] != 0x8010 {
		t.Fatalf("data symbol = %#x", sym["data"])
	}
	// .word values.
	w := p.Words()
	dataIdx := (sym["data"] - 0x8000) / 4
	if w[dataIdx] != 0xdeadbeef || w[dataIdx+1] != 42 {
		t.Errorf("data words: %#x %#x", w[dataIdx], w[dataIdx+1])
	}
	// tail: .word tail refers to its own address.
	tailIdx := (sym["tail"] - 0x8000) / 4
	if w[tailIdx] != sym["tail"] {
		t.Errorf(".word tail = %#x want %#x", w[tailIdx], sym["tail"])
	}
	// Literal pool: simulate the ldr and verify it fetches the right values.
	check := func(word uint32, addr uint32, want uint32) {
		ins := Decode(word, addr)
		if ins.Class != ClassLoadStore || !ins.Load || ins.Rn != PC {
			t.Fatalf("not a literal load: %+v", ins)
		}
		ea := addr + 8 + ins.Imm
		if !ins.Up {
			ea = addr + 8 - ins.Imm
		}
		idx := (ea - 0x8000) / 4
		if w[idx] != want {
			t.Errorf("literal at %#x = %#x, want %#x", ea, w[idx], want)
		}
	}
	check(w[0], 0x8000, sym["data"])
	check(w[1], 0x8004, 0x12345678)
	check(w[2], 0x8008, sym["data"]) // deduped with w[0]'s literal
}

func TestAssembleLtorgMidFile(t *testing.T) {
	// Two pools: the first flushed by .ltorg, the second at end of file.
	// Identical expressions in separate pools get separate slots.
	src := `
	ldr r0, =0x11112222
	swi #0
	.ltorg
later:
	ldr r1, =0x11112222
	ldr r2, =0x33334444
	swi #0
`
	p, err := Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Words()
	resolve := func(idx int) uint32 {
		ins := Decode(w[idx], 0x8000+uint32(4*idx))
		ea := ins.Addr + 8 + ins.Imm
		if !ins.Up {
			ea = ins.Addr + 8 - ins.Imm
		}
		return w[(ea-0x8000)/4]
	}
	if resolve(0) != 0x11112222 {
		t.Errorf("pool 1 literal = %#x", resolve(0))
	}
	laterIdx := int((p.Symbols["later"] - 0x8000) / 4)
	if resolve(laterIdx) != 0x11112222 || resolve(laterIdx+1) != 0x33334444 {
		t.Errorf("pool 2 literals = %#x %#x", resolve(laterIdx), resolve(laterIdx+1))
	}
	// The first pool sits between the two code regions.
	if p.Symbols["later"] != 0x8000+12 {
		t.Errorf("later = %#x, want 0x800c (code 8 bytes + 4-byte pool)", p.Symbols["later"])
	}
}

func TestAssembleLabelArithmetic(t *testing.T) {
	src := `
	ldr r0, =tbl+8
	swi #0
tbl:
	.word 1, 2, 3, 4
`
	p, err := Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Words()
	ins := Decode(w[0], 0x8000)
	lit := w[(0x8000+8+ins.Imm-0x8000)/4]
	if lit != p.Symbols["tbl"]+8 {
		t.Errorf("tbl+8 literal = %#x, want %#x", lit, p.Symbols["tbl"]+8)
	}
}

func TestAssembleMultipleLabelsPerLine(t *testing.T) {
	p, err := Assemble("a: b: c: mov r0, #1\n swi #0\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["a"] != 0x8000 || p.Symbols["b"] != 0x8000 || p.Symbols["c"] != 0x8000 {
		t.Fatalf("stacked labels: %v", p.Symbols)
	}
}

func TestAssembleComments(t *testing.T) {
	src := `
	mov r0, #1   ; semicolon comment
	mov r1, #2   @ at comment
	mov r2, #3   // slash comment
`
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words()) != 3 {
		t.Fatalf("got %d words", len(p.Words()))
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"bogus r0, r1",
		"mov r0, #0x102",                   // unencodable immediate
		"add r0, r1",                       // missing operand
		"ldr r0, [r1, r2, lsl r3]",         // register-shifted offset unsupported
		"ldm r0",                           // missing list
		"b nowhere",                        // undefined label
		".word nolabel",                    // undefined symbol in data
		"dup: mov r0, #0\ndup: mov r0, #0", // duplicate label
	} {
		if _, err := Assemble(src, 0x8000); err == nil {
			t.Errorf("Assemble(%q) unexpectedly succeeded", src)
		} else if !strings.Contains(err.Error(), "asm: line") {
			t.Errorf("error %v lacks line info", err)
		}
	}
}

func TestAssembleCharLiteralAndAsciz(t *testing.T) {
	src := `
	mov r0, #'A'
s:
	.asciz "hi"
`
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	ins := Decode(p.Words()[0], 0)
	if ins.Imm != 'A' {
		t.Errorf("char imm = %d", ins.Imm)
	}
	off := p.Symbols["s"]
	if p.Bytes[off] != 'h' || p.Bytes[off+1] != 'i' || p.Bytes[off+2] != 0 {
		t.Errorf("asciz bytes: %v", p.Bytes[off:off+3])
	}
}

// Round trip: assemble → decode → disassemble → reassemble → same word.
func TestDisassembleRoundTrip(t *testing.T) {
	lines := []string{
		"add r1, r2, #10",
		"subs r0, r1, r2, lsl #3",
		"mov r4, r5, lsr r6",
		"movs r4, r5, rrx",
		"cmp r3, #255",
		"tst r1, r2",
		"mvn r0, #0",
		"mulne r2, r3, r4",
		"mla r2, r3, r4, r5",
		"ldr r0, [r1]",
		"str r0, [r1, #-8]",
		"ldrb r2, [r3, r4, lsl #2]!",
		"ldr r0, [r1], #4",
		"ldmia r0!, {r1-r3, r5}",
		"stmdb sp!, {r4, lr}",
		"swi #17",
	}
	for _, line := range lines {
		ins := asmOne(t, line)
		dis := Disassemble(ins)
		ins2 := asmOne(t, dis)
		if ins2.Raw != ins.Raw {
			t.Errorf("round trip %q -> %q: %08x != %08x", line, dis, ins.Raw, ins2.Raw)
		}
	}
}

// Branch disassembly renders absolute targets; reassembling at the same
// address gives the same word.
func TestDisassembleBranchRoundTrip(t *testing.T) {
	src := "x:\n\tb x\n\tblne x\n"
	p, err := Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Words() {
		addr := 0x8000 + uint32(4*i)
		ins := Decode(w, addr)
		dis := Disassemble(&ins)
		p2, err := Assemble("x:\n\t.space "+strconv.Itoa(int(addr-0x8000))+"\n"+dis+"\n", 0x8000)
		if err != nil {
			t.Fatalf("reassemble %q: %v", dis, err)
		}
		if got := p2.Words()[int(addr-0x8000)/4]; got != w {
			t.Errorf("branch round trip %q: %08x != %08x", dis, got, w)
		}
	}
}
