// Outoforder reproduces the paper's §3.2 example end to end: the
// representative out-of-order-completion processor of Figure 4 modeled as
// the RCPN of Figure 5, including
//
//   - the three operation classes (ALU, Branch, LoadStore) built from
//     symbols that decode to RegRef/Const operands;
//   - the feedback path modeled as two prioritized arcs out of place L1:
//     priority 0 reads the first source from the register file
//     (s1.CanRead), priority 1 picks it off the feedback path while the
//     producer sits in L3 (s1.CanReadIn(L3)) — and the Build step
//     automatically gives L3 the two-list algorithm because of it;
//   - a branch that stalls fetch by leaving a reservation token in L1,
//     consumed one cycle later when the branch resolves;
//   - a load/store unit whose latency is data dependent:
//     "t.delay = mem.delay(addr)".
//
// Run with: go run ./examples/outoforder
package main

import (
	"fmt"

	"rcpn/internal/core"
	"rcpn/internal/reg"
)

// Operation classes of Figure 4(b).
const (
	classALU core.ClassID = iota
	classBranch
	classLoadStore
	numClasses
)

// instr is a decoded instruction: symbols already replaced by operands.
type instr struct {
	name string
	tok  *core.Token

	// ALU: d = op(s1, s2)
	op     func(a, b uint32) uint32
	d      *reg.Ref
	s1, s2 reg.Operand

	// LoadStore: load (L=true) or store of r at addr
	load bool
	r    reg.Operand
	addr reg.Operand

	// Branch
	offset reg.Operand
}

func (in *instr) InState(s int) bool { return in.tok.InState(s) }

// memory is the non-pipeline unit the M transition references: word storage
// plus a data-dependent delay model (§3.2: "The component mem, referenced in
// this transition, can be used from a library").
type memory struct {
	words map[uint32]uint32
}

func (m *memory) delay(addr uint32) int64 {
	if addr%28 == 0 {
		return 5 // "cache miss"
	}
	return 1
}

// pool recycles instruction tokens between program runs.
var pool core.TokenPool

func main() {
	gpr := reg.NewFile("R", 8)
	regs := make([]*reg.Register, 8)
	for i := range regs {
		regs[i] = gpr.Register(fmt.Sprintf("r%d", i), i)
	}
	mem := &memory{words: map[uint32]uint32{}}
	pc := uint32(0)

	n := core.NewNet(int(numClasses))
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	l3 := n.Place("L3", n.Stage("L3", 1))
	l4 := n.Place("L4", n.Stage("L4", 1))
	end := n.EndPlace("end")

	// The writeback stage takes two cycles (a shared writeback port), so a
	// result sits in L3 — visible to the feedback path — before it reaches
	// the register file. This is what makes the priority-1 bypass arc pay
	// off: without it every dependent instruction would wait out the
	// writeback.
	l3.Delay = 2

	get := func(tok *core.Token) *instr { return tok.Data.(*instr) }
	trace := func(tok *core.Token, f string, a ...any) {
		fmt.Printf("  cycle %2d: %-6s %s\n", n.CycleCount(), get(tok).name, fmt.Sprintf(f, a...))
	}

	// --- ALU sub-net (Figure 5, with the two prioritized arcs) ----------
	n.AddTransition(&core.Transition{
		Name: "D", Class: classALU, From: l1, To: l2, Priority: 0,
		Guard: func(tok *core.Token) bool {
			t := get(tok)
			return t.s1.CanRead() && t.s2.CanRead() && t.d.CanWrite()
		},
		Action: func(tok *core.Token) {
			t := get(tok)
			t.s1.Read()
			t.s2.Read()
			t.d.ReserveWrite()
			trace(tok, "issues (register file)")
		},
	})
	n.AddTransition(&core.Transition{
		Name: "Dfwd", Class: classALU, From: l1, To: l2, Priority: 1,
		Reads: []*core.Place{l3}, // feedback query: writer in state L3
		Guard: func(tok *core.Token) bool {
			t := get(tok)
			return t.s1.CanReadIn(l3.ID()) && t.s2.CanRead() && t.d.CanWrite()
		},
		Action: func(tok *core.Token) {
			t := get(tok)
			t.s1.ReadIn(l3.ID())
			t.s2.Read()
			t.d.ReserveWrite()
			trace(tok, "issues (s1 via feedback from L3)")
		},
	})
	n.AddTransition(&core.Transition{
		Name: "E", Class: classALU, From: l2, To: l3,
		Action: func(tok *core.Token) {
			t := get(tok)
			t.d.SetValue(t.op(t.s1.Value(), t.s2.Value()))
			trace(tok, "executes -> %d", t.d.Value())
		},
	})
	n.AddTransition(&core.Transition{
		Name: "We", Class: classALU, From: l3, To: end,
		Action: func(tok *core.Token) {
			t := get(tok)
			t.d.Writeback()
			trace(tok, "writes back")
		},
	})

	// --- Branch sub-net: reservation token stalls fetch -----------------
	n.AddTransition(&core.Transition{
		Name: "Dbr", Class: classBranch, From: l1, To: l2,
		ResOut: []*core.Place{l1}, // occupy the fetch latch
		Guard: func(tok *core.Token) bool {
			return get(tok).offset.CanRead()
		},
		Action: func(tok *core.Token) {
			get(tok).offset.Read()
			trace(tok, "issues; fetch stalled by reservation token")
		},
	})
	n.AddTransition(&core.Transition{
		Name: "B", Class: classBranch, From: l2, To: end,
		ResIn: []*core.Place{l1}, // un-stall fetch
		Action: func(tok *core.Token) {
			pc = pc + get(tok).offset.Value()
			trace(tok, "resolves: pc = pc + %d = %d", get(tok).offset.Value(), pc)
		},
	})

	// --- LoadStore sub-net: data-dependent memory delay ------------------
	n.AddTransition(&core.Transition{
		Name: "Dls", Class: classLoadStore, From: l1, To: l2,
		Guard: func(tok *core.Token) bool {
			t := get(tok)
			if !t.addr.CanRead() {
				return false
			}
			if t.load {
				return t.r.CanWrite()
			}
			return t.r.CanRead()
		},
		Action: func(tok *core.Token) {
			t := get(tok)
			t.addr.Read()
			if t.load {
				t.r.ReserveWrite()
			} else {
				t.r.Read()
			}
			trace(tok, "issues")
		},
	})
	n.AddTransition(&core.Transition{
		Name: "M", Class: classLoadStore, From: l2, To: l4,
		Action: func(tok *core.Token) {
			t := get(tok)
			a := t.addr.Value()
			if t.load {
				t.r.SetValue(mem.words[a])
			} else {
				mem.words[a] = t.r.Value()
			}
			tok.Delay = mem.delay(a) // the paper's t.delay = mem.delay(addr)
			trace(tok, "memory access @%d (delay %d)", a, tok.Delay)
		},
	})
	n.AddTransition(&core.Transition{
		Name: "Wm", Class: classLoadStore, From: l4, To: end,
		Action: func(tok *core.Token) {
			t := get(tok)
			if t.load {
				t.r.Writeback()
			}
			trace(tok, "completes")
		},
	})

	// --- Instruction-independent sub-net: fetch --------------------------
	// Retired tokens refill the pool buildProgram drew from (the
	// allocation-free steady-state idiom; a no-op for this one-shot program).
	n.OnRetire(pool.Put)
	program := buildProgram(regs)
	next := 0
	n.AddSource(&core.Source{
		Name: "F", To: l1,
		Guard: func() bool { return next < len(program) },
		Fire: func() *core.Token {
			in := program[next]
			next++
			fmt.Printf("  cycle %2d: %-6s fetched\n", n.CycleCount(), in.name)
			return in.tok
		},
	})

	n.MustBuild()

	fmt.Println("RCPN model of the paper's Figure 4/5 out-of-order-completion processor")
	fmt.Print("two-list places (auto-detected from the feedback arc):")
	for _, p := range n.TwoListPlaces() {
		fmt.Printf(" %s", p.Name)
	}
	fmt.Println("\nsimulating:")
	if _, err := n.Run(func() bool { return n.RetiredCount == uint64(len(program)) }, 200); err != nil {
		panic(err)
	}

	fmt.Printf("\n%d instructions in %d cycles (CPI %.2f)\n",
		n.RetiredCount, n.CycleCount(), float64(n.CycleCount())/float64(n.RetiredCount))
	for i, r := range regs {
		fmt.Printf("r%d=%-6d ", i, r.Value())
	}
	fmt.Printf("pc=%d, mem[28]=%d\n", pc, mem.words[28])
	fmt.Println("\nfeedback-path issue count (Dfwd fires):", transitionFires(n, "Dfwd"))
}

func transitionFires(n *core.Net, name string) uint64 {
	for _, t := range n.Transitions() {
		if t.Name == name {
			return t.Fires
		}
	}
	return 0
}

// buildProgram decodes a little program into operand-wired instructions —
// the per-instance customization the paper performs at decode.
func buildProgram(regs []*reg.Register) []*instr {
	add := func(a, b uint32) uint32 { return a + b }
	mul := func(a, b uint32) uint32 { return a * b }

	mk := func(class core.ClassID, in *instr) *instr {
		in.tok = pool.Get(class, in)
		return in
	}
	alu := func(name string, op func(a, b uint32) uint32, d int, s1 int, s2 reg.Operand) *instr {
		in := &instr{name: name, op: op}
		in = mk(classALU, in)
		in.d = reg.NewRef(regs[d], in)
		in.s1 = reg.NewRef(regs[s1], in)
		in.s2 = s2
		return in
	}
	ref := func(in *instr, r int) reg.Operand { return reg.NewRef(regs[r], in) }

	// i0: r1 = r0 + 7        (register-file issue)
	// i1: r2 = r1 * 3        (s1 bypassed from L3 — back-to-back dependency)
	// i2: r3 = r2 + 1        (bypass again)
	// i3: store r3 -> [28]   (waits for r3; address 28 is a "miss")
	// i4: branch +8          (stalls fetch one cycle via reservation token)
	// i5: load r4 <- [28]    (data-dependent 5-cycle delay, out-of-order completion)
	// i6: r5 = r0 + 2        (independent; completes before the load — out of order)
	i0 := alu("i0:add", add, 1, 0, reg.NewConst(7))
	i1 := alu("i1:mul", mul, 2, 1, reg.NewConst(3))
	i2 := alu("i2:add", add, 3, 2, reg.NewConst(1))

	i3 := mk(classLoadStore, &instr{name: "i3:st", load: false})
	i3.r = ref(i3, 3)
	i3.addr = reg.NewConst(28)

	i4 := mk(classBranch, &instr{name: "i4:br"})
	i4.offset = reg.NewConst(8)

	i5 := mk(classLoadStore, &instr{name: "i5:ld", load: true})
	i5.r = ref(i5, 4)
	i5.addr = reg.NewConst(28)

	i6 := alu("i6:add", add, 5, 0, reg.NewConst(2))

	return []*instr{i0, i1, i2, i3, i4, i5, i6}
}
