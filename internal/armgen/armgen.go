// Package armgen is a seeded random ARM program generator: the workload
// family behind the generative differential coverage of DESIGN.md §11. The
// paper validates generated simulators against the ISS on six hand-written
// kernels; armgen turns that fixed instruction mix into an unbounded one by
// producing, from a 64-bit seed, a well-formed self-terminating ARM7 program
// with tunable instruction-class weights.
//
// Determinism contract: the same (Seed, Len, Weights, CondPct) produce a
// byte-identical assembly source, hence a byte-identical binary image, on
// every run, machine and Go version. The generator uses its own splitmix64
// PRNG (no math/rand, no map iteration) and fixed formatting, so the seed
// fully determines the program.
//
// Well-formedness invariants, which hold for the generated program and for
// every program obtained by deleting any subset of its chunks (the property
// the delta-debugging minimizer relies on):
//
//   - Termination: loops are counted on a reserved register (r11) with a
//     constant bound, and conditional branches only jump forward within
//     their own chunk, so every program exits through the SWI 0 stub in a
//     bounded number of instructions.
//   - Memory confinement: every load/store base is an address register (r8,
//     r9) that is re-clamped into the scratch window after any writeback,
//     and offsets are bounded immediates or masked registers, so data
//     accesses stay inside [ScratchBase-0x1000, ScratchBase+0x2000) — far
//     from the program text, the literal-free image, and the stack. Even
//     with every init chunk deleted (bases = 0) no store can reach the text
//     segment at 0x8000.
//   - No SWI except the exit stub, no PC-writing instructions, no LDM/STM
//     with the base register in the transfer list.
package armgen

import (
	"fmt"
	"strings"

	"rcpn/internal/arm"
)

// ScratchBase is the bottom of the guarded scratch window all generated
// memory traffic is confined to. 0x00100000 is an encodable rotated
// immediate, so address setup needs no literal pool.
const ScratchBase = 0x00100000

// Register roles. Data registers are freely read and written; address
// registers always hold clamped scratch-window addresses at chunk
// boundaries; r11 is the loop counter; r12 the clamp/offset temporary.
// sp, lr and pc are never touched.
const (
	numDataRegs = 8  // r0..r7
	addrRegA    = 8  // r8
	addrRegB    = 9  // r9
	loopReg     = 11 // r11
	tmpReg      = 12 // r12
)

// Weights are the relative instruction-class weights of the generator. A
// zero weight disables the class; the zero value of the struct is replaced
// by DefaultWeights.
type Weights struct {
	DataImm      int // data-processing, rotated-immediate operand
	DataReg      int // data-processing, plain register operand
	DataShiftImm int // data-processing, register shifted by immediate (incl. RRX)
	DataShiftReg int // data-processing, register shifted by register
	Mul          int // MUL / MLA
	MulLong      int // UMULL / UMLAL / SMULL / SMLAL
	LoadStore    int // LDR/STR word and byte, all addressing modes
	HalfSigned   int // LDRH/STRH/LDRSB/LDRSH, immediate and register offsets
	Block        int // LDM/STM (all four modes), with and without writeback
	Const        int // load a random 32-bit constant into a data register
	CondSkip     int // compare + forward conditional branch over a few instructions
	Loop         int // bounded counted loop around a short body
}

// DefaultWeights is the mix the differential fuzzer runs with: heavy on the
// rarely-combined decode paths (shifter operands, halfword transfers, block
// transfers) rather than on what the six kernels already cover.
func DefaultWeights() Weights {
	return Weights{
		DataImm:      10,
		DataReg:      8,
		DataShiftImm: 8,
		DataShiftReg: 6,
		Mul:          5,
		MulLong:      5,
		LoadStore:    10,
		HalfSigned:   7,
		Block:        6,
		Const:        6,
		CondSkip:     5,
		Loop:         4,
	}
}

func (w Weights) zero() bool { return w == Weights{} }

func (w Weights) total() int {
	return w.DataImm + w.DataReg + w.DataShiftImm + w.DataShiftReg + w.Mul +
		w.MulLong + w.LoadStore + w.HalfSigned + w.Block + w.Const +
		w.CondSkip + w.Loop
}

// Config parameterizes one generated program.
type Config struct {
	Seed uint64
	// Len is the number of body chunks (default 48). A chunk is one to a
	// handful of instructions that are removable as a unit.
	Len int
	// Weights are the instruction-class weights (default DefaultWeights).
	Weights Weights
	// CondPct is the percent chance [0,100] that a single-instruction chunk
	// is conditionalized (default 25).
	CondPct int
}

func (c Config) withDefaults() Config {
	if c.Len <= 0 {
		c.Len = 48
	}
	if c.Weights.zero() {
		c.Weights = DefaultWeights()
	}
	if c.CondPct == 0 {
		c.CondPct = 25
	}
	return c
}

// Chunk is a self-contained group of assembly lines: removing any subset of
// chunks from a program leaves a program that still assembles, terminates
// and stays memory-confined. Labels inside a chunk are unique to it.
type Chunk struct {
	Lines []string
}

// Program is one generated program: the chunk list (the minimizer's unit of
// deletion), the rendered assembly source and the assembled image.
type Program struct {
	Cfg    Config
	Chunks []Chunk
	Source string
	Image  *arm.Program
}

// rng is splitmix64: tiny, fast and stable across Go versions.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pct(p int) bool { return r.intn(100) < p }

type gen struct {
	cfg    Config
	rng    rng
	labels int // unique label counter
}

// Generate produces the program for cfg. It never fails for a valid config;
// an assembly error indicates a generator bug and is returned as such.
func Generate(cfg Config) (*Program, error) {
	cfg = cfg.withDefaults()
	if cfg.Weights.total() <= 0 {
		return nil, fmt.Errorf("armgen: all weights zero")
	}
	g := &gen{cfg: cfg, rng: rng{s: cfg.Seed}}

	var chunks []Chunk
	// Prologue: constants into every data register and both address
	// registers. These are ordinary chunks — the minimizer may delete them
	// (registers then read as zero, which every engine agrees on).
	for d := 0; d < numDataRegs; d++ {
		chunks = append(chunks, g.constChunk(d))
	}
	chunks = append(chunks, g.addrInitChunk(addrRegA))
	chunks = append(chunks, g.addrInitChunk(addrRegB))

	for i := 0; i < cfg.Len; i++ {
		chunks = append(chunks, g.bodyChunk())
	}

	p := &Program{Cfg: cfg, Chunks: chunks}
	p.Source = Render(chunks)
	img, err := arm.Assemble(p.Source, 0x8000)
	if err != nil {
		return nil, fmt.Errorf("armgen: seed %d produced unassemblable source: %w", cfg.Seed, err)
	}
	p.Image = img
	return p, nil
}

// Render builds assembly source from any chunk subset. The epilogue exits
// with whatever r0 holds; divergence detection compares full architectural
// state, so no emit sequence is needed.
func Render(chunks []Chunk) string {
	var b strings.Builder
	b.WriteString("_start:\n")
	for _, c := range chunks {
		for _, l := range c.Lines {
			b.WriteString("\t")
			b.WriteString(l)
			b.WriteString("\n")
		}
	}
	b.WriteString("\tswi #0\n")
	return b.String()
}

// label returns a fresh branch label.
func (g *gen) label() string {
	g.labels++
	return fmt.Sprintf("g%d", g.labels)
}

func (g *gen) dataReg() arm.Reg { return arm.Reg(g.rng.intn(numDataRegs)) }

func (g *gen) addrReg() arm.Reg {
	if g.rng.intn(2) == 0 {
		return addrRegA
	}
	return addrRegB
}

// cond returns a condition suffix ("" most of the time). NV is never
// emitted; the assembler has no spelling for it.
func (g *gen) cond() string {
	if !g.rng.pct(g.cfg.CondPct) {
		return ""
	}
	conds := []string{"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
		"hi", "ls", "ge", "lt", "gt", "le"}
	return conds[g.rng.intn(len(conds))]
}

func (g *gen) sFlag() string {
	if g.rng.intn(3) == 0 {
		return "s"
	}
	return ""
}

// rotImm returns a random encodable rotated 8-bit immediate, rendered as a
// hex literal so the source stays readable.
func (g *gen) rotImm() string {
	v := uint32(g.rng.intn(256))
	rot := uint32(g.rng.intn(16)) * 2
	if rot != 0 {
		v = v>>rot | v<<(32-rot)
	}
	return fmt.Sprintf("#0x%x", v)
}

// constChunk sets data register d to a random 32-bit value with mov + up to
// three orrs (no literal pool, every piece a rotated immediate).
func (g *gen) constChunk(d int) Chunk {
	rd := arm.Reg(d)
	v := uint32(g.rng.next())
	lines := []string{fmt.Sprintf("mov %s, #0x%x", rd, v&0xff)}
	for i := 1; i < 4; i++ {
		if byte(v>>(8*i)) == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("orr %s, %s, #0x%x", rd, rd, uint32(byte(v>>(8*i)))<<(8*i)))
	}
	return Chunk{Lines: lines}
}

// addrInitChunk points an address register at a random slot in the scratch
// window.
func (g *gen) addrInitChunk(r int) Chunk {
	off := uint32(g.rng.intn(256)) * 16 // 0..0xff0, encodable via two imms
	rr := arm.Reg(r)
	lines := []string{fmt.Sprintf("mov %s, #0x%x", rr, uint32(ScratchBase))}
	if off != 0 {
		lines = append(lines, fmt.Sprintf("orr %s, %s, #0x%x", rr, rr, off))
	}
	return Chunk{Lines: lines}
}

// clampLines re-establish the confinement invariant for address register r:
// r = ScratchBase + (r & 0xff0). Both masks are encodable immediates.
func clampLines(r arm.Reg) []string {
	return []string{
		fmt.Sprintf("and r12, %s, #0xff0", r),
		fmt.Sprintf("orr %s, r12, #0x%x", r, uint32(ScratchBase)),
	}
}

type chunkKind int

const (
	kDataImm chunkKind = iota
	kDataReg
	kDataShiftImm
	kDataShiftReg
	kMul
	kMulLong
	kLoadStore
	kHalfSigned
	kBlock
	kConst
	kCondSkip
	kLoop
)

// pick draws a chunk kind according to the weights.
func (g *gen) pick(w Weights) chunkKind {
	entries := []struct {
		k chunkKind
		w int
	}{
		{kDataImm, w.DataImm}, {kDataReg, w.DataReg},
		{kDataShiftImm, w.DataShiftImm}, {kDataShiftReg, w.DataShiftReg},
		{kMul, w.Mul}, {kMulLong, w.MulLong},
		{kLoadStore, w.LoadStore}, {kHalfSigned, w.HalfSigned},
		{kBlock, w.Block}, {kConst, w.Const},
		{kCondSkip, w.CondSkip}, {kLoop, w.Loop},
	}
	n := g.rng.intn(w.total())
	for _, e := range entries {
		if n < e.w {
			return e.k
		}
		n -= e.w
	}
	return kDataImm // unreachable
}

func (g *gen) bodyChunk() Chunk {
	return g.chunkOf(g.pick(g.cfg.Weights), true)
}

// innerWeights are the weights used inside loop bodies and conditional
// skips: no nested control flow.
func (w Weights) inner() Weights {
	w.CondSkip, w.Loop = 0, 0
	if w.total() == 0 { // control-flow-only config: fill bodies with DP
		w.DataImm = 1
	}
	return w
}

func (g *gen) innerChunk() Chunk {
	return g.chunkOf(g.pick(g.cfg.Weights.inner()), false)
}

func (g *gen) chunkOf(k chunkKind, topLevel bool) Chunk {
	switch k {
	case kDataImm, kDataReg, kDataShiftImm, kDataShiftReg:
		return Chunk{Lines: []string{g.dpLine(k)}}
	case kMul:
		return Chunk{Lines: []string{g.mulLine()}}
	case kMulLong:
		return Chunk{Lines: []string{g.mulLongLine()}}
	case kLoadStore:
		return Chunk{Lines: g.loadStoreLines(false)}
	case kHalfSigned:
		return Chunk{Lines: g.loadStoreLines(true)}
	case kBlock:
		return Chunk{Lines: g.blockLines()}
	case kConst:
		return g.constChunk(int(g.dataReg()))
	case kCondSkip:
		return g.condSkipChunk()
	case kLoop:
		return g.loopChunk()
	}
	return Chunk{Lines: []string{"nop"}}
}

var dpOps = []string{
	"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
	"tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn",
}

var shiftTypes = []string{"lsl", "lsr", "asr", "ror"}

// dpLine emits one data-processing instruction with the requested operand-2
// form. Destinations are data registers only, so flags and control state
// stay well-formed.
func (g *gen) dpLine(k chunkKind) string {
	op := dpOps[g.rng.intn(len(dpOps))]
	cond := g.cond()
	isCmp := op == "tst" || op == "teq" || op == "cmp" || op == "cmn"
	noRn := op == "mov" || op == "mvn"
	s := g.sFlag()
	if isCmp {
		s = ""
	}

	var op2 string
	switch k {
	case kDataImm:
		op2 = g.rotImm()
	case kDataReg:
		op2 = g.dataReg().String()
	case kDataShiftImm:
		typ := shiftTypes[g.rng.intn(len(shiftTypes))]
		if g.rng.intn(8) == 0 {
			op2 = fmt.Sprintf("%s, rrx", g.dataReg())
		} else {
			amt := 1 + g.rng.intn(31)
			op2 = fmt.Sprintf("%s, %s #%d", g.dataReg(), typ, amt)
		}
	default: // kDataShiftReg
		typ := shiftTypes[g.rng.intn(len(shiftTypes))]
		op2 = fmt.Sprintf("%s, %s %s", g.dataReg(), typ, g.dataReg())
	}

	switch {
	case isCmp:
		return fmt.Sprintf("%s%s %s, %s", op, cond, g.dataReg(), op2)
	case noRn:
		return fmt.Sprintf("%s%s%s %s, %s", op, cond, s, g.dataReg(), op2)
	default:
		return fmt.Sprintf("%s%s%s %s, %s, %s", op, cond, s, g.dataReg(), g.dataReg(), op2)
	}
}

func (g *gen) mulLine() string {
	cond, s := g.cond(), g.sFlag()
	rd := g.dataReg()
	rm := g.dataReg()
	for rm == rd { // ARM7: Rd and Rm must differ
		rm = arm.Reg((int(rm) + 1) % numDataRegs)
	}
	rs := g.dataReg()
	if g.rng.intn(2) == 0 {
		return fmt.Sprintf("mla%s%s %s, %s, %s, %s", cond, s, rd, rm, rs, g.dataReg())
	}
	return fmt.Sprintf("mul%s%s %s, %s, %s", cond, s, rd, rm, rs)
}

func (g *gen) mulLongLine() string {
	mn := []string{"umull", "umlal", "smull", "smlal"}[g.rng.intn(4)]
	cond, s := g.cond(), g.sFlag()
	lo := g.dataReg()
	hi := g.dataReg()
	for hi == lo { // RdHi, RdLo must be distinct
		hi = arm.Reg((int(hi) + 1) % numDataRegs)
	}
	rm := g.dataReg()
	for rm == lo || rm == hi { // and distinct from Rm
		rm = arm.Reg((int(rm) + 1) % numDataRegs)
	}
	return fmt.Sprintf("%s%s%s %s, %s, %s, %s", mn, cond, s, lo, hi, rm, g.dataReg())
}

// boundedOffLines derives a bounded offset register: r12 = rX & mask.
func (g *gen) boundedOffLine(mask uint32) string {
	return fmt.Sprintf("and r12, %s, #0x%x", g.dataReg(), mask)
}

// loadStoreLines emits one word/byte (or halfword/signed) transfer in a
// random addressing mode, with the clamp lines that restore the base
// invariant after any writeback.
func (g *gen) loadStoreLines(halfSigned bool) []string {
	cond := g.cond()
	base := g.addrReg()
	rd := g.dataReg()
	sign := ""
	if g.rng.intn(3) == 0 {
		sign = "-"
	}

	var mn string
	var maxImm int
	if halfSigned {
		mn = []string{"ldrh", "strh", "ldrsb", "ldrsh"}[g.rng.intn(4)]
		maxImm = 255
	} else {
		mn = []string{"ldr", "str", "ldrb", "strb"}[g.rng.intn(4)]
		maxImm = 255 // stay well inside the window even though 12 bits encode
	}
	mn += cond

	var lines []string
	var addr string
	regOff := g.rng.intn(3) == 0
	if regOff {
		lines = append(lines, g.boundedOffLine(0xf8))
		if !halfSigned && g.rng.intn(2) == 0 {
			addr = fmt.Sprintf("%sr12, lsl #2", sign) // scaled, still bounded
		} else {
			addr = fmt.Sprintf("%sr12", sign)
		}
	} else {
		off := g.rng.intn(maxImm + 1)
		if off == 0 {
			sign = "" // "#-0" would lose its U bit through the disassembler
		}
		addr = fmt.Sprintf("#%s%d", sign, off)
	}

	mode := g.rng.intn(3)
	switch mode {
	case 0: // plain pre-indexed
		lines = append(lines, fmt.Sprintf("%s %s, [%s, %s]", mn, rd, base, addr))
	case 1: // pre-indexed with writeback
		lines = append(lines, fmt.Sprintf("%s %s, [%s, %s]!", mn, rd, base, addr))
		lines = append(lines, clampLines(base)...)
	default: // post-indexed
		lines = append(lines, fmt.Sprintf("%s %s, [%s], %s", mn, rd, base, addr))
		lines = append(lines, clampLines(base)...)
	}
	return lines
}

// blockLines emits one LDM/STM over data registers. The base register is
// never in the list, so writeback stays well-defined on every engine.
func (g *gen) blockLines() []string {
	mode := []string{"ia", "ib", "da", "db"}[g.rng.intn(4)]
	load := g.rng.intn(2) == 0
	mn := "stm"
	if load {
		mn = "ldm"
	}
	mask := 1 + g.rng.intn(1<<numDataRegs-1) // non-empty subset of r0..r7
	var regs []string
	for r := 0; r < numDataRegs; r++ {
		if mask&(1<<r) != 0 {
			regs = append(regs, arm.Reg(r).String())
		}
	}
	base := g.addrReg()
	wb := ""
	var lines []string
	if g.rng.intn(2) == 0 {
		wb = "!"
	}
	lines = append(lines, fmt.Sprintf("%s%s%s %s%s, {%s}",
		mn, mode, g.cond(), base, wb, strings.Join(regs, ", ")))
	if wb != "" {
		lines = append(lines, clampLines(base)...)
	}
	return lines
}

// condSkipChunk compares two data registers and conditionally branches
// forward over a short body — the only forward branches in the stream, and
// always within the chunk.
func (g *gen) condSkipChunk() Chunk {
	l := g.label()
	conds := []string{"eq", "ne", "cs", "cc", "mi", "pl", "hi", "ls", "ge", "lt", "gt", "le"}
	lines := []string{
		fmt.Sprintf("cmp %s, %s", g.dataReg(), g.dataReg()),
		fmt.Sprintf("b%s %s", conds[g.rng.intn(len(conds))], l),
	}
	for n := 1 + g.rng.intn(3); n > 0; n-- {
		lines = append(lines, g.innerChunk().Lines...)
	}
	lines = append(lines, l+":")
	return Chunk{Lines: lines}
}

// loopChunk emits a counted loop on the reserved counter register. Inner
// chunks never write r11, so the loop always runs exactly its constant
// count.
func (g *gen) loopChunk() Chunk {
	l := g.label()
	count := 1 + g.rng.intn(6)
	lines := []string{
		fmt.Sprintf("mov r11, #%d", count),
		l + ":",
	}
	for n := 1 + g.rng.intn(4); n > 0; n-- {
		lines = append(lines, g.innerChunk().Lines...)
	}
	lines = append(lines,
		"subs r11, r11, #1",
		fmt.Sprintf("bne %s", l),
	)
	return Chunk{Lines: lines}
}
