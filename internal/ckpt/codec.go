package ckpt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"rcpn/internal/bpred"
	"rcpn/internal/mem"
)

// The binary format, version 1 (all integers little-endian):
//
//	magic   [8]byte  "RCPNCKPT"
//	version uint32   1
//	R       [16]uint32
//	flags   uint32
//	instret uint64
//	exited  uint8
//	exit    uint32
//	output  uint32 count, then count words
//	text    uint32 count, then count bytes
//	pages   uint32 count, then count of { base uint32, data [PageBytes]byte }
//	        (ascending base, page-aligned — the canonical page set)
//	present uint8 bitmask: 1 icache, 2 dcache, 4 itlb, 8 dtlb, 16 predictor
//	caches  for each present cache, in mask-bit order:
//	          uint32 entries, entries tags (uint32), entries lru (uint64),
//	          clock uint64, hits uint64, misses uint64
//	pred    if present: kind (uint32 len + bytes), lookups uint64,
//	          correct uint64, counters (uint32 len + bytes),
//	          btb tags (uint32 len + uint32s), btb targets (uint32 len + uint32s)
//
// Determinism: field order is fixed, pages are canonical, and no map or
// pointer identity leaks into the stream — equal states encode equally.

var magic = [8]byte{'R', 'C', 'P', 'N', 'C', 'K', 'P', 'T'}

// Version is the current codec version.
const Version = 1

const (
	hasICache = 1 << iota
	hasDCache
	hasITLB
	hasDTLB
	hasPred
)

// maxPages bounds a decoded page count (the full 32-bit space).
const maxPages = 1 << (32 - 16)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) u32s(vs []uint32) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u32(v)
	}
}

// EncodeTo writes the checkpoint to out in the versioned binary format.
func (ck *Checkpoint) EncodeTo(out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.bytes(magic[:])
	w.u32(Version)
	for _, r := range ck.R {
		w.u32(r)
	}
	w.u32(ck.Flags)
	w.u64(ck.Instret)
	if ck.Exited {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(ck.Exit)
	w.u32s(ck.Output)
	w.u32(uint32(len(ck.Text)))
	w.bytes(ck.Text)

	w.u32(uint32(len(ck.Mem)))
	for _, p := range ck.Mem {
		w.u32(p.Base)
		if len(p.Data) != mem.PageBytes {
			return fmt.Errorf("ckpt: page %#08x has %d bytes, want %d", p.Base, len(p.Data), mem.PageBytes)
		}
		w.bytes(p.Data)
	}

	var present uint8
	caches := []*mem.CacheState{ck.ICache, ck.DCache, ck.ITLB, ck.DTLB}
	for i, c := range caches {
		if c != nil {
			present |= 1 << i
		}
	}
	if ck.Pred != nil {
		present |= hasPred
	}
	w.u8(present)
	for _, c := range caches {
		if c == nil {
			continue
		}
		if len(c.Tags) != len(c.LRU) {
			return fmt.Errorf("ckpt: cache state with %d tags but %d lru stamps", len(c.Tags), len(c.LRU))
		}
		w.u32s(c.Tags)
		for _, v := range c.LRU {
			w.u64(v)
		}
		w.u64(c.Clock)
		w.u64(c.Stats.Hits)
		w.u64(c.Stats.Misses)
	}
	if p := ck.Pred; p != nil {
		w.u32(uint32(len(p.Kind)))
		w.bytes([]byte(p.Kind))
		w.u64(p.Stats.Lookups)
		w.u64(p.Stats.Correct)
		w.u32(uint32(len(p.Counter)))
		w.bytes(p.Counter)
		w.u32s(p.BTBTag)
		w.u32s(p.BTBTgt)
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Bytes returns the encoded checkpoint.
func (ck *Checkpoint) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := ck.EncodeTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) bytes(b []byte) {
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b)
	}
}

func (r *reader) u8() uint8 {
	var b [1]byte
	r.bytes(b[:])
	return b[0]
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// count reads a length field and bounds it (corrupt streams must not drive
// huge allocations).
func (r *reader) count(what string, max uint32) int {
	n := r.u32()
	if r.err == nil && n > max {
		r.err = fmt.Errorf("ckpt: %s count %d exceeds limit %d", what, n, max)
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

func (r *reader) u32s(what string, max uint32) []uint32 {
	n := r.count(what, max)
	if n == 0 {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = r.u32()
	}
	return vs
}

// DecodeFrom reads one checkpoint from in.
func DecodeFrom(in io.Reader) (*Checkpoint, error) {
	r := &reader{r: bufio.NewReader(in)}
	var m [8]byte
	r.bytes(m[:])
	if r.err != nil {
		return nil, r.err
	}
	if m != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", m[:])
	}
	if v := r.u32(); r.err == nil && v != Version {
		return nil, fmt.Errorf("ckpt: unsupported version %d (have %d)", v, Version)
	}
	ck := &Checkpoint{}
	for i := range ck.R {
		ck.R[i] = r.u32()
	}
	ck.Flags = r.u32()
	ck.Instret = r.u64()
	ck.Exited = r.u8() != 0
	ck.Exit = r.u32()
	ck.Output = r.u32s("output", 1<<28)
	if n := r.count("text", 1<<28); n > 0 {
		ck.Text = make([]byte, n)
		r.bytes(ck.Text)
	}

	nPages := r.count("page", maxPages)
	prevBase := int64(-1)
	for i := 0; i < nPages && r.err == nil; i++ {
		p := Page{Base: r.u32(), Data: make([]byte, mem.PageBytes)}
		r.bytes(p.Data)
		if r.err != nil {
			break
		}
		if p.Base%mem.PageBytes != 0 {
			return nil, fmt.Errorf("ckpt: page base %#08x not page-aligned", p.Base)
		}
		if int64(p.Base) <= prevBase {
			return nil, fmt.Errorf("ckpt: page bases not strictly ascending at %#08x", p.Base)
		}
		prevBase = int64(p.Base)
		ck.Mem = append(ck.Mem, p)
	}

	present := r.u8()
	for _, dst := range []struct {
		bit uint8
		p   **mem.CacheState
	}{
		{hasICache, &ck.ICache}, {hasDCache, &ck.DCache},
		{hasITLB, &ck.ITLB}, {hasDTLB, &ck.DTLB},
	} {
		if present&dst.bit == 0 {
			continue
		}
		st := &mem.CacheState{Tags: r.u32s("cache tag", 1<<24)}
		st.LRU = make([]uint64, len(st.Tags))
		for i := range st.LRU {
			st.LRU[i] = r.u64()
		}
		st.Clock = r.u64()
		st.Stats.Hits = r.u64()
		st.Stats.Misses = r.u64()
		*dst.p = st
	}
	if present&hasPred != 0 {
		st := &bpred.State{}
		kind := make([]byte, r.count("predictor kind", 64))
		r.bytes(kind)
		st.Kind = string(kind)
		st.Stats.Lookups = r.u64()
		st.Stats.Correct = r.u64()
		if n := r.count("predictor counter", 1<<24); n > 0 {
			st.Counter = make([]uint8, n)
			r.bytes(st.Counter)
		}
		st.BTBTag = r.u32s("btb tag", 1<<24)
		st.BTBTgt = r.u32s("btb target", 1<<24)
		ck.Pred = st
	}
	if r.err != nil {
		return nil, r.err
	}
	return ck, nil
}

// FromBytes decodes a checkpoint from b.
func FromBytes(b []byte) (*Checkpoint, error) {
	return DecodeFrom(bytes.NewReader(b))
}
