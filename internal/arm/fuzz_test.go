package arm

import "testing"

// reencode reconstructs an instruction word from decoded fields, using the
// public encoders where they fit and the documented bit layout where the
// decoder keeps more information than the encoders accept (e.g. a DP
// immediate's rotation, which the decoder preserves for carry-out
// semantics). ok is false only where the decoder is deliberately looser
// than the encoder (signed stores, which EncodeHS rejects).
func reencode(ins *Instr) (uint32, bool) {
	cond := uint32(ins.Cond) << 28
	switch ins.Class {
	case ClassSystem:
		if ins.Undefined() {
			return 0, false
		}
		return EncodeSWI(ins.Cond, ins.SWINum), true

	case ClassBranch:
		w := cond | 5<<25 | uint32(ins.BrOff)&0x00ffffff
		if ins.Link {
			w |= 1 << 24
		}
		return w, true

	case ClassMult:
		if ins.Long {
			return EncodeMulLong(ins.Cond, ins.SignedMul, ins.Accum, ins.SetFlags,
				ins.Rd, ins.Rn, ins.Rm, ins.Rs), true
		}
		return EncodeMul(ins.Cond, ins.SetFlags, ins.Accum,
			ins.Rd, ins.Rm, ins.Rs, ins.Rn), true

	case ClassLoadStoreM:
		return EncodeLSM(ins.Cond, ins.Load, ins.PreIndex, ins.Up, ins.Writeback,
			ins.Rn, ins.RegList), true

	case ClassLoadStore:
		m := MemMode{Rn: ins.Rn, Up: ins.Up, PreIndex: ins.PreIndex, Writeback: ins.Writeback}
		if ins.Half || ins.SignedLoad {
			if m.Off.HasImm = ins.HasImm; ins.HasImm {
				m.Off.Imm = ins.Imm
			} else {
				m.Off.Rm = ins.Rm
			}
			w, err := EncodeHS(ins.Cond, ins.Load, ins.SignedLoad, ins.Half, ins.Rd, m)
			return w, err == nil
		}
		if ins.HasImm {
			m.Off = ImmOp(ins.Imm)
		} else {
			m.Off = Operand2{Rm: ins.Rm, ShiftTyp: ins.ShiftTyp, ShiftAmt: ins.ShiftAmt}
		}
		w, err := EncodeLS(ins.Cond, ins.Load, ins.Byte, ins.Rd, m)
		return w, err == nil

	case ClassDataProc:
		w := cond | uint32(ins.Op)<<21 | uint32(ins.Rn)<<16 | uint32(ins.Rd)<<12
		if ins.SetFlags {
			w |= 1 << 20
		}
		if ins.HasImm {
			// Rebuild the exact rotation the decoder preserved in ShiftAmt
			// rather than the minimal one EncodeImm would pick: both decode
			// to the same value but differ in shifter carry-out.
			rot := uint32(ins.ShiftAmt)
			imm8 := ins.Imm
			if rot != 0 {
				imm8 = ins.Imm<<rot | ins.Imm>>(32-rot)
			}
			if rot&1 != 0 || rot >= 32 || imm8 > 0xff {
				return 0, false
			}
			return w | 1<<25 | rot/2<<8 | imm8, true
		}
		w |= uint32(ins.Rm) | uint32(ins.ShiftTyp)<<5
		if ins.ShiftReg {
			w |= 1<<4 | uint32(ins.Rs)<<8
		} else {
			w |= uint32(ins.ShiftAmt&31) << 7
		}
		return w, true
	}
	return 0, false
}

// FuzzEncodeDecode feeds arbitrary instruction words through
// decode -> re-encode -> decode and requires a fixed point: the re-decoded
// instruction must be field-identical to the first decode, and re-encoding
// it must reproduce the same word exactly. This pins down that the decoder
// never conflates two semantically different encodings and that the
// canonical encoding of every decodable word is stable.
func FuzzEncodeDecode(f *testing.F) {
	seeds := []uint32{
		0x00000000, 0xffffffff,
		0xe3a00001, // MOV r0, #1
		0xe2811e21, // ADD r1, r1, #0x210 (rotated immediate)
		0xe0010392, // MUL r1, r2, r3
		0xe0854392, // UMULL r4, r5, r2, r3
		0xe5910004, // LDR r0, [r1, #4]
		0xe7910102, // LDR r0, [r1, r2, LSL #2]
		0xe1d130b2, // LDRH r3, [r1, #2]
		0xe1d120d1, // LDRSB r2, [r1, #1]
		0xe92d4010, // STMDB sp!, {r4, lr}
		0xe8bd8010, // LDMIA sp!, {r4, pc}
		0xeb000010, // BL
		0x0afffffe, // BEQ backwards
		0xef000011, // SWI 0x11
		0xe1a00000, // NOP (MOV r0, r0)
		// Corner registers on the long-multiply split result: RdLo/RdHi at
		// the top of the file, and the RdHi/RdLo vs Rm/Rs field overlap.
		0xe08ce399, // UMULL r14, r12, r9, r3
		0xe0feda9b, // SMLALS r13, r14, r11, r10
		// Signed/halfword transfers with split-immediate negative offsets
		// (imm encoded in two nibbles around the SH field).
		0xe1542ff3, // LDRSH r2, [r4, #-243]
		0xe1742ff3, // LDRSH r2, [r4, #-243]!
		// Base register inside the LDM/STM register list with writeback —
		// the architecturally murky corner every engine must agree on.
		0xe9240214, // STMDB r4!, {r2, r4, r9}
		0xe8b10023, // LDMIA r1!, {r0, r1, r5}
	}
	for _, s := range seeds {
		f.Add(s, uint32(0x8000))
	}
	f.Fuzz(func(t *testing.T, raw, addr uint32) {
		ins := Decode(raw, addr)
		_ = Disassemble(&ins) // must not panic on any decodable word
		if ins.Undefined() {
			return
		}
		re, ok := reencode(&ins)
		if !ok {
			// The decoder accepts a few words the encoders refuse to emit
			// (signed stores). They must still disassemble, checked above.
			return
		}
		ins2 := Decode(re, addr)
		a, b := ins, ins2
		a.Raw, b.Raw = 0, 0
		if a != b {
			t.Fatalf("decode(%#08x) = %+v\nre-encoded %#08x decodes to %+v", raw, a, re, b)
		}
		re2, ok2 := reencode(&ins2)
		if !ok2 || re2 != re {
			t.Fatalf("re-encode not a fixed point: %#08x -> %#08x -> %#08x (ok=%v)",
				raw, re, re2, ok2)
		}
	})
}
