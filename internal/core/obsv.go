package core

import "rcpn/internal/obsv"

// Observability: the engine hosts two optional, independent attachments —
// an event tracer and a stall profile — both nil by default. Every hook
// on the simulation fast path is a single pointer nil check; with nothing
// attached the engine runs the exact pre-observability instruction
// sequence plus those branches, which the bench guard pins to <3%.
//
// Stall attribution implements the taxonomy of DESIGN.md §10 directly on
// the RCPN enabling rule: a (stage, cycle) slot is Occupied when some
// transition fired out of the stage that cycle; otherwise the stage's
// highest-priority blocked candidate is probed in the same clause order
// enabled() uses — destination capacity, reservation inputs/outputs,
// guard — and the first failing clause names the stall. Models may
// sub-classify guard failures (register hazards) via Transition.Explain.

// AttachTrace routes the net's token game into tr: token births at
// sources and injections, moves on every firing, retirements at end
// places, and the firings themselves. Place and transition names are
// registered as the tracer's name tables. Must be called before the
// first Step.
func (n *Net) AttachTrace(tr *obsv.Tracer) {
	locs := make([]string, len(n.places))
	for i, p := range n.places {
		locs[i] = p.Name
	}
	ops := make([]string, len(n.transitions))
	for i, t := range n.transitions {
		ops[i] = t.Name
	}
	tr.Locs, tr.Ops = locs, ops
	n.tracer = tr
}

// Tracer returns the attached tracer, or nil.
func (n *Net) Tracer() *obsv.Tracer { return n.tracer }

// EnableProfile turns on per-cycle stall attribution over the net's
// finite pipeline stages (end stages are virtual and carry no slots) and
// returns the live profile. Calling it again returns the same profile.
// Must be called before the first Step.
func (n *Net) EnableProfile() *obsv.StallProfile {
	if n.prof != nil {
		return n.prof
	}
	// A stage participates if any non-end place stores tokens in it.
	inProfile := make([]bool, len(n.stages))
	for _, p := range n.places {
		if !p.End {
			inProfile[p.Stage.id] = true
		}
	}
	var names []string
	for _, s := range n.stages {
		if inProfile[s.id] {
			n.profStages = append(n.profStages, s)
			names = append(names, s.Name)
		}
	}
	n.profPlaces = make([][]*Place, len(n.profStages))
	for i, s := range n.profStages {
		for _, p := range n.places {
			if !p.End && p.Stage == s {
				n.profPlaces[i] = append(n.profPlaces[i], p)
			}
		}
	}
	n.profFired = make([]int64, len(n.stages))
	for i := range n.profFired {
		n.profFired[i] = -1
	}
	n.prof = obsv.NewStallProfile(names...)
	return n.prof
}

// Profile returns the attached stall profile, or nil.
func (n *Net) Profile() *obsv.StallProfile { return n.prof }

// profileCycle fills one accounting slot per profiled stage for the cycle
// that just executed. Called from Step/stepSweep before the cycle counter
// advances, so n.cycle is still the executed cycle.
func (n *Net) profileCycle() {
	for i, s := range n.profStages {
		if n.profFired[s.id] == n.cycle {
			n.prof.Advance(i)
			continue
		}
		n.prof.Stall(i, n.classifyStage(i))
	}
	n.prof.EndCycle()
}

// classifyStage names the stall of a stage that made no progress this
// cycle: Empty when it holds no instruction token, the first failing
// enabling clause of the oldest ready token's preferred transition when
// one is blocked, and Delay when every resident token is still inside a
// residency delay (or arrived this cycle).
func (n *Net) classifyStage(i int) obsv.StallKind {
	sawToken := false
	for _, p := range n.profPlaces[i] {
		for _, tok := range p.tokens {
			sawToken = true
			if tok.movedAt == n.cycle || !tok.Ready(n.cycle) {
				continue
			}
			return n.classifyToken(p, tok)
		}
		if len(p.staged) > 0 {
			sawToken = true
		}
	}
	if !sawToken {
		return obsv.StallEmpty
	}
	return obsv.StallDelay
}

// classifyToken probes the token's candidate transitions in priority
// order and names the first failing clause of the first blocked one,
// mirroring enabled()'s clause order exactly.
func (n *Net) classifyToken(p *Place, tok *Token) obsv.StallKind {
	cand := p.out[tok.Class]
	if n.dynamicSearch {
		cand = n.candidates(p, tok)
	}
	for _, t := range cand {
		if t.needCap && t.capOf.occupancy >= t.capOf.Capacity {
			return obsv.StallCapacity
		}
		if t.hasRes {
			for _, r := range t.ResIn {
				if r.reservations < 1 {
					return obsv.StallReservation
				}
			}
			for _, r := range t.ResOut {
				need := 1
				if t.From != nil && r.Stage == t.From.Stage {
					need = 0
				}
				if r.Stage.Free() < need {
					return obsv.StallCapacity
				}
			}
		}
		if t.Guard != nil && !t.Guard(tok) {
			if t.Explain != nil {
				return t.Explain(tok)
			}
			return obsv.StallGuard
		}
		// The transition is enabled now but did not fire this cycle (the
		// place was processed before some state changed); count it as a
		// guard-shaped transient.
		return obsv.StallGuard
	}
	return obsv.StallGuard
}

// Seq returns the token's trace sequence number (0 before its first
// traced birth).
func (t *Token) Seq() uint64 { return t.seq }
