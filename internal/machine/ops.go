package machine

import (
	"rcpn/internal/arm"
	"rcpn/internal/obsv"
	"rcpn/internal/reg"
)

// This file contains the operation-class semantics shared by the processor
// models. Each model wires these guard/action bodies into its own RCPN
// transitions; the model file itself then reads like the pipeline block
// diagram (stages, places, and which class takes which path), which is the
// paper's productivity claim (§5: one man-day for StrongARM).
//
// The canonical pairing discipline of §3.1 is kept throughout: every Read /
// ReadIn / ReserveWrite in an action is covered by the matching CanRead /
// CanReadIn / CanWrite (via Peek/readable) in the guard of the same
// transition.

// peekCond purely evaluates the instruction's condition. ready is false
// while the flags are not yet readable (not even over the bypass states).
func (in *Inst) peekCond(bypass []int) (pass, ready bool) {
	if in.psr == nil {
		return true, true
	}
	v, ok := in.psr.Peek(bypass...)
	if !ok {
		return false, false
	}
	f := unpackFlags(v)
	return in.I.Cond.Passes(f.N, f.Z, f.C, f.V), true
}

// IssueReady is the issue-stage guard: flags readable, and — unless the
// condition already fails — source operands readable (register file or
// bypass) and destinations reservable.
func (in *Inst) IssueReady(bypass []int) bool {
	pass, ready := in.peekCond(bypass)
	if !ready {
		return false
	}
	if !pass {
		return true // will be annulled; needs nothing else
	}
	switch in.I.Class {
	case arm.ClassDataProc, arm.ClassMult:
		return readable(in.src1, bypass...) &&
			readable(in.src2, bypass...) &&
			readable(in.src3, bypass...) &&
			(in.dst == nil || in.dst.CanWrite()) &&
			(in.dst2 == nil || in.dst2.CanWrite())

	case arm.ClassLoadStore:
		if !readable(in.src1, bypass...) || !readable(in.src2, bypass...) {
			return false
		}
		if in.baseWriteback() && !in.baseRef().CanWrite() {
			return false
		}
		if in.I.Load {
			return in.dst == nil || in.dst.CanWrite()
		}
		return readable(in.src3, bypass...)

	case arm.ClassLoadStoreM:
		if !readable(in.src1, bypass...) {
			return false
		}
		if in.I.Writeback && (in.lsmBase == nil || !in.lsmBase.CanWrite()) {
			return false
		}
		for _, r := range in.lrefs {
			if r == nil {
				continue
			}
			if in.I.Load {
				if !r.CanWrite() {
					return false
				}
			} else if !readable(r, bypass...) {
				return false
			}
		}
		return true

	case arm.ClassBranch:
		return in.lr == nil || in.lr.CanWrite()

	default: // System
		return readable(in.src1, bypass...)
	}
}

// IssueStallKind sub-classifies a false IssueReady for stall attribution
// (core consults it through Transition.Explain, profiling slow path only):
// a source operand — including the flags — unavailable in the file and on
// every bypass is a RAW wait; otherwise the blocking clause must be a
// destination that cannot be reserved, a writeback-order wait. The clause
// order mirrors IssueReady exactly.
func (in *Inst) IssueStallKind(bypass []int) obsv.StallKind {
	pass, ready := in.peekCond(bypass)
	if !ready {
		return obsv.StallRAW // flags not yet forwardable
	}
	if !pass {
		return obsv.StallGuard // annulled instructions need nothing; not a hazard
	}
	anyUnreadable := func(ops ...reg.Operand) bool {
		for _, op := range ops {
			if !readable(op, bypass...) {
				return true
			}
		}
		return false
	}
	switch in.I.Class {
	case arm.ClassDataProc, arm.ClassMult:
		if anyUnreadable(in.src1, in.src2, in.src3) {
			return obsv.StallRAW
		}
	case arm.ClassLoadStore:
		if anyUnreadable(in.src1, in.src2) {
			return obsv.StallRAW
		}
		if !in.I.Load && !readable(in.src3, bypass...) {
			return obsv.StallRAW
		}
	case arm.ClassLoadStoreM:
		if !readable(in.src1, bypass...) {
			return obsv.StallRAW
		}
		if !in.I.Load {
			for _, r := range in.lrefs {
				if r != nil && !readable(r, bypass...) {
					return obsv.StallRAW
				}
			}
		}
	case arm.ClassBranch:
		// Only the link-register reservation can block a branch.
	default: // System
		if !readable(in.src1, bypass...) {
			return obsv.StallRAW
		}
	}
	return obsv.StallWriteback
}

// Issue is the issue-stage action: read the flags, evaluate the condition
// (annulling the instruction if it fails), read source operands over the
// register file or bypass network, and reserve the destinations.
func (in *Inst) Issue(bypass []int) {
	if in.psr != nil {
		in.readFrom(in.psr, bypass...)
		f := in.flags()
		if !in.I.Cond.Passes(f.N, f.Z, f.C, f.V) {
			in.annulled = true
			return
		}
	}
	switch in.I.Class {
	case arm.ClassDataProc, arm.ClassMult:
		in.readFrom(in.src1, bypass...)
		in.readFrom(in.src2, bypass...)
		in.readFrom(in.src3, bypass...)
		if in.I.Long && in.I.Accum {
			// UMLAL/SMLAL read their destinations as the 64-bit accumulator;
			// the guard established CanWrite, which implies self-readability.
			in.dst.Read()
			in.dst2.Read()
		}
		if in.dst != nil {
			in.dst.ReserveWrite()
		}
		if in.dst2 != nil {
			in.dst2.ReserveWrite()
		}
		if in.writesFlags {
			in.psr.ReserveWrite() // flag writes stack in order (see reg doc)
		}

	case arm.ClassLoadStore:
		in.readFrom(in.src1, bypass...)
		in.readFrom(in.src2, bypass...)
		if in.I.Load {
			if in.dst != nil {
				in.dst.ReserveWrite()
			}
		} else {
			in.readFrom(in.src3, bypass...)
		}
		if in.baseWriteback() {
			in.baseRef().ReserveWrite()
		}

	case arm.ClassLoadStoreM:
		in.readFrom(in.src1, bypass...)
		for _, r := range in.lrefs {
			if r == nil {
				continue
			}
			if in.I.Load {
				r.ReserveWrite()
			} else {
				in.readFrom(r, bypass...)
			}
		}
		if in.I.Writeback && in.lsmBase != nil {
			in.lsmBase.ReserveWrite()
		}

	case arm.ClassBranch:
		if in.lr != nil {
			in.lr.ReserveWrite()
		}

	case arm.ClassSystem:
		in.readFrom(in.src1, bypass...)
	}
}

// baseWriteback reports whether the load/store updates its base register.
func (in *Inst) baseWriteback() bool {
	return in.I.Class == arm.ClassLoadStore && (!in.I.PreIndex || in.I.Writeback)
}

func (in *Inst) baseRef() *reg.Ref {
	r, _ := in.src1.(*reg.Ref)
	return r
}

// Execute is the execute-stage action: compute results into the destination
// Refs (making them available to the bypass network), compute effective
// addresses, and resolve control transfers whose outcome is now known.
func (in *Inst) Execute() {
	i := &in.I
	switch i.Class {
	case arm.ClassDataProc:
		if in.annulled {
			if in.writesPC {
				in.resolveControl(i.Addr + 4)
			}
			return
		}
		var f arm.Flags
		if in.psr != nil {
			f = in.flags()
		}
		rm, rs := opVal(in.src2), opVal(in.src3)
		op2, shiftC := i.Operand2Value(rm, rs, f.C)
		res, nf := arm.AluExec(i.Op, opVal(in.src1), op2, f, shiftC)
		if in.dst != nil {
			in.dst.SetValue(res)
		}
		if in.writesFlags {
			in.psr.SetValue(packFlags(nf))
		}
		if in.writesPC {
			in.resolveControl(res &^ 3)
		}

	case arm.ClassMult:
		if in.annulled {
			return
		}
		var f arm.Flags
		if in.psr != nil {
			f = in.flags()
		}
		var nf arm.Flags
		if i.Long {
			var lo, hi uint32
			lo, hi, nf = arm.MulLongExec(i.SignedMul, i.Accum,
				opVal(in.src1), opVal(in.src2), in.dst2.Value(), in.dst.Value(), f)
			in.dst2.SetValue(lo)
			in.dst.SetValue(hi)
		} else {
			var res uint32
			res, nf = arm.MulExec(i.Accum, opVal(in.src1), opVal(in.src2), opVal(in.src3), f)
			in.dst.SetValue(res)
		}
		if in.writesFlags {
			in.psr.SetValue(packFlags(nf))
		}

	case arm.ClassLoadStore:
		if in.annulled {
			if in.writesPC {
				in.resolveControl(i.Addr + 4)
			}
			return
		}
		base := opVal(in.src1)
		rmVal := opVal(in.src2)
		// Offset semantics live in arm.LSAddress; for immediate forms the
		// Const already holds the offset and LSAddress re-reads i.Imm, which
		// is identical.
		ea, wb, doWB := i.LSAddress(base, rmVal)
		in.ea, in.wbVal = ea, wb
		if doWB && in.baseRef() != nil {
			in.baseRef().SetValue(wb) // bypassable immediately
		}

	case arm.ClassLoadStoreM:
		if in.annulled {
			if in.writesPC {
				in.resolveControl(i.Addr + 4)
			}
			return
		}
		base := opVal(in.src1)
		addrs, final := i.LSMAddresses(base)
		in.lsmAddrs = addrs
		in.wbVal = final
		if i.Writeback && in.lsmBase != nil && !in.lsmLoadsBase() {
			in.lsmBase.SetValue(final)
		}

	case arm.ClassBranch:
		taken := !in.annulled
		target := i.Target()
		actual := i.Addr + 4
		if taken {
			actual = target
		}
		if in.m.Pred != nil {
			in.m.Pred.Update(i.Addr, taken, target)
		}
		if taken && in.lr != nil {
			in.lr.SetValue(i.Addr + 4)
		}
		in.resolveControl(actual)

	case arm.ClassSystem:
		if i.Undefined() && !in.annulled {
			in.m.fail("undefined instruction %#08x at %#08x", i.Raw, i.Addr)
		}
	}
}

// lsmLoadsBase reports whether an LDM loads its own base register (in which
// case the loaded value wins over the base writeback, per ARM7).
func (in *Inst) lsmLoadsBase() bool {
	return in.I.Load && in.I.RegList&(1<<in.I.Rn) != 0
}

// opVal returns an operand's internal value (0 for absent operands).
func opVal(op reg.Operand) uint32 {
	if op == nil {
		return 0
	}
	return op.Value()
}

// MemLatency returns the data-cache latency for this instruction's effective
// address — the paper's "t.delay = mem.delay(addr)" — or 0 for annulled
// instructions and non-memory classes.
func (in *Inst) MemLatency() int64 {
	if in.annulled {
		return 0
	}
	switch in.I.Class {
	case arm.ClassLoadStore:
		if in.m.DCache == nil {
			return 1
		}
		return int64(in.m.DCache.Access(in.ea))
	case arm.ClassLoadStoreM:
		if len(in.lsmAddrs) == 0 {
			return 0
		}
		if in.m.DCache == nil {
			return 1
		}
		return int64(in.m.DCache.Access(in.lsmAddrs[0]))
	}
	return 0
}

// MemAccess performs the functional memory access of a load/store after its
// cache delay elapsed, and resolves loads into the PC.
func (in *Inst) MemAccess() {
	if in.annulled {
		return
	}
	i := &in.I
	m := in.m
	if i.Load {
		v := i.LoadValue(m.Mem, in.ea)
		if in.writesPC {
			in.resolveControl(v &^ 3)
		} else if in.dst != nil {
			in.dst.SetValue(v)
		}
	} else {
		v := opVal(in.src3)
		switch {
		case i.Byte:
			m.Mem.Write8(in.ea, byte(v))
		case i.Half:
			m.Mem.Write16(in.ea, uint16(v))
		default:
			m.Mem.Write32(in.ea, v)
		}
	}
}

// LSMMore reports whether block-transfer micro-operations remain beyond the
// one the final transition will perform.
func (in *Inst) LSMMore() bool {
	return !in.annulled && in.lsmIdx < len(in.lsmAddrs)-1
}

// LSMStep performs one block-transfer micro-operation (one register moved)
// and returns the cache latency for the *next* one. This is the paper's
// footnote 1: "a token may stay in one stage and produce multiple tokens to
// go through the same path and repeat a set of behaviors."
func (in *Inst) LSMStep() int64 {
	in.lsmTransfer(in.lsmIdx)
	in.lsmIdx++
	if in.lsmIdx < len(in.lsmAddrs) && in.m.DCache != nil {
		return int64(in.m.DCache.Access(in.lsmAddrs[in.lsmIdx]))
	}
	return 1
}

// LSMFinish performs the last micro-operation and the base writeback, and
// resolves a PC load.
func (in *Inst) LSMFinish() {
	if in.annulled {
		if in.writesPC {
			in.resolveControl(in.I.Addr + 4)
		}
		return
	}
	in.lsmTransfer(in.lsmIdx)
	in.lsmIdx++
	if in.I.Writeback && in.lsmBase != nil && !in.lsmLoadsBase() {
		in.lsmBase.Writeback()
	}
}

// lsmTransfer moves the k-th listed register (list order = ascending reg
// number = ascending address).
func (in *Inst) lsmTransfer(k int) {
	if k >= len(in.lsmAddrs) {
		return
	}
	i := &in.I
	m := in.m
	addr := in.lsmAddrs[k]
	slot := 0
	for r := arm.Reg(0); r < 16; r++ {
		if i.RegList&(1<<r) == 0 {
			continue
		}
		if slot != k {
			slot++
			continue
		}
		if i.Load {
			v := m.Mem.Read32(addr)
			if r == arm.PC {
				in.resolveControl(v &^ 3)
			} else {
				ref := in.lrefs[k]
				ref.SetValue(v)
				ref.Writeback() // out-of-order completion per register
			}
		} else {
			if r == arm.PC {
				m.Mem.Write32(addr, i.Addr+12)
			} else {
				m.Mem.Write32(addr, in.lrefs[k].Value())
			}
		}
		return
	}
}

// Writeback is the final-stage action: commit results to architected state
// and perform trap effects.
func (in *Inst) Writeback() {
	if in.annulled {
		return
	}
	switch in.I.Class {
	case arm.ClassDataProc, arm.ClassMult:
		if in.dst != nil {
			in.dst.Writeback()
		}
		if in.dst2 != nil {
			in.dst2.Writeback()
		}
		if in.writesFlags {
			in.psr.Writeback()
		}
	case arm.ClassLoadStore:
		if in.I.Load && in.dst != nil {
			in.dst.Writeback()
		}
		if in.baseWriteback() && in.baseRef() != nil {
			in.baseRef().Writeback()
		}
	case arm.ClassBranch:
		if in.lr != nil {
			in.lr.Writeback()
		}
	case arm.ClassSystem:
		if !in.I.Undefined() {
			in.m.syscall(in)
		}
	}
}

// MulLatency returns the multiplier occupancy for this instruction:
// early-terminating on the Rs magnitude, plus one cycle for the 64-bit
// (long) forms.
func (in *Inst) MulLatency() int64 {
	d := mulCycles(opVal(in.src2))
	if in.I.Long {
		d++
	}
	return d
}

// mulCycles models ARM7-style multiplier early termination: the cycle count
// depends on the magnitude of the multiplier operand.
func mulCycles(rs uint32) int64 {
	switch {
	case rs&0xffffff00 == 0 || rs|0xff == 0xffffffff:
		return 1
	case rs&0xffff0000 == 0 || rs|0xffff == 0xffffffff:
		return 2
	case rs&0xff000000 == 0 || rs|0xffffff == 0xffffffff:
		return 3
	default:
		return 4
	}
}
