package serve

import (
	"bytes"
	"context"
	"fmt"

	"rcpn/internal/batch"
	"rcpn/internal/ckpt"
	"rcpn/internal/diffrun"
	"rcpn/internal/faultinj"
	"rcpn/internal/obsv"
	"rcpn/internal/tpar"
)

// This file is the spec executor: everything between "a parsed JobSpec"
// and "final batch.Metrics", with no knowledge of HTTP, the job table, or
// the durable store. The Server drives it for local jobs; a shard worker
// drives the exact same code through ExecuteSpec, which is what makes a
// remotely computed result byte-identical to a local one — there is only
// one execution path to be identical to.

// execEnv is the executor's view of its host: build override, limits,
// progress/observability sinks, and the checkpoint save/load hooks. Every
// callback may be nil except build.
type execEnv struct {
	build     func(*JobSpec) (batch.Stepper, error)
	maxCycles int64 // cap applied when the spec leaves max_cycles unset
	chunk     int64
	fault     *faultinj.Injector
	logf      func(format string, args ...any)
	name      string // short job label for log lines

	// progress receives live counters at every chunk boundary.
	progress func(cycles int64, instret uint64)
	// stalls receives chunk-boundary stall-profile snapshots of a
	// profiled job (what a crashed attempt salvages) and the final one.
	stalls func(*obsv.StallSnapshot)
	// trace receives the rendered Chrome trace JSON of a traced job at
	// the end of the run.
	trace func(json []byte)

	// Checkpoint hooks. loadCkpt yields the latest checkpoint to resume
	// from (nil: always start from scratch); saveCkpt persists one
	// (nil: checkpoints are produced and discarded — the deterministic
	// boundary drains still happen, so cycle counts never depend on
	// whether anyone is saving). discardCkpt abandons an unusable
	// checkpoint; onResume observes a successful restore.
	loadCkpt    func() (raw []byte, instret uint64, cycles int64, ok bool)
	saveCkpt    func(instret uint64, cycles int64, raw []byte)
	discardCkpt func(why string)
	onResume    func()
}

func (env *execEnv) logff(format string, args ...any) {
	if env.logf != nil {
		env.logf(format, args...)
	}
}

func (env *execEnv) setProgress(c int64, i uint64) {
	if env.progress != nil {
		env.progress(c, i)
	}
}

func (env *execEnv) discard(why string) {
	if env.discardCkpt != nil {
		env.discardCkpt(why)
		return
	}
	env.logff("job %s restarting from scratch: %s", env.name, why)
}

// runSpec executes one spec to completion under ctx. Checkpointing specs
// run under DriveCkpt and resume from env.loadCkpt when it has something;
// parallel specs (parallelism > 1) run through internal/tpar.
func runSpec(ctx context.Context, spec *JobSpec, env execEnv) (batch.Metrics, error) {
	if spec.Parallelism > 1 {
		return runParallel(ctx, spec, env)
	}
	st, err := env.build(spec)
	if err != nil {
		return batch.Metrics{}, err
	}
	var prof *obsv.StallProfile
	var tr *obsv.Tracer
	if ins, ok := st.(obsv.Instrumentable); ok {
		if spec.Profile {
			prof = ins.EnableProfile()
		}
		if spec.TraceEvents > 0 {
			tr = obsv.NewTracer(spec.TraceEvents)
			ins.AttachTrace(tr)
		}
	}
	limit := spec.MaxCycles
	if limit <= 0 {
		limit = env.maxCycles
	}
	onProgress := func(c int64, i uint64) {
		env.setProgress(c, i)
		if prof != nil && env.stalls != nil {
			// Chunk-boundary snapshot: what a crashed attempt salvages.
			// Called on the job goroutine between chunks, so the profile is
			// quiescent here.
			env.stalls(prof.Snapshot())
		}
	}
	// finished packages the terminal measurements: the final stall snapshot
	// rides in the metrics (and into the report), the rendered trace goes to
	// the host's sink.
	finished := func(c int64, i uint64) batch.Metrics {
		m := batch.Metrics{Cycles: c, Instret: i}
		if prof != nil {
			m.Stalls = prof.Snapshot()
			if env.stalls != nil {
				env.stalls(m.Stalls)
			}
		}
		if tr != nil && env.trace != nil {
			var buf bytes.Buffer
			if werr := tr.WriteChromeJSON(&buf); werr == nil {
				env.trace(buf.Bytes())
			}
		}
		return m
	}

	if cs, ok := st.(batch.CheckpointStepper); ok && spec.CheckpointInterval > 0 {
		driver := batch.CheckpointStepper(cs)
		if raw, instret, cycles, found := env.load(); found {
			snap, raw := obsv.SplitStalls(raw)
			switch ck, cerr := ckpt.FromBytes(raw); {
			case cerr != nil:
				env.discard(fmt.Sprintf("checkpoint does not decode: %v", cerr))
			default:
				if rerr := cs.Restore(ck); rerr != nil {
					env.discard(fmt.Sprintf("checkpoint does not restore: %v", rerr))
				} else {
					if prof != nil {
						if merr := prof.Merge(snap); merr != nil {
							// The finished profile will only cover the resumed
							// portion; the run itself is unaffected.
							env.logff("job %s checkpoint stall accounting unusable: %v",
								env.name, merr)
						}
					}
					driver = batch.Resumed(cs, cycles)
					onProgress(cycles, instret)
					if env.onResume != nil {
						env.onResume()
					}
					env.logff("job %s resuming from checkpoint at %d retired instructions",
						env.name, instret)
				}
			}
		}
		err = batch.DriveCkpt(ctx, driver, limit, env.chunk, spec.CheckpointInterval,
			env.sink(prof), onProgress)
		c, i := driver.Progress()
		onProgress(c, i)
		return finished(c, i), err
	}

	err = batch.Drive(ctx, st, limit, env.chunk, onProgress)
	c, i := st.Progress()
	onProgress(c, i)
	return finished(c, i), err
}

func (env *execEnv) load() (raw []byte, instret uint64, cycles int64, ok bool) {
	if env.loadCkpt == nil {
		return nil, 0, 0, false
	}
	return env.loadCkpt()
}

// sink encodes each periodic checkpoint and hands it to the host. The
// worker.panic fault site fires first — before the checkpoint is saved —
// so an injected crash loses the current boundary exactly like a real one.
func (env *execEnv) sink(prof *obsv.StallProfile) batch.CheckpointSink {
	return func(instret uint64, cycles int64, ck *ckpt.Checkpoint) error {
		if err := env.fault.Hit(faultinj.SiteWorkerPanic, instret); err != nil {
			return err
		}
		raw, err := ck.Bytes()
		if err != nil {
			env.logff("job %s checkpoint did not encode (skipped): %v", env.name, err)
			return nil
		}
		if prof != nil {
			// The sink runs on the job goroutine at a drained boundary, so
			// the profile is quiescent and describes exactly this boundary.
			// Checkpointing the accounting along with the architected state
			// is what keeps resumed profiled results byte-identical.
			raw = obsv.WrapStalls(prof.Snapshot(), raw)
		}
		if env.saveCkpt != nil {
			env.saveCkpt(instret, cycles, raw)
		}
		return nil
	}
}

// runParallel runs a parallelism > 1 job through internal/tpar, wrapped in
// a tpar.Stepper so the ordinary batch.Drive progress loop — and with it
// SSE streams, /v1/jobs polling and the durable result path — works
// unchanged. The stitched result is a pure function of the spec: segment
// count and stitch mode are in the content address, worker count and
// injected crashes are not and must not show in the result bytes.
func runParallel(ctx context.Context, spec *JobSpec, env execEnv) (batch.Metrics, error) {
	p, err := spec.program()
	if err != nil {
		return batch.Metrics{}, err
	}
	mode, err := tpar.ParseMode(spec.ParallelMode)
	if err != nil {
		return batch.Metrics{}, err
	}
	warm, err := spec.warm()
	if err != nil {
		return batch.Metrics{}, err
	}
	segBuild := func() (batch.CheckpointStepper, func() diffrun.State, error) {
		st, err := env.build(spec)
		if err != nil {
			return nil, nil, err
		}
		cs, ok := st.(batch.CheckpointStepper)
		if !ok {
			return nil, nil, fmt.Errorf("simulator %q cannot run time-parallel: no checkpoint support", spec.Simulator)
		}
		return cs, nil, nil
	}
	limit := spec.MaxCycles
	if limit <= 0 {
		limit = env.maxCycles
	}
	opt := tpar.Options{
		Segments: spec.Parallelism,
		Workers:  spec.Parallelism,
		Mode:     mode,
		Warm:     warm,
		// max_cycles bounds each segment worker's position (a runaway
		// segment is what a hang looks like here); the serial-equivalent
		// total is bounded by Parallelism times this.
		PosBudget: limit,
		Chunk:     env.chunk,
		Context:   ctx,
		Profile:   spec.Profile,
		Fault:     env.fault,
		Logf: func(format string, args ...any) {
			env.logff("job %s "+format, append([]any{env.name}, args...)...)
		},
	}
	st := tpar.NewStepper(p, segBuild, opt)
	err = batch.Drive(ctx, st, 0, env.chunk, env.setProgress)
	if err != nil {
		return batch.Metrics{}, err
	}
	res, err := st.Result()
	if err != nil {
		return batch.Metrics{}, err
	}
	m := batch.Metrics{
		Cycles:  res.Cycles,
		Instret: res.Instret,
		Stalls:  res.Stalls,
		// Host- and fault-independent extras only: worker and reassignment
		// counts vary run to run and would break cached-result
		// byte-identity.
		Extra: map[string]float64{
			"segments": float64(res.Plan.Segments),
			"reruns":   float64(res.Reruns),
			"adopted":  float64(res.Adopted),
		},
	}
	if res.Mode == tpar.Sampled {
		m.Extra["err_bound_pct"] = res.ErrBoundPct
	}
	env.setProgress(res.Cycles, res.Instret)
	if res.Stalls != nil && env.stalls != nil {
		env.stalls(res.Stalls)
	}
	return m, nil
}

// ExecOptions configures ExecuteSpec. The zero value matches the Server's
// defaults, which is what byte-identity requires: a worker must run a spec
// under the same cycle cap a coordinator-local run would use.
type ExecOptions struct {
	// MaxCycles caps specs that leave max_cycles unset (default 1<<32,
	// the Server default).
	MaxCycles int64
	// Chunk is the Drive burst length (default batch.DefaultChunk).
	Chunk int64
	// Fault arms deterministic fault injection. Nil is inert.
	Fault *faultinj.Injector
	// Logf receives executor log lines (default: discarded).
	Logf func(format string, args ...any)
	// Progress receives live counters at every chunk boundary.
	Progress func(cycles int64, instret uint64)
	// Build replaces JobSpec.Build (tests).
	Build func(*JobSpec) (batch.Stepper, error)
}

// ExecuteSpec runs one parsed spec to completion exactly as a Server would
// run it locally, and is the shard worker's execution entry point. It
// returns the final metrics and, for traced specs, the rendered Chrome
// trace JSON. Checkpoints are produced at the spec's deterministic
// boundaries but not persisted — a worker that dies mid-job loses the
// attempt, and the coordinator's reassignment re-runs the spec from
// scratch, which yields the same bytes because execution is deterministic.
func ExecuteSpec(ctx context.Context, spec *JobSpec, opt ExecOptions) (metrics batch.Metrics, trace []byte, err error) {
	if opt.MaxCycles <= 0 {
		opt.MaxCycles = 1 << 32
	}
	build := opt.Build
	if build == nil {
		build = func(sp *JobSpec) (batch.Stepper, error) { return sp.Build() }
	}
	env := execEnv{
		build:     build,
		maxCycles: opt.MaxCycles,
		chunk:     opt.Chunk,
		fault:     opt.Fault,
		logf:      opt.Logf,
		name:      shortID(spec.ID()),
		progress:  opt.Progress,
		trace:     func(b []byte) { trace = b },
	}
	metrics, err = runSpec(ctx, spec, env)
	return metrics, trace, err
}
