package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"rcpn/internal/serve"
)

// TestScheduleDeterministic pins the seeded-arrival contract: same inputs,
// same offsets; different seed, different offsets; offsets ascending with
// a mean gap near 1/rate.
func TestScheduleDeterministic(t *testing.T) {
	for _, kind := range []Arrival{ArrivalExponential, ArrivalUniform} {
		a, err := Schedule(kind, 100, 500, 42)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, _ := Schedule(kind, 100, 500, 42)
		c, _ := Schedule(kind, 100, 500, 43)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: offset %d differs across runs: %v vs %v", kind, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: offsets not ascending at %d", kind, i)
			}
		}
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 42 and 43 produced the same schedule", kind)
		}
		// 500 arrivals at 100/s: the last offset estimates the mean gap.
		mean := a[len(a)-1].Seconds() / float64(len(a))
		if mean < 0.005 || mean > 0.02 {
			t.Errorf("%s: mean gap %.4fs, want near 0.01s", kind, mean)
		}
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	if _, err := Schedule(ArrivalExponential, 0, 10, 1); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := Schedule("bursty", 10, 10, 1); err == nil {
		t.Fatal("unknown arrival accepted")
	}
}

// TestCorpusDeterministicAndValid pins the corpus contract: byte-identical
// across runs with one seed, and every body is a spec the real server-side
// parser accepts with a matching content address.
func TestCorpusDeterministicAndValid(t *testing.T) {
	a, err := BuildCorpus(CorpusConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildCorpus(CorpusConfig{Seed: 7})
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	tenants := map[string]bool{}
	lows := 0
	for i := range a {
		if !bytes.Equal(a[i].Body, b[i].Body) || a[i].Tenant != b[i].Tenant || a[i].Priority != b[i].Priority {
			t.Fatalf("corpus entry %d differs across runs", i)
		}
		spec, err := serve.ParseSpec(bytes.NewReader(a[i].Body))
		if err != nil {
			t.Fatalf("entry %d does not parse: %v", i, err)
		}
		if spec.ID() != a[i].ID {
			t.Fatalf("entry %d: ID %s, server computes %s", i, a[i].ID, spec.ID())
		}
		tenants[a[i].Tenant] = true
		if a[i].Priority == "low" {
			lows++
		}
	}
	if len(tenants) < 2 {
		t.Errorf("corpus uses %d tenants, want a mix", len(tenants))
	}
	if lows == 0 || lows == len(a) {
		t.Errorf("corpus priorities not mixed: %d/%d low", lows, len(a))
	}
}

// TestCorpusKernels pins the kernel-backed corpus mode: every spec names a
// requested kernel (no generated source), parses server-side with a
// matching content address, and the draw is deterministic.
func TestCorpusKernels(t *testing.T) {
	cfg := CorpusConfig{Seed: 9, Programs: 8, Kernels: []string{"crc"}}
	a, err := BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildCorpus(cfg)
	for i := range a {
		if !bytes.Equal(a[i].Body, b[i].Body) {
			t.Fatalf("kernel corpus entry %d differs across runs", i)
		}
		spec, err := serve.ParseSpec(bytes.NewReader(a[i].Body))
		if err != nil {
			t.Fatalf("entry %d does not parse: %v", i, err)
		}
		if spec.Kernel != "crc" || spec.Source != "" {
			t.Fatalf("entry %d: kernel=%q source=%q, want pure kernel spec", i, spec.Kernel, spec.Source)
		}
		if spec.Scale < 1 || spec.Scale > 4 {
			t.Fatalf("entry %d: scale %d outside the default 1/2/4 mix", i, spec.Scale)
		}
		if spec.ID() != a[i].ID {
			t.Fatalf("entry %d: ID %s, server computes %s", i, a[i].ID, spec.ID())
		}
	}
}

// TestHistogramQuantilesVsSort checks the bucketed quantiles against a
// brute-force sort: the histogram must answer within its ~6% bucket
// resolution, never below the true value and never above the recorded max.
func TestHistogramQuantilesVsSort(t *testing.T) {
	r := rng{s: 99}
	var h Histogram
	vals := make([]int64, 10_000)
	for i := range vals {
		// Mix three scales so every octave path is exercised.
		switch i % 3 {
		case 0:
			vals[i] = int64(r.intn(30)) // exact region
		case 1:
			vals[i] = int64(r.intn(100_000))
		default:
			vals[i] = int64(r.intn(50_000_000))
		}
		h.Record(vals[i])
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		target := int(q * float64(len(sorted)))
		if target < 1 {
			target = 1
		}
		want := sorted[target-1]
		got := h.Quantile(q)
		if got < want {
			t.Errorf("q=%.2f: histogram %d below true %d", q, got, want)
		}
		if got > want+want/16+1 {
			t.Errorf("q=%.2f: histogram %d above bucket resolution of true %d", q, got, want)
		}
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Errorf("Max = %d, want %d", h.Max(), sorted[len(sorted)-1])
	}
	if h.Count() != uint64(len(vals)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(vals))
	}
}

// TestHistogramBucketRoundTrip pins the bucket mapping: every bucket's
// representative value maps back to the same bucket, and bucket indexes
// are monotone in the value.
func TestHistogramBucketRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets-1; i++ {
		v := histValue(i)
		if got := histBucket(v); got != i {
			t.Fatalf("histBucket(histValue(%d)) = %d", i, got)
		}
	}
	prev := -1
	for v := int64(0); v < 1<<20; v += 37 {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		prev = b
	}
}

// TestReportRoundTrip pins the rcpn-load/v1 JSON contract.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: Schema, Seed: 5, Arrival: "exponential",
		OfferedRate: 100, AchievedRate: 80,
		Submitted: 10, Accepted: 7, Cached: 1, Coalesced: 1,
		Rejected429: 2, Rejected503: 1,
		Done: 6, Failed: 1,
		Latency:     Quantiles{P50: 1.5, P95: 9, P99: 20, Max: 21, Mean: 3},
		WallSeconds: 2, SimCycles: 1_000_000, MCyclesPerSec: 0.5,
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(rep.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *rep {
		t.Fatalf("round trip changed the report:\n%+v\n%+v", back, rep)
	}

	for _, breakIt := range []func(r *Report){
		func(r *Report) { r.Schema = "rcpn-load/v0" },
		func(r *Report) { r.Accepted++ },
		func(r *Report) { r.Done++ },
		func(r *Report) { r.SimCycles = -1 },
	} {
		bad := *rep
		breakIt(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid report accepted: %+v", bad)
		}
	}
}

// frozenClock is time standing still: every latency measures 0, every
// sleep returns immediately, so a run against a stub server is fully
// deterministic regardless of goroutine interleaving.
type frozenClock struct{ at time.Time }

func (c frozenClock) Now() time.Time      { return c.at }
func (c frozenClock) Sleep(time.Duration) {}

// stubServer answers the two endpoints the runner uses with responses that
// depend only on the request bytes — never on arrival order — so the whole
// run is a pure function of the seed.
func stubServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if r.Header.Get("X-Tenant") == "tenant-0" {
			// Deterministic quota shed: one tenant is always over quota.
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"tenant quota exhausted"}`)
			return
		}
		sum := sha256.Sum256(body)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q,"state":"queued"}`, hex.EncodeToString(sum[:]))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// Cycle count derived from the id so distinct jobs contribute
		// distinct, reproducible work.
		var n int64
		for i := 0; i < 8; i++ {
			n = n<<4 + int64(id[i]&0xf)
		}
		fmt.Fprintf(w, `{"id":%q,"state":"done","result":{"schema":"rcpn-batch/v1","jobs":[{"cycles":%d}]}}`, id, n%100_000)
	})
	return httptest.NewServer(mux)
}

// TestRunnerDeterministicAgainstStub runs the same seed twice against the
// stub server under a frozen clock and requires byte-identical reports —
// the determinism contract cmd/rcpnload inherits.
func TestRunnerDeterministicAgainstStub(t *testing.T) {
	srv := stubServer(t)
	defer srv.Close()

	run := func() []byte {
		ld, err := New(Config{
			Target: srv.URL, Seed: 11, Jobs: 60, Rate: 1000,
			Clock:  frozenClock{at: time.Unix(1_700_000_000, 0)},
			Client: srv.Client(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ld.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep.JSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different reports:\n%s\n---\n%s", a, b)
	}

	rep, err := ParseReport(a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 60 || rep.Accepted+rep.Rejected429 != 60 || rep.Rejected429 == 0 {
		t.Fatalf("unexpected partition: %+v", rep)
	}
	if rep.Done != rep.Accepted || rep.SimCycles <= 0 {
		t.Fatalf("stub jobs did not all finish: %+v", rep)
	}
	if !strings.Contains(string(a), `"schema": "rcpn-load/v1"`) {
		t.Fatalf("report missing schema tag:\n%s", a)
	}
}

// TestRunnerAgainstLiveServer is the in-process end-to-end check: a real
// serve.Server executes a small corpus of generated programs submitted at
// a high offered rate, and the report's accounting must hold.
func TestRunnerAgainstLiveServer(t *testing.T) {
	s, err := serve.New(serve.Config{Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(0)
	srv := httptest.NewServer(s)
	defer srv.Close()

	ld, err := New(Config{
		Target: srv.URL, Seed: 3, Jobs: 24, Rate: 2000,
		Corpus:       CorpusConfig{Seed: 3, Programs: 6, MaxCycles: []int64{20_000}},
		PollInterval: 5 * time.Millisecond,
		WaitTimeout:  time.Minute,
		Client:       srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ld.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done == 0 {
		t.Fatalf("no jobs finished: %+v", rep)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("%d jobs incomplete: %+v", rep.Incomplete, rep)
	}
	if rep.SimCycles <= 0 || rep.MCyclesPerSec <= 0 {
		t.Fatalf("no simulated work recorded: %+v", rep)
	}
	// 24 submissions over 6 distinct specs: dedup must have answered some
	// from cache or coalescing.
	if rep.Cached+rep.Coalesced == 0 {
		t.Errorf("no dedup observed across %d submissions of %d specs", rep.Submitted, 6)
	}
}
