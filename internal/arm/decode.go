package arm

import "fmt"

// Decode decodes one ARM instruction word fetched from addr into its
// operation class and fields. It never fails for the supported subset;
// words outside the subset decode to ClassSystem with SWINum = ^0 so the
// simulators can trap them as undefined instructions.
func Decode(raw, addr uint32) Instr {
	ins := Instr{
		Raw:  raw,
		Addr: addr,
		Cond: Cond(raw >> 28),
	}
	switch {
	case raw&0x0f000000 == 0x0f000000: // SWI
		ins.Class = ClassSystem
		ins.SWINum = raw & 0x00ffffff

	case raw&0x0e000000 == 0x0a000000: // B / BL
		ins.Class = ClassBranch
		ins.Link = raw&(1<<24) != 0
		off := int32(raw<<8) >> 8 // sign-extend 24-bit word offset
		ins.BrOff = off

	case raw&0x0fc000f0 == 0x00000090: // MUL / MLA
		ins.Class = ClassMult
		ins.Accum = raw&(1<<21) != 0
		ins.SetFlags = raw&(1<<20) != 0
		ins.Rd = Reg(raw >> 16 & 15)
		ins.Rn = Reg(raw >> 12 & 15) // accumulator
		ins.Rs = Reg(raw >> 8 & 15)
		ins.Rm = Reg(raw & 15)

	case raw&0x0f8000f0 == 0x00800090: // UMULL/UMLAL/SMULL/SMLAL
		ins.Class = ClassMult
		ins.Long = true
		ins.SignedMul = raw&(1<<22) != 0
		ins.Accum = raw&(1<<21) != 0
		ins.SetFlags = raw&(1<<20) != 0
		ins.Rd = Reg(raw >> 16 & 15) // RdHi
		ins.Rn = Reg(raw >> 12 & 15) // RdLo
		ins.Rs = Reg(raw >> 8 & 15)
		ins.Rm = Reg(raw & 15)

	case raw&0x0e000090 == 0x00000090 && raw>>5&3 != 0: // LDRH/STRH/LDRSB/LDRSH
		ins.Class = ClassLoadStore
		ins.PreIndex = raw&(1<<24) != 0
		ins.Up = raw&(1<<23) != 0
		ins.Writeback = raw&(1<<21) != 0
		ins.Load = raw&(1<<20) != 0
		ins.Rn = Reg(raw >> 16 & 15)
		ins.Rd = Reg(raw >> 12 & 15)
		switch raw >> 5 & 3 {
		case 1: // unsigned halfword
			ins.Half = true
		case 2: // signed byte (loads only)
			ins.Byte = true
			ins.SignedLoad = true
		case 3: // signed halfword (loads only)
			ins.Half = true
			ins.SignedLoad = true
		}
		if raw&(1<<22) != 0 { // split 8-bit immediate offset
			ins.HasImm = true
			ins.Imm = raw>>4&0xf0 | raw&0x0f
		} else { // plain register offset (no shift)
			ins.Rm = Reg(raw & 15)
		}

	case raw&0x0c000000 == 0x04000000: // LDR / STR
		ins.Class = ClassLoadStore
		ins.PreIndex = raw&(1<<24) != 0
		ins.Up = raw&(1<<23) != 0
		ins.Byte = raw&(1<<22) != 0
		ins.Writeback = raw&(1<<21) != 0
		ins.Load = raw&(1<<20) != 0
		ins.Rn = Reg(raw >> 16 & 15)
		ins.Rd = Reg(raw >> 12 & 15)
		if raw&(1<<25) == 0 { // immediate 12-bit offset
			ins.HasImm = true
			ins.Imm = raw & 0xfff
		} else { // (scaled) register offset
			ins.Rm = Reg(raw & 15)
			ins.ShiftTyp = Shift(raw >> 5 & 3)
			ins.ShiftAmt = uint8(raw >> 7 & 31)
		}

	case raw&0x0e000000 == 0x08000000: // LDM / STM
		ins.Class = ClassLoadStoreM
		ins.PreIndex = raw&(1<<24) != 0
		ins.Up = raw&(1<<23) != 0
		ins.Writeback = raw&(1<<21) != 0
		ins.Load = raw&(1<<20) != 0
		ins.Rn = Reg(raw >> 16 & 15)
		ins.RegList = uint16(raw)

	case raw&0x0c000000 == 0x00000000: // data processing
		ins.Class = ClassDataProc
		ins.Op = DPOp(raw >> 21 & 15)
		ins.SetFlags = raw&(1<<20) != 0
		ins.Rn = Reg(raw >> 16 & 15)
		ins.Rd = Reg(raw >> 12 & 15)
		if raw&(1<<25) != 0 { // rotated 8-bit immediate
			ins.HasImm = true
			rot := (raw >> 8 & 15) * 2
			v := raw & 0xff
			if rot != 0 {
				v = v>>rot | v<<(32-rot)
			}
			ins.Imm = v
			ins.ShiftAmt = uint8(rot) // kept for carry-out semantics
		} else {
			ins.Rm = Reg(raw & 15)
			ins.ShiftTyp = Shift(raw >> 5 & 3)
			if raw&(1<<4) != 0 { // register shift amount
				ins.ShiftReg = true
				ins.Rs = Reg(raw >> 8 & 15)
			} else {
				ins.ShiftAmt = uint8(raw >> 7 & 31)
			}
		}

	default: // unsupported space (coprocessor etc.)
		ins.Class = ClassSystem
		ins.SWINum = ^uint32(0)
	}
	return ins
}

// Undefined reports whether a decoded instruction fell outside the supported
// subset.
func (i *Instr) Undefined() bool {
	return i.Class == ClassSystem && i.SWINum == ^uint32(0)
}

func (i *Instr) String() string {
	return fmt.Sprintf("%08x: %s", i.Addr, Disassemble(i))
}
