package arm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a flat little-endian image to be
// loaded at Base, plus the resolved symbol table.
type Program struct {
	Base    uint32
	Entry   uint32
	Bytes   []byte
	Symbols map[string]uint32
}

// Words returns the image as instruction words (the image is padded to a
// multiple of 4 by the assembler).
func (p *Program) Words() []uint32 {
	out := make([]uint32, len(p.Bytes)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p.Bytes[4*i:])
	}
	return out
}

// AsmError reports an assembly failure with its source line.
type AsmError struct {
	Line int
	Text string
	Err  error
}

func (e *AsmError) Error() string {
	return fmt.Sprintf("asm: line %d (%q): %v", e.Line, strings.TrimSpace(e.Text), e.Err)
}

func (e *AsmError) Unwrap() error { return e.Err }

// Assemble translates ARM assembly text into a Program loaded at base.
// The syntax is classic ARM: one instruction or directive per line, labels
// ending in ':', comments beginning with ';', '@' or "//". Supported
// directives: .word, .byte, .space, .align, .ltorg (and .text/.data/.global,
// which are accepted and ignored). "ldr rd, =expr" literal-pool loads are
// supported; the pool is flushed at .ltorg directives and at the end.
// If a label "_start" exists it becomes the entry point, otherwise base.
func Assemble(src string, base uint32) (*Program, error) {
	a := &assembler{base: base, symbols: map[string]uint32{}}
	lines := strings.Split(src, "\n")

	// Pass 1: sizes and label addresses.
	if err := a.scan(lines); err != nil {
		return nil, err
	}
	// Pass 2: encoding.
	if err := a.emit(lines); err != nil {
		return nil, err
	}

	entry := base
	if e, ok := a.symbols["_start"]; ok {
		entry = e
	}
	return &Program{Base: base, Entry: entry, Bytes: a.out, Symbols: a.symbols}, nil
}

// litFixup records an "ldr rd, =expr" whose pc-relative offset can only be
// filled in when the literal pool is flushed.
type litFixup struct {
	outPos    int    // byte offset of the ldr word in out
	instrAddr uint32 // address of the ldr
	expr      string
}

type assembler struct {
	base    uint32
	pc      uint32
	out     []byte
	symbols map[string]uint32

	pass     int
	fixups   []litFixup     // pending literal loads awaiting a pool
	litIdx   map[string]int // dedupe within one pending pool
	poolSize uint32         // pass-1 accumulated size of pending pool
}

func splitComment(l string) string {
	for i := 0; i < len(l); i++ {
		switch l[i] {
		case ';', '@':
			return l[:i]
		case '/':
			if i+1 < len(l) && l[i+1] == '/' {
				return l[:i]
			}
		}
	}
	return l
}

// scan is pass 1: compute label addresses by sizing every line.
func (a *assembler) scan(lines []string) error {
	a.pass = 1
	a.pc = a.base
	a.poolSize = 0
	a.litIdx = map[string]int{}
	for ln, raw := range lines {
		line := strings.TrimSpace(splitComment(raw))
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t[") {
				break
			}
			name := strings.TrimSpace(line[:i])
			if name == "" {
				return &AsmError{ln + 1, raw, fmt.Errorf("empty label")}
			}
			if _, dup := a.symbols[name]; dup {
				return &AsmError{ln + 1, raw, fmt.Errorf("duplicate label %q", name)}
			}
			a.symbols[name] = a.pc
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		n, err := a.sizeOf(line)
		if err != nil {
			return &AsmError{ln + 1, raw, err}
		}
		a.pc += n
	}
	// Implicit .ltorg at end.
	a.pc = align4(a.pc)
	a.pc += a.poolSize
	return nil
}

func align4(v uint32) uint32 { return (v + 3) &^ 3 }

// sizeOf returns the size in bytes a source line occupies.
func (a *assembler) sizeOf(line string) (uint32, error) {
	mn, rest := splitMnemonic(line)
	switch mn {
	case ".word":
		return 4 * uint32(len(splitOperands(rest))), nil
	case ".byte":
		return uint32(len(splitOperands(rest))), nil
	case ".asciz":
		s, err := parseStringLit(rest)
		if err != nil {
			return 0, err
		}
		return uint32(len(s) + 1), nil
	case ".space":
		n, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 32)
		if err != nil {
			return 0, fmt.Errorf(".space size: %v", err)
		}
		return uint32(n), nil
	case ".align":
		return align4(a.pc) - a.pc, nil
	case ".ltorg":
		n := align4(a.pc) - a.pc + a.poolSize
		a.poolSize = 0
		a.litIdx = map[string]int{}
		return n, nil
	case ".text", ".data", ".global", ".globl", ".code":
		return 0, nil
	}
	if strings.HasPrefix(mn, ".") {
		return 0, fmt.Errorf("unknown directive %s", mn)
	}
	// Instruction. "ldr rd, =expr" also reserves a pool slot.
	if (strings.HasPrefix(mn, "ldr") || mn == "ldr") && strings.Contains(rest, "=") {
		ops := splitOperands(rest)
		if len(ops) == 2 && strings.HasPrefix(strings.TrimSpace(ops[1]), "=") {
			expr := strings.TrimSpace(ops[1])[1:]
			if _, ok := a.litIdx[expr]; !ok {
				a.litIdx[expr] = 1
				a.poolSize += 4
			}
		}
	}
	return 4, nil
}

// emit is pass 2: encode every line into a.out.
func (a *assembler) emit(lines []string) error {
	a.pass = 2
	a.pc = a.base
	a.out = a.out[:0]
	a.fixups = nil
	a.litIdx = map[string]int{}
	for ln, raw := range lines {
		line := strings.TrimSpace(splitComment(raw))
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t[") {
				break
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := a.emitLine(line); err != nil {
			return &AsmError{ln + 1, raw, err}
		}
	}
	if err := a.flushPool(); err != nil {
		return err
	}
	// Pad to word size for Words().
	for len(a.out)%4 != 0 {
		a.emitByte(0)
	}
	return nil
}

func (a *assembler) emitByte(b byte) {
	a.out = append(a.out, b)
	a.pc++
}

func (a *assembler) emitWord(w uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w)
	a.out = append(a.out, b[:]...)
	a.pc += 4
}

// flushPool lays out the pending literal pool at the current pc, then
// patches every recorded "ldr rd, =expr" with its pc-relative offset.
func (a *assembler) flushPool() error {
	if len(a.fixups) == 0 {
		return nil
	}
	for a.pc%4 != 0 {
		a.emitByte(0)
	}
	slot := map[string]uint32{}
	for _, f := range a.fixups {
		if _, ok := slot[f.expr]; ok {
			continue
		}
		v, err := a.eval(f.expr)
		if err != nil {
			return err
		}
		slot[f.expr] = a.pc
		a.emitWord(v)
	}
	for _, f := range a.fixups {
		diff := int64(slot[f.expr]) - int64(f.instrAddr) - 8
		up := true
		if diff < 0 {
			up, diff = false, -diff
		}
		if diff > 0xfff {
			return fmt.Errorf("literal pool for %q out of range (%d bytes)", f.expr, diff)
		}
		w := binary.LittleEndian.Uint32(a.out[f.outPos:])
		w |= uint32(diff) & 0xfff
		if up {
			w |= 1 << 23
		}
		binary.LittleEndian.PutUint32(a.out[f.outPos:], w)
	}
	a.fixups = nil
	a.litIdx = map[string]int{}
	return nil
}

func (a *assembler) emitLine(line string) error {
	mn, rest := splitMnemonic(line)
	switch mn {
	case ".word":
		for _, op := range splitOperands(rest) {
			v, err := a.eval(op)
			if err != nil {
				return err
			}
			a.emitWord(v)
		}
		return nil
	case ".byte":
		for _, op := range splitOperands(rest) {
			v, err := a.eval(op)
			if err != nil {
				return err
			}
			a.emitByte(byte(v))
		}
		return nil
	case ".asciz":
		s, err := parseStringLit(rest)
		if err != nil {
			return err
		}
		for i := 0; i < len(s); i++ {
			a.emitByte(s[i])
		}
		a.emitByte(0)
		return nil
	case ".space":
		n, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 32)
		if err != nil {
			return err
		}
		for i := uint32(0); i < uint32(n); i++ {
			a.emitByte(0)
		}
		return nil
	case ".align":
		for a.pc%4 != 0 {
			a.emitByte(0)
		}
		return nil
	case ".ltorg":
		return a.flushPool()
	case ".text", ".data", ".global", ".globl", ".code":
		return nil
	}
	if strings.HasPrefix(mn, ".") {
		return fmt.Errorf("unknown directive %s", mn)
	}
	w, err := a.encodeInstr(mn, rest)
	if err != nil {
		return err
	}
	a.emitWord(w)
	return nil
}
