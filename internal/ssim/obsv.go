package ssim

import "rcpn/internal/obsv"

// Observability for the SimpleScalar-style baseline. The profiled stages
// are sim-outorder's main-loop phases (fetch, dispatch, issue, commit);
// each phase accounts exactly one slot per cycle through profSlot, so the
// Occupied + stalls == cycles partition holds by construction. Writeback
// is event-driven (the completion queue) and has no per-cycle slot of its
// own. Sim implements obsv.Instrumentable.

const (
	stFetch = iota
	stDispatch
	stIssue
	stCommit
)

var stageNames = []string{"fetch", "dispatch", "issue", "commit"}

// Trace operation indices (Tracer.Ops). All events happen to the RUU
// record, so the single trace location is the RUU window itself.
const (
	opDispatch = iota
	opIssue
	opComplete
	opCommit
)

var opNames = []string{"dispatch", "issue", "complete", "commit"}

// AttachTrace routes RUU record lifecycles into tr. Must be called before
// the first cycle.
func (s *Sim) AttachTrace(tr *obsv.Tracer) {
	tr.Locs = []string{"ruu"}
	tr.Ops = append([]string(nil), opNames...)
	s.tr = tr
}

// EnableProfile turns on per-cycle stall attribution over the main-loop
// phases and returns the live profile. Must be called before the first
// cycle; calling it again returns the same profile.
func (s *Sim) EnableProfile() *obsv.StallProfile {
	if s.prof == nil {
		s.prof = obsv.NewStallProfile(stageNames...)
	}
	return s.prof
}

// Profile returns the attached stall profile, or nil.
func (s *Sim) Profile() *obsv.StallProfile { return s.prof }

// profSlot accounts the one slot phase st owns this cycle: forward
// progress when the phase processed n >= 1 entries, otherwise a stall of
// kind k.
func (s *Sim) profSlot(st, n int, k obsv.StallKind) {
	if s.prof == nil {
		return
	}
	if n > 0 {
		s.prof.Advance(st)
	} else {
		s.prof.Stall(st, k)
	}
}
