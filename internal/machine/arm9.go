package machine

import "rcpn/internal/arm"

// StrongARMSpec is the five-stage SA-110 written in the declarative layer.
// Generate(p, StrongARMSpec(), cfg) produces a simulator cycle-identical to
// the hand-built NewStrongARM (the generation-equivalence test enforces
// this), demonstrating that the Spec layer loses nothing against
// hand-written model code.
func StrongARMSpec() Spec {
	route := func() []Seg {
		return []Seg{
			{Stage: "FD", Exit: RoleIssue},
			{Stage: "EX", Exit: RoleExecute},
			{Stage: "ME", Exit: RoleMem},
			{Stage: "WB", Exit: RoleWriteback},
		}
	}
	routes := map[arm.Class][]Seg{}
	for c := arm.Class(0); c < arm.NumClasses; c++ {
		routes[c] = route()
	}
	return Spec{
		Name: "strongarm-gen",
		Stages: []StageSpec{
			{Name: "FD"}, {Name: "EX"}, {Name: "ME"}, {Name: "WB"},
		},
		FrontEnd: []string{"FD"},
		Routes:   routes,
		Bypass:   []string{"ME", "WB"},
	}
}

// ARM9Spec describes an ARM9TDMI-like machine: the same classic in-order
// organization as the StrongARM but with a two-stage fetch (the ARM9 splits
// fetch and decode further), which deepens the taken-branch penalty by one
// cycle.
func ARM9Spec() Spec {
	route := func() []Seg {
		return []Seg{
			{Stage: "DE", Exit: RoleIssue},
			{Stage: "EX", Exit: RoleExecute},
			{Stage: "ME", Exit: RoleMem},
			{Stage: "WB", Exit: RoleWriteback},
		}
	}
	routes := map[arm.Class][]Seg{}
	for c := arm.Class(0); c < arm.NumClasses; c++ {
		routes[c] = route()
	}
	return Spec{
		Name: "arm9",
		Stages: []StageSpec{
			{Name: "F1"}, {Name: "DE"}, {Name: "EX"}, {Name: "ME"}, {Name: "WB"},
		},
		FrontEnd: []string{"F1", "DE"},
		Routes:   routes,
		Bypass:   []string{"ME", "WB"},
	}
}

// NewARM9 builds the ARM9-like model from its Spec — a third processor that
// exists purely through the declarative layer.
func NewARM9(p *arm.Program, cfg Config) (*Machine, error) {
	return Generate(p, ARM9Spec(), cfg)
}

// XScaleSpec is the Fig. 9 XScale written declaratively: a four-stage
// shared front end and three parallel back ends (ALU, memory, MAC). The
// generation-equivalence test pins it cycle-identical to the hand-built
// NewXScale. Pass xscale units (32KB caches, bimodal predictor) in the
// Config; Generate's defaults are StrongARM-class.
func XScaleSpec() Spec {
	alu := []Seg{
		{Stage: "RF", Exit: RoleIssue},
		{Stage: "X1", Exit: RoleExecute},
		{Stage: "X2", Exit: RoleWriteback},
	}
	memPipe := []Seg{
		{Stage: "RF", Exit: RoleIssue},
		{Stage: "D1", Exit: RoleExecute},
		{Stage: "D2", Exit: RoleMemWriteback},
	}
	mac := []Seg{
		{Stage: "RF", Exit: RoleIssue},
		{Stage: "M1", Exit: RoleExecute},
		{Stage: "M2", Exit: RoleWriteback},
	}
	return Spec{
		Name: "xscale-gen",
		Stages: []StageSpec{
			{Name: "F1"}, {Name: "F2"}, {Name: "ID"}, {Name: "RF"},
			{Name: "X1"}, {Name: "X2"},
			{Name: "D1"}, {Name: "D2"},
			{Name: "M1"}, {Name: "M2"},
		},
		FrontEnd: []string{"F1", "F2", "ID", "RF"},
		Routes: map[arm.Class][]Seg{
			arm.ClassDataProc:   alu,
			arm.ClassBranch:     alu,
			arm.ClassSystem:     alu,
			arm.ClassLoadStore:  memPipe,
			arm.ClassLoadStoreM: memPipe,
			arm.ClassMult:       mac,
		},
		Bypass:   []string{"X2", "D2", "M2"},
		MACExtra: 1,
	}
}
