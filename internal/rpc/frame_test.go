package rpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundTrip: AppendFrame → DecodeFrame and AppendFrame →
// ReadFrame are identities over a spread of payload sizes, including
// empty, and frames concatenate cleanly.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		{0},
		[]byte("hello"),
		bytes.Repeat([]byte{0xa5}, 127),
		bytes.Repeat([]byte{0x5a}, 128), // varint length rolls to 2 bytes
		bytes.Repeat([]byte("rcpn"), 64<<10),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	rest := stream
	for i, want := range payloads {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload %q, want %q", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after all frames", len(rest))
	}

	br := bufio.NewReader(bytes.NewReader(stream))
	for i, want := range payloads {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("ReadFrame %d: payload mismatch", i)
		}
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("ReadFrame at stream end = %v, want io.EOF", err)
	}
}

// TestFrameTruncatedTail: every strict prefix of a valid frame fails with
// ErrFrameTruncated — never a bogus success, never a crash.
func TestFrameTruncatedTail(t *testing.T) {
	frame := AppendFrame(nil, []byte("truncate me at every byte"))
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("DecodeFrame(frame[:%d]) = %v, want ErrFrameTruncated", cut, err)
		}
		if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame[:cut]))); err == nil {
			t.Fatalf("ReadFrame(frame[:%d]) succeeded", cut)
		}
	}
}

// TestFrameBadCRC: flipping any payload or CRC byte is detected.
func TestFrameBadCRC(t *testing.T) {
	frame := AppendFrame(nil, []byte("checksummed payload"))
	for i := 1; i < len(frame); i++ { // byte 0 is the length varint
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x01
		if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("flip byte %d: DecodeFrame = %v, want ErrFrameCRC", i, err)
		}
		if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad))); !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("flip byte %d: ReadFrame = %v, want ErrFrameCRC", i, err)
		}
	}
}

// TestFrameOversizedLength: a length prefix beyond MaxFrame is rejected
// before any allocation, both for in-buffer decode and stream reads.
func TestFrameOversizedLength(t *testing.T) {
	huge := binary.AppendUvarint(nil, MaxFrame+1)
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame = %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame = %v, want ErrFrameTooLarge", err)
	}
	// uvarint overflow (11 bytes of 0xff) must also be rejected.
	overflow := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := DecodeFrame(overflow); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame(overflow varint) = %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(overflow))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame(overflow varint) = %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameNonCanonicalLength: a zero-padded length varint is corruption
// (the length byte is outside the CRC) and must be rejected, not decoded.
func TestFrameNonCanonicalLength(t *testing.T) {
	// 0x80 0x00 encodes length 0 in two bytes; the canonical form is one.
	padded := append([]byte{0x80, 0x00}, 0, 0, 0, 0) // + CRC32(“”) is 0x00000000
	if _, _, err := DecodeFrame(padded); !errors.Is(err, ErrFrameLength) {
		t.Fatalf("DecodeFrame(padded varint) = %v, want ErrFrameLength", err)
	}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(padded))); !errors.Is(err, ErrFrameLength) {
		t.Fatalf("ReadFrame(padded varint) = %v, want ErrFrameLength", err)
	}
}

// FuzzDecodeFrame: DecodeFrame must never panic, never claim more bytes
// than it was given, and on success must round-trip through AppendFrame.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, nil))
	f.Add(AppendFrame(nil, []byte("seed payload")))
	f.Add(AppendFrame(nil, Encode(Ping{Seq: 7})))
	f.Add(AppendFrame(nil, Encode(Submit{ID: "abc", Spec: []byte(`{"simulator":"pipe5"}`)})))
	f.Add(AppendFrame(AppendFrame(nil, []byte("two")), []byte("frames")))
	f.Add(binary.AppendUvarint(nil, MaxFrame+1))
	f.Add(bytes.Repeat([]byte{0xff}, 16))
	corrupted := AppendFrame(nil, []byte("about to corrupt"))
	corrupted[len(corrupted)/2] ^= 0x40
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeFrame claimed %d of %d bytes", n, len(data))
		}
		re := AppendFrame(nil, payload)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
		}
		// A decodable payload must also never panic the message parser.
		DecodeMsg(payload) //nolint:errcheck // only panics matter here
	})
}
