package workload

import "fmt"

// g721Source is the MediaBench g721 kernel: the ADPCM predictor/quantizer
// arithmetic that dominates g721 encode — a six-tap adaptive FIR predictor
// updated with sign-LMS steps, plus a compare-ladder log2 quantizer. The
// loop is multiply/accumulate heavy (six MLAs for the prediction and six
// MULs for the update per sample), matching the benchmark's character.
func g721Source(scale int) string {
	samples := 1024 * scale
	return fmt.Sprintf(`
; g721 kernel (MediaBench g721) — %[1]d samples through a 6-tap adaptive
; predictor with sign-LMS coefficient update and a 4-bit log quantizer.
;
; memory: w[6] coefficients (Q12), x[6] delay line
; registers: r4 = sample  r5 = LCG  r6 = loop  r8 = checksum
_start:
	ldr r5, =0x13579bdf
	ldr r6, =%[1]d
	mov r8, #0
	mov r4, #0
sample_loop:
	; input: bounded random walk
	ldr r0, =1664525
	ldr r1, =1013904223
	mla r5, r5, r0, r1
	mov r0, r5, lsr #25       ; 0..127
	sub r0, r0, #64
	add r4, r4, r0
	ldr r0, =8191
	cmp r4, r0
	movgt r4, r0
	ldr r0, =-8192
	cmp r4, r0
	movlt r4, r0

	; prediction = (sum w[i]*x[i]) >> 12
	ldr r9, =wtab
	ldr r10, =xtab
	mov r0, #0
	ldr r1, [r9]
	ldr r2, [r10]
	mla r0, r1, r2, r0
	ldr r1, [r9, #4]
	ldr r2, [r10, #4]
	mla r0, r1, r2, r0
	ldr r1, [r9, #8]
	ldr r2, [r10, #8]
	mla r0, r1, r2, r0
	ldr r1, [r9, #12]
	ldr r2, [r10, #12]
	mla r0, r1, r2, r0
	ldr r1, [r9, #16]
	ldr r2, [r10, #16]
	mla r0, r1, r2, r0
	ldr r1, [r9, #20]
	ldr r2, [r10, #20]
	mla r0, r1, r2, r0
	mov r0, r0, asr #12       ; prediction

	; err = sample - prediction; sign in r12
	subs r1, r4, r0
	mov r12, #0
	rsblt r1, r1, #0
	movlt r12, #8

	; 3-bit magnitude via compare ladder (log-ish quantizer)
	mov r2, #0
	cmp r1, #16
	movge r2, #1
	cmp r1, #64
	movge r2, #2
	cmp r1, #256
	movge r2, #3
	cmp r1, #1024
	movge r2, #4
	ldr r0, =4096
	cmp r1, r0
	movge r2, #5
	orr r2, r2, r12           ; 4-bit code

	; sign-LMS update: w[i] += sign(err) * (x[i] >> 4)
	ldr r9, =wtab
	ldr r10, =xtab
	mov r3, #6
update_loop:
	ldr r0, [r10], #4
	mov r0, r0, asr #4
	tst r12, #8
	rsbne r0, r0, #0
	ldr r1, [r9]
	add r1, r1, r0
	str r1, [r9], #4
	subs r3, r3, #1
	bne update_loop

	; shift delay line: x[5..1] = x[4..0]; x[0] = err (reconstructed-ish)
	ldr r9, =xtab
	ldr r0, [r9]
	ldr r1, [r9, #4]
	ldr r2, [r9, #8]
	ldr r3, [r9, #12]
	ldr r10, [r9, #16]
	str r0, [r9, #4]
	str r1, [r9, #8]
	str r2, [r9, #12]
	str r3, [r9, #16]
	str r10, [r9, #20]
	tst r12, #8
	rsbne r1, r1, #0          ; scratch
	str r4, [r9]              ; x[0] = sample

	; checksum = checksum*31 + code
	mov r0, r8, lsl #5
	sub r8, r0, r8
	add r8, r8, r2

	subs r6, r6, #1
	bne sample_loop

	mov r0, r8
	swi #1
	ldr r9, =wtab             ; fold final coefficients in
	ldr r0, [r9]
	ldr r1, [r9, #20]
	eor r0, r0, r1
	swi #1
	mov r0, #0
	swi #0
	.ltorg
	.align
wtab:
	.word 0, 0, 0, 0, 0, 0
xtab:
	.word 0, 0, 0, 0, 0, 0
`, samples)
}
