package pipe5

import (
	"rcpn/internal/arm"
	"rcpn/internal/obsv"
)

// ---- EX ----------------------------------------------------------------

func (s *Sim) stageEX() {
	e := s.dx
	if e == nil {
		s.profStall(stIDEX, obsv.StallEmpty)
		return
	}
	if e.delay > 0 {
		e.delay--
		s.profStall(stIDEX, obsv.StallDelay)
		return
	}
	if s.mx != nil {
		// Structural stall: MEM busy (cache miss, block transfer).
		s.profStall(stIDEX, obsv.StallCapacity)
		return
	}
	ins := arm.Decode(e.raw, e.addr) // baseline re-decode
	if !ins.Cond.Passes(s.F.N, s.F.Z, s.F.C, s.F.V) {
		e.annulled = true
	}
	if !e.annulled {
		s.execute(&ins, e)
	} else if ins.Class == arm.ClassBranch {
		// Annulled branches still resolve (they fall through) and train the
		// predictor.
		s.Pred.Update(ins.Addr, false, ins.Target())
		s.resolveEX(e, ins.Addr+4)
	} else if ins.Class == arm.ClassDataProc && ins.Op.WritesRd() && ins.Rd == arm.PC {
		s.resolveEX(e, ins.Addr+4)
	}
	s.dx = nil
	s.mx = e
	s.profAdvance(stIDEX)
	if s.tr != nil {
		s.tr.Fire(s.Cycles, e.seq, stIDEX, opExecute)
		s.tr.Move(s.Cycles, e.seq, stEXME, stIDEX)
	}
}

func (s *Sim) execute(ins *arm.Instr, e *slot) {
	switch ins.Class {
	case arm.ClassDataProc:
		op2, shiftC := ins.Operand2Value(e.srcVals[1], e.srcVals[2], s.F.C)
		res, nf := arm.AluExec(ins.Op, e.srcVals[0], op2, s.F, shiftC)
		if ins.SetFlags || ins.IsCompare() {
			s.F = nf // flags commit at EX, in order
		}
		if ins.Op.WritesRd() {
			if ins.Rd == arm.PC {
				s.resolveEX(e, res&^3)
			} else {
				e.vals[ins.Rd] = res
				e.ready |= 1 << ins.Rd
			}
		}

	case arm.ClassMult:
		if ins.Long {
			lo, hi, nf := arm.MulLongExec(ins.SignedMul, ins.Accum,
				e.srcVals[0], e.srcVals[1], e.srcVals[2], e.srcVals[3], s.F)
			if ins.SetFlags {
				s.F = nf
			}
			e.vals[ins.Rn] = lo // RdLo
			e.vals[ins.Rd] = hi // RdHi
			e.ready |= 1<<ins.Rn | 1<<ins.Rd
			break
		}
		res, nf := arm.MulExec(ins.Accum, e.srcVals[0], e.srcVals[1], e.srcVals[2], s.F)
		if ins.SetFlags {
			s.F = nf
		}
		e.vals[ins.Rd] = res
		e.ready |= 1 << ins.Rd

	case arm.ClassLoadStore:
		base := e.srcVals[0]
		if ins.Rn == arm.PC {
			base = ins.Addr + 8
		}
		ea, wb, doWB := ins.LSAddress(base, e.srcVals[1])
		e.ea, e.wbVal = ea, wb
		e.baseWB = doWB && ins.Rn != arm.PC
		if s.DCache != nil {
			e.delay = s.DCache.Access(ea) - 1
		}

	case arm.ClassLoadStoreM:
		addrs, final := ins.LSMAddressesInto(e.srcVals[0], e.lsmAddr)
		e.lsmAddr = addrs
		e.wbVal = final
		if len(addrs) > 0 && s.DCache != nil {
			e.delay = s.DCache.Access(addrs[0]) - 1
		}

	case arm.ClassBranch:
		target := ins.Target()
		s.Pred.Update(ins.Addr, true, target)
		if ins.Link {
			e.vals[arm.LR] = ins.Addr + 4
			e.ready |= 1 << arm.LR
		}
		s.resolveEX(e, target)
	}
}

// resolveEX performs an EX-stage control transfer: flush the younger
// instruction in the fetch latch and redirect fetch.
func (s *Sim) resolveEX(e *slot, actual uint32) {
	e.donePC = true
	if actual == e.predNext {
		return
	}
	s.Flushes++
	if s.fq != nil {
		if s.fetchHold == s.fq.seq {
			s.fetchHold = 0
		}
		if s.tr != nil {
			// Close the squashed instruction's residency span.
			s.tr.Retire(s.Cycles, s.fq.seq, stIFID)
		}
		s.freeSlot(s.fq)
		s.fq = nil
	}
	s.pc = actual
}

// ---- ID ----------------------------------------------------------------

// srcRef names a source register and the srcVals slot it resolves into
// (slot -1 routes into the per-register vals array, for LSM stores).
type srcRef struct {
	r    arm.Reg
	slot int
}

// readReg resolves a source register dynamically: architected file when no
// writer is pending, else a scan of the downstream latches for a forwardable
// value (the per-cycle hazard/bypass search a fixed-architecture simulator
// performs).
func (s *Sim) readReg(r arm.Reg, addrPlus8 uint32) (uint32, bool) {
	if r == arm.PC {
		return addrPlus8, true
	}
	if s.pending[r] == 0 {
		s.rdFile++
		return s.R[r], true
	}
	for _, sl := range [...]*slot{s.mx, s.wx} { // youngest first
		if sl == nil || sl.annulled || sl.wrMask&(1<<r) == 0 {
			continue
		}
		if sl.ready&(1<<r) != 0 {
			s.rdByp++
			return sl.vals[r], true
		}
		return 0, false // youngest writer hasn't produced the value yet
	}
	return 0, false // writer still in EX (or stalled): no value anywhere
}

func (s *Sim) stageID() {
	d := s.fq
	if d == nil {
		s.profStall(stIFID, obsv.StallEmpty)
		return
	}
	if d.delay > 0 {
		d.delay--
		s.profStall(stIFID, obsv.StallDelay)
		return
	}
	if s.dx != nil {
		// EX latch occupied.
		s.profStall(stIFID, obsv.StallCapacity)
		return
	}
	ins := arm.Decode(d.raw, d.addr) // baseline re-decode
	p8 := d.addr + 8

	srcs := s.idSrcs[:0]
	dests := s.idDests[:0]

	switch ins.Class {
	case arm.ClassDataProc:
		if ins.Op.UsesRn() {
			srcs = append(srcs, srcRef{ins.Rn, 0})
		}
		if !ins.HasImm {
			srcs = append(srcs, srcRef{ins.Rm, 1})
		}
		if ins.ShiftReg {
			srcs = append(srcs, srcRef{ins.Rs, 2})
		}
		if ins.Op.WritesRd() && ins.Rd != arm.PC {
			dests = append(dests, ins.Rd)
		}
	case arm.ClassMult:
		srcs = append(srcs, srcRef{ins.Rm, 0}, srcRef{ins.Rs, 1})
		if ins.Long {
			if ins.Accum {
				srcs = append(srcs, srcRef{ins.Rn, 2}, srcRef{ins.Rd, 3})
			}
			dests = append(dests, ins.Rn, ins.Rd) // RdLo, RdHi
		} else {
			if ins.Accum {
				srcs = append(srcs, srcRef{ins.Rn, 2})
			}
			dests = append(dests, ins.Rd)
		}
	case arm.ClassLoadStore:
		srcs = append(srcs, srcRef{ins.Rn, 0})
		if !ins.HasImm {
			srcs = append(srcs, srcRef{ins.Rm, 1})
		}
		if !ins.Load && ins.Rd != arm.PC {
			srcs = append(srcs, srcRef{ins.Rd, 2})
		}
		if ins.Load && ins.Rd != arm.PC {
			dests = append(dests, ins.Rd)
		}
		if (!ins.PreIndex || ins.Writeback) && ins.Rn != arm.PC {
			dests = append(dests, ins.Rn)
		}
	case arm.ClassLoadStoreM:
		srcs = append(srcs, srcRef{ins.Rn, 0})
		if !ins.Load {
			for r := arm.Reg(0); r < 15; r++ {
				if ins.RegList&(1<<r) != 0 {
					srcs = append(srcs, srcRef{r, -1}) // into vals[r]
				}
			}
		} else {
			for r := arm.Reg(0); r < 15; r++ {
				if ins.RegList&(1<<r) != 0 {
					dests = append(dests, r)
				}
			}
		}
		if ins.Writeback && ins.Rn != arm.PC &&
			!(ins.Load && ins.RegList&(1<<ins.Rn) != 0) {
			dests = append(dests, ins.Rn)
		}
	case arm.ClassBranch:
		if ins.Link {
			dests = append(dests, arm.LR)
		}
	case arm.ClassSystem:
		srcs = append(srcs, srcRef{0, 0})
	}
	s.idSrcs, s.idDests = srcs, dests

	// Dynamic hazard check: all sources resolvable, all destinations free
	// of pending writers (WAW).
	var vals [4]uint32
	var valsSet uint8
	lsmVals := [15]uint32{}
	s.rdFile, s.rdByp = 0, 0
	for _, sc := range srcs {
		v, ok := s.readReg(sc.r, p8)
		if !ok {
			s.profStall(stIFID, obsv.StallRAW)
			return // RAW stall
		}
		if sc.slot >= 0 {
			vals[sc.slot] = v
			valsSet |= 1 << sc.slot
		} else {
			lsmVals[sc.r] = v
		}
	}
	for _, r := range dests {
		if s.pending[r] > 0 {
			s.profStall(stIFID, obsv.StallWriteback)
			return // WAW stall
		}
	}

	// Commit the issue: latch values, reserve destinations.
	for slotIdx := 0; slotIdx < 4; slotIdx++ {
		if valsSet&(1<<slotIdx) != 0 {
			d.srcVals[slotIdx] = vals[slotIdx]
		}
	}
	if ins.Class == arm.ClassLoadStoreM && !ins.Load {
		for r := arm.Reg(0); r < 15; r++ {
			if ins.RegList&(1<<r) != 0 {
				d.vals[r] = lsmVals[r]
			}
		}
	}
	for _, r := range dests {
		d.wrMask |= 1 << r
		s.pending[r]++
	}
	if ins.Class == arm.ClassMult {
		d.delay = int(mulCycles(d.srcVals[1])) - 1
		if ins.Long {
			d.delay++
		}
	}
	s.fq = nil
	s.dx = d
	s.profAdvance(stIFID)
	if s.prof != nil {
		// Operand reads tallied during the hazard scan count only once the
		// issue commits, matching the RCPN models (reads happen in the
		// fired action, not the guard).
		s.prof.FileReads += uint64(s.rdFile)
		s.prof.BypassServed += uint64(s.rdByp)
	}
	if s.tr != nil {
		s.tr.Fire(s.Cycles, d.seq, stIFID, opIssue)
		s.tr.Move(s.Cycles, d.seq, stIDEX, stIFID)
	}
}

// mulCycles mirrors the early-terminating multiplier timing of the RCPN
// models.
func mulCycles(rs uint32) int64 {
	switch {
	case rs&0xffffff00 == 0 || rs|0xff == 0xffffffff:
		return 1
	case rs&0xffff0000 == 0 || rs|0xffff == 0xffffffff:
		return 2
	case rs&0xff000000 == 0 || rs|0xffffff == 0xffffffff:
		return 3
	default:
		return 4
	}
}

// ---- IF ----------------------------------------------------------------

func (s *Sim) stageIF() {
	if s.Exited || s.fetchHold != 0 || s.fq != nil || s.holdFetch {
		return
	}
	addr := s.pc
	lat := 1
	if s.ICache != nil {
		lat = s.ICache.Access(addr)
	}
	raw := s.Mem.Read32(addr)
	ins := arm.Decode(raw, addr) // decode for prediction/serialization...
	s.seq++
	sl := s.newSlot()
	sl.raw, sl.addr, sl.seq, sl.delay = raw, addr, s.seq, lat-1

	next := addr + 4
	if ins.Class == arm.ClassBranch {
		if taken, target, known := s.Pred.Predict(addr); taken && known {
			next = target
		}
	}
	sl.predNext = next
	s.pc = next

	serializes := ins.Class == arm.ClassSystem ||
		(ins.Class == arm.ClassLoadStore && ins.Load && ins.Rd == arm.PC) ||
		(ins.Class == arm.ClassLoadStoreM && ins.Load && ins.RegList&(1<<arm.PC) != 0)
	if serializes {
		s.fetchHold = sl.seq
	}
	s.fq = sl
	if s.tr != nil {
		s.tr.Birth(s.Cycles, sl.seq, stIFID)
	}
}
