package machine

import (
	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/core"
	"rcpn/internal/mem"
	"rcpn/internal/obsv"
)

// NewXScale builds the XScale (PXA250) model of Fig. 9: an in-order-issue,
// out-of-order-completion processor with a seven-stage main pipeline and two
// parallel back ends —
//
//	F1 -> F2 -> ID -> RF -> X1 -> X2 -> XWB   (main/ALU pipe)
//	                   \-> D1 -> D2 -> DWB    (memory pipe)
//	                   \-> M1 -> M2 -> MWB    (MAC pipe)
//
// ALU results can complete while older loads are still in the memory pipe;
// the register-reference lock interface (reg package) carries all the
// resulting data hazards, exactly as in §3.1. Default non-pipeline units:
// 32KB I/D caches and a bimodal predictor with BTB (the XScale core has
// dynamic branch prediction).
func NewXScale(p *arm.Program, cfg Config) *Machine {
	m := newMachine("xscale", p, cfg, func(c *Config) {
		if c.Caches.I == nil {
			c.Caches = mem.DefaultXScale()
		}
		if c.Predictor == nil {
			c.Predictor = bpred.NewBimodal(128)
		}
	})

	n := core.NewNet(int(arm.NumClasses))
	f1 := n.Place("F1", n.Stage("F1", 1))
	f2 := n.Place("F2", n.Stage("F2", 1))
	id := n.Place("ID", n.Stage("ID", 1))
	rf := n.Place("RF", n.Stage("RF", 1))
	x1 := n.Place("X1", n.Stage("X1", 1))
	x2 := n.Place("X2", n.Stage("X2", 1))
	d1 := n.Place("D1", n.Stage("D1", 1))
	d2 := n.Place("D2", n.Stage("D2", 1))
	m1 := n.Place("M1", n.Stage("M1", 1))
	m2 := n.Place("M2", n.Stage("M2", 1))
	end := n.EndPlace("end")

	// Forwarding: ALU results from X2, load results and MAC results as they
	// reach the last stage of their pipes.
	bypass := []int{x2.ID(), d2.ID(), m2.ID()}

	inst := func(tok *core.Token) *Inst { return tok.Data.(*Inst) }

	// Instruction-independent front end: F1 -> F2 -> ID advance for every
	// class (AnyClass transitions, the shared part of the sub-nets).
	n.AddTransition(&core.Transition{Name: "f2", Class: core.AnyClass, From: f1, To: f2})
	n.AddTransition(&core.Transition{Name: "id", Class: core.AnyClass, From: f2, To: id})
	n.AddTransition(&core.Transition{Name: "rf", Class: core.AnyClass, From: id, To: rf})

	issueTo := func(c arm.Class, to *core.Place, extra func(*Inst, *core.Token)) {
		n.AddTransition(&core.Transition{
			Name: c.String() + ".issue", Class: core.ClassID(c), From: rf, To: to,
			Guard:   func(tok *core.Token) bool { return inst(tok).IssueReady(bypass) },
			Explain: func(tok *core.Token) obsv.StallKind { return inst(tok).IssueStallKind(bypass) },
			Action: func(tok *core.Token) {
				in := inst(tok)
				in.Issue(bypass)
				if extra != nil {
					extra(in, tok)
				}
			},
		})
	}

	// ALU pipe: DataProc, Branch and System flow through X1/X2.
	for _, c := range []arm.Class{arm.ClassDataProc, arm.ClassBranch, arm.ClassSystem} {
		c := c
		issueTo(c, x1, nil)
		n.AddTransition(&core.Transition{
			Name: c.String() + ".x2", Class: core.ClassID(c), From: x1, To: x2,
			Action: func(tok *core.Token) { inst(tok).Execute() },
		})
		n.AddTransition(&core.Transition{
			Name: c.String() + ".xwb", Class: core.ClassID(c), From: x2, To: end,
			Action: func(tok *core.Token) { inst(tok).Writeback() },
		})
	}

	// Memory pipe: LoadStore and LoadStoreM flow through D1/D2.
	for _, c := range []arm.Class{arm.ClassLoadStore, arm.ClassLoadStoreM} {
		c := c
		issueTo(c, d1, nil)
		n.AddTransition(&core.Transition{
			Name: c.String() + ".d2", Class: core.ClassID(c), From: d1, To: d2,
			Action: func(tok *core.Token) {
				in := inst(tok)
				in.Execute()
				tok.Delay = in.MemLatency()
			},
		})
		if c == arm.ClassLoadStore {
			n.AddTransition(&core.Transition{
				Name: c.String() + ".dwb", Class: core.ClassID(c), From: d2, To: end,
				Action: func(tok *core.Token) {
					in := inst(tok)
					in.MemAccess()
					in.Writeback()
				},
			})
		} else {
			n.AddTransition(&core.Transition{
				Name: c.String() + ".dstep", Class: core.ClassID(c), From: d2, To: d2, Priority: 0,
				Guard:  func(tok *core.Token) bool { return inst(tok).LSMMore() },
				Action: func(tok *core.Token) { tok.Delay = inst(tok).LSMStep() },
			})
			n.AddTransition(&core.Transition{
				Name: c.String() + ".dwb", Class: core.ClassID(c), From: d2, To: end, Priority: 1,
				Action: func(tok *core.Token) {
					in := inst(tok)
					in.LSMFinish()
					in.Writeback()
				},
			})
		}
	}

	// MAC pipe: multiplies, with data-dependent early termination occupying
	// M1 (the XScale MAC takes 2-5 cycles depending on the multiplier).
	issueTo(arm.ClassMult, m1, func(in *Inst, tok *core.Token) {
		if !in.annulled {
			tok.Delay = 1 + in.MulLatency()
		}
	})
	n.AddTransition(&core.Transition{
		Name: "Mult.m2", Class: core.ClassID(arm.ClassMult), From: m1, To: m2,
		Action: func(tok *core.Token) { inst(tok).Execute() },
	})
	n.AddTransition(&core.Transition{
		Name: "Mult.mwb", Class: core.ClassID(arm.ClassMult), From: m2, To: end,
		Action: func(tok *core.Token) { inst(tok).Writeback() },
	})

	n.AddSource(&core.Source{Name: "fetch", To: f1, Fire: m.fetchOne})
	n.OnRetire(m.retire)

	m.Net = n
	m.applyAblation()
	n.MustBuild()
	return m
}
