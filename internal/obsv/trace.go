package obsv

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// EventKind tags one trace event. The vocabulary is the RCPN token game
// itself: tokens are born at sources, move between places when
// transitions fire, and retire at sinks; firings are recorded separately
// so transition activity is visible even when token identity is not of
// interest.
type EventKind uint8

const (
	// EvBirth: a token entered the model. Loc is the birth place.
	EvBirth EventKind = iota
	// EvMove: a token moved into place Loc (Aux is the source place, or
	// -1 when unknown).
	EvMove
	// EvRetire: a token left the model (retired/committed). Loc is the
	// place it retired from.
	EvRetire
	// EvFire: transition Aux fired, consuming the token in place Loc.
	EvFire

	numEventKinds
)

var eventNames = [numEventKinds]string{"birth", "move", "retire", "fire"}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("eventkind(%d)", uint8(k))
}

// Event is one fixed-size trace record. Cycle is the only timestamp —
// trace files carry simulated time, never wall-clock, so identical runs
// produce identical bytes.
type Event struct {
	Cycle int64
	Tok   uint64 // token sequence number (engine-assigned, stable)
	Loc   int32  // place / stage index into the Locs name table
	Aux   int32  // transition index (EvFire), source place (EvMove), or -1
	Kind  EventKind
}

// Tracer is a bounded ring buffer of Events. When the buffer is full the
// oldest events are overwritten — the trace keeps the *last* Cap events,
// which is what post-mortem inspection wants — and Dropped counts what
// was lost so writers can say so. All methods are single-goroutine, like
// the engines that call them.
type Tracer struct {
	buf     []Event
	head    int // index of the oldest event when full
	dropped uint64

	// Locs and Ops are the name tables events index into: pipeline
	// places/stages and transitions/operations respectively. Engines set
	// them at attach time.
	Locs []string
	Ops  []string
}

// DefaultTraceEvents is the ring capacity used when a caller enables
// tracing without choosing one.
const DefaultTraceEvents = 1 << 16

// NewTracer builds a tracer holding at most capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit appends one event, evicting the oldest when the ring is full.
func (t *Tracer) Emit(e Event) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.head] = e
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	t.dropped++
}

// Birth records a token birth. Convenience wrappers keep engine call
// sites to one line behind their nil check.
func (t *Tracer) Birth(cycle int64, tok uint64, loc int32) {
	t.Emit(Event{Cycle: cycle, Kind: EvBirth, Tok: tok, Loc: loc, Aux: -1})
}

// Move records a token arriving in place loc from place from.
func (t *Tracer) Move(cycle int64, tok uint64, loc, from int32) {
	t.Emit(Event{Cycle: cycle, Kind: EvMove, Tok: tok, Loc: loc, Aux: from})
}

// Retire records a token leaving the model from place loc.
func (t *Tracer) Retire(cycle int64, tok uint64, loc int32) {
	t.Emit(Event{Cycle: cycle, Kind: EvRetire, Tok: tok, Loc: loc, Aux: -1})
}

// Fire records transition op firing on the token in place loc.
func (t *Tracer) Fire(cycle int64, tok uint64, loc, op int32) {
	t.Emit(Event{Cycle: cycle, Kind: EvFire, Tok: tok, Loc: loc, Aux: op})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int { return len(t.buf) }

// Dropped returns how many events were evicted by the ring bound.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Events returns the buffered events in emission order (oldest first).
// The slice is freshly allocated; the ring is not disturbed.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	out = append(out, t.buf[:t.head]...)
	return out
}

func (t *Tracer) locName(i int32) string {
	if i >= 0 && int(i) < len(t.Locs) {
		return t.Locs[i]
	}
	return fmt.Sprintf("loc%d", i)
}

func (t *Tracer) opName(i int32) string {
	if i >= 0 && int(i) < len(t.Ops) {
		return t.Ops[i]
	}
	return fmt.Sprintf("op%d", i)
}

// WriteChromeJSON writes the trace in Chrome trace_event JSON object
// format (load via chrome://tracing or Perfetto). Cycle numbers are used
// directly as microsecond timestamps so one trace microsecond is one
// simulated cycle; each token renders as one "thread" (tid = token
// sequence), place residencies as B/E duration events and transition
// firings as instant events. Output is deterministic.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ms","otherData":{"dropped":`); err != nil {
		return err
	}
	fmt.Fprintf(bw, `%d},"traceEvents":[`, t.dropped)
	first := true
	emit := func(ph, name string, e Event, args string) {
		if !first {
			bw.WriteByte(',') //nolint:errcheck // error surfaces at Flush
		}
		first = false
		fmt.Fprintf(bw, `{"name":%s,"ph":%q,"ts":%d,"pid":1,"tid":%d%s}`,
			jsonString(name), ph, e.Cycle, e.Tok, args)
	}
	for _, e := range t.Events() {
		switch e.Kind {
		case EvBirth:
			emit("B", t.locName(e.Loc), e, "")
		case EvMove:
			// Close the previous residency and open the new one at the
			// same simulated instant.
			emit("E", t.locName(e.Aux), e, "")
			emit("B", t.locName(e.Loc), e, "")
		case EvRetire:
			emit("E", t.locName(e.Loc), e, "")
		case EvFire:
			emit("i", t.opName(e.Aux), e, `,"s":"t"`)
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// Binary trace format "RCPNTRC1": a compact self-describing container.
//
//	magic   [8]byte "RCPNTRC1"
//	dropped uint64
//	nlocs   uint32, then nlocs length-prefixed strings
//	nops    uint32, then nops length-prefixed strings
//	nevents uint32, then nevents fixed 22-byte records:
//	        cycle int64 | tok uint64 | loc int32 | aux int32 | kind uint8 | pad uint8
//
// All integers little-endian. Fixed-width records keep the writer
// allocation-free and the format trivially seekable.
const binaryMagic = "RCPNTRC1"

const binaryRecordSize = 8 + 8 + 4 + 4 + 1 + 1

// WriteBinary writes the compact binary form of the trace.
func (t *Tracer) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, binaryMagic); err != nil {
		return err
	}
	var scratch [binaryRecordSize]byte
	binary.LittleEndian.PutUint64(scratch[:8], t.dropped)
	bw.Write(scratch[:8]) //nolint:errcheck // error surfaces at Flush
	writeStrings := func(ss []string) {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(ss)))
		bw.Write(scratch[:4]) //nolint:errcheck
		for _, s := range ss {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(s)))
			bw.Write(scratch[:4]) //nolint:errcheck
			io.WriteString(bw, s) //nolint:errcheck
		}
	}
	writeStrings(t.Locs)
	writeStrings(t.Ops)
	events := t.Events()
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(events)))
	bw.Write(scratch[:4]) //nolint:errcheck
	for _, e := range events {
		binary.LittleEndian.PutUint64(scratch[0:8], uint64(e.Cycle))
		binary.LittleEndian.PutUint64(scratch[8:16], e.Tok)
		binary.LittleEndian.PutUint32(scratch[16:20], uint32(e.Loc))
		binary.LittleEndian.PutUint32(scratch[20:24], uint32(e.Aux))
		scratch[24] = byte(e.Kind)
		scratch[25] = 0
		bw.Write(scratch[:]) //nolint:errcheck
	}
	return bw.Flush()
}

// ReadBinary parses a trace written by WriteBinary, returning a tracer
// whose Events/Locs/Ops/Dropped round-trip the original.
func ReadBinary(r io.Reader) (*Tracer, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("obsv: trace header: %w", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("obsv: bad trace magic %q", magic[:])
	}
	var scratch [binaryRecordSize]byte
	if _, err := io.ReadFull(br, scratch[:8]); err != nil {
		return nil, fmt.Errorf("obsv: trace dropped count: %w", err)
	}
	dropped := binary.LittleEndian.Uint64(scratch[:8])
	readStrings := func(what string) ([]string, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return nil, fmt.Errorf("obsv: %s count: %w", what, err)
		}
		n := binary.LittleEndian.Uint32(scratch[:4])
		if n > 1<<20 {
			return nil, fmt.Errorf("obsv: implausible %s count %d", what, n)
		}
		ss := make([]string, n)
		for i := range ss {
			if _, err := io.ReadFull(br, scratch[:4]); err != nil {
				return nil, fmt.Errorf("obsv: %s[%d] length: %w", what, i, err)
			}
			ln := binary.LittleEndian.Uint32(scratch[:4])
			if ln > 1<<16 {
				return nil, fmt.Errorf("obsv: implausible %s[%d] length %d", what, i, ln)
			}
			b := make([]byte, ln)
			if _, err := io.ReadFull(br, b); err != nil {
				return nil, fmt.Errorf("obsv: %s[%d]: %w", what, i, err)
			}
			ss[i] = string(b)
		}
		return ss, nil
	}
	locs, err := readStrings("locs")
	if err != nil {
		return nil, err
	}
	ops, err := readStrings("ops")
	if err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, fmt.Errorf("obsv: event count: %w", err)
	}
	n := binary.LittleEndian.Uint32(scratch[:4])
	if n > 1<<28 {
		return nil, fmt.Errorf("obsv: implausible event count %d", n)
	}
	t := &Tracer{buf: make([]Event, 0, n), dropped: dropped, Locs: locs, Ops: ops}
	if n == 0 {
		t.buf = make([]Event, 0, 1)
	}
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return nil, fmt.Errorf("obsv: event %d: %w", i, err)
		}
		t.buf = append(t.buf, Event{
			Cycle: int64(binary.LittleEndian.Uint64(scratch[0:8])),
			Tok:   binary.LittleEndian.Uint64(scratch[8:16]),
			Loc:   int32(binary.LittleEndian.Uint32(scratch[16:20])),
			Aux:   int32(binary.LittleEndian.Uint32(scratch[20:24])),
			Kind:  EventKind(scratch[24]),
		})
	}
	return t, nil
}

// Stall-snapshot checkpoint framing. A profiled job's checkpoint must
// carry its accounting along with the simulator's architected state — a
// resume that restored only the simulator would emit a profile missing
// the donor attempt's cycles, breaking resumed-result byte identity.
// WrapStalls frames a snapshot ahead of an opaque payload; unprofiled
// payloads stay unframed (engine checkpoint codecs have their own magic,
// so the two cannot collide).
const stallMagic = "RCPNSTL1"

// WrapStalls frames snap ahead of payload.
func WrapStalls(snap *StallSnapshot, payload []byte) []byte {
	js, err := json.Marshal(snap)
	if err != nil {
		return payload
	}
	out := make([]byte, 0, len(stallMagic)+4+len(js)+len(payload))
	out = append(out, stallMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(js)))
	out = append(out, js...)
	return append(out, payload...)
}

// SplitStalls undoes WrapStalls. Unframed (or unparseable) input returns
// (nil, raw) untouched, so callers can pass any payload through it.
func SplitStalls(raw []byte) (*StallSnapshot, []byte) {
	if len(raw) < len(stallMagic)+4 || string(raw[:len(stallMagic)]) != stallMagic {
		return nil, raw
	}
	n := binary.LittleEndian.Uint32(raw[len(stallMagic):])
	body := raw[len(stallMagic)+4:]
	if uint64(len(body)) < uint64(n) {
		return nil, raw
	}
	var snap StallSnapshot
	if err := json.Unmarshal(body[:n], &snap); err != nil {
		return nil, raw
	}
	return &snap, body[n:]
}
