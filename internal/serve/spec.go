// Package serve is the simulation-as-a-service layer: an embeddable
// net/http server that accepts canonical JSON job specs, deduplicates them
// by content address, queues them into a bounded internal/batch worker
// pool, and exposes job state, live progress (SSE), metrics and a graceful
// drain protocol. cmd/rcpnserve is the thin binary around it.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/bpred"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/mem"
	"rcpn/internal/pipe5"
	"rcpn/internal/simrun"
	"rcpn/internal/ssim"
	"rcpn/internal/workload"
)

// CacheSpec overrides one cache's geometry and timing. All fields are
// required when the spec is present (a partial override would silently
// inherit surprising defaults).
type CacheSpec struct {
	Sets        int `json:"sets"`
	Ways        int `json:"ways"`
	LineBytes   int `json:"line_bytes"`
	HitLatency  int `json:"hit_latency"`
	MissLatency int `json:"miss_latency"`
}

func (c *CacheSpec) cache(name string) (*mem.Cache, error) {
	return mem.NewCache(mem.CacheConfig{Name: name, Sets: c.Sets, Ways: c.Ways,
		LineBytes: c.LineBytes, HitLatency: c.HitLatency, MissLatency: c.MissLatency})
}

// SimConfig is the tunable microarchitecture subset a job may override.
// The zero value means the simulator's built-in defaults.
type SimConfig struct {
	ICache *CacheSpec `json:"icache,omitempty"`
	DCache *CacheSpec `json:"dcache,omitempty"`
	// Bpred selects the branch predictor: "" (model default), "nottaken",
	// or "bimodal:N" with N a power-of-two entry count.
	Bpred string `json:"bpred,omitempty"`
}

func (c SimConfig) isZero() bool {
	return c.ICache == nil && c.DCache == nil && c.Bpred == ""
}

// JobSpec is the canonical request body of POST /v1/jobs. Exactly one of
// Kernel (a built-in benchmark) and Source (inline ARM assembly) must be
// set. After Normalize, marshaling the spec yields its canonical bytes:
// the SHA-256 of those bytes is the job's content address, so two requests
// that mean the same job — regardless of field order, whitespace or
// defaulted fields — collapse to one id, one queue slot and one cached
// result.
type JobSpec struct {
	Simulator string `json:"simulator"`
	Kernel    string `json:"kernel,omitempty"`
	Source    string `json:"source,omitempty"`
	Scale     int    `json:"scale"`
	// MaxCycles caps the run (instructions for func/iss); 0 means the
	// server's default cap.
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// CheckpointInterval, when nonzero, makes the job crash-safe: the worker
	// drains the simulator and captures an RCPNCKPT checkpoint every
	// CheckpointInterval retired instructions, so a killed server resumes
	// the job from the last boundary instead of restarting it. The drains
	// insert pipeline bubbles that perturb cycle-level timing, which is why
	// the interval is part of the spec (and so of the content address): the
	// result is a deterministic function of (spec, interval), not of whether
	// a crash happened.
	CheckpointInterval uint64 `json:"checkpoint_interval,omitempty"`
	// Profile enables per-stage stall attribution: the result embeds the
	// job's StallProfile snapshot under "stalls". Part of the spec (and of
	// the content address) because the result bytes differ, even though the
	// simulated outcome does not.
	Profile bool `json:"profile,omitempty"`
	// TraceEvents, when nonzero, attaches a bounded ring tracer of that
	// many events; the Chrome trace_event JSON of the run's tail is served
	// at GET /v1/jobs/{id}/trace.
	TraceEvents int `json:"trace_events,omitempty"`
	// Parallelism, when > 1, runs the job time-parallel (internal/tpar):
	// the run is split into Parallelism segments at drained instruction
	// boundaries and simulated concurrently from ISS-warmed checkpoints.
	// The segment boundaries drain the pipeline and perturb cycle timing
	// exactly as checkpoint_interval does, so the field is part of the
	// content address; omitempty (with 1 normalized to 0) keeps every
	// pre-existing address unchanged. The worker count is NOT part of the
	// spec — the result is independent of it.
	Parallelism int `json:"parallelism,omitempty"`
	// ParallelMode selects the stitch discipline for parallel jobs:
	// "" or "exact" (normalized to "", byte-identical to the serial
	// segmented run) or "sampled" (warmup-biased segments accepted, CPI
	// error bound reported in the result extras).
	ParallelMode string    `json:"parallel_mode,omitempty"`
	Config       SimConfig `json:"config"`
}

// simulators is the accepted Simulator set, matching cmd/rcpnsim's -sim.
var simulators = map[string]bool{
	"strongarm": true, "xscale": true, "arm9": true,
	"ssim": true, "pipe5": true, "func": true, "iss": true,
}

// maxSourceBytes bounds inline assembly so a single request cannot balloon
// server memory.
const maxSourceBytes = 1 << 20

// maxScale bounds the workload scale factor.
const maxScale = 64

// minCheckpointInterval bounds how often a job may drain for a checkpoint.
const minCheckpointInterval = 1000

// maxTraceEvents bounds the per-job trace ring so one request cannot pin
// arbitrary server memory (26 bytes of ring per event plus the rendered
// JSON).
const maxTraceEvents = 1 << 20

// maxParallelism bounds the requested segment count of a time-parallel
// job; tpar clamps further to the program length.
const maxParallelism = 16

// SpecError is a request defect: the submission is rejected with 400 and
// this message, and nothing is enqueued.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func specErrf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// ParseSpec decodes, normalizes and validates a request body. Unknown
// fields are rejected — silently dropping a typo'd field would hash two
// different intentions to the same content address.
func ParseSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSourceBytes+4096))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return nil, specErrf("bad request body: %v", err)
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Normalize canonicalizes the spec in place and validates it: defaults are
// filled, names are case-folded, and anything the registry cannot build is
// rejected now (at admission) rather than on a worker.
func (s *JobSpec) Normalize() error {
	s.Simulator = strings.ToLower(strings.TrimSpace(s.Simulator))
	s.Kernel = strings.ToLower(strings.TrimSpace(s.Kernel))
	s.Config.Bpred = strings.ToLower(strings.TrimSpace(s.Config.Bpred))
	if !simulators[s.Simulator] {
		return specErrf("unknown simulator %q (want strongarm, xscale, arm9, ssim, pipe5, func or iss)", s.Simulator)
	}
	if (s.Kernel == "") == (s.Source == "") {
		return specErrf("exactly one of kernel and source must be set")
	}
	if s.Kernel != "" && workload.ByName(s.Kernel) == nil {
		return specErrf("unknown kernel %q", s.Kernel)
	}
	if len(s.Source) > maxSourceBytes {
		return specErrf("source exceeds %d bytes", maxSourceBytes)
	}
	if s.Scale < 1 {
		s.Scale = 1
	}
	if s.Scale > maxScale {
		return specErrf("scale %d exceeds maximum %d", s.Scale, maxScale)
	}
	if s.MaxCycles < 0 {
		return specErrf("max_cycles must be >= 0")
	}
	if s.CheckpointInterval != 0 && s.CheckpointInterval < minCheckpointInterval {
		return specErrf("checkpoint_interval %d below minimum %d (draining the pipeline that often would dominate the run)",
			s.CheckpointInterval, minCheckpointInterval)
	}
	if s.TraceEvents < 0 {
		return specErrf("trace_events must be >= 0")
	}
	if s.TraceEvents > maxTraceEvents {
		return specErrf("trace_events %d exceeds maximum %d", s.TraceEvents, maxTraceEvents)
	}
	s.ParallelMode = strings.ToLower(strings.TrimSpace(s.ParallelMode))
	if s.ParallelMode == "exact" {
		s.ParallelMode = "" // the default: keep the canonical form minimal
	}
	if s.Parallelism < 0 {
		return specErrf("parallelism must be >= 0")
	}
	if s.Parallelism == 1 {
		s.Parallelism = 0 // one segment is the serial run: canonicalize away
	}
	if s.Parallelism > maxParallelism {
		return specErrf("parallelism %d exceeds maximum %d", s.Parallelism, maxParallelism)
	}
	if s.Parallelism > 1 {
		if s.CheckpointInterval != 0 {
			return specErrf("parallelism and checkpoint_interval are mutually exclusive (a time-parallel run has no single resumable frontier)")
		}
		if s.TraceEvents != 0 {
			return specErrf("parallelism and trace_events are mutually exclusive (segment trace rings cannot be stitched into one tail)")
		}
	} else if s.ParallelMode != "" {
		return specErrf("parallel_mode requires parallelism > 1")
	}
	if s.ParallelMode != "" && s.ParallelMode != "sampled" {
		return specErrf("unknown parallel_mode %q (want exact or sampled)", s.ParallelMode)
	}
	if (s.Simulator == "func" || s.Simulator == "iss") && !s.Config.isZero() {
		return specErrf("simulator %q is functional and takes no cache/bpred config", s.Simulator)
	}
	if _, err := s.predictor(); err != nil {
		return err
	}
	if err := s.checkCaches(); err != nil {
		return err
	}
	// Assemble now so a syntactically broken inline program is a 400, not a
	// failed job. Kernels are known-good; skip the redundant work for them.
	if s.Source != "" {
		if _, err := arm.Assemble(s.Source, 0x8000); err != nil {
			return specErrf("source does not assemble: %v", err)
		}
	}
	return nil
}

// Canonical returns the canonical bytes of a normalized spec.
func (s *JobSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A JobSpec is plain data; this cannot fail.
		panic(err)
	}
	return b
}

// ID returns the spec's content address: the hex SHA-256 of its canonical
// bytes.
func (s *JobSpec) ID() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// WorkloadLabel names the workload in reports: the kernel name, or
// "inline" for submitted source.
func (s *JobSpec) WorkloadLabel() string {
	if s.Kernel != "" {
		return s.Kernel
	}
	return "inline"
}

// ConfigLabel names a non-default configuration in reports.
func (s *JobSpec) ConfigLabel() string {
	if s.Config.isZero() {
		return ""
	}
	var parts []string
	if s.Config.ICache != nil {
		parts = append(parts, "icache")
	}
	if s.Config.DCache != nil {
		parts = append(parts, "dcache")
	}
	if s.Config.Bpred != "" {
		parts = append(parts, s.Config.Bpred)
	}
	return "custom:" + strings.Join(parts, "+")
}

// predictor builds the configured branch predictor, or nil for the model
// default.
func (s *JobSpec) predictor() (bpred.Predictor, error) {
	spec := strings.ToLower(strings.TrimSpace(s.Config.Bpred))
	switch {
	case spec == "":
		return nil, nil
	case spec == "nottaken":
		return bpred.NewNotTaken(), nil
	case strings.HasPrefix(spec, "bimodal:"):
		n, err := strconv.Atoi(spec[len("bimodal:"):])
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return nil, specErrf("bpred %q: bimodal entry count must be a positive power of two", spec)
		}
		return bpred.NewBimodal(n), nil
	default:
		return nil, specErrf("unknown bpred %q (want nottaken or bimodal:N)", spec)
	}
}

// checkCaches validates the cache overrides without keeping the instances.
func (s *JobSpec) checkCaches() error {
	if s.Config.ICache != nil {
		if _, err := s.Config.ICache.cache("icache"); err != nil {
			return specErrf("icache: %v", err)
		}
	}
	if s.Config.DCache != nil {
		if _, err := s.Config.DCache.cache("dcache"); err != nil {
			return specErrf("dcache: %v", err)
		}
	}
	return nil
}

// program assembles the job's workload.
func (s *JobSpec) program() (*arm.Program, error) {
	if s.Kernel != "" {
		return workload.ByName(s.Kernel).Program(s.Scale)
	}
	return arm.Assemble(s.Source, 0x8000)
}

// hierarchy builds the machine.Config/ssim.Config cache hierarchy from the
// overrides; the zero Hierarchy selects each model's defaults.
func (s *JobSpec) hierarchy() (mem.Hierarchy, error) {
	var h mem.Hierarchy
	if s.Config.ICache != nil {
		c, err := s.Config.ICache.cache("icache")
		if err != nil {
			return h, err
		}
		h.I = c
	}
	if s.Config.DCache != nil {
		c, err := s.Config.DCache.cache("dcache")
		if err != nil {
			return h, err
		}
		h.D = c
	}
	return h, nil
}

// Build assembles the program and constructs the simulator, returning the
// stepper that runs it. Called on a worker; every failure mode that can be
// detected cheaply was already rejected at admission by Normalize.
func (s *JobSpec) Build() (batch.Stepper, error) {
	p, err := s.program()
	if err != nil {
		return nil, err
	}
	h, err := s.hierarchy()
	if err != nil {
		return nil, err
	}
	pred, err := s.predictor()
	if err != nil {
		return nil, err
	}
	switch s.Simulator {
	case "strongarm":
		return simrun.Machine(machine.NewStrongARM(p, machine.Config{Caches: h, Predictor: pred})), nil
	case "xscale":
		return simrun.Machine(machine.NewXScale(p, machine.Config{Caches: h, Predictor: pred})), nil
	case "arm9":
		m, err := machine.NewARM9(p, machine.Config{Caches: h, Predictor: pred})
		if err != nil {
			return nil, err
		}
		return simrun.Machine(m), nil
	case "ssim":
		return simrun.SSim(ssim.New(p, ssim.Config{Caches: h, Predictor: pred})), nil
	case "pipe5":
		return simrun.Pipe5(pipe5.New(p, pipe5.Config{Caches: h, Predictor: pred})), nil
	case "func":
		return simrun.Functional(machine.NewFunctional(p, machine.Config{})), nil
	case "iss":
		return simrun.ISS(iss.New(p, 0)), nil
	default:
		return nil, specErrf("unknown simulator %q", s.Simulator)
	}
}
