package core

import "testing"

// The metadata accessors exist for the code generator (internal/gen), which
// walks a built net instead of simulating it: sorted_transitions cells —
// including empty ones — transition identity/capacity facts, and place
// evaluation-order positions must all be reachable without touching engine
// internals.

// buildMetaNet builds a small two-class net exercising every accessor case:
//
//	      anyT (AnyClass, prio 5)          c0b (class 0, prio 1)
//	  A ───────────────────────────▶ B ─────────────────────────▶ end
//	  A ───────────────────────────▶ B      c0a (class 0, prio 0)
//	  B ─▶ B  self (class 1, prio 0)
//
// Class 1 has no route out of A beyond the AnyClass transition, and no
// route from B to the end place at all — an empty cell once AnyClass is
// accounted for, and a genuinely empty (B, …) cell for any class id beyond
// the declared ones.
func buildMetaNet(t *testing.T) (n *Net, a, b, end *Place, anyT, c0a, c0b, self *Transition) {
	t.Helper()
	n = NewNet(2)
	sa := n.Stage("SA", 1)
	sb := n.Stage("SB", 1)
	a = n.Place("A", sa)
	b = n.Place("B", sb)
	end = n.EndPlace("end")
	anyT = n.AddTransition(&Transition{Name: "any", Class: AnyClass, From: a, To: b, Priority: 5})
	c0b = n.AddTransition(&Transition{Name: "c0b", Class: 0, From: b, To: end, Priority: 1})
	c0a = n.AddTransition(&Transition{Name: "c0a", Class: 0, From: b, To: end, Priority: 0})
	self = n.AddTransition(&Transition{Name: "self", Class: 1, From: b, To: b, Priority: 0})
	return n, a, b, end, anyT, c0a, c0b, self
}

func TestSortedTransitionsCells(t *testing.T) {
	n, a, b, _, anyT, c0a, c0b, self := buildMetaNet(t)

	// Before Build the table does not exist.
	if got := n.SortedTransitions(a, 0); got != nil {
		t.Fatalf("unbuilt net: SortedTransitions = %v, want nil", got)
	}
	n.MustBuild()

	cases := []struct {
		name  string
		place *Place
		class ClassID
		want  []*Transition
	}{
		{"anyclass merged into class 0", a, 0, []*Transition{anyT}},
		{"anyclass merged into class 1", a, 1, []*Transition{anyT}},
		{"priority order, stable", b, 0, []*Transition{c0a, c0b}},
		{"self-loop only", b, 1, []*Transition{self}},
		{"AnyClass id is not a cell", a, AnyClass, nil},
		{"class id out of range", b, ClassID(7), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := n.SortedTransitions(tc.place, tc.class)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d transitions, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("slot %d: got %s, want %s", i, got[i].Name, tc.want[i].Name)
				}
			}
		})
	}
}

// TestSortedTransitionsEmptyCell pins the representation of a (place, class)
// pair with no outgoing transitions at all: a nil slice, distinguishable
// from a populated cell but safe to range over — the generator emits a
// "token of this class can never leave" stall arm for it.
func TestSortedTransitionsEmptyCell(t *testing.T) {
	n := NewNet(3)
	s := n.Stage("S", 1)
	p := n.Place("P", s)
	end := n.EndPlace("end")
	n.AddTransition(&Transition{Name: "t0", Class: 0, From: p, To: end})
	n.MustBuild()
	for c := ClassID(1); c < 3; c++ {
		if got := n.SortedTransitions(p, c); len(got) != 0 {
			t.Fatalf("class %d: got %d transitions, want empty cell", c, len(got))
		}
	}
	if got := n.SortedTransitions(end, 0); len(got) != 0 {
		t.Fatalf("end place: got %d transitions, want empty cell", len(got))
	}
}

func TestMetadataAccessors(t *testing.T) {
	n, a, b, end, anyT, c0a, c0b, self := buildMetaNet(t)
	if n.Built() {
		t.Fatal("Built() true before Build")
	}
	n.MustBuild()
	if !n.Built() {
		t.Fatal("Built() false after Build")
	}

	// IDs are dense creation indices; transition ids match Transitions()
	// order (the trace Ops table contract).
	for i, tr := range n.Transitions() {
		if tr.ID() != i {
			t.Fatalf("transition %s: ID %d at index %d", tr.Name, tr.ID(), i)
		}
	}
	if a.Stage.ID() != 0 || b.Stage.ID() != 1 {
		t.Fatalf("stage ids: A=%d B=%d, want 0, 1", a.Stage.ID(), b.Stage.ID())
	}

	// Capacity facts: A->B consumes B's latch; moves to the end place and
	// self-loops are latch-free.
	caps := []struct {
		tr   *Transition
		want bool
	}{{anyT, true}, {c0a, false}, {c0b, false}, {self, false}}
	for _, tc := range caps {
		if got := tc.tr.NeedsCapacity(); got != tc.want {
			t.Fatalf("%s: NeedsCapacity = %v, want %v", tc.tr.Name, got, tc.want)
		}
	}

	// Reverse topological order: end first, then B, then A; Position is the
	// slot in that order.
	order := n.Order()
	wantOrder := []*Place{end, b, a}
	for i, p := range wantOrder {
		if order[i] != p {
			t.Fatalf("order[%d] = %s, want %s", i, order[i].Name, p.Name)
		}
		if p.Position() != i {
			t.Fatalf("%s: Position = %d, want %d", p.Name, p.Position(), i)
		}
	}
}

// TestTokenExternalState covers the state fallback generated simulators use
// for feedback (bypass) queries: a token outside any net answers InState
// from SetExternalState, never matches the -1 sentinel, and a recycle
// clears the state.
func TestTokenExternalState(t *testing.T) {
	tok := NewToken(0, nil)
	if tok.InState(0) || tok.InState(-1) {
		t.Fatal("fresh token reports a residency state")
	}
	tok.SetExternalState(2)
	if !tok.InState(2) {
		t.Fatal("InState(2) false after SetExternalState(2)")
	}
	if tok.InState(1) || tok.InState(-1) {
		t.Fatal("InState matches a state that was not set")
	}
	tok.Recycle(0, nil)
	if tok.InState(2) {
		t.Fatal("external state survived Recycle")
	}

	// Inside a net the place pointer wins regardless of external state.
	n := NewNet(1)
	p := n.Place("P", n.Stage("S", 1))
	n.EndPlace("end")
	n.MustBuild()
	tok2 := NewToken(0, nil)
	tok2.SetExternalState(1)
	if !n.Inject(tok2, p) {
		t.Fatal("inject failed")
	}
	if !tok2.InState(p.ID()) {
		t.Fatal("injected token not in its place's state")
	}
	if tok2.InState(1) {
		t.Fatal("external state visible while the token lives in a net")
	}
}
