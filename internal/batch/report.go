package batch

import (
	"bytes"
	"encoding/json"

	"rcpn/internal/obsv"
)

// JSON report, schema "rcpn-batch/v1". Two requirements shape it:
//
//   - Deterministic: the same job matrix must serialize to the same bytes no
//     matter how many workers ran it or how fast the host was. Results are
//     emitted in submission order and wall-clock fields are opt-in, so the
//     default report is a pure function of the simulated outcomes. (Extra
//     metric maps are fine: encoding/json sorts map keys.)
//   - Machine-readable: one object per job with the cell coordinates spelled
//     out, so downstream tooling can pivot without parsing table text.

// Schema identifies the report format.
const Schema = "rcpn-batch/v1"

type jsonJob struct {
	Simulator string              `json:"simulator"`
	Workload  string              `json:"workload"`
	Config    string              `json:"config,omitempty"`
	Interval  string              `json:"interval,omitempty"`
	Cycles    int64               `json:"cycles"`
	Instret   uint64              `json:"instructions"`
	CPI       float64             `json:"cpi"`
	Extra     map[string]float64  `json:"extra,omitempty"`
	Stalls    *obsv.StallSnapshot `json:"stalls,omitempty"`
	Error     string              `json:"error,omitempty"`
	Panicked  bool                `json:"panicked,omitempty"`
	TimedOut  bool                `json:"timed_out,omitempty"`
	Canceled  bool                `json:"canceled,omitempty"`
	WallSecs  float64             `json:"wall_seconds,omitempty"`
}

type jsonReport struct {
	Schema   string    `json:"schema"`
	Workers  int       `json:"workers,omitempty"`
	WallSecs float64   `json:"wall_seconds,omitempty"`
	Jobs     []jsonJob `json:"jobs"`
}

// JSON renders the report. With includeWall false (the deterministic form),
// worker count and every wall-clock field are omitted and the bytes depend
// only on the job outcomes; with true, host timing is embedded for
// performance reporting.
func (rep *Report) JSON(includeWall bool) ([]byte, error) {
	out := jsonReport{Schema: Schema, Jobs: make([]jsonJob, 0, len(rep.Results))}
	if includeWall {
		out.Workers = rep.Workers
		out.WallSecs = rep.Wall.Seconds()
	}
	for _, r := range rep.Results {
		j := jsonJob{
			Simulator: r.Simulator, Workload: r.Workload,
			Config: r.Config, Interval: r.Interval,
			Cycles: r.Cycles, Instret: r.Instret, CPI: r.CPI(),
			Extra: r.Extra, Stalls: r.Stalls, Error: r.Err,
			Panicked: r.Panicked, TimedOut: r.TimedOut, Canceled: r.Canceled,
		}
		if includeWall {
			j.WallSecs = r.Wall.Seconds()
		}
		out.Jobs = append(out.Jobs, j)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
