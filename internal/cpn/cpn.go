// Package cpn implements standard Colored Petri Nets [Jensen 1997]: places
// holding multisets of colored tokens, transitions with guarded input and
// output arcs, and a conventional enabled-transition-search engine.
//
// It exists for three reasons mirroring the paper:
//
//  1. §3: "It is possible to convert an RCPN to a CPN and hence reuse the
//     rich varieties of analysis, verification and synthesis techniques" —
//     Convert() performs this conversion, materializing RCPN's implicit
//     output-capacity rule as the explicit back-edge capacity places of
//     Figure 2(b).
//  2. The analyses (reachability, boundedness, deadlock, token
//     conservation) run on the converted nets (analyze.go).
//  3. The generic engine here pays the costs RCPN eliminates — scanning all
//     transitions for enablement every step, back-edge resource places —
//     and is the "naive CPN simulation" arm of the ablation benchmarks.
package cpn

import "fmt"

// Color distinguishes token kinds: instruction classes, capacity slots,
// reservation markers.
type Color int

// Token is a colored token, optionally carrying data. Tokens carry a
// timestamp in the style of Jensen's timed CPNs: a token participates in
// bindings only once the step counter reaches availableAt.
type Token struct {
	Color Color
	Data  any

	availableAt int64
}

// Place holds a multiset of tokens.
type Place struct {
	Name   string
	tokens []Token
	id     int
}

// Tokens returns the current tokens (owned by the place).
func (p *Place) Tokens() []Token { return p.tokens }

// Count returns the number of tokens of the given color.
func (p *Place) Count(c Color) int {
	n := 0
	for _, t := range p.tokens {
		if t.Color == c {
			n++
		}
	}
	return n
}

// Add appends a token.
func (p *Place) Add(t Token) { p.tokens = append(p.tokens, t) }

// Arc connects a place to a transition with an optional token filter.
type Arc struct {
	Place *Place
	// Filter restricts which tokens the arc can consume; nil accepts any.
	Filter func(Token) bool
	// Emit builds the token an output arc produces, given the consumed
	// binding; nil forwards the first consumed token unchanged.
	Emit func(binding []Token) Token
}

// Transition is a CPN transition: it is enabled when every input arc can
// bind a distinct token and the guard holds on the binding.
type Transition struct {
	Name  string
	In    []Arc
	Out   []Arc
	Guard func(binding []Token) bool
	// Action runs on firing, before outputs are produced.
	Action func(binding []Token)
	// Fires counts firings.
	Fires uint64
}

// Net is a CPN model.
type Net struct {
	places      []*Place
	transitions []*Transition
	cycle       int64
	// Searches counts transition-enablement tests — the work a generic
	// engine performs that the RCPN engine's static tables avoid.
	Searches uint64
}

// New creates an empty net.
func New() *Net { return &Net{} }

// Place adds a place.
func (n *Net) Place(name string) *Place {
	p := &Place{Name: name, id: len(n.places)}
	n.places = append(n.places, p)
	return p
}

// AddTransition adds a transition.
func (n *Net) AddTransition(t *Transition) *Transition {
	n.transitions = append(n.transitions, t)
	return t
}

// Places returns all places.
func (n *Net) Places() []*Place { return n.places }

// Transitions returns all transitions.
func (n *Net) Transitions() []*Transition { return n.transitions }

// CycleCount returns the number of synchronous steps executed.
func (n *Net) CycleCount() int64 { return n.cycle }

// bind attempts to bind one token per input arc (distinct tokens when arcs
// share a place), honoring token timestamps so that an instruction token
// produced this step cannot fly through several stages at once. It returns
// per-arc token indices or nil.
func (n *Net) bind(t *Transition, now int64) ([]int, []Token) {
	idx := make([]int, len(t.In))
	binding := make([]Token, len(t.In))
	used := map[[2]int]bool{} // (placeID, tokenIdx) already bound
	for ai, arc := range t.In {
		found := -1
		for ti, tok := range arc.Place.tokens {
			if tok.availableAt > now {
				continue
			}
			if used[[2]int{arc.Place.id, ti}] {
				continue
			}
			if arc.Filter != nil && !arc.Filter(tok) {
				continue
			}
			found = ti
			break
		}
		if found < 0 {
			return nil, nil
		}
		used[[2]int{arc.Place.id, found}] = true
		idx[ai] = found
		binding[ai] = arc.Place.tokens[found]
	}
	if t.Guard != nil && !t.Guard(binding) {
		return nil, nil
	}
	return idx, binding
}

// fire consumes the bound tokens and produces outputs.
func (n *Net) fire(t *Transition, idx []int, binding []Token, now int64) {
	// Remove bound tokens; per place, remove larger indices first.
	type rm struct {
		p *Place
		i int
	}
	var rms []rm
	for ai, arc := range t.In {
		rms = append(rms, rm{arc.Place, idx[ai]})
	}
	for i := 0; i < len(rms); i++ {
		for j := i + 1; j < len(rms); j++ {
			if rms[j].p == rms[i].p && rms[j].i > rms[i].i {
				rms[i], rms[j] = rms[j], rms[i]
			}
		}
	}
	for _, r := range rms {
		p := r.p
		copy(p.tokens[r.i:], p.tokens[r.i+1:])
		p.tokens = p.tokens[:len(p.tokens)-1]
	}
	if t.Action != nil {
		t.Action(binding)
	}
	for _, arc := range t.Out {
		var tok Token
		if arc.Emit != nil {
			tok = arc.Emit(binding)
		} else if len(binding) > 0 {
			tok = binding[0]
		}
		// Capacity slots freed by a firing are usable in the same step (a
		// latch empties and refills within one cycle); instruction and
		// reservation tokens become available next step (one stage per
		// cycle).
		if tok.Color == SlotColor {
			tok.availableAt = now
		} else {
			tok.availableAt = now + 1
		}
		arc.Place.Add(tok)
	}
	t.Fires++
}

// Step performs one synchronous step in the conventional way: scan all
// transitions for an enabled binding, fire, and repeat until no transition
// can fire this step (each token moving at most once). This full scan is
// the cost the paper's sorted_transitions table removes.
func (n *Net) Step() {
	now := n.cycle
	for {
		fired := false
		for _, t := range n.transitions {
			n.Searches++
			idx, binding := n.bind(t, now)
			if idx == nil {
				continue
			}
			n.fire(t, idx, binding, now)
			fired = true
		}
		if !fired {
			break
		}
	}
	n.cycle++
}

// Run steps until stop returns true or maxSteps is exceeded.
func (n *Net) Run(stop func() bool, maxSteps int64) error {
	start := n.cycle
	for !stop() {
		if n.cycle-start >= maxSteps {
			return fmt.Errorf("cpn: step limit %d exceeded", maxSteps)
		}
		n.Step()
	}
	return nil
}
