package machine

import (
	"fmt"
	"io"
	"strings"

	"rcpn/internal/arm"
)

// Tracer renders a classic pipeline-occupancy trace: one line per cycle,
// one column per place, showing the instruction resident in each stage.
// Because places mirror the pipeline diagram, the trace falls directly out
// of the RCPN structure — no per-model tracing code is needed.
type Tracer struct {
	m     *Machine
	w     io.Writer
	limit int64 // stop tracing after this many cycles (0 = unlimited)
	shown int64
}

// AttachTracer installs a tracer writing to w for at most limit cycles
// (0 = unlimited). It must be attached before Run; the cycle loop invokes
// it after every Step.
func (m *Machine) AttachTracer(w io.Writer, limit int64) *Tracer {
	t := &Tracer{m: m, w: w, limit: limit}
	m.tracer = t
	t.header()
	return t
}

func (t *Tracer) header() {
	fmt.Fprintf(t.w, "%8s", "cycle")
	for _, p := range t.m.Net.Places() {
		if p.End {
			continue
		}
		fmt.Fprintf(t.w, " | %-22s", p.Name)
	}
	fmt.Fprintln(t.w)
}

// snap emits one trace line for the current cycle.
func (t *Tracer) snap() {
	if t.limit > 0 && t.shown >= t.limit {
		return
	}
	t.shown++
	fmt.Fprintf(t.w, "%8d", t.m.Net.CycleCount()-1)
	for _, p := range t.m.Net.Places() {
		if p.End {
			continue
		}
		cell := ""
		if n := p.Reservations(); n > 0 {
			cell = fmt.Sprintf("<%d res> ", n)
		}
		var insts []string
		for _, tok := range p.Tokens() {
			if in, ok := tok.Data.(*Inst); ok {
				insts = append(insts, shortDisasm(in))
			}
		}
		cell += strings.Join(insts, ",")
		fmt.Fprintf(t.w, " | %-22s", clip(cell, 22))
	}
	fmt.Fprintln(t.w)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}

// UtilizationReport renders per-transition firing counts relative to the
// executed cycles — the "different resource utilization statistics" a
// cycle-accurate simulator reports (§1). Transitions that never fired are
// listed too (unexercised paths are as interesting as hot ones).
func (m *Machine) UtilizationReport() string {
	var b strings.Builder
	cyc := m.Net.CycleCount()
	fmt.Fprintf(&b, "%-28s%12s%12s\n", "transition", "fires", "util")
	for _, t := range m.Net.Transitions() {
		util := 0.0
		if cyc > 0 {
			util = float64(t.Fires) / float64(cyc)
		}
		fmt.Fprintf(&b, "%-28s%12d%11.1f%%\n", t.Name, t.Fires, 100*util)
	}
	for _, p := range m.Net.Places() {
		if p.Stalls() > 0 {
			fmt.Fprintf(&b, "stalled token-cycles at %-4s%12d\n", p.Name, p.Stalls())
		}
	}
	return b.String()
}

// shortDisasm renders "8004:add r0,r0,#1" style cells.
func shortDisasm(in *Inst) string {
	d := arm.Disassemble(&in.I)
	if i := strings.IndexByte(d, ' '); i > 0 {
		d = d[:i]
	}
	mark := ""
	if in.annulled {
		mark = "!"
	}
	return fmt.Sprintf("%x:%s%s", in.I.Addr&0xffff, d, mark)
}
