package arm

import (
	"fmt"
	"strconv"
	"strings"
)

type mnKind uint8

const (
	mnDP mnKind = iota
	mnShiftAlias
	mnNeg
	mnMul
	mnMulLong
	mnLS
	mnLSM
	mnPush
	mnPop
	mnB
	mnSWI
	mnNop
)

type mnSpec struct {
	kind      mnKind
	cond      Cond
	op        DPOp
	shift     Shift
	setFlags  bool
	byteSz    bool
	half      bool
	signedLd  bool
	accum     bool
	signedMul bool
	load      bool
	link      bool
	pre, up   bool
}

var mnemonics = map[string]mnSpec{}

// condSpellings returns the strings that may encode cond c (including the
// hs/lo aliases and "" for AL).
func condSpellings(c Cond) []string {
	s := []string{condNames[c]}
	switch c {
	case AL:
		return []string{""}
	case CS:
		s = append(s, "hs")
	case CC:
		s = append(s, "lo")
	}
	return s
}

// addMn registers base{cond}{sfx} and base{sfx}{cond} for every condition.
func addMn(base, sfx string, proto mnSpec) {
	for c := EQ; c <= AL; c++ {
		spec := proto
		spec.cond = c
		for _, cs := range condSpellings(c) {
			mnemonics[base+cs+sfx] = spec
			mnemonics[base+sfx+cs] = spec
		}
	}
}

func init() {
	for op := OpAND; op <= OpMVN; op++ {
		proto := mnSpec{kind: mnDP, op: op}
		addMn(op.String(), "", proto)
		proto.setFlags = true
		addMn(op.String(), "s", proto)
	}
	for t := LSL; t <= ROR; t++ {
		proto := mnSpec{kind: mnShiftAlias, shift: t}
		addMn(t.String(), "", proto)
		proto.setFlags = true
		addMn(t.String(), "s", proto)
	}
	addMn("neg", "", mnSpec{kind: mnNeg})
	addMn("negs", "", mnSpec{kind: mnNeg, setFlags: true})

	addMn("mul", "", mnSpec{kind: mnMul})
	addMn("mul", "s", mnSpec{kind: mnMul, setFlags: true})
	addMn("mla", "", mnSpec{kind: mnMul, accum: true})
	addMn("mla", "s", mnSpec{kind: mnMul, accum: true, setFlags: true})

	addMn("ldr", "", mnSpec{kind: mnLS, load: true})
	addMn("ldr", "b", mnSpec{kind: mnLS, load: true, byteSz: true})
	addMn("str", "", mnSpec{kind: mnLS})
	addMn("str", "b", mnSpec{kind: mnLS, byteSz: true})
	addMn("ldr", "h", mnSpec{kind: mnLS, load: true, half: true})
	addMn("str", "h", mnSpec{kind: mnLS, half: true})
	addMn("ldr", "sb", mnSpec{kind: mnLS, load: true, byteSz: true, signedLd: true})
	addMn("ldr", "sh", mnSpec{kind: mnLS, load: true, half: true, signedLd: true})

	addMn("umull", "", mnSpec{kind: mnMulLong})
	addMn("umull", "s", mnSpec{kind: mnMulLong, setFlags: true})
	addMn("umlal", "", mnSpec{kind: mnMulLong, accum: true})
	addMn("umlal", "s", mnSpec{kind: mnMulLong, accum: true, setFlags: true})
	addMn("smull", "", mnSpec{kind: mnMulLong, signedMul: true})
	addMn("smull", "s", mnSpec{kind: mnMulLong, signedMul: true, setFlags: true})
	addMn("smlal", "", mnSpec{kind: mnMulLong, signedMul: true, accum: true})
	addMn("smlal", "s", mnSpec{kind: mnMulLong, signedMul: true, accum: true, setFlags: true})

	for _, m := range []struct {
		sfx     string
		pre, up bool
	}{{"ia", false, true}, {"ib", true, true}, {"da", false, false}, {"db", true, false}} {
		addMn("ldm", m.sfx, mnSpec{kind: mnLSM, load: true, pre: m.pre, up: m.up})
		addMn("stm", m.sfx, mnSpec{kind: mnLSM, pre: m.pre, up: m.up})
	}
	addMn("ldm", "", mnSpec{kind: mnLSM, load: true, up: true})   // default IA
	addMn("stm", "", mnSpec{kind: mnLSM, up: true})               // default IA
	addMn("ldm", "fd", mnSpec{kind: mnLSM, load: true, up: true}) // pop full-descending
	addMn("stm", "fd", mnSpec{kind: mnLSM, pre: true})            // push full-descending
	addMn("push", "", mnSpec{kind: mnPush})
	addMn("pop", "", mnSpec{kind: mnPop})

	addMn("b", "", mnSpec{kind: mnB})
	addMn("bl", "", mnSpec{kind: mnB, link: true})
	addMn("swi", "", mnSpec{kind: mnSWI})
	addMn("svc", "", mnSpec{kind: mnSWI})
	addMn("nop", "", mnSpec{kind: mnNop})
}

// splitMnemonic separates the mnemonic from the operand text.
func splitMnemonic(line string) (mn, rest string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return strings.ToLower(line), ""
	}
	return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
}

// splitOperands splits on top-level commas, honoring [...] and {...}.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseStringLit(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	return strconv.Unquote(s)
}

var regAliases = map[string]Reg{
	"sp": SP, "lr": LR, "pc": PC, "ip": 12, "fp": 11, "sl": 10, "sb": 9,
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "r") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n <= 15 {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// eval evaluates a constant expression: numbers, char literals, labels, and
// label±offset sums.
func (a *assembler) eval(expr string) (uint32, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, fmt.Errorf("empty expression")
	}
	if expr[0] == '\'' {
		v, err := strconv.Unquote(expr)
		if err != nil || len(v) != 1 {
			return 0, fmt.Errorf("bad char literal %s", expr)
		}
		return uint32(v[0]), nil
	}
	// label±offset (scan for a +/- not at position 0).
	for i := 1; i < len(expr); i++ {
		if expr[i] == '+' || expr[i] == '-' {
			lhs, err1 := a.eval(expr[:i])
			rhs, err2 := a.eval(expr[i+1:])
			if err1 != nil || err2 != nil {
				break // fall through to plain parses
			}
			if expr[i] == '+' {
				return lhs + rhs, nil
			}
			return lhs - rhs, nil
		}
	}
	if n, err := strconv.ParseInt(expr, 0, 64); err == nil {
		return uint32(n), nil
	}
	if n, err := strconv.ParseUint(expr, 0, 64); err == nil {
		return uint32(n), nil
	}
	if v, ok := a.symbols[expr]; ok {
		return v, nil
	}
	if a.pass == 1 {
		return 0, nil // labels may be forward references during sizing
	}
	return 0, fmt.Errorf("undefined symbol %q", expr)
}

// parseOp2 parses a flexible operand from the remaining operand fields:
// "#imm" | reg | reg, shift #amt | reg, shift rs | reg, rrx.
func (a *assembler) parseOp2(ops []string) (Operand2, error) {
	if len(ops) == 0 {
		return Operand2{}, fmt.Errorf("missing operand2")
	}
	first := strings.TrimSpace(ops[0])
	if strings.HasPrefix(first, "#") {
		v, err := a.eval(first[1:])
		if err != nil {
			return Operand2{}, err
		}
		return ImmOp(v), nil
	}
	rm, err := parseReg(first)
	if err != nil {
		return Operand2{}, err
	}
	op2 := RegOp(rm)
	if len(ops) == 1 {
		return op2, nil
	}
	if len(ops) > 2 {
		return Operand2{}, fmt.Errorf("trailing operands after shift")
	}
	shiftStr := strings.TrimSpace(ops[1])
	if strings.EqualFold(shiftStr, "rrx") {
		op2.ShiftTyp = ROR
		op2.ShiftAmt = 0
		return op2, nil
	}
	fields := strings.Fields(shiftStr)
	if len(fields) != 2 {
		return Operand2{}, fmt.Errorf("bad shift %q", shiftStr)
	}
	var typ Shift
	switch strings.ToLower(fields[0]) {
	case "lsl":
		typ = LSL
	case "lsr":
		typ = LSR
	case "asr":
		typ = ASR
	case "ror":
		typ = ROR
	default:
		return Operand2{}, fmt.Errorf("bad shift type %q", fields[0])
	}
	op2.ShiftTyp = typ
	if strings.HasPrefix(fields[1], "#") {
		v, err := a.eval(fields[1][1:])
		if err != nil {
			return Operand2{}, err
		}
		if v == 32 && (typ == LSR || typ == ASR) {
			v = 0 // LSR/ASR #32 encode as amount 0
		}
		if v > 31 {
			return Operand2{}, fmt.Errorf("shift amount %d out of range", v)
		}
		op2.ShiftAmt = uint8(v)
		return op2, nil
	}
	rs, err := parseReg(fields[1])
	if err != nil {
		return Operand2{}, err
	}
	op2.ShiftReg = true
	op2.Rs = rs
	return op2, nil
}

func (a *assembler) parseRegList(s string) (uint16, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return 0, fmt.Errorf("bad register list %q", s)
	}
	var mask uint16
	for _, part := range strings.Split(s[1:len(s)-1], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if i := strings.IndexByte(part, '-'); i > 0 {
			lo, err1 := parseReg(part[:i])
			hi, err2 := parseReg(part[i+1:])
			if err1 != nil || err2 != nil || lo > hi {
				return 0, fmt.Errorf("bad register range %q", part)
			}
			for r := lo; r <= hi; r++ {
				mask |= 1 << r
			}
			continue
		}
		r, err := parseReg(part)
		if err != nil {
			return 0, err
		}
		mask |= 1 << r
	}
	if mask == 0 {
		return 0, fmt.Errorf("empty register list")
	}
	return mask, nil
}

func (a *assembler) encodeInstr(mn, rest string) (uint32, error) {
	spec, ok := mnemonics[mn]
	if !ok {
		return 0, fmt.Errorf("unknown mnemonic %q", mn)
	}
	ops := splitOperands(rest)
	switch spec.kind {
	case mnNop:
		return EncodeDP(spec.cond, OpMOV, false, 0, 0, RegOp(0))

	case mnDP:
		return a.encodeDP(spec, ops)

	case mnShiftAlias: // lsl rd, rm, #n|rs  ==  mov rd, rm, <shift> ...
		if len(ops) != 3 {
			return 0, fmt.Errorf("%s needs 3 operands", mn)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		op2, err := a.parseOp2([]string{ops[1], spec.shift.String() + " " + ops[2]})
		if err != nil {
			return 0, err
		}
		return EncodeDP(spec.cond, OpMOV, spec.setFlags, rd, 0, op2)

	case mnNeg: // neg rd, rm == rsb rd, rm, #0
		if len(ops) != 2 {
			return 0, fmt.Errorf("neg needs 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rm, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		return EncodeDP(spec.cond, OpRSB, spec.setFlags, rd, rm, ImmOp(0))

	case mnMul:
		want := 3
		if spec.accum {
			want = 4
		}
		if len(ops) != want {
			return 0, fmt.Errorf("multiply needs %d operands", want)
		}
		var regs [4]Reg
		for i, o := range ops {
			r, err := parseReg(o)
			if err != nil {
				return 0, err
			}
			regs[i] = r
		}
		return EncodeMul(spec.cond, spec.setFlags, spec.accum, regs[0], regs[1], regs[2], regs[3]), nil

	case mnMulLong: // umull rdlo, rdhi, rm, rs
		if len(ops) != 4 {
			return 0, fmt.Errorf("long multiply needs 4 operands")
		}
		var regs [4]Reg
		for i, o := range ops {
			r, err := parseReg(o)
			if err != nil {
				return 0, err
			}
			regs[i] = r
		}
		return EncodeMulLong(spec.cond, spec.signedMul, spec.accum, spec.setFlags,
			regs[1], regs[0], regs[2], regs[3]), nil

	case mnLS:
		return a.encodeLS(spec, ops)

	case mnLSM:
		if len(ops) != 2 {
			return 0, fmt.Errorf("ldm/stm needs base and register list")
		}
		baseStr := strings.TrimSpace(ops[0])
		wb := strings.HasSuffix(baseStr, "!")
		if wb {
			baseStr = strings.TrimSuffix(baseStr, "!")
		}
		rn, err := parseReg(baseStr)
		if err != nil {
			return 0, err
		}
		list, err := a.parseRegList(ops[1])
		if err != nil {
			return 0, err
		}
		return EncodeLSM(spec.cond, spec.load, spec.pre, spec.up, wb, rn, list), nil

	case mnPush, mnPop:
		if len(ops) != 1 {
			return 0, fmt.Errorf("push/pop need one register list")
		}
		list, err := a.parseRegList(ops[0])
		if err != nil {
			return 0, err
		}
		if spec.kind == mnPush {
			return EncodeLSM(spec.cond, false, true, false, true, SP, list), nil
		}
		return EncodeLSM(spec.cond, true, false, true, true, SP, list), nil

	case mnB:
		if len(ops) != 1 {
			return 0, fmt.Errorf("branch needs one target")
		}
		target, err := a.eval(ops[0])
		if err != nil {
			return 0, err
		}
		return EncodeBranch(spec.cond, spec.link, a.pc, target)

	case mnSWI:
		if len(ops) != 1 {
			return 0, fmt.Errorf("swi needs one operand")
		}
		expr := strings.TrimPrefix(strings.TrimSpace(ops[0]), "#")
		n, err := a.eval(expr)
		if err != nil {
			return 0, err
		}
		return EncodeSWI(spec.cond, n), nil
	}
	return 0, fmt.Errorf("internal: unhandled mnemonic kind for %q", mn)
}

func (a *assembler) encodeDP(spec mnSpec, ops []string) (uint32, error) {
	isCmp := !spec.op.WritesRd()
	usesRn := spec.op.UsesRn()
	switch {
	case isCmp:
		if len(ops) < 2 {
			return 0, fmt.Errorf("%s needs 2+ operands", spec.op)
		}
		rn, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		op2, err := a.parseOp2(ops[1:])
		if err != nil {
			return 0, err
		}
		return EncodeDP(spec.cond, spec.op, true, 0, rn, op2)
	case !usesRn:
		if len(ops) < 2 {
			return 0, fmt.Errorf("%s needs 2+ operands", spec.op)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		op2, err := a.parseOp2(ops[1:])
		if err != nil {
			return 0, err
		}
		return EncodeDP(spec.cond, spec.op, spec.setFlags, rd, 0, op2)
	default:
		if len(ops) < 3 {
			return 0, fmt.Errorf("%s needs 3+ operands", spec.op)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rn, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		op2, err := a.parseOp2(ops[2:])
		if err != nil {
			return 0, err
		}
		return EncodeDP(spec.cond, spec.op, spec.setFlags, rd, rn, op2)
	}
}

func (a *assembler) encodeLS(spec mnSpec, ops []string) (uint32, error) {
	if len(ops) < 2 {
		return 0, fmt.Errorf("load/store needs a register and an address")
	}
	rd, err := parseReg(ops[0])
	if err != nil {
		return 0, err
	}
	addr := strings.TrimSpace(ops[1])

	// ldr rd, =expr  (literal pool)
	if strings.HasPrefix(addr, "=") {
		if !spec.load || spec.byteSz || spec.half || spec.signedLd {
			return 0, fmt.Errorf("=expr only valid with word ldr")
		}
		a.fixups = append(a.fixups, litFixup{
			outPos: len(a.out), instrAddr: a.pc, expr: strings.TrimSpace(addr[1:]),
		})
		// Offset and U bit are patched at pool flush.
		w, err := EncodeLS(spec.cond, true, false, rd,
			MemMode{Rn: PC, Off: ImmOp(0), PreIndex: true})
		return w, err
	}

	// ldr rd, label  (pc-relative)
	if !strings.HasPrefix(addr, "[") {
		target, err := a.eval(addr)
		if err != nil {
			return 0, err
		}
		diff := int64(target) - int64(a.pc) - 8
		up := diff >= 0
		if !up {
			diff = -diff
		}
		if diff > 0xfff {
			return 0, fmt.Errorf("pc-relative target out of range (%d bytes)", diff)
		}
		mm := MemMode{Rn: PC, Off: ImmOp(uint32(diff)), Up: up, PreIndex: true}
		if spec.half || spec.signedLd {
			return EncodeHS(spec.cond, spec.load, spec.signedLd, spec.half, rd, mm)
		}
		return EncodeLS(spec.cond, spec.load, spec.byteSz, rd, mm)
	}

	m := MemMode{Up: true}
	post := len(ops) > 2 // "[rn], #off" split into two operand fields
	bang := strings.HasSuffix(addr, "!")
	if bang {
		addr = strings.TrimSuffix(addr, "!")
	}
	if !strings.HasSuffix(addr, "]") {
		return 0, fmt.Errorf("bad address %q", ops[1])
	}
	inner := splitOperands(addr[1 : len(addr)-1])
	rn, err := parseReg(inner[0])
	if err != nil {
		return 0, err
	}
	m.Rn = rn

	var offFields []string
	switch {
	case post:
		if bang {
			return 0, fmt.Errorf("cannot combine post-index and '!'")
		}
		if len(inner) != 1 {
			return 0, fmt.Errorf("post-indexed base must be plain [rn]")
		}
		m.PreIndex = false
		offFields = ops[2:]
	default:
		m.PreIndex = true
		m.Writeback = bang
		offFields = inner[1:]
	}
	if len(offFields) == 0 {
		m.Off = ImmOp(0)
	} else {
		f0 := strings.TrimSpace(offFields[0])
		neg := false
		switch {
		case strings.HasPrefix(f0, "#-"):
			neg = true
			offFields[0] = "#" + f0[2:]
		case strings.HasPrefix(f0, "-"):
			neg = true
			offFields[0] = f0[1:]
		case strings.HasPrefix(f0, "+"):
			offFields[0] = f0[1:]
		}
		op2, err := a.parseOp2(offFields)
		if err != nil {
			return 0, err
		}
		if op2.ShiftReg {
			return 0, fmt.Errorf("register-shifted offsets are not supported")
		}
		m.Off = op2
		m.Up = !neg
	}
	if spec.half || spec.signedLd {
		return EncodeHS(spec.cond, spec.load, spec.signedLd, spec.half, rd, m)
	}
	return EncodeLS(spec.cond, spec.load, spec.byteSz, rd, m)
}
