package mem

import "fmt"

// CacheStats accumulates cache access statistics — the "cache hit ratios"
// the paper lists among the performance metrics a cycle-accurate simulator
// must provide.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns the total access count.
func (s CacheStats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRatio returns hits/accesses (1 when the cache was never accessed).
func (s CacheStats) HitRatio() float64 {
	if s.Accesses() == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses())
}

// CacheConfig describes one cache level's geometry and timing.
type CacheConfig struct {
	Name        string
	Sets        int // power of two
	Ways        int
	LineBytes   int // power of two
	HitLatency  int // cycles for a hit
	MissLatency int // cycles for a miss (total, not additional)
}

// Validate reports a configuration error, if any.
func (c CacheConfig) Validate() error {
	switch {
	case c.Sets <= 0 || c.Sets&(c.Sets-1) != 0:
		return fmt.Errorf("mem: %s: sets %d must be a positive power of two", c.Name, c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("mem: %s: ways %d must be positive", c.Name, c.Ways)
	case c.LineBytes < 4 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: %s: line size %d must be a power of two >= 4", c.Name, c.LineBytes)
	case c.HitLatency < 1 || c.MissLatency < c.HitLatency:
		return fmt.Errorf("mem: %s: latencies hit=%d miss=%d invalid", c.Name, c.HitLatency, c.MissLatency)
	}
	return nil
}

// Cache is a timing-only set-associative cache with LRU replacement. It
// tracks which lines are resident and returns the access latency; the data
// itself always lives in the flat Memory, which is the standard structure
// for cycle-accurate simulators of this class (timing and functionality are
// computed together but stored apart).
type Cache struct {
	cfg      CacheConfig
	lineBits uint
	setMask  uint32
	tags     []uint32 // sets*ways entries; tag 0xffffffff = invalid
	lru      []uint64 // per-entry last-use stamp; larger = more recent
	clock    uint64
	Stats    CacheStats
}

// NewCache builds a cache from cfg.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, setMask: uint32(cfg.Sets - 1)}
	for 1<<c.lineBits < cfg.LineBytes {
		c.lineBits++
	}
	n := cfg.Sets * cfg.Ways
	c.tags = make([]uint32, n)
	c.lru = make([]uint64, n)
	for i := range c.tags {
		c.tags[i] = ^uint32(0)
	}
	return c, nil
}

// MustCache is NewCache, panicking on configuration errors; for use with
// static literal configurations.
func MustCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up addr, updates residency/LRU and statistics, and returns
// the access latency in cycles.
func (c *Cache) Access(addr uint32) int {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	entries := c.tags[base : base+c.cfg.Ways]
	hitWay := -1
	for w, t := range entries {
		if t == line {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touch(base, hitWay)
		c.Stats.Hits++
		return c.cfg.HitLatency
	}
	c.Stats.Misses++
	victim := 0
	oldest := ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == ^uint32(0) {
			victim = w
			break
		}
		if c.lru[base+w] < oldest {
			oldest = c.lru[base+w]
			victim = w
		}
	}
	c.tags[base+victim] = line
	c.touch(base, victim)
	return c.cfg.MissLatency
}

// Probe reports whether addr currently hits, without updating any state.
func (c *Cache) Probe(addr uint32) bool {
	line := addr >> c.lineBits
	base := int(line&c.setMask) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

func (c *Cache) touch(base, way int) {
	c.clock++
	c.lru[base+way] = c.clock
}

// CacheState is a serializable snapshot of a cache's dynamic contents —
// residency tags, LRU stamps and statistics, but not the geometry, which the
// owning configuration defines. Checkpoints carry it as optional warm
// microarchitectural state: restoring it reproduces the exact hit/miss
// sequence the donor simulation would have seen.
type CacheState struct {
	Tags  []uint32
	LRU   []uint64
	Clock uint64
	Stats CacheStats
}

// State returns a copy of the cache's dynamic state.
func (c *Cache) State() CacheState {
	return CacheState{
		Tags:  append([]uint32(nil), c.tags...),
		LRU:   append([]uint64(nil), c.lru...),
		Clock: c.clock,
		Stats: c.Stats,
	}
}

// SetState installs a snapshot taken from a cache of identical geometry.
func (c *Cache) SetState(st CacheState) error {
	if len(st.Tags) != len(c.tags) || len(st.LRU) != len(c.lru) {
		return fmt.Errorf("mem: %s: snapshot geometry %d/%d entries, cache has %d",
			c.cfg.Name, len(st.Tags), len(st.LRU), len(c.tags))
	}
	copy(c.tags, st.Tags)
	copy(c.lru, st.LRU)
	c.clock = st.Clock
	c.Stats = st.Stats
	return nil
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = ^uint32(0)
		c.lru[i] = 0
	}
	c.clock = 0
	c.Stats = CacheStats{}
}

// Hierarchy bundles the split I/D caches used by the processor models, as in
// the XScale (32K/32K) and StrongARM (16K/16K) configurations.
type Hierarchy struct {
	I *Cache
	D *Cache
}

// DefaultStrongARM returns the SA-110-like 16KB 32-way I and D caches.
func DefaultStrongARM() Hierarchy {
	return Hierarchy{
		I: MustCache(CacheConfig{Name: "icache", Sets: 16, Ways: 32, LineBytes: 32, HitLatency: 1, MissLatency: 24}),
		D: MustCache(CacheConfig{Name: "dcache", Sets: 16, Ways: 32, LineBytes: 32, HitLatency: 1, MissLatency: 24}),
	}
}

// DefaultXScale returns the PXA250-like 32KB 32-way I and D caches.
func DefaultXScale() Hierarchy {
	return Hierarchy{
		I: MustCache(CacheConfig{Name: "icache", Sets: 32, Ways: 32, LineBytes: 32, HitLatency: 1, MissLatency: 30}),
		D: MustCache(CacheConfig{Name: "dcache", Sets: 32, Ways: 32, LineBytes: 32, HitLatency: 1, MissLatency: 30}),
	}
}
