package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rcpn/internal/batch"
)

// Config sizes the service.
type Config struct {
	// Workers is the simulation pool size (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (default 64).
	// When the queue is full, POST /v1/jobs answers 429 + Retry-After
	// instead of buffering without limit.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (default 1024).
	CacheEntries int
	// JobTimeout is the per-job deadline (default 5m; 0 keeps the default —
	// a service must not run unbounded jobs, use a large value instead).
	JobTimeout time.Duration
	// MaxCycles caps jobs whose spec leaves max_cycles unset (default 1<<32).
	MaxCycles int64
	// Chunk is the Drive burst length between cancellation checks and
	// progress updates (default batch.DefaultChunk).
	Chunk int64
	// SSEInterval is the progress-event period on /v1/jobs/{id}/events
	// (default 500ms).
	SSEInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 1 << 32
	}
	if c.SSEInterval <= 0 {
		c.SSEInterval = 500 * time.Millisecond
	}
	return c
}

// Job states. A job moves queued → running → done|failed; content
// addressing means a resubmitted spec joins the existing job wherever it
// is in that lifecycle.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// job is one content-addressed unit of work and its lifecycle record.
type job struct {
	id   string
	spec JobSpec

	// live progress, written by the worker at every Drive chunk.
	cycles    atomic.Int64
	instret   atomic.Uint64
	startNano atomic.Int64 // wall start of the run, 0 until running
	endNano   atomic.Int64 // wall end of the run, 0 until terminal

	mu     sync.Mutex
	state  string
	result []byte // one-job rcpn-batch/v1 report, set when done/failed
	// transient marks a failure whose bytes or outcome depend on wall time
	// (timeout, drain cancellation, panic trace): resubmitting the spec
	// retries instead of returning the cached failure.
	transient bool

	done chan struct{} // closed on completion
}

func (j *job) snapshot() (state string, result []byte, transient bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.transient
}

// Server is the simulation service: admission (validation, content
// addressing, dedup, backpressure), a bounded queue into an internal/batch
// pool, the result cache, and the HTTP surface. It implements
// http.Handler.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	pool       *batch.Pool
	hardCtx    context.Context
	hardCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	cache    *lru
	draining bool

	// buildOverride, when set (tests), replaces JobSpec.Build.
	buildOverride func(*JobSpec) (batch.Stepper, error)

	// counters; gauges for queued/running, cumulative otherwise.
	queued    atomic.Int64
	running   atomic.Int64
	inflight  atomic.Int64
	doneCt    atomic.Int64
	failedCt  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	rejFull   atomic.Int64
	rejBad    atomic.Int64
	cycles    atomic.Int64 // cumulative simulated cycles
}

// New builds and starts a server (its worker pool runs immediately).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		jobs:  make(map[string]*job),
		cache: newLRU(cfg.CacheEntries),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.pool = batch.NewPool(cfg.QueueDepth, batch.Options{
		Workers: cfg.Workers,
		Timeout: cfg.JobTimeout,
		Context: s.hardCtx,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain is the graceful-shutdown protocol: stop admitting (POST answers
// 503, /healthz flips to not-ready), let queued and running jobs finish,
// and after the grace period cancel whatever is still in flight — Drive's
// chunked context checks stop the simulators within one chunk, nothing is
// abandoned. Drain blocks until the pool is idle and is safe to call more
// than once.
func (s *Server) Drain(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if grace <= 0 {
		s.hardCancel()
	} else {
		t := time.AfterFunc(grace, s.hardCancel)
		defer t.Stop()
	}
	s.pool.Close()
	s.hardCancel()
}

// ---- admission ------------------------------------------------------------

type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached,omitempty"`    // finished result already on hand
	Coalesced bool   `json:"coalesced,omitempty"` // joined an in-flight identical job
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := ParseSpec(r.Body)
	if err != nil {
		s.rejBad.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	id := spec.ID()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	if j, ok := s.jobs[id]; ok {
		state, _, transient := j.snapshot()
		retryable := (state == StateDone || state == StateFailed) && transient
		if !retryable {
			resp := submitResponse{ID: id, State: state}
			switch state {
			case StateDone, StateFailed:
				s.hits.Add(1)
				s.cache.get(id) // refresh recency
				resp.Cached = true
			default:
				s.coalesced.Add(1)
				resp.Coalesced = true
			}
			s.mu.Unlock()
			writeJSON(w, http.StatusAccepted, resp)
			return
		}
		// A transient failure (timeout, drain, panic) is retried, not
		// replayed: drop the old record and fall through to a fresh enqueue.
		delete(s.jobs, id)
	}
	j := &job{id: id, spec: *spec, state: StateQueued, done: make(chan struct{})}
	err = s.pool.TrySubmit(batch.Job{
		Simulator: spec.Simulator,
		Workload:  spec.WorkloadLabel(),
		Config:    spec.ConfigLabel(),
		Run: func(ctx context.Context) (batch.Metrics, error) {
			return s.execute(ctx, j)
		},
	}, func(res batch.Result) { s.finish(j, res) })
	switch err {
	case nil:
	case batch.ErrQueueFull:
		s.rejFull.Add(1)
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "queue full"})
		return
	default: // batch.ErrPoolClosed: drain raced us
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	s.jobs[id] = j
	s.misses.Add(1)
	s.queued.Add(1)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: StateQueued})
}

// ---- execution ------------------------------------------------------------

// execute is the job body, run on a pool worker under the server's hard
// context and the per-job deadline.
func (s *Server) execute(ctx context.Context, j *job) (batch.Metrics, error) {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	j.startNano.Store(time.Now().UnixNano())
	s.queued.Add(-1)
	s.running.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	build := s.buildOverride
	if build == nil {
		build = func(spec *JobSpec) (batch.Stepper, error) { return spec.Build() }
	}
	st, err := build(&j.spec)
	if err != nil {
		return batch.Metrics{}, err
	}
	cap := j.spec.MaxCycles
	if cap <= 0 {
		cap = s.cfg.MaxCycles
	}
	err = batch.Drive(ctx, st, cap, s.cfg.Chunk, func(c int64, i uint64) {
		j.cycles.Store(c)
		j.instret.Store(i)
	})
	c, i := st.Progress()
	j.cycles.Store(c)
	j.instret.Store(i)
	return batch.Metrics{Cycles: c, Instret: i}, err
}

// finish records the outcome: the deterministic one-job rcpn-batch/v1
// payload becomes the job's result and enters the content-addressed cache.
func (s *Server) finish(j *job, res batch.Result) {
	j.endNano.Store(time.Now().UnixNano())
	rep := &batch.Report{Results: []batch.Result{res}}
	payload, err := rep.JSON(false)
	if err != nil { // cannot happen for plain data; keep the job terminal anyway
		payload = []byte(fmt.Sprintf(`{"schema":%q,"jobs":[{"error":%q}]}`, batch.Schema, err))
	}
	state := StateDone
	if res.Err != "" {
		state = StateFailed
	}
	transient := res.TimedOut || res.Canceled || res.Panicked

	s.mu.Lock()
	j.mu.Lock()
	j.state = state
	j.result = payload
	j.transient = transient
	j.mu.Unlock()
	for _, evicted := range s.cache.add(j.id, payload) {
		if old, ok := s.jobs[evicted]; ok && old != j {
			delete(s.jobs, evicted)
		}
	}
	s.mu.Unlock()

	s.running.Add(-1)
	if state == StateDone {
		s.doneCt.Add(1)
	} else {
		s.failedCt.Add(1)
	}
	s.cycles.Add(res.Cycles)
	close(j.done)
}

// ---- queries --------------------------------------------------------------

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// progressBody is the live view of a running job.
type progressBody struct {
	Cycles      int64   `json:"cycles"`
	Instret     uint64  `json:"instructions"`
	CPI         float64 `json:"cpi"`
	MCyclesPSec float64 `json:"mcycles_per_sec"`
	MInstrPSec  float64 `json:"minstr_per_sec"`
	WallSeconds float64 `json:"wall_seconds"`
}

func (j *job) progress() progressBody {
	p := batchProgress(j)
	return progressBody{
		Cycles: p.Cycles, Instret: p.Instret, CPI: p.CPI(),
		MCyclesPSec: p.MCyclesPerSec(), MInstrPSec: p.MInstrPerSec(),
		WallSeconds: p.Wall.Seconds(),
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	state, result, _ := j.snapshot()
	switch state {
	case StateDone, StateFailed:
		writeJSON(w, http.StatusOK, struct {
			ID     string          `json:"id"`
			State  string          `json:"state"`
			Result json.RawMessage `json:"result"`
		}{j.id, state, result})
	case StateRunning:
		writeJSON(w, http.StatusOK, struct {
			ID       string       `json:"id"`
			State    string       `json:"state"`
			Progress progressBody `json:"progress"`
		}{j.id, state, j.progress()})
	default:
		writeJSON(w, http.StatusOK, struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}{j.id, state})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := s.cache.len()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"queue_depth":      s.pool.Depth(),
		"queue_cap":        s.pool.Cap(),
		"workers":          s.pool.Workers(),
		"inflight_workers": s.inflight.Load(),
		"jobs": map[string]int64{
			"queued":  s.queued.Load(),
			"running": s.running.Load(),
			"done":    s.doneCt.Load(),
			"failed":  s.failedCt.Load(),
		},
		"cache": map[string]int64{
			"entries":   int64(entries),
			"hits":      s.hits.Load(),
			"misses":    s.misses.Load(),
			"coalesced": s.coalesced.Load(),
		},
		"rejected_queue_full": s.rejFull.Load(),
		"rejected_invalid":    s.rejBad.Load(),
		"cumulative_mcycles":  float64(s.cycles.Load()) / 1e6,
		"draining":            draining,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}
