// Package iss is a functional instruction-set simulator for the ARM7 subset.
// It is the golden model: the cycle-accurate simulators (RCPN-generated and
// the SimpleScalar-like baseline) must produce exactly the same architected
// results — register file, memory, emitted output, exit code — for every
// workload. It is also the "fast functional simulator" end of the spectrum
// the paper's conclusion points at.
package iss

import (
	"fmt"

	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/mem"
	"rcpn/internal/obsv"
)

// CPU is the architected state plus execution plumbing.
type CPU struct {
	R   [16]uint32 // R[15] is the address of the *next* instruction to fetch
	F   arm.Flags
	Mem *mem.Memory

	Instret uint64   // retired instruction count
	Output  []uint32 // words emitted via SysEmit
	Text    []byte   // bytes emitted via SysPutc
	Exited  bool
	Exit    uint32

	decode map[uint32]*arm.Instr // per-PC decode cache

	// MaxInstrs aborts runaway programs; 0 means no limit.
	MaxInstrs uint64

	// Observability attachments (obsv.go); nil unless enabled.
	prof *obsv.StallProfile
	tr   *obsv.Tracer

	// Warm units for SMARTS-style functional warming during fast-forward:
	// when non-nil they are touched with the committed-path access stream
	// (instruction fetches, data effective addresses, branch outcomes) so a
	// checkpoint captured after the fast-forward carries warm
	// microarchitectural state instead of cold structures. Timing is never
	// affected — the ISS stays purely functional — and wrong-path pollution
	// is deliberately absent (the documented approximation of functional
	// warmup).
	WarmI, WarmD *mem.Cache
	WarmPred     bpred.Predictor
}

// New returns a CPU with the program image loaded and PC/SP initialized.
// The stack pointer starts at stackTop (use 0 for the 0x00400000 default).
func New(p *arm.Program, stackTop uint32) *CPU {
	if stackTop == 0 {
		stackTop = 0x00400000
	}
	c := &CPU{Mem: mem.New(), decode: make(map[uint32]*arm.Instr)}
	c.Mem.LoadImage(p.Base, p.Bytes)
	c.R[arm.PC] = p.Entry
	c.R[arm.SP] = stackTop
	return c
}

// reg reads a register as an operand: r15 reads as the current instruction
// address + 8 (ARM pipeline-visible PC).
func (c *CPU) reg(r arm.Reg, instrAddr uint32) uint32 {
	if r == arm.PC {
		return instrAddr + 8
	}
	return c.R[r]
}

// ErrUndefined is returned when execution reaches an instruction word
// outside the supported subset.
type ErrUndefined struct {
	Addr uint32
	Raw  uint32
}

func (e *ErrUndefined) Error() string {
	return fmt.Sprintf("iss: undefined instruction %#08x at %#08x", e.Raw, e.Addr)
}

// Step executes one instruction. It returns an error for undefined
// instructions or unknown system calls; normal termination sets Exited.
func (c *CPU) Step() error {
	addr := c.R[arm.PC]
	raw := c.Mem.Read32(addr)
	ins := c.decode[addr]
	if ins == nil || ins.Raw != raw {
		d := arm.Decode(raw, addr)
		ins = &d
		c.decode[addr] = ins
	}
	c.Instret++
	if c.prof != nil {
		c.prof.Advance(0)
		c.prof.EndCycle()
	}
	if c.tr != nil {
		c.tr.Birth(int64(c.Instret), c.Instret, 0)
		c.tr.Retire(int64(c.Instret), c.Instret, 0)
	}
	nextPC := addr + 4
	if c.WarmI != nil {
		c.WarmI.Access(addr)
	}

	if !ins.Cond.Passes(c.F.N, c.F.Z, c.F.C, c.F.V) {
		if c.WarmPred != nil && ins.Class == arm.ClassBranch {
			// Annulled branches still resolve not-taken and train the
			// predictor, matching the cycle models.
			c.WarmPred.Predict(addr)
			c.WarmPred.Update(addr, false, ins.Target())
		}
		c.R[arm.PC] = nextPC
		return nil
	}

	switch ins.Class {
	case arm.ClassDataProc:
		rm := c.reg(ins.Rm, addr)
		rs := c.reg(ins.Rs, addr)
		op2, shiftC := ins.Operand2Value(rm, rs, c.F.C)
		a := c.reg(ins.Rn, addr)
		res, fl := arm.AluExec(ins.Op, a, op2, c.F, shiftC)
		if ins.SetFlags || ins.IsCompare() {
			c.F = fl
		}
		if ins.Op.WritesRd() {
			if ins.Rd == arm.PC {
				nextPC = res &^ 3
			} else {
				c.R[ins.Rd] = res
			}
		}

	case arm.ClassMult:
		if ins.Long {
			lo, hi, fl := arm.MulLongExec(ins.SignedMul, ins.Accum,
				c.reg(ins.Rm, addr), c.reg(ins.Rs, addr),
				c.R[ins.Rn], c.R[ins.Rd], c.F)
			if ins.SetFlags {
				c.F = fl
			}
			c.R[ins.Rn] = lo // RdLo
			c.R[ins.Rd] = hi // RdHi
			break
		}
		res, fl := arm.MulExec(ins.Accum, c.reg(ins.Rm, addr), c.reg(ins.Rs, addr),
			c.reg(ins.Rn, addr), c.F)
		if ins.SetFlags {
			c.F = fl
		}
		c.R[ins.Rd] = res

	case arm.ClassLoadStore:
		base := c.reg(ins.Rn, addr)
		ea, wb, doWB := ins.LSAddress(base, c.reg(ins.Rm, addr))
		if c.WarmD != nil {
			c.WarmD.Access(ea)
		}
		if ins.Load {
			v := ins.LoadValue(c.Mem, ea)
			if doWB && ins.Rn != arm.PC {
				c.R[ins.Rn] = wb
			}
			if ins.Rd == arm.PC {
				nextPC = v &^ 3
			} else {
				c.R[ins.Rd] = v
			}
		} else {
			v := c.reg(ins.Rd, addr)
			if ins.Rd == arm.PC {
				v = addr + 12 // STR pc stores pc+12 on ARM7
			}
			switch {
			case ins.Byte:
				c.Mem.Write8(ea, byte(v))
			case ins.Half:
				c.Mem.Write16(ea, uint16(v))
			default:
				c.Mem.Write32(ea, v)
			}
			if doWB && ins.Rn != arm.PC {
				c.R[ins.Rn] = wb
			}
		}

	case arm.ClassLoadStoreM:
		base := c.reg(ins.Rn, addr)
		addrs, final := ins.LSMAddresses(base)
		k := 0
		for r := arm.Reg(0); r < 16; r++ {
			if ins.RegList&(1<<r) == 0 {
				continue
			}
			ea := addrs[k]
			k++
			if c.WarmD != nil {
				c.WarmD.Access(ea)
			}
			if ins.Load {
				v := c.Mem.Read32(ea)
				if r == arm.PC {
					nextPC = v &^ 3
				} else {
					c.R[r] = v
				}
			} else {
				c.Mem.Write32(ea, c.reg(r, addr))
			}
		}
		if ins.Writeback && ins.Rn != arm.PC {
			// Base writeback; if the base was also loaded, the loaded value
			// wins (matching the ARM7 "loaded value overwrites" behaviour).
			if !(ins.Load && ins.RegList&(1<<ins.Rn) != 0) {
				c.R[ins.Rn] = final
			}
		}

	case arm.ClassBranch:
		if ins.Link {
			c.R[arm.LR] = addr + 4
		}
		nextPC = ins.Target()
		if c.WarmPred != nil {
			c.WarmPred.Predict(addr)
			c.WarmPred.Update(addr, true, nextPC)
		}

	case arm.ClassSystem:
		if ins.Undefined() {
			return &ErrUndefined{Addr: addr, Raw: raw}
		}
		switch ins.SWINum {
		case arm.SysExit:
			c.Exited = true
			c.Exit = c.R[0]
		case arm.SysEmit:
			c.Output = append(c.Output, c.R[0])
		case arm.SysPutc:
			c.Text = append(c.Text, byte(c.R[0]))
		default:
			return fmt.Errorf("iss: unknown syscall %d at %#08x", ins.SWINum, addr)
		}
	}

	c.R[arm.PC] = nextPC
	return nil
}

// Run executes until the program exits (or MaxInstrs is exceeded).
func (c *CPU) Run() error {
	for !c.Exited {
		if c.MaxInstrs != 0 && c.Instret >= c.MaxInstrs {
			return fmt.Errorf("iss: instruction limit %d exceeded at pc=%#08x", c.MaxInstrs, c.R[arm.PC])
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}
