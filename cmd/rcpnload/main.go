// Command rcpnload is the open-loop load generator for rcpnserve: it
// submits a seeded corpus of generated-program jobs at a configured
// arrival rate, waits for them to finish, and writes a deterministic
// rcpn-load/v1 JSON report of what the server delivered under that load —
// offered vs achieved throughput, latency quantiles, backpressure counts
// and the aggregate simulated Mcycles/s.
//
// Usage:
//
//	rcpnserve -addr :8080 &
//	rcpnload -target http://127.0.0.1:8080 -jobs 200 -rate 100 -out load.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rcpn/internal/loadgen"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "base URL of the rcpnserve instance")
		seed     = flag.Uint64("seed", 1, "seed for the corpus, mixes and arrival schedule")
		jobs     = flag.Int("jobs", 100, "number of submissions")
		rate     = flag.Float64("rate", 50, "offered arrival rate, jobs/sec")
		arrival  = flag.String("arrival", "exponential", "arrival process: exponential or uniform")
		programs = flag.Int("programs", 16, "distinct generated programs in the corpus")
		kernels  = flag.String("kernels", "", "comma-separated built-in kernels to draw jobs from instead of generated programs (e.g. crc,sort)")
		tenants  = flag.Int("tenants", 4, "distinct X-Tenant identities")
		lowpri   = flag.Int("lowpri", 30, "percent of submissions sent X-Priority: low")
		wait     = flag.Duration("wait", 2*time.Minute, "how long to wait for accepted jobs after the last submission")
		out      = flag.String("out", "", "write the rcpn-load/v1 report here (default stdout)")
	)
	flag.Parse()

	var kernelList []string
	if *kernels != "" {
		kernelList = strings.Split(*kernels, ",")
	}

	ld, err := loadgen.New(loadgen.Config{
		Target:  *target,
		Seed:    *seed,
		Jobs:    *jobs,
		Rate:    *rate,
		Arrival: loadgen.Arrival(*arrival),
		Corpus: loadgen.CorpusConfig{
			Seed:      *seed,
			Programs:  *programs,
			Kernels:   kernelList,
			Tenants:   *tenants,
			LowPriPct: *lowpri,
		},
		WaitTimeout: *wait,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rcpnload: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcpnload: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := ld.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcpnload: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr,
		"rcpnload: offered %.1f/s achieved %.1f/s | accepted %d/%d (429:%d 503:%d) | done %d failed %d incomplete %d | p50 %.1fms p95 %.1fms p99 %.1fms | %.2f Mcycles/s\n",
		rep.OfferedRate, rep.AchievedRate, rep.Accepted, rep.Submitted,
		rep.Rejected429, rep.Rejected503, rep.Done, rep.Failed, rep.Incomplete,
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.MCyclesPerSec)

	b := rep.JSON()
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rcpnload: %v\n", err)
		os.Exit(1)
	}
}
