// Tomasulo models a Tomasulo-style dynamically scheduled machine as an
// RCPN — the extension the paper's technical report covers ("more complex
// examples capturing VLIW and multi-issue machines as well as RCPN model of
// the Tomasulo algorithm"). It exercises three RCPN features the in-order
// models don't:
//
//   - reservation stations are simply stages with capacity > 1 (the paper's
//     definition of a pipeline stage explicitly includes reservation
//     stations);
//   - the common data bus is a stage of capacity 1 shared by two places, so
//     result broadcasts from the two function units arbitrate naturally
//     through the RCPN enabling rule;
//   - register renaming falls out of the reg package: every destination
//     reservation stacks a new pending writer, consumers capture either the
//     value (if ready) or the producer RegRef as a tag at dispatch, and the
//     reservation-order stamps keep out-of-order writebacks architecturally
//     correct.
//
// Run with: go run ./examples/tomasulo
package main

import (
	"fmt"

	"rcpn/internal/core"
	"rcpn/internal/reg"
)

const (
	classALU core.ClassID = iota
	classMEM
	numClasses
)

// operand is a Tomasulo source: either a captured value or a producer tag.
type operand struct {
	ref      *reg.Ref // reference used to read the register file
	producer *reg.Ref // tag: the pending writer captured at dispatch
	val      uint32
	captured bool
}

// available reports whether the operand can be supplied to the FU.
func (o *operand) available() bool {
	return o.captured || o.producer.Ready()
}

// value resolves the operand (guards must have checked available).
func (o *operand) value() uint32 {
	if o.captured {
		return o.val
	}
	return o.producer.Value()
}

type instr struct {
	name   string
	tok    *core.Token
	s1, s2 *operand
	dst    *reg.Ref
	op     func(a, b uint32) uint32
	delay  int64 // execution latency (multiply, memory)
}

func (in *instr) InState(s int) bool { return in.tok.InState(s) }

// pool recycles instruction tokens between program runs.
var pool core.TokenPool

func main() {
	gpr := reg.NewFile("R", 8)
	regs := make([]*reg.Register, 8)
	for i := range regs {
		regs[i] = gpr.Register(fmt.Sprintf("r%d", i), i)
	}

	n := core.NewNet(int(numClasses))
	di := n.Place("DI", n.Stage("DI", 1)) // dispatch latch
	rsa := n.Place("RS.alu", n.Stage("RS.alu", 3))
	rsm := n.Place("RS.mem", n.Stage("RS.mem", 2))
	fua := n.Place("FU.alu", n.Stage("FU.alu", 1))
	fum := n.Place("FU.mem", n.Stage("FU.mem", 1))
	cdbStage := n.Stage("CDB", 1) // ONE bus: shared by both result paths
	cdba := n.Place("CDB.alu", cdbStage)
	cdbm := n.Place("CDB.mem", cdbStage)
	end := n.EndPlace("end")

	get := func(tok *core.Token) *instr { return tok.Data.(*instr) }
	trace := func(tok *core.Token, f string, a ...any) {
		fmt.Printf("  cycle %2d: %-7s %s\n", n.CycleCount(), get(tok).name, fmt.Sprintf(f, a...))
	}

	// Dispatch: capture ready operands, record producer tags for the rest,
	// and rename the destination (stacked reservation). The reservation
	// station's capacity is the only admission control.
	dispatch := func(tok *core.Token) {
		t := get(tok)
		for _, o := range []*operand{t.s1, t.s2} {
			if o.ref.CanRead() {
				o.ref.Read()
				o.val = o.ref.Value()
				o.captured = true
			} else {
				o.producer = o.ref.Register().File().PendingWriter(o.ref.Register().Cell())
			}
		}
		t.dst.ReserveWrite()
		how := ""
		if !t.s1.captured || !t.s2.captured {
			how = " (waiting on tags)"
		}
		trace(tok, "dispatched to reservation station%s", how)
	}
	n.AddTransition(&core.Transition{Name: "disp.alu", Class: classALU, From: di, To: rsa, Action: dispatch})
	n.AddTransition(&core.Transition{Name: "disp.mem", Class: classMEM, From: di, To: rsm, Action: dispatch})

	// Issue from the reservation station when both operands exist.
	ready := func(tok *core.Token) bool {
		t := get(tok)
		return t.s1.available() && t.s2.available()
	}
	issue := func(tok *core.Token) {
		t := get(tok)
		tok.Delay = t.delay
		trace(tok, "issues to the function unit")
	}
	n.AddTransition(&core.Transition{Name: "issue.alu", Class: classALU, From: rsa, To: fua, Guard: ready, Action: issue})
	n.AddTransition(&core.Transition{Name: "issue.mem", Class: classMEM, From: rsm, To: fum, Guard: ready, Action: issue})

	// Execute: compute into the renamed destination. Moving into the CDB
	// place requires the shared bus stage to be free — broadcast arbitration.
	exec := func(tok *core.Token) {
		t := get(tok)
		t.dst.SetValue(t.op(t.s1.value(), t.s2.value()))
		trace(tok, "executes -> %d (waiting for CDB)", t.dst.Value())
	}
	n.AddTransition(&core.Transition{Name: "exec.alu", Class: classALU, From: fua, To: cdba, Action: exec})
	n.AddTransition(&core.Transition{Name: "exec.mem", Class: classMEM, From: fum, To: cdbm, Action: exec})

	// Broadcast: write back over the CDB (reservation-order stamps keep
	// out-of-order completion architecturally correct).
	wb := func(tok *core.Token) {
		get(tok).dst.Writeback()
		trace(tok, "broadcasts on CDB and retires")
	}
	n.AddTransition(&core.Transition{Name: "wb.alu", Class: classALU, From: cdba, To: end, Action: wb})
	n.AddTransition(&core.Transition{Name: "wb.mem", Class: classMEM, From: cdbm, To: end, Action: wb})

	// Front end. Retired tokens go back to the free-list pool buildProgram
	// drew them from; this toy program is built up front so nothing is
	// recycled within one run, but the wiring is the idiom every
	// long-running model uses to stay allocation-free.
	n.OnRetire(pool.Put)
	program := buildProgram(regs)
	next := 0
	n.AddSource(&core.Source{
		Name: "fetch", To: di,
		Guard: func() bool { return next < len(program) },
		Fire: func() *core.Token {
			in := program[next]
			next++
			fmt.Printf("  cycle %2d: %-7s fetched\n", n.CycleCount(), in.name)
			return in.tok
		},
	})

	n.MustBuild()
	fmt.Println("Tomasulo machine as an RCPN (reservation stations, tags, CDB)")
	fmt.Println("simulating:")
	if _, err := n.Run(func() bool { return n.RetiredCount == uint64(len(program)) }, 300); err != nil {
		panic(err)
	}
	fmt.Printf("\n%d instructions in %d cycles\n", n.RetiredCount, n.CycleCount())
	for i := 0; i < 8; i++ {
		fmt.Printf("r%d=%-6d ", i, regs[i].Value())
	}
	fmt.Println()
	if regs[3].Value() != 47 || regs[4].Value() != 42 || regs[5].Value() != 89 {
		panic("architected results wrong — renaming or CDB model broken")
	}
	fmt.Println("renaming check passed: out-of-order completion left correct architected state")
}

func buildProgram(regs []*reg.Register) []*instr {
	add := func(a, b uint32) uint32 { return a + b }
	mul := func(a, b uint32) uint32 { return a * b }

	mk := func(class core.ClassID, name string, op func(a, b uint32) uint32,
		delay int64, d, s1, s2 int) *instr {
		in := &instr{name: name, op: op, delay: delay}
		in.tok = pool.Get(class, in)
		in.dst = reg.NewRef(regs[d], in)
		in.s1 = &operand{ref: reg.NewRef(regs[s1], in)}
		in.s2 = &operand{ref: reg.NewRef(regs[s2], in)}
		return in
	}

	// r1 and r2 start at zero; build values then exercise hazards:
	//   i0: r1 = r0 + r0        (ALU, fast)          r1 = 0
	//   i1: r1 = r1 + 5-ish ... use constants via extra regs instead:
	// Set up via instructions only (no immediates in this toy ISA):
	// r6 preloaded = 5, r7 preloaded = 37 (below).
	regs[6].Set(5)
	regs[7].Set(37)
	return []*instr{
		// i0: slow load computes r1 = r6 * r7 = 185 (memory-latency class)
		mk(classMEM, "i0:ldmul", mul, 6, 1, 6, 7),
		// i1: r2 = r6 + r7 = 42 (independent, completes before i0: OOO)
		mk(classALU, "i1:add", add, 1, 2, 6, 7),
		// i2: r3 = r2 + r6 = 47 (tag-waits for i1)
		mk(classALU, "i2:add", add, 1, 3, 2, 6),
		// i3: r2 = r6 * r7 + ... rename WAW on r2: r2 = r6+r7 = 42 again but
		//     via the slow unit — i4 below must read the NEW r2 (tag of i3).
		mk(classMEM, "i3:ldadd", add, 6, 2, 6, 7),
		// i4: r4 = r2 + r0 = 42 (must capture i3's tag, not i1's value? No:
		//     at i4's dispatch the newest pending writer of r2 is i3 — the
		//     program-order-correct producer.)
		mk(classALU, "i4:add", add, 1, 4, 2, 0),
		// i5: r5 = r3 + r2 = 47 + 42 = 89 (two tags, CDB contention)
		mk(classALU, "i5:add", add, 1, 5, 3, 2),
	}
}
