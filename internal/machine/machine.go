// Package machine contains the RCPN processor models of the paper's
// evaluation — StrongARM (simple five-stage pipeline) and XScale (in-order
// issue, out-of-order completion, Fig. 9) — executing the ARM7 instruction
// set through six operation-class sub-nets, plus the shared fetch,
// speculation, system-call and statistics plumbing every model needs.
//
// A Machine is the paper's "generated simulator": the model file
// (strongarm.go / xscale.go) declares stages, places and transitions that
// mirror the processor's pipeline block diagram; internal/core executes them
// with the optimized engine.
package machine

import (
	"fmt"

	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/core"
	"rcpn/internal/mem"
	"rcpn/internal/obsv"
	"rcpn/internal/reg"
)

// Config selects the non-pipeline units and simulator options of a model.
type Config struct {
	// Caches supplies the I/D cache timing models; zero value means the
	// model's defaults.
	Caches mem.Hierarchy
	// Predictor is the branch predictor; nil means the model's default.
	Predictor bpred.Predictor
	// StackTop initializes sp (0 = 0x00400000).
	StackTop uint32

	// NoTokenCache disables the per-PC decoded-token cache (ablation of the
	// paper's partial-evaluation/caching optimization).
	NoTokenCache bool
	// TwoListAll forces the two-list algorithm on every place (ablation of
	// the reverse-topological-order optimization).
	TwoListAll bool
	// DynamicSearch disables the static sorted-transitions table (ablation
	// of the Fig. 6 optimization).
	DynamicSearch bool
	// NoActiveList disables event-driven place scheduling, restoring the
	// full reverse-topological sweep every cycle (ablation of the
	// active-list optimization; bit-identical timing).
	NoActiveList bool
}

// Machine is a processor model plus its architected and simulation state.
type Machine struct {
	Name string
	Net  *core.Net
	Mem  *mem.Memory

	GPR    *reg.File // r0..r14 (+ a scratch cell for r15)
	PSRF   *reg.File // one cell: packed NZCV
	regs   [16]*reg.Register
	psrReg *reg.Register

	ICache *mem.Cache
	DCache *mem.Cache
	Pred   bpred.Predictor

	// Fetch state.
	pc        uint32
	seq       uint64
	fetchHold *Inst // serializing instruction (SWI) holding fetch
	holdFetch bool  // front end paused while draining to a checkpoint boundary

	// Program results (must match the ISS golden model).
	Output   []uint32
	Text     []byte
	Exited   bool
	ExitCode uint32
	Instret  uint64 // architecturally retired instructions
	Err      error

	// Flushes counts pipeline flushes (mispredictions + PC writes).
	Flushes uint64

	cfg    Config
	tracer *Tracer
	// Observability attachments (obsv.go); nil unless enabled.
	prof       *obsv.StallProfile
	funcTracer *obsv.Tracer // functional mode's retire-only event trace
	// functional marks a model running in extracted-functional mode
	// (NewFunctional): program-order execution with no net or timing.
	functional bool
	// tokens arena-allocates every Inst token out of contiguous blocks, so
	// the in-flight window's scheduling state shares cache lines instead of
	// being pointer-chased across the heap.
	tokens core.TokenArena
	// pool holds per-PC freelists of decoded instruction instances: a
	// direct-mapped array over the program's text range (fast path) with a
	// map fallback for addresses outside it.
	poolBase  uint32
	pool      [][]*Inst
	poolExtra map[uint32][]*Inst
	entry     uint32
	// flushScratch is reused across flushes so squashing allocates nothing.
	flushScratch []*core.Token
	// genFlush, when set (SetGenFlush), squashes young instructions out of a
	// generated simulator's latches in place of the net walk.
	genFlush func(youngerThan uint64) []*Inst

	classNames []string
}

// packFlags packs NZCV into the PSR cell representation.
func packFlags(f arm.Flags) uint32 {
	var v uint32
	if f.N {
		v |= 8
	}
	if f.Z {
		v |= 4
	}
	if f.C {
		v |= 2
	}
	if f.V {
		v |= 1
	}
	return v
}

func unpackFlags(v uint32) arm.Flags {
	return arm.Flags{N: v&8 != 0, Z: v&4 != 0, C: v&2 != 0, V: v&1 != 0}
}

// newMachine builds the model-independent parts.
func newMachine(name string, p *arm.Program, cfg Config, defaults func(*Config)) *Machine {
	defaults(&cfg)
	if cfg.StackTop == 0 {
		cfg.StackTop = 0x00400000
	}
	m := &Machine{
		Name:      name,
		Mem:       mem.New(),
		GPR:       reg.NewFile("gpr", 16),
		PSRF:      reg.NewFile("psr", 1),
		ICache:    cfg.Caches.I,
		DCache:    cfg.Caches.D,
		Pred:      cfg.Predictor,
		cfg:       cfg,
		poolBase:  p.Base,
		pool:      make([][]*Inst, (len(p.Bytes)+4)/4),
		poolExtra: map[uint32][]*Inst{},
		entry:     p.Entry,
		classNames: []string{
			"DataProc", "Mult", "LoadStore", "LoadStoreM", "Branch", "System",
		},
	}
	for i := 0; i < 16; i++ {
		m.regs[i] = m.GPR.Register(arm.Reg(i).String(), i)
	}
	m.psrReg = m.PSRF.Register("cpsr", 0)
	m.Mem.LoadImage(p.Base, p.Bytes)
	m.regs[arm.SP].Set(cfg.StackTop)
	m.pc = p.Entry
	return m
}

// Flags returns the current architected NZCV flags.
func (m *Machine) Flags() arm.Flags { return unpackFlags(m.psrReg.Value()) }

// Reg returns the architected value of register r (r15 returns the fetch PC).
func (m *Machine) Reg(r arm.Reg) uint32 {
	if r == arm.PC {
		return m.pc
	}
	return m.regs[r].Value()
}

// PC returns the current (speculative) fetch program counter.
func (m *Machine) PC() uint32 { return m.pc }

// CPI returns cycles per retired instruction.
func (m *Machine) CPI() float64 {
	if m.Instret == 0 {
		return 0
	}
	return float64(m.Net.CycleCount()) / float64(m.Instret)
}

// halted reports whether simulation can stop: the program has exited AND
// every older in-flight instruction has written back. The second clause
// makes traps precise on machines that complete out of order — XScale's
// separate memory pipe can hold a cache-missing load for dozens of cycles
// while the SWI commits through the ALU pipe, and stopping on Exited alone
// would lose that load's architected writeback (and its retirement count).
// Short-circuit keeps the Drained sweep off the hot path.
func (m *Machine) halted() bool {
	return m.Exited && m.Drained()
}

// Run simulates until the program exits (and the pipeline drains), an error
// occurs, or maxCycles elapses (0 = 1<<40).
func (m *Machine) Run(maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for !m.halted() {
		if m.Net.CycleCount() >= maxCycles {
			return fmt.Errorf("%s: cycle limit %d exceeded at pc=%#08x", m.Name, maxCycles, m.pc)
		}
		m.Net.Step()
		if m.tracer != nil {
			m.tracer.snap()
		}
		if m.Err != nil {
			return m.Err
		}
	}
	return nil
}

// Dot renders the model's RCPN in Graphviz format.
func (m *Machine) Dot() string { return m.Net.Dot(m.classNames) }

// fail records a fatal simulation error (undefined instruction, unknown
// system call) surfaced out of transition actions.
func (m *Machine) fail(format string, args ...any) {
	if m.Err == nil {
		m.Err = fmt.Errorf(m.Name+": "+format, args...)
	}
}

// fetchOne is the body of the fetch source transition: read and decode (or
// reuse) the instruction at the fetch PC, consult the branch predictor, and
// advance the speculative PC. It returns nil while fetch is serialized
// behind an in-flight SWI.
func (m *Machine) fetchOne() *core.Token {
	if m.Exited || m.fetchHold != nil || m.holdFetch {
		return nil
	}
	addr := m.pc
	lat := int64(1)
	if m.ICache != nil {
		lat = int64(m.ICache.Access(addr))
	}
	in := m.decode(addr)
	m.seq++
	in.Seq = m.seq

	next := addr + 4
	if in.I.Class == arm.ClassBranch && m.Pred != nil {
		taken, target, known := m.Pred.Predict(addr)
		if taken && known {
			next = target
		}
	}
	in.predNext = next
	m.pc = next

	if in.I.Class == arm.ClassSystem ||
		(in.writesPC && (in.I.Class == arm.ClassLoadStore || in.I.Class == arm.ClassLoadStoreM)) {
		// Traps serialize the front end until they retire; PC loads resolve
		// so late (after the memory access) that younger speculative work
		// could commit out of order first, so they serialize fetch too.
		m.fetchHold = in
	}
	in.Tok.Delay = lat
	return in.Tok
}

// retire is installed as the net's OnRetire callback: count architected
// completion and recycle the token+instruction instance into the per-PC pool
// ("the tokens are cached for later reuse in the simulator", §5).
func (m *Machine) retire(tok *core.Token) {
	in := tok.Data.(*Inst)
	m.Instret++
	if m.fetchHold == in {
		m.fetchHold = nil
	}
	m.recycle(in)
}

func (m *Machine) recycle(in *Inst) {
	in.inUse = false
	if m.cfg.NoTokenCache {
		// The instance is dropped, so return its arena slot — otherwise a
		// long uncached run would grow the token arena without bound.
		if in.Tok != nil {
			m.tokens.Put(in.Tok)
			in.Tok = nil
		}
		return
	}
	if i := (in.I.Addr - m.poolBase) / 4; uint64(i) < uint64(len(m.pool)) {
		m.pool[i] = append(m.pool[i], in)
		return
	}
	m.poolExtra[in.I.Addr] = append(m.poolExtra[in.I.Addr], in)
}

// poolGet pops a cached decoded instance for addr, or nil.
func (m *Machine) poolGet(addr uint32) *Inst {
	if i := (addr - m.poolBase) / 4; uint64(i) < uint64(len(m.pool)) {
		list := m.pool[i]
		if n := len(list); n > 0 {
			in := list[n-1]
			m.pool[i] = list[:n-1]
			return in
		}
		return nil
	}
	if list := m.poolExtra[addr]; len(list) > 0 {
		in := list[len(list)-1]
		m.poolExtra[addr] = list[:len(list)-1]
		return in
	}
	return nil
}

// flushAfter squashes every in-flight instruction younger than seq,
// releasing their register/flag reservations, and redirects fetch to newPC.
// It implements the "flushing latches" alternative of §3.2 generalized to
// the whole pipeline behind a resolved control transfer.
func (m *Machine) flushAfter(seq uint64, newPC uint32) {
	m.Flushes++
	if m.genFlush != nil {
		for _, in := range m.genFlush(seq) {
			in.releaseLocks()
			in.SetState(-1)
			if m.fetchHold == in {
				m.fetchHold = nil
			}
			m.recycle(in)
		}
		m.pc = newPC
		return
	}
	victims := m.flushScratch[:0]
	for _, p := range m.Net.Places() {
		p.ForEachToken(func(tok *core.Token) {
			in, ok := tok.Data.(*Inst)
			if ok && in.Seq > seq {
				victims = append(victims, tok)
			}
		})
	}
	m.flushScratch = victims
	for _, tok := range victims {
		in := tok.Data.(*Inst)
		m.Net.RemoveToken(tok)
		in.releaseLocks()
		if m.fetchHold == in {
			m.fetchHold = nil
		}
		m.recycle(in)
	}
	m.pc = newPC
}

// syscall performs the architected effect of a SWI at its commit point.
func (m *Machine) syscall(in *Inst) {
	switch in.I.SWINum {
	case arm.SysExit:
		m.Exited = true
		m.ExitCode = in.src1.Value()
	case arm.SysEmit:
		m.Output = append(m.Output, in.src1.Value())
	case arm.SysPutc:
		m.Text = append(m.Text, byte(in.src1.Value()))
	default:
		m.fail("unknown syscall %d at %#08x", in.I.SWINum, in.I.Addr)
	}
}

// applyAblation applies the engine-level ablation switches before Build.
func (m *Machine) applyAblation() {
	if m.cfg.TwoListAll {
		for _, p := range m.Net.Places() {
			if !p.End {
				p.TwoList = true
			}
		}
	}
	if m.cfg.DynamicSearch {
		m.Net.SetDynamicSearch(true)
	}
	if m.cfg.NoActiveList {
		m.Net.SetFullSweep(true)
	}
}
