// Package simrun adapts the repository's simulators to batch.Stepper, the
// chunked-execution interface the batch driver and the simulation service
// use for cooperative cancellation (coarse cycle-granularity deadline
// checks) and live progress reporting.
//
// Every simulator already exposes a "run until a cumulative limit" loop:
// machine.Machine.Run, ssim.Sim.Run and pipe5.Sim.Run limit by cycle count,
// machine.Machine.RunFunctional and iss.CPU by instruction count. Those
// loops return a formatted error when the limit is reached, but record real
// simulation failures in the model's Err field (or return them from Step),
// so the adapters can tell a chunk boundary apart from a genuine failure:
// boundary = limit reached, program not exited, no recorded error. Chunking
// is bit-exact — the limit check sits outside the per-cycle state update,
// so where the boundaries fall cannot change the simulated outcome.
package simrun

import (
	"rcpn/internal/batch"
	"rcpn/internal/ckpt"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/obsv"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
)

// Every adapter also implements batch.CheckpointStepper: StepToRetired and
// DrainBoundary delegate to the simulators' RunUntil/Drain chunked-boundary
// primitives (instruction boundaries for the functional models, where every
// boundary is drained), and Checkpoint/Restore delegate to the RCPNCKPT
// hooks added in the sampled-simulation work. batch.DriveCkpt relies on
// these to place periodic checkpoints deterministically.
var (
	_ batch.CheckpointStepper = machineStepper{}
	_ batch.CheckpointStepper = functionalStepper{}
	_ batch.CheckpointStepper = ssimStepper{}
	_ batch.CheckpointStepper = pipe5Stepper{}
	_ batch.CheckpointStepper = issStepper{}
)

// Every adapter also forwards obsv.Instrumentable to its simulator, so
// callers holding a batch.Stepper (the batch driver, the simulation
// service) can enable stall attribution and tracing with one type
// assertion and no knowledge of the engine behind it.
var (
	_ obsv.Instrumentable = machineStepper{}
	_ obsv.Instrumentable = functionalStepper{}
	_ obsv.Instrumentable = ssimStepper{}
	_ obsv.Instrumentable = pipe5Stepper{}
	_ obsv.Instrumentable = issStepper{}
)

// Machine adapts a detailed (pipelined) RCPN machine. Use Functional for
// machines built with machine.NewFunctional.
func Machine(m *machine.Machine) batch.Stepper { return machineStepper{m} }

type machineStepper struct{ m *machine.Machine }

func (s machineStepper) Pos() int64 { return s.m.Net.CycleCount() }

func (s machineStepper) Progress() (int64, uint64) {
	return s.m.Net.CycleCount(), s.m.Instret
}

func (s machineStepper) StepTo(limit int64) (bool, error) {
	err := s.m.Run(limit)
	if err == nil {
		return true, nil
	}
	if s.m.Err == nil && !s.m.Exited && s.m.Net.CycleCount() >= limit {
		return false, nil // chunk boundary, not a failure
	}
	return false, err
}

func (s machineStepper) StepToRetired(target uint64, posLimit int64) (bool, error) {
	if err := s.m.RunUntil(target, posLimit); err != nil {
		return false, err
	}
	return s.m.Exited, nil
}

func (s machineStepper) DrainBoundary() error { return s.m.Drain(0) }

func (s machineStepper) Checkpoint() (*ckpt.Checkpoint, error) { return s.m.Checkpoint() }

func (s machineStepper) Restore(ck *ckpt.Checkpoint) error { return s.m.Restore(ck) }

func (s machineStepper) AttachTrace(tr *obsv.Tracer) { s.m.AttachTrace(tr) }

func (s machineStepper) EnableProfile() *obsv.StallProfile { return s.m.EnableProfile() }

// Functional adapts a functional RCPN machine (machine.NewFunctional);
// limits are instruction counts and cycles report as zero.
func Functional(m *machine.Machine) batch.Stepper { return functionalStepper{m} }

type functionalStepper struct{ m *machine.Machine }

func (s functionalStepper) Pos() int64 { return int64(s.m.Instret) }

func (s functionalStepper) Progress() (int64, uint64) { return 0, s.m.Instret }

func (s functionalStepper) StepTo(limit int64) (bool, error) {
	err := s.m.RunFunctional(uint64(limit))
	if err == nil {
		return true, nil
	}
	if s.m.Err == nil && !s.m.Exited && int64(s.m.Instret) >= limit {
		return false, nil
	}
	return false, err
}

func (s functionalStepper) StepToRetired(target uint64, posLimit int64) (bool, error) {
	// Position is the retirement count, so the target and the chunk limit
	// are the same unit: stop at whichever comes first.
	lim := int64(target)
	if posLimit < lim {
		lim = posLimit
	}
	return s.StepTo(lim)
}

func (s functionalStepper) DrainBoundary() error { return nil } // always drained

func (s functionalStepper) Checkpoint() (*ckpt.Checkpoint, error) { return s.m.Checkpoint() }

func (s functionalStepper) Restore(ck *ckpt.Checkpoint) error { return s.m.Restore(ck) }

func (s functionalStepper) AttachTrace(tr *obsv.Tracer) { s.m.AttachTrace(tr) }

func (s functionalStepper) EnableProfile() *obsv.StallProfile { return s.m.EnableProfile() }

// SSim adapts the SimpleScalar-like out-of-order baseline.
func SSim(s *ssim.Sim) batch.Stepper { return ssimStepper{s} }

type ssimStepper struct{ s *ssim.Sim }

func (a ssimStepper) Pos() int64 { return a.s.Cycles }

func (a ssimStepper) Progress() (int64, uint64) { return a.s.Cycles, a.s.Instret }

func (a ssimStepper) StepTo(limit int64) (bool, error) {
	err := a.s.Run(limit)
	if err == nil {
		return true, nil
	}
	if a.s.Err == nil && a.s.Cycles >= limit {
		return false, nil
	}
	return false, err
}

func (a ssimStepper) StepToRetired(target uint64, posLimit int64) (bool, error) {
	if err := a.s.RunUntil(target, posLimit); err != nil {
		return false, err
	}
	return a.s.Finished(), nil
}

func (a ssimStepper) DrainBoundary() error { return a.s.Drain(0) }

func (a ssimStepper) Checkpoint() (*ckpt.Checkpoint, error) { return a.s.Checkpoint() }

func (a ssimStepper) Restore(ck *ckpt.Checkpoint) error { return a.s.Restore(ck) }

func (a ssimStepper) AttachTrace(tr *obsv.Tracer) { a.s.AttachTrace(tr) }

func (a ssimStepper) EnableProfile() *obsv.StallProfile { return a.s.EnableProfile() }

// Pipe5 adapts the hand-written five-stage pipeline.
func Pipe5(s *pipe5.Sim) batch.Stepper { return pipe5Stepper{s} }

type pipe5Stepper struct{ s *pipe5.Sim }

func (a pipe5Stepper) Pos() int64 { return a.s.Cycles }

func (a pipe5Stepper) Progress() (int64, uint64) { return a.s.Cycles, a.s.Instret }

func (a pipe5Stepper) StepTo(limit int64) (bool, error) {
	err := a.s.Run(limit)
	if err == nil {
		return true, nil
	}
	if a.s.Err == nil && a.s.Cycles >= limit {
		return false, nil
	}
	return false, err
}

func (a pipe5Stepper) StepToRetired(target uint64, posLimit int64) (bool, error) {
	if err := a.s.RunUntil(target, posLimit); err != nil {
		return false, err
	}
	return a.s.Exited, nil
}

func (a pipe5Stepper) DrainBoundary() error { return a.s.Drain(0) }

func (a pipe5Stepper) Checkpoint() (*ckpt.Checkpoint, error) { return a.s.Checkpoint() }

func (a pipe5Stepper) Restore(ck *ckpt.Checkpoint) error { return a.s.Restore(ck) }

func (a pipe5Stepper) AttachTrace(tr *obsv.Tracer) { a.s.AttachTrace(tr) }

func (a pipe5Stepper) EnableProfile() *obsv.StallProfile { return a.s.EnableProfile() }

// ISS adapts the functional golden-model interpreter; limits are
// instruction counts and cycles report as zero. The CPU's own MaxInstrs
// bound, if set, still applies and surfaces as an error.
func ISS(c *iss.CPU) batch.Stepper { return issStepper{c} }

type issStepper struct{ c *iss.CPU }

func (s issStepper) Pos() int64 { return int64(s.c.Instret) }

func (s issStepper) Progress() (int64, uint64) { return 0, s.c.Instret }

func (s issStepper) StepTo(limit int64) (bool, error) {
	if n := limit - int64(s.c.Instret); n > 0 {
		if _, err := s.c.RunN(uint64(n)); err != nil {
			return false, err
		}
	}
	return s.c.Exited, nil
}

func (s issStepper) StepToRetired(target uint64, posLimit int64) (bool, error) {
	lim := int64(target)
	if posLimit < lim {
		lim = posLimit
	}
	return s.StepTo(lim)
}

func (s issStepper) DrainBoundary() error { return nil } // every boundary is drained

func (s issStepper) Checkpoint() (*ckpt.Checkpoint, error) { return s.c.Checkpoint(), nil }

func (s issStepper) Restore(ck *ckpt.Checkpoint) error { return s.c.Restore(ck) }

func (s issStepper) AttachTrace(tr *obsv.Tracer) { s.c.AttachTrace(tr) }

func (s issStepper) EnableProfile() *obsv.StallProfile { return s.c.EnableProfile() }
