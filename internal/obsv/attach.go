package obsv

// Instrumentable is implemented by every simulator (and the simrun
// stepper adapters that wrap them) that can host an observability
// attachment. Both methods must be called before the first simulated
// step; both are optional and independent.
type Instrumentable interface {
	// AttachTrace routes the simulator's token/transition events into tr
	// and registers the model's place and operation name tables on it.
	AttachTrace(tr *Tracer)
	// EnableProfile turns on per-cycle stall attribution and returns the
	// live profile, which the caller reads after (or during) the run.
	// Calling it twice returns the same profile.
	EnableProfile() *StallProfile
}
