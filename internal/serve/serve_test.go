package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rcpn/internal/batch"
	"rcpn/internal/obsv"
)

// newTestServer boots a Server behind httptest. Callers must Close the
// httptest server and Drain the serve.Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SSEInterval == 0 {
		cfg.SSEInterval = 10 * time.Millisecond
	}
	if cfg.Chunk == 0 {
		cfg.Chunk = 4096
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Drain(0)
	})
	return s, hs
}

func post(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// submit posts a spec and returns the decoded response.
func submit(t *testing.T, url, body string) submitResponse {
	t.Helper()
	code, _, data := post(t, url, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", code, data)
	}
	var r submitResponse
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("bad submit response %q: %v", data, err)
	}
	return r
}

// waitState polls the job until it reaches a terminal state and returns
// the full GET body.
func waitState(t *testing.T, url, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, data := get(t, url+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job = %d: %s", code, data)
		}
		var v struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == StateDone || v.State == StateFailed {
			return data
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metric scrapes /v1/metrics — validating the whole page as Prometheus
// text format 0.0.4 on every call — and returns the value of one series,
// named either bare (`rcpn_cache_hits_total`) or with its label set
// (`rcpn_jobs{state="running"}`).
func metric(t *testing.T, url, series string) float64 {
	t.Helper()
	_, data := get(t, url+"/v1/metrics")
	if _, err := obsv.ValidateProm(data); err != nil {
		t.Fatalf("metrics page is not valid Prometheus text format: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: unparsable value %q", series, rest)
		}
		return f
	}
	t.Fatalf("series %s not found on the metrics page", series)
	return 0
}

const crcSpec = `{"simulator":"strongarm","kernel":"crc","scale":1}`

// TestCacheHitByteIdentical: the same spec submitted twice returns one
// content address; the second submission is a cache hit and the result
// payload is byte-for-byte what a completely fresh server computes.
func TestCacheHitByteIdentical(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	r1 := submit(t, hs.URL, crcSpec)
	body1 := waitState(t, hs.URL, r1.ID)

	r2 := submit(t, hs.URL, crcSpec)
	if r2.ID != r1.ID {
		t.Fatalf("content address changed: %s vs %s", r1.ID, r2.ID)
	}
	if !r2.Cached {
		t.Fatalf("second submission not served from cache: %+v", r2)
	}
	body2 := waitState(t, hs.URL, r2.ID)
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached payload differs:\n%s\n----\n%s", body1, body2)
	}
	if got := metric(t, hs.URL, "rcpn_cache_misses_total"); got != 1 {
		t.Fatalf("cache.misses = %v, want 1", got)
	}
	if got := metric(t, hs.URL, "rcpn_cache_hits_total"); got != 1 {
		t.Fatalf("cache.hits = %v, want 1", got)
	}

	// Determinism across processes: a fresh server computes the identical
	// bytes, so a cached result is indistinguishable from a fresh run.
	_, hs2 := newTestServer(t, Config{Workers: 1})
	r3 := submit(t, hs2.URL, crcSpec)
	if r3.ID != r1.ID {
		t.Fatalf("content address not stable across servers")
	}
	body3 := waitState(t, hs2.URL, r3.ID)
	if !bytes.Equal(body1, body3) {
		t.Fatalf("fresh run differs from cached result:\n%s\n----\n%s", body1, body3)
	}
}

// TestCanonicalization: field order, whitespace, defaulted fields and
// name case all hash to the same content address.
func TestCanonicalization(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	variants := []string{
		`{"simulator":"pipe5","kernel":"crc","scale":1}`,
		`{"kernel":"crc","simulator":"pipe5"}`,
		`{ "simulator" : "PIPE5", "kernel" : "CRC", "scale" : 0 }`,
	}
	var ids []string
	for _, v := range variants {
		ids = append(ids, submit(t, hs.URL, v).ID)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[0] {
			t.Fatalf("variant %d hashed differently: %s vs %s", i, ids[i], ids[0])
		}
	}
	if got := metric(t, hs.URL, "rcpn_cache_misses_total"); got != 1 {
		t.Fatalf("cache.misses = %v, want 1 (variants must collapse)", got)
	}
}

// TestSingleflightCollapse: concurrent identical submissions collapse to
// one enqueued job; every client gets the same id and, eventually, the
// same bytes. Run with ≥8 concurrent clients (the acceptance bar).
func TestSingleflightCollapse(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	const clients = 8
	spec := `{"simulator":"ssim","kernel":"crc"}`

	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, hs.URL, spec).ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("client %d got id %s, client 0 got %s", i, ids[i], ids[0])
		}
	}
	want := waitState(t, hs.URL, ids[0])
	var bodies [clients][]byte
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i] = waitState(t, hs.URL, ids[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	if got := metric(t, hs.URL, "rcpn_cache_misses_total"); got != 1 {
		t.Fatalf("cache.misses = %v, want 1 (submissions must collapse)", got)
	}
	if hits := metric(t, hs.URL, "rcpn_cache_hits_total") + metric(t, hs.URL, "rcpn_cache_coalesced_total"); hits != clients-1 {
		t.Fatalf("hits+coalesced = %v, want %d", hits, clients-1)
	}
}

// blockingStepper parks until released, then finishes instantly.
type blockingStepper struct {
	release <-chan struct{}
	pos     int64
}

func (b *blockingStepper) Pos() int64                { return b.pos }
func (b *blockingStepper) Progress() (int64, uint64) { return b.pos, uint64(b.pos) }
func (b *blockingStepper) StepTo(limit int64) (bool, error) {
	<-b.release
	b.pos = limit
	return true, nil
}

// endlessStepper advances forever; only Drive's context checks stop it.
type endlessStepper struct{ pos int64 }

func (e *endlessStepper) Pos() int64                { return e.pos }
func (e *endlessStepper) Progress() (int64, uint64) { return e.pos, uint64(e.pos) }
func (e *endlessStepper) StepTo(limit int64) (bool, error) {
	e.pos = limit
	time.Sleep(time.Millisecond) // simulate work so cancellation has a window
	return false, nil
}

// distinct job specs for tests that need several different content
// addresses without several real workloads.
func specN(n int) string {
	return fmt.Sprintf(`{"simulator":"pipe5","kernel":"crc","scale":%d}`, n)
}

// TestBackpressure429: with one busy worker and a one-deep queue, a third
// distinct job is refused with 429 + Retry-After instead of growing
// memory; after the backlog clears, the same spec is accepted.
func TestBackpressure429(t *testing.T) {
	release := make(chan struct{})
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.buildOverride = func(*JobSpec) (batch.Stepper, error) {
		return &blockingStepper{release: release}, nil
	}

	r1 := submit(t, hs.URL, specN(1)) // claimed by the worker, blocks
	// Wait for the worker to claim it so the queue is empty.
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, hs.URL, `rcpn_jobs{state="running"}`) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	submit(t, hs.URL, specN(2)) // fills the queue

	code, hdr, data := post(t, hs.URL, specN(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("third job: code %d, want 429: %s", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := metric(t, hs.URL, "rcpn_rejected_queue_full_total"); got != 1 {
		t.Fatalf("rejected_queue_full = %v, want 1", got)
	}

	close(release)
	waitState(t, hs.URL, r1.ID)
	// Backlog cleared: the spec that was shed is admitted on retry.
	r3 := submit(t, hs.URL, specN(3))
	waitState(t, hs.URL, r3.ID)
}

// TestInvalidSpecs: admission rejects malformed requests with 400 and
// nothing reaches the queue.
func TestInvalidSpecs(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	bad := []string{
		`{"simulator":"vax","kernel":"crc"}`,                               // unknown simulator
		`{"simulator":"pipe5"}`,                                            // neither kernel nor source
		`{"simulator":"pipe5","kernel":"crc","source":"nop"}`,              // both
		`{"simulator":"pipe5","kernel":"doom"}`,                            // unknown kernel
		`{"simulator":"pipe5","kernel":"crc","scale":1000}`,                // scale over bound
		`{"simulator":"pipe5","kernel":"crc","max_cycles":-1}`,             // negative cap
		`{"simulator":"pipe5","kernel":"crc","typo_field":1}`,              // unknown field
		`{"simulator":"iss","kernel":"crc","config":{"bpred":"nottaken"}}`, // config on functional sim
		`{"simulator":"pipe5","kernel":"crc","config":{"bpred":"tage"}}`,   // unknown predictor
		`{"simulator":"pipe5","kernel":"crc","config":{"icache":{"sets":3,"ways":1,"line_bytes":32,"hit_latency":1,"miss_latency":10}}}`, // non-power-of-two sets
		`{"simulator":"pipe5","source":"this is not assembly"}`,                                                                          // broken source
		`not json at all`,
	}
	for _, b := range bad {
		code, _, data := post(t, hs.URL, b)
		if code != http.StatusBadRequest {
			t.Errorf("spec %q: code %d (%s), want 400", b, code, data)
		}
	}
	if got := metric(t, hs.URL, "rcpn_rejected_invalid_total"); got != float64(len(bad)) {
		t.Fatalf("rejected_invalid = %v, want %d", got, len(bad))
	}
	if got := metric(t, hs.URL, "rcpn_cache_misses_total"); got != 0 {
		t.Fatalf("invalid specs reached the queue: misses = %v", got)
	}
}

// TestInlineSource: inline assembly is assembled, simulated and cached by
// content address like any kernel job.
func TestInlineSource(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	src := "start:\n\tmov r0, #7\n\tswi 1\n\tmov r0, #0\n\tswi 0\n"
	body, err := json.Marshal(map[string]any{"simulator": "iss", "source": src})
	if err != nil {
		t.Fatal(err)
	}
	r := submit(t, hs.URL, string(body))
	data := waitState(t, hs.URL, r.ID)
	var v struct {
		State  string `json:"state"`
		Result struct {
			Jobs []struct {
				Workload string `json:"workload"`
				Instret  uint64 `json:"instructions"`
			} `json:"jobs"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("inline job state %s: %s", v.State, data)
	}
	if len(v.Result.Jobs) != 1 || v.Result.Jobs[0].Workload != "inline" || v.Result.Jobs[0].Instret == 0 {
		t.Fatalf("unexpected result: %s", data)
	}
}

// TestSSEProgress: the events stream delivers progress (cycles retired)
// and a terminal state event, then closes.
func TestSSEProgress(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, SSEInterval: time.Millisecond, Chunk: 512})
	r := submit(t, hs.URL, `{"simulator":"xscale","kernel":"crc"}`)

	resp, err := http.Get(hs.URL + "/v1/jobs/" + r.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %s", ct)
	}
	raw, err := io.ReadAll(resp.Body) // server closes the stream at terminal state
	if err != nil {
		t.Fatal(err)
	}
	events := string(raw)
	if !strings.Contains(events, "event: state") {
		t.Fatalf("no state event:\n%s", events)
	}
	if !strings.Contains(events, `"state":"done"`) {
		t.Fatalf("no terminal done event:\n%s", events)
	}
	if !strings.Contains(events, "event: progress") || !strings.Contains(events, `"mcycles_per_sec"`) {
		t.Fatalf("no progress event with throughput:\n%s", events)
	}
}

// TestDrain: SIGTERM semantics — admission stops (healthz flips to 503,
// POST answers 503), the in-flight job is canceled at the grace deadline
// and recorded as a transient failure, and Drain returns.
func TestDrain(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	s.buildOverride = func(*JobSpec) (batch.Stepper, error) { return &endlessStepper{}, nil }

	r := submit(t, hs.URL, specN(1))
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, hs.URL, `rcpn_jobs{state="running"}`) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	if code, _ := get(t, hs.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain = %d", code)
	}

	drained := make(chan struct{})
	go func() {
		s.Drain(50 * time.Millisecond)
		close(drained)
	}()

	// healthz flips to not-ready and submissions are refused while draining.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if code, _ := get(t, hs.URL+"/healthz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped during drain")
		}
		time.Sleep(time.Millisecond)
	}
	code, hdr, _ := post(t, hs.URL, specN(2))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain = %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 during drain without Retry-After")
	}

	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain hung: grace deadline did not cancel the endless job")
	}

	data := waitState(t, hs.URL, r.ID)
	var v struct {
		State  string `json:"state"`
		Result struct {
			Jobs []struct {
				Canceled bool `json:"canceled"`
			} `json:"jobs"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateFailed || len(v.Result.Jobs) != 1 || !v.Result.Jobs[0].Canceled {
		t.Fatalf("drained job not recorded as canceled: %s", data)
	}
}

// TestTransientFailureRetries: a drain-canceled job is not replayed from
// cache — resubmitting the spec after the failure re-runs it.
func TestTransientFailureRetries(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1})
	s.buildOverride = func(*JobSpec) (batch.Stepper, error) { return &endlessStepper{}, nil }
	r := submit(t, hs.URL, specN(1))
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, hs.URL, `rcpn_jobs{state="running"}`) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain(10 * time.Millisecond)
	waitState(t, hs.URL, r.ID)

	// A fresh server (drain is terminal for a Server) must re-run, and a
	// deterministic result replaces the transient record.
	s2, hs2 := newTestServer(t, Config{Workers: 1})
	_ = s2
	r2 := submit(t, hs2.URL, specN(1))
	if r2.ID != r.ID {
		t.Fatalf("ids differ: %s vs %s", r2.ID, r.ID)
	}
	if r2.Cached {
		t.Fatal("fresh server claims cached result")
	}
	body := waitState(t, hs2.URL, r2.ID)
	if !strings.Contains(string(body), `"state":"done"`) && !strings.Contains(string(body), `"state": "done"`) {
		t.Fatalf("retry did not succeed: %s", body)
	}
}

// TestConcurrentMixedClients: ≥8 clients hammer different endpoints and
// specs at once; everything completes and the server stays consistent
// (run under -race in CI).
func TestConcurrentMixedClients(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	specs := []string{
		`{"simulator":"pipe5","kernel":"crc"}`,
		`{"simulator":"iss","kernel":"crc"}`,
		`{"simulator":"func","kernel":"crc"}`,
		`{"simulator":"pipe5","kernel":"adpcm"}`,
	}
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				spec := specs[(c+k)%len(specs)]
				r := submit(t, hs.URL, spec)
				waitState(t, hs.URL, r.ID)
				get(t, hs.URL+"/v1/metrics")
				get(t, hs.URL+"/healthz")
			}
		}(c)
	}
	wg.Wait()
	if got := metric(t, hs.URL, "rcpn_cache_misses_total"); got != float64(len(specs)) {
		t.Fatalf("cache.misses = %v, want %d (one per distinct spec)", got, len(specs))
	}
	if got := metric(t, hs.URL, "rcpn_jobs_failed_total"); got != 0 {
		t.Fatalf("jobs.failed = %v, want 0", got)
	}
	if got := metric(t, hs.URL, "rcpn_jobs_done_total"); got != float64(len(specs)) {
		t.Fatalf("jobs.done = %v, want %d", got, len(specs))
	}
}

// TestCacheEviction: the LRU bound holds and evicted jobs disappear from
// the registry (404), bounding server memory.
func TestCacheEviction(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, CacheEntries: 2})
	var ids []string
	for n := 1; n <= 3; n++ {
		r := submit(t, hs.URL, fmt.Sprintf(`{"simulator":"iss","kernel":"crc","scale":%d}`, n))
		waitState(t, hs.URL, r.ID)
		ids = append(ids, r.ID)
	}
	if got := metric(t, hs.URL, "rcpn_cache_entries"); got != 2 {
		t.Fatalf("cache.entries = %v, want 2", got)
	}
	if code, _ := get(t, hs.URL+"/v1/jobs/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("evicted job still served: %d", code)
	}
	if code, _ := get(t, hs.URL+"/v1/jobs/"+ids[2]); code != http.StatusOK {
		t.Fatalf("recent job missing: %d", code)
	}
}

// TestUnknownJob404: asking for a job that never existed is a 404 on both
// the state and events endpoints.
func TestUnknownJob404(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	if code, _ := get(t, hs.URL+"/v1/jobs/"+strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d", code)
	}
	if code, _ := get(t, hs.URL+"/v1/jobs/"+strings.Repeat("0", 64)+"/events"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job events = %d", code)
	}
}
