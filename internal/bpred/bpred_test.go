package bpred

import (
	"testing"
	"testing/quick"
)

func TestNotTaken(t *testing.T) {
	p := NewNotTaken()
	taken, _, known := p.Predict(0x8000)
	if taken || known {
		t.Fatal("not-taken predictor predicted taken")
	}
	p.Update(0x8000, false, 0)
	p.Predict(0x8004)
	p.Update(0x8004, true, 0x9000)
	s := p.Stats()
	if s.Lookups != 2 || s.Correct != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Accuracy() != 0.5 {
		t.Fatalf("accuracy %f", s.Accuracy())
	}
}

func TestBimodalLearnsLoop(t *testing.T) {
	p := NewBimodal(64)
	const pc, target = 0x8000, 0x7f00
	// Train: the branch is always taken.
	for i := 0; i < 4; i++ {
		p.Predict(pc)
		p.Update(pc, true, target)
	}
	taken, tgt, known := p.Predict(pc)
	if !taken || !known || tgt != target {
		t.Fatalf("trained prediction: taken=%v tgt=%#x known=%v", taken, tgt, known)
	}
	// Accuracy converges toward 1 for a monomorphic branch.
	for i := 0; i < 100; i++ {
		p.Predict(pc)
		p.Update(pc, true, target)
	}
	if acc := p.Stats().Accuracy(); acc < 0.9 {
		t.Fatalf("accuracy %f", acc)
	}
}

func TestBimodalHysteresis(t *testing.T) {
	p := NewBimodal(16)
	const pc, target = 0x100, 0x200
	// Saturate taken.
	for i := 0; i < 4; i++ {
		p.Update(pc, true, target)
	}
	// One not-taken must not flip the prediction (2-bit counter).
	p.Update(pc, false, target)
	if taken, _, _ := p.Predict(pc); !taken {
		t.Fatal("single not-taken flipped a saturated counter")
	}
	// Two more flip it.
	p.Update(pc, false, target)
	p.Update(pc, false, target)
	if taken, _, _ := p.Predict(pc); taken {
		t.Fatal("counter failed to learn not-taken")
	}
}

func TestBimodalBTBTagging(t *testing.T) {
	p := NewBimodal(16)
	// Two branches aliasing to different entries keep their own targets.
	a, b := uint32(0x1000), uint32(0x1004)
	for i := 0; i < 3; i++ {
		p.Update(a, true, 0x2000)
		p.Update(b, true, 0x3000)
	}
	if _, tgt, known := p.Predict(a); !known || tgt != 0x2000 {
		t.Fatalf("a target %#x known=%v", tgt, known)
	}
	if _, tgt, known := p.Predict(b); !known || tgt != 0x3000 {
		t.Fatalf("b target %#x known=%v", tgt, known)
	}
}

func TestBimodalPredictedTakenUnknownTarget(t *testing.T) {
	p := NewBimodal(16)
	// Alias two PCs to the same table entry (table of 16 -> pc>>2 & 15):
	// 0x1000 and 0x1040 share index 0.
	p.Update(0x1000, true, 0x2000)
	p.Update(0x1000, true, 0x2000)
	// Counter is now taken; 0x1040 hits the same counter but misses the BTB
	// tag, so the predictor says taken without a target.
	taken, _, known := p.Predict(0x1040)
	if !taken || known {
		t.Fatalf("aliased: taken=%v known=%v", taken, known)
	}
}

func TestBimodalSizing(t *testing.T) {
	// Sizes round up to a power of two, minimum 16.
	for _, n := range []int{0, 1, 15, 16, 17, 100} {
		p := NewBimodal(n)
		if p.mask+1 < 16 || (p.mask+1)&p.mask != 0 {
			t.Fatalf("size %d -> table %d", n, p.mask+1)
		}
	}
}

// Property: Predict never panics and prediction accuracy for an
// always-taken branch reaches 100% in steady state regardless of table size.
func TestBimodalSteadyStateProperty(t *testing.T) {
	err := quick.Check(func(pcSeed uint32, sizeSeed uint8) bool {
		p := NewBimodal(int(sizeSeed))
		pc := pcSeed &^ 3
		target := pc + 64
		for i := 0; i < 8; i++ {
			p.Update(pc, true, target)
		}
		taken, tgt, known := p.Predict(pc)
		return taken && known && tgt == target
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
