package serve

import (
	"sync"
	"time"
)

// quotas is the per-tenant token-bucket admission limiter. Each tenant's
// bucket refills at rate tokens/second up to burst; a submission spends
// one token. It sits in front of the queue-depth backpressure: the queue
// bounds the server's total exposure, the buckets bound any one tenant's
// share of it.
type quotas struct {
	rate  float64 // tokens per second
	burst float64

	mu sync.Mutex
	b  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTenants bounds the bucket map. Past it, tenants that have fully
// refilled are forgotten — forgetting a full bucket is lossless, a new
// bucket starts full.
const maxTenants = 4096

func newQuotas(rate float64, burst int) *quotas {
	return &quotas{rate: rate, burst: float64(burst), b: make(map[string]*bucket)}
}

// allow spends one token from tenant's bucket. When the bucket is empty it
// refuses and reports how long until a whole token has refilled — the
// Retry-After the handler advertises.
func (q *quotas) allow(tenant string, now time.Time) (ok bool, wait time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	bk := q.b[tenant]
	if bk == nil {
		if len(q.b) >= maxTenants {
			q.prune(now)
		}
		bk = &bucket{tokens: q.burst, last: now}
		q.b[tenant] = bk
	} else {
		// Clamp negative elapsed time: a clock step backwards (NTP slew,
		// VM migration) must not drain the bucket — it would charge the
		// tenant for time that never passed. The bucket simply earns
		// nothing until the clock passes its last stamp again.
		if elapsed := now.Sub(bk.last).Seconds(); elapsed > 0 {
			bk.tokens += elapsed * q.rate
			if bk.tokens > q.burst {
				bk.tokens = q.burst
			}
			bk.last = now
		}
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	return false, time.Duration((1 - bk.tokens) / q.rate * float64(time.Second))
}

// prune drops buckets that have refilled by now; callers hold q.mu. If
// every tenant is actively draining its bucket the map keeps them all —
// they are exactly the state the limiter exists to hold.
func (q *quotas) prune(now time.Time) {
	for t, bk := range q.b {
		elapsed := now.Sub(bk.last).Seconds()
		if elapsed < 0 {
			elapsed = 0 // same clock-skew clamp as allow
		}
		if bk.tokens+elapsed*q.rate >= q.burst {
			delete(q.b, t)
		}
	}
}
