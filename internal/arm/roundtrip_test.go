package arm

import (
	"math/rand"
	"testing"
)

// Randomized encode->decode round trips: every field combination the
// encoders can produce must decode back to the same semantic instruction.
// (The disassembler round trip in asm_test.go covers the textual side; this
// covers the full binary field space far beyond the hand-picked cases.)

func TestRoundTripDataProcRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		cond := Cond(rng.Intn(15))
		op := DPOp(rng.Intn(16))
		s := rng.Intn(2) == 0 || !op.WritesRd()
		rd := Reg(rng.Intn(15))
		rn := Reg(rng.Intn(15))
		var op2 Operand2
		switch rng.Intn(3) {
		case 0:
			// Guaranteed-encodable immediate: 8-bit value, even rotation.
			v := uint32(rng.Intn(256))
			rot := uint32(rng.Intn(16)) * 2
			if rot != 0 {
				v = v>>rot | v<<(32-rot)
			}
			op2 = ImmOp(v)
		case 1:
			op2 = ShiftedOp(Reg(rng.Intn(15)), Shift(rng.Intn(4)), uint8(rng.Intn(32)))
		default:
			op2 = Operand2{Rm: Reg(rng.Intn(15)), ShiftTyp: Shift(rng.Intn(4)),
				ShiftReg: true, Rs: Reg(rng.Intn(15))}
		}
		w, err := EncodeDP(cond, op, s, rd, rn, op2)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		ins := Decode(w, 0)
		if ins.Class != ClassDataProc || ins.Cond != cond || ins.Op != op {
			t.Fatalf("case %d: class/cond/op mismatch: %+v", i, ins)
		}
		if op.WritesRd() && ins.Rd != rd {
			t.Fatalf("case %d: rd %v != %v", i, ins.Rd, rd)
		}
		if op.UsesRn() && ins.Rn != rn {
			t.Fatalf("case %d: rn %v != %v", i, ins.Rn, rn)
		}
		if op2.HasImm {
			if !ins.HasImm || ins.Imm != op2.Imm {
				t.Fatalf("case %d: imm %#x != %#x", i, ins.Imm, op2.Imm)
			}
		} else {
			if ins.HasImm || ins.Rm != op2.Rm || ins.ShiftTyp != op2.ShiftTyp ||
				ins.ShiftReg != op2.ShiftReg {
				t.Fatalf("case %d: op2 mismatch: %+v vs %+v", i, ins, op2)
			}
			if op2.ShiftReg && ins.Rs != op2.Rs {
				t.Fatalf("case %d: rs mismatch", i)
			}
			if !op2.ShiftReg && ins.ShiftAmt != op2.ShiftAmt {
				t.Fatalf("case %d: shift amount %d != %d", i, ins.ShiftAmt, op2.ShiftAmt)
			}
		}
	}
}

func TestRoundTripLoadStoreRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		cond := Cond(rng.Intn(15))
		load := rng.Intn(2) == 0
		byteSz := rng.Intn(2) == 0
		rd := Reg(rng.Intn(15))
		m := MemMode{
			Rn:       Reg(rng.Intn(15)),
			Up:       rng.Intn(2) == 0,
			PreIndex: rng.Intn(2) == 0,
		}
		if m.PreIndex {
			m.Writeback = rng.Intn(2) == 0
		}
		if rng.Intn(2) == 0 {
			m.Off = ImmOp(uint32(rng.Intn(4096)))
		} else {
			m.Off = ShiftedOp(Reg(rng.Intn(15)), Shift(rng.Intn(4)), uint8(rng.Intn(32)))
		}
		w, err := EncodeLS(cond, load, byteSz, rd, m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		ins := Decode(w, 0)
		if ins.Class != ClassLoadStore || ins.Load != load || ins.Byte != byteSz ||
			ins.Rd != rd || ins.Rn != m.Rn || ins.Up != m.Up || ins.PreIndex != m.PreIndex {
			t.Fatalf("case %d: mismatch %+v", i, ins)
		}
		if m.Off.HasImm && (!ins.HasImm || ins.Imm != m.Off.Imm) {
			t.Fatalf("case %d: imm offset mismatch", i)
		}
		if !m.Off.HasImm && (ins.HasImm || ins.Rm != m.Off.Rm) {
			t.Fatalf("case %d: reg offset mismatch", i)
		}
	}
}

func TestRoundTripHalfwordRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		cond := Cond(rng.Intn(15))
		// Valid combos: LDRH, LDRSB, LDRSH, STRH.
		type combo struct{ load, signed, half bool }
		combos := []combo{{true, false, true}, {true, true, false}, {true, true, true}, {false, false, true}}
		c := combos[rng.Intn(len(combos))]
		m := MemMode{
			Rn:       Reg(rng.Intn(15)),
			Up:       rng.Intn(2) == 0,
			PreIndex: rng.Intn(2) == 0,
		}
		if m.PreIndex {
			m.Writeback = rng.Intn(2) == 0
		}
		if rng.Intn(2) == 0 {
			m.Off = ImmOp(uint32(rng.Intn(256)))
		} else {
			m.Off = RegOp(Reg(rng.Intn(15)))
		}
		rd := Reg(rng.Intn(15))
		w, err := EncodeHS(cond, c.load, c.signed, c.half, rd, m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		ins := Decode(w, 0)
		if ins.Class != ClassLoadStore || ins.Load != c.load ||
			ins.Half != c.half || ins.SignedLoad != c.signed {
			t.Fatalf("case %d: form mismatch %+v (want %+v)", i, ins, c)
		}
		if ins.Rd != rd || ins.Rn != m.Rn || ins.Up != m.Up || ins.PreIndex != m.PreIndex {
			t.Fatalf("case %d: addressing mismatch %+v", i, ins)
		}
		if m.Off.HasImm && (!ins.HasImm || ins.Imm != m.Off.Imm) {
			t.Fatalf("case %d: split imm mismatch: %#x vs %#x", i, ins.Imm, m.Off.Imm)
		}
	}
}

func TestRoundTripLSMRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		cond := Cond(rng.Intn(15))
		load := rng.Intn(2) == 0
		pre := rng.Intn(2) == 0
		up := rng.Intn(2) == 0
		wb := rng.Intn(2) == 0
		rn := Reg(rng.Intn(15))
		list := uint16(rng.Intn(1<<16-1) + 1)
		w := EncodeLSM(cond, load, pre, up, wb, rn, list)
		ins := Decode(w, 0)
		if ins.Class != ClassLoadStoreM || ins.Load != load || ins.PreIndex != pre ||
			ins.Up != up || ins.Writeback != wb || ins.Rn != rn || ins.RegList != list {
			t.Fatalf("case %d: %+v", i, ins)
		}
	}
}

func TestRoundTripMulLongRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		cond := Cond(rng.Intn(15))
		signed := rng.Intn(2) == 0
		accum := rng.Intn(2) == 0
		s := rng.Intn(2) == 0
		hi, lo, rm, rs := Reg(rng.Intn(15)), Reg(rng.Intn(15)), Reg(rng.Intn(15)), Reg(rng.Intn(15))
		w := EncodeMulLong(cond, signed, accum, s, hi, lo, rm, rs)
		ins := Decode(w, 0)
		if ins.Class != ClassMult || !ins.Long || ins.SignedMul != signed ||
			ins.Accum != accum || ins.SetFlags != s ||
			ins.Rd != hi || ins.Rn != lo || ins.Rm != rm || ins.Rs != rs {
			t.Fatalf("case %d: %+v", i, ins)
		}
	}
}

func TestRoundTripBranchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 3000; i++ {
		cond := Cond(rng.Intn(15))
		link := rng.Intn(2) == 0
		addr := uint32(rng.Intn(1<<24)) &^ 3
		off := int32(rng.Intn(1<<23) - 1<<22)
		target := uint32(int64(addr) + 8 + int64(off)*4)
		w, err := EncodeBranch(cond, link, addr, target)
		if err != nil {
			continue // out-of-range combos are rejected, which is fine
		}
		ins := Decode(w, addr)
		if ins.Class != ClassBranch || ins.Link != link || ins.Target() != target {
			t.Fatalf("case %d: target %#x want %#x", i, ins.Target(), target)
		}
	}
}
