// Package diffrun is the differential execution harness behind both the
// conformance matrix (conformance_test.go) and the generative fuzzer
// (cmd/rcpnfuzz): one engine registry covering every simulator in the
// repository, a runner that executes a program on the ISS golden model and
// on every registered engine — plain and through a checkpoint/restore
// handoff — and a comparator over the complete final architectural state.
//
// Reports are deterministic: engines run in registry order, divergences are
// formatted with fixed layouts, and nothing depends on wall-clock time or
// map iteration, so the same program produces a byte-identical report on
// every run (the property the fuzzer's minimizer re-checks at every step).
package diffrun

import (
	"fmt"
	"sort"
	"strings"

	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/mem"
	"rcpn/internal/pipe5"
	"rcpn/internal/simrun"
	"rcpn/internal/ssim"
)

// State is the comparable end-of-run architectural state: registers
// r0..r14 (r15 representations differ by simulator), the NZCV flags, a
// digest of the entire data memory, the retired-instruction count, the exit
// code and both emitted output streams.
type State struct {
	Regs    [15]uint32
	Flags   arm.Flags
	MemHash uint64
	Instret uint64
	Exit    uint32
	Output  []uint32
	Text    string
}

// StateOf captures a State from a simulator's accessors.
func StateOf(reg func(arm.Reg) uint32, flags arm.Flags, m *mem.Memory,
	instret uint64, exit uint32, output []uint32, text []byte) State {
	s := State{
		Flags:   flags,
		MemHash: m.Digest(),
		Instret: instret,
		Exit:    exit,
		Output:  output,
		Text:    string(text),
	}
	for r := 0; r < 15; r++ {
		s.Regs[r] = reg(arm.Reg(r))
	}
	return s
}

// Diff returns one line per field where s differs from the golden state,
// in a fixed order; an empty slice means the states match bit-for-bit.
func (s State) Diff(golden State) []string {
	var out []string
	for r, v := range s.Regs {
		if v != golden.Regs[r] {
			out = append(out, fmt.Sprintf("r%d = %#x, iss %#x", r, v, golden.Regs[r]))
		}
	}
	if s.Flags != golden.Flags {
		out = append(out, fmt.Sprintf("flags %+v, iss %+v", s.Flags, golden.Flags))
	}
	if s.MemHash != golden.MemHash {
		out = append(out, fmt.Sprintf("memory digest %#x, iss %#x", s.MemHash, golden.MemHash))
	}
	if s.Instret != golden.Instret {
		out = append(out, fmt.Sprintf("instret %d, iss %d", s.Instret, golden.Instret))
	}
	if s.Exit != golden.Exit {
		out = append(out, fmt.Sprintf("exit %d, iss %d", s.Exit, golden.Exit))
	}
	if len(s.Output) != len(golden.Output) {
		out = append(out, fmt.Sprintf("%d output words, iss %d", len(s.Output), len(golden.Output)))
	} else {
		for i := range s.Output {
			if s.Output[i] != golden.Output[i] {
				out = append(out, fmt.Sprintf("output[%d] = %#x, iss %#x", i, s.Output[i], golden.Output[i]))
			}
		}
	}
	if s.Text != golden.Text {
		out = append(out, fmt.Sprintf("text stream differs (%d bytes vs %d)", len(s.Text), len(golden.Text)))
	}
	return out
}

// Engine is one registry row: Build constructs a fresh instance on a
// program and returns its checkpointable stepper plus a closure extracting
// the instance's final architectural state.
type Engine struct {
	Name  string
	Build func(p *arm.Program) (batch.CheckpointStepper, func() State, error)
}

func machineEngine(name string, mk func(p *arm.Program) (*machine.Machine, error)) Engine {
	return Engine{Name: name, Build: func(p *arm.Program) (batch.CheckpointStepper, func() State, error) {
		m, err := mk(p)
		if err != nil {
			return nil, nil, err
		}
		st := simrun.Machine(m).(batch.CheckpointStepper)
		return st, func() State {
			return StateOf(m.Reg, m.Flags(), m.Mem, m.Instret, m.ExitCode, m.Output, m.Text)
		}, nil
	}}
}

// Engines returns the full registry: the ISS golden model, the functional
// RCPN machine, the three generated cycle-accurate machines, the
// hand-written five-stage pipeline and the SimpleScalar-like baseline.
// Adding an engine here — or registering one with Register — extends the
// conformance matrix and the fuzzer at once.
func Engines() []Engine {
	return append(builtinEngines(), registered...)
}

// registered holds engines added by Register, in registration order.
var registered []Engine

// Register adds an engine to the registry behind the built-in rows. It is
// meant to be called from init functions (generated simulators register
// themselves this way) so every diffrun consumer — the conformance matrix,
// the fuzzer, the regression-kernel replayer — sweeps the engine with no
// further wiring. Names must be unique across the whole registry.
func Register(e Engine) {
	if e.Name == "" || e.Build == nil {
		panic("diffrun: Register: engine needs a name and a builder")
	}
	for _, have := range Engines() {
		if have.Name == e.Name {
			panic("diffrun: Register: duplicate engine name " + e.Name)
		}
	}
	registered = append(registered, e)
}

func builtinEngines() []Engine {
	return []Engine{
		{Name: "iss", Build: func(p *arm.Program) (batch.CheckpointStepper, func() State, error) {
			c := iss.New(p, 0)
			st := simrun.ISS(c).(batch.CheckpointStepper)
			return st, func() State {
				return StateOf(func(r arm.Reg) uint32 { return c.R[r] },
					c.F, c.Mem, c.Instret, c.Exit, c.Output, c.Text)
			}, nil
		}},
		{Name: "func", Build: func(p *arm.Program) (batch.CheckpointStepper, func() State, error) {
			m := machine.NewFunctional(p, machine.Config{})
			st := simrun.Functional(m).(batch.CheckpointStepper)
			return st, func() State {
				return StateOf(m.Reg, m.Flags(), m.Mem, m.Instret, m.ExitCode, m.Output, m.Text)
			}, nil
		}},
		machineEngine("strongarm", func(p *arm.Program) (*machine.Machine, error) {
			return machine.NewStrongARM(p, machine.Config{}), nil
		}),
		machineEngine("xscale", func(p *arm.Program) (*machine.Machine, error) {
			return machine.NewXScale(p, machine.Config{}), nil
		}),
		machineEngine("arm9", func(p *arm.Program) (*machine.Machine, error) {
			return machine.NewARM9(p, machine.Config{})
		}),
		{Name: "pipe5", Build: func(p *arm.Program) (batch.CheckpointStepper, func() State, error) {
			s := pipe5.New(p, pipe5.Config{})
			st := simrun.Pipe5(s).(batch.CheckpointStepper)
			return st, func() State {
				return StateOf(func(r arm.Reg) uint32 { return s.R[r] },
					s.F, s.Mem, s.Instret, s.ExitCode, s.Output, s.Text)
			}, nil
		}},
		{Name: "ssim", Build: func(p *arm.Program) (batch.CheckpointStepper, func() State, error) {
			s := ssim.New(p, ssim.Config{})
			st := simrun.SSim(s).(batch.CheckpointStepper)
			return st, func() State {
				return StateOf(s.Reg, s.Flags(), s.Mem(), s.Instret, s.ExitCode(), s.Output(), s.Text())
			}, nil
		}},
	}
}

// WithProgramMutation wraps e so every built instance executes a mutated
// copy of the program image while the golden model sees the original — a
// test-only hook for planting a deterministic "engine bug" (e.g. a decode
// defect that drops MLA's accumulate bit) and proving the fuzzer catches
// and minimizes it. mutate receives the image words and edits them in
// place.
func (e Engine) WithProgramMutation(mutate func(words []uint32)) Engine {
	inner := e.Build
	return Engine{Name: e.Name, Build: func(p *arm.Program) (batch.CheckpointStepper, func() State, error) {
		words := p.Words()
		mutate(words)
		bytes := make([]byte, len(p.Bytes))
		copy(bytes, p.Bytes)
		for i, w := range words {
			bytes[4*i] = byte(w)
			bytes[4*i+1] = byte(w >> 8)
			bytes[4*i+2] = byte(w >> 16)
			bytes[4*i+3] = byte(w >> 24)
		}
		p2 := &arm.Program{Base: p.Base, Entry: p.Entry, Bytes: bytes, Symbols: p.Symbols}
		return inner(p2)
	}}
}

const errNotFinished = "position limit reached without exit (engine hang?)"

// minCkptInstret is the golden retirement count below which Run skips the
// checkpointed variants (see Run).
const minCkptInstret = 128

// RunPlain runs a fresh instance of e to completion, bounded by posLimit
// (cycles or instructions, whichever the engine counts).
func RunPlain(e Engine, p *arm.Program, posLimit int64) (State, error) {
	st, state, err := e.Build(p)
	if err != nil {
		return State{}, err
	}
	done, err := st.StepTo(posLimit)
	if err != nil {
		return State{}, err
	}
	if !done {
		return State{}, fmt.Errorf("%s", errNotFinished)
	}
	return state(), nil
}

// RunCheckpointed runs to a drained boundary at the given retirement count,
// snapshots, restores into a completely fresh instance, and finishes there
// — the cross-instance handoff every engine's checkpoint support must
// survive. A program that exits before the boundary is returned as-is.
func RunCheckpointed(e Engine, p *arm.Program, boundary uint64, posLimit int64) (State, error) {
	st, state, err := e.Build(p)
	if err != nil {
		return State{}, err
	}
	done, err := st.StepToRetired(boundary, posLimit)
	if err != nil {
		return State{}, err
	}
	if done {
		return state(), nil
	}
	if err := st.DrainBoundary(); err != nil {
		return State{}, err
	}
	ck, err := st.Checkpoint()
	if err != nil {
		return State{}, err
	}
	st2, state2, err := e.Build(p)
	if err != nil {
		return State{}, err
	}
	if err := st2.Restore(ck); err != nil {
		return State{}, err
	}
	done, err = st2.StepTo(posLimit)
	if err != nil {
		return State{}, err
	}
	if !done {
		return State{}, fmt.Errorf("%s", errNotFinished)
	}
	return state2(), nil
}

// Options configure a differential run.
type Options struct {
	// Engines to compare against the ISS golden model (default Engines()).
	Engines []Engine
	// MaxInstrs bounds the golden ISS run (default 5M). A program that does
	// not exit within it is a generator bug, reported as an error.
	MaxInstrs uint64
	// PosLimit bounds every engine run in its own position unit; 0 derives
	// a generous limit from the golden instruction count, so a hanging
	// engine surfaces as a divergence instead of a stuck process.
	PosLimit int64
	// CkptBoundary is where the checkpointed variants snapshot; 0 places it
	// at half the golden retirement count.
	CkptBoundary uint64
}

// Divergence is one engine variant that failed to reproduce the golden
// state.
type Divergence struct {
	Engine  string // registry name
	Variant string // "plain" or "ckpt"
	Err     string // run error (hang, internal failure); empty for state mismatches
	Lines   []string
}

// Result is the outcome of one differential run.
type Result struct {
	Golden      State
	Divergences []Divergence
}

// Clean reports whether every engine reproduced the golden state.
func (r Result) Clean() bool { return len(r.Divergences) == 0 }

// Signature is a stable fingerprint of the divergence set, used by the
// minimizer to confirm a candidate still fails the same way and by the
// determinism re-check.
func (r Result) Signature() string {
	var parts []string
	for _, d := range r.Divergences {
		key := d.Err
		if key == "" {
			key = strings.Join(d.Lines, "; ")
		}
		parts = append(parts, d.Engine+"/"+d.Variant+": "+key)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// Report renders the result deterministically.
func (r Result) Report() string {
	var b strings.Builder
	if r.Clean() {
		b.WriteString("ok: all engines match the ISS golden state\n")
		return b.String()
	}
	fmt.Fprintf(&b, "DIVERGENCE: %d engine variant(s) differ from the ISS golden state\n", len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s+%s:\n", d.Engine, d.Variant)
		if d.Err != "" {
			fmt.Fprintf(&b, "    error: %s\n", d.Err)
			continue
		}
		for _, l := range d.Lines {
			fmt.Fprintf(&b, "    %s\n", l)
		}
	}
	return b.String()
}

// Run executes p on the golden model and every engine variant and returns
// the comparison. An error means the golden run itself failed (undefined
// instruction, runaway program) — a property of the input, not an engine
// divergence.
func Run(p *arm.Program, opt Options) (Result, error) {
	engines := opt.Engines
	if engines == nil {
		engines = Engines()
	}
	maxInstrs := opt.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 5_000_000
	}
	golden := iss.New(p, 0)
	golden.MaxInstrs = maxInstrs
	if err := golden.Run(); err != nil {
		return Result{}, fmt.Errorf("golden iss: %w", err)
	}
	res := Result{Golden: StateOf(func(r arm.Reg) uint32 { return golden.R[r] },
		golden.F, golden.Mem, golden.Instret, golden.Exit, golden.Output, golden.Text)}

	posLimit := opt.PosLimit
	if posLimit == 0 {
		// Generous: no engine spends anywhere near 64 cycles per retired
		// instruction on these workloads, so crossing this means a hang.
		posLimit = int64(res.Golden.Instret)*64 + 1_000_000
	}
	boundary := opt.CkptBoundary
	if boundary == 0 {
		boundary = res.Golden.Instret / 2
	}
	// The checkpointed variant is skipped for very short programs (unless the
	// caller pinned a boundary): with the boundary only a handful of
	// instructions from exit, an engine's drain can complete the program
	// before reaching a checkpointable window — a harness artifact, not an
	// engine bug — and the minimizer would otherwise happily shrink real
	// divergences into that artifact.
	runCkpt := opt.CkptBoundary != 0 || res.Golden.Instret >= minCkptInstret

	for _, e := range engines {
		if got, err := RunPlain(e, p, posLimit); err != nil {
			res.Divergences = append(res.Divergences,
				Divergence{Engine: e.Name, Variant: "plain", Err: err.Error()})
		} else if lines := got.Diff(res.Golden); len(lines) > 0 {
			res.Divergences = append(res.Divergences,
				Divergence{Engine: e.Name, Variant: "plain", Lines: lines})
		}
		if !runCkpt {
			continue
		}
		if got, err := RunCheckpointed(e, p, boundary, posLimit); err != nil {
			res.Divergences = append(res.Divergences,
				Divergence{Engine: e.Name, Variant: "ckpt", Err: err.Error()})
		} else if lines := got.Diff(res.Golden); len(lines) > 0 {
			res.Divergences = append(res.Divergences,
				Divergence{Engine: e.Name, Variant: "ckpt", Lines: lines})
		}
	}
	return res, nil
}
