package workload

import "fmt"

// Extra returns additional kernels beyond the paper's six. They are not
// part of the Figure 10/11 reproduction; they exist to exercise the wider
// ARM7 subset (halfword transfers, long multiplies) on realistic loops and
// are cross-checked across all simulators like the main suite.
func Extra() []*Workload {
	return []*Workload{
		{Name: "fir16", Suite: "extra", source: fir16Source},
		{Name: "sha", Suite: "extra", source: shaSource},
	}
}

// AllWithExtra returns the paper's six kernels plus the extras.
func AllWithExtra() []*Workload {
	return append(All(), Extra()...)
}

// fir16Source is a 16-bit FIR filter: samples and coefficients live in
// memory as halfwords (LDRSH), the dot product accumulates into a 64-bit
// pair with SMLAL, and the output stream is written back with STRH — the
// DSP inner loop shape the XScale MAC unit exists for.
func fir16Source(scale int) string {
	samples := 1024 * scale
	return fmt.Sprintf(`
; fir16 kernel (extra) — 8-tap FIR over %[1]d int16 samples using
; LDRSH/STRH and SMLAL 64-bit accumulation.
_start:
	; synthesize int16 input samples via LCG
	ldr r0, =input
	ldr r1, =%[1]d
	ldr r2, =0x0bad5eed
	ldr r3, =1664525
	ldr r12, =1013904223
gen:
	mla r2, r2, r3, r12
	mov r4, r2, lsr #17      ; 15-bit magnitude
	strh r4, [r0], #2
	subs r1, r1, #1
	bne gen

	ldr r8, =%[1]d-8         ; output count
	ldr r9, =input
	ldr r10, =output
	mov r11, #0              ; output checksum
outer:
	; 64-bit acc = sum taps
	mov r4, #0               ; accLo
	mov r5, #0               ; accHi
	ldr r6, =coeffs
	mov r7, #8               ; taps
	mov r12, r9
tap:
	ldrsh r0, [r12], #2
	ldrsh r1, [r6], #2
	smlal r4, r5, r0, r1
	subs r7, r7, #1
	bne tap
	; scale down and emit one output sample
	mov r0, r4, lsr #8
	orr r0, r0, r5, lsl #24
	strh r0, [r10], #2
	; fold into checksum: cs = cs*31 + (out & 0xffff)
	mov r1, r11, lsl #5
	sub r11, r1, r11
	ldr r1, =0xffff
	and r0, r0, r1
	add r11, r11, r0
	add r9, r9, #2           ; slide window
	subs r8, r8, #1
	bne outer

	mov r0, r11
	swi #1
	mov r0, #0
	swi #0
	.ltorg
	.align
coeffs:
	.word 0x00030001, 0xfffB0007, 0x0011fff1, 0x00050002 ; int16 pairs
input:
	.space %[2]d
output:
	.space %[2]d
`, samples, 2*samples+16)
}

// shaSource is a MiBench sha-like kernel: the SHA-1 message schedule and
// round function — rotate-heavy word shuffling over an 80-entry expansion,
// the other common embedded-benchmark shape (bitwise/rotates, no memory
// pressure).
func shaSource(scale int) string {
	blocks := 48 * scale
	return fmt.Sprintf(`
; sha kernel (extra) — SHA-1-style rounds over %[1]d blocks
;
; registers: r4-r8 = a..e working state, r9 = block counter
; w[80] schedule in memory, seeded from the LCG per block.
_start:
	ldr r9, =%[1]d
	ldr r0, =0x67452301
	ldr r1, =0xEFCDAB89
	mov r4, r0               ; a
	mov r5, r1               ; b
	ldr r6, =0x98BADCFE      ; c
	ldr r7, =0x10325476      ; d
	ldr r8, =0xC3D2E1F0      ; e
	ldr r10, =0x5eed1357     ; LCG state
block_loop:
	; fill w[0..15] from the LCG
	ldr r0, =w
	mov r1, #16
	ldr r2, =1664525
	ldr r3, =1013904223
fill:
	mla r10, r10, r2, r3
	str r10, [r0], #4
	subs r1, r1, #1
	bne fill
	; expand w[16..79]: w[i] = rol1(w[i-3]^w[i-8]^w[i-14]^w[i-16])
	ldr r0, =w+64            ; &w[16]
	ldr r1, =w+320           ; &w[80]
expand:
	ldr r2, [r0, #-12]
	ldr r3, [r0, #-32]
	eor r2, r2, r3
	ldr r3, [r0, #-56]
	eor r2, r2, r3
	ldr r3, [r0, #-64]
	eor r2, r2, r3
	mov r2, r2, ror #31      ; rotate left 1
	str r2, [r0], #4
	cmp r0, r1
	blo expand
	; 80 rounds; f switches by round quarter
	ldr r0, =w
	mov r1, #0               ; round
round_loop:
	cmp r1, #20
	blt f_ch
	cmp r1, #40
	blt f_par
	cmp r1, #60
	blt f_maj
	; parity again, K4
	eor r2, r5, r6
	eor r2, r2, r7
	ldr r3, =0xCA62C1D6
	b round_body
f_ch:
	and r2, r5, r6
	bic r3, r7, r5
	orr r2, r2, r3
	ldr r3, =0x5A827999
	b round_body
f_par:
	eor r2, r5, r6
	eor r2, r2, r7
	ldr r3, =0x6ED9EBA1
	b round_body
f_maj:
	and r2, r5, r6
	and r12, r5, r7
	orr r2, r2, r12
	and r12, r6, r7
	orr r2, r2, r12
	ldr r3, =0x8F1BBCDC
round_body:
	; tmp = rol5(a) + f + e + k + w[i]
	add r2, r2, r8
	add r2, r2, r3
	ldr r3, [r0], #4
	add r2, r2, r3
	add r2, r2, r4, ror #27  ; rol5(a)
	mov r8, r7               ; e = d
	mov r7, r6               ; d = c
	mov r6, r5, ror #2       ; c = rol30(b)
	mov r5, r4               ; b = a
	mov r4, r2               ; a = tmp
	add r1, r1, #1
	cmp r1, #80
	blt round_loop
	subs r9, r9, #1
	bne block_loop

	mov r0, r4
	swi #1
	eor r0, r5, r6
	eor r0, r0, r7
	eor r0, r0, r8
	swi #1
	mov r0, #0
	swi #0
	.ltorg
	.align
w:
	.space 320
`, blocks)
}
