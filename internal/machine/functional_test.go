package machine

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/iss"
)

// runFunctional cross-checks the model-extracted functional simulator
// against the independent ISS golden model.
func runFunctional(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	golden := iss.New(p, 0)
	golden.MaxInstrs = 5_000_000
	if err := golden.Run(); err != nil {
		t.Fatalf("iss: %v", err)
	}
	m := NewFunctional(p, Config{})
	if err := m.RunFunctional(5_000_000); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != golden.Exit || m.Instret != golden.Instret {
		t.Fatalf("exit/instret: %d/%d vs iss %d/%d", m.ExitCode, m.Instret, golden.Exit, golden.Instret)
	}
	if len(m.Output) != len(golden.Output) {
		t.Fatalf("output %v vs %v", m.Output, golden.Output)
	}
	for i := range m.Output {
		if m.Output[i] != golden.Output[i] {
			t.Errorf("output[%d] = %#x, iss %#x", i, m.Output[i], golden.Output[i])
		}
	}
	if string(m.Text) != string(golden.Text) {
		t.Errorf("text %q vs %q", m.Text, golden.Text)
	}
	for r := arm.Reg(0); r < 15; r++ {
		if m.Reg(r) != golden.R[r] {
			t.Errorf("r%d = %#x, iss %#x", r, m.Reg(r), golden.R[r])
		}
	}
	return m
}

func TestFunctionalExtraction(t *testing.T) {
	runFunctional(t, `
_start:
	mov r0, #9
	bl fact
	swi #1
	ldr r1, =tbl
	mov r2, #0
	mov r3, #0
sum:
	ldr r4, [r1, r2, lsl #2]
	add r3, r3, r4
	add r2, r2, #1
	cmp r2, #4
	bne sum
	mov r0, r3
	swi #1
	mov r0, #0
	swi #0
fact:
	cmp r0, #1
	movle r0, #1
	movle pc, lr
	push {r4, lr}
	mov r4, r0
	sub r0, r0, #1
	bl fact
	mul r0, r4, r0
	pop {r4, pc}
	.align
tbl:
	.word 10, 20, 30, 40
`)
}

func TestFunctionalConditionalAndFlags(t *testing.T) {
	runFunctional(t, `
	mvn r0, #0
	mov r1, #1
	adds r2, r0, r1
	adc r3, r1, #0
	mov r0, r3
	swi #1
	movs r4, r1, lsr #1   ; C=1, result 0, Z=1
	adceq r5, r1, #10     ; executes: r5 = 1 + 10 + 1 = 12
	mov r0, r5
	swi #1
	swi #0
`)
}

func TestFunctionalRequiresConstructor(t *testing.T) {
	p, err := arm.Assemble("swi #0\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewStrongARM(p, Config{})
	if err := m.RunFunctional(100); err == nil {
		t.Fatal("cycle machine must refuse functional mode")
	}
}

func TestFunctionalInstructionLimit(t *testing.T) {
	p, err := arm.Assemble("x: b x\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewFunctional(p, Config{})
	if err := m.RunFunctional(100); err == nil {
		t.Fatal("expected limit error")
	}
}
