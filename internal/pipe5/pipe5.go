// Package pipe5 is a hand-written, direct-style cycle-accurate simulator of
// the same StrongARM-class five-stage pipeline the RCPN model describes:
// explicit stage functions, a handful of pipeline latches, values carried in
// flat structs. It represents the "manually generated counterpart" the paper
// measures generated simulators against (§1: automatically generated
// cycle-accurate simulators were historically "more limited or slower than
// their manually generated counterparts"; §5 compares against FastSim's
// hand-tuned speed). The benchmark suite uses it to show that the
// RCPN-generated simulator reaches hand-written performance.
//
// Like every simulator in this repository it is functionally exact and is
// cross-checked against the ISS golden model.
package pipe5

import (
	"fmt"

	"rcpn/internal/arm"
	"rcpn/internal/bpred"
	"rcpn/internal/mem"
	"rcpn/internal/obsv"
)

// Config mirrors machine.Config for the baseline.
type Config struct {
	Caches    mem.Hierarchy
	Predictor bpred.Predictor
	StackTop  uint32
}

// slot is a pipeline register entry: the raw instruction word plus the
// dynamic state accumulated as it moves down the pipe.
type slot struct {
	raw, addr uint32
	seq       uint64
	delay     int // cycles left before the owning stage may process it

	annulled bool
	predNext uint32

	// Source values resolved at ID.
	srcVals [4]uint32

	// Results: write mask over r0..r14, per-register values and readiness.
	wrMask uint16
	vals   [16]uint32
	ready  uint16

	writesFlags bool
	flagsOut    arm.Flags

	ea      uint32
	lsmIdx  int
	lsmAddr []uint32
	wbVal   uint32
	baseWB  bool
	donePC  bool // control transfer already resolved
}

// Sim is the baseline simulator instance.
type Sim struct {
	Mem    *mem.Memory
	R      [16]uint32
	F      arm.Flags
	ICache *mem.Cache
	DCache *mem.Cache
	Pred   bpred.Predictor

	pc        uint32
	seq       uint64
	fetchHold uint64 // seq of the serializing instruction, 0 if none
	holdFetch bool   // front end paused while draining to a checkpoint boundary

	fq, dx, mx, wx *slot // IF->ID, ID->EX, EX->MEM, MEM->WB latches

	pending [16]int // scoreboard: outstanding writers per register

	// slotPool recycles retired/flushed latch entries; slotBlock backs pool
	// misses with one contiguous array so the handful of live slots share
	// cache lines. idSrcs and idDests are the ID stage's scratch lists. All
	// keep steady-state simulation free of per-instruction allocation.
	slotPool  []*slot
	slotBlock []slot
	slotNext  int
	idSrcs    []srcRef
	idDests   []arm.Reg

	Cycles   int64
	Instret  uint64
	Flushes  uint64
	Output   []uint32
	Text     []byte
	Exited   bool
	ExitCode uint32
	Err      error

	// Observability attachments (obsv.go); nil unless enabled. rdFile and
	// rdByp tally the ID stage's operand reads during the hazard scan so
	// the profile only counts them when the issue commits.
	prof          *obsv.StallProfile
	tr            *obsv.Tracer
	rdFile, rdByp int
}

// New builds a baseline simulator with the program loaded. Defaults match
// the StrongARM configuration (16KB caches, static not-taken branches).
func New(p *arm.Program, cfg Config) *Sim {
	if cfg.Caches.I == nil {
		cfg.Caches = mem.DefaultStrongARM()
	}
	if cfg.Predictor == nil {
		cfg.Predictor = bpred.NewNotTaken()
	}
	if cfg.StackTop == 0 {
		cfg.StackTop = 0x00400000
	}
	s := &Sim{
		Mem:    mem.New(),
		ICache: cfg.Caches.I,
		DCache: cfg.Caches.D,
		Pred:   cfg.Predictor,
		pc:     p.Entry,
	}
	s.Mem.LoadImage(p.Base, p.Bytes)
	s.R[arm.SP] = cfg.StackTop
	return s
}

// CPI returns cycles per retired instruction.
func (s *Sim) CPI() float64 {
	if s.Instret == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instret)
}

// Run simulates to completion.
func (s *Sim) Run(maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for !s.Exited {
		if s.Cycles >= maxCycles {
			return fmt.Errorf("pipe5: cycle limit %d exceeded at pc=%#08x", maxCycles, s.pc)
		}
		s.cycle()
		if s.Err != nil {
			return s.Err
		}
	}
	return nil
}

// cycle advances one clock: stages processed back to front so values flow
// one stage per cycle and forwarding sees this cycle's results.
func (s *Sim) cycle() {
	s.stageWB()
	s.stageMEM()
	s.stageEX()
	s.stageID()
	s.stageIF()
	if s.prof != nil {
		s.prof.EndCycle()
	}
	s.Cycles++
}

// ---- WB ----------------------------------------------------------------

func (s *Sim) stageWB() {
	w := s.wx
	if w == nil {
		s.profStall(stMEWB, obsv.StallEmpty)
		return
	}
	s.profAdvance(stMEWB)
	if s.tr != nil {
		s.tr.Fire(s.Cycles, w.seq, stMEWB, opWriteback)
		s.tr.Retire(s.Cycles, w.seq, stMEWB)
	}
	s.wx = nil
	ins := arm.Decode(w.raw, w.addr) // baseline re-decode
	if !w.annulled {
		for r := 0; r < 15; r++ {
			if w.wrMask&(1<<r) != 0 && w.ready&(1<<r) != 0 {
				s.R[r] = w.vals[r]
			}
		}
		if ins.Class == arm.ClassSystem {
			s.trap(&ins, w)
		}
	}
	s.releaseScoreboard(w)
	s.Instret++
	if s.fetchHold == w.seq {
		s.fetchHold = 0
	}
	s.freeSlot(w)
}

// newSlot returns a zeroed latch entry, reusing a retired one when available
// (keeping any lsmAddr capacity) so steady-state fetch allocates nothing. A
// pool miss carves the next slot out of one contiguous block: a five-stage
// pipe holds at most a handful of live slots, so they all share it.
func (s *Sim) newSlot() *slot {
	if k := len(s.slotPool); k > 0 {
		sl := s.slotPool[k-1]
		s.slotPool = s.slotPool[:k-1]
		la := sl.lsmAddr[:0]
		*sl = slot{}
		sl.lsmAddr = la
		return sl
	}
	if s.slotNext == len(s.slotBlock) {
		// 16 slots: the 4 latches plus flush/retire churn, never more.
		s.slotBlock = make([]slot, 16)
		s.slotNext = 0
	}
	sl := &s.slotBlock[s.slotNext]
	s.slotNext++
	return sl
}

func (s *Sim) freeSlot(sl *slot) {
	s.slotPool = append(s.slotPool, sl)
}

func (s *Sim) releaseScoreboard(w *slot) {
	for r := 0; r < 15; r++ {
		if w.wrMask&(1<<r) != 0 && s.pending[r] > 0 {
			s.pending[r]--
		}
	}
}

func (s *Sim) trap(ins *arm.Instr, w *slot) {
	if ins.Undefined() {
		s.fail("undefined instruction %#08x at %#08x", ins.Raw, ins.Addr)
		return
	}
	switch ins.SWINum {
	case arm.SysExit:
		s.Exited = true
		s.ExitCode = w.srcVals[0]
	case arm.SysEmit:
		s.Output = append(s.Output, w.srcVals[0])
	case arm.SysPutc:
		s.Text = append(s.Text, byte(w.srcVals[0]))
	default:
		s.fail("unknown syscall %d at %#08x", ins.SWINum, ins.Addr)
	}
}

func (s *Sim) fail(format string, args ...any) {
	if s.Err == nil {
		s.Err = fmt.Errorf("pipe5: "+format, args...)
	}
}

// ---- MEM ---------------------------------------------------------------

func (s *Sim) stageMEM() {
	m := s.mx
	if m == nil {
		s.profStall(stEXME, obsv.StallEmpty)
		return
	}
	if m.delay > 0 {
		m.delay--
		s.profStall(stEXME, obsv.StallDelay)
		return
	}
	ins := arm.Decode(m.raw, m.addr) // baseline re-decode
	if !m.annulled {
		switch ins.Class {
		case arm.ClassLoadStore:
			s.memAccess(&ins, m)
		case arm.ClassLoadStoreM:
			if s.lsmStep(&ins, m) {
				// A block-transfer micro-step is forward progress even though
				// the slot stays resident in MEM.
				s.profAdvance(stEXME)
				if s.tr != nil {
					s.tr.Fire(s.Cycles, m.seq, stEXME, opLSMStep)
				}
				return // more transfers pending; stay in MEM
			}
		}
	}
	if s.wx == nil {
		s.mx = nil
		s.wx = m
		s.profAdvance(stEXME)
		if s.tr != nil {
			s.tr.Fire(s.Cycles, m.seq, stEXME, opMem)
			s.tr.Move(s.Cycles, m.seq, stMEWB, stEXME)
		}
	} else {
		s.profStall(stEXME, obsv.StallCapacity)
	}
}

func (s *Sim) memAccess(ins *arm.Instr, m *slot) {
	if ins.Load {
		v := ins.LoadValue(s.Mem, m.ea)
		if ins.Rd == arm.PC {
			s.redirect(m, v&^3)
		} else {
			m.vals[ins.Rd] = v
			m.ready |= 1 << ins.Rd
		}
	} else {
		v := m.srcVals[2]
		switch {
		case ins.Byte:
			s.Mem.Write8(m.ea, byte(v))
		case ins.Half:
			s.Mem.Write16(m.ea, uint16(v))
		default:
			s.Mem.Write32(m.ea, v)
		}
	}
	if m.baseWB && ins.Rn != arm.PC {
		m.vals[ins.Rn] = m.wbVal
		m.ready |= 1 << ins.Rn
	}
}

// lsmStep performs one block-transfer micro-operation; it reports whether
// more remain (the slot then occupies MEM another cycle, as the real SA
// datapath does).
func (s *Sim) lsmStep(ins *arm.Instr, m *slot) bool {
	if m.lsmIdx >= len(m.lsmAddr) {
		return false
	}
	addr := m.lsmAddr[m.lsmIdx]
	slotIdx := 0
	for r := arm.Reg(0); r < 16; r++ {
		if ins.RegList&(1<<r) == 0 {
			continue
		}
		if slotIdx != m.lsmIdx {
			slotIdx++
			continue
		}
		if ins.Load {
			v := s.Mem.Read32(addr)
			if r == arm.PC {
				s.redirect(m, v&^3)
			} else {
				m.vals[r] = v
				m.ready |= 1 << r
			}
		} else {
			if r == arm.PC {
				s.Mem.Write32(addr, ins.Addr+12)
			} else {
				s.Mem.Write32(addr, m.vals[r]) // read into vals at ID
			}
		}
		break
	}
	m.lsmIdx++
	if m.lsmIdx < len(m.lsmAddr) {
		if s.DCache != nil {
			m.delay = s.DCache.Access(m.lsmAddr[m.lsmIdx]) - 1
		}
		return true
	}
	if ins.Writeback && ins.Rn != arm.PC &&
		!(ins.Load && ins.RegList&(1<<ins.Rn) != 0) {
		m.vals[ins.Rn] = m.wbVal
		m.ready |= 1 << ins.Rn
	}
	return false
}

// redirect performs a late (MEM-stage) control transfer: everything younger
// was serialized behind a fetch hold, so only the PC moves.
func (s *Sim) redirect(m *slot, target uint32) {
	m.donePC = true
	if s.fetchHold == m.seq {
		s.fetchHold = 0
	}
	s.pc = target
}
