package workload

import "testing"

// Golden checksums for every kernel at scale 1, produced by the ISS and
// agreed on by all five simulators (cross-checked elsewhere). Pinning them
// here turns any accidental edit to a kernel or to the shared ISA
// semantics into a visible diff instead of a silent drift of the whole
// consistent system.
var golden = map[string][]uint32{
	"adpcm":    {0xb30ee5f8, 0xfffffb7e},
	"blowfish": {0x76282996, 0xa77a09b0},
	"compress": {0x56d880e9, 0x72e},
	"crc":      {0xcb4be311},
	"g721":     {0xc423058d, 0x60a},
	"go":       {0x111, 0xbffe94},
}

func TestGoldenChecksums(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, ok := golden[w.Name]
			if !ok {
				t.Fatalf("no golden entry for %s", w.Name)
			}
			c := runISS(t, w, 1)
			if len(c.Output) != len(want) {
				t.Fatalf("emitted %d checksums, golden has %d", len(c.Output), len(want))
			}
			for i := range want {
				if c.Output[i] != want[i] {
					t.Errorf("checksum[%d] = %#x, golden %#x — kernel or ISA semantics changed",
						i, c.Output[i], want[i])
				}
			}
		})
	}
}

// The extras are pinned separately so extending the main suite never
// silently alters them either.
var goldenExtra = map[string][]uint32{
	"fir16": {0x5b77f636},
	"sha":   {0x45fe0648, 0xa27f6725},
}

func TestGoldenExtraChecksums(t *testing.T) {
	for _, w := range Extra() {
		want, ok := goldenExtra[w.Name]
		if !ok {
			t.Fatalf("no golden entry for extra kernel %s", w.Name)
		}
		c := runISS(t, w, 1)
		if len(c.Output) != len(want) {
			t.Fatalf("%s emitted %d checksums, golden has %d", w.Name, len(c.Output), len(want))
		}
		for i := range want {
			if c.Output[i] != want[i] {
				t.Errorf("%s checksum[%d] = %#x, golden %#x", w.Name, i, c.Output[i], want[i])
			}
		}
	}
}
