package iss

import (
	"testing"

	"rcpn/internal/arm"
)

func TestHalfwordSemantics(t *testing.T) {
	c := run(t, `
	ldr r1, =buf
	ldr r2, =0x8001f00f
	str r2, [r1]
	ldrh r0, [r1]        ; 0xf00f
	swi #1
	ldrsh r0, [r1]       ; 0xfffff00f
	swi #1
	ldrh r0, [r1, #2]    ; 0x8001
	swi #1
	ldrsh r0, [r1, #2]   ; 0xffff8001
	swi #1
	ldr r3, =0x1234
	strh r3, [r1, #2]
	ldr r0, [r1]         ; 0x1234f00f
	swi #1
	swi #0
	.align
buf:
	.space 16
`)
	want := []uint32{0xf00f, 0xfffff00f, 0x8001, 0xffff8001, 0x1234f00f}
	for i, w := range want {
		if c.Output[i] != w {
			t.Errorf("output[%d] = %#x, want %#x", i, c.Output[i], w)
		}
	}
}

func TestSignedByteLoad(t *testing.T) {
	c := run(t, `
	ldr r1, =buf
	mov r2, #0x7f
	strb r2, [r1]
	mov r2, #0x80
	strb r2, [r1, #1]
	ldrsb r0, [r1]
	swi #1
	ldrsb r0, [r1, #1]
	swi #1
	swi #0
buf:
	.space 8
`)
	if c.Output[0] != 0x7f || c.Output[1] != 0xffffff80 {
		t.Fatalf("signed bytes: %#x %#x", c.Output[0], c.Output[1])
	}
}

func TestLongMultiplySemantics(t *testing.T) {
	c := run(t, `
	mvn r2, #0
	ldr r3, =100000
	umull r4, r5, r2, r3    ; 0xffffffff * 100000
	mov r0, r4
	swi #1
	mov r0, r5
	swi #1
	smull r4, r5, r2, r3    ; -1 * 100000 = -100000
	mov r0, r4
	swi #1
	mov r0, r5
	swi #1
	mov r4, #1
	mov r5, #0
	mov r6, #2
	mov r7, #3
	umlal r4, r5, r6, r7    ; {0,1} + 6 = {0,7}
	mov r0, r4
	swi #1
	swi #0
`)
	want64 := uint64(0xffffffff) * 100000
	if c.Output[0] != uint32(want64) || c.Output[1] != uint32(want64>>32) {
		t.Errorf("umull: %#x %#x", c.Output[1], c.Output[0])
	}
	neg := uint64(0xffffffffffffffff) - 100000 + 1 // -100000 two's complement
	if c.Output[2] != uint32(neg) || c.Output[3] != uint32(neg>>32) {
		t.Errorf("smull: %#x %#x", c.Output[3], c.Output[2])
	}
	if c.Output[4] != 7 {
		t.Errorf("umlal lo = %d", c.Output[4])
	}
}

func TestConditionalSWI(t *testing.T) {
	c := run(t, `
	mov r0, #11
	cmp r0, #11
	swieq #1       ; executes
	swine #1       ; skipped
	mov r0, #22
	swi #1
	swi #0
`)
	if len(c.Output) != 2 || c.Output[0] != 11 || c.Output[1] != 22 {
		t.Fatalf("output = %v", c.Output)
	}
}

func TestLdmBaseInListWithWriteback(t *testing.T) {
	// LDM with writeback where the base is in the list: the loaded value
	// wins (ARM7 behavior implemented across all simulators).
	c := run(t, `
	ldr r1, =buf
	ldr r2, =111
	str r2, [r1]
	ldr r2, =222
	str r2, [r1, #4]
	ldmia r1!, {r1, r3}   ; r1 loaded with 111 (loaded value wins)
	mov r0, r1
	swi #1
	mov r0, r3
	swi #1
	swi #0
	.align
buf:
	.space 16
`)
	if c.Output[0] != 111 || c.Output[1] != 222 {
		t.Fatalf("ldm base-in-list: %v", c.Output)
	}
}

func TestStorePCValue(t *testing.T) {
	c := run(t, `
	ldr r1, =buf
here:
	str pc, [r1]       ; stores pc+12 on ARM7
	ldr r0, [r1]
	ldr r2, =here
	sub r0, r0, r2
	swi #1
	swi #0
buf:
	.space 8
`)
	if c.Output[0] != 12 {
		t.Fatalf("str pc stored offset %d, want 12", c.Output[0])
	}
}

func TestRegisterShiftByLargeAmount(t *testing.T) {
	c := run(t, `
	mov r1, #1
	mov r2, #40
	mov r0, r1, lsl r2   ; shift by 40 -> 0
	swi #1
	mov r2, #64
	mvn r1, #0
	mov r0, r1, asr r2   ; negative asr by >=32 -> all ones... by-reg 64&255=64 -> sign fill
	swi #1
	swi #0
`)
	if c.Output[0] != 0 {
		t.Errorf("lsl 40 = %#x", c.Output[0])
	}
	if c.Output[1] != 0xffffffff {
		t.Errorf("asr 64 of -1 = %#x", c.Output[1])
	}
}

func TestDecodeCacheConsistency(t *testing.T) {
	// The ISS decode cache keys on (addr, raw); re-running the same loop
	// must reuse entries without semantic drift.
	p, err := arm.Assemble(`
	mov r0, #0
	mov r1, #0
again:
	add r0, r0, #3
	add r1, r1, #1
	cmp r1, #1000
	bne again
	swi #1
	swi #0
`, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, 0)
	c.MaxInstrs = 1_000_000
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Output[0] != 3000 {
		t.Fatalf("loop result %d", c.Output[0])
	}
}
