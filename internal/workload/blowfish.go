package workload

import "fmt"

// blowfishSource is the MiBench blowfish kernel: a 16-round Feistel cipher
// with the Blowfish F-function structure — four 256-entry S-boxes combined
// as ((S0[a]+S1[b])^S2[c])+S3[d] — run in CBC-style chaining over a block
// stream. S-boxes and the P-array are filled from an LCG at start-up
// (standing in for the pi-digit key schedule, which only affects the
// constants, not the instruction mix).
func blowfishSource(scale int) string {
	blocks := 192 * scale
	return fmt.Sprintf(`
; blowfish kernel (MiBench blowfish) — %[1]d blocks, 16 Feistel rounds each
;
; register map while encrypting:
;   r4 = L  r5 = R  r6 = round counter  r7 = P base  r8 = S base
;   r9 = block counter  r10/r11 = scratch
_start:
	; fill P[18] and S[4*256] from the LCG
	ldr r0, =parr
	ldr r1, =1042              ; 18 + 1024 words
	ldr r2, =0x9e3779b9
	ldr r3, =1664525
	ldr r12, =1013904223
init:
	mla r2, r2, r3, r12
	str r2, [r0], #4
	subs r1, r1, #1
	bne init

	ldr r7, =parr
	ldr r8, =sbox
	ldr r9, =%[1]d
	ldr r4, =0x01234567        ; L
	ldr r5, =0x89abcdef        ; R
block_loop:
	mov r6, #0
round_loop:
	ldr r0, [r7, r6, lsl #2]   ; P[i]
	eor r4, r4, r0
	; F(L): a,b,c,d = bytes of L, high to low
	mov r0, r4, lsr #24
	ldr r10, [r8, r0, lsl #2]        ; S0[a]
	mov r0, r4, lsr #16
	and r0, r0, #0xff
	add r1, r8, #1024
	ldr r11, [r1, r0, lsl #2]        ; S1[b]
	add r10, r10, r11
	mov r0, r4, lsr #8
	and r0, r0, #0xff
	add r1, r8, #2048
	ldr r11, [r1, r0, lsl #2]        ; S2[c]
	eor r10, r10, r11
	and r0, r4, #0xff
	add r1, r8, #1024
	add r1, r1, #2048
	ldr r11, [r1, r0, lsl #2]        ; S3[d]
	add r10, r10, r11
	eor r5, r5, r10
	; swap L and R
	mov r0, r4
	mov r4, r5
	mov r5, r0
	add r6, r6, #1
	cmp r6, #16
	bne round_loop
	; undo final swap, apply P[16], P[17]
	mov r0, r4
	mov r4, r5
	mov r5, r0
	ldr r0, [r7, #64]          ; P[16]
	eor r5, r5, r0
	ldr r0, [r7, #68]          ; P[17]
	eor r4, r4, r0
	; chain the next block
	eor r4, r4, r9
	subs r9, r9, #1
	bne block_loop

	mov r0, r4
	swi #1
	mov r0, r5
	swi #1
	mov r0, #0
	swi #0
	.ltorg
	.align
parr:
	.space 72
sbox:
	.space 4096
`, blocks)
}
