package gen

import (
	"fmt"

	"rcpn/internal/arm"
	"rcpn/internal/core"
	"rcpn/internal/machine"
)

// The analyzer turns a declarative machine.Spec into the emitter's model by
// building the *real* net (machine.Generate on a throwaway program) and
// walking its compiled structures — the reverse topological place order and
// the sorted_transitions[place, class] table — exactly as the interpreted
// engine would. The spec is re-walked in parallel only to recover each
// transition's semantic role (which ops.go call its action performs), since
// the net stores actions as opaque closures; every recovered role is then
// cross-validated against the compiled transition (guard/explain presence,
// capacity facts, self-loop shape), so a drift between the two walks is an
// analysis error, never miscompiled output.

// candKind names the semantic body of one compiled transition — the direct
// calls the emitter inlines in place of the interpreted Action/Guard
// closures.
type candKind int

const (
	kPass       candKind = iota // move only, no architected work
	kIssue                      // operand read + destination reservation
	kIssueMult                  // issue + data-dependent multiplier latency
	kExecute                    // ALU work, branch/PC resolution
	kExecuteMem                 // execute + D-cache latency acquisition
	kMemAccess                  // functional memory access
	kLSMStep                    // block-transfer stay loop (self-loop)
	kLSMLast                    // block-transfer completion
	kWriteback                  // architected commit (+ trap effects)
	kMemWB                      // fused memory access + writeback
	kLSMLastWB                  // fused block-transfer completion + writeback
)

func (k candKind) needsGuard() bool   { return k == kIssue || k == kIssueMult || k == kLSMStep }
func (k candKind) needsExplain() bool { return k == kIssue || k == kIssueMult }
func (k candKind) selfLoop() bool     { return k == kLSMStep }

// cand is one sorted_transitions cell entry: the compiled transition plus
// its recovered semantics.
type cand struct {
	tr   *core.Transition
	kind candKind
}

// stageInfo is one finite pipeline stage (one place, capacity 1) of the
// model. Its id is simultaneously the place id, the generated state index
// (token residency for bypass queries), the trace location and the profile
// row — the same identification the net uses.
type stageInfo struct {
	name  string
	ident string // sanitized identifier suffix (latch l<ident>, state st<ident>)
	id    int
	delay int64
	cands [][]cand // per class, in arc-priority order
}

// model is everything the emitter needs, fully validated.
type model struct {
	spec     machine.Spec
	stages   []stageInfo
	order    []int // stage ids in reverse topological (evaluation) order
	endName  string
	bypass   []int // state indices feeding the forwarding network
	fetchTo  int   // stage id receiving fetched instructions
	ops      []string
	macExtra int64
}

// classConstNames spells the arm.Class constants for emitted case labels,
// in class-id order. analyze checks it against arm.NumClasses.
var classConstNames = []string{
	"arm.ClassDataProc", "arm.ClassMult", "arm.ClassLoadStore",
	"arm.ClassLoadStoreM", "arm.ClassBranch", "arm.ClassSystem",
}

func sanitizeIdent(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// roleKinds recovers the (transition name -> semantics) map by re-walking
// the spec in the exact order and naming scheme machine.Generate uses.
func roleKinds(spec machine.Spec) (map[string]candKind, error) {
	desc := map[string]candKind{}
	add := func(name string, k candKind) error {
		if _, dup := desc[name]; dup {
			return fmt.Errorf("gen: duplicate transition name %q", name)
		}
		desc[name] = k
		return nil
	}
	for i := 0; i+1 < len(spec.FrontEnd); i++ {
		if err := add("fe."+spec.FrontEnd[i+1], kPass); err != nil {
			return nil, err
		}
	}
	for c := arm.Class(0); c < arm.NumClasses; c++ {
		for _, seg := range spec.Routes[c] {
			name := fmt.Sprintf("%s.%s.%s", c, seg.Stage, seg.Exit)
			var err error
			switch seg.Exit {
			case machine.RolePass:
				err = add(name, kPass)
			case machine.RoleIssue:
				k := kIssue
				if c == arm.ClassMult {
					k = kIssueMult
				}
				err = add(name, k)
			case machine.RoleExecute:
				k := kExecute
				if c == arm.ClassLoadStore || c == arm.ClassLoadStoreM {
					k = kExecuteMem
				}
				err = add(name, k)
			case machine.RoleMem:
				switch c {
				case arm.ClassLoadStore:
					err = add(name, kMemAccess)
				case arm.ClassLoadStoreM:
					if err = add(name+"step", kLSMStep); err == nil {
						err = add(name+"last", kLSMLast)
					}
				default:
					err = add(name, kPass)
				}
			case machine.RoleWriteback:
				err = add(name, kWriteback)
			case machine.RoleMemWriteback:
				switch c {
				case arm.ClassLoadStore:
					err = add(name, kMemWB)
				case arm.ClassLoadStoreM:
					if err = add(name+"step", kLSMStep); err == nil {
						err = add(name+"last", kLSMLastWB)
					}
				default:
					err = add(name, kWriteback)
				}
			default:
				err = fmt.Errorf("gen: class %v: unknown role %v", c, seg.Exit)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return desc, nil
}

func analyze(spec machine.Spec) (*model, error) {
	if int(arm.NumClasses) != len(classConstNames) {
		return nil, fmt.Errorf("gen: class table out of date (%d classes, %d names)",
			arm.NumClasses, len(classConstNames))
	}
	// Build the real net on a throwaway program; the net is only walked,
	// never stepped.
	mach, err := machine.Generate(&arm.Program{Bytes: make([]byte, 8)}, spec, machine.Config{})
	if err != nil {
		return nil, fmt.Errorf("gen: lowering spec: %w", err)
	}
	net := mach.Net
	if !net.Built() {
		return nil, fmt.Errorf("gen: net is not built")
	}
	if net.NumClasses() != int(arm.NumClasses) {
		return nil, fmt.Errorf("gen: net has %d classes, want %d", net.NumClasses(), arm.NumClasses)
	}
	if tl := net.TwoListPlaces(); len(tl) != 0 {
		return nil, fmt.Errorf("gen: two-list place %s: feedback-read places are not supported", tl[0].Name)
	}
	if len(net.Sources()) != 1 {
		return nil, fmt.Errorf("gen: want exactly one source transition, have %d", len(net.Sources()))
	}

	desc, err := roleKinds(spec)
	if err != nil {
		return nil, err
	}

	m := &model{spec: spec, macExtra: spec.MACExtra}

	// Stages: one capacity-1 place per finite stage, end place created last.
	places := net.Places()
	placesPerStage := map[int]int{}
	idents := map[string]bool{}
	for i, p := range places {
		if p.End {
			if i != len(places)-1 {
				return nil, fmt.Errorf("gen: end place %s is not last", p.Name)
			}
			m.endName = p.Name
			continue
		}
		if p.Stage.Unlimited() || p.Stage.Capacity != 1 {
			return nil, fmt.Errorf("gen: stage %s: capacity %d not supported (only single-slot latches)",
				p.Stage.Name, p.Stage.Capacity)
		}
		placesPerStage[p.Stage.ID()]++
		if placesPerStage[p.Stage.ID()] > 1 {
			return nil, fmt.Errorf("gen: stage %s holds more than one place", p.Stage.Name)
		}
		if p.Delay < 1 {
			return nil, fmt.Errorf("gen: place %s: residency delay %d < 1", p.Name, p.Delay)
		}
		if p.Stage.ID() != p.ID() {
			// The emitted code reuses one index as place id, stage id, trace
			// location and profile row; the lowering creates one stage per
			// place in the same order, which keeps them equal.
			return nil, fmt.Errorf("gen: stage %s: stage id %d != place id %d",
				p.Stage.Name, p.Stage.ID(), p.ID())
		}
		ident := sanitizeIdent(p.Name)
		if idents[ident] {
			return nil, fmt.Errorf("gen: stage identifier collision on %q", ident)
		}
		idents[ident] = true
		if p.ID() != len(m.stages) {
			return nil, fmt.Errorf("gen: place %s: id %d out of declaration order", p.Name, p.ID())
		}
		m.stages = append(m.stages, stageInfo{name: p.Name, ident: ident, id: p.ID(), delay: p.Delay})
	}
	if m.endName == "" {
		return nil, fmt.Errorf("gen: no end place")
	}

	// Transition facts + the sorted_transitions cells, validated per entry.
	for _, t := range net.Transitions() {
		if t.Delay != 0 {
			return nil, fmt.Errorf("gen: transition %s: transition delays are not supported", t.Name)
		}
		if len(t.ResIn)+len(t.ResOut) != 0 {
			return nil, fmt.Errorf("gen: transition %s: reservation arcs are not supported", t.Name)
		}
		if len(t.Reads) != 0 {
			return nil, fmt.Errorf("gen: transition %s: Reads arcs are not supported", t.Name)
		}
		k, ok := desc[t.Name]
		if !ok {
			return nil, fmt.Errorf("gen: transition %s: no spec segment produces it", t.Name)
		}
		if (t.Guard != nil) != k.needsGuard() {
			return nil, fmt.Errorf("gen: transition %s: guard presence does not match role", t.Name)
		}
		if (t.Explain != nil) != k.needsExplain() {
			return nil, fmt.Errorf("gen: transition %s: explain presence does not match role", t.Name)
		}
		if (t.From == t.To) != k.selfLoop() {
			return nil, fmt.Errorf("gen: transition %s: self-loop shape does not match role", t.Name)
		}
		if want := t.To != t.From && !t.To.End; t.NeedsCapacity() != want {
			return nil, fmt.Errorf("gen: transition %s: NeedsCapacity=%v, derived %v",
				t.Name, t.NeedsCapacity(), want)
		}
		m.ops = append(m.ops, t.Name)
	}
	for i, t := range net.Transitions() {
		if t.ID() != i {
			return nil, fmt.Errorf("gen: transition %s: id %d at index %d", t.Name, t.ID(), i)
		}
	}

	for si := range m.stages {
		st := &m.stages[si]
		p := places[st.id]
		st.cands = make([][]cand, int(arm.NumClasses))
		for c := 0; c < int(arm.NumClasses); c++ {
			for _, t := range net.SortedTransitions(p, core.ClassID(c)) {
				st.cands[c] = append(st.cands[c], cand{tr: t, kind: desc[t.Name]})
			}
		}
	}

	// Evaluation order: the compiled reverse topological order minus the
	// end place (which holds no step function).
	for _, p := range net.Order() {
		if !p.End {
			m.order = append(m.order, p.ID())
		}
	}

	// Fetch destination and bypass states, straight from the compiled net.
	m.fetchTo = net.Sources()[0].To.ID()
	if m.fetchTo >= len(m.stages) {
		return nil, fmt.Errorf("gen: fetch feeds the end place")
	}
	for _, name := range spec.Bypass {
		found := -1
		for _, st := range m.stages {
			if st.name == name {
				found = st.id
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("gen: bypass stage %q not found", name)
		}
		m.bypass = append(m.bypass, found)
	}
	return m, nil
}
