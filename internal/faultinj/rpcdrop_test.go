package faultinj

import (
	"errors"
	"testing"
	"time"
)

// TestRPCDropActions exercises the rpc.drop site across its three planned
// actions: error (frame dropped), corrupt (frame damaged — the Fault must
// carry ActCorrupt so the frame writer knows to flip a byte instead of
// suppressing the send), and delay (frame stalled, no error).
func TestRPCDropActions(t *testing.T) {
	t.Run("error", func(t *testing.T) {
		in, err := Parse("rpc.drop#2:error=lost frame")
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Hit(SiteRPCDrop, 0); err != nil {
			t.Fatalf("hit 1 fired early: %v", err)
		}
		err = in.Hit(SiteRPCDrop, 0)
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("hit 2 = %v, want *Fault", err)
		}
		if f.Act != ActError || f.Site != SiteRPCDrop || f.Msg != "lost frame" {
			t.Fatalf("fault = %+v, want error action at rpc.drop", f)
		}
		if err := in.Hit(SiteRPCDrop, 0); err != nil {
			t.Fatalf("hit 3 fired after the rule disarmed: %v", err)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		in, err := Parse("rpc.drop:corrupt")
		if err != nil {
			t.Fatal(err)
		}
		var f *Fault
		if err := in.Hit(SiteRPCDrop, 0); !errors.As(err, &f) {
			t.Fatalf("hit = %v, want *Fault", err)
		}
		if f.Act != ActCorrupt {
			t.Fatalf("fault action = %v, want corrupt", f.Act)
		}
	})

	t.Run("delay", func(t *testing.T) {
		in, err := Parse("rpc.drop:delay=10ms")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := in.Hit(SiteRPCDrop, 0); err != nil {
			t.Fatalf("delay action returned error: %v", err)
		}
		if d := time.Since(start); d < 10*time.Millisecond {
			t.Fatalf("delay slept %v, want >= 10ms", d)
		}
	})

	t.Run("unlimited corrupt", func(t *testing.T) {
		in, err := Parse("rpc.drop*-1:corrupt")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			var f *Fault
			if err := in.Hit(SiteRPCDrop, 0); !errors.As(err, &f) || f.Act != ActCorrupt {
				t.Fatalf("hit %d = %v, want corrupt fault", i+1, err)
			}
		}
	})
}

// TestActionStrings pins the Fired() log vocabulary, including the new
// corrupt verb.
func TestActionStrings(t *testing.T) {
	for act, want := range map[Action]string{
		ActError: "error", ActPanic: "panic", ActDelay: "delay", ActCorrupt: "corrupt",
	} {
		if got := act.String(); got != want {
			t.Errorf("Action(%d).String() = %q, want %q", int(act), got, want)
		}
	}
}

// TestRand63n: an armed injector's jitter stream is deterministic — two
// injectors built the same way draw the same sequence — while a nil
// injector still works (global source).
func TestRand63n(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 16; i++ {
		if x, y := a.Rand63n(1000), b.Rand63n(1000); x != y {
			t.Fatalf("draw %d: %d != %d (default streams diverge)", i, x, y)
		}
	}
	s1, s2 := Seeded(42, []string{"x"}, 1, 4), Seeded(42, []string{"x"}, 1, 4)
	for i := 0; i < 16; i++ {
		if x, y := s1.Rand63n(1<<30), s2.Rand63n(1<<30); x != y {
			t.Fatalf("seeded draw %d: %d != %d", i, x, y)
		}
	}
	var nilInj *Injector
	if v := nilInj.Rand63n(10); v < 0 || v >= 10 {
		t.Fatalf("nil injector draw %d out of range", v)
	}
	if v := nilInj.Rand63n(0); v != 0 {
		t.Fatalf("Rand63n(0) = %d, want 0", v)
	}
}
