package machine

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/iss"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
)

// crossCheckAll runs src on every simulator in the repository and requires
// identical architected results (used for the extended-ISA programs).
func crossCheckAll(t *testing.T, src string) {
	t.Helper()
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	golden := iss.New(p, 0)
	golden.MaxInstrs = 2_000_000
	if err := golden.Run(); err != nil {
		t.Fatalf("iss: %v", err)
	}
	check := func(name string, output []uint32, exit uint32, instret uint64) {
		t.Helper()
		if exit != golden.Exit || instret != golden.Instret {
			t.Errorf("%s: exit/instret %d/%d, iss %d/%d", name, exit, instret, golden.Exit, golden.Instret)
		}
		if len(output) != len(golden.Output) {
			t.Fatalf("%s: output %v, iss %v", name, output, golden.Output)
		}
		for i := range output {
			if output[i] != golden.Output[i] {
				t.Errorf("%s: output[%d] = %#x, iss %#x", name, i, output[i], golden.Output[i])
			}
		}
	}

	sa := NewStrongARM(p, Config{})
	if err := sa.Run(0); err != nil {
		t.Fatalf("strongarm: %v", err)
	}
	check("strongarm", sa.Output, sa.ExitCode, sa.Instret)

	xs := NewXScale(p, Config{})
	if err := xs.Run(0); err != nil {
		t.Fatalf("xscale: %v", err)
	}
	check("xscale", xs.Output, xs.ExitCode, xs.Instret)

	fn := NewFunctional(p, Config{})
	if err := fn.RunFunctional(0); err != nil {
		t.Fatalf("functional: %v", err)
	}
	check("functional", fn.Output, fn.ExitCode, fn.Instret)

	bs := ssim.New(p, ssim.Config{})
	if err := bs.Run(0); err != nil {
		t.Fatalf("ssim: %v", err)
	}
	check("ssim", bs.Output(), bs.ExitCode(), bs.Instret)

	hp := pipe5.New(p, pipe5.Config{})
	if err := hp.Run(0); err != nil {
		t.Fatalf("pipe5: %v", err)
	}
	check("pipe5", hp.Output, hp.ExitCode, hp.Instret)
}

func TestHalfwordTransfersAllSimulators(t *testing.T) {
	crossCheckAll(t, `
	ldr r1, =buf
	ldr r2, =0x12345678
	str r2, [r1]
	ldrh r0, [r1]          ; 0x5678
	swi #1
	ldrh r0, [r1, #2]      ; 0x1234
	swi #1
	ldr r3, =0xfedc
	strh r3, [r1, #4]
	ldr r0, [r1, #4]       ; 0x0000fedc
	swi #1
	ldrsh r0, [r1, #4]     ; sign-extends 0xfedc
	swi #1
	mov r4, #0x80
	strb r4, [r1, #8]
	ldrsb r0, [r1, #8]     ; 0xffffff80
	swi #1
	; post-index and register-offset halfword forms
	mov r5, r1
	ldrh r0, [r5], #2
	swi #1
	mov r6, #2
	ldrh r0, [r1, r6]
	swi #1
	mov r0, #0
	swi #0
	.align
buf:
	.space 32
`)
}

func TestLongMultipliesAllSimulators(t *testing.T) {
	crossCheckAll(t, `
	mvn r2, #0             ; 0xffffffff
	mvn r3, #0
	umull r0, r1, r2, r3   ; {r1,r0} = fffffffe_00000001
	swi #1
	mov r0, r1
	swi #1
	smull r0, r1, r2, r3   ; (-1)*(-1) = 1
	swi #1
	mov r0, r1
	swi #1
	; accumulate chain (dot product style)
	mov r4, #0             ; lo
	mov r5, #0             ; hi
	mov r6, #3
	ldr r7, =100000
loop:
	umlal r4, r5, r7, r7   ; acc += 100000^2
	subs r6, r6, #1
	bne loop
	mov r0, r4
	swi #1
	mov r0, r5
	swi #1
	; signed accumulate with negative product
	mov r4, #10
	mov r5, #0
	mvn r7, #4             ; -5
	mov r8, #7
	smlal r4, r5, r7, r8   ; {r5,r4} += -35
	mov r0, r4
	swi #1
	mov r0, r5
	swi #1
	; flags from the 64-bit result
	mov r2, #0
	umulls r0, r1, r2, r3
	moveq r0, #77
	swi #1
	mov r0, #0
	swi #0
`)
}

func TestLongMultiplyHazardsAllSimulators(t *testing.T) {
	// RdLo/RdHi as sources right after the multiply (RAW on both dests),
	// plus a WAW sequence.
	crossCheckAll(t, `
	ldr r2, =0x10001
	ldr r3, =0x20003
	umull r4, r5, r2, r3
	add r0, r4, r5        ; immediate consumption of both halves
	swi #1
	umull r4, r5, r3, r2  ; WAW on r4/r5
	eor r0, r4, r5
	swi #1
	mov r0, #0
	swi #0
`)
}
