// Package gen is the staged code generator of the paper's §5: it walks a
// compiled RCPN (the same net machine.Generate builds for the interpreted
// engine) and emits a self-contained Go package that simulates the model
// cycle-accurately with no net at runtime — one flattened step function per
// pipeline stage, guards inlined as plain ifs, per-operation-class dispatch
// devirtualized into direct calls, and the per-PC decode cache supplying
// the paper's partial evaluation through the shared machine runtime.
//
// The generated package implements the engine surface of the interpreted
// machines (Run/RunUntil/Drain, Checkpoint/Restore at drained boundaries,
// obsv trace/profile attachment, the batch.CheckpointStepper adapter), so
// a generated simulator registers into internal/diffrun and is exercised
// by the conformance matrix, differential fuzzer and checkpoint suites
// exactly like its interpreted twin.
package gen

import (
	"fmt"
	"go/format"

	"rcpn/internal/machine"
)

// Options names the emitted package.
type Options struct {
	// Package is the emitted package name (e.g. "genpipe5").
	Package string
	// Model is the rcpngen model key recorded in the regeneration header.
	Model string
	// OutDir is the output directory recorded in the regeneration header
	// (e.g. "internal/genpipe5").
	OutDir string
}

// Generate compiles spec into one gofmt-formatted Go source file.
// Generation is deterministic: identical specs produce identical bytes.
func Generate(spec machine.Spec, opts Options) ([]byte, error) {
	if opts.Package == "" {
		return nil, fmt.Errorf("gen: empty package name")
	}
	m, err := analyze(spec)
	if err != nil {
		return nil, err
	}
	raw := emit(m, opts)
	src, err := format.Source(raw)
	if err != nil {
		return nil, fmt.Errorf("gen: emitted source does not parse: %w\n%s", err, raw)
	}
	return src, nil
}
