package rpc

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"

	"rcpn/internal/faultinj"
)

// TestMsgRoundTrip: every message type survives Encode → DecodeMsg.
func TestMsgRoundTrip(t *testing.T) {
	msgs := []Msg{
		Hello{Version: 1, Node: "worker-3", Slots: 4},
		Hello{Version: 1},
		Submit{ID: "deadbeef", Spec: []byte(`{"simulator":"pipe5","kernel":"fib"}`)},
		Submit{ID: ""},
		Progress{ID: "deadbeef", Cycles: 1 << 40, Instret: 1 << 50},
		Progress{ID: "x", Cycles: -1},
		Result{ID: "deadbeef", Cycles: 123, Instret: 456,
			Payload: []byte(`{"schema":"rcpn-batch/v1"}`), Trace: []byte("[]")},
		Result{ID: "f", Failed: true, Payload: []byte("diag")},
		JobError{ID: "deadbeef", Msg: "worker overloaded", Transient: true},
		JobError{ID: "d", Msg: "bad spec"},
		Ping{Seq: 0},
		Ping{Seq: 1<<64 - 1},
		Pong{Seq: 42},
	}
	for _, m := range msgs {
		got, err := DecodeMsg(Encode(m))
		if err != nil {
			t.Fatalf("%#v: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round-trip: got %#v, want %#v", got, m)
		}
	}
}

// TestDecodeMsgRejects: unknown kinds, truncated fields, out-of-range
// bools and trailing garbage are all errors.
func TestDecodeMsgRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"unknown kind":    {99},
		"truncated hello": Encode(Hello{Version: 1, Node: "n", Slots: 2})[:3],
		"bad bool":        append(Encode(JobError{ID: "i", Msg: "m"})[:len(Encode(JobError{ID: "i", Msg: "m"}))-1], 7),
		"trailing bytes":  append(Encode(Ping{Seq: 9}), 0xEE),
		"string overrun":  {kindSubmit, 0x20, 'a', 'b'}, // claims 32-byte ID, has 2
	}
	for name, payload := range cases {
		if m, err := DecodeMsg(payload); err == nil {
			t.Errorf("%s: decoded to %#v, want error", name, m)
		}
	}
}

// tcpPair builds a connected loopback TCP pair. The handshake is
// symmetric (both sides write before reading), which needs a buffered
// transport — net.Pipe would deadlock, TCP is what production uses.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acc struct {
		c   net.Conn
		err error
	}
	accc := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		accc <- acc{c, err}
	}()
	ca, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	got := <-accc
	if got.err != nil {
		ca.Close()
		t.Fatal(got.err)
	}
	return ca, got.c
}

// TestConnLoopback: handshake and message exchange over loopback TCP,
// plus the two rpc.drop failure modes — a dropped frame never arrives, a
// corrupted frame kills the receiver with a CRC error.
func TestConnLoopback(t *testing.T) {
	dial := func(t *testing.T, inj *faultinj.Injector) (*Conn, *Conn) {
		t.Helper()
		ca, cb := tcpPair(t)
		a, b := NewConn(ca, inj), NewConn(cb, nil)
		t.Cleanup(func() { a.Close(); b.Close() })
		errc := make(chan error, 1)
		go func() {
			_, err := b.Handshake(Hello{Version: Version}, time.Second)
			errc <- err
		}()
		peer, err := a.Handshake(Hello{Version: Version, Node: "w0", Slots: 2}, time.Second)
		if err != nil {
			t.Fatalf("handshake: %v", err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("peer handshake: %v", err)
		}
		if peer.Version != Version {
			t.Fatalf("peer hello = %+v", peer)
		}
		return a, b
	}

	t.Run("exchange", func(t *testing.T) {
		a, b := dial(t, nil)
		go a.Send(Submit{ID: "j1", Spec: []byte("spec")}) //nolint:errcheck
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if sub, ok := m.(Submit); !ok || sub.ID != "j1" || !bytes.Equal(sub.Spec, []byte("spec")) {
			t.Fatalf("got %#v", m)
		}
	})

	t.Run("drop", func(t *testing.T) {
		inj, err := faultinj.Parse(faultinj.SiteRPCDrop + "#1:error")
		if err != nil {
			t.Fatal(err)
		}
		a, b := dial(t, inj)
		// First send is swallowed; second gets through.
		if err := a.Send(Ping{Seq: 1}); err != nil {
			t.Fatalf("dropped send returned %v", err)
		}
		go a.Send(Ping{Seq: 2}) //nolint:errcheck
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := m.(Ping); !ok || p.Seq != 2 {
			t.Fatalf("got %#v, want the second ping only", m)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		inj, err := faultinj.Parse(faultinj.SiteRPCDrop + "#1:corrupt")
		if err != nil {
			t.Fatal(err)
		}
		a, b := dial(t, inj)
		go a.Send(Result{ID: "j1", Payload: bytes.Repeat([]byte("x"), 256)}) //nolint:errcheck
		if m, err := b.Recv(); err == nil {
			t.Fatalf("corrupted frame decoded to %#v", m)
		}
	})

	t.Run("version mismatch", func(t *testing.T) {
		ca, cb := tcpPair(t)
		defer ca.Close()
		defer cb.Close()
		a, b := NewConn(ca, nil), NewConn(cb, nil)
		go a.Handshake(Hello{Version: Version + 1}, time.Second) //nolint:errcheck
		if _, err := b.Handshake(Hello{Version: Version}, time.Second); err == nil {
			t.Fatal("version mismatch accepted")
		}
	})

	t.Run("read timeout", func(t *testing.T) {
		a, _ := dial(t, nil)
		a.ReadTimeout = 20 * time.Millisecond
		start := time.Now()
		if _, err := a.Recv(); err == nil {
			t.Fatal("Recv on quiet conn succeeded")
		}
		if time.Since(start) > 2*time.Second {
			t.Fatal("read deadline not applied")
		}
	})
}
