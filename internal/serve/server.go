package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rcpn/internal/batch"
	"rcpn/internal/faultinj"
	"rcpn/internal/obsv"
	"rcpn/internal/rpc"
	"rcpn/internal/store"
)

// Dispatcher routes a job to a remote worker. The serve layer defines the
// interface (internal/shard implements it) so it can stay ignorant of
// rings, heartbeats and RPC connections: it hands over a content address
// and canonical spec bytes, gets back either the worker's terminal result
// — byte-identical to a local run by construction — or an error.
// rpc.ErrNoWorkers means the ring is empty and the server should execute
// locally; any other error is transient and re-enters the server's
// ordinary retry machinery, whose next attempt re-dispatches against the
// (by then rebalanced) ring.
type Dispatcher interface {
	Dispatch(ctx context.Context, id string, spec []byte,
		progress func(cycles int64, instret uint64)) (*rpc.Result, error)
	// Live is the current live-worker count, for /healthz and metrics.
	Live() int
}

// Config sizes the service.
type Config struct {
	// Workers is the simulation pool size (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (default 64).
	// When the queue is full, POST /v1/jobs answers 429 + Retry-After
	// instead of buffering without limit.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (default 1024).
	CacheEntries int
	// JobTimeout is the per-job deadline (default 5m; 0 keeps the default —
	// a service must not run unbounded jobs, use a large value instead).
	JobTimeout time.Duration
	// MaxCycles caps jobs whose spec leaves max_cycles unset (default 1<<32).
	MaxCycles int64
	// Chunk is the Drive burst length between cancellation checks and
	// progress updates (default batch.DefaultChunk).
	Chunk int64
	// SSEInterval is the progress-event period on /v1/jobs/{id}/events
	// (default 500ms).
	SSEInterval time.Duration

	// DataDir, when set, makes the server durable: accepted jobs, finished
	// results and job checkpoints persist under this directory, and a
	// restarted server recovers them — pending jobs re-enqueue (resuming
	// from their last checkpoint), finished results warm the cache with the
	// exact bytes the original run produced. Empty means memory-only.
	DataDir string
	// MaxAttempts caps how many times a job may run before a transient
	// failure (panic, timeout) is poisoned into a terminal failure
	// (default 3).
	MaxAttempts int
	// RetryBase is the first retry delay; it doubles per attempt up to
	// RetryMax, with jitter (defaults 100ms / 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Fault arms deterministic fault injection at the durability layer's
	// named sites. Nil (production) is inert.
	Fault *faultinj.Injector
	// Logf receives durability and recovery log lines (default: stderr).
	Logf func(format string, args ...any)

	// Dispatcher, when set, runs jobs on remote shard workers instead of
	// the local pool, falling back to local execution while no worker is
	// live (logged once; /healthz reports "degraded"). Nil: always local.
	Dispatcher Dispatcher
	// QuotaRate > 0 arms per-tenant admission quotas: each tenant (the
	// X-Tenant request header; "anonymous" when absent) accrues this many
	// submissions per second up to QuotaBurst, and an exhausted bucket
	// answers 429 with a Retry-After estimating when a token will be back.
	QuotaRate float64
	// QuotaBurst is the per-tenant bucket size (default 10 when QuotaRate
	// is set).
	QuotaBurst int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 1 << 32
	}
	if c.SSEInterval <= 0 {
		c.SSEInterval = 500 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.QuotaRate > 0 && c.QuotaBurst <= 0 {
		c.QuotaBurst = 10
	}
	return c
}

// Job states. A job moves queued → running → done|failed; content
// addressing means a resubmitted spec joins the existing job wherever it
// is in that lifecycle. A transient failure re-enters queued via the
// retry loop until it succeeds or is poisoned.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// job is one content-addressed unit of work and its lifecycle record.
type job struct {
	id   string
	spec JobSpec
	// pri is the queue level chosen at submission (X-Priority header);
	// retries keep it.
	pri batch.Priority

	// live progress, written by the worker at every Drive chunk.
	cycles    atomic.Int64
	instret   atomic.Uint64
	startNano atomic.Int64 // wall start of the run, 0 until running
	endNano   atomic.Int64 // wall end of the run, 0 until terminal

	mu     sync.Mutex
	state  string
	result []byte // one-job rcpn-batch/v1 report, set when done/failed
	// transient marks a failure whose bytes or outcome depend on wall time
	// (timeout, drain cancellation, panic trace): resubmitting the spec
	// retries instead of returning the cached failure.
	transient bool
	// attempts counts executions; at Config.MaxAttempts a transient failure
	// becomes poison.
	attempts int
	// Latest checkpoint (encoded RCPNCKPT payload plus its cumulative
	// progress), kept in memory so retries resume even without a DataDir.
	ckInstret uint64
	ckCycles  int64
	ckRaw     []byte
	// stalls is the most recent chunk-boundary stall-profile snapshot of a
	// profiled job; it is what a crashed attempt salvages into its report.
	stalls *obsv.StallSnapshot
	// trace is the rendered Chrome trace_event JSON, set when a traced job
	// reaches a terminal state; served by GET /v1/jobs/{id}/trace.
	trace []byte
	// remote is the result payload a shard worker rendered for this job.
	// When set, finalize installs it verbatim instead of rendering
	// locally — the worker already produced the exact bytes a local run
	// would have.
	remote []byte

	done chan struct{} // closed on completion
}

func (j *job) snapshot() (state string, result []byte, transient bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.transient
}

// Server is the simulation service: admission (validation, content
// addressing, dedup, backpressure), a bounded queue into an internal/batch
// pool, the result cache, the durability layer, and the HTTP surface. It
// implements http.Handler.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	pool       *batch.Pool
	hardCtx    context.Context
	hardCancel context.CancelFunc
	store      *store.Store // nil: memory-only
	logf       func(format string, args ...any)

	mu       sync.Mutex
	jobs     map[string]*job
	cache    *lru
	draining bool

	// degraded flips once when a durability write fails at runtime; the
	// server logs it, reports it on /healthz, and continues memory-only.
	degraded atomic.Bool
	// fellBack guards the one-time "no live workers, running locally" log
	// line of a coordinator whose ring has gone empty.
	fellBack atomic.Bool
	// quota is the per-tenant admission limiter; nil when QuotaRate is 0.
	quota *quotas

	// buildOverride, when set (tests), replaces JobSpec.Build.
	buildOverride func(*JobSpec) (batch.Stepper, error)

	// counters; gauges for queued/running, cumulative otherwise.
	queued    atomic.Int64
	running   atomic.Int64
	inflight  atomic.Int64
	doneCt    atomic.Int64
	failedCt  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	rejFull   atomic.Int64
	rejBad    atomic.Int64
	rejQuota  atomic.Int64
	// shard-mode counters: jobs run remotely, transient dispatch
	// failures, and jobs served locally because the ring was empty.
	dispatched    atomic.Int64
	dispatchErrs  atomic.Int64
	fallbackLocal atomic.Int64
	cycles        atomic.Int64 // cumulative simulated cycles
	retries       atomic.Int64
	resumes       atomic.Int64
	poisoned      atomic.Int64
	recovered     atomic.Int64
	sseActive     atomic.Int64

	// simRate distributes finished jobs' simulation rates (Mcycles/s of
	// wall time); exposed as a histogram on /v1/metrics.
	simRate *obsv.Histogram
}

// New builds and starts a server (its worker pool runs immediately). With
// Config.DataDir set it first recovers the durable job set: finished
// results warm the cache, pending jobs re-enqueue and resume from their
// last checkpoint. Only environmental failures (an unusable data
// directory) are errors; damaged content is quarantined and logged, never
// fatal.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		cache:   newLRU(cfg.CacheEntries),
		simRate: obsv.NewHistogram(0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250),
	}
	if cfg.QuotaRate > 0 {
		s.quota = newQuotas(cfg.QuotaRate, cfg.QuotaBurst)
	}
	s.logf = cfg.Logf
	if s.logf == nil {
		s.logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.pool = batch.NewPool(cfg.QueueDepth, batch.Options{
		Workers: cfg.Workers,
		Timeout: cfg.JobTimeout,
		Context: s.hardCtx,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.DataDir != "" {
		st, jobs, err := store.Open(cfg.DataDir, cfg.Fault, s.logf)
		if err != nil {
			return nil, err
		}
		s.store = st
		s.adopt(jobs)
	}
	return s, nil
}

// adopt installs the recovered job set: terminal jobs become served cache
// entries with the exact bytes the original run produced; pending jobs are
// owed to clients and re-enqueue.
func (s *Server) adopt(jobs []store.Job) {
	for _, jb := range jobs {
		j := &job{id: jb.ID, done: make(chan struct{})}
		if len(jb.Spec) > 0 {
			sp, err := ParseSpec(bytes.NewReader(jb.Spec))
			if err != nil || sp.ID() != jb.ID {
				s.logf("serve: recovered job %s has a bad spec (%v); dropping", shortID(jb.ID), err)
				s.drop(jb.ID)
				continue
			}
			j.spec = *sp
		}
		switch jb.State {
		case store.StateDone, store.StateFailed:
			j.state = StateDone
			if jb.State == store.StateFailed {
				j.state = StateFailed
			}
			j.result = jb.Result
			close(j.done)
			s.mu.Lock()
			s.jobs[jb.ID] = j
			evicted := s.cache.add(jb.ID, jb.Result)
			for _, id := range evicted {
				if old, ok := s.jobs[id]; ok && old != j {
					delete(s.jobs, id)
				}
			}
			s.mu.Unlock()
			for _, id := range evicted {
				s.drop(id)
			}
			s.recovered.Add(1)
		case store.StatePending:
			if len(jb.Spec) == 0 {
				s.drop(jb.ID)
				continue
			}
			j.state = StateQueued
			s.mu.Lock()
			s.jobs[jb.ID] = j
			s.mu.Unlock()
			s.queued.Add(1)
			if err := s.enqueue(j); err != nil {
				s.logf("serve: recovered job %s does not fit the queue (%v); dropping", shortID(jb.ID), err)
				s.queued.Add(-1)
				s.mu.Lock()
				delete(s.jobs, jb.ID)
				s.mu.Unlock()
				s.drop(jb.ID)
				continue
			}
			s.recovered.Add(1)
			s.logf("serve: recovered pending job %s; re-enqueued", shortID(jb.ID))
		}
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain is the graceful-shutdown protocol: stop admitting (POST answers
// 503, /healthz flips to not-ready), let queued and running jobs finish,
// and after the grace period cancel whatever is still in flight — Drive's
// chunked context checks stop the simulators within one chunk, nothing is
// abandoned. Drain blocks until the pool is idle and is safe to call more
// than once.
func (s *Server) Drain(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if grace <= 0 {
		s.hardCancel()
	} else {
		t := time.AfterFunc(grace, s.hardCancel)
		defer t.Stop()
	}
	s.pool.Close()
	s.hardCancel()
	if s.store != nil {
		s.store.Close() //nolint:errcheck // shutdown path; nothing to do with it
	}
}

// ---- durability helpers ----------------------------------------------------

// durable reports whether persistence is on and healthy.
func (s *Server) durable() bool { return s.store != nil && !s.degraded.Load() }

// degrade flips the server to memory-only operation after a durability
// failure, logging the cause exactly once. The HTTP surface stays fully
// functional; /healthz reports "degraded" while staying ready.
func (s *Server) degrade(err error) {
	if s.store == nil || err == nil {
		return
	}
	if s.degraded.CompareAndSwap(false, true) {
		s.logf("serve: durability degraded, continuing memory-only: %v", err)
	}
}

// drop forgets a job's durable files (cache eviction, bad recovery).
func (s *Server) drop(id string) {
	if !s.durable() {
		return
	}
	if err := s.store.Drop(id); err != nil {
		s.degrade(err)
	}
}

// backoff computes the retry delay for the given completed attempt count:
// exponential from RetryBase, capped at RetryMax, with half-width jitter so
// synchronized retries spread out. The jitter draws from the injector's
// seeded stream when fault injection is armed, so a faultinj run replays
// the same retry schedule every time; a nil/unarmed injector falls back to
// the global RNG.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBase
	for i := 1; i < attempt && d < s.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > s.cfg.RetryMax {
		d = s.cfg.RetryMax
	}
	return d/2 + time.Duration(s.cfg.Fault.Rand63n(int64(d/2)+1))
}

// shortID abbreviates a content address for logs.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// ---- admission ------------------------------------------------------------

type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached,omitempty"`    // finished result already on hand
	Coalesced bool   `json:"coalesced,omitempty"` // joined an in-flight identical job
}

// retryAfterDrain advises clients how long to wait out a drain; drains are
// process shutdowns, so "a few seconds, elsewhere" is the honest answer.
const retryAfterDrain = "5"

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Quota gate first: an exhausted tenant is refused before the server
	// spends parsing or hashing on its request. The Retry-After estimates
	// when the bucket next has a whole token.
	if s.quota != nil {
		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			tenant = "anonymous"
		}
		if ok, wait := s.quota.allow(tenant, time.Now()); !ok {
			s.rejQuota.Add(1)
			secs := int(wait / time.Second)
			if wait%time.Second != 0 || secs < 1 {
				secs++ // round up; never advise an immediate retry
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "tenant quota exhausted"})
			return
		}
	}
	spec, err := ParseSpec(r.Body)
	if err != nil {
		s.rejBad.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	id := spec.ID()
	// X-Priority: "low" (or "batch") routes the job to the bulk queue
	// level, which workers drain only when no interactive job is waiting.
	// The priority is scheduling-only: it is not part of the content
	// address and cannot change result bytes.
	pri := batch.PriHigh
	switch r.Header.Get("X-Priority") {
	case "low", "batch":
		pri = batch.PriLow
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfterDrain)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	if j, ok := s.jobs[id]; ok {
		state, _, transient := j.snapshot()
		retryable := (state == StateDone || state == StateFailed) && transient
		if !retryable {
			resp := submitResponse{ID: id, State: state}
			switch state {
			case StateDone, StateFailed:
				s.hits.Add(1)
				s.cache.get(id) // refresh recency
				resp.Cached = true
			default:
				s.coalesced.Add(1)
				resp.Coalesced = true
			}
			s.mu.Unlock()
			writeJSON(w, http.StatusAccepted, resp)
			return
		}
		// A transient failure (timeout, drain, panic) is retried, not
		// replayed: drop the old record and fall through to a fresh enqueue.
		delete(s.jobs, id)
	}
	j := &job{id: id, spec: *spec, pri: pri, state: StateQueued, done: make(chan struct{})}
	err = s.enqueue(j)
	switch err {
	case nil:
	case batch.ErrQueueFull:
		s.rejFull.Add(1)
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "queue full"})
		return
	default: // batch.ErrPoolClosed: drain raced us
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfterDrain)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	s.jobs[id] = j
	s.misses.Add(1)
	s.queued.Add(1)
	s.mu.Unlock()
	// Journal the acceptance before acknowledging it, so an accepted job is
	// either owed durably or not confirmed at all.
	if s.durable() {
		if err := s.store.LogSubmit(id, spec.Canonical()); err != nil {
			s.degrade(err)
		}
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: StateQueued})
}

// enqueue hands the job to the worker pool at its submission priority.
func (s *Server) enqueue(j *job) error {
	return s.pool.TrySubmitPri(batch.Job{
		Simulator: j.spec.Simulator,
		Workload:  j.spec.WorkloadLabel(),
		Config:    j.spec.ConfigLabel(),
		Run: func(ctx context.Context) (batch.Metrics, error) {
			return s.execute(ctx, j)
		},
		// A panicked attempt still reports everything measured up to its
		// last completed chunk, including the partial stall profile.
		Partial: func() batch.Metrics {
			j.mu.Lock()
			stalls := j.stalls
			j.mu.Unlock()
			return batch.Metrics{Cycles: j.cycles.Load(), Instret: j.instret.Load(), Stalls: stalls}
		},
	}, j.pri, func(res batch.Result) { s.finish(j, res) })
}

// ---- execution ------------------------------------------------------------

// execute is the job body, run on a pool worker under the server's hard
// context and the per-job deadline. With a Dispatcher configured the job
// runs on a remote shard worker (falling back to local execution while the
// ring is empty); locally, checkpointing jobs (spec sets
// checkpoint_interval) run under DriveCkpt and, when a checkpoint exists —
// in memory from an earlier attempt, or on disk from a previous process —
// restore it and resume instead of restarting.
func (s *Server) execute(ctx context.Context, j *job) (batch.Metrics, error) {
	j.mu.Lock()
	j.state = StateRunning
	j.attempts++
	j.remote = nil // a retry may run locally; never keep a stale override
	j.mu.Unlock()
	j.startNano.Store(time.Now().UnixNano())
	s.queued.Add(-1)
	s.running.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	if s.cfg.Dispatcher != nil {
		if m, err, handled := s.executeRemote(ctx, j); handled {
			return m, err
		}
	}

	build := s.buildOverride
	if build == nil {
		build = func(spec *JobSpec) (batch.Stepper, error) { return spec.Build() }
	}
	env := execEnv{
		build:     build,
		maxCycles: s.cfg.MaxCycles,
		chunk:     s.cfg.Chunk,
		fault:     s.cfg.Fault,
		logf:      func(format string, args ...any) { s.logf("serve: "+format, args...) },
		name:      shortID(j.id),
		progress: func(c int64, i uint64) {
			j.cycles.Store(c)
			j.instret.Store(i)
		},
		stalls: func(snap *obsv.StallSnapshot) {
			j.mu.Lock()
			j.stalls = snap
			j.mu.Unlock()
		},
		trace: func(b []byte) {
			j.mu.Lock()
			j.trace = b
			j.mu.Unlock()
		},
		loadCkpt: func() ([]byte, uint64, int64, bool) { return s.loadCheckpoint(j) },
		// saveCkpt persists each checkpoint to the job's in-memory slot
		// (same-process retries) and to the store when durable;
		// persistence failures degrade the server rather than fail the
		// job.
		saveCkpt: func(instret uint64, cycles int64, raw []byte) {
			j.mu.Lock()
			j.ckInstret, j.ckCycles, j.ckRaw = instret, cycles, raw
			j.mu.Unlock()
			if s.durable() {
				if err := s.store.WriteCheckpoint(j.id, instret, cycles, raw); err != nil {
					s.degrade(err)
				}
			}
		},
		discardCkpt: func(why string) { s.discardCheckpoint(j, why) },
		onResume:    func() { s.resumes.Add(1) },
	}
	return runSpec(ctx, &j.spec, env)
}

// executeRemote tries the job on the shard ring. handled is false only for
// rpc.ErrNoWorkers — the caller then executes locally (degraded mode,
// logged once). A worker result installs its payload on the job, so
// finalize serves the exact bytes the worker rendered; a transient
// dispatch failure (worker died, frames lost, ring churn) comes back as a
// batch.ErrTransient-wrapped error, which the retry machinery re-runs with
// backoff — by then the ring has evicted the dead worker and the job
// hashes somewhere live.
func (s *Server) executeRemote(ctx context.Context, j *job) (_ batch.Metrics, _ error, handled bool) {
	res, err := s.cfg.Dispatcher.Dispatch(ctx, j.id, j.spec.Canonical(),
		func(c int64, i uint64) {
			j.cycles.Store(c)
			j.instret.Store(i)
		})
	switch {
	case err == nil:
		s.dispatched.Add(1)
		j.mu.Lock()
		j.remote = res.Payload
		if len(res.Trace) > 0 {
			j.trace = res.Trace
		}
		j.mu.Unlock()
		j.cycles.Store(res.Cycles)
		j.instret.Store(res.Instret)
		m := batch.Metrics{Cycles: res.Cycles, Instret: res.Instret}
		if res.Failed {
			// The worker's payload is the diagnostic report and wins in
			// finalize; the error here only drives the job to StateFailed.
			return m, errors.New("remote worker reported a terminal failure"), true
		}
		return m, nil, true
	case errors.Is(err, rpc.ErrNoWorkers):
		s.fallbackLocal.Add(1)
		if s.fellBack.CompareAndSwap(false, true) {
			s.logf("serve: no live shard workers; executing locally in degraded mode")
		}
		return batch.Metrics{}, nil, false
	case errors.Is(err, rpc.ErrPermanent):
		// Deterministic worker-side failure: re-dispatching would fail
		// identically, so fail the job now (non-transient).
		return batch.Metrics{}, err, true
	default:
		s.dispatchErrs.Add(1)
		return batch.Metrics{}, fmt.Errorf("%w: dispatch %s: %v", batch.ErrTransient, shortID(j.id), err), true
	}
}

// loadCheckpoint finds the job's latest checkpoint: the in-memory copy from
// an earlier attempt in this process, else the durable one from a previous
// process.
func (s *Server) loadCheckpoint(j *job) (raw []byte, instret uint64, cycles int64, found bool) {
	j.mu.Lock()
	raw, instret, cycles = j.ckRaw, j.ckInstret, j.ckCycles
	j.mu.Unlock()
	if raw != nil {
		return raw, instret, cycles, true
	}
	if s.durable() {
		i, c, p, err := s.store.ReadCheckpoint(j.id)
		if err == nil {
			return p, i, c, true
		}
		if !errors.Is(err, fs.ErrNotExist) {
			s.logf("serve: job %s checkpoint unavailable, restarting from scratch: %v", shortID(j.id), err)
		}
	}
	return nil, 0, 0, false
}

// discardCheckpoint abandons a checkpoint that failed to decode or restore:
// quarantine the durable copy, forget the in-memory one, restart the job
// from scratch.
func (s *Server) discardCheckpoint(j *job, why string) {
	j.mu.Lock()
	j.ckRaw = nil
	j.mu.Unlock()
	if s.store != nil {
		s.store.QuarantineCheckpoint(j.id, why)
	}
	s.logf("serve: job %s restarting from scratch: %s", shortID(j.id), why)
}

// finish handles a completed execution: successes and permanent failures
// become terminal results; transient failures (panic, timeout) retry with
// backoff until MaxAttempts, at which point the job is poisoned — a
// terminal failure carrying the diagnosis, quarantined from retry.
func (s *Server) finish(j *job, res batch.Result) {
	j.endNano.Store(time.Now().UnixNano())
	s.running.Add(-1)
	s.cycles.Add(res.Cycles)
	if wall := time.Duration(j.endNano.Load() - j.startNano.Load()); wall > 0 && res.Err == "" {
		s.simRate.Observe(float64(res.Cycles) / 1e6 / wall.Seconds())
	}

	// res.Transient covers failures the body itself knows to be
	// retryable — a lost shard worker, a dropped dispatch — on top of the
	// pool-level timeout/cancel/panic outcomes.
	transient := res.TimedOut || res.Canceled || res.Panicked || res.Transient
	if res.Err != "" && transient {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		stopping := draining || s.hardCtx.Err() != nil
		j.mu.Lock()
		attempts := j.attempts
		j.mu.Unlock()
		switch {
		case stopping:
			// Shutdown cancellation stays a transient terminal failure: a
			// durable job has no terminal record yet, so the next process
			// recovers and re-runs it.
		case attempts < s.cfg.MaxAttempts:
			s.retry(j, res, attempts)
			return
		default:
			res.Err = fmt.Sprintf("poisoned after %d attempts: %s", attempts, res.Err)
			transient = false
			s.poisoned.Add(1)
			s.logf("serve: job %s %s", shortID(j.id), res.Err)
		}
	}
	s.finalize(j, res, transient)
}

// retry schedules the job's next attempt after backoff. The job goes back
// to queued with its done channel open, so waiting clients keep waiting;
// its checkpoint (if any) stays, so the attempt resumes.
func (s *Server) retry(j *job, res batch.Result, attempt int) {
	s.retries.Add(1)
	j.mu.Lock()
	j.state = StateQueued
	j.mu.Unlock()
	s.queued.Add(1)
	delay := s.backoff(attempt)
	s.logf("serve: job %s attempt %d failed transiently (%s); retry in %v",
		shortID(j.id), attempt, res.Err, delay)
	time.AfterFunc(delay, func() {
		if err := s.enqueue(j); err != nil {
			// The pool closed (or filled) under us: finalize with the failure
			// we were retrying, still transient so a resubmission re-runs.
			s.queued.Add(-1)
			s.running.Add(1) // finalize pairs with finish's decrement
			s.finish(j, res)
		}
	})
}

// finalize records the outcome: the deterministic one-job rcpn-batch/v1
// payload becomes the job's result, enters the content-addressed cache,
// and — durable server, permanent outcome — is persisted with its terminal
// journal record. Transient terminal failures are deliberately not
// persisted: the durable record stays "pending", so a restart re-runs the
// job from its last checkpoint.
func (s *Server) finalize(j *job, res batch.Result, transient bool) {
	j.mu.Lock()
	remote := j.remote
	j.mu.Unlock()
	var payload []byte
	if remote != nil {
		// A shard worker already rendered this job's report through the
		// same executor and report path; installing its bytes verbatim is
		// what "byte-identical failover" means.
		payload = remote
	} else {
		rep := &batch.Report{Results: []batch.Result{res}}
		var err error
		payload, err = rep.JSON(false)
		if err != nil { // cannot happen for plain data; keep the job terminal anyway
			payload = []byte(fmt.Sprintf(`{"schema":%q,"jobs":[{"error":%q}]}`, batch.Schema, err))
		}
	}
	state := StateDone
	if res.Err != "" {
		state = StateFailed
	}

	if s.durable() && !transient {
		persist := func() error {
			if err := s.store.WriteResult(j.id, payload); err != nil {
				return err
			}
			if state == StateDone {
				if err := s.store.LogDone(j.id); err != nil {
					return err
				}
			} else if err := s.store.LogFailed(j.id, res.Err); err != nil {
				return err
			}
			return s.store.DeleteCheckpoint(j.id)
		}
		if err := persist(); err != nil {
			s.degrade(err)
		}
	}

	s.mu.Lock()
	j.mu.Lock()
	j.state = state
	j.result = payload
	j.transient = transient
	j.mu.Unlock()
	evicted := s.cache.add(j.id, payload)
	for _, id := range evicted {
		if old, ok := s.jobs[id]; ok && old != j {
			delete(s.jobs, id)
		}
	}
	s.mu.Unlock()
	for _, id := range evicted {
		s.drop(id)
	}

	if state == StateDone {
		s.doneCt.Add(1)
	} else {
		s.failedCt.Add(1)
	}
	close(j.done)
}

// ---- queries --------------------------------------------------------------

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// progressBody is the live view of a running job.
type progressBody struct {
	Cycles      int64   `json:"cycles"`
	Instret     uint64  `json:"instructions"`
	CPI         float64 `json:"cpi"`
	MCyclesPSec float64 `json:"mcycles_per_sec"`
	MInstrPSec  float64 `json:"minstr_per_sec"`
	WallSeconds float64 `json:"wall_seconds"`
}

func (j *job) progress() progressBody {
	p := batchProgress(j)
	return progressBody{
		Cycles: p.Cycles, Instret: p.Instret, CPI: p.CPI(),
		MCyclesPSec: p.MCyclesPerSec(), MInstrPSec: p.MInstrPerSec(),
		WallSeconds: p.Wall.Seconds(),
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	state, result, _ := j.snapshot()
	switch state {
	case StateDone, StateFailed:
		writeJSON(w, http.StatusOK, struct {
			ID     string          `json:"id"`
			State  string          `json:"state"`
			Result json.RawMessage `json:"result"`
		}{j.id, state, result})
	case StateRunning:
		writeJSON(w, http.StatusOK, struct {
			ID       string       `json:"id"`
			State    string       `json:"state"`
			Progress progressBody `json:"progress"`
		}{j.id, state, j.progress()})
	default:
		writeJSON(w, http.StatusOK, struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}{j.id, state})
	}
}

// handleTrace serves the Chrome trace_event JSON of a traced job. The trace
// is rendered once, at the end of the run, so it exists only for terminal
// jobs whose spec set trace_events > 0. Load it at chrome://tracing or
// https://ui.perfetto.dev.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	j.mu.Lock()
	trace := j.trace
	j.mu.Unlock()
	if trace == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "no trace for this job (submit with trace_events > 0 and wait for completion)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(trace) //nolint:errcheck // client gone is the only failure
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.store != nil && s.degraded.Load() {
		// Degraded is still ready: jobs run, results serve; only persistence
		// is off. 200 keeps the instance in rotation; the status string and
		// /v1/metrics surface the condition.
		writeJSON(w, http.StatusOK, map[string]string{"status": "degraded"})
		return
	}
	if d := s.cfg.Dispatcher; d != nil && d.Live() == 0 {
		// A coordinator with an empty ring still serves every request by
		// executing locally; degraded, not down.
		writeJSON(w, http.StatusOK, map[string]string{"status": "degraded"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) durabilityStatus() string {
	switch {
	case s.store == nil:
		return "off"
	case s.degraded.Load():
		return "degraded"
	default:
		return "ok"
	}
}

// handleMetrics serves the Prometheus text-format (0.0.4) metrics page, so
// a stock Prometheus scrape of /v1/metrics works with no exporter in
// between. Every sample is a point-in-time read of an atomic counter or
// gauge; the page is not a consistent snapshot (and does not need to be).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := s.cache.len()
	draining := s.draining
	s.mu.Unlock()
	var quarantined int64
	if s.store != nil {
		quarantined = int64(s.store.QuarantineCount())
	}
	b01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	w.Header().Set("Content-Type", obsv.ContentType)
	m := obsv.NewMetricsWriter(w)
	m.Gauge("rcpn_queue_depth", "Jobs admitted but not yet claimed by a worker.", float64(s.pool.Depth()), nil)
	m.MultiGauge("rcpn_queue_depth_by_priority", "Jobs waiting at each priority level.", []obsv.LabeledValue{
		{Labels: map[string]string{"priority": "high"}, Value: float64(s.pool.DepthPri(batch.PriHigh))},
		{Labels: map[string]string{"priority": "low"}, Value: float64(s.pool.DepthPri(batch.PriLow))},
	})
	m.Gauge("rcpn_queue_cap", "Per-level capacity of the admission queue.", float64(s.pool.Cap()), nil)
	m.Gauge("rcpn_workers", "Size of the simulation worker pool.", float64(s.pool.Workers()), nil)
	m.Gauge("rcpn_inflight_workers", "Workers currently executing a job body.", float64(s.inflight.Load()), nil)
	m.MultiGauge("rcpn_jobs", "Jobs currently in a non-terminal state, by state.", []obsv.LabeledValue{
		{Labels: map[string]string{"state": "queued"}, Value: float64(s.queued.Load())},
		{Labels: map[string]string{"state": "running"}, Value: float64(s.running.Load())},
	})
	m.Counter("rcpn_jobs_done_total", "Jobs finished successfully.", float64(s.doneCt.Load()), nil)
	m.Counter("rcpn_jobs_failed_total", "Jobs finished with a terminal failure.", float64(s.failedCt.Load()), nil)
	m.Counter("rcpn_jobs_retried_total", "Transiently failed attempts re-queued for retry.", float64(s.retries.Load()), nil)
	m.Counter("rcpn_jobs_resumed_total", "Attempts that restored a checkpoint instead of restarting.", float64(s.resumes.Load()), nil)
	m.Counter("rcpn_jobs_poisoned_total", "Jobs whose transient failures exhausted max attempts.", float64(s.poisoned.Load()), nil)
	m.Counter("rcpn_jobs_recovered_total", "Jobs adopted from the durable store at startup.", float64(s.recovered.Load()), nil)
	m.Gauge("rcpn_cache_entries", "Entries in the content-addressed result cache.", float64(entries), nil)
	m.Counter("rcpn_cache_hits_total", "Submissions answered from the result cache.", float64(s.hits.Load()), nil)
	m.Counter("rcpn_cache_misses_total", "Submissions that enqueued a new job.", float64(s.misses.Load()), nil)
	m.Counter("rcpn_cache_coalesced_total", "Submissions that joined an identical in-flight job.", float64(s.coalesced.Load()), nil)
	m.MultiGauge("rcpn_durability_status", "Durability state (1 for the current status label).", []obsv.LabeledValue{
		{Labels: map[string]string{"status": "off"}, Value: b01(s.durabilityStatus() == "off")},
		{Labels: map[string]string{"status": "ok"}, Value: b01(s.durabilityStatus() == "ok")},
		{Labels: map[string]string{"status": "degraded"}, Value: b01(s.durabilityStatus() == "degraded")},
	})
	m.Gauge("rcpn_quarantined_checkpoints", "Damaged durable artifacts set aside at recovery or restore.", float64(quarantined), nil)
	m.Gauge("rcpn_sse_subscribers", "Open /v1/jobs/{id}/events streams.", float64(s.sseActive.Load()), nil)
	m.Counter("rcpn_rejected_queue_full_total", "Submissions rejected with 429 because the queue was full.", float64(s.rejFull.Load()), nil)
	m.Counter("rcpn_rejected_quota_total", "Submissions rejected with 429 by a tenant quota.", float64(s.rejQuota.Load()), nil)
	m.Counter("rcpn_rejected_invalid_total", "Submissions rejected with 400 at validation.", float64(s.rejBad.Load()), nil)
	if d := s.cfg.Dispatcher; d != nil {
		m.Gauge("rcpn_shard_workers", "Live workers on the coordinator's ring.", float64(d.Live()), nil)
		m.Counter("rcpn_shard_dispatched_total", "Jobs completed on a remote shard worker.", float64(s.dispatched.Load()), nil)
		m.Counter("rcpn_shard_dispatch_errors_total", "Transient dispatch failures re-entered into retry.", float64(s.dispatchErrs.Load()), nil)
		m.Counter("rcpn_shard_local_fallback_total", "Job executions served locally because no worker was live.", float64(s.fallbackLocal.Load()), nil)
	}
	m.Counter("rcpn_simulated_cycles_total", "Cumulative simulated cycles across all finished attempts.", float64(s.cycles.Load()), nil)
	m.Gauge("rcpn_draining", "1 while the server is draining for shutdown.", b01(draining), nil)
	m.HistogramMetric("rcpn_job_mcycles_per_sec", "Simulation rate of successfully finished jobs (simulated Mcycles per wall second).", s.simRate)
	m.Close() //nolint:errcheck // client gone is the only failure
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}
